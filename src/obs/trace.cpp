#include "obs/trace.hpp"

#include <atomic>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

#include "common/env.hpp"
#include "obs/json_writer.hpp"
#include "obs/metrics.hpp"  // monotonic_ns

namespace reramdl::obs {

namespace {

struct Event {
  std::string name;           // span / track name, or metadata arg value
  const char* cat = nullptr;  // static string; null for injected/meta events
  char ph = 'X';
  int pid = kHostPid;
  int tid = 0;
  double ts_us = 0.0;
  double dur_us = 0.0;
  const char* meta_key = nullptr;  // "process_name"/"thread_name" for ph 'M'
};

// Per-thread event buffer. Owned jointly by the recording thread (via a
// thread_local shared_ptr) and the global list, so events survive thread
// exit — pool workers die on every set_thread_count resize.
struct ThreadBuf {
  std::mutex mu;  // uncontended in the record path; taken by write_trace
  std::vector<Event> events;
};

struct TraceState {
  std::atomic<bool> enabled{false};
  std::mutex mu;  // guards path and bufs
  std::string path;
  std::vector<std::shared_ptr<ThreadBuf>> bufs;
  std::atomic<int> next_tid{0};
  std::atomic<int> next_pid{100};
};

TraceState& trace_state() {
  // Leaked: worker threads and the atexit writer may outlive static
  // destruction order.
  static TraceState* s = [] {
    auto* st = new TraceState;
    const std::string path = env::env_path("RERAMDL_TRACE");
    if (!path.empty()) {
      st->path = path;
      st->enabled.store(true, std::memory_order_release);
      std::atexit(write_trace);
    }
    return st;
  }();
  return *s;
}

ThreadBuf& local_buf() {
  thread_local std::shared_ptr<ThreadBuf> buf = [] {
    auto b = std::make_shared<ThreadBuf>();
    auto& s = trace_state();
    std::lock_guard<std::mutex> lock(s.mu);
    s.bufs.push_back(b);
    return b;
  }();
  return *buf;
}

void push_event(Event e) {
  ThreadBuf& buf = local_buf();
  std::lock_guard<std::mutex> lock(buf.mu);
  buf.events.push_back(std::move(e));
}

}  // namespace

bool trace_enabled() {
  return trace_state().enabled.load(std::memory_order_acquire);
}

void set_trace_path(std::string path) {
  auto& s = trace_state();
  const bool enable = !path.empty();
  {
    std::lock_guard<std::mutex> lock(s.mu);
    s.path = std::move(path);
  }
  s.enabled.store(enable, std::memory_order_release);
}

std::string trace_path() {
  auto& s = trace_state();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.path;
}

int current_tid() {
  thread_local int tid =
      trace_state().next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

void emit_complete(std::string name, const char* cat, double ts_us,
                   double dur_us, int tid, int pid) {
  if (!trace_enabled()) return;
  Event e;
  e.name = std::move(name);
  e.cat = cat;
  e.ph = 'X';
  e.pid = pid;
  e.tid = tid;
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  push_event(std::move(e));
}

int alloc_virtual_pid(const std::string& process_name) {
  auto& s = trace_state();
  const int pid = s.next_pid.fetch_add(1, std::memory_order_relaxed);
  if (!trace_enabled()) return pid;
  Event e;
  e.ph = 'M';
  e.meta_key = "process_name";
  e.name = process_name;
  e.pid = pid;
  push_event(std::move(e));
  return pid;
}

void name_thread(int pid, int tid, const std::string& name) {
  if (!trace_enabled()) return;
  Event e;
  e.ph = 'M';
  e.meta_key = "thread_name";
  e.name = name;
  e.pid = pid;
  e.tid = tid;
  push_event(std::move(e));
}

void ScopedSpan::begin(const char* name, const char* cat) {
  name_ = name;
  cat_ = cat;
  start_ns_ = monotonic_ns();
}

void ScopedSpan::end() {
  // Tracing may have been switched off mid-span; still record for a closed
  // file — the enabled check already passed at open.
  const std::uint64_t end_ns = monotonic_ns();
  Event e;
  e.name = name_;
  e.cat = cat_;
  e.ph = 'X';
  e.pid = kHostPid;
  e.tid = current_tid();
  e.ts_us = static_cast<double>(start_ns_) * 1e-3;
  e.dur_us = static_cast<double>(end_ns - start_ns_) * 1e-3;
  push_event(std::move(e));
}

std::size_t trace_event_count() {
  auto& s = trace_state();
  std::vector<std::shared_ptr<ThreadBuf>> bufs;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    bufs = s.bufs;
  }
  std::size_t n = 0;
  for (const auto& b : bufs) {
    std::lock_guard<std::mutex> lock(b->mu);
    n += b->events.size();
  }
  return n;
}

void reset_trace() {
  auto& s = trace_state();
  std::vector<std::shared_ptr<ThreadBuf>> bufs;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    bufs = s.bufs;
  }
  for (const auto& b : bufs) {
    std::lock_guard<std::mutex> lock(b->mu);
    b->events.clear();
  }
}

void write_trace() {
  const std::string path = trace_path();
  if (path.empty()) return;

  auto& s = trace_state();
  std::vector<std::shared_ptr<ThreadBuf>> bufs;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    bufs = s.bufs;
  }

  std::ofstream os(path);
  if (!os) {
    env::detail::warn_invalid("RERAMDL_TRACE", path,
                              "cannot open for writing; trace dropped");
    return;
  }

  // Compact mode: trace files can hold tens of thousands of events and
  // Perfetto does not care about whitespace.
  JsonWriter w(os, /*pretty=*/false);
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("traceEvents");
  w.begin_array();
  // Host process metadata, then every buffered event.
  w.begin_object();
  w.kv("ph", "M");
  w.kv("pid", kHostPid);
  w.kv("name", "process_name");
  w.key("args");
  w.begin_object();
  w.kv("name", "host");
  w.end_object();
  w.end_object();
  for (const auto& b : bufs) {
    std::lock_guard<std::mutex> lock(b->mu);
    for (const Event& e : b->events) {
      w.begin_object();
      w.kv("ph", std::string_view(&e.ph, 1));
      w.kv("pid", e.pid);
      w.kv("tid", e.tid);
      if (e.ph == 'M') {
        w.kv("name", e.meta_key);
        w.key("args");
        w.begin_object();
        w.kv("name", e.name);
        w.end_object();
      } else {
        w.kv("name", e.name);
        if (e.cat != nullptr) w.kv("cat", e.cat);
        w.kv("ts", e.ts_us);
        w.kv("dur", e.dur_us);
      }
      w.end_object();
    }
  }
  w.end_array();
  w.end_object();
  w.finish();
  os << "\n";
}

}  // namespace reramdl::obs
