#include "obs/attribution.hpp"

#include <string_view>
#include <vector>

#include "obs/json_writer.hpp"

namespace reramdl::obs {

namespace {

// total(node) = self + sum of children totals, computed bottom-up.
using Values = std::map<std::string, double>;

void merge_into(Values& into, const Values& from) {
  for (const auto& [k, v] : from) into[k] += v;
}

}  // namespace

Attribution& Attribution::instance() {
  // Leaked like the rest of obs state: written from atexit report hooks.
  static Attribution* a = new Attribution;
  return *a;
}

Attribution::Node& Attribution::node_at(const std::string& path) {
  Node* n = &root_;
  std::string_view rest(path);
  while (!rest.empty()) {
    const std::size_t slash = rest.find('/');
    const std::string_view seg = rest.substr(0, slash);
    if (!seg.empty()) n = &n->children[std::string(seg)];
    rest = slash == std::string_view::npos ? std::string_view()
                                           : rest.substr(slash + 1);
  }
  return *n;
}

const Attribution::Node* Attribution::find(const std::string& path) const {
  const Node* n = &root_;
  std::string_view rest(path);
  while (!rest.empty()) {
    const std::size_t slash = rest.find('/');
    const std::string_view seg = rest.substr(0, slash);
    if (!seg.empty()) {
      const auto it = n->children.find(std::string(seg));
      if (it == n->children.end()) return nullptr;
      n = &it->second;
    }
    rest = slash == std::string_view::npos ? std::string_view()
                                           : rest.substr(slash + 1);
  }
  return n;
}

void Attribution::add(const std::string& path, const std::string& key,
                      double value) {
  std::lock_guard<std::mutex> lock(mu_);
  node_at(path).self[key] += value;
}

double Attribution::total(const std::string& path,
                          const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Node* n = find(path);
  if (n == nullptr) return 0.0;
  // Iterative DFS to avoid recursion limits on deep (pathological) trees.
  double sum = 0.0;
  std::vector<const Node*> stack{n};
  while (!stack.empty()) {
    const Node* cur = stack.back();
    stack.pop_back();
    const auto it = cur->self.find(key);
    if (it != cur->self.end()) sum += it->second;
    for (const auto& [name, child] : cur->children) stack.push_back(&child);
  }
  return sum;
}

bool Attribution::empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return root_.self.empty() && root_.children.empty();
}

void Attribution::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  root_.self.clear();
  root_.children.clear();
}

namespace {

// Emits `node` (named) and returns its rollup totals to the parent.
// Attribution::Node is private; the friend-free workaround is a template.
template <typename NodeT>
Values write_node_impl(JsonWriter& w, const std::string& name,
                       const NodeT& node) {
  Values total = node.self;
  w.begin_object();
  w.kv("name", name);

  w.key("self");
  w.begin_object();
  for (const auto& [k, v] : node.self) w.kv(k, v);
  w.end_object();

  w.key("children");
  w.begin_array();
  for (const auto& [child_name, child] : node.children)
    merge_into(total, write_node_impl(w, child_name, child));
  w.end_array();

  w.key("total");
  w.begin_object();
  for (const auto& [k, v] : total) w.kv(k, v);
  w.end_object();

  const auto roofline = total.find("roofline_flops");
  if (roofline != total.end() && roofline->second > 0.0)
    w.kv("utilization", total["flops"] / roofline->second);
  const auto potential = total.find("zeros_potential");
  if (potential != total.end() && potential->second > 0.0)
    w.kv("sparsity_effectiveness", total["zeros_skipped"] / potential->second);

  w.end_object();
  return total;
}

}  // namespace

void Attribution::write_json(JsonWriter& w) const {
  std::lock_guard<std::mutex> lock(mu_);
  w.begin_array();
  for (const auto& [name, child] : root_.children)
    write_node_impl(w, name, child);
  w.end_array();
}

}  // namespace reramdl::obs
