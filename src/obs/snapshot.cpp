#include "obs/snapshot.hpp"

#include <algorithm>

#include "common/env.hpp"
#include "obs/json_writer.hpp"
#include "obs/metrics.hpp"

namespace reramdl::obs {

Snapshotter::Snapshotter()
    : capacity_(static_cast<std::size_t>(
          env::env_int("RERAMDL_SNAPSHOT_CAP", 256, 4, 1 << 20))),
      wall_interval_ns_(static_cast<std::uint64_t>(env::env_int(
                            "RERAMDL_SNAPSHOT_WALL_MS", 50, 1, 600000)) *
                        1000000ull) {}

Snapshotter& Snapshotter::instance() {
  // Leaked like the rest of obs state: sampled from atexit report hooks.
  static Snapshotter* s = new Snapshotter;
  return *s;
}

void Snapshotter::tick() {
  std::lock_guard<std::mutex> lock(mu_);
  // Same >= 1 clamp as wall_tick(): 0 is the "never ticked" sentinel.
  last_activity_ns_.store(std::max<std::uint64_t>(monotonic_ns(), 1),
                          std::memory_order_relaxed);
  tick_locked();
}

void Snapshotter::tick_locked() {
  if (ticks_ % stride_ == 0) {
    Snapshot s;
    s.tick = ticks_;
    s.wall_ns = monotonic_ns();
    Registry::instance().sample(s.counters, s.gauges);
    samples_.push_back(std::move(s));
    compact_locked();
  }
  ++ticks_;
}

void Snapshotter::compact_locked() {
  // Ring full: drop every other sample and double the stride (repeatedly,
  // so a capacity shrink far below the retained count converges too).
  // Retained ticks stay multiples of the new stride; spacing stays uniform.
  while (samples_.size() >= capacity_) {
    std::size_t keep = 0;
    for (std::size_t i = 0; i < samples_.size(); i += 2) {
      if (keep != i) samples_[keep] = std::move(samples_[i]);  // no self-move
      ++keep;
    }
    samples_.resize(keep);
    stride_ *= 2;
  }
}

void Snapshotter::wall_tick() {
  // Clamp to >= 1 so the stored stamp can never be the 0 sentinel again.
  const std::uint64_t now = std::max<std::uint64_t>(monotonic_ns(), 1);
  std::uint64_t last = last_activity_ns_.load(std::memory_order_relaxed);
  // last == 0 means no tick of either kind has ever fired: sample right
  // away. The elapsed check alone would silently swallow the whole first
  // interval — monotonic_ns() counts from a process-local epoch, so early
  // in the run `now` itself is smaller than the interval.
  if (last != 0 && now - last < wall_interval_ns_.load(std::memory_order_relaxed))
    return;
  // One winner per interval; losers (and racing step ticks) skip.
  if (!last_activity_ns_.compare_exchange_strong(last, now,
                                                 std::memory_order_relaxed))
    return;
  std::lock_guard<std::mutex> lock(mu_);
  tick_locked();
}

std::size_t Snapshotter::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_.size();
}

std::uint64_t Snapshotter::ticks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ticks_;
}

std::uint64_t Snapshotter::stride() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stride_;
}

std::size_t Snapshotter::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

void Snapshotter::set_capacity(std::size_t cap) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = std::max<std::size_t>(cap, 4);
  // A shrink must restore size() < capacity() immediately — downstream
  // consumers (validate_obs_json.py) treat an over-full ring as corrupt.
  compact_locked();
}

std::uint64_t Snapshotter::wall_interval_ms() const {
  return wall_interval_ns_.load(std::memory_order_relaxed) / 1000000ull;
}

void Snapshotter::set_wall_interval_ms(std::uint64_t ms) {
  wall_interval_ns_.store(std::max<std::uint64_t>(ms, 1) * 1000000ull,
                          std::memory_order_relaxed);
}

std::vector<Snapshot> Snapshotter::samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_;
}

void Snapshotter::write_json(JsonWriter& w) const {
  std::lock_guard<std::mutex> lock(mu_);
  w.begin_object();
  w.kv("capacity", static_cast<std::uint64_t>(capacity_));
  w.kv("stride", stride_);
  w.kv("ticks", ticks_);
  w.key("samples");
  w.begin_array();
  for (const Snapshot& s : samples_) {
    w.begin_object();
    w.kv("tick", s.tick);
    w.kv("wall_ns", s.wall_ns);
    w.key("counters");
    w.begin_object();
    for (const auto& [name, v] : s.counters) w.kv(name, v);
    w.end_object();
    w.key("gauges");
    w.begin_object();
    for (const auto& [name, v] : s.gauges) w.kv(name, v);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void Snapshotter::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  samples_.clear();
  ticks_ = 0;
  stride_ = 1;
  last_activity_ns_.store(0, std::memory_order_relaxed);
}

void snapshot_tick() {
  if (!metrics_enabled()) return;
  Snapshotter::instance().tick();
}

void snapshot_wall_tick() {
  if (!metrics_enabled()) return;
  Snapshotter::instance().wall_tick();
}

}  // namespace reramdl::obs
