#include "obs/metrics.hpp"

#include "obs/report.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>

#include "common/env.hpp"
#include "obs/json_writer.hpp"
#include "obs/snapshot.hpp"

namespace reramdl::obs {

namespace {

// Atomic min/max over doubles via CAS (no fetch_min for floating point).
void atomic_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

struct MetricsState {
  std::atomic<bool> enabled{false};
  std::mutex mu;  // guards path
  std::string path;
};

MetricsState& metrics_state() {
  // Leaked: pool workers and atexit hooks may outlive static destruction.
  static MetricsState* s = [] {
    auto* st = new MetricsState;
    const std::string path = env::env_path("RERAMDL_METRICS");
    if (!path.empty()) {
      st->path = path;
      st->enabled.store(true, std::memory_order_release);
      std::atexit(write_metrics);
    }
    return st;
  }();
  return *s;
}

// Anchor the RERAMDL_REPORT probe: report.cpp's own load-time probe is
// dropped by the linker in binaries that never name a report symbol
// (static-library TU selection), so the always-linked metrics TU references
// it here. Runs at load time; report_state() may re-enter metrics_state()
// via set_metrics_enabled(), which is safe at namespace scope (no
// in-progress function-local static).
[[maybe_unused]] const bool report_probe_anchor = (report_enabled(), true);

}  // namespace

std::uint64_t monotonic_ns() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - epoch)
          .count());
}

bool metrics_enabled() {
  return metrics_state().enabled.load(std::memory_order_acquire);
}

void set_metrics_enabled(bool on) {
  metrics_state().enabled.store(on, std::memory_order_release);
}

void set_metrics_path(std::string path) {
  auto& s = metrics_state();
  const bool enable = !path.empty();
  {
    std::lock_guard<std::mutex> lock(s.mu);
    s.path = std::move(path);
  }
  if (enable) s.enabled.store(true, std::memory_order_release);
}

std::string metrics_path() {
  auto& s = metrics_state();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.path;
}

void write_metrics() {
  const std::string path = metrics_path();
  if (path.empty()) return;
  std::ofstream os(path);
  if (!os) {
    env::detail::warn_invalid("RERAMDL_METRICS", path,
                              "cannot open for writing; metrics dump dropped");
    return;
  }
  JsonWriter w(os);
  w.begin_object();
  w.kv("schema_version", 1);
  w.kv("kind", "reramdl_metrics");
  Registry::instance().write_sections(w);
  w.key("timeseries");
  Snapshotter::instance().write_json(w);
  w.end_object();
  w.finish();
}

// ---- Histogram --------------------------------------------------------------

std::size_t Histogram::bucket_index(double v) {
  if (!(v >= 1.0)) return 0;  // negatives and NaN clamp to the first bucket
  const int e = std::ilogb(v);  // floor(log2 v) for finite v >= 1
  if (e < 0) return 0;
  const std::size_t i = static_cast<std::size_t>(e) + 1;
  return i < kBuckets ? i : kBuckets - 1;
}

double Histogram::bucket_upper_bound(std::size_t i) {
  return std::ldexp(1.0, static_cast<int>(i));  // 2^i
}

void Histogram::record(double v) {
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
  if (count_.fetch_add(1, std::memory_order_relaxed) == 0) {
    // First sample seeds min/max; racing recorders still converge because
    // the CAS loops below run for every sample.
    min_.store(v, std::memory_order_relaxed);
    max_.store(v, std::memory_order_relaxed);
  }
  atomic_min(min_, v);
  atomic_max(max_, v);
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? std::nan("") : sum() / static_cast<double>(n);
}

double Histogram::min() const {
  return count() == 0 ? std::nan("") : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const {
  return count() == 0 ? std::nan("") : max_.load(std::memory_order_relaxed);
}

std::uint64_t Histogram::bucket_count(std::size_t i) const {
  return i < kBuckets ? buckets_[i].load(std::memory_order_relaxed) : 0;
}

double Histogram::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return std::nan("");
  q = std::clamp(q, 0.0, 1.0);
  const double lo = min();
  const double hi = max();
  const double target = q * static_cast<double>(n);
  double cum = 0.0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const double b = static_cast<double>(bucket_count(i));
    if (b == 0.0) continue;
    if (cum + b >= target) {
      const double lower = i == 0 ? 0.0 : bucket_upper_bound(i - 1);
      const double upper = bucket_upper_bound(i);
      const double frac = std::clamp((target - cum) / b, 0.0, 1.0);
      return std::clamp(lower + frac * (upper - lower), lo, hi);
    }
    cum += b;
  }
  return hi;  // only reachable via racing recorders mid-update
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

// ---- Registry ---------------------------------------------------------------

Registry& Registry::instance() {
  static Registry* r = new Registry;  // leaked with the rest of obs state
  return *r;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void Registry::write_json(JsonWriter& w) const {
  w.begin_object();
  w.kv("schema_version", 1);
  w.kv("kind", "reramdl_metrics");
  write_sections(w);
  w.end_object();
}

void Registry::write_sections(JsonWriter& w) const {
  std::lock_guard<std::mutex> lock(mu_);
  w.key("counters");
  w.begin_object();
  for (const auto& [name, c] : counters_) w.kv(name, c->value());
  w.end_object();

  w.key("gauges");
  w.begin_object();
  for (const auto& [name, g] : gauges_) w.kv(name, g->value());
  w.end_object();

  w.key("histograms");
  w.begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name);
    w.begin_object();
    w.kv("count", h->count());
    w.kv("sum", h->sum());
    if (h->count() > 0) {
      w.kv("min", h->min());
      w.kv("max", h->max());
      w.kv("mean", h->mean());
      w.kv("p50", h->quantile(0.50));
      w.kv("p90", h->quantile(0.90));
      w.kv("p99", h->quantile(0.99));
    }
    w.key("buckets");
    w.begin_array();
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      const std::uint64_t n = h->bucket_count(i);
      if (n == 0) continue;  // sparse dump; bounds are fixed and implied
      w.begin_object();
      w.kv("le", Histogram::bucket_upper_bound(i));
      w.kv("count", n);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
}

void Registry::sample(std::vector<std::pair<std::string, double>>& counters,
                      std::vector<std::pair<std::string, double>>& gauges) const {
  std::lock_guard<std::mutex> lock(mu_);
  counters.clear();
  counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_)
    counters.emplace_back(name, static_cast<double>(c->value()));
  gauges.clear();
  gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) gauges.emplace_back(name, g->value());
}

void Registry::write_json(std::ostream& os) const {
  JsonWriter w(os);
  write_json(w);
  w.finish();
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

// ---- ScopedHistogramTimer ---------------------------------------------------

ScopedHistogramTimer::ScopedHistogramTimer(const char* name) {
  if (metrics_enabled()) {
    name_ = name;
    start_ns_ = monotonic_ns();
  }
}

ScopedHistogramTimer::~ScopedHistogramTimer() {
  if (name_ == nullptr) return;
  const std::uint64_t dur = monotonic_ns() - start_ns_;
  Registry::instance().histogram(name_).record(static_cast<double>(dur));
}

}  // namespace reramdl::obs
