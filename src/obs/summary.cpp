#include "obs/summary.hpp"

#include <algorithm>
#include <cmath>

#include "obs/json_writer.hpp"

namespace reramdl::obs {

void SampleSummary::add(double v) {
  samples_.push_back(v);
  sorted_.clear();
  sum_ += v;
}

const std::vector<double>& SampleSummary::sorted() const {
  if (sorted_.size() != samples_.size()) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
  }
  return sorted_;
}

double SampleSummary::min() const {
  return samples_.empty() ? std::nan("") : sorted().front();
}

double SampleSummary::max() const {
  return samples_.empty() ? std::nan("") : sorted().back();
}

double SampleSummary::mean() const {
  return samples_.empty() ? std::nan("")
                          : sum_ / static_cast<double>(samples_.size());
}

double SampleSummary::quantile(double q) const {
  if (samples_.empty()) return std::nan("");
  q = std::clamp(q, 0.0, 1.0);
  const std::vector<double>& s = sorted();
  // Nearest rank: the smallest sample with cumulative frequency >= q.
  const double rank = std::ceil(q * static_cast<double>(s.size()));
  const std::size_t idx =
      rank < 1.0 ? 0 : std::min(static_cast<std::size_t>(rank) - 1,
                                s.size() - 1);
  return s[idx];
}

void SampleSummary::write_json(JsonWriter& w) const {
  w.begin_object();
  w.kv("count", static_cast<std::uint64_t>(count()));
  w.kv("min", min());
  w.kv("max", max());
  w.kv("mean", mean());
  w.kv("p50", quantile(0.50));
  w.kv("p90", quantile(0.90));
  w.kv("p99", quantile(0.99));
  w.end_object();
}

}  // namespace reramdl::obs
