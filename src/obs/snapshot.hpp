// Time-series snapshots: a fixed-capacity downsampling ring that samples
// every counter and gauge in the Registry at "tick" boundaries, giving the
// end-of-run metrics dump a time dimension ("timeseries" section).
//
// Tick sources: the simulated step drivers call obs::snapshot_tick() at
// deterministic points (ChipSimulator after each run, the Trainer after each
// batch); hot paths without a step notion call obs::snapshot_wall_tick(),
// which samples at most once per RERAMDL_SNAPSHOT_WALL_MS of wall time and
// is suppressed while step ticks are flowing. Both are no-ops (one relaxed
// atomic load) when metrics are disabled, and neither reads or writes any
// compute state, so results stay bit-identical for any RERAMDL_THREADS.
//
// Downsampling: the ring keeps at most RERAMDL_SNAPSHOT_CAP samples
// (default 256). When it fills, every other retained sample is dropped and
// the sampling stride doubles, so an arbitrarily long run is always covered
// end-to-end by <= capacity samples at uniform tick spacing — the standard
// stride-doubling reservoir for "plot the whole run" telemetry.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace reramdl::obs {

class JsonWriter;

// One sampled point: every counter/gauge value at a tick boundary.
struct Snapshot {
  std::uint64_t tick = 0;     // step index at sample time
  std::uint64_t wall_ns = 0;  // monotonic_ns() at sample time
  std::vector<std::pair<std::string, double>> counters;  // name order
  std::vector<std::pair<std::string, double>> gauges;
};

class Snapshotter {
 public:
  static Snapshotter& instance();

  // Record a step tick: samples the registry when the tick index lands on
  // the current stride, then advances the index (and halves the ring when
  // full). Callers gate on metrics_enabled() — or use the free functions.
  void tick();
  // Wall-clock fallback: forwards to tick() at most once per wall interval,
  // and never while step ticks arrived within the same interval.
  void wall_tick();

  std::size_t size() const;
  std::uint64_t ticks() const;
  std::uint64_t stride() const;
  std::size_t capacity() const;
  // Also RERAMDL_SNAPSHOT_CAP; min 4. Shrinking below the retained sample
  // count compacts immediately (stride-doubling), so size() < capacity()
  // holds right after the call — not only at the next tick.
  void set_capacity(std::size_t cap);

  // Wall-tick rate limit (RERAMDL_SNAPSHOT_WALL_MS at construction). The
  // setter exists for tests that drive wall-clock-only mode without
  // re-execing with a different environment.
  std::uint64_t wall_interval_ms() const;
  void set_wall_interval_ms(std::uint64_t ms);  // min 1

  // Copy of the retained samples, oldest first (tests / tools).
  std::vector<Snapshot> samples() const;

  // {"capacity": N, "stride": S, "ticks": T, "samples": [...]}.
  void write_json(JsonWriter& w) const;

  void reset();  // drops samples and rewinds tick/stride; keeps capacity

 private:
  Snapshotter();

  void tick_locked();
  void compact_locked();

  mutable std::mutex mu_;
  std::vector<Snapshot> samples_;
  std::uint64_t ticks_ = 0;
  std::uint64_t stride_ = 1;
  std::size_t capacity_;
  std::atomic<std::uint64_t> wall_interval_ns_;
  std::atomic<std::uint64_t> last_activity_ns_{0};
};

// Instrumentation API: both are single-relaxed-load no-ops when metrics are
// disabled.
void snapshot_tick();
void snapshot_wall_tick();

}  // namespace reramdl::obs
