// Umbrella header for the observability layer. Instrumented code includes
// this one header and uses:
//
//   RERAMDL_TRACE_SCOPE("xbar.compute", "circuit");      // wall-clock span
//   obs::ScopedHistogramTimer t("xbar.mvm_ns");          // latency histogram
//   if (obs::metrics_enabled()) {
//     static obs::Counter& c = obs::Registry::instance().counter("xbar.mvms");
//     c.add();
//   }
//
// Runtime switches: RERAMDL_TRACE=<path> (Chrome trace-event JSON, open in
// Perfetto), RERAMDL_METRICS=<path> (registry dump incl. time-series
// snapshots), and RERAMDL_REPORT=<path> (attribution run report), all
// written at process exit. Disabled cost is one relaxed atomic load per
// site; the RERAMDL_OBS=OFF CMake option (-DRERAMDL_OBS_DISABLED) removes
// the span macro at compile time.
#pragma once

#include "obs/attribution.hpp"
#include "obs/json_writer.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/snapshot.hpp"
#include "obs/summary.hpp"
#include "obs/trace.hpp"
