#include "obs/report.hpp"

#include <cstdlib>
#include <fstream>
#include <mutex>

#include "common/env.hpp"
#include "obs/attribution.hpp"
#include "obs/json_writer.hpp"
#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"

namespace reramdl::obs {

namespace {

struct ReportState {
  std::mutex mu;  // guards path
  std::string path;
};

ReportState& report_state() {
  // Leaked: written from an atexit hook.
  static ReportState* s = [] {
    auto* st = new ReportState;
    const std::string path = env::env_path("RERAMDL_REPORT");
    if (!path.empty()) {
      st->path = path;
      // The report is assembled from the metric instruments, so a report
      // path implies collection even without RERAMDL_METRICS.
      set_metrics_enabled(true);
      std::atexit(write_run_report);
    }
    return st;
  }();
  return *s;
}

// Load-time probe: instrumentation sites gate on metrics_enabled(), which
// only consults RERAMDL_METRICS — a report-only run must flip the enable
// switch before the first site asks.
[[maybe_unused]] const bool report_env_probed = (report_state(), true);

}  // namespace

bool report_enabled() { return !report_path().empty(); }

void set_report_path(std::string path) {
  auto& s = report_state();
  const bool enable = !path.empty();
  {
    std::lock_guard<std::mutex> lock(s.mu);
    s.path = std::move(path);
  }
  if (enable) set_metrics_enabled(true);
}

std::string report_path() {
  auto& s = report_state();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.path;
}

void write_run_report() {
  const std::string path = report_path();
  if (path.empty()) return;
  std::ofstream os(path);
  if (!os) {
    env::detail::warn_invalid("RERAMDL_REPORT", path,
                              "cannot open for writing; run report dropped");
    return;
  }
  JsonWriter w(os);
  w.begin_object();
  w.kv("schema_version", 1);
  w.kv("kind", "reramdl_run_report");

  // Top-level totals are the attribution root rollups — the reconciliation
  // anchor the validator recomputes from the emitted tree.
  Attribution& attr = Attribution::instance();
  w.key("totals");
  w.begin_object();
  w.kv("latency_ns", attr.total("", "latency_ns"));
  w.kv("energy_pj", attr.total("", "energy_pj"));
  w.kv("flops", attr.total("", "flops"));
  w.end_object();

  w.key("attribution");
  attr.write_json(w);

  Registry::instance().write_sections(w);

  w.key("timeseries");
  Snapshotter::instance().write_json(w);

  w.end_object();
  w.finish();
}

}  // namespace reramdl::obs
