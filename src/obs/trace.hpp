// Span tracer emitting Chrome trace-event JSON (the format Perfetto and
// chrome://tracing load natively: https://ui.perfetto.dev, "Open trace").
//
// Two kinds of timelines coexist in one file, separated by trace "process"
// ids so viewers render them as distinct groups:
//   - pid 1 ("host"): real wall-clock spans recorded by ScopedSpan on the
//     thread that executed them (tid = small per-thread id). Nesting on a
//     thread appears as Perfetto's stacked slices.
//   - pid >= 100 (virtual): simulated timelines injected via emit_complete
//     with model timestamps — per-bank busy windows from ChipSimulator,
//     PipelineSim stage Gantt charts (1 cycle == 1 us so the charts are
//     readable at default zoom). alloc_virtual_pid() names each group.
//
// Enablement mirrors metrics: RERAMDL_TRACE=<path> turns tracing on and
// writes the file at process exit; set_trace_path()/write_trace() do the
// same programmatically. When disabled, ScopedSpan costs one relaxed atomic
// load and RERAMDL_OBS_DISABLED compiles the macro away entirely. Events
// buffer in per-thread vectors (one uncontended mutex each) and serialize
// only at write_trace().
#pragma once

#include <cstdint>
#include <string>

namespace reramdl::obs {

inline constexpr int kHostPid = 1;

bool trace_enabled();
// Non-empty path enables tracing; empty disables (buffered events are kept
// until reset_trace() or write_trace()).
void set_trace_path(std::string path);
std::string trace_path();

// Serialize every buffered event to trace_path() as Chrome trace-event JSON
// ({"traceEvents": [...]}). No-op when the path is empty. Buffers are not
// cleared, so a later write produces a superset file.
void write_trace();

// Drop all buffered events (tests).
void reset_trace();

// Total events currently buffered across threads (tests / sanity checks).
std::size_t trace_event_count();

// Small dense id for the calling thread, assigned on first use (0, 1, ...).
int current_tid();

// Inject a complete event ("ph":"X") with explicit timestamps, in
// microseconds — the unit the trace format mandates. Used for simulated
// timelines; host-side code should prefer ScopedSpan.
void emit_complete(std::string name, const char* cat, double ts_us,
                   double dur_us, int tid, int pid = kHostPid);

// Reserve a fresh virtual pid and emit its process_name metadata.
int alloc_virtual_pid(const std::string& process_name);

// Emit thread_name metadata for (pid, tid) — names simulated tracks.
void name_thread(int pid, int tid, const std::string& name);

// RAII wall-clock span on the calling thread. `name` and `cat` must have
// static storage duration (the span keeps only the pointers until close).
class ScopedSpan {
 public:
  ScopedSpan(const char* name, const char* cat) {
    if (trace_enabled()) begin(name, cat);
  }
  ~ScopedSpan() {
    if (name_ != nullptr) end();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  void begin(const char* name, const char* cat);
  void end();

  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  std::uint64_t start_ns_ = 0;
};

}  // namespace reramdl::obs

// Function-scope span macro; compiles to nothing under RERAMDL_OBS_DISABLED
// (set globally via the RERAMDL_OBS=OFF CMake option).
#if defined(RERAMDL_OBS_DISABLED)
#define RERAMDL_TRACE_SCOPE(name, cat) \
  do {                                 \
  } while (false)
#else
#define RERAMDL_TRACE_SCOPE_CAT2(a, b) a##b
#define RERAMDL_TRACE_SCOPE_CAT(a, b) RERAMDL_TRACE_SCOPE_CAT2(a, b)
#define RERAMDL_TRACE_SCOPE(name, cat)                    \
  ::reramdl::obs::ScopedSpan RERAMDL_TRACE_SCOPE_CAT(     \
      rerdl_obs_span_, __LINE__)(name, cat)
#endif
