#include "obs/json_writer.hpp"

#include <cmath>
#include <cstdio>
#include <limits>

#include "common/check.hpp"

namespace reramdl::obs {

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::newline_indent() {
  if (!pretty_) return;
  os_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i) os_ << "  ";
}

void JsonWriter::before_value() {
  RERAMDL_CHECK(!done_);
  if (stack_.empty()) return;  // the single top-level value
  if (stack_.back() == Ctx::kObject) {
    // Inside an object a value is only legal right after its key; key()
    // already did the comma/indent bookkeeping.
    RERAMDL_CHECK(key_pending_);
    key_pending_ = false;
    return;
  }
  if (has_items_.back()) os_ << (pretty_ ? "," : ", ");
  has_items_.back() = true;
  newline_indent();
}

void JsonWriter::key(std::string_view k) {
  RERAMDL_CHECK(!done_);
  RERAMDL_CHECK(!stack_.empty() && stack_.back() == Ctx::kObject);
  RERAMDL_CHECK(!key_pending_);
  if (has_items_.back()) os_ << (pretty_ ? "," : ", ");
  has_items_.back() = true;
  newline_indent();
  os_ << '"' << escape(k) << "\": ";
  key_pending_ = true;
}

void JsonWriter::open(Ctx ctx, char brace) {
  before_value();
  stack_.push_back(ctx);
  has_items_.push_back(false);
  os_ << brace;
}

void JsonWriter::close(Ctx ctx, char brace) {
  RERAMDL_CHECK(!stack_.empty() && stack_.back() == ctx);
  RERAMDL_CHECK(!key_pending_);
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items) newline_indent();
  os_ << brace;
  if (stack_.empty()) done_ = true;
}

void JsonWriter::begin_object() { open(Ctx::kObject, '{'); }
void JsonWriter::end_object() { close(Ctx::kObject, '}'); }
void JsonWriter::begin_array() { open(Ctx::kArray, '['); }
void JsonWriter::end_array() { close(Ctx::kArray, ']'); }

void JsonWriter::value(std::string_view s) {
  before_value();
  os_ << '"' << escape(s) << '"';
  done_ = stack_.empty();
}

void JsonWriter::value(bool b) {
  before_value();
  os_ << (b ? "true" : "false");
  done_ = stack_.empty();
}

void JsonWriter::value(double d) {
  before_value();
  if (!std::isfinite(d)) {
    os_ << "null";
  } else if (d == static_cast<double>(static_cast<std::int64_t>(d)) &&
             std::abs(d) < 1e15) {
    // Integral doubles print without an exponent or trailing digits so the
    // common case (counts, cycle totals) stays human-readable.
    os_ << static_cast<std::int64_t>(d);
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.*g",
                  std::numeric_limits<double>::max_digits10, d);
    os_ << buf;
  }
  done_ = stack_.empty();
}

void JsonWriter::value(std::uint64_t v) {
  before_value();
  os_ << v;
  done_ = stack_.empty();
}

void JsonWriter::value(std::int64_t v) {
  before_value();
  os_ << v;
  done_ = stack_.empty();
}

void JsonWriter::null() {
  before_value();
  os_ << "null";
  done_ = stack_.empty();
}

void JsonWriter::finish() {
  RERAMDL_CHECK(stack_.empty());
  RERAMDL_CHECK(done_);
  if (pretty_) os_ << '\n';
}

}  // namespace reramdl::obs
