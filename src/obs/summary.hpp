// Exact summary statistics over a retained sample set — the shared helper
// behind the benches' per-kernel timing summaries. Histograms (metrics.hpp)
// approximate quantiles over log buckets because hot paths cannot afford to
// retain samples; benches keep only a handful of repetitions, so this helper
// stores them all and reports exact nearest-rank order statistics.
#pragma once

#include <cstddef>
#include <vector>

namespace reramdl::obs {

class JsonWriter;

class SampleSummary {
 public:
  void add(double v);

  std::size_t count() const { return samples_.size(); }
  double sum() const { return sum_; }
  double min() const;   // NaN when empty
  double max() const;   // NaN when empty
  double mean() const;  // NaN when empty

  // Exact nearest-rank quantile over the retained samples; q clamps to
  // [0, 1]. NaN when empty.
  double quantile(double q) const;

  // {"count": ..., "min": ..., "max": ..., "mean": ...,
  //  "p50": ..., "p90": ..., "p99": ...}
  void write_json(JsonWriter& w) const;

 private:
  const std::vector<double>& sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;  // rebuilt lazily after add()
  double sum_ = 0.0;
};

}  // namespace reramdl::obs
