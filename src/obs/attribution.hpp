// Hierarchical attribution: a process-global tree that folds the scattered
// span/stat sources (per-bank chip-sim busy/energy, per-layer controller
// segments, per-tile grid MVMs, NoC transfers, sparse-vs-dense selector
// decisions, plan-cache hits, write-verify retries) into one
// chip -> bank -> layer -> tile report.
//
// Nodes are addressed by slash paths ("chip/bank0/layer2/tile3") and carry a
// flat map of named double accumulators ("latency_ns", "energy_pj", "flops",
// "roofline_flops", "zeros_skipped", "zeros_potential", ...). Writers only
// ever add() into a node's *self* values; rollup totals
// (total = self + sum of children totals) and the derived ratios —
// utilization = flops / roofline_flops, sparsity_effectiveness =
// zeros_skipped / zeros_potential — are computed at write_json time, so the
// emitted tree reconciles exactly by construction.
//
// Determinism: every producer either adds from a serial section or from
// per-item deltas already merged in a fixed order, and std::map keeps the
// JSON ordering stable — the tree is byte-identical for any RERAMDL_THREADS.
// Callers gate on metrics_enabled(); the disabled path never reaches here.
#pragma once

#include <map>
#include <mutex>
#include <string>

namespace reramdl::obs {

class JsonWriter;

class Attribution {
 public:
  static Attribution& instance();

  // Accumulate `value` into accumulator `key` of the node at `path`
  // (slash-separated; intermediate nodes spring into existence).
  void add(const std::string& path, const std::string& key, double value);

  // Rollup total (self + all descendants) of `key` at `path`; "" addresses
  // the whole tree. Missing nodes/keys read as 0.
  double total(const std::string& path, const std::string& key) const;

  bool empty() const;
  void reset();

  // Emits the top-level node array:
  //   [{"name": ..., "self": {...}, "total": {...},
  //     "utilization": ...?, "sparsity_effectiveness": ...?,
  //     "children": [...]}, ...]
  void write_json(JsonWriter& w) const;

 private:
  struct Node {
    std::map<std::string, double> self;
    std::map<std::string, Node> children;
  };

  Attribution() = default;

  Node& node_at(const std::string& path);  // requires mu_ held
  const Node* find(const std::string& path) const;

  mutable std::mutex mu_;
  Node root_;
};

}  // namespace reramdl::obs
