// Thread-safe metrics registry: named counters, gauges, and fixed
// log-scale-bucket histograms, updatable concurrently from the thread pool
// with lock-free atomics.
//
// Enablement: metrics are off by default. RERAMDL_METRICS=<path> in the
// environment turns collection on and dumps the registry as JSON to <path>
// at process exit; tests and benches can instead call set_metrics_enabled /
// set_metrics_path / write_metrics directly. The disabled fast path at every
// instrumentation site is a single relaxed atomic load (see
// RERAMDL_OBS_DISABLED in obs.hpp for the compile-time kill switch), which
// the acceptance bench requires to cost < 2% of wall time.
//
// Handle stability: counter()/gauge()/histogram() return references that
// stay valid for the life of the process — call sites cache them in
// function-local statics and update without further registry locking.
// reset() zeroes values but never invalidates handles.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace reramdl::obs {

class JsonWriter;

// Monotonic nanoseconds since a process-static epoch; the shared time base
// for latency histograms and trace span timestamps.
std::uint64_t monotonic_ns();

// Fast global switch; instrumentation sites guard on this before touching
// any instrument.
bool metrics_enabled();
void set_metrics_enabled(bool on);

// Non-empty path enables collection and is the write_metrics() target.
void set_metrics_path(std::string path);
std::string metrics_path();

// Dump the registry to metrics_path() (no-op when the path is empty). Also
// installed as an atexit hook when RERAMDL_METRICS is set.
void write_metrics();

class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

// Histogram over fixed base-2 log-scale buckets: bucket 0 counts values in
// [0, 1), bucket i >= 1 counts [2^(i-1), 2^i). 64 buckets cover any
// nanosecond-scale latency the simulator can produce (2^63 ns ≈ 292 years);
// negative values clamp to bucket 0. Fixed bounds make histograms mergeable
// bucket-by-bucket across threads and runs.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record(double v);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const;
  double min() const;  // NaN when empty
  double max() const;  // NaN when empty
  std::uint64_t bucket_count(std::size_t i) const;

  // Quantile estimate for q in [0, 1] (clamped): walks the cumulative bucket
  // counts to rank q*count and interpolates linearly inside the landing
  // bucket (mass assumed uniform within a bucket), then clamps to the exact
  // observed [min, max] so single-bucket histograms report their true value.
  // NaN when empty. p50/p90/p99 land in the JSON dump next to mean.
  double quantile(double q) const;

  // Inclusive upper bound of bucket i: 1, 2, 4, ... (matches the Prometheus
  // "le" convention in the JSON dump).
  static double bucket_upper_bound(std::size_t i);
  static std::size_t bucket_index(double v);

  void reset();

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};  // valid only when count_ > 0
  std::atomic<double> max_{0.0};
};

class Registry {
 public:
  static Registry& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  // {"counters": {...}, "gauges": {...}, "histograms": {...}} — the full
  // file written by write_metrics() adds schema framing around this.
  void write_json(JsonWriter& w) const;
  void write_json(std::ostream& os) const;

  // The three sections alone ("counters"/"gauges"/"histograms" keys into the
  // writer's current object) — shared by write_json and the run report.
  void write_sections(JsonWriter& w) const;

  // Point-in-time values of every counter and gauge in name order; the
  // Snapshotter's sampling feed.
  void sample(std::vector<std::pair<std::string, double>>& counters,
              std::vector<std::pair<std::string, double>>& gauges) const;

  // Zero every instrument; existing references stay valid.
  void reset();

 private:
  Registry() = default;

  mutable std::mutex mu_;  // guards the maps, not the instrument values
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// RAII latency probe: when metrics are enabled at construction, records the
// scope's elapsed nanoseconds into histogram(name) at destruction. `name`
// must be a string with static storage duration.
class ScopedHistogramTimer {
 public:
  explicit ScopedHistogramTimer(const char* name);
  ~ScopedHistogramTimer();
  ScopedHistogramTimer(const ScopedHistogramTimer&) = delete;
  ScopedHistogramTimer& operator=(const ScopedHistogramTimer&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
};

}  // namespace reramdl::obs
