// Run report: RERAMDL_REPORT=<path> writes a machine-readable
// run_report.json at process exit — the one-stop artifact combining the
// attribution tree (with rollup totals), every registry instrument
// (histograms with p50/p90/p99), and the time-series snapshots.
// tools/report.py renders it as a human summary table and diffs two reports
// for regression triage; tools/validate_obs_json.py checks the schema and
// the self-plus-children reconciliation invariant in CI.
//
// Setting RERAMDL_REPORT also enables metric collection (the report is
// assembled from the same instruments), without requiring RERAMDL_METRICS.
#pragma once

#include <string>

namespace reramdl::obs {

// True when a report path is configured.
bool report_enabled();

// Non-empty path enables metric collection and is the write_run_report()
// target; empty disables the report.
void set_report_path(std::string path);
std::string report_path();

// Write the report to report_path() (no-op when empty). Installed as an
// atexit hook when RERAMDL_REPORT is set; tests and benches call it
// directly.
void write_run_report();

}  // namespace reramdl::obs
