// Minimal streaming JSON emitter shared by the metrics registry, the trace
// writer, and the benches' BENCH_*.json emission — one escaping and number
// formatting path instead of a hand-rolled `os << "{\"..."` per caller.
//
// The writer tracks the container stack and inserts commas, newlines, and
// indentation itself; callers only describe structure:
//
//   JsonWriter w(os);
//   w.begin_object();
//   w.kv("schema_version", 1);
//   w.key("kernels"); w.begin_array();
//   ...
//   w.end_array();
//   w.end_object();
//
// Misuse (a value where a key is required, unbalanced end_*) throws
// CheckError. Doubles are emitted round-trippable (max_digits10); NaN and
// infinities — which JSON cannot represent — are emitted as null.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace reramdl::obs {

class JsonWriter {
 public:
  // `pretty` adds newlines and two-space indentation; compact mode emits a
  // single line (used for the potentially large trace-event arrays).
  explicit JsonWriter(std::ostream& os, bool pretty = true)
      : os_(os), pretty_(pretty) {}

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  // Object member key; must be followed by exactly one value or container.
  void key(std::string_view k);

  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(bool b);
  void value(double d);
  void value(std::uint64_t v);
  void value(std::int64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }
  void null();

  template <typename T>
  void kv(std::string_view k, const T& v) {
    key(k);
    value(v);
  }

  // All containers closed; flushes the trailing newline in pretty mode.
  void finish();

  // JSON string escaping (quotes, backslash, control characters).
  static std::string escape(std::string_view s);

 private:
  enum class Ctx : unsigned char { kObject, kArray };

  void before_value();   // comma / indent bookkeeping for a value slot
  void open(Ctx ctx, char brace);
  void close(Ctx ctx, char brace);
  void newline_indent();

  std::ostream& os_;
  bool pretty_;
  std::vector<Ctx> stack_;
  std::vector<bool> has_items_;  // per container: need a comma before next item
  bool key_pending_ = false;     // a key was written, value slot open
  bool done_ = false;
};

}  // namespace reramdl::obs
