#include "device/quantizer.hpp"

#include "common/check.hpp"

namespace reramdl::device {

LinearQuantizer::LinearQuantizer(std::size_t bits, double max_abs)
    : bits_(bits),
      max_level_((std::int64_t{1} << bits) - 1),
      max_abs_(max_abs),
      step_(max_abs / static_cast<double>(max_level_)) {
  RERAMDL_CHECK_GE(bits, 1u);
  RERAMDL_CHECK_LE(bits, 31u);
  RERAMDL_CHECK_GT(max_abs, 0.0);
}

std::vector<std::uint32_t> bit_slice(std::uint64_t magnitude,
                                     std::size_t bits_per_slice,
                                     std::size_t num_slices) {
  RERAMDL_CHECK_GE(bits_per_slice, 1u);
  RERAMDL_CHECK_LE(bits_per_slice * num_slices, 64u);
  const std::uint64_t mask = (std::uint64_t{1} << bits_per_slice) - 1;
  std::vector<std::uint32_t> slices(num_slices);
  for (std::size_t s = 0; s < num_slices; ++s)
    slices[s] = static_cast<std::uint32_t>((magnitude >> (s * bits_per_slice)) & mask);
  // The magnitude must fit in the available slices.
  RERAMDL_CHECK_EQ(magnitude >> (bits_per_slice * num_slices), 0u);
  return slices;
}

std::uint64_t bit_unslice(const std::vector<std::uint32_t>& slices,
                          std::size_t bits_per_slice) {
  std::uint64_t m = 0;
  for (std::size_t s = slices.size(); s > 0; --s)
    m = (m << bits_per_slice) | slices[s - 1];
  return m;
}

}  // namespace reramdl::device
