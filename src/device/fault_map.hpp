// Deterministic per-crossbar fault model: stuck-at cells and transient
// bit-flips.
//
// ReRAM cells fail in two broad classes the fault-tolerance literature
// (PANTHER, arXiv:1912.11516; online soft-error tolerance, arXiv:2412.03089)
// treats separately:
//
//   * permanent stuck-at faults — a cell frozen at G_off (stuck-at-off) or
//     G_on (stuck-at-on) regardless of what is programmed, from forming
//     failures or endurance wear-out. These are a property of the die: the
//     same cells are stuck on every program cycle, which is what makes
//     write-verify + spare-column remapping effective against them.
//   * transient bit-flips — soft errors (read disturb, random telegraph
//     noise) that corrupt one stored bit at some point mid-run and persist
//     until the array is reprogrammed.
//
// A FaultMap owns both populations for one physical crossbar (all slices and
// both differential polarities, spare columns included). Everything is
// sampled from an explicit seed, so a fault campaign is reproducible
// bit-for-bit from a single number: the stuck set is a pure function of
// (seed, geometry), and the transient set of injection event `step` is a
// pure function of (seed, step) — no draw-order coupling to the programmed
// pattern, the thread count, or how often the map is consulted.
//
// This replaces the ad-hoc stuck_at_{off,on}_rate handling that used to
// live inside VariationModel::perturb, which made faults invisible after
// programming (no count, no location, no way to detect or repair them).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace reramdl::device {

enum class FaultType : unsigned char { kNone = 0, kStuckOff, kStuckOn, kBitFlip };

struct FaultMapParams {
  // Independent per-cell probabilities of the permanent stuck-at faults.
  double stuck_at_off_rate = 0.0;
  double stuck_at_on_rate = 0.0;
  // Per-cell probability that one injection event (inject_at) flips one
  // stored bit of the cell.
  double transient_flip_rate = 0.0;
  // Root of the deterministic fault streams. Grids and executors derive
  // per-tile / per-layer seeds via FaultMap::mix_seed.
  std::uint64_t seed = 0;

  bool enabled() const {
    return stuck_at_off_rate > 0.0 || stuck_at_on_rate > 0.0 ||
           transient_flip_rate > 0.0;
  }
};

// One permanent fault, keyed by the flattened physical cell index
// ((slice * 2 + polarity) * rows + row) * cols + col.
struct CellFault {
  std::uint64_t cell = 0;
  FaultType type = FaultType::kNone;
};

// One transient bit-flip drawn for a specific injection step.
struct TransientFault {
  std::size_t slice = 0, polarity = 0, row = 0, col = 0;
  unsigned bit = 0;  // bit of the stored level to flip, < bits_per_cell
};

class FaultMap {
 public:
  FaultMap() = default;  // empty and disabled
  explicit FaultMap(const FaultMapParams& params);

  // (Re)samples the permanent stuck-at set for the physical geometry:
  // `slices` bit-slices x 2 polarities x rows x cols cells, each holding
  // `bits_per_cell` bits. Deterministic in (params.seed, geometry).
  void bind(std::size_t slices, std::size_t bits_per_cell, std::size_t rows,
            std::size_t cols);

  bool bound() const { return bound_; }
  bool enabled() const { return bound_ && params_.enabled(); }
  const FaultMapParams& params() const { return params_; }

  // Permanent fault at the physical cell, kNone for healthy cells.
  FaultType stuck_fault(std::size_t slice, std::size_t polarity,
                        std::size_t row, std::size_t col) const;

  // The full sorted stuck-at population (spare columns included).
  const std::vector<CellFault>& stuck_faults() const { return stuck_; }
  std::size_t stuck_count() const { return stuck_.size(); }

  void decode(std::uint64_t cell, std::size_t& slice, std::size_t& polarity,
              std::size_t& row, std::size_t& col) const;

  // Transient bit-flips for injection event `step`; deterministic in
  // (params.seed, step) and independent across steps. The caller applies
  // them to its stored levels (they persist until reprogramming).
  std::vector<TransientFault> transients_at(std::uint64_t step) const;

  // What a cell with permanent fault `type` reads back as when programmed
  // to `level` (levels in [0, max_level]).
  static double apply(FaultType type, double level, double max_level);

  // splitmix64 step: derives independent child seeds for tiles / layers /
  // injection steps from one campaign seed.
  static std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t salt);

 private:
  std::uint64_t index(std::size_t slice, std::size_t polarity, std::size_t row,
                      std::size_t col) const {
    return ((static_cast<std::uint64_t>(slice) * 2 + polarity) * rows_ + row) *
               cols_ +
           col;
  }

  FaultMapParams params_;
  std::size_t slices_ = 0, bits_per_cell_ = 0, rows_ = 0, cols_ = 0;
  bool bound_ = false;
  std::vector<CellFault> stuck_;  // sorted by cell index
};

}  // namespace reramdl::device
