#include "device/reliability.hpp"

#include <cmath>

#include "common/check.hpp"

namespace reramdl::device {

EnduranceModel::EnduranceModel(EnduranceParams params) : params_(params) {
  RERAMDL_CHECK_GT(params.max_writes, 0.0);
}

double EnduranceModel::lifetime_seconds(double writes_per_second) const {
  RERAMDL_CHECK_GT(writes_per_second, 0.0);
  return params_.max_writes / writes_per_second;
}

RetentionModel::RetentionModel(RetentionParams params) : params_(params) {
  RERAMDL_CHECK_GE(params.drift_nu, 0.0);
  RERAMDL_CHECK_GT(params.t0_seconds, 0.0);
}

double RetentionModel::drift_factor(double t_seconds) const {
  RERAMDL_CHECK_GE(t_seconds, 0.0);
  if (t_seconds <= params_.t0_seconds) return 1.0;
  return std::pow(t_seconds / params_.t0_seconds, -params_.drift_nu);
}

}  // namespace reramdl::device
