// Device non-idealities: programming variation.
//
// Variation is modeled as multiplicative lognormal noise on the programmed
// conductance (unit mean so the expected MVM is unbiased).
//
// Stuck-at faults used to be folded into perturb() here; they now live in
// device::FaultMap (fault_map.hpp), where they are persistent, locatable,
// countable, and repairable — a draw inside perturb() forgot the fault the
// moment the cell was programmed. The stuck_at_*_rate fields remain as a
// deprecated shim: a Crossbar programmed with a VariationModel whose rates
// are non-zero seeds an equivalent FaultMap from legacy_fault_params(), so
// existing callers keep their fault behavior (now visible in
// CrossbarStats::stuck_cells).
#pragma once

#include <cstddef>

#include "common/rng.hpp"
#include "device/fault_map.hpp"

namespace reramdl::device {

struct VariationParams {
  // Sigma of the underlying normal of the lognormal conductance noise.
  // 0 disables variation. Typical reported values: 0.05 - 0.3.
  double sigma = 0.0;
  // DEPRECATED: independent probabilities that a cell is stuck at min / max
  // conductance. Prefer FaultMapParams (fault_map.hpp); these now only seed
  // a legacy FaultMap at program time via legacy_fault_params().
  double stuck_at_off_rate = 0.0;
  double stuck_at_on_rate = 0.0;

  bool enabled() const {
    return sigma > 0.0 || stuck_at_off_rate > 0.0 || stuck_at_on_rate > 0.0;
  }
};

// Applies lognormal programming noise to an ideal programmed level,
// returning the *effective* level (a real number in [0, max_level]).
class VariationModel {
 public:
  VariationModel(VariationParams params, Rng rng);

  // ideal_level in [0, max_level] -> effective analog level.
  double perturb(double ideal_level, double max_level);

  const VariationParams& params() const { return params_; }

  // Deprecated-field shim: true when the legacy stuck-at rates are set.
  bool has_legacy_faults() const {
    return params_.stuck_at_off_rate > 0.0 || params_.stuck_at_on_rate > 0.0;
  }
  // FaultMapParams carrying the legacy rates, seeded deterministically from
  // this model's Rng at construction time.
  FaultMapParams legacy_fault_params() const;

 private:
  VariationParams params_;
  Rng rng_;
  std::uint64_t legacy_fault_seed_ = 0;
};

}  // namespace reramdl::device
