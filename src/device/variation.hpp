// Device non-idealities: programming variation and stuck-at faults.
//
// Variation is modeled as multiplicative lognormal noise on the programmed
// conductance (unit mean so the expected MVM is unbiased); stuck-at-0 cells
// read as G_off, stuck-at-1 cells as G_on regardless of the programmed level.
#pragma once

#include <cstddef>

#include "common/rng.hpp"

namespace reramdl::device {

struct VariationParams {
  // Sigma of the underlying normal of the lognormal conductance noise.
  // 0 disables variation. Typical reported values: 0.05 - 0.3.
  double sigma = 0.0;
  // Independent probabilities that a cell is stuck at min / max conductance.
  double stuck_at_off_rate = 0.0;
  double stuck_at_on_rate = 0.0;

  bool enabled() const {
    return sigma > 0.0 || stuck_at_off_rate > 0.0 || stuck_at_on_rate > 0.0;
  }
};

// Applies non-idealities to an ideal programmed level, returning the
// *effective* level (a real number in [0, max_level]).
class VariationModel {
 public:
  VariationModel(VariationParams params, Rng rng);

  // ideal_level in [0, max_level] -> effective analog level.
  double perturb(double ideal_level, double max_level);

  const VariationParams& params() const { return params_; }

 private:
  VariationParams params_;
  Rng rng_;
};

}  // namespace reramdl::device
