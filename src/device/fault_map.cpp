#include "device/fault_map.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace reramdl::device {

namespace {

// Distinct stream salts so the stuck-off, stuck-on, and per-step transient
// populations are mutually independent for one map seed.
constexpr std::uint64_t kStuckOffSalt = 0x0ff5a17ULL;
constexpr std::uint64_t kStuckOnSalt = 0x0a5a170ULL;
constexpr std::uint64_t kTransientSalt = 0x7a1f11bULL;

}  // namespace

FaultMap::FaultMap(const FaultMapParams& params) : params_(params) {
  RERAMDL_CHECK_GE(params.stuck_at_off_rate, 0.0);
  RERAMDL_CHECK_GE(params.stuck_at_on_rate, 0.0);
  RERAMDL_CHECK_GE(params.transient_flip_rate, 0.0);
  RERAMDL_CHECK_LE(params.stuck_at_off_rate + params.stuck_at_on_rate, 1.0);
  RERAMDL_CHECK_LE(params.transient_flip_rate, 1.0);
}

std::uint64_t FaultMap::mix_seed(std::uint64_t seed, std::uint64_t salt) {
  // splitmix64 finalizer over seed + golden-ratio-scaled salt.
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (salt + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {

// Visits each index in [0, n) independently with probability p, in
// ascending order, via geometric gap sampling — O(expected faults), not
// O(cells), and exactly the per-cell Bernoulli semantics the old
// VariationModel implemented one uniform draw at a time.
template <typename Fn>
void sample_bernoulli(std::uint64_t n, double p, Rng& rng, Fn&& fn) {
  if (p <= 0.0 || n == 0) return;
  if (p >= 1.0) {
    for (std::uint64_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const double log1mp = std::log1p(-p);
  std::uint64_t i = 0;
  for (;;) {
    const double u = rng.uniform();  // in [0, 1)
    const double gap = std::floor(std::log1p(-u) / log1mp);
    if (gap >= static_cast<double>(n)) return;  // guards the u -> 1 tail
    i += static_cast<std::uint64_t>(gap);
    if (i >= n) return;
    fn(i);
    ++i;
  }
}

}  // namespace

void FaultMap::bind(std::size_t slices, std::size_t bits_per_cell,
                    std::size_t rows, std::size_t cols) {
  RERAMDL_CHECK_GT(slices, 0u);
  RERAMDL_CHECK_GT(bits_per_cell, 0u);
  RERAMDL_CHECK_GT(rows, 0u);
  RERAMDL_CHECK_GT(cols, 0u);
  slices_ = slices;
  bits_per_cell_ = bits_per_cell;
  rows_ = rows;
  cols_ = cols;
  bound_ = true;

  stuck_.clear();
  const std::uint64_t n =
      static_cast<std::uint64_t>(slices) * 2 * rows * cols;

  // Stuck-off population first, then stuck-on over the remaining healthy
  // cells (a physical cell cannot be frozen at both rails; off wins
  // collisions deterministically). Both streams are sorted ascending by
  // construction, so the merge below keeps stuck_ sorted for binary search.
  std::vector<CellFault> off, on;
  Rng off_rng(mix_seed(params_.seed, kStuckOffSalt));
  sample_bernoulli(n, params_.stuck_at_off_rate, off_rng, [&](std::uint64_t c) {
    off.push_back({c, FaultType::kStuckOff});
  });
  Rng on_rng(mix_seed(params_.seed, kStuckOnSalt));
  sample_bernoulli(n, params_.stuck_at_on_rate, on_rng, [&](std::uint64_t c) {
    on.push_back({c, FaultType::kStuckOn});
  });

  stuck_.reserve(off.size() + on.size());
  std::size_t a = 0, b = 0;
  while (a < off.size() || b < on.size()) {
    if (b >= on.size() || (a < off.size() && off[a].cell <= on[b].cell)) {
      if (b < on.size() && on[b].cell == off[a].cell) ++b;  // collision: off wins
      stuck_.push_back(off[a++]);
    } else {
      stuck_.push_back(on[b++]);
    }
  }
}

FaultType FaultMap::stuck_fault(std::size_t slice, std::size_t polarity,
                                std::size_t row, std::size_t col) const {
  if (stuck_.empty()) return FaultType::kNone;
  const std::uint64_t cell = index(slice, polarity, row, col);
  const auto it = std::lower_bound(
      stuck_.begin(), stuck_.end(), cell,
      [](const CellFault& f, std::uint64_t c) { return f.cell < c; });
  if (it == stuck_.end() || it->cell != cell) return FaultType::kNone;
  return it->type;
}

void FaultMap::decode(std::uint64_t cell, std::size_t& slice,
                      std::size_t& polarity, std::size_t& row,
                      std::size_t& col) const {
  col = static_cast<std::size_t>(cell % cols_);
  cell /= cols_;
  row = static_cast<std::size_t>(cell % rows_);
  cell /= rows_;
  polarity = static_cast<std::size_t>(cell % 2);
  slice = static_cast<std::size_t>(cell / 2);
}

std::vector<TransientFault> FaultMap::transients_at(std::uint64_t step) const {
  std::vector<TransientFault> out;
  if (!bound_ || params_.transient_flip_rate <= 0.0) return out;
  const std::uint64_t n =
      static_cast<std::uint64_t>(slices_) * 2 * rows_ * cols_;
  Rng rng(mix_seed(params_.seed, kTransientSalt ^ (step * 0x2545f4914f6cdd1dULL)));
  sample_bernoulli(n, params_.transient_flip_rate, rng, [&](std::uint64_t c) {
    TransientFault f;
    decode(c, f.slice, f.polarity, f.row, f.col);
    f.bit = static_cast<unsigned>(rng.uniform_index(bits_per_cell_));
    out.push_back(f);
  });
  return out;
}

double FaultMap::apply(FaultType type, double level, double max_level) {
  switch (type) {
    case FaultType::kStuckOff:
      return 0.0;
    case FaultType::kStuckOn:
      return max_level;
    default:
      return level;
  }
}

}  // namespace reramdl::device
