// Fixed-point quantization of weights and activations onto device levels.
//
// A signed weight of `total_bits` precision is represented as the difference
// of two unsigned magnitudes (positive / negative crossbar pair) and each
// magnitude is bit-sliced across total_bits / bits_per_cell cells, exactly
// the ISAAC-style composition PipeLayer adopts.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstddef>
#include <vector>

namespace reramdl::device {

class LinearQuantizer {
 public:
  // Symmetric quantizer to integer magnitudes in [0, 2^bits - 1] with scale
  // `max_abs` (values saturate at the range edge).
  LinearQuantizer(std::size_t bits, double max_abs);

  std::size_t bits() const { return bits_; }
  std::int64_t max_level() const { return max_level_; }
  double max_abs() const { return max_abs_; }
  double step() const { return step_; }  // value represented by one level

  // value -> signed integer level in [-max_level, max_level]. Inline with a
  // step cached at construction: the batched crossbar path quantizes every
  // input element through this, so the per-call division-to-recompute-step
  // and the cross-TU call were measurable. The arithmetic is unchanged
  // (division by the identical precomputed double).
  std::int64_t quantize(double value) const {
    const double scaled = value / step_;
    const double clamped = std::clamp(scaled, -static_cast<double>(max_level_),
                                      static_cast<double>(max_level_));
    return static_cast<std::int64_t>(std::llround(clamped));
  }
  // signed integer level -> value.
  double dequantize(std::int64_t level) const {
    return static_cast<double>(level) * step_;
  }

 private:
  std::size_t bits_;
  std::int64_t max_level_;
  double max_abs_;
  double step_;
};

// Split an unsigned magnitude into little-endian slices of bits_per_slice
// bits each (slice 0 = least significant).
std::vector<std::uint32_t> bit_slice(std::uint64_t magnitude,
                                     std::size_t bits_per_slice,
                                     std::size_t num_slices);

// Reassemble slices into the magnitude.
std::uint64_t bit_unslice(const std::vector<std::uint32_t>& slices,
                          std::size_t bits_per_slice);

}  // namespace reramdl::device
