// Reliability models: write endurance and retention drift.
//
// Training on ReRAM stresses the cells in two ways the paper's design
// choices respond to: every batch's weight-update cycle reprograms cells
// (endurance — motivating batch-accumulated updates rather than per-sample
// ones), and programmed conductances drift toward the high-resistance state
// over time (retention — bounding how long inference can run between
// refreshes).
#pragma once

#include <cstddef>

namespace reramdl::device {

struct EnduranceParams {
  // Program/erase cycles a cell survives; 1e9 is typical for HfOx ReRAM.
  double max_writes = 1e9;
};

class EnduranceModel {
 public:
  explicit EnduranceModel(EnduranceParams params);

  // Seconds until the write budget is exhausted at the given per-cell write
  // rate (writes per second).
  double lifetime_seconds(double writes_per_second) const;

  // Convenience for the training use case: one update cycle per batch, each
  // reprogramming every cell once.
  double training_lifetime_seconds(double batches_per_second) const {
    return lifetime_seconds(batches_per_second);
  }

  const EnduranceParams& params() const { return params_; }

 private:
  EnduranceParams params_;
};

struct RetentionParams {
  // Conductance decays multiplicatively as (t / t0)^(-nu) for t > t0.
  double drift_nu = 0.005;
  double t0_seconds = 1.0;
};

class RetentionModel {
 public:
  explicit RetentionModel(RetentionParams params);

  // Multiplicative factor applied to a programmed conductance level after
  // `t_seconds`; 1.0 for t <= t0, monotonically decreasing after.
  double drift_factor(double t_seconds) const;

  const RetentionParams& params() const { return params_; }

 private:
  RetentionParams params_;
};

}  // namespace reramdl::device
