// ReRAM (metal-oxide RRAM) cell model.
//
// A cell stores a multi-bit value as its conductance between G_off (HRS) and
// G_on (LRS). Default parameters follow the HfOx-class devices assumed by
// PipeLayer / ISAAC / PRIME: 4-bit cells, ~us-scale programming with
// multi-pulse tuning, sub-pJ per-spike read energy.
#pragma once

#include <cstddef>

namespace reramdl::device {

struct CellParams {
  // Conductance range in microsiemens.
  double g_on_us = 300.0;   // low-resistance state
  double g_off_us = 3.0;    // high-resistance state
  std::size_t bits_per_cell = 4;

  // Programming (weight update / initial mapping): per-pulse write.
  double write_pulse_ns = 50.0;
  double write_energy_pj = 1.0;     // per programming pulse
  // Number of set/reset pulses needed to tune one cell to a target level.
  std::size_t tune_pulses = 10;

  // Read: energy drawn by one cell for one input spike.
  double read_energy_per_spike_pj = 0.0002;

  // Cell area (4F^2 crosspoint at ~50nm feature size), in um^2.
  double cell_area_um2 = 0.01;

  std::size_t levels() const { return std::size_t{1} << bits_per_cell; }
  // Conductance step between adjacent levels.
  double level_step_us() const;
  // Conductance of a given level (0 = G_off).
  double conductance_us(std::size_t level) const;
  // Energy to (re)program one cell.
  double program_energy_pj() const {
    return write_energy_pj * static_cast<double>(tune_pulses);
  }
  // Latency to (re)program one cell (pulses are sequential per cell, but
  // whole-row programming is parallel across bitlines).
  double program_latency_ns() const {
    return write_pulse_ns * static_cast<double>(tune_pulses);
  }
};

}  // namespace reramdl::device
