// Per-tile write-endurance accounting and wear-leveling rotation.
//
// ReRAM cells survive a bounded number of program/erase cycles
// (EnduranceParams::max_writes, reliability.hpp). In a deployed chip the
// write load is not uniform: drift-refresh reprograms tiles on their own
// aging clocks, and fault scrubbing reprograms exactly the tiles that soft
// errors happen to hit — so a handful of physical arrays can burn through
// their budget while their neighbors stay fresh. The maintenance engine
// (maint/engine.hpp) counters this with wear-leveling: it tracks per-tile
// write cycles here and, when the spread since the last rotation exceeds a
// threshold, rotates the logical->physical tile assignment so future
// programming wear lands on the least-worn arrays.
//
// The tracker is pure bookkeeping plus the logical->physical map; the
// CrossbarGrid consumes the map (set_tile_phys_map) so per-tile fault-map
// seeds follow the *physical* array — after a rotation a logical tile
// really does inherit the stuck-cell population of the array now backing
// it. All state is a deterministic function of the recorded call sequence.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace reramdl::device {

class EnduranceTracker {
 public:
  EnduranceTracker() = default;
  // `tiles` physical arrays, each cell surviving `cell_endurance` writes.
  explicit EnduranceTracker(std::size_t tiles, double cell_endurance = 1e9);

  std::size_t tiles() const { return map_.size(); }

  // Book `cycles` program cycles against the physical array currently
  // backing `logical_tile`.
  void record_program(std::size_t logical_tile, std::uint64_t cycles = 1);

  // Physical array backing a logical tile (identity until rotate()).
  std::size_t physical_of(std::size_t logical_tile) const;
  const std::vector<std::size_t>& mapping() const { return map_; }

  // Rotate the logical->physical assignment by one position and reset the
  // imbalance baseline (the wear already on the die cannot be undone; what
  // rotation bounds is its future growth).
  void rotate();
  std::size_t rotations() const { return rotations_; }

  // Lifetime write cycles on physical array `p`.
  std::uint64_t writes(std::size_t p) const;
  std::uint64_t max_writes() const;
  std::uint64_t min_writes() const;
  std::uint64_t total_writes() const;

  // max - min of the per-tile writes accrued since the last rotation (or
  // construction): the wear-leveling trigger.
  std::uint64_t imbalance_since_rotation() const;

  // Fraction of the worst-worn array's endurance budget consumed.
  double wear_fraction() const;

 private:
  std::vector<std::size_t> map_;         // logical tile -> physical array
  std::vector<std::uint64_t> writes_;    // per physical array, lifetime
  std::vector<std::uint64_t> baseline_;  // writes_ snapshot at last rotate()
  double cell_endurance_ = 1e9;
  std::size_t rotations_ = 0;
};

}  // namespace reramdl::device
