#include "device/variation.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace reramdl::device {

VariationModel::VariationModel(VariationParams params, Rng rng)
    : params_(params), rng_(rng) {
  RERAMDL_CHECK_GE(params.sigma, 0.0);
  RERAMDL_CHECK_GE(params.stuck_at_off_rate, 0.0);
  RERAMDL_CHECK_GE(params.stuck_at_on_rate, 0.0);
  RERAMDL_CHECK_LE(params.stuck_at_off_rate + params.stuck_at_on_rate, 1.0);
}

double VariationModel::perturb(double ideal_level, double max_level) {
  // Fault draws happen for every cell so the random stream is independent of
  // the programmed pattern.
  const double u = rng_.uniform();
  if (u < params_.stuck_at_off_rate) return 0.0;
  if (u < params_.stuck_at_off_rate + params_.stuck_at_on_rate) return max_level;
  double level = ideal_level;
  if (params_.sigma > 0.0) level *= rng_.lognormal_unit_mean(params_.sigma);
  return std::clamp(level, 0.0, max_level);
}

}  // namespace reramdl::device
