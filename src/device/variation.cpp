#include "device/variation.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace reramdl::device {

VariationModel::VariationModel(VariationParams params, Rng rng)
    : params_(params), rng_(rng) {
  RERAMDL_CHECK_GE(params.sigma, 0.0);
  RERAMDL_CHECK_GE(params.stuck_at_off_rate, 0.0);
  RERAMDL_CHECK_GE(params.stuck_at_on_rate, 0.0);
  RERAMDL_CHECK_LE(params.stuck_at_off_rate + params.stuck_at_on_rate, 1.0);
  // Reserve one draw for the legacy fault-map seed so the shim is
  // deterministic per model regardless of how many cells are perturbed.
  legacy_fault_seed_ = rng_.next_u64();
}

double VariationModel::perturb(double ideal_level, double max_level) {
  double level = ideal_level;
  if (params_.sigma > 0.0) level *= rng_.lognormal_unit_mean(params_.sigma);
  return std::clamp(level, 0.0, max_level);
}

FaultMapParams VariationModel::legacy_fault_params() const {
  FaultMapParams p;
  p.stuck_at_off_rate = params_.stuck_at_off_rate;
  p.stuck_at_on_rate = params_.stuck_at_on_rate;
  p.seed = legacy_fault_seed_;
  return p;
}

}  // namespace reramdl::device
