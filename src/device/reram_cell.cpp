#include "device/reram_cell.hpp"

#include "common/check.hpp"

namespace reramdl::device {

double CellParams::level_step_us() const {
  RERAMDL_CHECK_GT(levels(), 1u);
  return (g_on_us - g_off_us) / static_cast<double>(levels() - 1);
}

double CellParams::conductance_us(std::size_t level) const {
  RERAMDL_CHECK_LT(level, levels());
  return g_off_us + level_step_us() * static_cast<double>(level);
}

}  // namespace reramdl::device
