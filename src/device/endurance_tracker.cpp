#include "device/endurance_tracker.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace reramdl::device {

EnduranceTracker::EnduranceTracker(std::size_t tiles, double cell_endurance)
    : writes_(tiles, 0), baseline_(tiles, 0), cell_endurance_(cell_endurance) {
  RERAMDL_CHECK_GT(tiles, 0u);
  RERAMDL_CHECK_GT(cell_endurance, 0.0);
  map_.resize(tiles);
  for (std::size_t t = 0; t < tiles; ++t) map_[t] = t;
}

void EnduranceTracker::record_program(std::size_t logical_tile,
                                      std::uint64_t cycles) {
  RERAMDL_CHECK_LT(logical_tile, map_.size());
  writes_[map_[logical_tile]] += cycles;
}

std::size_t EnduranceTracker::physical_of(std::size_t logical_tile) const {
  RERAMDL_CHECK_LT(logical_tile, map_.size());
  return map_[logical_tile];
}

void EnduranceTracker::rotate() {
  RERAMDL_CHECK(!map_.empty());
  for (std::size_t t = 0; t < map_.size(); ++t)
    map_[t] = (map_[t] + 1) % map_.size();
  baseline_ = writes_;
  ++rotations_;
}

std::uint64_t EnduranceTracker::writes(std::size_t p) const {
  RERAMDL_CHECK_LT(p, writes_.size());
  return writes_[p];
}

std::uint64_t EnduranceTracker::max_writes() const {
  return writes_.empty() ? 0
                         : *std::max_element(writes_.begin(), writes_.end());
}

std::uint64_t EnduranceTracker::min_writes() const {
  return writes_.empty() ? 0
                         : *std::min_element(writes_.begin(), writes_.end());
}

std::uint64_t EnduranceTracker::total_writes() const {
  std::uint64_t total = 0;
  for (const std::uint64_t w : writes_) total += w;
  return total;
}

std::uint64_t EnduranceTracker::imbalance_since_rotation() const {
  if (writes_.empty()) return 0;
  std::uint64_t lo = writes_[0] - baseline_[0];
  std::uint64_t hi = lo;
  for (std::size_t p = 1; p < writes_.size(); ++p) {
    const std::uint64_t d = writes_[p] - baseline_[p];
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  return hi - lo;
}

double EnduranceTracker::wear_fraction() const {
  return static_cast<double>(max_writes()) / cell_endurance_;
}

}  // namespace reramdl::device
