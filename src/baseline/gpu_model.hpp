// GPU baseline cost model (the paper's comparison platform: GTX 1080).
//
// The original evaluations measured wall-clock and power on real hardware;
// here a roofline model stands in (see DESIGN.md, substitutions): per layer,
// time = max(compute time at an achievable-efficiency fraction of peak,
// memory time for weights + activations at peak bandwidth), and energy =
// board power x time. Efficiency fractions per layer type encode the
// well-known utilization gap of cuDNN kernels: dense convs run near peak,
// FC / batch-norm / small fractional-strided convs are bandwidth- and
// launch-bound — which is exactly why GAN training leaves so much more room
// for a PIM accelerator (Table I row 2 vs row 1).
#pragma once

#include "nn/layer_spec.hpp"

namespace reramdl::baseline {

struct GpuSpec {
  std::string name = "GTX 1080";
  double peak_flops = 8.87e12;       // FP32
  double mem_bandwidth = 320.0e9;    // bytes/s
  double board_power_w = 180.0;
  // Achievable fraction of peak FLOPS per layer kind.
  double eff_conv = 0.55;
  double eff_dense = 0.20;
  double eff_tconv = 0.30;   // strided-GEMM tconv, below dense conv
  double eff_other = 0.05;   // pool / activation / BN: bandwidth-bound
  // Fixed per-layer kernel launch overhead.
  double launch_overhead_s = 4.0e-6;
};

GpuSpec gtx1080();

struct GpuCost {
  double time_s = 0.0;
  double energy_j = 0.0;
};

class GpuModel {
 public:
  explicit GpuModel(GpuSpec spec);

  // Forward pass of one batch through one layer.
  double layer_forward_time_s(const nn::LayerSpec& layer, std::size_t batch) const;

  // Whole-network costs. Training costs ~3x the forward FLOPs (forward +
  // input-gradient + weight-gradient passes) plus the optimizer update.
  GpuCost inference_cost(const nn::NetworkSpec& net, std::size_t n,
                         std::size_t batch) const;
  GpuCost training_cost(const nn::NetworkSpec& net, std::size_t n,
                        std::size_t batch) const;

  // GAN training batch = D-on-real + D-on-fake (G forward + D train pass) +
  // G update pass through both networks.
  GpuCost gan_training_cost(const nn::NetworkSpec& generator,
                            const nn::NetworkSpec& discriminator,
                            std::size_t n, std::size_t batch) const;

  const GpuSpec& spec() const { return spec_; }

 private:
  double efficiency(const nn::LayerSpec& layer) const;
  double network_pass_time_s(const nn::NetworkSpec& net, std::size_t batch,
                             double flop_multiplier) const;

  GpuSpec spec_;
};

}  // namespace reramdl::baseline
