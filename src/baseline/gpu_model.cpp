#include "baseline/gpu_model.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace reramdl::baseline {

GpuSpec gtx1080() { return GpuSpec{}; }

GpuModel::GpuModel(GpuSpec spec) : spec_(std::move(spec)) {
  RERAMDL_CHECK_GT(spec_.peak_flops, 0.0);
  RERAMDL_CHECK_GT(spec_.mem_bandwidth, 0.0);
}

double GpuModel::efficiency(const nn::LayerSpec& layer) const {
  switch (layer.kind) {
    case nn::LayerKind::kConv: return spec_.eff_conv;
    case nn::LayerKind::kDense: return spec_.eff_dense;
    case nn::LayerKind::kTransposedConv: return spec_.eff_tconv;
    default: return spec_.eff_other;
  }
}

double GpuModel::layer_forward_time_s(const nn::LayerSpec& layer,
                                      std::size_t batch) const {
  RERAMDL_CHECK_GT(batch, 0u);
  double macs = static_cast<double>(layer.macs_per_sample());
  // cuDNN realizes a transposed conv as a strided GEMM rather than a literal
  // zero-inserted convolution, so only 1/stride^2 of the dilated MACs are
  // real work on the GPU (the crossbar mapping, in contrast, does process
  // the dilated input — see nn/transposed_conv2d).
  if (layer.kind == nn::LayerKind::kTransposedConv)
    macs /= static_cast<double>(layer.stride * layer.stride);
  const double flops = 2.0 * macs * static_cast<double>(batch);
  const double compute_s = flops / (spec_.peak_flops * efficiency(layer));
  // Weights load once per batch; activations stream per sample.
  const double bytes =
      4.0 * static_cast<double>(layer.weight_count()) +
      static_cast<double>(layer.activation_bytes_per_sample()) *
          static_cast<double>(batch);
  const double memory_s = bytes / spec_.mem_bandwidth;
  return std::max(compute_s, memory_s) + spec_.launch_overhead_s;
}

double GpuModel::network_pass_time_s(const nn::NetworkSpec& net,
                                     std::size_t batch,
                                     double flop_multiplier) const {
  double t = 0.0;
  for (const auto& l : net.layers)
    t += layer_forward_time_s(l, batch) * flop_multiplier;
  return t;
}

GpuCost GpuModel::inference_cost(const nn::NetworkSpec& net, std::size_t n,
                                 std::size_t batch) const {
  RERAMDL_CHECK_GT(batch, 0u);
  RERAMDL_CHECK_EQ(n % batch, 0u);
  const double batch_time = network_pass_time_s(net, batch, 1.0);
  GpuCost c;
  c.time_s = batch_time * static_cast<double>(n / batch);
  c.energy_j = c.time_s * spec_.board_power_w;
  return c;
}

GpuCost GpuModel::training_cost(const nn::NetworkSpec& net, std::size_t n,
                                std::size_t batch) const {
  RERAMDL_CHECK_GT(batch, 0u);
  RERAMDL_CHECK_EQ(n % batch, 0u);
  // forward + dX + dW passes: each backward pass re-runs the layer's
  // contraction, so ~3x forward time per batch.
  const double batch_time = network_pass_time_s(net, batch, 3.0);
  GpuCost c;
  c.time_s = batch_time * static_cast<double>(n / batch);
  c.energy_j = c.time_s * spec_.board_power_w;
  return c;
}

GpuCost GpuModel::gan_training_cost(const nn::NetworkSpec& generator,
                                    const nn::NetworkSpec& discriminator,
                                    std::size_t n, std::size_t batch) const {
  RERAMDL_CHECK_GT(batch, 0u);
  RERAMDL_CHECK_EQ(n % batch, 0u);
  // ① D trains on a real batch (3x fwd), ② G forwards a fake batch (1x) and
  // D trains on it (3x), ③ G updates through D (D fwd+dX: 2x; G 3x).
  const double d_fwd = network_pass_time_s(discriminator, batch, 1.0);
  const double g_fwd = network_pass_time_s(generator, batch, 1.0);
  const double batch_time = 3.0 * d_fwd            // ①
                            + g_fwd + 3.0 * d_fwd  // ②
                            + 3.0 * g_fwd + 2.0 * d_fwd;  // ③
  GpuCost c;
  c.time_s = batch_time * static_cast<double>(n / batch);
  c.energy_j = c.time_s * spec_.board_power_w;
  return c;
}

}  // namespace reramdl::baseline
