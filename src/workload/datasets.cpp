#include "workload/datasets.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace reramdl::workload {

Dataset make_classification(std::size_t n, const DatasetConfig& config,
                            Rng& rng) {
  RERAMDL_CHECK_GT(n, 0u);
  RERAMDL_CHECK_GT(config.num_classes, 0u);
  const std::size_t pix = config.channels * config.height * config.width;

  // Fixed per-class templates with smooth large-scale structure: a few
  // Gaussian bumps whose parameters are class-specific. Templates depend
  // only on the dataset shape (not on `rng`), so a training set and a test
  // set of the same configuration share the same class distribution.
  Rng template_rng(0x7e4a11ceULL ^ (config.channels << 24) ^
                   (config.height << 12) ^ config.width ^
                   (config.num_classes << 40));
  std::vector<std::vector<float>> templates(config.num_classes,
                                            std::vector<float>(pix, 0.0f));
  for (std::size_t k = 0; k < config.num_classes; ++k) {
    for (int bump = 0; bump < 3; ++bump) {
      const double cy = template_rng.uniform(0.15, 0.85) * config.height;
      const double cx = template_rng.uniform(0.15, 0.85) * config.width;
      const double s =
          template_rng.uniform(0.08, 0.22) *
          static_cast<double>(std::min(config.height, config.width));
      const double amp = template_rng.uniform(0.5, 1.0);
      for (std::size_t c = 0; c < config.channels; ++c)
        for (std::size_t y = 0; y < config.height; ++y)
          for (std::size_t x = 0; x < config.width; ++x) {
            const double d2 = (static_cast<double>(y) - cy) * (static_cast<double>(y) - cy) +
                              (static_cast<double>(x) - cx) * (static_cast<double>(x) - cx);
            templates[k][(c * config.height + y) * config.width + x] +=
                static_cast<float>(amp * std::exp(-d2 / (2.0 * s * s)));
          }
    }
  }

  Dataset d;
  d.num_classes = config.num_classes;
  d.images = Tensor(Shape{n, config.channels, config.height, config.width});
  d.labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t k = rng.uniform_index(config.num_classes);
    d.labels[i] = k;
    for (std::size_t p = 0; p < pix; ++p) {
      const float v = templates[k][p] +
                      static_cast<float>(rng.normal(0.0, config.noise));
      d.images[i * pix + p] = std::clamp(v, 0.0f, 1.0f);
    }
  }
  return d;
}

Dataset make_mnist_like(std::size_t n, Rng& rng) {
  DatasetConfig c;
  c.channels = 1;
  c.height = c.width = 28;
  c.num_classes = 10;
  return make_classification(n, c, rng);
}

Dataset make_cifar_like(std::size_t n, Rng& rng) {
  DatasetConfig c;
  c.channels = 3;
  c.height = c.width = 32;
  c.num_classes = 10;
  return make_classification(n, c, rng);
}

Tensor make_gan_images(std::size_t n, std::size_t channels, std::size_t size,
                       Rng& rng) {
  RERAMDL_CHECK_GT(n, 0u);
  Tensor images(Shape{n, channels, size, size});
  const std::size_t pix = channels * size * size;
  for (std::size_t i = 0; i < n; ++i) {
    // 2-4 smooth blobs per image, channel-correlated, mapped to [-1, 1].
    const int blobs = 2 + static_cast<int>(rng.uniform_index(3));
    std::vector<float> img(pix, -1.0f);
    for (int b = 0; b < blobs; ++b) {
      const double cy = rng.uniform(0.1, 0.9) * static_cast<double>(size);
      const double cx = rng.uniform(0.1, 0.9) * static_cast<double>(size);
      const double s = rng.uniform(0.08, 0.25) * static_cast<double>(size);
      for (std::size_t c = 0; c < channels; ++c) {
        const double amp = rng.uniform(0.6, 2.0);
        for (std::size_t y = 0; y < size; ++y)
          for (std::size_t x = 0; x < size; ++x) {
            const double d2 =
                (static_cast<double>(y) - cy) * (static_cast<double>(y) - cy) +
                (static_cast<double>(x) - cx) * (static_cast<double>(x) - cx);
            img[(c * size + y) * size + x] +=
                static_cast<float>(amp * std::exp(-d2 / (2.0 * s * s)));
          }
      }
    }
    for (std::size_t p = 0; p < pix; ++p)
      images[i * pix + p] = std::clamp(img[p], -1.0f, 1.0f);
  }
  return images;
}

Tensor make_celeba_like(std::size_t n, Rng& rng) {
  return make_gan_images(n, 3, 64, rng);
}

Tensor make_lsun_like(std::size_t n, Rng& rng) {
  return make_gan_images(n, 3, 64, rng);
}

}  // namespace reramdl::workload
