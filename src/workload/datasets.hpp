// Synthetic dataset generators.
//
// The paper evaluates on MNIST, ImageNet, CIFAR-10, CelebA and LSUN. Those
// corpora are not redistributable here, so these generators produce
// deterministic synthetic data with the same tensor shapes and - for the
// classification sets - a learnable class structure (each class is a fixed
// random template plus noise), which is what the functional training and
// accuracy experiments need. The timing/energy results depend only on the
// layer shapes, which the model zoo reproduces exactly.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "tensor/tensor.hpp"

namespace reramdl::workload {

struct Dataset {
  Tensor images;                    // [N, C, H, W]
  std::vector<std::size_t> labels;  // class per sample
  std::size_t num_classes = 0;
};

struct DatasetConfig {
  std::size_t channels = 1;
  std::size_t height = 28;
  std::size_t width = 28;
  std::size_t num_classes = 10;
  // Per-pixel noise added to the class template (templates are unit-range).
  float noise = 0.35f;
};

// Generic class-template dataset; all values in [0, 1].
Dataset make_classification(std::size_t n, const DatasetConfig& config, Rng& rng);

// Named shapes matching the paper's benchmarks.
Dataset make_mnist_like(std::size_t n, Rng& rng);   // 1 x 28 x 28, 10 classes
Dataset make_cifar_like(std::size_t n, Rng& rng);   // 3 x 32 x 32, 10 classes

// Unlabeled image sets for GAN training; values in [-1, 1] (tanh output
// range). Images are smooth multi-blob compositions so the discriminator has
// non-trivial structure to detect.
Tensor make_celeba_like(std::size_t n, Rng& rng);   // 3 x 64 x 64
Tensor make_lsun_like(std::size_t n, Rng& rng);     // 3 x 64 x 64
Tensor make_gan_images(std::size_t n, std::size_t channels, std::size_t size,
                       Rng& rng);

}  // namespace reramdl::workload
