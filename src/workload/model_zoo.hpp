// Model zoo.
//
// Spec builders reproduce the layer shapes of the paper's benchmark networks
// (PipeLayer: MNIST MLPs + ImageNet-scale CNNs; ReGAN: DCGAN variants for
// MNIST / CIFAR-10 / CelebA / LSUN) for the timing and energy models.
// Functional builders construct small live networks (with weights) for the
// training / crossbar-accuracy experiments.
#pragma once

#include "common/rng.hpp"
#include "nn/layer_spec.hpp"
#include "nn/sequential.hpp"

namespace reramdl::workload {

// ---- Spec-only networks (timing / mapping / energy) ------------------------

// PipeLayer's MNIST multilayer perceptrons.
nn::NetworkSpec spec_mlp_mnist_a();  // 784-512-512-10
nn::NetworkSpec spec_mlp_mnist_b();  // 784-1024-512-256-10
nn::NetworkSpec spec_mlp_mnist_c();  // 784-1500-1000-500-10
nn::NetworkSpec spec_lenet5();       // LeNet-5 on 1x28x28

// ImageNet-scale CNNs (3x224x224).
nn::NetworkSpec spec_alexnet();
nn::NetworkSpec spec_vgg_a();   // VGG-11
nn::NetworkSpec spec_vgg_d();   // VGG-16

// DCGAN generator / discriminator shapes. `image_size` in {28 (MNIST, 1ch),
// 32 (CIFAR, 3ch), 64 (CelebA / LSUN, 3ch)}; latent vector 100.
nn::NetworkSpec spec_dcgan_generator(std::size_t image_size);
nn::NetworkSpec spec_dcgan_discriminator(std::size_t image_size);

// ---- Functional networks (weights; small enough to train on a laptop) -----

// 784-256-10 MLP for synthetic-MNIST training tests.
nn::Sequential make_mlp_mnist(Rng& rng);
// Small LeNet-style CNN (1x28x28): conv-pool-conv-pool-fc.
nn::Sequential make_lenet_small(Rng& rng);
// DCGAN on 1x28x28 with the given latent size; generator ends in tanh,
// discriminator outputs one logit.
nn::Sequential make_dcgan_g_mnist(Rng& rng, std::size_t latent_dim);
nn::Sequential make_dcgan_d_mnist(Rng& rng);

}  // namespace reramdl::workload
