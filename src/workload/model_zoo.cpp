#include "workload/model_zoo.hpp"

#include "common/check.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/flatten.hpp"
#include "nn/pooling.hpp"
#include "nn/transposed_conv2d.hpp"

namespace reramdl::workload {

using nn::NetworkSpec;
using nn::NetworkSpecBuilder;

namespace {

NetworkSpec mlp_spec(std::string name, std::initializer_list<std::size_t> widths) {
  NetworkSpecBuilder b(std::move(name), 1, 28, 28);
  b.flatten();
  for (const std::size_t w : widths) {
    b.dense(w);
    b.activation("relu");
  }
  b.dense(10);
  return std::move(b).build();
}

}  // namespace

NetworkSpec spec_mlp_mnist_a() { return mlp_spec("mlp-mnist-a", {512, 512}); }

NetworkSpec spec_mlp_mnist_b() {
  return mlp_spec("mlp-mnist-b", {1024, 512, 256});
}

NetworkSpec spec_mlp_mnist_c() {
  return mlp_spec("mlp-mnist-c", {1500, 1000, 500});
}

NetworkSpec spec_lenet5() {
  NetworkSpecBuilder b("lenet-5", 1, 28, 28);
  b.conv(6, 5, 1, 2).activation().pool(2);
  b.conv(16, 5).activation().pool(2);
  b.flatten().dense(120).activation().dense(84).activation().dense(10);
  return std::move(b).build();
}

NetworkSpec spec_alexnet() {
  NetworkSpecBuilder b("alexnet", 3, 224, 224);
  b.conv(96, 11, 4, 2).activation().pool(3, 2);
  b.conv(256, 5, 1, 2).activation().pool(3, 2);
  b.conv(384, 3, 1, 1).activation();
  b.conv(384, 3, 1, 1).activation();
  b.conv(256, 3, 1, 1).activation().pool(3, 2);
  b.flatten().dense(4096).activation().dense(4096).activation().dense(1000);
  return std::move(b).build();
}

NetworkSpec spec_vgg_a() {
  NetworkSpecBuilder b("vgg-a", 3, 224, 224);
  b.conv(64, 3, 1, 1).activation().pool(2);
  b.conv(128, 3, 1, 1).activation().pool(2);
  b.conv(256, 3, 1, 1).activation();
  b.conv(256, 3, 1, 1).activation().pool(2);
  b.conv(512, 3, 1, 1).activation();
  b.conv(512, 3, 1, 1).activation().pool(2);
  b.conv(512, 3, 1, 1).activation();
  b.conv(512, 3, 1, 1).activation().pool(2);
  b.flatten().dense(4096).activation().dense(4096).activation().dense(1000);
  return std::move(b).build();
}

NetworkSpec spec_vgg_d() {
  NetworkSpecBuilder b("vgg-d", 3, 224, 224);
  auto block = [&b](std::size_t ch, int convs) {
    for (int i = 0; i < convs; ++i) b.conv(ch, 3, 1, 1).activation();
    b.pool(2);
  };
  block(64, 2);
  block(128, 2);
  block(256, 3);
  block(512, 3);
  block(512, 3);
  b.flatten().dense(4096).activation().dense(4096).activation().dense(1000);
  return std::move(b).build();
}

NetworkSpec spec_dcgan_generator(std::size_t image_size) {
  const std::size_t latent = 100;
  switch (image_size) {
    case 28: {  // MNIST, 1 channel
      NetworkSpecBuilder b("dcgan-g28", latent, 1, 1);
      b.dense(256 * 7 * 7).reshape(256, 7, 7).batchnorm().activation();
      b.tconv(128, 4, 2, 1).batchnorm().activation();
      b.tconv(1, 4, 2, 1).activation("tanh");
      return std::move(b).build();
    }
    case 32: {  // CIFAR-10, 3 channels
      NetworkSpecBuilder b("dcgan-g32", latent, 1, 1);
      b.dense(512 * 4 * 4).reshape(512, 4, 4).batchnorm().activation();
      b.tconv(256, 4, 2, 1).batchnorm().activation();
      b.tconv(128, 4, 2, 1).batchnorm().activation();
      b.tconv(3, 4, 2, 1).activation("tanh");
      return std::move(b).build();
    }
    case 64: {  // CelebA / LSUN, 3 channels
      NetworkSpecBuilder b("dcgan-g64", latent, 1, 1);
      b.dense(1024 * 4 * 4).reshape(1024, 4, 4).batchnorm().activation();
      b.tconv(512, 4, 2, 1).batchnorm().activation();
      b.tconv(256, 4, 2, 1).batchnorm().activation();
      b.tconv(128, 4, 2, 1).batchnorm().activation();
      b.tconv(3, 4, 2, 1).activation("tanh");
      return std::move(b).build();
    }
    default:
      RERAMDL_CHECK(false);
  }
  return {};
}

NetworkSpec spec_dcgan_discriminator(std::size_t image_size) {
  switch (image_size) {
    case 28: {
      NetworkSpecBuilder b("dcgan-d28", 1, 28, 28);
      b.conv(64, 4, 2, 1).activation("lrelu");
      b.conv(128, 4, 2, 1).batchnorm().activation("lrelu");
      b.flatten().dense(1);
      return std::move(b).build();
    }
    case 32: {
      NetworkSpecBuilder b("dcgan-d32", 3, 32, 32);
      b.conv(128, 4, 2, 1).activation("lrelu");
      b.conv(256, 4, 2, 1).batchnorm().activation("lrelu");
      b.conv(512, 4, 2, 1).batchnorm().activation("lrelu");
      b.flatten().dense(1);
      return std::move(b).build();
    }
    case 64: {
      NetworkSpecBuilder b("dcgan-d64", 3, 64, 64);
      b.conv(128, 4, 2, 1).activation("lrelu");
      b.conv(256, 4, 2, 1).batchnorm().activation("lrelu");
      b.conv(512, 4, 2, 1).batchnorm().activation("lrelu");
      b.conv(1024, 4, 2, 1).batchnorm().activation("lrelu");
      b.flatten().dense(1);
      return std::move(b).build();
    }
    default:
      RERAMDL_CHECK(false);
  }
  return {};
}

// ---- Functional networks ----------------------------------------------------

nn::Sequential make_mlp_mnist(Rng& rng) {
  nn::Sequential net;
  net.emplace<nn::Flatten>();
  net.emplace<nn::Dense>(784, 256, rng);
  net.emplace<nn::ReLU>();
  net.emplace<nn::Dense>(256, 10, rng);
  return net;
}

nn::Sequential make_lenet_small(Rng& rng) {
  nn::Sequential net;
  net.emplace<nn::Conv2D>(1, 28, 28, 8, 5, 1, 2, rng);  // -> 8x28x28
  net.emplace<nn::ReLU>();
  net.emplace<nn::MaxPool2D>(2);                        // -> 8x14x14
  net.emplace<nn::Conv2D>(8, 14, 14, 16, 5, 1, 0, rng); // -> 16x10x10
  net.emplace<nn::ReLU>();
  net.emplace<nn::MaxPool2D>(2);                        // -> 16x5x5
  net.emplace<nn::Flatten>();
  net.emplace<nn::Dense>(16 * 5 * 5, 64, rng);
  net.emplace<nn::ReLU>();
  net.emplace<nn::Dense>(64, 10, rng);
  return net;
}

nn::Sequential make_dcgan_g_mnist(Rng& rng, std::size_t latent_dim) {
  nn::Sequential net;
  net.emplace<nn::Dense>(latent_dim, 64 * 7 * 7, rng);
  net.emplace<nn::Reshape>(64, 7, 7);
  net.emplace<nn::BatchNorm>(64);
  net.emplace<nn::ReLU>();
  net.emplace<nn::TransposedConv2D>(64, 7, 7, 32, 4, 2, 1, rng);   // -> 32x14x14
  net.emplace<nn::BatchNorm>(32);
  net.emplace<nn::ReLU>();
  net.emplace<nn::TransposedConv2D>(32, 14, 14, 1, 4, 2, 1, rng);  // -> 1x28x28
  net.emplace<nn::Tanh>();
  return net;
}

nn::Sequential make_dcgan_d_mnist(Rng& rng) {
  nn::Sequential net;
  net.emplace<nn::Conv2D>(1, 28, 28, 32, 4, 2, 1, rng);   // -> 32x14x14
  net.emplace<nn::LeakyReLU>(0.2f);
  net.emplace<nn::Conv2D>(32, 14, 14, 64, 4, 2, 1, rng);  // -> 64x7x7
  net.emplace<nn::LeakyReLU>(0.2f);
  net.emplace<nn::Flatten>();
  net.emplace<nn::Dense>(64 * 7 * 7, 1, rng);
  return net;
}

}  // namespace reramdl::workload
