#include "mapping/layer_mapping.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace reramdl::mapping {

std::size_t LayerMapping::steps_per_sample() const {
  const std::size_t vectors = spec.vectors_per_sample();
  RERAMDL_CHECK_GT(replication, 0u);
  return (vectors + replication - 1) / replication;
}

std::size_t LayerMapping::weight_cells() const {
  return spec.matrix_rows() * spec.matrix_cols() * replication;
}

LayerMapping map_layer(const nn::LayerSpec& spec, const MappingConfig& config,
                       std::size_t replication) {
  RERAMDL_CHECK(spec.is_weighted());
  RERAMDL_CHECK_GT(replication, 0u);
  RERAMDL_CHECK_LE(replication, std::max<std::size_t>(spec.vectors_per_sample(), 1));
  LayerMapping m;
  m.spec = spec;
  m.row_tiles = (spec.matrix_rows() + config.array_rows - 1) / config.array_rows;
  m.col_tiles = (spec.matrix_cols() + config.array_cols - 1) / config.array_cols;
  m.replication = replication;
  return m;
}

std::size_t NetworkMapping::total_arrays() const {
  std::size_t n = 0;
  for (const auto& l : layers) n += l.arrays();
  return n;
}

std::size_t NetworkMapping::stage_steps() const {
  std::size_t worst = 1;
  for (const auto& l : layers) worst = std::max(worst, l.steps_per_sample());
  return worst;
}

std::size_t NetworkMapping::total_weight_cells() const {
  std::size_t n = 0;
  for (const auto& l : layers) n += l.weight_cells();
  return n;
}

}  // namespace reramdl::mapping
