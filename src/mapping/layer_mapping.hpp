// Per-layer crossbar allocation (paper Sec. III-A-1).
//
// A weighted layer's flattened matrix (rows x cols) is tiled into
// ceil(rows/A) x ceil(cols/A) arrays of an A x A crossbar; the weights are
// then duplicated X times ("replication") so X input vectors are processed
// per cycle. X = 1 reproduces the naive scheme; X = vectors_per_sample
// produces a layer's whole output in one cycle at maximal array cost.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/layer_spec.hpp"

namespace reramdl::mapping {

struct MappingConfig {
  std::size_t array_rows = 128;
  std::size_t array_cols = 128;
};

struct LayerMapping {
  nn::LayerSpec spec;
  std::size_t row_tiles = 0;
  std::size_t col_tiles = 0;
  std::size_t replication = 1;  // the paper's X
  // Arrays occupied = row_tiles * col_tiles * replication.
  std::size_t arrays() const { return row_tiles * col_tiles * replication; }
  // Array compute steps needed to produce one sample's layer output
  // (= ceil(vectors_per_sample / X)); the naive example in Fig. 4(a) gives
  // 12544 for the 114x114x128 -> 112x112x256 conv.
  std::size_t steps_per_sample() const;
  // ReRAM cells used (both polarities, all bit slices counted by the caller).
  std::size_t weight_cells() const;
};

// Map one weighted layer with a given replication factor.
LayerMapping map_layer(const nn::LayerSpec& spec, const MappingConfig& config,
                       std::size_t replication);

struct NetworkMapping {
  MappingConfig config;
  std::vector<LayerMapping> layers;  // weighted layers only, in order

  std::size_t total_arrays() const;
  // The pipeline advances when the slowest stage finishes: cycle-time
  // multiplier of the inter-layer pipeline.
  std::size_t stage_steps() const;
  std::size_t total_weight_cells() const;
};

}  // namespace reramdl::mapping
