#include "mapping/planner.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace reramdl::mapping {
namespace {

std::size_t replication_for_steps(const nn::LayerSpec& spec,
                                  std::size_t target_steps) {
  const std::size_t vectors = std::max<std::size_t>(spec.vectors_per_sample(), 1);
  const std::size_t x = (vectors + target_steps - 1) / target_steps;
  return std::max<std::size_t>(x, 1);
}

}  // namespace

NetworkMapping plan_naive(const nn::NetworkSpec& net, const MappingConfig& config) {
  NetworkMapping m;
  m.config = config;
  for (const auto& l : net.layers)
    if (l.is_weighted()) m.layers.push_back(map_layer(l, config, 1));
  return m;
}

NetworkMapping plan_balanced(const nn::NetworkSpec& net,
                             const MappingConfig& config,
                             std::size_t target_steps,
                             std::size_t max_layer_arrays) {
  RERAMDL_CHECK_GT(target_steps, 0u);
  NetworkMapping m;
  m.config = config;
  for (const auto& l : net.layers) {
    if (!l.is_weighted()) continue;
    std::size_t x = replication_for_steps(l, target_steps);
    if (max_layer_arrays > 0 && x > 1) {
      // One replica's array footprint bounds how much replication the
      // per-layer cap leaves room for.
      const std::size_t base = map_layer(l, config, 1).arrays();
      x = std::min(x, std::max<std::size_t>(max_layer_arrays / base, 1));
    }
    m.layers.push_back(map_layer(l, config, x));
  }
  return m;
}

NetworkMapping plan_under_budget(const nn::NetworkSpec& net,
                                 const MappingConfig& config,
                                 std::size_t max_arrays,
                                 std::size_t max_layer_arrays) {
  RERAMDL_CHECK_GT(max_arrays, 0u);
  // The largest useful target is the naive plan's stage latency; arrays are
  // non-increasing in target_steps, so binary search the smallest feasible.
  NetworkMapping naive = plan_naive(net, config);
  if (naive.total_arrays() > max_arrays) return naive;  // budget infeasible

  std::size_t lo = 1, hi = naive.stage_steps();
  NetworkMapping best = std::move(naive);
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    NetworkMapping cand = plan_balanced(net, config, mid, max_layer_arrays);
    if (cand.total_arrays() <= max_arrays) {
      best = std::move(cand);
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return best;
}

}  // namespace reramdl::mapping
