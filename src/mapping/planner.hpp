// Replication planning: "a good trade-off between hardware resource of ReRAM
// array and performance requires a carefully chosen X" (paper Sec. III-A-1).
//
// plan_naive gives every layer X = 1 (Fig. 4a). plan_balanced picks each
// layer's X so no stage needs more than target_steps array activations per
// sample, equalizing pipeline stage latency (Fig. 4b). plan_under_budget
// searches for the smallest target_steps whose total array count fits a
// hardware budget — the design-space knob the paper's trade-off discussion
// is about.
#pragma once

#include "mapping/layer_mapping.hpp"

namespace reramdl::mapping {

NetworkMapping plan_naive(const nn::NetworkSpec& net, const MappingConfig& config);

// Every weighted layer gets X = ceil(vectors_per_sample / target_steps), so
// steps_per_sample <= target_steps for all stages.
NetworkMapping plan_balanced(const nn::NetworkSpec& net,
                             const MappingConfig& config,
                             std::size_t target_steps);

// Smallest-latency balanced plan with total_arrays <= max_arrays. Falls back
// to the naive plan if even X = 1 exceeds the budget (the caller can check
// total_arrays()).
NetworkMapping plan_under_budget(const nn::NetworkSpec& net,
                                 const MappingConfig& config,
                                 std::size_t max_arrays);

}  // namespace reramdl::mapping
