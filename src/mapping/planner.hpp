// Replication planning: "a good trade-off between hardware resource of ReRAM
// array and performance requires a carefully chosen X" (paper Sec. III-A-1).
//
// plan_naive gives every layer X = 1 (Fig. 4a). plan_balanced picks each
// layer's X so no stage needs more than target_steps array activations per
// sample, equalizing pipeline stage latency (Fig. 4b). plan_under_budget
// searches for the smallest target_steps whose total array count fits a
// hardware budget — the design-space knob the paper's trade-off discussion
// is about.
#pragma once

#include "mapping/layer_mapping.hpp"

namespace reramdl::mapping {

NetworkMapping plan_naive(const nn::NetworkSpec& net, const MappingConfig& config);

// Every weighted layer gets X = ceil(vectors_per_sample / target_steps), so
// steps_per_sample <= target_steps for all stages. A non-zero
// max_layer_arrays clamps each layer's replication so no single layer
// exceeds that array count — bounding how many banks a layer can spill
// across, and therefore its per-sample partial-sum gather traffic (the
// placement model charges every spill bank; see arch/placement). Layers
// already above the cap at X = 1 keep X = 1.
NetworkMapping plan_balanced(const nn::NetworkSpec& net,
                             const MappingConfig& config,
                             std::size_t target_steps,
                             std::size_t max_layer_arrays = 0);

// Smallest-latency balanced plan with total_arrays <= max_arrays. Falls back
// to the naive plan if even X = 1 exceeds the budget (the caller can check
// total_arrays()). max_layer_arrays as in plan_balanced.
NetworkMapping plan_under_budget(const nn::NetworkSpec& net,
                                 const MappingConfig& config,
                                 std::size_t max_arrays,
                                 std::size_t max_layer_arrays = 0);

}  // namespace reramdl::mapping
