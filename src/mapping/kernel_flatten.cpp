#include "mapping/kernel_flatten.hpp"

#include "common/check.hpp"

namespace reramdl::mapping {

Tensor flatten_kernel(const Tensor& kernel4d) {
  RERAMDL_CHECK_EQ(kernel4d.shape().rank(), 4u);
  const std::size_t out_c = kernel4d.shape()[0], in_c = kernel4d.shape()[1],
                    kh = kernel4d.shape()[2], kw = kernel4d.shape()[3];
  Tensor m(Shape{in_c * kh * kw, out_c});
  for (std::size_t o = 0; o < out_c; ++o)
    for (std::size_t c = 0; c < in_c; ++c)
      for (std::size_t y = 0; y < kh; ++y)
        for (std::size_t x = 0; x < kw; ++x)
          m.at((c * kh + y) * kw + x, o) = kernel4d.at(o, c, y, x);
  return m;
}

Tensor unflatten_kernel(const Tensor& matrix, std::size_t in_c, std::size_t kh,
                        std::size_t kw) {
  RERAMDL_CHECK_EQ(matrix.shape().rank(), 2u);
  RERAMDL_CHECK_EQ(matrix.shape()[0], in_c * kh * kw);
  const std::size_t out_c = matrix.shape()[1];
  Tensor k(Shape{out_c, in_c, kh, kw});
  for (std::size_t o = 0; o < out_c; ++o)
    for (std::size_t c = 0; c < in_c; ++c)
      for (std::size_t y = 0; y < kh; ++y)
        for (std::size_t x = 0; x < kw; ++x)
          k.at(o, c, y, x) = matrix.at((c * kh + y) * kw + x, o);
  return k;
}

}  // namespace reramdl::mapping
