// Kernel flattening (paper Fig. 4): each of layer l+1's kernels (a
// Kx x Ky x Cl cuboid) is unrolled into one crossbar column, giving a
// (Kx*Ky*Cl) x C_{l+1} matrix. The row order (c, ky, kx) matches the patch
// order produced by tensor/im2col, so crossbar columns see exactly the
// paper's "yellow bar" input vectors.
#pragma once

#include "tensor/tensor.hpp"

namespace reramdl::mapping {

// [out_c, in_c, kh, kw] -> [in_c*kh*kw, out_c].
Tensor flatten_kernel(const Tensor& kernel4d);

// Inverse, for round-trip checks and weight write-back.
Tensor unflatten_kernel(const Tensor& matrix, std::size_t in_c, std::size_t kh,
                        std::size_t kw);

}  // namespace reramdl::mapping
