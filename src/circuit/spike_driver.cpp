#include "circuit/spike_driver.hpp"

#include <cstdlib>

#include "common/check.hpp"
#include "obs/obs.hpp"

namespace reramdl::circuit {

std::size_t SpikeTrain::spike_count() const {
  std::size_t n = 0;
  for (auto b : bits) n += b;
  return n;
}

SpikeDriver::SpikeDriver(std::size_t input_bits, double x_max)
    : input_bits_(input_bits), quantizer_(input_bits, x_max) {
  RERAMDL_CHECK_GE(input_bits, 1u);
}

SpikeTrain SpikeDriver::encode(double value) const {
  const std::int64_t q = quantizer_.quantize(value);
  SpikeTrain t;
  t.negative = q < 0;
  const std::uint64_t mag = static_cast<std::uint64_t>(q < 0 ? -q : q);
  t.bits.resize(input_bits_);
  for (std::size_t b = 0; b < input_bits_; ++b)
    t.bits[b] = static_cast<std::uint8_t>((mag >> b) & 1u);
  return t;
}

double SpikeDriver::drive_energy_pj(const SpikeTrain& train,
                                    double pj_per_spike) const {
  RERAMDL_CHECK_EQ(train.bits.size(), input_bits_);
  RERAMDL_CHECK_GE(pj_per_spike, 0.0);
  const double pj = static_cast<double>(train.spike_count()) * pj_per_spike;
  if (obs::metrics_enabled()) {
    auto& reg = obs::Registry::instance();
    static obs::Counter& trains = reg.counter("spike.trains_driven");
    static obs::Histogram& energy = reg.histogram("spike.drive_energy_pj");
    trains.add();
    energy.record(pj);
  }
  return pj;
}

double SpikeDriver::decode(const SpikeTrain& train) const {
  RERAMDL_CHECK_EQ(train.bits.size(), input_bits_);
  std::uint64_t mag = 0;
  for (std::size_t b = 0; b < input_bits_; ++b)
    if (train.bits[b]) mag |= std::uint64_t{1} << b;
  const std::int64_t q =
      train.negative ? -static_cast<std::int64_t>(mag) : static_cast<std::int64_t>(mag);
  return quantizer_.dequantize(q);
}

}  // namespace reramdl::circuit
