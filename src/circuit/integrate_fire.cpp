#include "circuit/integrate_fire.hpp"

#include <cmath>

#include "common/check.hpp"

namespace reramdl::circuit {

IntegrateFire::IntegrateFire(double threshold, std::size_t counter_bits)
    : threshold_(threshold),
      max_count_((std::uint64_t{1} << counter_bits) - 1) {
  RERAMDL_CHECK_GT(threshold, 0.0);
  RERAMDL_CHECK_GE(counter_bits, 1u);
  RERAMDL_CHECK_LE(counter_bits, 63u);
}

std::uint64_t IntegrateFire::convert(double integrated_charge) {
  RERAMDL_CHECK_GE(integrated_charge, 0.0);
  const double fires = std::floor(integrated_charge / threshold_);
  if (fires > static_cast<double>(max_count_)) {
    ++saturation_events_;
    return max_count_;
  }
  return static_cast<std::uint64_t>(fires);
}

}  // namespace reramdl::circuit
