// A single ReRAM crossbar array (paper Fig. 3b).
//
// The matrix is programmed into cell conductances; input vectors arrive as
// weighted spike trains on the wordlines; bitline currents are integrated by
// I&F circuits and counted, producing digital partial results that a
// shift-and-add tree recombines across weight bit-slices and input bits.
//
// Signed values are realized structurally:
//   * weights: a differential pair of arrays (positive / negative magnitudes,
//     merged by the subtractor — ReGAN Fig. 10-B);
//   * weight precision: weight_bits total, bit-sliced over
//     weight_bits / bits_per_cell cells per polarity (ISAAC-style);
//   * inputs: input_bits magnitude driven bit-serially by the spike driver,
//     sign handled in a separate drive phase.
//
// Two evaluation paths produce identical results when no I&F counter
// saturates (asserted by property tests): a fast integer path, and an exact
// bit-serial emulation that models every spike cycle and counter clamp.
//
// The fast path evaluates against a *collapsed* effective differential
// weight matrix precomputed at program() time,
//   W_eff[i,j] = sum_s 2^(s*bpc) * (pos_s[i,j] - neg_s[i,j]),
// each element accumulated in slice-ascending order — algebraically and
// bit-for-bit what the per-MVM slice walk produces (compute_reference keeps
// that walk as the validation oracle). W_eff is rebuilt whenever the stored
// levels change (program / apply_drift). Batches of input rows evaluate
// through compute_batch, which quantizes all rows once and runs a
// cache-blocked kernel that keeps each row's accumulation order identical
// to the single-vector path, so batched and looped execution are
// bit-identical.
#pragma once

#include <cstdint>
#include <vector>

#include "device/quantizer.hpp"
#include "device/reram_cell.hpp"
#include "device/variation.hpp"
#include "tensor/tensor.hpp"

namespace reramdl::circuit {

struct CrossbarConfig {
  std::size_t rows = 128;
  std::size_t cols = 128;
  std::size_t weight_bits = 16;  // magnitude bits per polarity
  std::size_t input_bits = 8;    // magnitude bits
  std::size_t counter_bits = 16; // I&F output counter width
  bool bit_serial = false;       // exact spike-level emulation
  device::CellParams cell;

  std::size_t slices() const;  // weight_bits / bits_per_cell (exact multiple)
};

struct CrossbarStats {
  std::uint64_t programmed_cells = 0;
  std::uint64_t compute_ops = 0;      // MVM activations
  std::uint64_t input_spikes = 0;     // total '1' spikes driven
  std::uint64_t saturated_counters = 0;

  CrossbarStats& operator+=(const CrossbarStats& o) {
    programmed_cells += o.programmed_cells;
    compute_ops += o.compute_ops;
    input_spikes += o.input_spikes;
    saturated_counters += o.saturated_counters;
    return *this;
  }
};

class Crossbar {
 public:
  explicit Crossbar(const CrossbarConfig& config);

  // Program a weight matrix [r, c] (r <= rows, c <= cols); values are
  // clipped to [-w_max, w_max]. Optional variation model perturbs the stored
  // levels per cell.
  void program(const Tensor& weights, double w_max,
               device::VariationModel* variation = nullptr);

  // Matrix-vector product for inputs clipped to [-x_max, x_max]; returns c
  // outputs in float. The crossbar must be programmed first.
  std::vector<float> compute(const std::vector<float>& x, double x_max);

  // Allocation-free variant: reads n == active_rows() inputs from x and
  // writes active_cols() outputs to y.
  void compute(const float* x, std::size_t n, double x_max, float* y);

  // Batched MVM: rows is [m, active_rows()], returns [m, active_cols()].
  // Bit-identical to m single-vector compute() calls, with identical
  // aggregate stats (compute_ops advances by m).
  Tensor compute_batch(const Tensor& rows, double x_max);

  // Stats-free batched fast-path kernel for one block of rows, used by
  // CrossbarGrid to fan (tile x row-block) work items out to the thread
  // pool without racing on stats_: reads rows[b * row_stride + i], writes
  // out[b * out_stride + j], and accumulates this block's stats into
  // `delta` for the caller to merge_stats() serially. Requires
  // !config().bit_serial (the cycle-accurate path stays per-vector).
  void compute_batch_block(const float* rows, std::size_t m,
                           std::size_t row_stride, double x_max, float* out,
                           std::size_t out_stride, CrossbarStats& delta) const;

  // The two halves of compute_batch_block, split so CrossbarGrid can
  // quantize each row-strip of the input once and share the result across
  // that strip's column tiles (every tile of a strip drives the same
  // quantized spikes).
  //
  // quantize_batch fills xt with the block transposed to [active_rows()][m]
  // (xt[i * m + b]) and returns the total spike count, i.e. the popcount sum
  // this tile would have attributed to input_spikes.
  std::uint64_t quantize_batch(const float* rows, std::size_t m,
                               std::size_t row_stride, double x_max,
                               double* xt) const;
  // Runs the collapsed cache-blocked kernel on a pre-quantized transposed
  // block and scales into out; advances delta.compute_ops by m only — the
  // caller credits input_spikes from quantize_batch's return value.
  void compute_batch_prequant(const double* xt, std::size_t m, double x_max,
                              float* out, std::size_t out_stride,
                              CrossbarStats& delta) const;

  // Reference slice-walk evaluation of the fast path: recomputes the
  // differential collapse per (i, j) from the stored slice levels instead
  // of reading the precomputed W_eff. Bit-identical to compute() (without
  // bit_serial) by construction; kept as the validation oracle for the
  // collapsed matrix. Does not touch stats.
  std::vector<float> compute_reference(const std::vector<float>& x,
                                       double x_max) const;

  // Apply a multiplicative retention-drift factor to every stored level
  // (device::RetentionModel::drift_factor); models inference after the
  // arrays have aged `t` without reprogramming. Rebuilds W_eff.
  void apply_drift(double factor);

  // Fold an externally accumulated stats delta (from compute_batch_block)
  // into this array's counters.
  void merge_stats(const CrossbarStats& delta) { stats_ += delta; }

  const CrossbarConfig& config() const { return config_; }
  const CrossbarStats& stats() const { return stats_; }
  std::size_t active_rows() const { return r_; }
  std::size_t active_cols() const { return c_; }
  // Collapsed effective differential weights, row-major [r, c] integer
  // levels (scaled by drift/variation where applied).
  const std::vector<double>& effective_weights() const { return w_eff_; }

 private:
  void rebuild_w_eff();
  void compute_bit_serial(const std::int64_t* x_int, double* acc);

  CrossbarConfig config_;
  std::size_t r_ = 0, c_ = 0;
  double w_max_ = 0.0;
  // Effective per-cell levels: [slice][polarity(0=pos,1=neg)][r * c_].
  std::vector<std::vector<std::vector<double>>> levels_;
  // Collapsed differential weights [r * c_]; see header comment.
  std::vector<double> w_eff_;
  CrossbarStats stats_;
};

}  // namespace reramdl::circuit
