// A single ReRAM crossbar array (paper Fig. 3b).
//
// The matrix is programmed into cell conductances; input vectors arrive as
// weighted spike trains on the wordlines; bitline currents are integrated by
// I&F circuits and counted, producing digital partial results that a
// shift-and-add tree recombines across weight bit-slices and input bits.
//
// Signed values are realized structurally:
//   * weights: a differential pair of arrays (positive / negative magnitudes,
//     merged by the subtractor — ReGAN Fig. 10-B);
//   * weight precision: weight_bits total, bit-sliced over
//     weight_bits / bits_per_cell cells per polarity (ISAAC-style);
//   * inputs: input_bits magnitude driven bit-serially by the spike driver,
//     sign handled in a separate drive phase.
//
// Two evaluation paths produce identical results when no I&F counter
// saturates (asserted by property tests): a fast integer path, and an exact
// bit-serial emulation that models every spike cycle and counter clamp.
//
// The fast path evaluates against a *collapsed* effective differential
// weight matrix precomputed at program() time,
//   W_eff[i,j] = sum_s 2^(s*bpc) * (pos_s[i,j] - neg_s[i,j]),
// each element accumulated in slice-ascending order — algebraically and
// bit-for-bit what the per-MVM slice walk produces (compute_reference keeps
// that walk as the validation oracle). W_eff is rebuilt whenever the stored
// levels change (program / apply_drift). Batches of input rows evaluate
// through compute_batch, which quantizes all rows once and runs a
// cache-blocked kernel that keeps each row's accumulation order identical
// to the single-vector path, so batched and looped execution are
// bit-identical.
// Fault tolerance: programming runs through an optional write-verify loop
// (read back each cell, re-program with a nudged target up to
// max_program_retries, mark cells that never converge as defective), and
// logical columns containing unrepairable cells can be remapped onto spare
// bitlines reserved by CrossbarConfig::spare_cols. Stored levels are kept in
// *logical* column layout regardless of which physical bitline backs them,
// so every compute path (collapsed, batched, bit-serial, reference) is
// untouched by remapping — the fault-free path stays bit-identical to a
// crossbar with no fault machinery configured.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "device/fault_map.hpp"
#include "device/quantizer.hpp"
#include "device/reram_cell.hpp"
#include "device/variation.hpp"
#include "tensor/tensor.hpp"

namespace reramdl::circuit {

struct CrossbarConfig {
  std::size_t rows = 128;
  std::size_t cols = 128;
  std::size_t weight_bits = 16;  // magnitude bits per polarity
  std::size_t input_bits = 8;    // magnitude bits
  std::size_t counter_bits = 16; // I&F output counter width
  bool bit_serial = false;       // exact spike-level emulation
  // Bitlines reserved as remap targets for columns with unrepairable cells;
  // the usable data width is data_cols() = cols - spare_cols.
  std::size_t spare_cols = 0;
  device::CellParams cell;

  std::size_t slices() const;  // weight_bits / bits_per_cell (exact multiple)
  std::size_t data_cols() const { return cols - spare_cols; }
};

// What to do with a column whose defective cells could not be remapped (no
// write-verify to find a spare for them, or spares exhausted).
enum class DegradePolicy : unsigned char {
  kFailFast,    // throw CheckError: treat the array as unusable
  kClamp,       // mask known-defective cells to zero contribution (the
                // peripheral subtractor gates them out), bounding the error
  kBestEffort,  // compute with the faulty levels as-is
};

// Programming-time options: non-idealities to apply and the active
// resilience (write-verify / redundancy) responding to them. The default
// options reproduce the historical program(weights, w_max) behavior exactly.
struct ProgramOptions {
  device::VariationModel* variation = nullptr;
  // Fault population; !faults.enabled() means no injected faults (a
  // VariationModel carrying legacy stuck-at rates still seeds a map).
  device::FaultMapParams faults;
  // Closed-loop program-and-verify: read back each programmed cell and
  // re-program with a compensated target while |readback - target| exceeds
  // verify_tolerance (in level units), up to max_program_retries retries.
  bool write_verify = false;
  std::size_t max_program_retries = 3;
  double verify_tolerance = 0.49;  // just under half an LSB
  // A cell is defective (unrepairable) when its best achieved error still
  // exceeds this after all retries; <= 0 selects slice_max / 4 (an error
  // clearly beyond programming noise — a stuck or dead cell).
  double defect_threshold = 0.0;
  DegradePolicy degrade = DegradePolicy::kBestEffort;
};

// Point-in-time condition report for one array (the scrub/refresh inputs of
// the maintenance engine, maint/engine.hpp): unlike CrossbarStats — which
// accumulates across reprogramming passes — every field here describes the
// *current* programmed state.
struct CrossbarHealth {
  std::uint64_t stuck_cells = 0;      // stuck-at faults in the active region
  std::uint64_t defective_cells = 0;  // unrepaired verify failures, this pass
  std::uint64_t spare_cols_used = 0;  // spare bitlines currently hosting data
  std::uint64_t spares_remaining = 0;
  double seconds_since_program = 0.0;  // drift clock (advance_age)
  double cumulative_drift = 1.0;       // product of apply_drift factors
  std::uint64_t program_passes = 0;    // full program() calls over lifetime

  CrossbarHealth& operator+=(const CrossbarHealth& o) {
    stuck_cells += o.stuck_cells;
    defective_cells += o.defective_cells;
    spare_cols_used += o.spare_cols_used;
    spares_remaining += o.spares_remaining;
    seconds_since_program = std::max(seconds_since_program, o.seconds_since_program);
    cumulative_drift = std::min(cumulative_drift, o.cumulative_drift);
    program_passes += o.program_passes;
    return *this;
  }
};

struct CrossbarStats {
  std::uint64_t programmed_cells = 0;
  std::uint64_t compute_ops = 0;      // MVM activations
  std::uint64_t input_spikes = 0;     // total '1' spikes driven
  std::uint64_t saturated_counters = 0;
  // Fault-tolerance bookkeeping (all zero on the fault-free path).
  std::uint64_t stuck_cells = 0;      // stuck-at faults in the active region
  std::uint64_t faults_injected = 0;  // stuck cells hit + transient flips
  std::uint64_t verify_retries = 0;   // extra program pulses from verify
  std::uint64_t defective_cells = 0;  // failed verify, not remapped away
  std::uint64_t cells_remapped = 0;   // cells relocated onto spare columns
  std::uint64_t spare_cols_used = 0;  // spare bitlines hosting a column

  CrossbarStats& operator+=(const CrossbarStats& o) {
    programmed_cells += o.programmed_cells;
    compute_ops += o.compute_ops;
    input_spikes += o.input_spikes;
    saturated_counters += o.saturated_counters;
    stuck_cells += o.stuck_cells;
    faults_injected += o.faults_injected;
    verify_retries += o.verify_retries;
    defective_cells += o.defective_cells;
    cells_remapped += o.cells_remapped;
    spare_cols_used += o.spare_cols_used;
    return *this;
  }
};

class Crossbar {
 public:
  explicit Crossbar(const CrossbarConfig& config);

  // Program a weight matrix [r, c] (r <= rows, c <= data_cols()); values
  // are clipped to [-w_max, w_max]. Optional variation model perturbs the
  // stored levels per cell. Equivalent to program(weights, w_max,
  // ProgramOptions{variation}).
  void program(const Tensor& weights, double w_max,
               device::VariationModel* variation = nullptr);

  // Full programming path: faults, write-verify, spare-column remapping,
  // and the degradation policy. See ProgramOptions.
  void program(const Tensor& weights, double w_max,
               const ProgramOptions& opts);

  // Activate this map's transient bit-flips for injection event `step`
  // (deterministic in the fault seed and `step`): flips one stored bit of
  // each hit in-use healthy cell, persists until the next program(), and
  // rebuilds W_eff. Returns the number of flips applied.
  std::size_t inject_at(std::uint64_t step);

  // Matrix-vector product for inputs clipped to [-x_max, x_max]; returns c
  // outputs in float. The crossbar must be programmed first.
  std::vector<float> compute(const std::vector<float>& x, double x_max);

  // Allocation-free variant: reads n == active_rows() inputs from x and
  // writes active_cols() outputs to y.
  void compute(const float* x, std::size_t n, double x_max, float* y);

  // Batched MVM: rows is [m, active_rows()], returns [m, active_cols()].
  // Bit-identical to m single-vector compute() calls, with identical
  // aggregate stats (compute_ops advances by m).
  //
  // Runtime variant selection (DESIGN.md §12): when the batch is sparse
  // enough per the tensor/sparsity.hpp policy, the zero-skipping kernel
  // runs instead of the dense one — bit-identical by construction, so this
  // is purely a performance decision. Pass the batch's known zero-element
  // fraction in `zero_fraction` if a scan already ran (the CrossbarExecutor
  // hook fuses it with its x_max pass); negative means "unknown", and the
  // batch is scanned here iff the policy threshold is nonzero.
  Tensor compute_batch(const Tensor& rows, double x_max,
                       double zero_fraction = -1.0);

  // Stats-free batched fast-path kernel for one block of rows, used by
  // CrossbarGrid to fan (tile x row-block) work items out to the thread
  // pool without racing on stats_: reads rows[b * row_stride + i], writes
  // out[b * out_stride + j], and accumulates this block's stats into
  // `delta` for the caller to merge_stats() serially. Requires
  // !config().bit_serial (the cycle-accurate path stays per-vector).
  void compute_batch_block(const float* rows, std::size_t m,
                           std::size_t row_stride, double x_max, float* out,
                           std::size_t out_stride, CrossbarStats& delta) const;

  // The two halves of compute_batch_block, split so CrossbarGrid can
  // quantize each row-strip of the input once and share the result across
  // that strip's column tiles (every tile of a strip drives the same
  // quantized spikes).
  //
  // quantize_batch fills xt with the block transposed to [active_rows()][m]
  // (xt[i * m + b]) and returns the total spike count, i.e. the popcount sum
  // this tile would have attributed to input_spikes.
  std::uint64_t quantize_batch(const float* rows, std::size_t m,
                               std::size_t row_stride, double x_max,
                               double* xt) const;
  // Runs the collapsed cache-blocked kernel on a pre-quantized transposed
  // block and scales into out; advances delta.compute_ops by m only — the
  // caller credits input_spikes from quantize_batch's return value.
  void compute_batch_prequant(const double* xt, std::size_t m, double x_max,
                              float* out, std::size_t out_stride,
                              CrossbarStats& delta) const;

  // Zero-skipping analogs of the three batched entry points above. The
  // quantized batch is compacted per input row into CSR strips — ascending
  // wordline indices xi with values xv, rows delimited by row_start
  // (m + 1 entries, nnz = row_start[m]) — and the sparse kernel walks only
  // the compacted entries. Skipping a q == 0 term is bitwise a no-op (see
  // compute_batch_prequant's kernel comment), and the compact lists keep
  // ascending i order, so every result is bit-identical to the dense path;
  // spike counts and stats are also identical (a zero drives no spikes).
  // Compaction keys on the *quantized* value: small nonzero floats quantize
  // to 0 and are skipped too, exactly as they contribute nothing densely.
  // xv / xi need active_rows() * m capacity.
  std::uint64_t quantize_batch_sparse(const float* rows, std::size_t m,
                                      std::size_t row_stride, double x_max,
                                      double* xv, std::int32_t* xi,
                                      std::int32_t* row_start) const;
  void compute_batch_prequant_sparse(const double* xv, const std::int32_t* xi,
                                     const std::int32_t* row_start,
                                     std::size_t m, double x_max, float* out,
                                     std::size_t out_stride,
                                     CrossbarStats& delta) const;
  // Fused quantize-compact + sparse kernel for one block of rows; adds the
  // number of skipped wordline activations (zero quantized entries) to
  // `zeros_skipped` for the caller's sparsity.rows_skipped accounting.
  void compute_batch_block_sparse(const float* rows, std::size_t m,
                                  std::size_t row_stride, double x_max,
                                  float* out, std::size_t out_stride,
                                  CrossbarStats& delta,
                                  std::uint64_t& zeros_skipped) const;

  // Reference slice-walk evaluation of the fast path: recomputes the
  // differential collapse per (i, j) from the stored slice levels instead
  // of reading the precomputed W_eff. Bit-identical to compute() (without
  // bit_serial) by construction; kept as the validation oracle for the
  // collapsed matrix. Does not touch stats.
  std::vector<float> compute_reference(const std::vector<float>& x,
                                       double x_max) const;

  // Apply a multiplicative retention-drift factor to every stored level
  // (device::RetentionModel::drift_factor); models inference after the
  // arrays have aged `t` without reprogramming. Rebuilds W_eff.
  void apply_drift(double factor);

  // Advance the array's drift clock by `dt` simulated seconds. Pure
  // bookkeeping — callers pair it with apply_drift for the matching
  // incremental factor. program() resets the clock.
  void advance_age(double dt_seconds);

  // Current-state condition report (see CrossbarHealth).
  CrossbarHealth health() const;

  // Fold an externally accumulated stats delta (from compute_batch_block)
  // into this array's counters.
  void merge_stats(const CrossbarStats& delta) { stats_ += delta; }

  const CrossbarConfig& config() const { return config_; }
  const CrossbarStats& stats() const { return stats_; }
  std::size_t active_rows() const { return r_; }
  std::size_t active_cols() const { return c_; }
  // Collapsed effective differential weights, row-major [r, c] integer
  // levels (scaled by drift/variation where applied).
  const std::vector<double>& effective_weights() const { return w_eff_; }

  // Fault-tolerance introspection.
  const device::FaultMap& fault_map() const { return fault_map_; }
  // Physical bitline backing logical column j (== j unless remapped).
  std::size_t physical_col(std::size_t j) const;

 private:
  static constexpr std::size_t kNoCol = static_cast<std::size_t>(-1);

  // One logical column's trial programming: levels and defects are packed
  // by (slice * 2 + polarity) * r_ + i so a failed spare attempt can be
  // discarded without disturbing the committed array state.
  struct ColumnProgram {
    std::vector<double> levels;
    std::vector<std::size_t> defects;
  };

  ColumnProgram program_column(const Tensor& weights,
                               const device::LinearQuantizer& wq,
                               std::size_t j, std::size_t phys_col,
                               double slice_max, const ProgramOptions& opts);
  double program_cell(device::FaultType fault, double target, double slice_max,
                      const ProgramOptions& opts, bool& defective);
  void store_column(const ColumnProgram& cp, std::size_t j);
  void rebuild_w_eff();
  void compute_bit_serial(const std::int64_t* x_int, double* acc);

  CrossbarConfig config_;
  std::size_t r_ = 0, c_ = 0;
  double w_max_ = 0.0;
  // Effective per-cell levels: [slice][polarity(0=pos,1=neg)][r * c_],
  // indexed by *logical* column regardless of remapping.
  std::vector<std::vector<std::vector<double>>> levels_;
  // Collapsed differential weights [r * c_]; see header comment.
  std::vector<double> w_eff_;
  device::FaultMap fault_map_;
  std::vector<std::size_t> col_phys_;   // logical column -> physical bitline
  std::vector<std::size_t> phys_owner_; // physical bitline -> logical column
  CrossbarStats stats_;
  // Health state for the current programming pass (see CrossbarHealth).
  double age_seconds_ = 0.0;
  double cumulative_drift_ = 1.0;
  std::uint64_t program_passes_ = 0;
  std::uint64_t cur_stuck_cells_ = 0;
  std::uint64_t cur_defective_cells_ = 0;
  std::uint64_t cur_spares_consumed_ = 0;
};

}  // namespace reramdl::circuit
