// A single ReRAM crossbar array (paper Fig. 3b).
//
// The matrix is programmed into cell conductances; input vectors arrive as
// weighted spike trains on the wordlines; bitline currents are integrated by
// I&F circuits and counted, producing digital partial results that a
// shift-and-add tree recombines across weight bit-slices and input bits.
//
// Signed values are realized structurally:
//   * weights: a differential pair of arrays (positive / negative magnitudes,
//     merged by the subtractor — ReGAN Fig. 10-B);
//   * weight precision: weight_bits total, bit-sliced over
//     weight_bits / bits_per_cell cells per polarity (ISAAC-style);
//   * inputs: input_bits magnitude driven bit-serially by the spike driver,
//     sign handled in a separate drive phase.
//
// Two evaluation paths produce identical results when no I&F counter
// saturates (asserted by property tests): a fast integer path, and an exact
// bit-serial emulation that models every spike cycle and counter clamp.
#pragma once

#include <cstdint>
#include <vector>

#include "device/quantizer.hpp"
#include "device/reram_cell.hpp"
#include "device/variation.hpp"
#include "tensor/tensor.hpp"

namespace reramdl::circuit {

struct CrossbarConfig {
  std::size_t rows = 128;
  std::size_t cols = 128;
  std::size_t weight_bits = 16;  // magnitude bits per polarity
  std::size_t input_bits = 8;    // magnitude bits
  std::size_t counter_bits = 16; // I&F output counter width
  bool bit_serial = false;       // exact spike-level emulation
  device::CellParams cell;

  std::size_t slices() const;  // weight_bits / bits_per_cell (exact multiple)
};

struct CrossbarStats {
  std::uint64_t programmed_cells = 0;
  std::uint64_t compute_ops = 0;      // MVM activations
  std::uint64_t input_spikes = 0;     // total '1' spikes driven
  std::uint64_t saturated_counters = 0;
};

class Crossbar {
 public:
  explicit Crossbar(const CrossbarConfig& config);

  // Program a weight matrix [r, c] (r <= rows, c <= cols); values are
  // clipped to [-w_max, w_max]. Optional variation model perturbs the stored
  // levels per cell.
  void program(const Tensor& weights, double w_max,
               device::VariationModel* variation = nullptr);

  // Matrix-vector product for inputs clipped to [-x_max, x_max]; returns c
  // outputs in float. The crossbar must be programmed first.
  std::vector<float> compute(const std::vector<float>& x, double x_max);

  // Apply a multiplicative retention-drift factor to every stored level
  // (device::RetentionModel::drift_factor); models inference after the
  // arrays have aged `t` without reprogramming.
  void apply_drift(double factor);

  const CrossbarConfig& config() const { return config_; }
  const CrossbarStats& stats() const { return stats_; }
  std::size_t active_rows() const { return r_; }
  std::size_t active_cols() const { return c_; }

 private:
  std::vector<double> compute_fast(const std::vector<std::int64_t>& x_int) const;
  std::vector<double> compute_bit_serial(const std::vector<std::int64_t>& x_int);

  CrossbarConfig config_;
  std::size_t r_ = 0, c_ = 0;
  double w_max_ = 0.0;
  // Effective per-cell levels: [slice][polarity(0=pos,1=neg)][r * c_].
  std::vector<std::vector<std::vector<double>>> levels_;
  CrossbarStats stats_;
};

}  // namespace reramdl::circuit
