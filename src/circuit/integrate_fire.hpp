// Integration-and-fire circuit (PipeLayer component (b)): integrates bitline
// current over a spike phase and emits output spikes that a counter
// accumulates — effectively an analog-to-digital conversion whose resolution
// is set by the fire threshold and whose range is set by the counter width.
#pragma once

#include <cstdint>

namespace reramdl::circuit {

class IntegrateFire {
 public:
  // threshold: integrated charge per output spike; counter_bits: output
  // counter width (counts clamp at 2^counter_bits - 1).
  IntegrateFire(double threshold, std::size_t counter_bits);

  // Convert an integrated current (arbitrary charge units) into a spike
  // count. Residual charge below threshold is truncated, as in hardware.
  std::uint64_t convert(double integrated_charge);

  std::uint64_t max_count() const { return max_count_; }
  std::uint64_t saturation_events() const { return saturation_events_; }

 private:
  double threshold_;
  std::uint64_t max_count_;
  std::uint64_t saturation_events_ = 0;
};

}  // namespace reramdl::circuit
