#include "circuit/activation_lut.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace reramdl::circuit {

ActivationLut::ActivationLut(std::function<double(double)> f, double lo,
                             double hi, std::size_t index_bits)
    : lo_(lo), hi_(hi) {
  RERAMDL_CHECK_LT(lo, hi);
  RERAMDL_CHECK_GE(index_bits, 1u);
  RERAMDL_CHECK_LE(index_bits, 20u);
  const std::size_t n = std::size_t{1} << index_bits;
  table_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = lo + (hi - lo) * static_cast<double>(i) /
                              static_cast<double>(n - 1);
    table_[i] = f(x);
  }
}

double ActivationLut::apply(double x) const {
  const double t = (x - lo_) / (hi_ - lo_);
  const double idx = t * static_cast<double>(table_.size() - 1);
  const long i = std::lround(std::clamp(
      idx, 0.0, static_cast<double>(table_.size() - 1)));
  return table_[static_cast<std::size_t>(i)];
}

double ActivationLut::max_error(const std::function<double(double)>& f,
                                std::size_t samples) const {
  RERAMDL_CHECK_GE(samples, 2u);
  double worst = 0.0;
  for (std::size_t i = 0; i < samples; ++i) {
    const double x = lo_ + (hi_ - lo_) * static_cast<double>(i) /
                              static_cast<double>(samples - 1);
    worst = std::max(worst, std::abs(f(x) - apply(x)));
  }
  return worst;
}

}  // namespace reramdl::circuit
