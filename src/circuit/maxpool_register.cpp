#include "circuit/maxpool_register.hpp"

// Header-only component; this TU anchors the library target.
