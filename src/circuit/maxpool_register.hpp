// Max-pooling register (PipeLayer component (c) note): "a register is used
// to keep the maximum value of a sequence" — outputs stream past it and it
// retains the running maximum of the pooling window.
#pragma once

#include <limits>

namespace reramdl::circuit {

class MaxPoolRegister {
 public:
  void reset() { value_ = -std::numeric_limits<double>::infinity(); seen_ = 0; }
  void observe(double x) {
    if (seen_ == 0 || x > value_) value_ = x;
    ++seen_;
  }
  double value() const { return value_; }
  std::size_t seen() const { return seen_; }

 private:
  double value_ = -std::numeric_limits<double>::infinity();
  std::size_t seen_ = 0;
};

}  // namespace reramdl::circuit
