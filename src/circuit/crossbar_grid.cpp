#include "circuit/crossbar_grid.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "obs/obs.hpp"

namespace reramdl::circuit {

CrossbarGrid::CrossbarGrid(const CrossbarConfig& config) : config_(config) {}

void CrossbarGrid::program(const Tensor& weights, double w_max,
                           device::VariationModel* variation) {
  RERAMDL_CHECK_EQ(weights.shape().rank(), 2u);
  total_rows_ = weights.shape()[0];
  total_cols_ = weights.shape()[1];
  row_tiles_ = (total_rows_ + config_.rows - 1) / config_.rows;
  col_tiles_ = (total_cols_ + config_.cols - 1) / config_.cols;

  arrays_.clear();
  arrays_.reserve(row_tiles_ * col_tiles_);
  for (std::size_t rt = 0; rt < row_tiles_; ++rt) {
    const std::size_t r0 = rt * config_.rows;
    const std::size_t r1 = std::min(r0 + config_.rows, total_rows_);
    for (std::size_t ct = 0; ct < col_tiles_; ++ct) {
      const std::size_t c0 = ct * config_.cols;
      const std::size_t c1 = std::min(c0 + config_.cols, total_cols_);
      Tensor tile(Shape{r1 - r0, c1 - c0});
      for (std::size_t i = r0; i < r1; ++i)
        for (std::size_t j = c0; j < c1; ++j)
          tile.at(i - r0, j - c0) = weights.at(i, j);
      Crossbar xbar(config_);
      xbar.program(tile, w_max, variation);
      arrays_.push_back(std::move(xbar));
    }
  }
}

std::vector<float> CrossbarGrid::compute(const std::vector<float>& x,
                                         double x_max) {
  RERAMDL_CHECK_EQ(x.size(), total_rows_);
  RERAMDL_CHECK(!arrays_.empty());
  RERAMDL_TRACE_SCOPE("xbar.compute", "circuit");
  obs::ScopedHistogramTimer obs_timer("xbar.mvm_ns");
  if (obs::metrics_enabled()) {
    auto& reg = obs::Registry::instance();
    static obs::Counter& mvms = reg.counter("xbar.mvms");
    static obs::Counter& tiles = reg.counter("xbar.tile_mvms");
    mvms.add();
    tiles.add(arrays_.size());
  }

  // Every (row_tile, col_tile) partial-sum MVM is independent — each tile is
  // its own Crossbar with its own stats — so they dispatch to the pool as a
  // flat tile index. The vertical add below runs serially afterwards in a
  // fixed row-tile-ascending order (the paper's horizontal-collect /
  // vertical-add of Fig. 3), keeping the result bit-identical for any
  // thread count.
  std::vector<std::vector<float>> partials(arrays_.size());
  parallel::parallel_for(0, arrays_.size(), 1, [&](std::size_t t0, std::size_t t1) {
    for (std::size_t t = t0; t < t1; ++t) {
      const std::size_t rt = t / col_tiles_;
      const std::size_t r0 = rt * config_.rows;
      const std::size_t r1 = std::min(r0 + config_.rows, total_rows_);
      const std::vector<float> xin(x.begin() + static_cast<long>(r0),
                                   x.begin() + static_cast<long>(r1));
      partials[t] = arrays_[t].compute(xin, x_max);
    }
  });

  std::vector<float> y(total_cols_, 0.0f);
  for (std::size_t rt = 0; rt < row_tiles_; ++rt) {
    for (std::size_t ct = 0; ct < col_tiles_; ++ct) {
      const std::size_t c0 = ct * config_.cols;
      const std::vector<float>& partial = partials[rt * col_tiles_ + ct];
      for (std::size_t j = 0; j < partial.size(); ++j) y[c0 + j] += partial[j];
    }
  }
  return y;
}

void CrossbarGrid::apply_drift(double factor) {
  for (auto& a : arrays_) a.apply_drift(factor);
}

CrossbarStats CrossbarGrid::aggregate_stats() const {
  CrossbarStats total;
  for (const auto& a : arrays_) {
    total.programmed_cells += a.stats().programmed_cells;
    total.compute_ops += a.stats().compute_ops;
    total.input_spikes += a.stats().input_spikes;
    total.saturated_counters += a.stats().saturated_counters;
  }
  return total;
}

}  // namespace reramdl::circuit
