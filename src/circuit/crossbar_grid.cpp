#include "circuit/crossbar_grid.hpp"

#include <algorithm>

#include "circuit/spike_driver.hpp"
#include "common/check.hpp"
#include "common/parallel.hpp"
#include "common/scratch.hpp"
#include "obs/obs.hpp"
#include "tensor/sparsity.hpp"

namespace reramdl::circuit {

CrossbarGrid::CrossbarGrid(const CrossbarConfig& config) : config_(config) {}

void CrossbarGrid::program(const Tensor& weights, double w_max,
                           device::VariationModel* variation) {
  ProgramOptions opts;
  opts.variation = variation;
  program(weights, w_max, opts);
}

void CrossbarGrid::program(const Tensor& weights, double w_max,
                           const ProgramOptions& opts) {
  RERAMDL_CHECK_EQ(weights.shape().rank(), 2u);
  total_rows_ = weights.shape()[0];
  total_cols_ = weights.shape()[1];
  const std::size_t data_cols = config_.data_cols();
  row_tiles_ = (total_rows_ + config_.rows - 1) / config_.rows;
  col_tiles_ = (total_cols_ + data_cols - 1) / data_cols;
  w_max_ = w_max;

  // Expand the fault population once at grid level so each tile gets an
  // independent per-tile seed below; this also covers the deprecated
  // VariationModel stuck-at shim (whose params carry one seed per model —
  // without the per-tile mix every tile would repeat the same pattern).
  device::FaultMapParams base = opts.faults;
  if (!base.enabled() && opts.variation != nullptr &&
      opts.variation->has_legacy_faults())
    base = opts.variation->legacy_fault_params();

  arrays_.clear();
  arrays_.reserve(row_tiles_ * col_tiles_);
  for (std::size_t t = 0; t < row_tiles_ * col_tiles_; ++t) {
    Crossbar xbar(config_);
    xbar.program(extract_tile(weights, t), w_max, tile_options(opts, base, t));
    arrays_.push_back(std::move(xbar));
  }
  attribute_program_stats();
}

std::size_t CrossbarGrid::tile_fault_salt(std::size_t t) const {
  return t < phys_map_.size() ? phys_map_[t] : t;
}

ProgramOptions CrossbarGrid::tile_options(const ProgramOptions& opts,
                                          const device::FaultMapParams& base,
                                          std::size_t t) const {
  ProgramOptions tile_opts = opts;
  tile_opts.faults = base;
  if (base.enabled())
    tile_opts.faults.seed =
        device::FaultMap::mix_seed(base.seed, tile_fault_salt(t) + 1);
  return tile_opts;
}

Tensor CrossbarGrid::extract_tile(const Tensor& weights, std::size_t t) const {
  const std::size_t data_cols = config_.data_cols();
  const std::size_t rt = t / col_tiles_;
  const std::size_t ct = t % col_tiles_;
  const std::size_t r0 = rt * config_.rows;
  const std::size_t r1 = std::min(r0 + config_.rows, total_rows_);
  const std::size_t c0 = ct * data_cols;
  const std::size_t c1 = std::min(c0 + data_cols, total_cols_);
  Tensor tile(Shape{r1 - r0, c1 - c0});
  for (std::size_t i = r0; i < r1; ++i)
    for (std::size_t j = c0; j < c1; ++j)
      tile.at(i - r0, j - c0) = weights.at(i, j);
  return tile;
}

void CrossbarGrid::set_tile_phys_map(std::vector<std::size_t> map) {
  if (!map.empty() && !arrays_.empty())
    RERAMDL_CHECK_EQ(map.size(), arrays_.size());
  phys_map_ = std::move(map);
}

std::uint64_t CrossbarGrid::refresh_tile(std::size_t t, const Tensor& weights,
                                         const ProgramOptions& opts) {
  RERAMDL_CHECK_LT(t, arrays_.size());
  RERAMDL_CHECK_EQ(weights.shape().rank(), 2u);
  RERAMDL_CHECK_EQ(weights.shape()[0], total_rows_);
  RERAMDL_CHECK_EQ(weights.shape()[1], total_cols_);
  device::FaultMapParams base = opts.faults;
  if (!base.enabled() && opts.variation != nullptr &&
      opts.variation->has_legacy_faults())
    base = opts.variation->legacy_fault_params();
  const std::uint64_t before = arrays_[t].stats().programmed_cells;
  arrays_[t].program(extract_tile(weights, t), w_max_,
                     tile_options(opts, base, t));
  return arrays_[t].stats().programmed_cells - before;
}

void CrossbarGrid::apply_drift_tile(std::size_t t, double factor) {
  RERAMDL_CHECK_LT(t, arrays_.size());
  arrays_[t].apply_drift(factor);
}

void CrossbarGrid::advance_age(double dt_seconds) {
  for (auto& a : arrays_) a.advance_age(dt_seconds);
}

CrossbarHealth CrossbarGrid::health() const {
  CrossbarHealth total;
  bool first = true;
  for (const auto& a : arrays_) {
    if (first) {
      total = a.health();
      first = false;
    } else {
      total += a.health();
    }
  }
  return total;
}

void CrossbarGrid::attribute_program_stats() const {
  if (!obs::metrics_enabled() || obs_label_.empty()) return;
  // Freshly programmed tiles carry exactly this programming pass's stats —
  // the per-tile write-verify cost the fault campaigns previously only saw
  // as an aggregate.
  auto& attr = obs::Attribution::instance();
  for (std::size_t t = 0; t < arrays_.size(); ++t) {
    const CrossbarStats& s = arrays_[t].stats();
    const std::string path = obs_label_ + "/tile" + std::to_string(t);
    attr.add(path, "verify_retries", static_cast<double>(s.verify_retries));
    attr.add(path, "cells_remapped", static_cast<double>(s.cells_remapped));
    attr.add(path, "faults_injected", static_cast<double>(s.faults_injected));
  }
}

std::size_t CrossbarGrid::inject_at(std::uint64_t step) {
  std::size_t applied = 0;
  for (auto& a : arrays_) applied += a.inject_at(step);
  return applied;
}

std::vector<float> CrossbarGrid::compute(const std::vector<float>& x,
                                         double x_max) {
  RERAMDL_CHECK_EQ(x.size(), total_rows_);
  RERAMDL_CHECK(!arrays_.empty());
  RERAMDL_TRACE_SCOPE("xbar.compute", "circuit");
  obs::ScopedHistogramTimer obs_timer("xbar.mvm_ns");
  if (obs::metrics_enabled()) {
    auto& reg = obs::Registry::instance();
    static obs::Counter& mvms = reg.counter("xbar.mvms");
    static obs::Counter& tiles = reg.counter("xbar.tile_mvms");
    mvms.add();
    tiles.add(arrays_.size());
  }

  // Every (row_tile, col_tile) partial-sum MVM is independent — each tile is
  // its own Crossbar with its own stats — so they dispatch to the pool as a
  // flat tile index, each reading its input segment in place (pointer +
  // length, no per-tile copy) and writing into a config_.cols-strided slot
  // of a reused scratch buffer. The vertical add below runs serially
  // afterwards in a fixed row-tile-ascending order (the paper's
  // horizontal-collect / vertical-add of Fig. 3), keeping the result
  // bit-identical for any thread count.
  scratch::Buffer<float> partials(arrays_.size() * config_.cols);
  parallel::parallel_for(0, arrays_.size(), 1, [&](std::size_t t0, std::size_t t1) {
    for (std::size_t t = t0; t < t1; ++t) {
      const std::size_t rt = t / col_tiles_;
      const std::size_t r0 = rt * config_.rows;
      arrays_[t].compute(x.data() + r0, arrays_[t].active_rows(), x_max,
                         partials.data() + t * config_.cols);
    }
  });

  std::vector<float> y(total_cols_, 0.0f);
  for (std::size_t rt = 0; rt < row_tiles_; ++rt) {
    for (std::size_t ct = 0; ct < col_tiles_; ++ct) {
      const std::size_t t = rt * col_tiles_ + ct;
      const std::size_t c0 = ct * config_.data_cols();
      const float* partial = partials.data() + t * config_.cols;
      const std::size_t cw = arrays_[t].active_cols();
      for (std::size_t j = 0; j < cw; ++j) y[c0 + j] += partial[j];
    }
  }
  return y;
}

Tensor CrossbarGrid::compute_batch(const Tensor& rows, double x_max,
                                   double zero_fraction) {
  RERAMDL_CHECK_EQ(rows.shape().rank(), 2u);
  RERAMDL_CHECK_EQ(rows.shape()[1], total_rows_);
  RERAMDL_CHECK(!arrays_.empty());
  const std::size_t m = rows.shape()[0];
  Tensor out(Shape{m, total_cols_});
  if (m == 0) return out;

  RERAMDL_TRACE_SCOPE("xbar.compute_batch", "circuit");
  obs::ScopedHistogramTimer obs_timer("xbar.batch_mvm_ns");
  if (obs::metrics_enabled()) {
    auto& reg = obs::Registry::instance();
    static obs::Counter& batches = reg.counter("xbar.batch_mvms");
    static obs::Counter& rows_c = reg.counter("xbar.batch_rows");
    static obs::Counter& tiles = reg.counter("xbar.tile_mvms");
    static obs::Histogram& sizes = reg.histogram("xbar.batch_size");
    batches.add();
    rows_c.add(m);
    tiles.add(arrays_.size() * m);
    sizes.record(static_cast<double>(m));
  }

  if (config_.bit_serial) {
    // The cycle-accurate emulation stays per-vector (compute() already
    // fans its tiles out to the pool).
    for (std::size_t b = 0; b < m; ++b) {
      const float* xrow = rows.data() + b * total_rows_;
      const std::vector<float> y =
          compute(std::vector<float>(xrow, xrow + total_rows_), x_max);
      std::copy(y.begin(), y.end(), out.data() + b * total_cols_);
    }
    obs::snapshot_wall_tick();
    return out;
  }

  // Variant selection (shared with Crossbar::compute_batch): scan only when
  // the caller didn't already measure the batch and the policy is live.
  double zf = zero_fraction;
  if (zf < 0.0 && sparsity::threshold() > 0.0)
    zf = sparsity::scan_rows(rows.data(), m, total_rows_).zero_fraction();
  bool sparse = false;
  if (zf >= 0.0) {
    sparse = sparsity::select_sparse(zf);
    sparsity::record_selection(zf, sparse);
  }

  // Per-layer / per-tile attribution (obs::Attribution) is live only when a
  // label was assigned; the per-call deltas below are merged serially, so
  // the booked values are identical for any RERAMDL_THREADS.
  const bool attributing = obs::metrics_enabled() && !obs_label_.empty();
  if (attributing && zf >= 0.0)
    obs::Attribution::instance().add(
        obs_label_, sparse ? "sparse_calls" : "dense_calls", 1.0);
  std::vector<CrossbarStats> tile_deltas(attributing ? arrays_.size() : 0);
  std::vector<std::uint64_t> strip_skipped_total(attributing ? row_tiles_ : 0,
                                                 0);

  // Row-block size per work item (matches the Crossbar kernel's W_eff reuse
  // window) and a cap on the partial-sum staging buffer; the batch is
  // processed in macro-chunks so arbitrarily large m (im2col row counts)
  // keeps bounded memory. Neither affects results: per-row arithmetic is
  // independent and the merge order below is fixed.
  constexpr std::size_t kBlock = 32;
  constexpr std::size_t kMaxPartialFloats = 8u << 20;  // 32 MiB staging cap
  const std::size_t per_row = arrays_.size() * config_.cols;
  std::size_t chunk = std::max<std::size_t>(
      kBlock, kMaxPartialFloats / std::max<std::size_t>(per_row, 1));
  chunk = std::min(chunk, m);

  const std::size_t max_blocks = (chunk + kBlock - 1) / kBlock;
  scratch::Buffer<float> partials(arrays_.size() * chunk * config_.cols);
  // Quantized input blocks, one region per (row-strip, row-block). Every
  // column tile of a strip sees the same input segment, so quantization
  // (division + llround + popcount per element — measurable at batch scale)
  // runs once per strip instead of once per tile. The dense path stages the
  // block transposed in xt; the sparse path stages the CSR compaction in
  // xv / xi / row_start instead (same per-slot capacity — a slot can be
  // fully dense). Only the selected variant's buffers are checked out.
  const std::size_t slab = row_tiles_ * max_blocks * config_.rows * kBlock;
  scratch::Buffer<double> xt(sparse ? 0 : slab);
  scratch::Buffer<double> xv(sparse ? slab : 0);
  scratch::Buffer<std::int32_t> xi(sparse ? slab : 0);
  scratch::Buffer<std::int32_t> row_start(
      sparse ? row_tiles_ * max_blocks * (kBlock + 1) : 0);
  std::vector<std::uint64_t> strip_spikes, strip_skipped;
  std::vector<CrossbarStats> deltas;
  std::uint64_t zeros_skipped = 0;
  for (std::size_t b0 = 0; b0 < m; b0 += chunk) {
    const std::size_t cm = std::min(chunk, m - b0);
    const std::size_t nblocks = (cm + kBlock - 1) / kBlock;
    const std::size_t qitems = row_tiles_ * nblocks;
    const std::size_t items = arrays_.size() * nblocks;
    strip_spikes.assign(qitems, 0);
    if (sparse) strip_skipped.assign(qitems, 0);
    deltas.assign(items, CrossbarStats{});

    // Phase 1 — one work item per (row-strip, row-block): quantize the
    // block's input segment into its staging slot (transposed dense block
    // or CSR compaction) and record the strip's spike popcount.
    parallel::parallel_for(0, qitems, 1, [&](std::size_t w0, std::size_t w1) {
      for (std::size_t w = w0; w < w1; ++w) {
        const std::size_t rt = w / nblocks;
        const std::size_t blk = w % nblocks;
        const std::size_t r0 = rt * config_.rows;
        const std::size_t bb = blk * kBlock;
        const std::size_t bm = std::min(kBlock, cm - bb);
        const Crossbar& strip = arrays_[rt * col_tiles_];
        const float* seg = rows.data() + (b0 + bb) * total_rows_ + r0;
        const std::size_t off = w * config_.rows * kBlock;
        if (sparse) {
          std::int32_t* rs = row_start.data() + w * (kBlock + 1);
          strip_spikes[w] = strip.quantize_batch_sparse(
              seg, bm, total_rows_, x_max, xv.data() + off, xi.data() + off,
              rs);
          strip_skipped[w] =
              static_cast<std::uint64_t>(strip.active_rows()) * bm -
              static_cast<std::uint64_t>(rs[bm]);
        } else {
          strip_spikes[w] = strip.quantize_batch(seg, bm, total_rows_, x_max,
                                                 xt.data() + off);
        }
      }
    });

    // Phase 2 — one work item per (tile, row-block): run the collapsed
    // blocked kernel on the shared pre-quantized block. Writes land in
    // disjoint partial slots; stats accumulate into per-item deltas (each
    // tile credited with its strip's spike count, exactly what it would
    // have counted quantizing its own slice) and merge serially after.
    parallel::parallel_for(0, items, 1, [&](std::size_t w0, std::size_t w1) {
      for (std::size_t w = w0; w < w1; ++w) {
        const std::size_t t = w / nblocks;
        const std::size_t blk = w % nblocks;
        const std::size_t rt = t / col_tiles_;
        const std::size_t bb = blk * kBlock;
        const std::size_t bm = std::min(kBlock, cm - bb);
        const std::size_t q = rt * nblocks + blk;
        const std::size_t off = q * config_.rows * kBlock;
        deltas[w].input_spikes += strip_spikes[q];
        float* dst = partials.data() + (t * chunk + bb) * config_.cols;
        if (sparse)
          arrays_[t].compute_batch_prequant_sparse(
              xv.data() + off, xi.data() + off,
              row_start.data() + q * (kBlock + 1), bm, x_max, dst,
              config_.cols, deltas[w]);
        else
          arrays_[t].compute_batch_prequant(xt.data() + off, bm, x_max, dst,
                                            config_.cols, deltas[w]);
      }
    });

    for (std::size_t w = 0; w < items; ++w) {
      arrays_[w / nblocks].merge_stats(deltas[w]);
      if (attributing) tile_deltas[w / nblocks] += deltas[w];
    }
    // Each column tile of a strip skipped that strip's zero wordline
    // activations — the same per-tile crediting as input_spikes above.
    if (sparse)
      for (std::size_t q = 0; q < qitems; ++q) {
        zeros_skipped += strip_skipped[q] * col_tiles_;
        if (attributing)
          strip_skipped_total[q / nblocks] += strip_skipped[q];
      }

    // Vertical add in row-tile-ascending order per output element — the
    // same fixed merge the per-vector path uses.
    for (std::size_t b = 0; b < cm; ++b) {
      float* orow = out.data() + (b0 + b) * total_cols_;
      for (std::size_t rt = 0; rt < row_tiles_; ++rt) {
        for (std::size_t ct = 0; ct < col_tiles_; ++ct) {
          const std::size_t t = rt * col_tiles_ + ct;
          const std::size_t c0 = ct * config_.data_cols();
          const float* partial =
              partials.data() + (t * chunk + b) * config_.cols;
          const std::size_t cw = arrays_[t].active_cols();
          for (std::size_t j = 0; j < cw; ++j) orow[c0 + j] += partial[j];
        }
      }
    }
  }
  if (sparse && zeros_skipped > 0) sparsity::count_rows_skipped(zeros_skipped);

  if (attributing) {
    // Book each tile's share of this batch: achieved vs roofline flops (the
    // utilization numerator/denominator — edge tiles are partially filled),
    // spike-driver dynamic energy (spike_count x per-spike cost, the same
    // model as SpikeDriver::drive_energy_pj), and the zero-skipping
    // opportunity (potential = wordline activations driven, skipped = the
    // ones the sparse variant elided).
    auto& attr = obs::Attribution::instance();
    const double mm = static_cast<double>(m);
    for (std::size_t t = 0; t < arrays_.size(); ++t) {
      const std::string path = obs_label_ + "/tile" + std::to_string(t);
      const double ar = static_cast<double>(arrays_[t].active_rows());
      const double ac = static_cast<double>(arrays_[t].active_cols());
      attr.add(path, "mvm_rows", mm);
      attr.add(path, "flops", 2.0 * ar * ac * mm);
      attr.add(path, "roofline_flops",
               2.0 * static_cast<double>(config_.rows) *
                   static_cast<double>(config_.data_cols()) * mm);
      attr.add(path, "energy_pj",
               static_cast<double>(tile_deltas[t].input_spikes) *
                   SpikeDriver::kDefaultSpikePj);
      attr.add(path, "zeros_potential", ar * mm);
      attr.add(path, "zeros_skipped",
               static_cast<double>(strip_skipped_total[t / col_tiles_]));
    }
  }
  obs::snapshot_wall_tick();
  return out;
}

void CrossbarGrid::apply_drift(double factor) {
  for (auto& a : arrays_) a.apply_drift(factor);
}

CrossbarStats CrossbarGrid::aggregate_stats() const {
  CrossbarStats total;
  for (const auto& a : arrays_) total += a.stats();
  return total;
}

}  // namespace reramdl::circuit
