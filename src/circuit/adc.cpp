#include "circuit/adc.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace reramdl::circuit {

SarAdc::SarAdc(AdcParams params)
    : params_(params),
      max_code_((std::uint32_t{1} << params.bits) - 1) {
  RERAMDL_CHECK_GE(params.bits, 1u);
  RERAMDL_CHECK_LE(params.bits, 16u);
  RERAMDL_CHECK_GT(params.conversion_ns, 0.0);
}

std::uint32_t SarAdc::convert(double analog, double full_scale) {
  RERAMDL_CHECK_GT(full_scale, 0.0);
  ++conversions_;
  const double t = std::clamp(analog / full_scale, 0.0, 1.0);
  return static_cast<std::uint32_t>(
      std::lround(t * static_cast<double>(max_code_)));
}

double SarAdc::reconstruct(std::uint32_t code, double full_scale) const {
  RERAMDL_CHECK_LE(code, max_code_);
  return static_cast<double>(code) / static_cast<double>(max_code_) * full_scale;
}

double SarAdc::energy_pj() const {
  return static_cast<double>(conversions_) * params_.energy_per_conversion_pj;
}

ConversionCosts spike_scheme_costs(std::size_t rows, std::size_t cols,
                                   std::size_t input_bits,
                                   const device::CellParams& cell) {
  RERAMDL_CHECK_GT(rows, 0u);
  RERAMDL_CHECK_GT(cols, 0u);
  RERAMDL_CHECK_GE(input_bits, 1u);
  ConversionCosts c;
  // One spike phase per input bit; each phase reads every cell of the array
  // and clocks the per-column I&F + counter.
  const double per_phase_read =
      static_cast<double>(rows * cols) * cell.read_energy_per_spike_pj;
  const double inf_counter_pj = 0.05;  // per column per phase
  c.energy_pj = static_cast<double>(input_bits) *
                (per_phase_read + static_cast<double>(cols) * inf_counter_pj);
  // Phases are serial; each phase is one array read window.
  const double phase_ns = 3.18;  // 50.88 ns cycle / 16 phases at full precision
  c.latency_ns = static_cast<double>(input_bits) * phase_ns;
  // Spike driver per row + I&F/counter per column: tiny digital cells.
  c.area_mm2 = static_cast<double>(rows) * 0.00001 +
               static_cast<double>(cols) * 0.00004;
  return c;
}

ConversionCosts adc_scheme_costs(std::size_t rows, std::size_t cols,
                                 std::size_t input_bits, const AdcParams& adc,
                                 const DacParams& dac,
                                 std::size_t cols_per_adc) {
  RERAMDL_CHECK_GT(cols_per_adc, 0u);
  RERAMDL_CHECK_GE(input_bits, 1u);
  ConversionCosts c;
  const std::size_t adcs = (cols + cols_per_adc - 1) / cols_per_adc;
  // Voltage mode still streams input_bits / dac.bits input slices; each
  // slice needs every row's DAC to settle and every column to be digitized.
  const std::size_t slices = (input_bits + dac.bits - 1) / dac.bits;
  const double per_slice_energy =
      static_cast<double>(rows) * dac.energy_per_op_pj +
      static_cast<double>(cols) * adc.energy_per_conversion_pj;
  c.energy_pj = static_cast<double>(slices) * per_slice_energy;
  // ADCs time-multiplex their column group.
  const double per_slice_ns =
      dac.settle_ns +
      adc.conversion_ns * static_cast<double>(cols_per_adc);
  c.latency_ns = static_cast<double>(slices) * per_slice_ns;
  c.area_mm2 = static_cast<double>(adcs) * adc.area_mm2 +
               static_cast<double>(rows) * dac.area_mm2;
  return c;
}

}  // namespace reramdl::circuit
