// Voltage-mode conversion circuits: the DAC + SAR-ADC input/output scheme
// ISAAC uses, modeled as the alternative to PipeLayer's weighted-spike
// coding + integrate-and-fire scheme. PipeLayer adopts spikes specifically
// "to further reduce the area and energy overhead" of ADCs; the
// scheme-comparison helpers quantify that trade-off and feed the hardware
// ablation bench.
#pragma once

#include <cstddef>
#include <cstdint>

#include "device/reram_cell.hpp"

namespace reramdl::circuit {

// Successive-approximation ADC. Constants follow the 8-bit 1.2 GS/s ADC
// ISAAC budgets per crossbar column group.
struct AdcParams {
  std::size_t bits = 8;
  double conversion_ns = 0.83;       // 1.2 GS/s
  double energy_per_conversion_pj = 2.0;
  double area_mm2 = 0.0012;
};

class SarAdc {
 public:
  explicit SarAdc(AdcParams params);

  // Convert an analog value in [0, full_scale] to a code in [0, 2^bits - 1].
  std::uint32_t convert(double analog, double full_scale);
  // Value a code represents.
  double reconstruct(std::uint32_t code, double full_scale) const;

  std::uint32_t max_code() const { return max_code_; }
  std::uint64_t conversions() const { return conversions_; }
  double energy_pj() const;
  const AdcParams& params() const { return params_; }

 private:
  AdcParams params_;
  std::uint32_t max_code_;
  std::uint64_t conversions_ = 0;
};

// Row driver DAC for voltage-mode inputs.
struct DacParams {
  std::size_t bits = 8;
  double settle_ns = 1.0;
  double energy_per_op_pj = 0.2;
  double area_mm2 = 0.00002;
};

// Per-MVM conversion-path costs of the two input/output schemes on one
// rows x cols array.
struct ConversionCosts {
  double energy_pj = 0.0;
  double latency_ns = 0.0;
  double area_mm2 = 0.0;
};

// Weighted-spike scheme (PipeLayer): input_bits serial spike phases drive
// the wordlines; each column integrates-and-fires into a counter. No ADC.
ConversionCosts spike_scheme_costs(std::size_t rows, std::size_t cols,
                                   std::size_t input_bits,
                                   const device::CellParams& cell);

// Voltage-mode scheme (ISAAC-style): one DAC settle per row, then the
// bitline sample is digitized by ADCs shared across `cols_per_adc` columns.
ConversionCosts adc_scheme_costs(std::size_t rows, std::size_t cols,
                                 std::size_t input_bits, const AdcParams& adc,
                                 const DacParams& dac,
                                 std::size_t cols_per_adc = 8);

}  // namespace reramdl::circuit
