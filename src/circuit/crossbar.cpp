#include "circuit/crossbar.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/check.hpp"

namespace reramdl::circuit {

std::size_t CrossbarConfig::slices() const {
  RERAMDL_CHECK_GT(cell.bits_per_cell, 0u);
  RERAMDL_CHECK_EQ(weight_bits % cell.bits_per_cell, 0u);
  return weight_bits / cell.bits_per_cell;
}

Crossbar::Crossbar(const CrossbarConfig& config) : config_(config) {
  RERAMDL_CHECK_GT(config.rows, 0u);
  RERAMDL_CHECK_GT(config.cols, 0u);
  RERAMDL_CHECK_GE(config.weight_bits, 1u);
  RERAMDL_CHECK_GE(config.input_bits, 1u);
  (void)config_.slices();  // validates divisibility
}

void Crossbar::program(const Tensor& weights, double w_max,
                       device::VariationModel* variation) {
  RERAMDL_CHECK_EQ(weights.shape().rank(), 2u);
  r_ = weights.shape()[0];
  c_ = weights.shape()[1];
  RERAMDL_CHECK_LE(r_, config_.rows);
  RERAMDL_CHECK_LE(c_, config_.cols);
  RERAMDL_CHECK_GT(w_max, 0.0);
  w_max_ = w_max;

  const std::size_t num_slices = config_.slices();
  const std::size_t bpc = config_.cell.bits_per_cell;
  const double slice_max =
      static_cast<double>((std::uint64_t{1} << bpc) - 1);
  const device::LinearQuantizer wq(config_.weight_bits, w_max);

  levels_.assign(num_slices,
                 std::vector<std::vector<double>>(2, std::vector<double>(r_ * c_, 0.0)));

  for (std::size_t i = 0; i < r_; ++i) {
    for (std::size_t j = 0; j < c_; ++j) {
      const std::int64_t q = wq.quantize(weights.at(i, j));
      const std::size_t polarity = q < 0 ? 1 : 0;
      const std::uint64_t mag = static_cast<std::uint64_t>(q < 0 ? -q : q);
      const auto slices = device::bit_slice(mag, bpc, num_slices);
      for (std::size_t s = 0; s < num_slices; ++s) {
        double level = static_cast<double>(slices[s]);
        // Both polarities' cells exist physically; only the used one holds a
        // non-zero level, but variation / faults can disturb either.
        double other = 0.0;
        if (variation != nullptr) {
          level = variation->perturb(level, slice_max);
          other = variation->perturb(other, slice_max);
        }
        levels_[s][polarity][i * c_ + j] = level;
        levels_[s][1 - polarity][i * c_ + j] = other;
      }
    }
  }
  stats_.programmed_cells += r_ * c_ * num_slices * 2;
}

void Crossbar::apply_drift(double factor) {
  RERAMDL_CHECK_GT(factor, 0.0);
  RERAMDL_CHECK_LE(factor, 1.0);
  for (auto& slice : levels_)
    for (auto& polarity : slice)
      for (auto& level : polarity) level *= factor;
}

std::vector<float> Crossbar::compute(const std::vector<float>& x, double x_max) {
  RERAMDL_CHECK_EQ(x.size(), r_);
  RERAMDL_CHECK_GT(w_max_, 0.0);
  RERAMDL_CHECK_GT(x_max, 0.0);

  const device::LinearQuantizer xq(config_.input_bits, x_max);
  std::vector<std::int64_t> x_int(r_);
  for (std::size_t i = 0; i < r_; ++i) {
    x_int[i] = xq.quantize(x[i]);
    const std::uint64_t mag = static_cast<std::uint64_t>(std::llabs(x_int[i]));
    stats_.input_spikes += static_cast<std::uint64_t>(std::popcount(mag));
  }

  const std::vector<double> acc =
      config_.bit_serial ? compute_bit_serial(x_int) : compute_fast(x_int);

  // Scale integer result back to value domain:
  // y = sum_i w_int[i] * x_int[i] * w_step * x_step.
  const device::LinearQuantizer wq(config_.weight_bits, w_max_);
  const double scale = wq.step() * xq.step();
  std::vector<float> y(c_);
  for (std::size_t j = 0; j < c_; ++j)
    y[j] = static_cast<float>(acc[j] * scale);
  ++stats_.compute_ops;
  return y;
}

std::vector<double> Crossbar::compute_fast(
    const std::vector<std::int64_t>& x_int) const {
  const std::size_t num_slices = levels_.size();
  const std::size_t bpc = config_.cell.bits_per_cell;
  std::vector<double> acc(c_, 0.0);
  for (std::size_t s = 0; s < num_slices; ++s) {
    const double weight = static_cast<double>(std::uint64_t{1} << (s * bpc));
    const auto& pos = levels_[s][0];
    const auto& neg = levels_[s][1];
    for (std::size_t i = 0; i < r_; ++i) {
      const double xi = static_cast<double>(x_int[i]);
      if (xi == 0.0) continue;
      const std::size_t base = i * c_;
      for (std::size_t j = 0; j < c_; ++j)
        acc[j] += xi * weight * (pos[base + j] - neg[base + j]);
    }
  }
  return acc;
}

std::vector<double> Crossbar::compute_bit_serial(
    const std::vector<std::int64_t>& x_int) {
  // Emulates the spike driver + I&F + counter + shift-add path cycle by
  // cycle: one wordline spike phase per (input bit, sign phase); per column
  // the integrated current is counted with saturation at 2^counter_bits - 1.
  const std::size_t num_slices = levels_.size();
  const std::size_t bpc = config_.cell.bits_per_cell;
  const double counter_max =
      static_cast<double>((std::uint64_t{1} << config_.counter_bits) - 1);

  std::vector<double> acc(c_, 0.0);
  for (int phase = 0; phase < 2; ++phase) {  // 0: positive inputs, 1: negative
    for (std::size_t b = 0; b < config_.input_bits; ++b) {
      const double bit_weight = static_cast<double>(std::uint64_t{1} << b);
      for (std::size_t s = 0; s < num_slices; ++s) {
        const double slice_weight =
            static_cast<double>(std::uint64_t{1} << (s * bpc));
        const auto& pos = levels_[s][0];
        const auto& neg = levels_[s][1];
        // Integrate bitline currents for this spike cycle.
        std::vector<double> col_pos(c_, 0.0), col_neg(c_, 0.0);
        for (std::size_t i = 0; i < r_; ++i) {
          const std::int64_t xi = x_int[i];
          const bool this_phase = (phase == 0) ? (xi > 0) : (xi < 0);
          if (!this_phase) continue;
          const std::uint64_t mag = static_cast<std::uint64_t>(std::llabs(xi));
          if (((mag >> b) & 1u) == 0) continue;
          const std::size_t base = i * c_;
          for (std::size_t j = 0; j < c_; ++j) {
            col_pos[j] += pos[base + j];
            col_neg[j] += neg[base + j];
          }
        }
        // I&F counters clamp each column's count for this cycle.
        const double sign = (phase == 0) ? 1.0 : -1.0;
        for (std::size_t j = 0; j < c_; ++j) {
          double cp = col_pos[j], cn = col_neg[j];
          if (cp > counter_max) {
            cp = counter_max;
            ++stats_.saturated_counters;
          }
          if (cn > counter_max) {
            cn = counter_max;
            ++stats_.saturated_counters;
          }
          acc[j] += sign * bit_weight * slice_weight * (cp - cn);
        }
      }
    }
  }
  return acc;
}

}  // namespace reramdl::circuit
