#include "circuit/crossbar.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/check.hpp"
#include "common/scratch.hpp"
#include "common/simd.hpp"
#include "obs/obs.hpp"
#include "tensor/sparsity.hpp"

namespace reramdl::circuit {

namespace {

// Row-block size of the batched fast-path kernel: each loaded W_eff row is
// reused across this many input rows, turning the memory-bound MV into a
// cache-blocked MM. Affects performance only — per-row accumulation order
// is independent of the blocking, so results are identical for any block.
constexpr std::size_t kBatchBlock = 32;

// Dense collapsed-kernel body, a free function so RERAMDL_TARGET_CLONES can
// multiversion it (the attribute does not apply to member functions).
//
// Register-tiled microkernel: a 4-row x 8-column accumulator tile lives
// in registers across the entire i loop, so W_eff rows stream through
// once per row quad with no accumulator load/store traffic inside the
// loop (the row-fused form was store-bound at ~half the FMA peak). Per
// output element the accumulation still visits i in ascending order —
// identical to a single-vector compute(). Unlike the single-row tail,
// the tile does not skip xi == 0 contributions; that is bitwise a no-op:
// an accumulator can never be -0.0 (it starts at +0.0, exact cancellation
// rounds to +0.0, and +0.0 + (-0.0) = +0.0), and adding xi * w == +/-0.0
// to any such value leaves its bit pattern unchanged.
RERAMDL_TARGET_CLONES
void batch_kernel_dense(const double* w_eff, std::size_t r, std::size_t c,
                        const double* xt, std::size_t m, double scale,
                        float* out, std::size_t out_stride) {
  std::size_t b = 0;
  for (; b + 4 <= m; b += 4) {
    for (std::size_t j0 = 0; j0 < c; j0 += 8) {
      const std::size_t jn = std::min<std::size_t>(8, c - j0);
      double a0[8] = {}, a1[8] = {}, a2[8] = {}, a3[8] = {};
      const double* __restrict wp = w_eff + j0;
      const double* __restrict xp = xt + b;
      if (jn == 8) {
        for (std::size_t i = 0; i < r; ++i, wp += c, xp += m) {
          const double x0 = xp[0], x1 = xp[1], x2 = xp[2], x3 = xp[3];
          for (int jj = 0; jj < 8; ++jj) {
            const double w = wp[jj];
            a0[jj] += x0 * w;
            a1[jj] += x1 * w;
            a2[jj] += x2 * w;
            a3[jj] += x3 * w;
          }
        }
      } else {
        for (std::size_t i = 0; i < r; ++i, wp += c, xp += m) {
          const double x0 = xp[0], x1 = xp[1], x2 = xp[2], x3 = xp[3];
          for (std::size_t jj = 0; jj < jn; ++jj) {
            const double w = wp[jj];
            a0[jj] += x0 * w;
            a1[jj] += x1 * w;
            a2[jj] += x2 * w;
            a3[jj] += x3 * w;
          }
        }
      }
      float* y0 = out + b * out_stride + j0;
      float* y1 = y0 + out_stride;
      float* y2 = y1 + out_stride;
      float* y3 = y2 + out_stride;
      for (std::size_t jj = 0; jj < jn; ++jj) {
        y0[jj] = static_cast<float>(a0[jj] * scale);
        y1[jj] = static_cast<float>(a1[jj] * scale);
        y2[jj] = static_cast<float>(a2[jj] * scale);
        y3[jj] = static_cast<float>(a3[jj] * scale);
      }
    }
  }

  // Batch tail (< 4 rows, including the single-vector m == 1 case): the
  // i-outer row-fused form with the zero-skip.
  if (b < m) {
    const std::size_t tm = m - b;
    scratch::Buffer<double> acc(tm * c);
    std::fill(acc.begin(), acc.begin() + tm * c, 0.0);
    for (std::size_t i = 0; i < r; ++i) {
      const double* wrow = w_eff + i * c;
      const double* xcol = xt + i * m;
      for (std::size_t bb = b; bb < m; ++bb) {
        const double xi = xcol[bb];
        if (xi == 0.0) continue;
        double* arow = acc.data() + (bb - b) * c;
        for (std::size_t j = 0; j < c; ++j) arow[j] += xi * wrow[j];
      }
    }
    for (std::size_t bb = b; bb < m; ++bb) {
      const double* arow = acc.data() + (bb - b) * c;
      float* yrow = out + bb * out_stride;
      for (std::size_t j = 0; j < c; ++j)
        yrow[j] = static_cast<float>(arow[j] * scale);
    }
  }
}

// Zero-skipping kernel body over the CSR-compacted quantized batch: per
// input row, only the nonzero wordline entries contribute. Like the dense
// quad, accumulators live in registers — an 8-column panel is held across
// one full walk of the row's compact list, so every product costs exactly
// one FMA with no accumulator load/store traffic (the row-fused axpy form
// was store-bound and gave back most of the skipped work). Re-reading the
// compact list once per panel is cheap: it is at most r (index, value)
// pairs and L1/L2-resident. Per output element the sum still visits i in
// ascending order — the dense sequence minus exact-zero terms, which is
// bit-identical (see batch_kernel_dense's comment on why a skipped +/-0.0
// add is a bitwise no-op). At 75% input sparsity this executes ~1/4 of the
// dense kernel's FMAs.
RERAMDL_TARGET_CLONES
void batch_kernel_sparse(const double* w_eff, std::size_t c, const double* xv,
                         const std::int32_t* xi, const std::int32_t* row_start,
                         std::size_t m, double scale, float* out,
                         std::size_t out_stride) {
  for (std::size_t b = 0; b < m; ++b) {
    const std::int32_t t0 = row_start[b], t1 = row_start[b + 1];
    float* yrow = out + b * out_stride;
    for (std::size_t j0 = 0; j0 < c; j0 += 16) {
      const std::size_t jn = std::min<std::size_t>(16, c - j0);
      double a[16] = {};
      if (jn == 16) {
        for (std::int32_t t = t0; t < t1; ++t) {
          const double xb = xv[t];
          const double* __restrict wp =
              w_eff + static_cast<std::size_t>(xi[t]) * c + j0;
          for (int jj = 0; jj < 16; ++jj) a[jj] += xb * wp[jj];
        }
      } else {
        for (std::int32_t t = t0; t < t1; ++t) {
          const double xb = xv[t];
          const double* __restrict wp =
              w_eff + static_cast<std::size_t>(xi[t]) * c + j0;
          for (std::size_t jj = 0; jj < jn; ++jj) a[jj] += xb * wp[jj];
        }
      }
      for (std::size_t jj = 0; jj < jn; ++jj)
        yrow[j0 + jj] = static_cast<float>(a[jj] * scale);
    }
  }
}

}  // namespace

std::size_t CrossbarConfig::slices() const {
  RERAMDL_CHECK_GT(cell.bits_per_cell, 0u);
  RERAMDL_CHECK_EQ(weight_bits % cell.bits_per_cell, 0u);
  return weight_bits / cell.bits_per_cell;
}

Crossbar::Crossbar(const CrossbarConfig& config) : config_(config) {
  RERAMDL_CHECK_GT(config.rows, 0u);
  RERAMDL_CHECK_GT(config.cols, 0u);
  RERAMDL_CHECK_GE(config.weight_bits, 1u);
  RERAMDL_CHECK_GE(config.input_bits, 1u);
  (void)config_.slices();  // validates divisibility
}

void Crossbar::program(const Tensor& weights, double w_max,
                       device::VariationModel* variation) {
  ProgramOptions opts;
  opts.variation = variation;
  program(weights, w_max, opts);
}

void Crossbar::program(const Tensor& weights, double w_max,
                       const ProgramOptions& opts) {
  RERAMDL_CHECK_EQ(weights.shape().rank(), 2u);
  // Snapshot for the write-verify obs counter below: stats_ accumulates
  // across reprograms, the counter books only this pass's retries.
  const std::uint64_t retries_before = stats_.verify_retries;
  const std::uint64_t defects_before = stats_.defective_cells;
  r_ = weights.shape()[0];
  c_ = weights.shape()[1];
  RERAMDL_CHECK_LE(r_, config_.rows);
  RERAMDL_CHECK_LT(config_.spare_cols, config_.cols);
  RERAMDL_CHECK_LE(c_, config_.data_cols());
  RERAMDL_CHECK_GT(w_max, 0.0);
  w_max_ = w_max;

  const std::size_t num_slices = config_.slices();
  const std::size_t bpc = config_.cell.bits_per_cell;
  const double slice_max =
      static_cast<double>((std::uint64_t{1} << bpc) - 1);
  const device::LinearQuantizer wq(config_.weight_bits, w_max);

  // Resolve the fault population: explicit params win; a VariationModel
  // still carrying the deprecated stuck-at rates seeds a legacy map.
  device::FaultMapParams fp = opts.faults;
  if (!fp.enabled() && opts.variation != nullptr &&
      opts.variation->has_legacy_faults())
    fp = opts.variation->legacy_fault_params();
  fault_map_ = device::FaultMap(fp);
  if (fp.enabled())
    fault_map_.bind(num_slices, bpc, config_.rows, config_.cols);

  col_phys_.assign(c_, kNoCol);
  phys_owner_.assign(config_.cols, kNoCol);
  for (std::size_t j = 0; j < c_; ++j) {
    col_phys_[j] = j;
    phys_owner_[j] = j;
  }

  levels_.assign(num_slices,
                 std::vector<std::vector<double>>(2, std::vector<double>(r_ * c_, 0.0)));

  // Initial programming, one logical column at a time onto its primary
  // bitline. Columns that still hold defective cells after write-verify
  // are queued for spare-column remapping.
  std::vector<std::size_t> defective_cols;
  std::vector<std::vector<std::size_t>> col_defects(c_);
  for (std::size_t j = 0; j < c_; ++j) {
    ColumnProgram cp = program_column(weights, wq, j, j, slice_max, opts);
    store_column(cp, j);
    if (!cp.defects.empty()) {
      defective_cols.push_back(j);
      col_defects[j] = std::move(cp.defects);
    }
  }
  stats_.programmed_cells += r_ * c_ * num_slices * 2;

  // Spare-column remapping: re-program each defective column onto the next
  // unused spare bitline; a spare that itself verifies defective is burned
  // and the next one is tried. The trial lives in a ColumnProgram until it
  // verifies clean, so a failed attempt never disturbs the array state.
  std::uint64_t remapped_cells = 0;
  std::size_t next_spare = config_.data_cols();
  for (std::size_t j : defective_cols) {
    bool repaired = false;
    while (next_spare < config_.cols) {
      const std::size_t phys = next_spare++;
      ColumnProgram trial = program_column(weights, wq, j, phys, slice_max, opts);
      stats_.programmed_cells += r_ * num_slices * 2;
      if (!trial.defects.empty()) continue;
      store_column(trial, j);
      phys_owner_[col_phys_[j]] = kNoCol;
      col_phys_[j] = phys;
      phys_owner_[phys] = j;
      remapped_cells += r_ * num_slices * 2;
      ++stats_.spare_cols_used;
      col_defects[j].clear();
      repaired = true;
      break;
    }
    if (repaired) continue;
    switch (opts.degrade) {
      case DegradePolicy::kFailFast: {
        std::ostringstream msg;
        msg << "crossbar column " << j << " has " << col_defects[j].size()
            << " unrepairable cell(s) and spares are exhausted ("
            << config_.spare_cols << " configured, " << stats_.spare_cols_used
            << " used); degrade policy is fail_fast";
        throw CheckError(msg.str());
      }
      case DegradePolicy::kClamp:
        // Known-defective cells contribute zero: models the peripheral
        // subtractor gating out bitline segments flagged by verify.
        for (std::size_t cell : col_defects[j]) {
          const std::size_t s = cell / (2 * r_);
          const std::size_t p = (cell / r_) % 2;
          const std::size_t i = cell % r_;
          levels_[s][p][i * c_ + j] = 0.0;
        }
        break;
      case DegradePolicy::kBestEffort:
        break;
    }
    stats_.defective_cells += col_defects[j].size();
  }
  stats_.cells_remapped += remapped_cells;

  // Permanent faults landing in the active region of in-use bitlines.
  std::uint64_t stuck_active = 0;
  if (fault_map_.enabled()) {
    for (const auto& f : fault_map_.stuck_faults()) {
      std::size_t s = 0, p = 0, i = 0, phys = 0;
      fault_map_.decode(f.cell, s, p, i, phys);
      if (i < r_ && phys_owner_[phys] != kNoCol) ++stuck_active;
    }
    stats_.stuck_cells += stuck_active;
    stats_.faults_injected += stuck_active;
  }
  if (obs::metrics_enabled()) {
    auto& reg = obs::Registry::instance();
    if (stuck_active > 0)
      reg.counter("xbar.faults_injected").add(stuck_active);
    if (remapped_cells > 0)
      reg.counter("xbar.cells_remapped").add(remapped_cells);
    // Closed-loop write-verify cost of this programming pass (PR-5 coverage
    // gap: previously only visible in aggregated CrossbarStats).
    if (stats_.verify_retries > retries_before)
      reg.counter("xbar.verify_retries")
          .add(stats_.verify_retries - retries_before);
    if (stats_.defective_cells > defects_before)
      reg.counter("xbar.defective_cells")
          .add(stats_.defective_cells - defects_before);
  }
  rebuild_w_eff();

  // Reset the health clock: a full reprogram restores every level to its
  // write-verified target, so drift and age restart from zero.
  age_seconds_ = 0.0;
  cumulative_drift_ = 1.0;
  ++program_passes_;
  cur_stuck_cells_ = stuck_active;
  cur_defective_cells_ = stats_.defective_cells - defects_before;
  // Spares consumed includes bitlines burned by failed remap trials, not
  // just those that ended up hosting a column.
  cur_spares_consumed_ = next_spare - config_.data_cols();
}

Crossbar::ColumnProgram Crossbar::program_column(
    const Tensor& weights, const device::LinearQuantizer& wq, std::size_t j,
    std::size_t phys_col, double slice_max, const ProgramOptions& opts) {
  const std::size_t num_slices = config_.slices();
  const std::size_t bpc = config_.cell.bits_per_cell;
  ColumnProgram cp;
  cp.levels.assign(num_slices * 2 * r_, 0.0);
  for (std::size_t i = 0; i < r_; ++i) {
    const std::int64_t q = wq.quantize(weights.at(i, j));
    const std::size_t polarity = q < 0 ? 1 : 0;
    const std::uint64_t mag = static_cast<std::uint64_t>(q < 0 ? -q : q);
    const auto slices = device::bit_slice(mag, bpc, num_slices);
    for (std::size_t s = 0; s < num_slices; ++s) {
      for (std::size_t p = 0; p < 2; ++p) {
        // Both polarities' cells exist physically; only the used one holds a
        // non-zero target, but variation / faults can disturb either.
        const double target = (p == polarity) ? static_cast<double>(slices[s]) : 0.0;
        const device::FaultType fault =
            fault_map_.enabled()
                ? fault_map_.stuck_fault(s, p, i, phys_col)
                : device::FaultType::kNone;
        bool defective = false;
        const double level = program_cell(fault, target, slice_max, opts, defective);
        const std::size_t cell = (s * 2 + p) * r_ + i;
        cp.levels[cell] = level;
        if (defective) cp.defects.push_back(cell);
      }
    }
  }
  return cp;
}

double Crossbar::program_cell(device::FaultType fault, double target,
                              double slice_max, const ProgramOptions& opts,
                              bool& defective) {
  // Closed-loop program-and-verify: each pulse aims at a compensated target
  // (aim += target - readback), keeping whichever readback came closest.
  // Without write_verify this is exactly one open-loop pulse — the
  // historical behavior.
  double aim = target;
  double best = target;
  double best_err = std::numeric_limits<double>::infinity();
  const std::size_t attempts =
      opts.write_verify ? opts.max_program_retries + 1 : 1;
  for (std::size_t a = 0; a < attempts; ++a) {
    if (a > 0) ++stats_.verify_retries;
    double level = aim;
    if (opts.variation != nullptr)
      level = opts.variation->perturb(level, slice_max);
    level = device::FaultMap::apply(fault, level, slice_max);
    const double err = std::abs(level - target);
    if (err < best_err) {
      best = level;
      best_err = err;
    }
    if (!opts.write_verify || err <= opts.verify_tolerance) break;
    aim = std::clamp(aim + (target - level), 0.0, slice_max);
  }
  const double defect_threshold =
      opts.defect_threshold > 0.0 ? opts.defect_threshold : slice_max * 0.25;
  defective = opts.write_verify && best_err > defect_threshold;
  return best;
}

void Crossbar::store_column(const ColumnProgram& cp, std::size_t j) {
  const std::size_t num_slices = levels_.size();
  for (std::size_t s = 0; s < num_slices; ++s)
    for (std::size_t p = 0; p < 2; ++p)
      for (std::size_t i = 0; i < r_; ++i)
        levels_[s][p][i * c_ + j] = cp.levels[(s * 2 + p) * r_ + i];
}

std::size_t Crossbar::inject_at(std::uint64_t step) {
  if (!fault_map_.enabled() || r_ == 0) return 0;
  const auto flips = fault_map_.transients_at(step);
  if (flips.empty()) return 0;
  const std::size_t bpc = config_.cell.bits_per_cell;
  const long long max_level = (1ll << bpc) - 1;
  std::size_t applied = 0;
  for (const auto& f : flips) {
    if (f.row >= r_) continue;
    const std::size_t j = phys_owner_[f.col];
    if (j == kNoCol) continue;
    // Stuck cells read their rail regardless; a soft flip cannot move them.
    if (fault_map_.stuck_fault(f.slice, f.polarity, f.row, f.col) !=
        device::FaultType::kNone)
      continue;
    double& level = levels_[f.slice][f.polarity][f.row * c_ + j];
    const long long cur = std::clamp(
        static_cast<long long>(std::llround(level)), 0ll, max_level);
    level = static_cast<double>(cur ^ (1ll << f.bit));
    ++applied;
  }
  if (applied > 0) {
    stats_.faults_injected += applied;
    if (obs::metrics_enabled())
      obs::Registry::instance().counter("xbar.faults_injected").add(applied);
    rebuild_w_eff();
  }
  return applied;
}

std::size_t Crossbar::physical_col(std::size_t j) const {
  RERAMDL_CHECK_LT(j, c_);
  return col_phys_[j];
}

void Crossbar::rebuild_w_eff() {
  // Each element folds its slices in ascending order — the same add
  // sequence compute_reference evaluates inline, so the collapsed path is
  // bit-identical to the slice walk even for drifted / varied levels.
  const std::size_t num_slices = levels_.size();
  const std::size_t bpc = config_.cell.bits_per_cell;
  w_eff_.assign(r_ * c_, 0.0);
  for (std::size_t s = 0; s < num_slices; ++s) {
    const double weight = static_cast<double>(std::uint64_t{1} << (s * bpc));
    const auto& pos = levels_[s][0];
    const auto& neg = levels_[s][1];
    for (std::size_t e = 0; e < r_ * c_; ++e)
      w_eff_[e] += weight * (pos[e] - neg[e]);
  }
}

void Crossbar::apply_drift(double factor) {
  RERAMDL_CHECK_GT(factor, 0.0);
  RERAMDL_CHECK_LE(factor, 1.0);
  for (auto& slice : levels_)
    for (auto& polarity : slice)
      for (auto& level : polarity) level *= factor;
  cumulative_drift_ *= factor;
  rebuild_w_eff();
}

void Crossbar::advance_age(double dt_seconds) {
  RERAMDL_CHECK_GE(dt_seconds, 0.0);
  age_seconds_ += dt_seconds;
}

CrossbarHealth Crossbar::health() const {
  CrossbarHealth h;
  h.stuck_cells = cur_stuck_cells_;
  h.defective_cells = cur_defective_cells_;
  for (std::size_t j = 0; j < c_; ++j)
    if (col_phys_[j] >= config_.data_cols()) ++h.spare_cols_used;
  h.spares_remaining = config_.spare_cols - cur_spares_consumed_;
  h.seconds_since_program = age_seconds_;
  h.cumulative_drift = cumulative_drift_;
  h.program_passes = program_passes_;
  return h;
}

std::vector<float> Crossbar::compute(const std::vector<float>& x, double x_max) {
  RERAMDL_CHECK_EQ(x.size(), r_);
  std::vector<float> y(c_);
  compute(x.data(), x.size(), x_max, y.data());
  return y;
}

void Crossbar::compute(const float* x, std::size_t n, double x_max, float* y) {
  RERAMDL_CHECK_EQ(n, r_);
  RERAMDL_CHECK_GT(w_max_, 0.0);
  RERAMDL_CHECK_GT(x_max, 0.0);

  if (!config_.bit_serial) {
    CrossbarStats delta;
    compute_batch_block(x, 1, n, x_max, y, c_, delta);
    stats_ += delta;
    return;
  }

  const device::LinearQuantizer xq(config_.input_bits, x_max);
  scratch::Buffer<std::int64_t> x_int(r_);
  for (std::size_t i = 0; i < r_; ++i) {
    x_int[i] = xq.quantize(x[i]);
    const std::uint64_t mag = static_cast<std::uint64_t>(std::llabs(x_int[i]));
    stats_.input_spikes += static_cast<std::uint64_t>(std::popcount(mag));
  }

  scratch::Buffer<double> acc(c_);
  std::fill(acc.begin(), acc.end(), 0.0);
  compute_bit_serial(x_int.data(), acc.data());

  // Scale integer result back to value domain:
  // y = sum_i w_int[i] * x_int[i] * w_step * x_step.
  const device::LinearQuantizer wq(config_.weight_bits, w_max_);
  const double scale = wq.step() * xq.step();
  for (std::size_t j = 0; j < c_; ++j)
    y[j] = static_cast<float>(acc[j] * scale);
  ++stats_.compute_ops;
}

Tensor Crossbar::compute_batch(const Tensor& rows, double x_max,
                               double zero_fraction) {
  RERAMDL_CHECK_EQ(rows.shape().rank(), 2u);
  RERAMDL_CHECK_EQ(rows.shape()[1], r_);
  const std::size_t m = rows.shape()[0];
  Tensor out(Shape{m, c_});
  if (config_.bit_serial) {
    for (std::size_t b = 0; b < m; ++b)
      compute(rows.data() + b * r_, r_, x_max, out.data() + b * c_);
    return out;
  }

  // Variant selection: scan only when the caller didn't and the policy is
  // live (threshold 0 keeps legacy behavior with zero scan overhead). The
  // float-level zero fraction under-counts quantized zeros slightly, which
  // only errs toward the dense oracle.
  double zf = zero_fraction;
  if (zf < 0.0 && m > 0 && sparsity::threshold() > 0.0)
    zf = sparsity::scan_rows(rows.data(), m, r_).zero_fraction();
  bool sparse = false;
  if (zf >= 0.0) {
    sparse = sparsity::select_sparse(zf);
    sparsity::record_selection(zf, sparse);
  }

  CrossbarStats delta;
  std::uint64_t skipped = 0;
  for (std::size_t b0 = 0; b0 < m; b0 += kBatchBlock) {
    const std::size_t bm = std::min(kBatchBlock, m - b0);
    if (sparse)
      compute_batch_block_sparse(rows.data() + b0 * r_, bm, r_, x_max,
                                 out.data() + b0 * c_, c_, delta, skipped);
    else
      compute_batch_block(rows.data() + b0 * r_, bm, r_, x_max,
                          out.data() + b0 * c_, c_, delta);
  }
  if (sparse) sparsity::count_rows_skipped(skipped);
  stats_ += delta;
  return out;
}

void Crossbar::compute_batch_block(const float* rows, std::size_t m,
                                   std::size_t row_stride, double x_max,
                                   float* out, std::size_t out_stride,
                                   CrossbarStats& delta) const {
  scratch::Buffer<double> xt(r_ * m);
  delta.input_spikes += quantize_batch(rows, m, row_stride, x_max, xt.data());
  compute_batch_prequant(xt.data(), m, x_max, out, out_stride, delta);
}

std::uint64_t Crossbar::quantize_batch(const float* rows, std::size_t m,
                                       std::size_t row_stride, double x_max,
                                       double* xt) const {
  RERAMDL_CHECK_GT(x_max, 0.0);
  const device::LinearQuantizer xq(config_.input_bits, x_max);
  // Transposed to [i][b] so the kernel's inner row loop reads contiguously.
  std::uint64_t spikes = 0;
  for (std::size_t b = 0; b < m; ++b) {
    const float* xrow = rows + b * row_stride;
    for (std::size_t i = 0; i < r_; ++i) {
      const std::int64_t q = xq.quantize(xrow[i]);
      const std::uint64_t mag = static_cast<std::uint64_t>(std::llabs(q));
      spikes += static_cast<std::uint64_t>(std::popcount(mag));
      xt[i * m + b] = static_cast<double>(q);
    }
  }
  return spikes;
}

void Crossbar::compute_batch_prequant(const double* xt, std::size_t m,
                                      double x_max, float* out,
                                      std::size_t out_stride,
                                      CrossbarStats& delta) const {
  RERAMDL_CHECK(!config_.bit_serial);
  RERAMDL_CHECK_GT(w_max_, 0.0);
  RERAMDL_CHECK_GT(x_max, 0.0);

  const device::LinearQuantizer xq(config_.input_bits, x_max);
  const device::LinearQuantizer wq(config_.weight_bits, w_max_);
  const double scale = wq.step() * xq.step();
  batch_kernel_dense(w_eff_.data(), r_, c_, xt, m, scale, out, out_stride);
  delta.compute_ops += m;
}

std::uint64_t Crossbar::quantize_batch_sparse(const float* rows, std::size_t m,
                                              std::size_t row_stride,
                                              double x_max, double* xv,
                                              std::int32_t* xi,
                                              std::int32_t* row_start) const {
  RERAMDL_CHECK_GT(x_max, 0.0);
  const device::LinearQuantizer xq(config_.input_bits, x_max);
  // Ascending-i CSR compaction per batch row. The spike total matches
  // quantize_batch exactly: a zero quantized magnitude has popcount 0.
  std::uint64_t spikes = 0;
  std::int32_t nnz = 0;
  for (std::size_t b = 0; b < m; ++b) {
    row_start[b] = nnz;
    const float* xrow = rows + b * row_stride;
    for (std::size_t i = 0; i < r_; ++i) {
      const std::int64_t q = xq.quantize(xrow[i]);
      if (q == 0) continue;
      const std::uint64_t mag = static_cast<std::uint64_t>(std::llabs(q));
      spikes += static_cast<std::uint64_t>(std::popcount(mag));
      xv[nnz] = static_cast<double>(q);
      xi[nnz] = static_cast<std::int32_t>(i);
      ++nnz;
    }
  }
  row_start[m] = nnz;
  return spikes;
}

void Crossbar::compute_batch_prequant_sparse(
    const double* xv, const std::int32_t* xi, const std::int32_t* row_start,
    std::size_t m, double x_max, float* out, std::size_t out_stride,
    CrossbarStats& delta) const {
  RERAMDL_CHECK(!config_.bit_serial);
  RERAMDL_CHECK_GT(w_max_, 0.0);
  RERAMDL_CHECK_GT(x_max, 0.0);
  const device::LinearQuantizer xq(config_.input_bits, x_max);
  const device::LinearQuantizer wq(config_.weight_bits, w_max_);
  const double scale = wq.step() * xq.step();
  batch_kernel_sparse(w_eff_.data(), c_, xv, xi, row_start, m, scale, out,
                      out_stride);
  delta.compute_ops += m;
}

void Crossbar::compute_batch_block_sparse(const float* rows, std::size_t m,
                                          std::size_t row_stride, double x_max,
                                          float* out, std::size_t out_stride,
                                          CrossbarStats& delta,
                                          std::uint64_t& zeros_skipped) const {
  scratch::Buffer<double> xv(r_ * m);
  scratch::Buffer<std::int32_t> xi(r_ * m);
  scratch::Buffer<std::int32_t> row_start(m + 1);
  delta.input_spikes += quantize_batch_sparse(
      rows, m, row_stride, x_max, xv.data(), xi.data(), row_start.data());
  zeros_skipped += static_cast<std::uint64_t>(r_ * m) -
                   static_cast<std::uint64_t>(row_start[m]);
  compute_batch_prequant_sparse(xv.data(), xi.data(), row_start.data(), m,
                                x_max, out, out_stride, delta);
}

std::vector<float> Crossbar::compute_reference(const std::vector<float>& x,
                                               double x_max) const {
  RERAMDL_CHECK_EQ(x.size(), r_);
  RERAMDL_CHECK_GT(w_max_, 0.0);
  RERAMDL_CHECK_GT(x_max, 0.0);

  const device::LinearQuantizer xq(config_.input_bits, x_max);
  const device::LinearQuantizer wq(config_.weight_bits, w_max_);
  const double scale = wq.step() * xq.step();
  const std::size_t num_slices = levels_.size();
  const std::size_t bpc = config_.cell.bits_per_cell;

  std::vector<double> acc(c_, 0.0);
  for (std::size_t i = 0; i < r_; ++i) {
    const double xi = static_cast<double>(xq.quantize(x[i]));
    if (xi == 0.0) continue;
    const std::size_t base = i * c_;
    for (std::size_t j = 0; j < c_; ++j) {
      double w = 0.0;  // inline slice-ascending collapse == W_eff[i,j]
      for (std::size_t s = 0; s < num_slices; ++s) {
        const double weight =
            static_cast<double>(std::uint64_t{1} << (s * bpc));
        w += weight * (levels_[s][0][base + j] - levels_[s][1][base + j]);
      }
      acc[j] += xi * w;
    }
  }

  std::vector<float> y(c_);
  for (std::size_t j = 0; j < c_; ++j)
    y[j] = static_cast<float>(acc[j] * scale);
  return y;
}

void Crossbar::compute_bit_serial(const std::int64_t* x_int, double* acc) {
  // Emulates the spike driver + I&F + counter + shift-add path cycle by
  // cycle: one wordline spike phase per (input bit, sign phase); per column
  // the integrated current is counted with saturation at 2^counter_bits - 1.
  const std::size_t num_slices = levels_.size();
  const std::size_t bpc = config_.cell.bits_per_cell;
  const double counter_max =
      static_cast<double>((std::uint64_t{1} << config_.counter_bits) - 1);

  // Per-cycle bitline integrals, checked out once per MVM instead of
  // 2 * input_bits * slices heap allocations inside the cycle loop.
  scratch::Buffer<double> cols(2 * c_);
  double* col_pos = cols.data();
  double* col_neg = cols.data() + c_;

  for (int phase = 0; phase < 2; ++phase) {  // 0: positive inputs, 1: negative
    for (std::size_t b = 0; b < config_.input_bits; ++b) {
      const double bit_weight = static_cast<double>(std::uint64_t{1} << b);
      for (std::size_t s = 0; s < num_slices; ++s) {
        const double slice_weight =
            static_cast<double>(std::uint64_t{1} << (s * bpc));
        const auto& pos = levels_[s][0];
        const auto& neg = levels_[s][1];
        // Integrate bitline currents for this spike cycle.
        std::fill(col_pos, col_pos + c_, 0.0);
        std::fill(col_neg, col_neg + c_, 0.0);
        for (std::size_t i = 0; i < r_; ++i) {
          const std::int64_t xi = x_int[i];
          const bool this_phase = (phase == 0) ? (xi > 0) : (xi < 0);
          if (!this_phase) continue;
          const std::uint64_t mag = static_cast<std::uint64_t>(std::llabs(xi));
          if (((mag >> b) & 1u) == 0) continue;
          const std::size_t base = i * c_;
          for (std::size_t j = 0; j < c_; ++j) {
            col_pos[j] += pos[base + j];
            col_neg[j] += neg[base + j];
          }
        }
        // I&F counters clamp each column's count for this cycle.
        const double sign = (phase == 0) ? 1.0 : -1.0;
        for (std::size_t j = 0; j < c_; ++j) {
          double cp = col_pos[j], cn = col_neg[j];
          if (cp > counter_max) {
            cp = counter_max;
            ++stats_.saturated_counters;
          }
          if (cn > counter_max) {
            cn = counter_max;
            ++stats_.saturated_counters;
          }
          acc[j] += sign * bit_weight * slice_weight * (cp - cn);
        }
      }
    }
  }
}

}  // namespace reramdl::circuit
