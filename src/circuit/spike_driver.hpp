// Spike driver (PipeLayer component (a)): converts a digital input value to
// the weighted spike train driven onto a wordline, and serves as the write
// driver during weight updates. The weighted spike coding scheme sends one
// spike phase per input bit with significance 2^b, so an n-bit input needs n
// phases instead of 2^n unary spikes.
#pragma once

#include <cstdint>
#include <vector>

#include "device/quantizer.hpp"

namespace reramdl::circuit {

struct SpikeTrain {
  bool negative = false;                // drive phase polarity
  std::vector<std::uint8_t> bits;       // bits[b] = spike present in phase b
  std::size_t spike_count() const;
};

class SpikeDriver {
 public:
  SpikeDriver(std::size_t input_bits, double x_max);

  // Encode a value into its weighted spike train.
  SpikeTrain encode(double value) const;
  // Reconstruct the value represented by a spike train (driver DAC inverse;
  // used in tests to show encode is lossless up to quantization).
  double decode(const SpikeTrain& train) const;

  std::size_t input_bits() const { return input_bits_; }
  const device::LinearQuantizer& quantizer() const { return quantizer_; }

 private:
  std::size_t input_bits_;
  device::LinearQuantizer quantizer_;
};

}  // namespace reramdl::circuit
