// Spike driver (PipeLayer component (a)): converts a digital input value to
// the weighted spike train driven onto a wordline, and serves as the write
// driver during weight updates. The weighted spike coding scheme sends one
// spike phase per input bit with significance 2^b, so an n-bit input needs n
// phases instead of 2^n unary spikes.
#pragma once

#include <cstdint>
#include <vector>

#include "device/quantizer.hpp"

namespace reramdl::circuit {

struct SpikeTrain {
  bool negative = false;                // drive phase polarity
  std::vector<std::uint8_t> bits;       // bits[b] = spike present in phase b
  std::size_t spike_count() const;
};

class SpikeDriver {
 public:
  SpikeDriver(std::size_t input_bits, double x_max);

  // Encode a value into its weighted spike train.
  SpikeTrain encode(double value) const;
  // Reconstruct the value represented by a spike train (driver DAC inverse;
  // used in tests to show encode is lossless up to quantization).
  double decode(const SpikeTrain& train) const;

  // Modeled dynamic drive energy for one train: each '1' phase costs one
  // spike's wordline charge; phases without a spike drive nothing. A zero
  // input therefore costs exactly zero — the property the zero-skipping
  // execution path exploits (DESIGN.md §12). Default per-spike cost is a
  // 1-bit DAC drive in the ISAAC/PipeLayer energy regime; the arch layer
  // books array activation and static power separately.
  static constexpr double kDefaultSpikePj = 0.0039;
  double drive_energy_pj(const SpikeTrain& train,
                         double pj_per_spike = kDefaultSpikePj) const;

  std::size_t input_bits() const { return input_bits_; }
  const device::LinearQuantizer& quantizer() const { return quantizer_; }

 private:
  std::size_t input_bits_;
  device::LinearQuantizer quantizer_;
};

}  // namespace reramdl::circuit
