// Configurable look-up-table activation (ReGAN Fig. 10-B): the subtractor's
// merged pos/neg result indexes a 2^bits-entry table sampling the activation
// function over a fixed input range. PipeLayer's dedicated activation unit is
// the same component with the function fixed to ReLU.
#pragma once

#include <functional>
#include <vector>

namespace reramdl::circuit {

class ActivationLut {
 public:
  // Samples f over [lo, hi] into 2^index_bits entries.
  ActivationLut(std::function<double(double)> f, double lo, double hi,
                std::size_t index_bits);

  // Nearest-entry lookup; inputs outside [lo, hi] clamp to the edge entries
  // (the hardware table has no entries beyond its range).
  double apply(double x) const;

  std::size_t entries() const { return table_.size(); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }

  // Worst-case |f(x) - apply(x)| over a dense sample of [lo, hi]; used by
  // the accuracy ablation to pick the table size.
  double max_error(const std::function<double(double)>& f,
                   std::size_t samples = 10000) const;

 private:
  double lo_, hi_;
  std::vector<double> table_;
};

}  // namespace reramdl::circuit
