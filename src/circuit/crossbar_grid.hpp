// Multi-array composition for matrices that exceed one crossbar
// (paper Fig. 3c): the weight matrix is partitioned into array-sized tiles;
// inputs are partitioned across row groups; each array emits a partial sum
// that is "collected horizontally and summed vertically".
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "circuit/crossbar.hpp"

namespace reramdl::circuit {

class CrossbarGrid {
 public:
  explicit CrossbarGrid(const CrossbarConfig& config);

  // Program a full [R, C] matrix across ceil(R/rows) x ceil(C/data_cols())
  // arrays (spare bitlines are reserved per array, not tiled over).
  // Equivalent to program(weights, w_max, ProgramOptions{variation}).
  void program(const Tensor& weights, double w_max,
               device::VariationModel* variation = nullptr);

  // Full programming path: each tile programs with `opts`, its fault seed
  // derived as FaultMap::mix_seed(seed, tile + 1) so tiles carry
  // independent-but-reproducible fault populations from one campaign seed.
  // A VariationModel carrying legacy stuck-at rates is expanded here the
  // same way, so the deprecated shim also gets distinct per-tile patterns.
  void program(const Tensor& weights, double w_max,
               const ProgramOptions& opts);

  // Fan injection event `step` out to every array (deterministic in each
  // tile's fault seed and `step`); returns total bit-flips applied.
  std::size_t inject_at(std::uint64_t step);

  // y[C] = W^T-free MVM: x has R entries. Tile MVMs dispatch to the shared
  // thread pool (common/parallel.hpp); partial sums are combined serially in
  // row-tile order, so results are bit-identical for any RERAMDL_THREADS.
  std::vector<float> compute(const std::vector<float>& x, double x_max);

  // Batched MVM fast path: rows is [m, R], returns [m, C]. All rows are
  // quantized once per tile and evaluated by the collapsed-W_eff blocked
  // kernel, parallelized over (tile x batch row-block) work items instead
  // of tiles alone; per-block stats deltas merge serially and the vertical
  // add runs in fixed row-tile order, so outputs AND aggregate stats are
  // identical to m compute() calls, for any RERAMDL_THREADS. Falls back to
  // per-vector compute() when config().bit_serial.
  //
  // Runtime variant selection (DESIGN.md §12): batches sparse enough per
  // the tensor/sparsity.hpp policy run zero-skipping phases instead — each
  // row strip quantize-compacts to CSR once and every tile of the strip
  // walks only the nonzero wordlines. Bit-identical to the dense phases by
  // construction (identical per-element accumulation order minus exact-zero
  // terms), with identical stats. `zero_fraction` carries a fraction already
  // measured by the caller (the CrossbarExecutor hook fuses the scan with
  // its x_max pass); negative means "unknown" — the batch is scanned here
  // iff the policy threshold is nonzero.
  Tensor compute_batch(const Tensor& rows, double x_max,
                       double zero_fraction = -1.0);

  // Age every array (retention drift).
  void apply_drift(double factor);

  std::size_t row_tiles() const { return row_tiles_; }
  std::size_t col_tiles() const { return col_tiles_; }
  std::size_t num_arrays() const { return arrays_.size(); }
  std::size_t total_rows() const { return total_rows_; }
  std::size_t total_cols() const { return total_cols_; }

  CrossbarStats aggregate_stats() const;

  // Attribution label: the obs::Attribution path under which this grid's
  // per-tile work is booked (each tile appends "/tile<t>"). Empty (default)
  // disables per-tile attribution; the CrossbarExecutor labels its grids
  // "host/layer<l>", and callers that simulated a chip placement can pass
  // placement-aligned paths ("chip/bank<b>/layer<l>") so the host-side tile
  // work lands inside the chip-sim tree.
  void set_obs_label(std::string label) { obs_label_ = std::move(label); }
  const std::string& obs_label() const { return obs_label_; }

  // Tile introspection (row-major [row_tile][col_tile]).
  const Crossbar& array(std::size_t t) const { return arrays_[t]; }

 private:
  // Books programming-time per-tile stats (verify retries, remaps) under
  // the attribution label; called at the end of program().
  void attribute_program_stats() const;

  CrossbarConfig config_;
  std::size_t total_rows_ = 0, total_cols_ = 0;
  std::size_t row_tiles_ = 0, col_tiles_ = 0;
  std::vector<Crossbar> arrays_;  // row-major [row_tile][col_tile]
  std::string obs_label_;
};

}  // namespace reramdl::circuit
