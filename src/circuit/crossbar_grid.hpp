// Multi-array composition for matrices that exceed one crossbar
// (paper Fig. 3c): the weight matrix is partitioned into array-sized tiles;
// inputs are partitioned across row groups; each array emits a partial sum
// that is "collected horizontally and summed vertically".
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "circuit/crossbar.hpp"

namespace reramdl::circuit {

class CrossbarGrid {
 public:
  explicit CrossbarGrid(const CrossbarConfig& config);

  // Program a full [R, C] matrix across ceil(R/rows) x ceil(C/data_cols())
  // arrays (spare bitlines are reserved per array, not tiled over).
  // Equivalent to program(weights, w_max, ProgramOptions{variation}).
  void program(const Tensor& weights, double w_max,
               device::VariationModel* variation = nullptr);

  // Full programming path: each tile programs with `opts`, its fault seed
  // derived as FaultMap::mix_seed(seed, tile + 1) so tiles carry
  // independent-but-reproducible fault populations from one campaign seed.
  // A VariationModel carrying legacy stuck-at rates is expanded here the
  // same way, so the deprecated shim also gets distinct per-tile patterns.
  void program(const Tensor& weights, double w_max,
               const ProgramOptions& opts);

  // Fan injection event `step` out to every array (deterministic in each
  // tile's fault seed and `step`); returns total bit-flips applied.
  std::size_t inject_at(std::uint64_t step);

  // y[C] = W^T-free MVM: x has R entries. Tile MVMs dispatch to the shared
  // thread pool (common/parallel.hpp); partial sums are combined serially in
  // row-tile order, so results are bit-identical for any RERAMDL_THREADS.
  std::vector<float> compute(const std::vector<float>& x, double x_max);

  // Batched MVM fast path: rows is [m, R], returns [m, C]. All rows are
  // quantized once per tile and evaluated by the collapsed-W_eff blocked
  // kernel, parallelized over (tile x batch row-block) work items instead
  // of tiles alone; per-block stats deltas merge serially and the vertical
  // add runs in fixed row-tile order, so outputs AND aggregate stats are
  // identical to m compute() calls, for any RERAMDL_THREADS. Falls back to
  // per-vector compute() when config().bit_serial.
  //
  // Runtime variant selection (DESIGN.md §12): batches sparse enough per
  // the tensor/sparsity.hpp policy run zero-skipping phases instead — each
  // row strip quantize-compacts to CSR once and every tile of the strip
  // walks only the nonzero wordlines. Bit-identical to the dense phases by
  // construction (identical per-element accumulation order minus exact-zero
  // terms), with identical stats. `zero_fraction` carries a fraction already
  // measured by the caller (the CrossbarExecutor hook fuses the scan with
  // its x_max pass); negative means "unknown" — the batch is scanned here
  // iff the policy threshold is nonzero.
  Tensor compute_batch(const Tensor& rows, double x_max,
                       double zero_fraction = -1.0);

  // Age every array (retention drift).
  void apply_drift(double factor);

  // --- Online-maintenance hooks (maint/engine.hpp) ---------------------
  //
  // Wear-leveling map: logical tile t programs onto "physical" array slot
  // map[t] for fault-seed purposes — tile t's stuck-cell population is
  // drawn with salt map[t] + 1, so after a rotation a logical tile really
  // inherits the fault pattern of the array now backing it. The default
  // (empty) map is the identity, which reproduces the historical
  // mix_seed(seed, t + 1) derivation bit-for-bit. Takes effect at the next
  // program() / refresh_tile().
  void set_tile_phys_map(std::vector<std::size_t> map);
  const std::vector<std::size_t>& tile_phys_map() const { return phys_map_; }

  // Reprogram one tile in place from the full weight matrix (same shape as
  // the last program() call), through the same per-tile fault seed and the
  // given options — the drift-refresh / scrub-repair primitive. With
  // deterministic options this restores the tile's levels bit-identically
  // to its initial programming and resets its drift clock. Returns the
  // number of cell program pulses issued (the maintenance cost input).
  std::uint64_t refresh_tile(std::size_t t, const Tensor& weights,
                             const ProgramOptions& opts);

  // Per-tile retention drift (the engine applies incremental factors on
  // each tile's own clock once refreshes desynchronize them).
  void apply_drift_tile(std::size_t t, double factor);

  // Advance every tile's drift clock by `dt` simulated seconds.
  void advance_age(double dt_seconds);

  // Aggregate condition report: sums of the per-tile counts, the *oldest*
  // tile's age and the *most drifted* tile's cumulative factor (see
  // CrossbarHealth::operator+=).
  CrossbarHealth health() const;

  std::size_t row_tiles() const { return row_tiles_; }
  std::size_t col_tiles() const { return col_tiles_; }
  std::size_t num_arrays() const { return arrays_.size(); }
  std::size_t total_rows() const { return total_rows_; }
  std::size_t total_cols() const { return total_cols_; }

  CrossbarStats aggregate_stats() const;

  // Attribution label: the obs::Attribution path under which this grid's
  // per-tile work is booked (each tile appends "/tile<t>"). Empty (default)
  // disables per-tile attribution; the CrossbarExecutor labels its grids
  // "host/layer<l>", and callers that simulated a chip placement can pass
  // placement-aligned paths ("chip/bank<b>/layer<l>") so the host-side tile
  // work lands inside the chip-sim tree.
  void set_obs_label(std::string label) { obs_label_ = std::move(label); }
  const std::string& obs_label() const { return obs_label_; }

  // Tile introspection (row-major [row_tile][col_tile]).
  const Crossbar& array(std::size_t t) const { return arrays_[t]; }
  Crossbar& array_mut(std::size_t t) { return arrays_[t]; }

 private:
  // Fault-seed salt for logical tile t: its physical slot under the
  // wear-leveling map (identity when unset).
  std::size_t tile_fault_salt(std::size_t t) const;
  ProgramOptions tile_options(const ProgramOptions& opts,
                              const device::FaultMapParams& base,
                              std::size_t t) const;
  Tensor extract_tile(const Tensor& weights, std::size_t t) const;
  // Books programming-time per-tile stats (verify retries, remaps) under
  // the attribution label; called at the end of program().
  void attribute_program_stats() const;

  CrossbarConfig config_;
  std::size_t total_rows_ = 0, total_cols_ = 0;
  std::size_t row_tiles_ = 0, col_tiles_ = 0;
  std::vector<Crossbar> arrays_;  // row-major [row_tile][col_tile]
  std::string obs_label_;
  double w_max_ = 0.0;                  // from the last program() call
  std::vector<std::size_t> phys_map_;   // wear-leveling map; empty = identity
};

}  // namespace reramdl::circuit
