#include "tensor/ops.hpp"

#include "common/check.hpp"

namespace reramdl::ops {

Tensor matmul(const Tensor& a, const Tensor& b) {
  RERAMDL_CHECK_EQ(a.shape().rank(), 2u);
  RERAMDL_CHECK_EQ(b.shape().rank(), 2u);
  const std::size_t m = a.shape()[0], k = a.shape()[1], n = b.shape()[1];
  RERAMDL_CHECK_EQ(b.shape()[0], k);
  Tensor c(Shape{m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = 0; p < k; ++p) {
      const float av = pa[i * k + p];
      if (av == 0.0f) continue;
      const float* brow = pb + p * n;
      float* crow = pc + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor matmul_transposed_b(const Tensor& a, const Tensor& b) {
  RERAMDL_CHECK_EQ(a.shape().rank(), 2u);
  RERAMDL_CHECK_EQ(b.shape().rank(), 2u);
  const std::size_t m = a.shape()[0], k = a.shape()[1], n = b.shape()[0];
  RERAMDL_CHECK_EQ(b.shape()[1], k);
  Tensor c(Shape{m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const float* arow = pa + i * k;
      const float* brow = pb + j * k;
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) acc += static_cast<double>(arow[p]) * brow[p];
      pc[i * n + j] = static_cast<float>(acc);
    }
  }
  return c;
}

Tensor matmul_transposed_a(const Tensor& a, const Tensor& b) {
  RERAMDL_CHECK_EQ(a.shape().rank(), 2u);
  RERAMDL_CHECK_EQ(b.shape().rank(), 2u);
  const std::size_t m = a.shape()[0], k = a.shape()[1], n = b.shape()[1];
  RERAMDL_CHECK_EQ(b.shape()[0], m);
  Tensor c(Shape{k, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    const float* brow = pb + i * n;
    for (std::size_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      float* crow = pc + p * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

void add_row_bias(Tensor& x, const Tensor& bias) {
  RERAMDL_CHECK_EQ(x.shape().rank(), 2u);
  RERAMDL_CHECK_EQ(bias.shape().rank(), 1u);
  const std::size_t m = x.shape()[0], n = x.shape()[1];
  RERAMDL_CHECK_EQ(bias.shape()[0], n);
  float* px = x.data();
  const float* pb = bias.data();
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) px[i * n + j] += pb[j];
}

Tensor column_sums(const Tensor& x) {
  RERAMDL_CHECK_EQ(x.shape().rank(), 2u);
  const std::size_t m = x.shape()[0], n = x.shape()[1];
  Tensor s(Shape{n});
  const float* px = x.data();
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) s[j] += px[i * n + j];
  return s;
}

Tensor transpose(const Tensor& x) {
  RERAMDL_CHECK_EQ(x.shape().rank(), 2u);
  const std::size_t m = x.shape()[0], n = x.shape()[1];
  Tensor t(Shape{n, m});
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) t.data()[j * m + i] = x.data()[i * n + j];
  return t;
}

}  // namespace reramdl::ops
