#include "tensor/ops.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "common/scratch.hpp"
#include "common/simd.hpp"
#include "obs/obs.hpp"

namespace reramdl::ops {

namespace {

// Shared per-variant instrumentation: call counter, flop counter (2*m*k*n
// multiply-adds), and a latency histogram via the returned timer. The
// disabled path is one relaxed load plus the timer's.
void obs_count_matmul(const char* variant, std::size_t m, std::size_t k,
                      std::size_t n) {
  if (!obs::metrics_enabled()) return;
  auto& reg = obs::Registry::instance();
  static obs::Counter& calls = reg.counter("ops.matmul.calls");
  static obs::Counter& flops = reg.counter("ops.matmul.flops");
  calls.add();
  flops.add(static_cast<std::uint64_t>(2) * m * k * n);
  reg.counter(std::string("ops.") + variant + ".calls").add();
}

// Cache-blocking parameters shared by the matmul variants. The M x N output
// is tiled; each (row-block, col-block) tile accumulates over K in panels
// through a local double buffer, so every product sums in double in a fixed
// k-ascending order — bit-identical for any thread count, since the
// row-block decomposition depends only on the shapes.
constexpr std::size_t kBlockM = 32;
constexpr std::size_t kBlockN = 128;
constexpr std::size_t kBlockK = 256;

// Row-block bodies of the blocked kernels, extracted into free functions so
// RERAMDL_TARGET_CLONES can vectorize them with runtime CPU dispatch. The
// loop structure (and so the FP sequence of every output element) is
// identical across clones; only the lane width differs.
RERAMDL_TARGET_CLONES
void matmul_row_block(const float* pa, const float* pb, float* pc,
                      std::size_t i0, std::size_t i1, std::size_t k,
                      std::size_t n, double* acc) {
  for (std::size_t j0 = 0; j0 < n; j0 += kBlockN) {
    const std::size_t j1 = std::min(j0 + kBlockN, n);
    const std::size_t bn = j1 - j0;
    std::fill(acc, acc + (i1 - i0) * bn, 0.0);
    for (std::size_t p0 = 0; p0 < k; p0 += kBlockK) {
      const std::size_t p1 = std::min(p0 + kBlockK, k);
      for (std::size_t i = i0; i < i1; ++i) {
        double* arow = acc + (i - i0) * bn;
        for (std::size_t p = p0; p < p1; ++p) {
          const double av = pa[i * k + p];
          if (av == 0.0) continue;
          const float* brow = pb + p * n + j0;
          for (std::size_t j = 0; j < bn; ++j) arow[j] += av * brow[j];
        }
      }
    }
    for (std::size_t i = i0; i < i1; ++i) {
      const double* arow = acc + (i - i0) * bn;
      float* crow = pc + i * n + j0;
      for (std::size_t j = 0; j < bn; ++j) crow[j] = static_cast<float>(arow[j]);
    }
  }
}

void matmul_kernel(const float* pa, const float* pb, float* pc, std::size_t m,
                   std::size_t k, std::size_t n) {
  parallel::parallel_for(0, m, kBlockM, [&](std::size_t i0, std::size_t i1) {
    // Thread-local scratch: the accumulator panel is reused across calls on
    // each worker instead of heap-allocated per row block.
    scratch::Buffer<double> acc(kBlockM * kBlockN);
    matmul_row_block(pa, pb, pc, i0, i1, k, n, acc.data());
  });
}

RERAMDL_TARGET_CLONES
void mm_tb_packed_row_block(const float* pa, const float* pbt, float* pc,
                            std::size_t i0, std::size_t i1, std::size_t k,
                            std::size_t n, double* acc) {
  for (std::size_t j0 = 0; j0 < n; j0 += kBlockN) {
    const std::size_t j1 = std::min(j0 + kBlockN, n);
    const std::size_t bn = j1 - j0;
    std::fill(acc, acc + (i1 - i0) * bn, 0.0);
    for (std::size_t p0 = 0; p0 < k; p0 += kBlockK) {
      const std::size_t p1 = std::min(p0 + kBlockK, k);
      for (std::size_t i = i0; i < i1; ++i) {
        double* arow = acc + (i - i0) * bn;
        for (std::size_t p = p0; p < p1; ++p) {
          const double av = pa[i * k + p];
          const float* btrow = pbt + p * n + j0;
          for (std::size_t j = 0; j < bn; ++j) arow[j] += av * btrow[j];
        }
      }
    }
    for (std::size_t i = i0; i < i1; ++i) {
      const double* arow = acc + (i - i0) * bn;
      float* crow = pc + i * n + j0;
      for (std::size_t j = 0; j < bn; ++j) crow[j] = static_cast<float>(arow[j]);
    }
  }
}

RERAMDL_TARGET_CLONES
void mm_ta_col_block(const float* pa, const float* pb, float* pc,
                     std::size_t p0, std::size_t p1, std::size_t m,
                     std::size_t k, std::size_t n, bool accumulate,
                     double* acc) {
  for (std::size_t j0 = 0; j0 < n; j0 += kBlockN) {
    const std::size_t j1 = std::min(j0 + kBlockN, n);
    const std::size_t bn = j1 - j0;
    std::fill(acc, acc + (p1 - p0) * bn, 0.0);
    for (std::size_t i = 0; i < m; ++i) {
      const float* arow = pa + i * k;
      const float* brow = pb + i * n + j0;
      for (std::size_t p = p0; p < p1; ++p) {
        const double av = arow[p];
        if (av == 0.0) continue;
        double* crow = acc + (p - p0) * bn;
        for (std::size_t j = 0; j < bn; ++j) crow[j] += av * brow[j];
      }
    }
    for (std::size_t p = p0; p < p1; ++p) {
      const double* arow = acc + (p - p0) * bn;
      float* crow = pc + p * n + j0;
      if (accumulate)
        for (std::size_t j = 0; j < bn; ++j)
          crow[j] += static_cast<float>(arow[j]);
      else
        for (std::size_t j = 0; j < bn; ++j)
          crow[j] = static_cast<float>(arow[j]);
    }
  }
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  Tensor c;
  matmul_into(a, b, c);
  return c;
}

void matmul_into(const Tensor& a, const Tensor& b, Tensor& c) {
  RERAMDL_CHECK_EQ(a.shape().rank(), 2u);
  RERAMDL_CHECK_EQ(b.shape().rank(), 2u);
  const std::size_t m = a.shape()[0], k = a.shape()[1], n = b.shape()[1];
  RERAMDL_CHECK_EQ(b.shape()[0], k);
  RERAMDL_TRACE_SCOPE("ops.matmul", "tensor");
  obs::ScopedHistogramTimer obs_timer("ops.matmul_ns");
  obs_count_matmul("matmul", m, k, n);
  c.reuse(Shape{m, n});
  matmul_kernel(a.data(), b.data(), c.data(), m, k, n);
}

Tensor matmul_transposed_b(const Tensor& a, const Tensor& b) {
  RERAMDL_CHECK_EQ(a.shape().rank(), 2u);
  RERAMDL_CHECK_EQ(b.shape().rank(), 2u);
  const std::size_t m = a.shape()[0], k = a.shape()[1], n = b.shape()[0];
  RERAMDL_CHECK_EQ(b.shape()[1], k);
  RERAMDL_TRACE_SCOPE("ops.matmul_transposed_b", "tensor");
  obs::ScopedHistogramTimer obs_timer("ops.matmul_ns");
  obs_count_matmul("matmul_transposed_b", m, k, n);
  Tensor c(Shape{m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // Both operands are traversed along contiguous k-rows; blocking over j
  // keeps a panel of B rows hot while a row block of A streams through.
  parallel::parallel_for(0, m, kBlockM, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t j0 = 0; j0 < n; j0 += kBlockN) {
      const std::size_t j1 = std::min(j0 + kBlockN, n);
      for (std::size_t i = i0; i < i1; ++i) {
        const float* arow = pa + i * k;
        for (std::size_t j = j0; j < j1; ++j) {
          const float* brow = pb + j * k;
          double dot = 0.0;
          for (std::size_t p = 0; p < k; ++p)
            dot += static_cast<double>(arow[p]) * brow[p];
          pc[i * n + j] = static_cast<float>(dot);
        }
      }
    }
  });
  return c;
}

void matmul_transposed_b_packed_into(const Tensor& a, const Tensor& bt,
                                     Tensor& c) {
  RERAMDL_CHECK_EQ(a.shape().rank(), 2u);
  RERAMDL_CHECK_EQ(bt.shape().rank(), 2u);
  const std::size_t m = a.shape()[0], k = a.shape()[1], n = bt.shape()[1];
  RERAMDL_CHECK_EQ(bt.shape()[0], k);
  RERAMDL_TRACE_SCOPE("ops.matmul_transposed_b_packed", "tensor");
  obs::ScopedHistogramTimer obs_timer("ops.matmul_ns");
  obs_count_matmul("matmul_transposed_b_packed", m, k, n);
  c.reuse(Shape{m, n});
  const float* pa = a.data();
  const float* pbt = bt.data();
  float* pc = c.data();
  // Same shape as matmul_kernel, but NO zero-skip on a-elements: the dot
  // form this replaces sums every k-term, and skipping av == 0.0 could flip
  // a -0.0 accumulator to +0.0. The k-ascending double accumulation per
  // output element reproduces the dot form's FP sequence exactly.
  parallel::parallel_for(0, m, kBlockM, [&](std::size_t i0, std::size_t i1) {
    scratch::Buffer<double> acc(kBlockM * kBlockN);
    mm_tb_packed_row_block(pa, pbt, pc, i0, i1, k, n, acc.data());
  });
}

Tensor matmul_transposed_b_packed(const Tensor& a, const Tensor& bt) {
  Tensor c;
  matmul_transposed_b_packed_into(a, bt, c);
  return c;
}

namespace {

// Shared core of matmul_transposed_a and its accumulate form; the only
// difference is the final panel store (= vs +=), which matches composing
// the allocating variant with Tensor::operator+= bit-for-bit.
void mm_ta_impl(const Tensor& a, const Tensor& b, float* pc, bool accumulate) {
  const std::size_t m = a.shape()[0], k = a.shape()[1], n = b.shape()[1];
  const float* pa = a.data();
  const float* pb = b.data();
  // C rows are indexed by A's k dimension, so parallelizing over k-row
  // blocks keeps output writes disjoint; the i (reduction) loop stays
  // ascending inside each block for a fixed double-accumulation order.
  parallel::parallel_for(0, k, kBlockM, [&](std::size_t p0, std::size_t p1) {
    scratch::Buffer<double> acc(kBlockM * kBlockN);
    mm_ta_col_block(pa, pb, pc, p0, p1, m, k, n, accumulate, acc.data());
  });
}

}  // namespace

Tensor matmul_transposed_a(const Tensor& a, const Tensor& b) {
  RERAMDL_CHECK_EQ(a.shape().rank(), 2u);
  RERAMDL_CHECK_EQ(b.shape().rank(), 2u);
  const std::size_t m = a.shape()[0], k = a.shape()[1], n = b.shape()[1];
  RERAMDL_CHECK_EQ(b.shape()[0], m);
  RERAMDL_TRACE_SCOPE("ops.matmul_transposed_a", "tensor");
  obs::ScopedHistogramTimer obs_timer("ops.matmul_ns");
  obs_count_matmul("matmul_transposed_a", m, k, n);
  Tensor c(Shape{k, n});
  mm_ta_impl(a, b, c.data(), /*accumulate=*/false);
  return c;
}

void matmul_transposed_a_acc(const Tensor& a, const Tensor& b, Tensor& c) {
  RERAMDL_CHECK_EQ(a.shape().rank(), 2u);
  RERAMDL_CHECK_EQ(b.shape().rank(), 2u);
  const std::size_t m = a.shape()[0], k = a.shape()[1], n = b.shape()[1];
  RERAMDL_CHECK_EQ(b.shape()[0], m);
  RERAMDL_CHECK_EQ(c.shape().rank(), 2u);
  RERAMDL_CHECK_EQ(c.shape()[0], k);
  RERAMDL_CHECK_EQ(c.shape()[1], n);
  RERAMDL_TRACE_SCOPE("ops.matmul_transposed_a", "tensor");
  obs::ScopedHistogramTimer obs_timer("ops.matmul_ns");
  obs_count_matmul("matmul_transposed_a", m, k, n);
  mm_ta_impl(a, b, c.data(), /*accumulate=*/true);
}

void add_row_bias(Tensor& x, const Tensor& bias) {
  RERAMDL_CHECK_EQ(x.shape().rank(), 2u);
  RERAMDL_CHECK_EQ(bias.shape().rank(), 1u);
  const std::size_t m = x.shape()[0], n = x.shape()[1];
  RERAMDL_CHECK_EQ(bias.shape()[0], n);
  float* px = x.data();
  const float* pb = bias.data();
  parallel::parallel_for(0, m, 64, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i)
      for (std::size_t j = 0; j < n; ++j) px[i * n + j] += pb[j];
  });
}

Tensor column_sums(const Tensor& x) {
  RERAMDL_CHECK_EQ(x.shape().rank(), 2u);
  const std::size_t m = x.shape()[0], n = x.shape()[1];
  Tensor s(Shape{n});
  const float* px = x.data();
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) s[j] += px[i * n + j];
  return s;
}

void column_sums_acc(const Tensor& x, Tensor& acc) {
  RERAMDL_CHECK_EQ(x.shape().rank(), 2u);
  const std::size_t m = x.shape()[0], n = x.shape()[1];
  RERAMDL_CHECK_EQ(acc.shape().rank(), 1u);
  RERAMDL_CHECK_EQ(acc.shape()[0], n);
  // Sum into a zeroed scratch panel in the same i-ascending float order as
  // column_sums, then fold into acc — the exact FP sequence of
  // acc += column_sums(x), without the temporary Tensor.
  scratch::Buffer<float> s(n);
  std::fill(s.begin(), s.end(), 0.0f);
  const float* px = x.data();
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) s[j] += px[i * n + j];
  float* pa = acc.data();
  for (std::size_t j = 0; j < n; ++j) pa[j] += s[j];
}

Tensor transpose(const Tensor& x) {
  Tensor t;
  transpose_into(x, t);
  return t;
}

void transpose_into(const Tensor& x, Tensor& out) {
  RERAMDL_CHECK_EQ(x.shape().rank(), 2u);
  const std::size_t m = x.shape()[0], n = x.shape()[1];
  out.reuse(Shape{n, m});
  const float* px = x.data();
  float* pt = out.data();
  parallel::parallel_for(0, m, 64, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i)
      for (std::size_t j = 0; j < n; ++j) pt[j * m + i] = px[i * n + j];
  });
}

}  // namespace reramdl::ops
