#include "tensor/ops.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "common/scratch.hpp"
#include "obs/obs.hpp"

namespace reramdl::ops {

namespace {

// Shared per-variant instrumentation: call counter, flop counter (2*m*k*n
// multiply-adds), and a latency histogram via the returned timer. The
// disabled path is one relaxed load plus the timer's.
void obs_count_matmul(const char* variant, std::size_t m, std::size_t k,
                      std::size_t n) {
  if (!obs::metrics_enabled()) return;
  auto& reg = obs::Registry::instance();
  static obs::Counter& calls = reg.counter("ops.matmul.calls");
  static obs::Counter& flops = reg.counter("ops.matmul.flops");
  calls.add();
  flops.add(static_cast<std::uint64_t>(2) * m * k * n);
  reg.counter(std::string("ops.") + variant + ".calls").add();
}

// Cache-blocking parameters shared by the three matmul variants. The M x N
// output is tiled; each (row-block, col-block) tile accumulates over K in
// panels through a local double buffer, so every product sums in double in
// a fixed k-ascending order — bit-identical for any thread count, since the
// row-block decomposition depends only on the shapes.
constexpr std::size_t kBlockM = 32;
constexpr std::size_t kBlockN = 128;
constexpr std::size_t kBlockK = 256;

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  RERAMDL_CHECK_EQ(a.shape().rank(), 2u);
  RERAMDL_CHECK_EQ(b.shape().rank(), 2u);
  const std::size_t m = a.shape()[0], k = a.shape()[1], n = b.shape()[1];
  RERAMDL_CHECK_EQ(b.shape()[0], k);
  RERAMDL_TRACE_SCOPE("ops.matmul", "tensor");
  obs::ScopedHistogramTimer obs_timer("ops.matmul_ns");
  obs_count_matmul("matmul", m, k, n);
  Tensor c(Shape{m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  parallel::parallel_for(0, m, kBlockM, [&](std::size_t i0, std::size_t i1) {
    // Thread-local scratch: the accumulator panel is reused across calls on
    // each worker instead of heap-allocated per row block.
    scratch::Buffer<double> acc(kBlockM * kBlockN);
    for (std::size_t j0 = 0; j0 < n; j0 += kBlockN) {
      const std::size_t j1 = std::min(j0 + kBlockN, n);
      const std::size_t bn = j1 - j0;
      std::fill(acc.begin(), acc.begin() + (i1 - i0) * bn, 0.0);
      for (std::size_t p0 = 0; p0 < k; p0 += kBlockK) {
        const std::size_t p1 = std::min(p0 + kBlockK, k);
        for (std::size_t i = i0; i < i1; ++i) {
          double* arow = acc.data() + (i - i0) * bn;
          for (std::size_t p = p0; p < p1; ++p) {
            const double av = pa[i * k + p];
            if (av == 0.0) continue;
            const float* brow = pb + p * n + j0;
            for (std::size_t j = 0; j < bn; ++j) arow[j] += av * brow[j];
          }
        }
      }
      for (std::size_t i = i0; i < i1; ++i) {
        const double* arow = acc.data() + (i - i0) * bn;
        float* crow = pc + i * n + j0;
        for (std::size_t j = 0; j < bn; ++j) crow[j] = static_cast<float>(arow[j]);
      }
    }
  });
  return c;
}

Tensor matmul_transposed_b(const Tensor& a, const Tensor& b) {
  RERAMDL_CHECK_EQ(a.shape().rank(), 2u);
  RERAMDL_CHECK_EQ(b.shape().rank(), 2u);
  const std::size_t m = a.shape()[0], k = a.shape()[1], n = b.shape()[0];
  RERAMDL_CHECK_EQ(b.shape()[1], k);
  RERAMDL_TRACE_SCOPE("ops.matmul_transposed_b", "tensor");
  obs::ScopedHistogramTimer obs_timer("ops.matmul_ns");
  obs_count_matmul("matmul_transposed_b", m, k, n);
  Tensor c(Shape{m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // Both operands are traversed along contiguous k-rows; blocking over j
  // keeps a panel of B rows hot while a row block of A streams through.
  parallel::parallel_for(0, m, kBlockM, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t j0 = 0; j0 < n; j0 += kBlockN) {
      const std::size_t j1 = std::min(j0 + kBlockN, n);
      for (std::size_t i = i0; i < i1; ++i) {
        const float* arow = pa + i * k;
        for (std::size_t j = j0; j < j1; ++j) {
          const float* brow = pb + j * k;
          double dot = 0.0;
          for (std::size_t p = 0; p < k; ++p)
            dot += static_cast<double>(arow[p]) * brow[p];
          pc[i * n + j] = static_cast<float>(dot);
        }
      }
    }
  });
  return c;
}

Tensor matmul_transposed_a(const Tensor& a, const Tensor& b) {
  RERAMDL_CHECK_EQ(a.shape().rank(), 2u);
  RERAMDL_CHECK_EQ(b.shape().rank(), 2u);
  const std::size_t m = a.shape()[0], k = a.shape()[1], n = b.shape()[1];
  RERAMDL_CHECK_EQ(b.shape()[0], m);
  RERAMDL_TRACE_SCOPE("ops.matmul_transposed_a", "tensor");
  obs::ScopedHistogramTimer obs_timer("ops.matmul_ns");
  obs_count_matmul("matmul_transposed_a", m, k, n);
  Tensor c(Shape{k, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // C rows are indexed by A's k dimension, so parallelizing over k-row
  // blocks keeps output writes disjoint; the i (reduction) loop stays
  // ascending inside each block for a fixed double-accumulation order.
  parallel::parallel_for(0, k, kBlockM, [&](std::size_t p0, std::size_t p1) {
    scratch::Buffer<double> acc(kBlockM * kBlockN);
    for (std::size_t j0 = 0; j0 < n; j0 += kBlockN) {
      const std::size_t j1 = std::min(j0 + kBlockN, n);
      const std::size_t bn = j1 - j0;
      std::fill(acc.begin(), acc.begin() + (p1 - p0) * bn, 0.0);
      for (std::size_t i = 0; i < m; ++i) {
        const float* arow = pa + i * k;
        const float* brow = pb + i * n + j0;
        for (std::size_t p = p0; p < p1; ++p) {
          const double av = arow[p];
          if (av == 0.0) continue;
          double* crow = acc.data() + (p - p0) * bn;
          for (std::size_t j = 0; j < bn; ++j) crow[j] += av * brow[j];
        }
      }
      for (std::size_t p = p0; p < p1; ++p) {
        const double* arow = acc.data() + (p - p0) * bn;
        float* crow = pc + p * n + j0;
        for (std::size_t j = 0; j < bn; ++j) crow[j] = static_cast<float>(arow[j]);
      }
    }
  });
  return c;
}

void add_row_bias(Tensor& x, const Tensor& bias) {
  RERAMDL_CHECK_EQ(x.shape().rank(), 2u);
  RERAMDL_CHECK_EQ(bias.shape().rank(), 1u);
  const std::size_t m = x.shape()[0], n = x.shape()[1];
  RERAMDL_CHECK_EQ(bias.shape()[0], n);
  float* px = x.data();
  const float* pb = bias.data();
  parallel::parallel_for(0, m, 64, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i)
      for (std::size_t j = 0; j < n; ++j) px[i * n + j] += pb[j];
  });
}

Tensor column_sums(const Tensor& x) {
  RERAMDL_CHECK_EQ(x.shape().rank(), 2u);
  const std::size_t m = x.shape()[0], n = x.shape()[1];
  Tensor s(Shape{n});
  const float* px = x.data();
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) s[j] += px[i * n + j];
  return s;
}

Tensor transpose(const Tensor& x) {
  RERAMDL_CHECK_EQ(x.shape().rank(), 2u);
  const std::size_t m = x.shape()[0], n = x.shape()[1];
  Tensor t(Shape{n, m});
  const float* px = x.data();
  float* pt = t.data();
  parallel::parallel_for(0, m, 64, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i)
      for (std::size_t j = 0; j < n; ++j) pt[j * m + i] = px[i * n + j];
  });
  return t;
}

}  // namespace reramdl::ops
