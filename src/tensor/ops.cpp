#include "tensor/ops.hpp"

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "common/scratch.hpp"
#include "common/simd.hpp"
#include "obs/obs.hpp"
#include "tensor/sparsity.hpp"

namespace reramdl::ops {

namespace {

// Shared per-variant instrumentation: call counter, flop counter (2*m*k*n
// multiply-adds), and a latency histogram via the returned timer. The
// disabled path is one relaxed load plus the timer's.
void obs_count_matmul(const char* variant, std::size_t m, std::size_t k,
                      std::size_t n) {
  if (!obs::metrics_enabled()) return;
  auto& reg = obs::Registry::instance();
  static obs::Counter& calls = reg.counter("ops.matmul.calls");
  static obs::Counter& flops = reg.counter("ops.matmul.flops");
  calls.add();
  flops.add(static_cast<std::uint64_t>(2) * m * k * n);
  reg.counter(std::string("ops.") + variant + ".calls").add();
}

// Cache-blocking parameters shared by the matmul variants. The M x N output
// is tiled; each (row-block, col-block) tile accumulates over K in panels
// through a local double buffer, so every product sums in double in a fixed
// k-ascending order — bit-identical for any thread count, since the
// row-block decomposition depends only on the shapes.
constexpr std::size_t kBlockM = 32;
constexpr std::size_t kBlockN = 128;
constexpr std::size_t kBlockK = 256;

// Row-block bodies of the blocked kernels, extracted into free functions so
// RERAMDL_TARGET_CLONES can vectorize them with runtime CPU dispatch. The
// loop structure (and so the FP sequence of every output element) is
// identical across clones; only the lane width differs.
RERAMDL_TARGET_CLONES
void matmul_row_block(const float* pa, const float* pb, float* pc,
                      std::size_t i0, std::size_t i1, std::size_t k,
                      std::size_t n, double* acc) {
  for (std::size_t j0 = 0; j0 < n; j0 += kBlockN) {
    const std::size_t j1 = std::min(j0 + kBlockN, n);
    const std::size_t bn = j1 - j0;
    std::fill(acc, acc + (i1 - i0) * bn, 0.0);
    for (std::size_t p0 = 0; p0 < k; p0 += kBlockK) {
      const std::size_t p1 = std::min(p0 + kBlockK, k);
      for (std::size_t i = i0; i < i1; ++i) {
        double* arow = acc + (i - i0) * bn;
        for (std::size_t p = p0; p < p1; ++p) {
          const double av = pa[i * k + p];
          if (av == 0.0) continue;
          const float* brow = pb + p * n + j0;
          for (std::size_t j = 0; j < bn; ++j) arow[j] += av * brow[j];
        }
      }
    }
    for (std::size_t i = i0; i < i1; ++i) {
      const double* arow = acc + (i - i0) * bn;
      float* crow = pc + i * n + j0;
      for (std::size_t j = 0; j < bn; ++j) crow[j] = static_cast<float>(arow[j]);
    }
  }
}

void matmul_kernel(const float* pa, const float* pb, float* pc, std::size_t m,
                   std::size_t k, std::size_t n) {
  parallel::parallel_for(0, m, kBlockM, [&](std::size_t i0, std::size_t i1) {
    // Thread-local scratch: the accumulator panel is reused across calls on
    // each worker instead of heap-allocated per row block.
    scratch::Buffer<double> acc(kBlockM * kBlockN);
    matmul_row_block(pa, pb, pc, i0, i1, k, n, acc.data());
  });
}

// ---- Zero-skipping (sparse) GEMM variants ----------------------------------
//
// Selected at runtime by the sparsity policy (DESIGN.md §12) when the A
// operand's zero fraction reaches RERAMDL_SPARSE_THRESHOLD. Bit-identity
// with the dense kernels holds because per output element the executed
// double additions are exactly the dense sequence with only zero terms
// removed, and adding av * b == +/-0.0 to an accumulator is a bitwise no-op
// (the accumulator can never be -0.0: it starts at +0.0, exact cancellation
// rounds to +0.0, and +0.0 + (-0.0) = +0.0). Like the dense kernels' own
// elementwise zero-skip, this assumes finite operands — a skipped
// 0.0 * inf term would have contributed NaN.

// Compact the nonzero (column index, value) pairs of A rows [i0, i1) into
// parallel idx/val arrays with CSR-style row offsets (row_start has
// i1 - i0 + 1 entries). Indices ascend within each row, so iterating a
// row's compact list preserves the dense kernels' k-ascending order.
std::size_t compact_block(const float* pa, std::size_t i0, std::size_t i1,
                          std::size_t k, std::int32_t* idx, float* val,
                          std::int32_t* row_start) {
  std::size_t nnz = 0;
  row_start[0] = 0;
  for (std::size_t i = i0; i < i1; ++i) {
    const float* arow = pa + i * k;
    for (std::size_t p = 0; p < k; ++p) {
      if (arow[p] != 0.0f) {
        idx[nnz] = static_cast<std::int32_t>(p);
        val[nnz] = arow[p];
        ++nnz;
      }
    }
    row_start[i - i0 + 1] = static_cast<std::int32_t>(nnz);
  }
  return nnz;
}

// Gather-compacted row block shared by matmul and the packed transposed-b
// form (their dense kernels have identical loop structure over a [k, n] B).
// Keeps the dense kernel's j0/p0 panel blocking for B locality: per-row
// cursors advance monotonically through each row's compact list as the k
// panels ascend, so every B panel stays hot across the block's rows exactly
// as in the dense kernel, while zero A elements never load a B row at all.
RERAMDL_TARGET_CLONES
void gathered_row_block(const float* pb, float* pc, std::size_t i0,
                        std::size_t i1, std::size_t k, std::size_t n,
                        double* acc, const std::int32_t* idx, const float* val,
                        const std::int32_t* row_start) {
  const std::size_t bm = i1 - i0;
  std::int32_t cur[kBlockM];
  for (std::size_t j0 = 0; j0 < n; j0 += kBlockN) {
    const std::size_t j1 = std::min(j0 + kBlockN, n);
    const std::size_t bn = j1 - j0;
    std::fill(acc, acc + bm * bn, 0.0);
    for (std::size_t r = 0; r < bm; ++r) cur[r] = row_start[r];
    for (std::size_t p0 = 0; p0 < k; p0 += kBlockK) {
      const std::int32_t p1 =
          static_cast<std::int32_t>(std::min(p0 + kBlockK, k));
      for (std::size_t r = 0; r < bm; ++r) {
        double* arow = acc + r * bn;
        std::int32_t t = cur[r];
        const std::int32_t tend = row_start[r + 1];
        for (; t < tend && idx[t] < p1; ++t) {
          const double av = val[t];
          const float* brow = pb + static_cast<std::size_t>(idx[t]) * n + j0;
          for (std::size_t j = 0; j < bn; ++j) arow[j] += av * brow[j];
        }
        cur[r] = t;
      }
    }
    for (std::size_t r = 0; r < bm; ++r) {
      const double* arow = acc + r * bn;
      float* crow = pc + (i0 + r) * n + j0;
      for (std::size_t j = 0; j < bn; ++j)
        crow[j] = static_cast<float>(arow[j]);
    }
  }
}

void gathered_kernel(const float* pa, const float* pb, float* pc,
                     std::size_t m, std::size_t k, std::size_t n) {
  parallel::parallel_for(0, m, kBlockM, [&](std::size_t i0, std::size_t i1) {
    scratch::Buffer<double> acc(kBlockM * kBlockN);
    scratch::Buffer<std::int32_t> idx(kBlockM * k);
    scratch::Buffer<float> val(kBlockM * k);
    scratch::Buffer<std::int32_t> row_start(kBlockM + 1);
    compact_block(pa, i0, i1, k, idx.data(), val.data(), row_start.data());
    gathered_row_block(pb, pc, i0, i1, k, n, acc.data(), idx.data(),
                       val.data(), row_start.data());
  });
}

// Scans A once (fused zero/max traversal) and applies the threshold policy.
// Returns true when the sparse variant should run; fills `out` and the
// optional per-row bitmap either way (when the policy is enabled).
bool select_sparse_scan(const Tensor& a, sparsity::ScanStats* out,
                        std::uint8_t* row_nonzero = nullptr) {
  if (sparsity::threshold() <= 0.0) return false;
  const sparsity::ScanStats scan = sparsity::scan_rows(
      a.data(), a.shape()[0], a.shape()[1], row_nonzero);
  if (out != nullptr) *out = scan;
  const bool sparse = sparsity::select_sparse(scan.zero_fraction());
  sparsity::record_selection(scan.zero_fraction(), sparse);
  return sparse;
}

RERAMDL_TARGET_CLONES
void mm_tb_packed_row_block(const float* pa, const float* pbt, float* pc,
                            std::size_t i0, std::size_t i1, std::size_t k,
                            std::size_t n, double* acc) {
  for (std::size_t j0 = 0; j0 < n; j0 += kBlockN) {
    const std::size_t j1 = std::min(j0 + kBlockN, n);
    const std::size_t bn = j1 - j0;
    std::fill(acc, acc + (i1 - i0) * bn, 0.0);
    for (std::size_t p0 = 0; p0 < k; p0 += kBlockK) {
      const std::size_t p1 = std::min(p0 + kBlockK, k);
      for (std::size_t i = i0; i < i1; ++i) {
        double* arow = acc + (i - i0) * bn;
        for (std::size_t p = p0; p < p1; ++p) {
          const double av = pa[i * k + p];
          const float* btrow = pbt + p * n + j0;
          for (std::size_t j = 0; j < bn; ++j) arow[j] += av * btrow[j];
        }
      }
    }
    for (std::size_t i = i0; i < i1; ++i) {
      const double* arow = acc + (i - i0) * bn;
      float* crow = pc + i * n + j0;
      for (std::size_t j = 0; j < bn; ++j) crow[j] = static_cast<float>(arow[j]);
    }
  }
}

// When row_nonzero is non-null (sparse selection), rows of A that are
// entirely zero skip the whole [p0, p1) element scan: the dense elementwise
// av == 0.0 branch would have skipped every one of their terms anyway, so
// the executed FP sequence — and the result — is unchanged.
RERAMDL_TARGET_CLONES
void mm_ta_col_block(const float* pa, const float* pb, float* pc,
                     std::size_t p0, std::size_t p1, std::size_t m,
                     std::size_t k, std::size_t n, bool accumulate,
                     double* acc, const std::uint8_t* row_nonzero) {
  for (std::size_t j0 = 0; j0 < n; j0 += kBlockN) {
    const std::size_t j1 = std::min(j0 + kBlockN, n);
    const std::size_t bn = j1 - j0;
    std::fill(acc, acc + (p1 - p0) * bn, 0.0);
    for (std::size_t i = 0; i < m; ++i) {
      if (row_nonzero != nullptr && row_nonzero[i] == 0) continue;
      const float* arow = pa + i * k;
      const float* brow = pb + i * n + j0;
      for (std::size_t p = p0; p < p1; ++p) {
        const double av = arow[p];
        if (av == 0.0) continue;
        double* crow = acc + (p - p0) * bn;
        for (std::size_t j = 0; j < bn; ++j) crow[j] += av * brow[j];
      }
    }
    for (std::size_t p = p0; p < p1; ++p) {
      const double* arow = acc + (p - p0) * bn;
      float* crow = pc + p * n + j0;
      if (accumulate)
        for (std::size_t j = 0; j < bn; ++j)
          crow[j] += static_cast<float>(arow[j]);
      else
        for (std::size_t j = 0; j < bn; ++j)
          crow[j] = static_cast<float>(arow[j]);
    }
  }
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  Tensor c;
  matmul_into(a, b, c);
  return c;
}

void matmul_into(const Tensor& a, const Tensor& b, Tensor& c) {
  RERAMDL_CHECK_EQ(a.shape().rank(), 2u);
  RERAMDL_CHECK_EQ(b.shape().rank(), 2u);
  const std::size_t m = a.shape()[0], k = a.shape()[1], n = b.shape()[1];
  RERAMDL_CHECK_EQ(b.shape()[0], k);
  RERAMDL_TRACE_SCOPE("ops.matmul", "tensor");
  obs::ScopedHistogramTimer obs_timer("ops.matmul_ns");
  obs_count_matmul("matmul", m, k, n);
  c.reuse(Shape{m, n});
  sparsity::ScanStats scan;
  if (select_sparse_scan(a, &scan)) {
    sparsity::count_rows_skipped(scan.zero_elems);
    gathered_kernel(a.data(), b.data(), c.data(), m, k, n);
    return;
  }
  matmul_kernel(a.data(), b.data(), c.data(), m, k, n);
}

Tensor matmul_transposed_b(const Tensor& a, const Tensor& b) {
  RERAMDL_CHECK_EQ(a.shape().rank(), 2u);
  RERAMDL_CHECK_EQ(b.shape().rank(), 2u);
  const std::size_t m = a.shape()[0], k = a.shape()[1], n = b.shape()[0];
  RERAMDL_CHECK_EQ(b.shape()[1], k);
  RERAMDL_TRACE_SCOPE("ops.matmul_transposed_b", "tensor");
  obs::ScopedHistogramTimer obs_timer("ops.matmul_ns");
  obs_count_matmul("matmul_transposed_b", m, k, n);
  Tensor c(Shape{m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // Both operands are traversed along contiguous k-rows; blocking over j
  // keeps a panel of B rows hot while a row block of A streams through.
  parallel::parallel_for(0, m, kBlockM, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t j0 = 0; j0 < n; j0 += kBlockN) {
      const std::size_t j1 = std::min(j0 + kBlockN, n);
      for (std::size_t i = i0; i < i1; ++i) {
        const float* arow = pa + i * k;
        for (std::size_t j = j0; j < j1; ++j) {
          const float* brow = pb + j * k;
          double dot = 0.0;
          for (std::size_t p = 0; p < k; ++p)
            dot += static_cast<double>(arow[p]) * brow[p];
          pc[i * n + j] = static_cast<float>(dot);
        }
      }
    }
  });
  return c;
}

void matmul_transposed_b_packed_into(const Tensor& a, const Tensor& bt,
                                     Tensor& c) {
  RERAMDL_CHECK_EQ(a.shape().rank(), 2u);
  RERAMDL_CHECK_EQ(bt.shape().rank(), 2u);
  const std::size_t m = a.shape()[0], k = a.shape()[1], n = bt.shape()[1];
  RERAMDL_CHECK_EQ(bt.shape()[0], k);
  RERAMDL_TRACE_SCOPE("ops.matmul_transposed_b_packed", "tensor");
  obs::ScopedHistogramTimer obs_timer("ops.matmul_ns");
  obs_count_matmul("matmul_transposed_b_packed", m, k, n);
  c.reuse(Shape{m, n});
  const float* pa = a.data();
  const float* pbt = bt.data();
  float* pc = c.data();
  // Sparse selection: for ReLU nets the a operand here is the output
  // gradient, zero wherever the activation was clamped. Skipping those
  // terms is a bitwise no-op (the accumulator is never -0.0 — see the
  // sparse-variant block comment), so the gathered kernel reproduces the
  // dense dot-form FP sequence exactly for finite operands.
  sparsity::ScanStats scan;
  if (select_sparse_scan(a, &scan)) {
    sparsity::count_rows_skipped(scan.zero_elems);
    gathered_kernel(pa, pbt, pc, m, k, n);
    return;
  }
  // Same shape as matmul_kernel, but no elementwise zero-skip branch: the
  // dot form this replaces sums every k-term, and the branch costs more
  // than it saves at the low zero fractions the dense path is selected
  // for. The k-ascending double accumulation per output element reproduces
  // the dot form's FP sequence exactly.
  parallel::parallel_for(0, m, kBlockM, [&](std::size_t i0, std::size_t i1) {
    scratch::Buffer<double> acc(kBlockM * kBlockN);
    mm_tb_packed_row_block(pa, pbt, pc, i0, i1, k, n, acc.data());
  });
}

Tensor matmul_transposed_b_packed(const Tensor& a, const Tensor& bt) {
  Tensor c;
  matmul_transposed_b_packed_into(a, bt, c);
  return c;
}

namespace {

// Shared core of matmul_transposed_a and its accumulate form; the only
// difference is the final panel store (= vs +=), which matches composing
// the allocating variant with Tensor::operator+= bit-for-bit.
void mm_ta_impl(const Tensor& a, const Tensor& b, float* pc, bool accumulate) {
  const std::size_t m = a.shape()[0], k = a.shape()[1], n = b.shape()[1];
  const float* pa = a.data();
  const float* pb = b.data();
  // Sparse selection: a is the cached im2col activation panel in the
  // backward dW GEMM — patches over all-zero input regions produce fully
  // zero rows, which the row bitmap lets every column block skip without
  // rescanning. Result is unchanged (the elementwise branch would have
  // skipped each of their terms).
  scratch::Buffer<std::uint8_t> row_nonzero(m);
  sparsity::ScanStats scan;
  const bool sparse = select_sparse_scan(a, &scan, row_nonzero.data());
  if (sparse) sparsity::count_rows_skipped(scan.zero_rows);
  const std::uint8_t* flags = sparse ? row_nonzero.data() : nullptr;
  // C rows are indexed by A's k dimension, so parallelizing over k-row
  // blocks keeps output writes disjoint; the i (reduction) loop stays
  // ascending inside each block for a fixed double-accumulation order.
  parallel::parallel_for(0, k, kBlockM, [&](std::size_t p0, std::size_t p1) {
    scratch::Buffer<double> acc(kBlockM * kBlockN);
    mm_ta_col_block(pa, pb, pc, p0, p1, m, k, n, accumulate, acc.data(),
                    flags);
  });
}

}  // namespace

Tensor matmul_transposed_a(const Tensor& a, const Tensor& b) {
  RERAMDL_CHECK_EQ(a.shape().rank(), 2u);
  RERAMDL_CHECK_EQ(b.shape().rank(), 2u);
  const std::size_t m = a.shape()[0], k = a.shape()[1], n = b.shape()[1];
  RERAMDL_CHECK_EQ(b.shape()[0], m);
  RERAMDL_TRACE_SCOPE("ops.matmul_transposed_a", "tensor");
  obs::ScopedHistogramTimer obs_timer("ops.matmul_ns");
  obs_count_matmul("matmul_transposed_a", m, k, n);
  Tensor c(Shape{k, n});
  mm_ta_impl(a, b, c.data(), /*accumulate=*/false);
  return c;
}

void matmul_transposed_a_acc(const Tensor& a, const Tensor& b, Tensor& c) {
  RERAMDL_CHECK_EQ(a.shape().rank(), 2u);
  RERAMDL_CHECK_EQ(b.shape().rank(), 2u);
  const std::size_t m = a.shape()[0], k = a.shape()[1], n = b.shape()[1];
  RERAMDL_CHECK_EQ(b.shape()[0], m);
  RERAMDL_CHECK_EQ(c.shape().rank(), 2u);
  RERAMDL_CHECK_EQ(c.shape()[0], k);
  RERAMDL_CHECK_EQ(c.shape()[1], n);
  RERAMDL_TRACE_SCOPE("ops.matmul_transposed_a", "tensor");
  obs::ScopedHistogramTimer obs_timer("ops.matmul_ns");
  obs_count_matmul("matmul_transposed_a", m, k, n);
  mm_ta_impl(a, b, c.data(), /*accumulate=*/true);
}

void add_row_bias(Tensor& x, const Tensor& bias) {
  RERAMDL_CHECK_EQ(x.shape().rank(), 2u);
  RERAMDL_CHECK_EQ(bias.shape().rank(), 1u);
  const std::size_t m = x.shape()[0], n = x.shape()[1];
  RERAMDL_CHECK_EQ(bias.shape()[0], n);
  float* px = x.data();
  const float* pb = bias.data();
  parallel::parallel_for(0, m, 64, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i)
      for (std::size_t j = 0; j < n; ++j) px[i * n + j] += pb[j];
  });
}

Tensor column_sums(const Tensor& x) {
  RERAMDL_CHECK_EQ(x.shape().rank(), 2u);
  const std::size_t m = x.shape()[0], n = x.shape()[1];
  Tensor s(Shape{n});
  const float* px = x.data();
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) s[j] += px[i * n + j];
  return s;
}

void column_sums_acc(const Tensor& x, Tensor& acc) {
  RERAMDL_CHECK_EQ(x.shape().rank(), 2u);
  const std::size_t m = x.shape()[0], n = x.shape()[1];
  RERAMDL_CHECK_EQ(acc.shape().rank(), 1u);
  RERAMDL_CHECK_EQ(acc.shape()[0], n);
  // Sum into a zeroed scratch panel in the same i-ascending float order as
  // column_sums, then fold into acc — the exact FP sequence of
  // acc += column_sums(x), without the temporary Tensor.
  scratch::Buffer<float> s(n);
  std::fill(s.begin(), s.end(), 0.0f);
  const float* px = x.data();
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) s[j] += px[i * n + j];
  float* pa = acc.data();
  for (std::size_t j = 0; j < n; ++j) pa[j] += s[j];
}

Tensor transpose(const Tensor& x) {
  Tensor t;
  transpose_into(x, t);
  return t;
}

void transpose_into(const Tensor& x, Tensor& out) {
  RERAMDL_CHECK_EQ(x.shape().rank(), 2u);
  const std::size_t m = x.shape()[0], n = x.shape()[1];
  out.reuse(Shape{n, m});
  const float* px = x.data();
  float* pt = out.data();
  parallel::parallel_for(0, m, 64, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i)
      for (std::size_t j = 0; j < n; ++j) pt[j * m + i] = px[i * n + j];
  });
}

}  // namespace reramdl::ops
