// Precomputed execution plans for the convolution training step.
//
// im2col / col2im walk the same (patch row, kernel offset) -> image offset
// geometry on every call. A plan computes that geometry once per layer and
// turns both directions into flat index-driven loops:
//
//  - Im2ColPlan: one gather index per im2col matrix element (-1 for padding
//    zeros). The dilated variant composes the zero-insertion of a
//    fractional-strided (transposed) convolution into the same table, so
//    TransposedConv2D gathers patches straight from the undilated input and
//    never materializes the zero-inserted tensor.
//
//  - Col2ImPlan: the adjoint, reformulated as a gather. The scatter-add
//    "cols row -> overlapping image pixels" is inverted into a CSR table
//    "image pixel -> contributing cols elements", stored in the exact
//    (oy, ox)-ascending order the scatter visits each pixel. Summing a
//    pixel's run therefore performs the identical float-addition sequence as
//    the scatter — bit-identical — while pixels become independent and
//    parallelize over row blocks instead of whole samples. The dilated
//    variant composes zero_insert_adjoint: only grid pixels keep their runs,
//    so the dead contributions to inserted zeros are never computed.
//
// Plans depend only on ConvGeometry (and the dilation factor), never on the
// batch size; batch enters as the outer loop bound at run() time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tensor/im2col.hpp"

namespace reramdl {

namespace plan {

// Global switch for the layers' plan-cached fast path (default on;
// RERAMDL_PLAN_CACHE=0 in the environment disables it). Tests and
// bench_train_step flip it to compare against the uncached reference path.
bool enabled();
void set_enabled(bool on);

// Bumps the plan.cache_hits / plan.cache_misses counters (behind the
// RERAMDL_METRICS gate). Layers call this from their ensure_plan step.
void count_cache(bool hit);

// Bumps the plan.cache_evictions counter (same RERAMDL_METRICS gate).
// The workspace arena calls this when its byte cap forces a slot release.
void count_eviction();

}  // namespace plan

class Im2ColPlan {
 public:
  // Plan for im2col(x, g).
  static Im2ColPlan build(const ConvGeometry& g);
  // Plan for im2col(zero_insert(x, factor), g) where g is the
  // dilated-equivalent stride-1 geometry and [in_h, in_w] are the undilated
  // spatial dims of x.
  static Im2ColPlan build_dilated(const ConvGeometry& g, std::size_t factor,
                                  std::size_t in_h, std::size_t in_w);

  // x: [n, in_c, src_h, src_w] (undilated dims for the dilated variant);
  // cols: [n * patches, patch_size], fully overwritten. Parallel over row
  // blocks; rows write disjoint output, so results are bit-identical for
  // any thread count.
  void run(const float* x, std::size_t n, float* cols) const;

  std::size_t patches() const { return patches_; }
  std::size_t patch_size() const { return psz_; }
  // Elements per source-image sample.
  std::size_t image_elems() const { return img_; }

 private:
  static Im2ColPlan build_impl(const ConvGeometry& g, std::size_t factor,
                               std::size_t src_h, std::size_t src_w);

  std::vector<std::int32_t> src_;  // [patches * psz], -1 = padding/dilation zero
  std::size_t patches_ = 0, psz_ = 0, img_ = 0;
};

class Col2ImPlan {
 public:
  // Plan for col2im(cols, g, n).
  static Col2ImPlan build(const ConvGeometry& g);
  // Plan for zero_insert_adjoint(col2im(cols, g, n), factor, out_h, out_w):
  // g is the dilated-equivalent geometry, [out_h, out_w] the undilated dims.
  static Col2ImPlan build_dilated(const ConvGeometry& g, std::size_t factor,
                                  std::size_t out_h, std::size_t out_w);

  // cols: [n * patches, patch_size]; x: [n, image_elems], fully
  // overwritten (pixels without contributions get 0). Parallel over pixel
  // blocks; each pixel sums its contribution run in the scatter order.
  void run(const float* cols, std::size_t n, float* x) const;

  // Elements per destination-image sample.
  std::size_t image_elems() const { return img_; }
  std::size_t cols_elems_per_sample() const { return cols_per_sample_; }

 private:
  static Col2ImPlan build_impl(const ConvGeometry& g, std::size_t factor,
                               std::size_t out_h, std::size_t out_w);

  std::vector<std::int32_t> src_;     // contribution offsets into a sample's cols
  std::vector<std::uint32_t> first_;  // [img + 1] CSR run boundaries
  std::size_t img_ = 0, cols_per_sample_ = 0;
};

}  // namespace reramdl
