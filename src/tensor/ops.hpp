// Dense linear-algebra kernels for the NN library. These are the float
// reference implementations; the crossbar path in src/circuit computes the
// same contractions through quantized conductances.
//
// All three matmul variants are cache-blocked (M x N tiles with a K-panel
// inner kernel), accumulate partial products in double, and parallelize over
// output row blocks via common/parallel.hpp. Results are bit-identical for
// every RERAMDL_THREADS setting: the block decomposition depends only on the
// shapes and each block sums in a fixed k-ascending order.
//
// The `_into` / `_acc` variants are the workspace-arena forms used by the
// training-step fast path (tensor/workspace.hpp): identical kernels, but the
// result lands in (or accumulates into) a caller-owned tensor instead of a
// fresh allocation. Each is bit-identical to composing its allocating
// counterpart with `=` / `+=`.
//
// matmul / matmul_transposed_b_packed / matmul_transposed_a additionally
// carry zero-skipping variants selected at runtime by the sparsity policy
// (tensor/sparsity.hpp, RERAMDL_SPARSE_THRESHOLD) when the A operand is
// sparse enough; every variant executes the dense kernel's per-element
// double-accumulation sequence minus only exact-zero terms, so dense and
// sparse results are bit-identical for finite operands and the dense path
// remains the oracle.
#pragma once

#include "tensor/tensor.hpp"

namespace reramdl::ops {

// C[m,n] = A[m,k] * B[k,n]
Tensor matmul(const Tensor& a, const Tensor& b);
// As matmul, but writes into `c` (re-shaped via Tensor::reuse).
void matmul_into(const Tensor& a, const Tensor& b, Tensor& c);

// C[m,n] = A[m,k] * B[n,k]^T
Tensor matmul_transposed_b(const Tensor& a, const Tensor& b);

// C[m,n] = A[m,k] * BT[k,n] with matmul_transposed_b's accumulation
// semantics: per output element the k-products sum in double, k-ascending,
// with no zero-skip. Given bt = transpose(b) the result is bit-identical to
// matmul_transposed_b(a, b), but the axpy panel form vectorizes where the
// dot form is a serial FP reduction. Used by the backward fast path with a
// cached transposed-weight panel.
void matmul_transposed_b_packed_into(const Tensor& a, const Tensor& bt,
                                     Tensor& c);
Tensor matmul_transposed_b_packed(const Tensor& a, const Tensor& bt);

// C[k,n] = A[m,k]^T * B[m,n]
Tensor matmul_transposed_a(const Tensor& a, const Tensor& b);
// C[k,n] += A[m,k]^T * B[m,n]; bit-identical to c += matmul_transposed_a(a, b)
// without materializing the temporary (gradient accumulation fast path).
void matmul_transposed_a_acc(const Tensor& a, const Tensor& b, Tensor& c);

// y[m,n] = x[m,n] + bias[n] broadcast over rows.
void add_row_bias(Tensor& x, const Tensor& bias);

// Column-wise sum of a [m,n] matrix -> [n].
Tensor column_sums(const Tensor& x);
// acc[n] += column_sums(x); bit-identical to acc += column_sums(x).
void column_sums_acc(const Tensor& x, Tensor& acc);

Tensor transpose(const Tensor& x);  // [m,n] -> [n,m]
// As transpose, but writes into `out` (re-shaped via Tensor::reuse).
void transpose_into(const Tensor& x, Tensor& out);

}  // namespace reramdl::ops
