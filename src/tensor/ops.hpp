// Dense linear-algebra kernels for the NN library. These are the float
// reference implementations; the crossbar path in src/circuit computes the
// same contractions through quantized conductances.
//
// All three matmul variants are cache-blocked (M x N tiles with a K-panel
// inner kernel), accumulate partial products in double, and parallelize over
// output row blocks via common/parallel.hpp. Results are bit-identical for
// every RERAMDL_THREADS setting: the block decomposition depends only on the
// shapes and each block sums in a fixed k-ascending order.
#pragma once

#include "tensor/tensor.hpp"

namespace reramdl::ops {

// C[m,n] = A[m,k] * B[k,n]
Tensor matmul(const Tensor& a, const Tensor& b);
// C[m,n] = A[m,k] * B[n,k]^T
Tensor matmul_transposed_b(const Tensor& a, const Tensor& b);
// C[k,n] = A[m,k]^T * B[m,n]
Tensor matmul_transposed_a(const Tensor& a, const Tensor& b);

// y[m,n] = x[m,n] + bias[n] broadcast over rows.
void add_row_bias(Tensor& x, const Tensor& bias);

// Column-wise sum of a [m,n] matrix -> [n].
Tensor column_sums(const Tensor& x);

Tensor transpose(const Tensor& x);  // [m,n] -> [n,m]

}  // namespace reramdl::ops
