// Sparsity-aware execution support (DESIGN.md §12).
//
// The paper's weighted-spike input encoding makes zero activations literally
// free in the arrays — a wordline that never fires costs no crossbar cycles
// — and ReLU-heavy nets routinely run at 50%+ activation sparsity. The host
// kernels exploit that through three pieces that live here:
//
//   * scan_rows: one fused traversal of an [rows, cols] activation matrix
//     producing the per-row nonzero bitmap, the zero-element fraction, and
//     the absolute max (the per-layer spike-driver range the crossbar
//     executor previously computed with its own separate pass). Parallelized
//     over row blocks; every reduction (integer sums, max) is
//     association-insensitive, so the result is exact for any
//     RERAMDL_THREADS.
//   * a threshold policy choosing the dense or the zero-skipping kernel
//     variant per call: env-tunable RERAMDL_SPARSE_THRESHOLD in [0, 1]
//     (fraction of zero elements at or above which the sparse variant runs;
//     0 forces dense, the compiled-in default is 0.5). The dense path is
//     always kept as the oracle — every sparse variant is bit-identical to
//     it, so the selector is a pure performance decision.
//   * obs plumbing: a "sparsity.fraction" histogram (recorded in percent so
//     the log-scale buckets spread), sparse/dense selection counters, and
//     the "sparsity.rows_skipped" counter fed by the skipping kernels.
#pragma once

#include <cstddef>
#include <cstdint>

namespace reramdl::sparsity {

// Result of one fused scan over an [rows, cols] row-major float matrix.
struct ScanStats {
  std::size_t rows = 0, cols = 0;
  std::uint64_t zero_elems = 0;  // elements exactly == 0.0f
  std::uint64_t zero_rows = 0;   // rows with every element zero
  double max_abs = 1e-12;        // max |x|, floored at the driver epsilon

  double zero_fraction() const {
    const std::uint64_t n = static_cast<std::uint64_t>(rows) * cols;
    return n == 0 ? 0.0
                  : static_cast<double>(zero_elems) / static_cast<double>(n);
  }
};

// Fused single-traversal scan. When row_nonzero is non-null it must have
// `rows` entries and receives 1 for rows with any nonzero element, else 0
// (the per-row bitmap the zero-skipping kernels consume). Allocation-free in
// steady state: per-row partials stage through the thread-local
// scratch::Buffer pools.
ScanStats scan_rows(const float* data, std::size_t rows, std::size_t cols,
                    std::uint8_t* row_nonzero = nullptr);

// Selector policy. threshold() lazily reads RERAMDL_SPARSE_THRESHOLD via the
// shared env helpers (invalid or out-of-[0,1] values warn once and fall back
// to the default); set_threshold overrides it programmatically (benches,
// tests) — pass a negative value to drop the override and re-read the
// environment on the next call.
double threshold();
void set_threshold(double t);

// True when the policy would run the zero-skipping variant for a call whose
// input has the given fraction of zero elements: threshold() > 0 and
// zero_fraction >= threshold() (a fraction exactly at the threshold selects
// sparse; threshold 0 disables sparse execution entirely).
bool select_sparse(double zero_fraction);

// Obs hooks (single relaxed load when metrics are disabled).
void record_selection(double zero_fraction, bool sparse);
void count_rows_skipped(std::uint64_t n);

}  // namespace reramdl::sparsity
