#include "tensor/workspace.hpp"

#include "common/scratch.hpp"

namespace reramdl {

Workspace::~Workspace() { scratch::arena_account_release(bytes_); }

Tensor& Workspace::tensor(std::size_t slot, const Shape& shape) {
  if (slot >= slots_.size()) {
    // Slot vector growth is part of warm-up; Tensors are tiny when empty.
    slots_.resize(slot + 1);
  }
  if (!slots_[slot]) slots_[slot] = std::make_unique<Tensor>();
  Tensor& t = *slots_[slot];
  const std::size_t before = t.capacity_bytes();
  t.reuse(shape);
  const std::size_t after = t.capacity_bytes();
  if (after > before) {
    bytes_ += after - before;
    scratch::arena_account_grow(after - before);
  }
  return t;
}

}  // namespace reramdl
