#include "tensor/workspace.hpp"

#include <atomic>

#include "common/env.hpp"
#include "common/scratch.hpp"
#include "tensor/conv_plan.hpp"

namespace reramdl {

namespace {

std::size_t env_default_cap() {
  const long long mb = env::env_int("RERAMDL_ARENA_CAP_MB", 0, 0);
  return static_cast<std::size_t>(mb) * 1024 * 1024;
}

std::atomic<std::size_t>& default_cap() {
  static std::atomic<std::size_t> cap{env_default_cap()};
  return cap;
}

}  // namespace

std::size_t Workspace::default_byte_cap() {
  return default_cap().load(std::memory_order_relaxed);
}

void Workspace::set_default_byte_cap(std::size_t bytes) {
  default_cap().store(bytes, std::memory_order_relaxed);
}

Workspace::Workspace() : cap_(default_byte_cap()) {}

Workspace::~Workspace() { scratch::arena_account_release(bytes_); }

Tensor& Workspace::tensor(std::size_t slot, const Shape& shape) {
  if (slot >= slots_.size()) {
    // Slot vector growth is part of warm-up; Tensors are tiny when empty.
    slots_.resize(slot + 1);
    last_use_.resize(slot + 1, 0);
  }
  if (!slots_[slot]) slots_[slot] = std::make_unique<Tensor>();
  Tensor& t = *slots_[slot];
  const std::size_t before = t.capacity_bytes();
  t.reuse(shape);
  const std::size_t after = t.capacity_bytes();
  if (after > before) {
    bytes_ += after - before;
    scratch::arena_account_grow(after - before);
  }
  last_use_[slot] = ++tick_;
  return t;
}

void Workspace::trim() {
  if (cap_ == 0) return;
  while (bytes_ > cap_) {
    // LRU victim among non-empty slots, excluding the most-recently-used
    // one: the hottest temporary stays resident even when it alone exceeds
    // the cap, so a tight cap degrades to "keep one slot" rather than
    // re-allocating the working panel every pass.
    std::size_t victim = slots_.size(), mru = slots_.size();
    std::uint64_t oldest = 0, newest = 0;
    for (std::size_t s = 0; s < slots_.size(); ++s) {
      if (!slots_[s] || slots_[s]->capacity_bytes() == 0) continue;
      if (mru == slots_.size() || last_use_[s] > newest) {
        mru = s;
        newest = last_use_[s];
      }
      if (victim == slots_.size() || last_use_[s] < oldest) {
        victim = s;
        oldest = last_use_[s];
      }
    }
    if (victim == slots_.size() || victim == mru) break;
    const std::size_t freed = slots_[victim]->capacity_bytes();
    slots_[victim]->release();
    bytes_ -= freed;
    scratch::arena_account_release(freed);
    ++evictions_;
    plan::count_eviction();
  }
}

}  // namespace reramdl
