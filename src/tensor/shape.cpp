#include "tensor/shape.hpp"

#include <sstream>

#include "common/check.hpp"

namespace reramdl {

Shape::Shape(std::initializer_list<std::size_t> dims) : dims_(dims) {}

Shape::Shape(std::vector<std::size_t> dims) : dims_(std::move(dims)) {}

std::size_t Shape::dim(std::size_t i) const {
  RERAMDL_CHECK_LT(i, dims_.size());
  return dims_[i];
}

std::size_t Shape::numel() const {
  std::size_t n = 1;
  for (std::size_t d : dims_) n *= d;
  return n;
}

std::size_t Shape::stride(std::size_t i) const {
  RERAMDL_CHECK_LT(i, dims_.size());
  std::size_t s = 1;
  for (std::size_t j = i + 1; j < dims_.size(); ++j) s *= dims_[j];
  return s;
}

std::string Shape::to_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) os << ", ";
    os << dims_[i];
  }
  os << ']';
  return os.str();
}

}  // namespace reramdl
