// Dense row-major float tensor. This is the numeric substrate the NN library
// and the functional crossbar simulation both operate on.
//
// Layout convention for image batches is NCHW: [batch, channels, height,
// width]; fully-connected activations are [batch, features]; conv kernels are
// [out_channels, in_channels, kh, kw].
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "tensor/shape.hpp"

namespace reramdl {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape, float fill = 0.0f);

  const Shape& shape() const { return shape_; }
  std::size_t numel() const { return data_.size(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& vec() { return data_; }
  const std::vector<float>& vec() const { return data_; }

  float& operator[](std::size_t i);
  float operator[](std::size_t i) const;

  // Multi-dimensional accessors (bounds-checked).
  float& at(std::size_t i0);
  float& at(std::size_t i0, std::size_t i1);
  float& at(std::size_t i0, std::size_t i1, std::size_t i2);
  float& at(std::size_t i0, std::size_t i1, std::size_t i2, std::size_t i3);
  float at(std::size_t i0) const;
  float at(std::size_t i0, std::size_t i1) const;
  float at(std::size_t i0, std::size_t i1, std::size_t i2) const;
  float at(std::size_t i0, std::size_t i1, std::size_t i2, std::size_t i3) const;

  void fill(float v);
  void zero() { fill(0.0f); }
  // Reinterpret with a new shape of identical numel.
  Tensor reshaped(Shape new_shape) const;

  // Re-shape in place, reusing the existing allocation whenever the new
  // numel fits in the current capacity (grow-only storage). Contents are
  // unspecified afterwards — workspace callers overwrite every element.
  void reuse(Shape new_shape);
  // Free the backing storage entirely (shape becomes empty). Used by the
  // workspace arena's eviction path; a later reuse() re-grows from zero.
  void release();
  // Bytes of backing storage currently reserved (>= numel * sizeof(float)).
  std::size_t capacity_bytes() const { return data_.capacity() * sizeof(float); }

  // Elementwise in-place updates.
  Tensor& operator+=(const Tensor& other);
  Tensor& operator-=(const Tensor& other);
  Tensor& operator*=(float s);

  // Initializers.
  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor full(Shape shape, float v) { return Tensor(std::move(shape), v); }
  static Tensor uniform(Shape shape, Rng& rng, float lo, float hi);
  static Tensor normal(Shape shape, Rng& rng, float mean, float stddev);
  // He/Kaiming-normal initialization for a layer with the given fan-in.
  static Tensor he_normal(Shape shape, Rng& rng, std::size_t fan_in);

  float sum() const;
  float abs_max() const;

 private:
  std::size_t flat_index(std::size_t i0, std::size_t i1, std::size_t i2,
                         std::size_t i3, std::size_t rank) const;

  Shape shape_;
  std::vector<float> data_;
};

}  // namespace reramdl
