// Workspace arena: slotted, reusable Tensor storage for per-iteration
// training temporaries (im2col matrices, gradient panels, transposed weight
// panels, batch staging).
//
// Each owner (a layer, the trainer) holds one Workspace and addresses its
// temporaries by a small slot index. tensor(slot, shape) hands back the
// slot's Tensor re-shaped in place: storage is grow-only, so after the
// warm-up batch has sized every slot to its high-water mark, steady-state
// training touches the heap zero times through the arena. Capacity growth
// is reported to the process-wide ledger in common/scratch.hpp
// (arena_bytes_reserved / arena_growth_events), which the plan-cache tests
// and bench_train_step use to assert the zero-steady-state-allocation
// property.
//
// Grow-only storage is unbounded when the caller varies the batch size
// (e.g. a serving batcher forming differently sized batches): every new
// high-water mark sticks forever. A per-workspace byte cap bounds this via
// trim(): while the workspace is over its cap, the least-recently-used
// slots are released (storage freed, ledger credited, plan.cache_evictions
// bumped), keeping at least the most-recently-used slot resident so the
// hot temporary never thrashes. tensor() itself NEVER evicts — slot
// contents can be live across calls (conv backward re-fetches the im2col
// panel its forward filled), so owners call trim() only at pass
// boundaries where every slot's contents are dead: the end of backward,
// or the end of an inference-mode forward. Default cap comes from
// RERAMDL_ARENA_CAP_MB (0 = unlimited); set_byte_cap overrides per
// workspace.
//
// Contents of a checked-out slot are unspecified (the previous iteration's
// data); every fast-path consumer fully overwrites its slot. After an
// eviction, the victim slot's next checkout re-grows from zero.
//
// Concurrency: a Workspace belongs to one owner and is used from the thread
// driving that owner's forward/backward, exactly like the layer activation
// caches it replaces. Only the byte ledger is shared (and atomic).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "tensor/tensor.hpp"

namespace reramdl {

class Workspace {
 public:
  Workspace();
  ~Workspace();

  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  // The slot's Tensor re-shaped to `shape` (grow-only backing storage).
  // Slots are heap-pinned, so the returned reference stays valid across
  // later tensor() calls for other slots. Never evicts.
  Tensor& tensor(std::size_t slot, const Shape& shape);

  // Evict least-recently-used slots until bytes_reserved() <= byte_cap()
  // or only one non-empty slot remains (the most-recently-used slot is
  // never a victim). No-op when the cap is 0. Call only when no slot's
  // contents are needed again — i.e. at a pass boundary.
  void trim();

  // Bytes reserved by this workspace's slots.
  std::size_t bytes_reserved() const { return bytes_; }

  // Eviction cap in bytes (0 = unlimited). Default from RERAMDL_ARENA_CAP_MB.
  std::size_t byte_cap() const { return cap_; }
  void set_byte_cap(std::size_t bytes) { cap_ = bytes; }
  // Slots released by trim() since construction.
  std::uint64_t evictions() const { return evictions_; }

  // Process-wide default cap for new workspaces, in bytes (0 = unlimited).
  // Reads RERAMDL_ARENA_CAP_MB once; set_default_byte_cap overrides (tests
  // and the serving bench).
  static std::size_t default_byte_cap();
  static void set_default_byte_cap(std::size_t bytes);

 private:
  std::vector<std::unique_ptr<Tensor>> slots_;
  std::vector<std::uint64_t> last_use_;  // parallel to slots_; 0 = never used
  std::size_t bytes_ = 0;
  std::size_t cap_ = 0;
  std::uint64_t tick_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace reramdl
