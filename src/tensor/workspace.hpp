// Workspace arena: slotted, reusable Tensor storage for per-iteration
// training temporaries (im2col matrices, gradient panels, transposed weight
// panels, batch staging).
//
// Each owner (a layer, the trainer) holds one Workspace and addresses its
// temporaries by a small slot index. tensor(slot, shape) hands back the
// slot's Tensor re-shaped in place: storage is grow-only, so after the
// warm-up batch has sized every slot to its high-water mark, steady-state
// training touches the heap zero times through the arena. Capacity growth
// is reported to the process-wide ledger in common/scratch.hpp
// (arena_bytes_reserved / arena_growth_events), which the plan-cache tests
// and bench_train_step use to assert the zero-steady-state-allocation
// property.
//
// Contents of a checked-out slot are unspecified (the previous iteration's
// data); every fast-path consumer fully overwrites its slot.
//
// Concurrency: a Workspace belongs to one owner and is used from the thread
// driving that owner's forward/backward, exactly like the layer activation
// caches it replaces. Only the byte ledger is shared (and atomic).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "tensor/tensor.hpp"

namespace reramdl {

class Workspace {
 public:
  Workspace() = default;
  ~Workspace();

  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  // The slot's Tensor re-shaped to `shape` (grow-only backing storage).
  // Slots are heap-pinned, so the returned reference stays valid across
  // later tensor() calls for other slots.
  Tensor& tensor(std::size_t slot, const Shape& shape);

  // Bytes reserved by this workspace's slots.
  std::size_t bytes_reserved() const { return bytes_; }

 private:
  std::vector<std::unique_ptr<Tensor>> slots_;
  std::size_t bytes_ = 0;
};

}  // namespace reramdl
