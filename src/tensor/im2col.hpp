// Patch extraction (im2col / col2im) and zero-insertion helpers.
//
// im2col turns convolution into the matrix-vector products a ReRAM crossbar
// natively executes (paper Fig. 4: a 3x3x128 kernel becomes one 1152-entry
// column; each output pixel is one input vector). zero_insert implements the
// fractional-strided convolution trick of Fig. 7(a): a transposed conv's
// forward pass equals an ordinary convolution over the zero-dilated input.
#pragma once

#include <cstddef>

#include "tensor/tensor.hpp"

namespace reramdl {

struct ConvGeometry {
  std::size_t in_c = 0, in_h = 0, in_w = 0;
  std::size_t kh = 0, kw = 0;
  std::size_t stride = 1;
  std::size_t pad = 0;

  std::size_t out_h() const;
  std::size_t out_w() const;
  // Rows of the im2col matrix per sample.
  std::size_t patches() const { return out_h() * out_w(); }
  // Columns of the im2col matrix (= crossbar wordlines used by the kernel).
  std::size_t patch_size() const { return in_c * kh * kw; }
};

// x: [N, C, H, W] -> [N * out_h * out_w, C*kh*kw]; row order is (n, oy, ox),
// column order is (c, ky, kx) — matching the kernel flattening in
// src/mapping/kernel_flatten.
Tensor im2col(const Tensor& x, const ConvGeometry& g);

// Scatter-add the patch matrix back into an [N, C, H, W] image; the adjoint
// of im2col, used for conv input gradients.
Tensor col2im(const Tensor& cols, const ConvGeometry& g, std::size_t batch);

// Insert (factor-1) zeros between adjacent pixels in H and W:
// [N, C, H, W] -> [N, C, (H-1)*factor+1, (W-1)*factor+1]. factor >= 1.
Tensor zero_insert(const Tensor& x, std::size_t factor);

// Adjoint of zero_insert: sample back the non-zero grid positions.
Tensor zero_insert_adjoint(const Tensor& g_dilated, std::size_t factor,
                           std::size_t out_h, std::size_t out_w);

}  // namespace reramdl
