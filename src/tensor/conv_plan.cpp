#include "tensor/conv_plan.hpp"

#include <algorithm>
#include <atomic>
#include <limits>

#include "common/check.hpp"
#include "common/env.hpp"
#include "common/parallel.hpp"
#include "obs/obs.hpp"

namespace reramdl {

namespace plan {

namespace {

bool env_default() { return env::env_flag("RERAMDL_PLAN_CACHE", true); }

std::atomic<bool>& flag() {
  static std::atomic<bool> on{env_default()};
  return on;
}

}  // namespace

bool enabled() { return flag().load(std::memory_order_relaxed); }
void set_enabled(bool on) { flag().store(on, std::memory_order_relaxed); }

void count_cache(bool hit) {
  if (!obs::metrics_enabled()) return;
  auto& reg = obs::Registry::instance();
  static obs::Counter& hits = reg.counter("plan.cache_hits");
  static obs::Counter& misses = reg.counter("plan.cache_misses");
  (hit ? hits : misses).add();
  // Cache decisions also land in the attribution tree (layers consult the
  // cache from the serial forward path, so this stays deterministic).
  obs::Attribution::instance().add("host/plan_cache", hit ? "hits" : "misses",
                                   1.0);
}

void count_eviction() {
  if (!obs::metrics_enabled()) return;
  static obs::Counter& evictions =
      obs::Registry::instance().counter("plan.cache_evictions");
  evictions.add();
  obs::Attribution::instance().add("host/plan_cache", "evictions", 1.0);
}

}  // namespace plan

namespace {

// Source-image offset of kernel tap (c, ky, kx) applied at patch (oy, ox),
// composed with an optional zero-insertion of `factor` (src dims are the
// undilated [src_h, src_w]); -1 when the tap lands on padding or on an
// inserted zero.
std::int32_t source_offset(const ConvGeometry& g, std::size_t factor,
                           std::size_t src_h, std::size_t src_w, std::size_t oy,
                           std::size_t ox, std::size_t c, std::size_t ky,
                           std::size_t kx) {
  const long iy =
      static_cast<long>(oy * g.stride + ky) - static_cast<long>(g.pad);
  const long ix =
      static_cast<long>(ox * g.stride + kx) - static_cast<long>(g.pad);
  if (iy < 0 || iy >= static_cast<long>(g.in_h) || ix < 0 ||
      ix >= static_cast<long>(g.in_w))
    return -1;
  const std::size_t diy = static_cast<std::size_t>(iy);
  const std::size_t dix = static_cast<std::size_t>(ix);
  if (factor > 1 && (diy % factor != 0 || dix % factor != 0)) return -1;
  const std::size_t off =
      (c * src_h + diy / factor) * src_w + dix / factor;
  RERAMDL_CHECK_LE(off, static_cast<std::size_t>(
                            std::numeric_limits<std::int32_t>::max()));
  return static_cast<std::int32_t>(off);
}

}  // namespace

Im2ColPlan Im2ColPlan::build(const ConvGeometry& g) {
  return build_impl(g, 1, g.in_h, g.in_w);
}

Im2ColPlan Im2ColPlan::build_dilated(const ConvGeometry& g, std::size_t factor,
                                     std::size_t in_h, std::size_t in_w) {
  RERAMDL_CHECK_GE(factor, 1u);
  RERAMDL_CHECK_EQ(g.in_h, (in_h - 1) * factor + 1);
  RERAMDL_CHECK_EQ(g.in_w, (in_w - 1) * factor + 1);
  return build_impl(g, factor, in_h, in_w);
}

Im2ColPlan Im2ColPlan::build_impl(const ConvGeometry& g, std::size_t factor,
                                  std::size_t src_h, std::size_t src_w) {
  Im2ColPlan p;
  const std::size_t oh = g.out_h(), ow = g.out_w();
  p.patches_ = oh * ow;
  p.psz_ = g.patch_size();
  p.img_ = g.in_c * src_h * src_w;
  p.src_.resize(p.patches_ * p.psz_);
  for (std::size_t oy = 0; oy < oh; ++oy)
    for (std::size_t ox = 0; ox < ow; ++ox) {
      std::int32_t* row = p.src_.data() + (oy * ow + ox) * p.psz_;
      for (std::size_t c = 0; c < g.in_c; ++c)
        for (std::size_t ky = 0; ky < g.kh; ++ky)
          for (std::size_t kx = 0; kx < g.kw; ++kx)
            row[(c * g.kh + ky) * g.kw + kx] =
                source_offset(g, factor, src_h, src_w, oy, ox, c, ky, kx);
    }
  return p;
}

void Im2ColPlan::run(const float* x, std::size_t n, float* cols) const {
  const std::size_t rows = n * patches_;
  // Row blocks sized so a chunk moves a few tens of KiB regardless of patch
  // width; the decomposition depends only on the shapes, and rows write
  // disjoint output, so any grain is bit-identical.
  const std::size_t grain =
      std::max<std::size_t>(1, 16384 / std::max<std::size_t>(psz_, 1));
  parallel::parallel_for(0, rows, grain, [&](std::size_t r0, std::size_t r1) {
    for (std::size_t r = r0; r < r1; ++r) {
      const std::size_t s = r / patches_;
      const std::int32_t* map = src_.data() + (r % patches_) * psz_;
      const float* img = x + s * img_;
      float* row = cols + r * psz_;
      for (std::size_t j = 0; j < psz_; ++j) {
        const std::int32_t o = map[j];
        row[j] = o >= 0 ? img[o] : 0.0f;
      }
    }
  });
}

Col2ImPlan Col2ImPlan::build(const ConvGeometry& g) {
  return build_impl(g, 1, g.in_h, g.in_w);
}

Col2ImPlan Col2ImPlan::build_dilated(const ConvGeometry& g, std::size_t factor,
                                     std::size_t out_h, std::size_t out_w) {
  RERAMDL_CHECK_GE(factor, 1u);
  RERAMDL_CHECK_EQ(g.in_h, (out_h - 1) * factor + 1);
  RERAMDL_CHECK_EQ(g.in_w, (out_w - 1) * factor + 1);
  return build_impl(g, factor, out_h, out_w);
}

Col2ImPlan Col2ImPlan::build_impl(const ConvGeometry& g, std::size_t factor,
                                  std::size_t out_h, std::size_t out_w) {
  Col2ImPlan p;
  const std::size_t oh = g.out_h(), ow = g.out_w();
  const std::size_t psz = g.patch_size();
  p.img_ = g.in_c * out_h * out_w;
  p.cols_per_sample_ = oh * ow * psz;
  RERAMDL_CHECK_LE(p.cols_per_sample_,
                   static_cast<std::size_t>(
                       std::numeric_limits<std::int32_t>::max()));

  // Two-pass stable counting sort over destination pixels. Both passes walk
  // the scatter's (oy, ox, c, ky, kx) nest, so each pixel's run lists its
  // contributions in exactly the order the scatter-add visits that pixel —
  // summing a run replays the identical float-addition sequence.
  std::vector<std::uint32_t> count(p.img_ + 1, 0);
  auto for_each_tap = [&](auto&& visit) {
    for (std::size_t oy = 0; oy < oh; ++oy)
      for (std::size_t ox = 0; ox < ow; ++ox) {
        const std::size_t row_base = (oy * ow + ox) * psz;
        for (std::size_t c = 0; c < g.in_c; ++c)
          for (std::size_t ky = 0; ky < g.kh; ++ky)
            for (std::size_t kx = 0; kx < g.kw; ++kx) {
              const std::int32_t off =
                  source_offset(g, factor, out_h, out_w, oy, ox, c, ky, kx);
              if (off < 0) continue;
              visit(static_cast<std::size_t>(off),
                    static_cast<std::int32_t>(row_base +
                                              (c * g.kh + ky) * g.kw + kx));
            }
      }
  };
  for_each_tap([&](std::size_t q, std::int32_t) { ++count[q + 1]; });
  p.first_.assign(p.img_ + 1, 0);
  for (std::size_t q = 0; q < p.img_; ++q)
    p.first_[q + 1] = p.first_[q] + count[q + 1];
  p.src_.resize(p.first_[p.img_]);
  std::vector<std::uint32_t> next(p.first_.begin(), p.first_.end() - 1);
  for_each_tap(
      [&](std::size_t q, std::int32_t col_off) { p.src_[next[q]++] = col_off; });
  return p;
}

void Col2ImPlan::run(const float* cols, std::size_t n, float* x) const {
  const std::size_t total = n * img_;
  parallel::parallel_for(0, total, 1024, [&](std::size_t p0, std::size_t p1) {
    for (std::size_t p = p0; p < p1; ++p) {
      const std::size_t q = p % img_;
      const float* cbase = cols + (p / img_) * cols_per_sample_;
      float acc = 0.0f;
      for (std::uint32_t k = first_[q]; k < first_[q + 1]; ++k)
        acc += cbase[src_[k]];
      x[p] = acc;
    }
  });
}

}  // namespace reramdl
