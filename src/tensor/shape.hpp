// Tensor shape: a small vector of dimension extents with row-major strides.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace reramdl {

class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::size_t> dims);
  explicit Shape(std::vector<std::size_t> dims);

  std::size_t rank() const { return dims_.size(); }
  std::size_t dim(std::size_t i) const;
  std::size_t operator[](std::size_t i) const { return dim(i); }
  // Total number of elements (1 for a rank-0 shape).
  std::size_t numel() const;
  // Row-major stride of axis i (product of extents of later axes).
  std::size_t stride(std::size_t i) const;

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  const std::vector<std::size_t>& dims() const { return dims_; }
  std::string to_string() const;  // e.g. "[64, 3, 32, 32]"

 private:
  std::vector<std::size_t> dims_;
};

}  // namespace reramdl
