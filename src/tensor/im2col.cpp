#include "tensor/im2col.hpp"

#include "common/check.hpp"
#include "common/parallel.hpp"

namespace reramdl {

std::size_t ConvGeometry::out_h() const {
  RERAMDL_CHECK_GE(in_h + 2 * pad + 1, kh + 1);
  return (in_h + 2 * pad - kh) / stride + 1;
}

std::size_t ConvGeometry::out_w() const {
  RERAMDL_CHECK_GE(in_w + 2 * pad + 1, kw + 1);
  return (in_w + 2 * pad - kw) / stride + 1;
}

Tensor im2col(const Tensor& x, const ConvGeometry& g) {
  RERAMDL_CHECK_EQ(x.shape().rank(), 4u);
  const std::size_t n = x.shape()[0];
  RERAMDL_CHECK_EQ(x.shape()[1], g.in_c);
  RERAMDL_CHECK_EQ(x.shape()[2], g.in_h);
  RERAMDL_CHECK_EQ(x.shape()[3], g.in_w);
  const std::size_t oh = g.out_h(), ow = g.out_w();
  const std::size_t psz = g.patch_size();
  Tensor cols(Shape{n * oh * ow, psz});

  const float* px = x.data();
  float* pc = cols.data();
  const std::size_t img = g.in_c * g.in_h * g.in_w;
  // Each output patch row is written by exactly one (s, oy) pair, so the
  // sample-row loop parallelizes over disjoint row blocks of `cols`.
  parallel::parallel_for(0, n * oh, 8, [&](std::size_t r0, std::size_t r1) {
  for (std::size_t r = r0; r < r1; ++r) {
    const std::size_t s = r / oh;
    const std::size_t oy = r % oh;
    {
      for (std::size_t ox = 0; ox < ow; ++ox) {
        float* row = pc + ((s * oh + oy) * ow + ox) * psz;
        for (std::size_t c = 0; c < g.in_c; ++c) {
          for (std::size_t ky = 0; ky < g.kh; ++ky) {
            // signed arithmetic for the padded coordinate
            const long iy = static_cast<long>(oy * g.stride + ky) -
                            static_cast<long>(g.pad);
            for (std::size_t kx = 0; kx < g.kw; ++kx) {
              const long ix = static_cast<long>(ox * g.stride + kx) -
                              static_cast<long>(g.pad);
              float v = 0.0f;
              if (iy >= 0 && iy < static_cast<long>(g.in_h) && ix >= 0 &&
                  ix < static_cast<long>(g.in_w)) {
                v = px[s * img + (c * g.in_h + static_cast<std::size_t>(iy)) * g.in_w +
                       static_cast<std::size_t>(ix)];
              }
              row[(c * g.kh + ky) * g.kw + kx] = v;
            }
          }
        }
      }
    }
  }
  });
  return cols;
}

Tensor col2im(const Tensor& cols, const ConvGeometry& g, std::size_t batch) {
  const std::size_t oh = g.out_h(), ow = g.out_w();
  const std::size_t psz = g.patch_size();
  RERAMDL_CHECK_EQ(cols.shape().rank(), 2u);
  RERAMDL_CHECK_EQ(cols.shape()[0], batch * oh * ow);
  RERAMDL_CHECK_EQ(cols.shape()[1], psz);
  Tensor x(Shape{batch, g.in_c, g.in_h, g.in_w});

  const float* pc = cols.data();
  float* px = x.data();
  const std::size_t img = g.in_c * g.in_h * g.in_w;
  const std::size_t plane = g.in_h * g.in_w;
  // Patches overlap spatially (stride < kernel) but never across channels,
  // so the scatter-add parallelizes over (sample, channel) planes — the same
  // block granularity im2col uses over its row space — instead of one whole
  // sample per chunk. Each pixel still receives its contributions in
  // (oy, ox)-ascending order, keeping results exact.
  parallel::parallel_for(0, batch * g.in_c, 8, [&](std::size_t q0, std::size_t q1) {
  for (std::size_t q = q0; q < q1; ++q) {
    const std::size_t s = q / g.in_c;
    const std::size_t c = q % g.in_c;
    float* plane_px = px + s * img + c * plane;
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox) {
        const float* row = pc + ((s * oh + oy) * ow + ox) * psz;
        for (std::size_t ky = 0; ky < g.kh; ++ky) {
          const long iy = static_cast<long>(oy * g.stride + ky) -
                          static_cast<long>(g.pad);
          if (iy < 0 || iy >= static_cast<long>(g.in_h)) continue;
          for (std::size_t kx = 0; kx < g.kw; ++kx) {
            const long ix = static_cast<long>(ox * g.stride + kx) -
                            static_cast<long>(g.pad);
            if (ix < 0 || ix >= static_cast<long>(g.in_w)) continue;
            plane_px[static_cast<std::size_t>(iy) * g.in_w +
                     static_cast<std::size_t>(ix)] +=
                row[(c * g.kh + ky) * g.kw + kx];
          }
        }
      }
    }
  }
  });
  return x;
}

Tensor zero_insert(const Tensor& x, std::size_t factor) {
  RERAMDL_CHECK_GE(factor, 1u);
  RERAMDL_CHECK_EQ(x.shape().rank(), 4u);
  const std::size_t n = x.shape()[0], c = x.shape()[1], h = x.shape()[2],
                    w = x.shape()[3];
  if (factor == 1) return x;
  const std::size_t dh = (h - 1) * factor + 1, dw = (w - 1) * factor + 1;
  Tensor y(Shape{n, c, dh, dw});
  for (std::size_t s = 0; s < n; ++s)
    for (std::size_t ch = 0; ch < c; ++ch)
      for (std::size_t iy = 0; iy < h; ++iy)
        for (std::size_t ix = 0; ix < w; ++ix)
          y.at(s, ch, iy * factor, ix * factor) = x.at(s, ch, iy, ix);
  return y;
}

Tensor zero_insert_adjoint(const Tensor& g_dilated, std::size_t factor,
                           std::size_t out_h, std::size_t out_w) {
  RERAMDL_CHECK_GE(factor, 1u);
  RERAMDL_CHECK_EQ(g_dilated.shape().rank(), 4u);
  if (factor == 1) return g_dilated;
  const std::size_t n = g_dilated.shape()[0], c = g_dilated.shape()[1];
  RERAMDL_CHECK_EQ(g_dilated.shape()[2], (out_h - 1) * factor + 1);
  RERAMDL_CHECK_EQ(g_dilated.shape()[3], (out_w - 1) * factor + 1);
  Tensor y(Shape{n, c, out_h, out_w});
  for (std::size_t s = 0; s < n; ++s)
    for (std::size_t ch = 0; ch < c; ++ch)
      for (std::size_t iy = 0; iy < out_h; ++iy)
        for (std::size_t ix = 0; ix < out_w; ++ix)
          y.at(s, ch, iy, ix) = g_dilated.at(s, ch, iy * factor, ix * factor);
  return y;
}

}  // namespace reramdl
