#include "tensor/tensor.hpp"

#include <cmath>

#include "common/check.hpp"

namespace reramdl {

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)), data_(shape_.numel(), fill) {}

float& Tensor::operator[](std::size_t i) {
  RERAMDL_CHECK_LT(i, data_.size());
  return data_[i];
}

float Tensor::operator[](std::size_t i) const {
  RERAMDL_CHECK_LT(i, data_.size());
  return data_[i];
}

std::size_t Tensor::flat_index(std::size_t i0, std::size_t i1, std::size_t i2,
                               std::size_t i3, std::size_t rank) const {
  RERAMDL_CHECK_EQ(shape_.rank(), rank);
  std::size_t idx = 0;
  const std::size_t is[4] = {i0, i1, i2, i3};
  for (std::size_t a = 0; a < rank; ++a) {
    RERAMDL_CHECK_LT(is[a], shape_.dim(a));
    idx = idx * shape_.dim(a) + is[a];
  }
  return idx;
}

float& Tensor::at(std::size_t i0) { return data_[flat_index(i0, 0, 0, 0, 1)]; }
float& Tensor::at(std::size_t i0, std::size_t i1) {
  return data_[flat_index(i0, i1, 0, 0, 2)];
}
float& Tensor::at(std::size_t i0, std::size_t i1, std::size_t i2) {
  return data_[flat_index(i0, i1, i2, 0, 3)];
}
float& Tensor::at(std::size_t i0, std::size_t i1, std::size_t i2, std::size_t i3) {
  return data_[flat_index(i0, i1, i2, i3, 4)];
}
float Tensor::at(std::size_t i0) const { return data_[flat_index(i0, 0, 0, 0, 1)]; }
float Tensor::at(std::size_t i0, std::size_t i1) const {
  return data_[flat_index(i0, i1, 0, 0, 2)];
}
float Tensor::at(std::size_t i0, std::size_t i1, std::size_t i2) const {
  return data_[flat_index(i0, i1, i2, 0, 3)];
}
float Tensor::at(std::size_t i0, std::size_t i1, std::size_t i2,
                 std::size_t i3) const {
  return data_[flat_index(i0, i1, i2, i3, 4)];
}

void Tensor::fill(float v) {
  for (auto& x : data_) x = v;
}

void Tensor::reuse(Shape new_shape) {
  shape_ = std::move(new_shape);
  data_.resize(shape_.numel());
}

void Tensor::release() {
  shape_ = Shape{};
  std::vector<float>().swap(data_);
}

Tensor Tensor::reshaped(Shape new_shape) const {
  RERAMDL_CHECK_EQ(new_shape.numel(), numel());
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.data_ = data_;
  return t;
}

Tensor& Tensor::operator+=(const Tensor& other) {
  RERAMDL_CHECK_EQ(numel(), other.numel());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  RERAMDL_CHECK_EQ(numel(), other.numel());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float s) {
  for (auto& x : data_) x *= s;
  return *this;
}

Tensor Tensor::uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& x : t.data_)
    x = static_cast<float>(rng.uniform(static_cast<double>(lo), static_cast<double>(hi)));
  return t;
}

Tensor Tensor::normal(Shape shape, Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  for (auto& x : t.data_)
    x = static_cast<float>(rng.normal(static_cast<double>(mean), static_cast<double>(stddev)));
  return t;
}

Tensor Tensor::he_normal(Shape shape, Rng& rng, std::size_t fan_in) {
  RERAMDL_CHECK_GT(fan_in, 0u);
  const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
  return normal(std::move(shape), rng, 0.0f, static_cast<float>(stddev));
}

float Tensor::sum() const {
  double acc = 0.0;
  for (float x : data_) acc += static_cast<double>(x);
  return static_cast<float>(acc);
}

float Tensor::abs_max() const {
  float m = 0.0f;
  for (float x : data_) m = std::max(m, std::abs(x));
  return m;
}

}  // namespace reramdl
