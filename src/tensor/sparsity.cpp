#include "tensor/sparsity.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/env.hpp"
#include "common/parallel.hpp"
#include "common/scratch.hpp"
#include "obs/obs.hpp"

namespace reramdl::sparsity {

namespace {

constexpr double kDefaultThreshold = 0.5;

// Negative means "unset": the next threshold() call reads the environment.
std::atomic<double>& threshold_override() {
  static std::atomic<double> v{-1.0};
  return v;
}

}  // namespace

ScanStats scan_rows(const float* data, std::size_t rows, std::size_t cols,
                    std::uint8_t* row_nonzero) {
  ScanStats s;
  s.rows = rows;
  s.cols = cols;
  if (rows == 0 || cols == 0) return s;

  // Per-row partials (zero count + row max) written by independent row-block
  // chunks, folded serially below. Integer sums and max are both
  // association-insensitive, so the fold is exact for any chunking.
  scratch::Buffer<std::uint32_t> row_zeros(rows);
  scratch::Buffer<float> row_max(rows);
  parallel::parallel_for(0, rows, 64, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      const float* row = data + i * cols;
      std::uint32_t zeros = 0;
      float m = 0.0f;
      for (std::size_t j = 0; j < cols; ++j) {
        const float a = std::fabs(row[j]);
        zeros += (row[j] == 0.0f) ? 1u : 0u;
        m = std::max(m, a);
      }
      row_zeros[i] = zeros;
      row_max[i] = m;
      if (row_nonzero != nullptr)
        row_nonzero[i] = (zeros == cols) ? 0u : 1u;
    }
  });

  double max_abs = 0.0;
  for (std::size_t i = 0; i < rows; ++i) {
    s.zero_elems += row_zeros[i];
    if (row_zeros[i] == cols) ++s.zero_rows;
    max_abs = std::max(max_abs, static_cast<double>(row_max[i]));
  }
  s.max_abs = std::max(max_abs, 1e-12);
  return s;
}

double threshold() {
  double t = threshold_override().load(std::memory_order_relaxed);
  if (t < 0.0) {
    t = env::env_double("RERAMDL_SPARSE_THRESHOLD", kDefaultThreshold, 0.0,
                        1.0);
    threshold_override().store(t, std::memory_order_relaxed);
  }
  return t;
}

void set_threshold(double t) {
  threshold_override().store(t < 0.0 ? -1.0 : std::min(t, 1.0),
                             std::memory_order_relaxed);
}

bool select_sparse(double zero_fraction) {
  const double t = threshold();
  return t > 0.0 && zero_fraction >= t;
}

void record_selection(double zero_fraction, bool sparse) {
  if (!obs::metrics_enabled()) return;
  auto& reg = obs::Registry::instance();
  static obs::Histogram& fraction = reg.histogram("sparsity.fraction");
  static obs::Counter& sparse_calls = reg.counter("sparsity.sparse_calls");
  static obs::Counter& dense_calls = reg.counter("sparsity.dense_calls");
  fraction.record(zero_fraction * 100.0);
  (sparse ? sparse_calls : dense_calls).add();
}

void count_rows_skipped(std::uint64_t n) {
  if (n == 0 || !obs::metrics_enabled()) return;
  static obs::Counter& skipped =
      obs::Registry::instance().counter("sparsity.rows_skipped");
  skipped.add(n);
}

}  // namespace reramdl::sparsity
