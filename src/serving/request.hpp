// Request/response types for the multi-tenant serving layer (DESIGN.md §14).
//
// The serving subsystem runs in *virtual time*: every request carries a
// microsecond arrival stamp from the workload trace, admission and batching
// decisions compare those stamps (never the wall clock), and completions are
// stamped with a modeled per-batch service latency. Compute is real — each
// launched batch runs the tenant's network through its crossbar executor on
// the shared thread pool — but the latency accounting is simulated, which is
// what makes a replay bit-reproducible for any RERAMDL_THREADS.
#pragma once

#include <cstddef>
#include <cstdint>

#include "tensor/tensor.hpp"

namespace reramdl::serving {

// What the admission controller does when a tenant's queue is full.
enum class AdmissionPolicy {
  kReject,     // refuse the new request (client sees an error)
  kShedOldest  // drop the oldest queued request to make room (stale results
               // are worth less than fresh ones under overload)
};

enum class RequestStatus : std::uint8_t {
  kCompleted = 0,
  kRejected = 1,  // refused at admission (queue full, kReject policy)
  kShed = 2       // admitted but later dropped by kShedOldest
};

// One inference request: a single sample for tenant `tenant`'s model.
struct Request {
  std::uint64_t id = 0;
  std::size_t tenant = 0;
  std::uint64_t arrival_us = 0;  // virtual time
  Tensor input;                  // one sample, no batch dim (e.g. [c, h, w])
};

// Terminal record for one request. For kCompleted, `output` holds the
// model's output row and the three stamps bracket the request's life:
// queue wait = dispatch - arrival, service = done - dispatch,
// end-to-end = done - arrival (all virtual microseconds). Rejected requests
// carry only the arrival stamp; shed requests additionally stamp `done_us`
// with the shed time.
struct Outcome {
  std::uint64_t id = 0;
  std::size_t tenant = 0;
  RequestStatus status = RequestStatus::kCompleted;
  std::uint64_t arrival_us = 0;
  std::uint64_t dispatch_us = 0;
  std::uint64_t done_us = 0;
  std::size_t batch_size = 0;  // size of the batch the request rode in
  Tensor output;

  std::uint64_t queue_us() const { return dispatch_us - arrival_us; }
  std::uint64_t service_us() const { return done_us - dispatch_us; }
  std::uint64_t e2e_us() const { return done_us - arrival_us; }
};

// Serving policy knobs. The modeled service latency of a launched batch of b
// requests is service_overhead_us + b * service_per_request_us — the fixed
// per-invocation cost (driver setup, peripheral conversion pipeline fill)
// plus a per-sample cost, mirroring how the batched crossbar kernel
// amortizes its per-call overhead (DESIGN.md §8). The virtual-time latency
// percentiles derive from this model; wall-clock throughput is measured
// separately from the real compute.
struct ServingConfig {
  std::size_t max_batch = 32;          // dynamic batcher cap
  std::uint64_t max_wait_us = 2000;    // oldest request's batching window
  std::size_t queue_depth = 256;       // per-tenant admission bound
  AdmissionPolicy admission = AdmissionPolicy::kReject;
  std::size_t num_chips = 1;           // shards; tenants round-robin onto chips
  std::uint64_t service_overhead_us = 150;
  std::uint64_t service_per_request_us = 50;

  std::uint64_t service_us(std::size_t batch) const {
    return service_overhead_us +
           service_per_request_us * static_cast<std::uint64_t>(batch);
  }
};

}  // namespace reramdl::serving
