#include "serving/server.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <limits>
#include <optional>
#include <string>

#include "common/check.hpp"
#include "obs/obs.hpp"
#include "serving/batcher.hpp"

namespace reramdl::serving {

namespace {

// Serving-layer instruments. The batch-size histogram is the batching
// policy's primary observable: its mass moving from 1 toward max_batch is
// what turns the PR-3 kernel speedup into aggregate throughput.
void count_batch(std::size_t tenant, std::size_t batch,
                 std::uint64_t service_us) {
  if (!obs::metrics_enabled()) return;
  auto& reg = obs::Registry::instance();
  static obs::Counter& batches = reg.counter("serving.batches");
  static obs::Counter& completed = reg.counter("serving.requests_completed");
  static obs::Histogram& sizes = reg.histogram("serving.batch_size");
  batches.add();
  completed.add(batch);
  sizes.record(static_cast<double>(batch));
  obs::Attribution::instance().add("serving/tenant" + std::to_string(tenant),
                                   "requests", static_cast<double>(batch));
  obs::Attribution::instance().add("serving/tenant" + std::to_string(tenant),
                                   "service_us",
                                   static_cast<double>(service_us));
}

void count_request_latency(std::uint64_t queue_us, std::uint64_t e2e_us) {
  if (!obs::metrics_enabled()) return;
  auto& reg = obs::Registry::instance();
  static obs::Histogram& queue_h = reg.histogram("serving.queue_us");
  static obs::Histogram& e2e_h = reg.histogram("serving.e2e_us");
  queue_h.record(static_cast<double>(queue_us));
  e2e_h.record(static_cast<double>(e2e_us));
}

void count_admission(bool rejected) {
  if (!obs::metrics_enabled()) return;
  auto& reg = obs::Registry::instance();
  static obs::Counter& submitted = reg.counter("serving.requests_submitted");
  static obs::Counter& rej = reg.counter("serving.requests_rejected");
  static obs::Counter& shed = reg.counter("serving.requests_shed");
  if (rejected) rej.add();
  else shed.add();
  (void)submitted;
}

void count_submitted() {
  if (!obs::metrics_enabled()) return;
  static obs::Counter& submitted =
      obs::Registry::instance().counter("serving.requests_submitted");
  submitted.add();
}

}  // namespace

struct Server::Tenant {
  nn::Sequential* net = nullptr;
  std::unique_ptr<core::CrossbarExecutor> executor;
  std::unique_ptr<TenantQueue> queue;
  std::size_t chip = 0;
  // Scheduler-written, possibly polled concurrently via tenant_counters().
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> batches{0};
};

Server::Server(const ServingConfig& cfg) : cfg_(cfg) {
  RERAMDL_CHECK_GT(cfg_.max_batch, 0u);
  RERAMDL_CHECK_GT(cfg_.num_chips, 0u);
  chip_free_us_.assign(cfg_.num_chips, 0);
  maint_.assign(cfg_.num_chips, nullptr);
}

Server::~Server() = default;

std::size_t Server::add_tenant(nn::Sequential& net,
                               const core::AcceleratorConfig& accel) {
  const std::size_t t = tenants_.size();
  auto tenant = std::make_unique<Tenant>();
  tenant->net = &net;
  tenant->executor = std::make_unique<core::CrossbarExecutor>(net, accel);
  tenant->queue =
      std::make_unique<TenantQueue>(cfg_.queue_depth, cfg_.admission);
  tenant->chip = t % cfg_.num_chips;
  // Book the tenant's per-tile crossbar work under the serving tree, so the
  // run report attributes chip time to tenants (serving/tenant<t>/layer<l>).
  std::vector<std::string> paths;
  paths.reserve(tenant->executor->num_grids());
  for (std::size_t l = 0; l < tenant->executor->num_grids(); ++l)
    paths.push_back("serving/tenant" + std::to_string(t) + "/layer" +
                    std::to_string(l));
  tenant->executor->set_attribution_paths(paths);
  tenants_.push_back(std::move(tenant));
  return t;
}

std::size_t Server::tenant_chip(std::size_t tenant) const {
  RERAMDL_CHECK_LT(tenant, tenants_.size());
  return tenants_[tenant]->chip;
}

void Server::submit(Request r) {
  RERAMDL_CHECK_LT(r.tenant, tenants_.size());
  count_submitted();
  Tenant& t = *tenants_[r.tenant];
  // Stash what the failure outcomes need before the queue takes ownership.
  const std::uint64_t id = r.id, arrival = r.arrival_us;
  const std::size_t tenant = r.tenant;
  TenantQueue::AdmitResult res = t.queue->admit(std::move(r));
  if (!res.admitted) {
    count_admission(/*rejected=*/true);
    Outcome o;
    o.id = id;
    o.tenant = tenant;
    o.status = RequestStatus::kRejected;
    o.arrival_us = arrival;
    o.done_us = arrival;
    record_outcome(std::move(o));
  } else if (res.shed) {
    count_admission(/*rejected=*/false);
    Outcome o;
    o.id = res.shed->id;
    o.tenant = res.shed->tenant;
    o.status = RequestStatus::kShed;
    o.arrival_us = res.shed->arrival_us;
    o.done_us = arrival;  // dropped when the newer request displaced it
    record_outcome(std::move(o));
  }
}

void Server::advance(std::uint64_t now_us) {
  // Launch in global launch-time order: repeatedly pick the earliest
  // (launch, tenant) pair at or before now. Each launch moves its chip's
  // availability forward, which can delay (and thereby grow) later batches
  // — evaluating triggers fresh each round keeps that feedback exact.
  for (;;) {
    std::uint64_t best_launch = std::numeric_limits<std::uint64_t>::max();
    std::size_t best_tenant = tenants_.size();
    for (std::size_t t = 0; t < tenants_.size(); ++t) {
      const std::optional<std::uint64_t> trigger =
          batch_trigger_us(*tenants_[t]->queue, cfg_);
      if (!trigger) continue;
      const std::uint64_t l =
          launch_us(*trigger, chip_free_us_[tenants_[t]->chip]);
      if (l < best_launch) {
        best_launch = l;
        best_tenant = t;
      }
    }
    if (best_tenant == tenants_.size() || best_launch > now_us) return;
    launch(best_tenant, best_launch);
  }
}

void Server::drain() { advance(std::numeric_limits<std::uint64_t>::max()); }

void Server::launch(std::size_t tenant, std::uint64_t at_us) {
  Tenant& t = *tenants_[tenant];
  // Maintenance arbitration: the chip's engine ages its arrays up to the
  // launch moment and runs whatever repairs its policy allows; the returned
  // dispatch time reflects any maintenance-imposed delay.
  if (maint_[t.chip] != nullptr)
    at_us = maint_[t.chip]->on_demand(chip_free_us_[t.chip], at_us);
  std::vector<Request> batch = t.queue->pop_batch(cfg_.max_batch);
  RERAMDL_CHECK(!batch.empty());
  const std::size_t b = batch.size();

  // Stack the samples into one [b, ...] tensor; every request must carry
  // the tenant model's input shape.
  const Shape& sample = batch[0].input.shape();
  std::vector<std::size_t> dims;
  dims.reserve(sample.rank() + 1);
  dims.push_back(b);
  for (std::size_t d = 0; d < sample.rank(); ++d) dims.push_back(sample[d]);
  Tensor x(Shape{dims});
  const std::size_t elems = sample.numel();
  for (std::size_t i = 0; i < b; ++i) {
    RERAMDL_CHECK(batch[i].input.shape() == sample);
    std::memcpy(x.data() + i * elems, batch[i].input.data(),
                elems * sizeof(float));
  }

  // Real compute: the tenant's crossbar-hooked forward on the shared pool.
  const Tensor y = t.net->forward(x, /*train=*/false);
  RERAMDL_CHECK_EQ(y.shape()[0], b);
  const std::size_t out_elems = y.numel() / b;

  const std::uint64_t service = cfg_.service_us(b);
  const std::uint64_t done = at_us + service;
  chip_free_us_[t.chip] = done;
  t.completed.fetch_add(b, std::memory_order_relaxed);
  t.batches.fetch_add(1, std::memory_order_relaxed);
  count_batch(tenant, b, service);

  for (std::size_t i = 0; i < b; ++i) {
    Outcome o;
    o.id = batch[i].id;
    o.tenant = tenant;
    o.status = RequestStatus::kCompleted;
    o.arrival_us = batch[i].arrival_us;
    o.dispatch_us = at_us;
    o.done_us = done;
    o.batch_size = b;
    o.output = Tensor(Shape{out_elems});
    std::memcpy(o.output.data(), y.data() + i * out_elems,
                out_elems * sizeof(float));
    count_request_latency(o.queue_us(), o.e2e_us());
    record_outcome(std::move(o));
  }
  // Step tick for the time-series snapshots: one per launched batch.
  obs::snapshot_tick();
}

void Server::record_outcome(Outcome o) {
  std::lock_guard<std::mutex> lock(outcomes_mu_);
  outcomes_.push_back(std::move(o));
}

std::vector<Outcome> Server::take_outcomes() {
  std::lock_guard<std::mutex> lock(outcomes_mu_);
  std::vector<Outcome> out = std::move(outcomes_);
  outcomes_.clear();
  return out;
}

std::vector<Outcome> Server::run_replay(std::vector<Request> trace) {
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (i > 0)
      RERAMDL_CHECK_GE(trace[i].arrival_us, trace[i - 1].arrival_us);
    // A request arriving exactly at a pending trigger misses that batch
    // (launch-then-admit), so the tie-break is fixed and replayable.
    advance(trace[i].arrival_us);
    submit(std::move(trace[i]));
  }
  drain();
  std::vector<Outcome> out = take_outcomes();
  std::sort(out.begin(), out.end(),
            [](const Outcome& a, const Outcome& b) { return a.id < b.id; });
  return out;
}

Server::TenantCounters Server::tenant_counters(std::size_t tenant) const {
  RERAMDL_CHECK_LT(tenant, tenants_.size());
  const Tenant& t = *tenants_[tenant];
  TenantCounters c;
  c.submitted = t.queue->submitted();
  c.completed = t.completed.load(std::memory_order_relaxed);
  c.rejected = t.queue->rejected();
  c.shed = t.queue->shed();
  c.batches = t.batches.load(std::memory_order_relaxed);
  c.queued = t.queue->size();
  return c;
}

bool Server::accounting_conserved() const {
  for (std::size_t t = 0; t < tenants_.size(); ++t) {
    const TenantCounters c = tenant_counters(t);
    if (c.submitted != c.completed + c.rejected + c.shed + c.queued)
      return false;
  }
  return true;
}

std::uint64_t Server::chip_free_us(std::size_t c) const {
  RERAMDL_CHECK_LT(c, chip_free_us_.size());
  return chip_free_us_[c];
}

void Server::attach_maintenance(std::size_t chip,
                                maint::MaintenanceEngine* engine) {
  RERAMDL_CHECK_LT(chip, maint_.size());
  maint_[chip] = engine;
}

core::CrossbarExecutor& Server::tenant_executor(std::size_t tenant) {
  RERAMDL_CHECK_LT(tenant, tenants_.size());
  return *tenants_[tenant]->executor;
}

}  // namespace reramdl::serving
