#include "serving/workload.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace reramdl::serving {

namespace {

// splitmix64 finalizer — the same stream-splitting construction the fault
// maps use, giving each (seed, tenant, sequence) its own payload stream.
std::uint64_t mix(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double rate_at(const TrafficSpec& spec, std::uint64_t t_us) {
  if (spec.burst_factor <= 1.0 || spec.burst_duty <= 0.0 ||
      spec.burst_period_us == 0)
    return spec.rate_rps;
  const std::uint64_t phase = t_us % spec.burst_period_us;
  const double burst_end =
      spec.burst_duty * static_cast<double>(spec.burst_period_us);
  return static_cast<double>(phase) < burst_end
             ? spec.rate_rps * spec.burst_factor
             : spec.rate_rps;
}

}  // namespace

std::vector<Request> generate_trace(const TrafficSpec& spec,
                                    const Shape& input_shape) {
  RERAMDL_CHECK_GT(spec.tenants, 0u);
  RERAMDL_CHECK_GT(spec.rate_rps, 0.0);

  std::vector<Request> trace;
  for (std::size_t t = 0; t < spec.tenants; ++t) {
    Rng arrivals(mix(spec.seed ^ (0xa11ced00ULL + t)));
    double now_us = 0.0;
    std::uint64_t seq = 0;
    for (;;) {
      // Exponential gap at the instantaneous rate (piecewise-constant
      // modulation evaluated at the current time — exact within a phase,
      // and deterministic everywhere, which is all the replay needs).
      const double rate_per_us =
          rate_at(spec, static_cast<std::uint64_t>(now_us)) * 1e-6;
      const double u = arrivals.uniform();
      now_us += -std::log(1.0 - u) / rate_per_us;
      if (now_us >= static_cast<double>(spec.duration_us)) break;
      Request r;
      r.tenant = t;
      r.arrival_us = static_cast<std::uint64_t>(now_us);
      Rng payload(mix(spec.seed ^ mix(0xdeadbea7ULL + t) ^ seq));
      r.input = Tensor(input_shape);
      for (std::size_t i = 0; i < r.input.numel(); ++i)
        r.input[i] = static_cast<float>(payload.uniform());
      trace.push_back(std::move(r));
      ++seq;
    }
  }
  std::stable_sort(trace.begin(), trace.end(),
                   [](const Request& a, const Request& b) {
                     if (a.arrival_us != b.arrival_us)
                       return a.arrival_us < b.arrival_us;
                     return a.tenant < b.tenant;
                   });
  for (std::size_t i = 0; i < trace.size(); ++i) trace[i].id = i;
  return trace;
}

}  // namespace reramdl::serving
