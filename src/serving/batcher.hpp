// Dynamic batching policy: when does a tenant's queue want to launch?
//
// Pure virtual-time logic, shared by the scheduler and the policy unit
// tests. A non-empty queue asks to launch at
//
//   trigger = min( arrival of the max_batch-th oldest request,   [batch full]
//                  oldest arrival + max_wait_us )                [window up]
//
// i.e. a full batch launches the instant it fills, and a partial batch
// launches when its oldest request has waited the whole batching window.
// The actual launch additionally waits for the tenant's chip:
// launch = max(trigger, chip_free_us); requests that arrive before the
// launch moment still join the batch (up to max_batch), which is exactly
// how a busy chip grows batches under load.
//
// Everything here depends only on queue contents and the config, never on
// the wall clock or thread count — the scheduler's determinism rests on it.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>

#include "serving/queue.hpp"
#include "serving/request.hpp"

namespace reramdl::serving {

// Virtual time at which `q` wants to launch a batch; nullopt when empty.
inline std::optional<std::uint64_t> batch_trigger_us(const TenantQueue& q,
                                                     const ServingConfig& cfg) {
  const std::optional<std::uint64_t> oldest = q.arrival_at(0);
  if (!oldest) return std::nullopt;
  std::uint64_t trigger = *oldest + cfg.max_wait_us;
  if (cfg.max_batch >= 1) {
    const std::optional<std::uint64_t> full = q.arrival_at(cfg.max_batch - 1);
    if (full) trigger = std::min(trigger, *full);
  }
  return trigger;
}

// Launch moment once the chip's availability is folded in.
inline std::uint64_t launch_us(std::uint64_t trigger_us,
                               std::uint64_t chip_free_us) {
  return std::max(trigger_us, chip_free_us);
}

}  // namespace reramdl::serving
