// Multi-tenant inference server over the crossbar fast path (DESIGN.md §14).
//
// The Server multiplexes many model instances (tenants) across a set of
// simulated chips. Each tenant owns a bounded admission queue
// (serving/queue.hpp); the dynamic batcher (serving/batcher.hpp) coalesces a
// tenant's pending requests into a single batched forward pass through that
// tenant's CrossbarExecutor — the batch-level dispatch the PR-3/PR-6 kernels
// were built for — and the scheduler orders launches across tenants in
// virtual time, serializing batches per chip.
//
// Determinism contract: batch composition and all latency stamps are pure
// functions of (trace, config) — triggers compare virtual arrival stamps,
// ties break on the lowest tenant id, per-chip availability is modeled with
// service_us(), and the wall clock is never consulted. The compute inside a
// launch is the batched crossbar path, which is bit-identical for any
// RERAMDL_THREADS, so an entire replay (outputs + outcome records) is
// bit-reproducible across thread counts. Wall-clock throughput is measured
// by the caller around run_replay(); it is the only non-deterministic
// number.
//
// Concurrency: submit() is thread-safe (per-tenant queue locks); advance(),
// drain(), and run_replay() constitute the scheduler and must be driven by
// one thread at a time (a batch's forward pass parallelizes internally on
// the shared pool — nesting scheduler threads on top would oversubscribe
// it, see common/parallel.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/accelerator_config.hpp"
#include "core/functional.hpp"
#include "maint/engine.hpp"
#include "nn/sequential.hpp"
#include "serving/queue.hpp"
#include "serving/request.hpp"

namespace reramdl::serving {

class Server {
 public:
  explicit Server(const ServingConfig& cfg);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Registers a tenant model and programs its crossbar executor; `net` must
  // outlive the server. Tenants land on chips round-robin
  // (chip = tenant % num_chips) and their grids are attributed under
  // "serving/tenant<t>/layer<l>". Returns the tenant id.
  std::size_t add_tenant(nn::Sequential& net,
                         const core::AcceleratorConfig& accel);

  std::size_t num_tenants() const { return tenants_.size(); }
  std::size_t tenant_chip(std::size_t tenant) const;

  // Admission at virtual time r.arrival_us. Rejected/shed requests become
  // Outcomes immediately. Thread-safe.
  void submit(Request r);

  // Scheduler: launches every batch whose launch moment is <= now_us, in
  // launch-time order (ties: lowest tenant id). One thread at a time.
  void advance(std::uint64_t now_us);

  // Flushes everything still queued (equivalent to advance(+inf)).
  void drain();

  // Moves out the outcome records accumulated since the last call.
  std::vector<Outcome> take_outcomes();

  // Deterministic replay: trace must be sorted by arrival_us. Each arrival
  // first advances the scheduler to its stamp, then submits; a final drain
  // flushes the tail. Returns every outcome, sorted by request id.
  std::vector<Outcome> run_replay(std::vector<Request> trace);

  // Per-tenant accounting. Invariant (checked by tests and the bench):
  // submitted == completed + rejected + shed + still-queued.
  struct TenantCounters {
    std::uint64_t submitted = 0, completed = 0, rejected = 0, shed = 0;
    std::uint64_t batches = 0;
    std::size_t queued = 0;
  };
  TenantCounters tenant_counters(std::size_t tenant) const;
  bool accounting_conserved() const;

  // Modeled availability of chip `c` (virtual µs); the last completion time
  // once traffic has flowed.
  std::uint64_t chip_free_us(std::size_t c) const;

  // Attaches a maintenance engine to chip `c` (DESIGN.md §16): every batch
  // launch on that chip is routed through engine->on_demand(), so
  // maintenance ages/repairs the chip's arrays in virtual time and — per
  // its arbitration policy — may delay the dispatch (the delay lands in
  // Outcome::dispatch_us, keeping latency accounting faithful). The engine
  // must outlive the server; pass nullptr to detach.
  void attach_maintenance(std::size_t chip, maint::MaintenanceEngine* engine);

  // The tenant's crossbar executor, for registering it with a maintenance
  // engine (MaintenanceEngine::manage).
  core::CrossbarExecutor& tenant_executor(std::size_t tenant);

  const ServingConfig& config() const { return cfg_; }

 private:
  struct Tenant;

  // Launches one batch for `tenant` at virtual time `at_us`.
  void launch(std::size_t tenant, std::uint64_t at_us);
  void record_outcome(Outcome o);

  ServingConfig cfg_;
  std::vector<std::unique_ptr<Tenant>> tenants_;
  std::vector<std::uint64_t> chip_free_us_;  // per chip
  std::vector<maint::MaintenanceEngine*> maint_;  // per chip, may be null

  std::mutex outcomes_mu_;
  std::vector<Outcome> outcomes_;
};

}  // namespace reramdl::serving
