// Deterministic heavy-traffic workload generation for the serving layer.
//
// Produces a replayable arrival trace: per-tenant Poisson arrivals whose
// rate is modulated by a periodic burst phase (an on/off modulated Poisson
// process — the standard stand-in for diurnal spikes and thundering herds),
// with every inter-arrival gap and every request payload drawn from
// explicitly seeded Rngs. Two calls with the same spec produce bit-identical
// traces on any machine, which is what lets the serving bench assert replay
// reproducibility across thread counts.
#pragma once

#include <cstdint>
#include <vector>

#include "serving/request.hpp"
#include "tensor/shape.hpp"

namespace reramdl::serving {

struct TrafficSpec {
  std::size_t tenants = 4;
  std::uint64_t duration_us = 1'000'000;
  double rate_rps = 2000.0;  // per-tenant base Poisson rate

  // Burst modulation: within each burst_period_us window, the first
  // burst_duty fraction runs at rate_rps * burst_factor, the rest at the
  // base rate. burst_factor = 1 (or duty 0) degenerates to pure Poisson.
  double burst_factor = 4.0;
  std::uint64_t burst_period_us = 200'000;
  double burst_duty = 0.25;

  std::uint64_t seed = 2018;
};

// The full trace, sorted by arrival_us (ties broken by tenant id), with
// globally unique request ids assigned in arrival order. Each request's
// input is a fresh sample of shape `input_shape`, uniform in [0, 1) from a
// per-(tenant, sequence) seeded stream — independent of how the per-tenant
// streams interleave.
std::vector<Request> generate_trace(const TrafficSpec& spec,
                                    const Shape& input_shape);

}  // namespace reramdl::serving
