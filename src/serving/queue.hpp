// Bounded per-tenant request queue with admission control.
//
// One TenantQueue guards one tenant's pending requests. Producers call
// admit() from any thread (the critical section is a deque push plus
// counter bumps — "lock-free-ish": no allocation in steady state beyond the
// deque's block reuse, and never any compute under the lock); the scheduler
// thread calls oldest_arrival_us()/size() to evaluate batch triggers and
// pop_batch() to extract up to max_batch requests in FIFO order.
//
// Accounting invariant (enforced by tests and the serving bench's exit
// code): submitted() == completed-by-server + rejected() + shed() + size().
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "serving/request.hpp"

namespace reramdl::serving {

class TenantQueue {
 public:
  TenantQueue(std::size_t depth, AdmissionPolicy policy)
      : depth_(depth == 0 ? 1 : depth), policy_(policy) {}

  TenantQueue(const TenantQueue&) = delete;
  TenantQueue& operator=(const TenantQueue&) = delete;

  // Admission: on a full queue, kReject refuses `r` (returned in
  // `rejected`), kShedOldest pops the oldest pending request (returned in
  // `shed`) and admits `r`. At most one of the two optionals is set.
  struct AdmitResult {
    bool admitted = false;
    std::optional<Request> shed;  // victim under kShedOldest
  };
  AdmitResult admit(Request r) {
    std::lock_guard<std::mutex> lock(mu_);
    ++submitted_;
    AdmitResult res;
    if (q_.size() >= depth_) {
      if (policy_ == AdmissionPolicy::kReject) {
        ++rejected_;
        return res;
      }
      res.shed = std::move(q_.front());
      q_.pop_front();
      ++shed_;
    }
    q_.push_back(std::move(r));
    res.admitted = true;
    return res;
  }

  // FIFO batch extraction: up to max_batch oldest requests.
  std::vector<Request> pop_batch(std::size_t max_batch) {
    std::lock_guard<std::mutex> lock(mu_);
    const std::size_t n = std::min(max_batch, q_.size());
    std::vector<Request> batch;
    batch.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      batch.push_back(std::move(q_.front()));
      q_.pop_front();
    }
    return batch;
  }

  // Arrival stamp of the request at FIFO position `pos` (0 = oldest);
  // nullopt when fewer than pos+1 requests are queued. pos = max_batch-1
  // gives the batcher its "queue reached a full batch at this time" trigger.
  std::optional<std::uint64_t> arrival_at(std::size_t pos) const {
    std::lock_guard<std::mutex> lock(mu_);
    if (pos >= q_.size()) return std::nullopt;
    return q_[pos].arrival_us;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return q_.size();
  }
  std::uint64_t submitted() const {
    std::lock_guard<std::mutex> lock(mu_);
    return submitted_;
  }
  std::uint64_t rejected() const {
    std::lock_guard<std::mutex> lock(mu_);
    return rejected_;
  }
  std::uint64_t shed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return shed_;
  }

 private:
  const std::size_t depth_;
  const AdmissionPolicy policy_;
  mutable std::mutex mu_;
  std::deque<Request> q_;
  std::uint64_t submitted_ = 0, rejected_ = 0, shed_ = 0;
};

}  // namespace reramdl::serving
