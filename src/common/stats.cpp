#include "common/stats.hpp"

#include <cmath>

#include "common/check.hpp"

namespace reramdl {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStat::merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  n_ += other.n_;
}

double RunningStat::mean() const {
  RERAMDL_CHECK_GT(n_, 0u);
  return mean_;
}

double RunningStat::variance() const {
  RERAMDL_CHECK_GT(n_, 0u);
  return m2_ / static_cast<double>(n_);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::min() const {
  RERAMDL_CHECK_GT(n_, 0u);
  return min_;
}

double RunningStat::max() const {
  RERAMDL_CHECK_GT(n_, 0u);
  return max_;
}

double geomean(const std::vector<double>& values) {
  RERAMDL_CHECK(!values.empty());
  double log_sum = 0.0;
  for (double v : values) {
    RERAMDL_CHECK_GT(v, 0.0);
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double rmse(const std::vector<float>& a, const std::vector<float>& b) {
  RERAMDL_CHECK_EQ(a.size(), b.size());
  RERAMDL_CHECK(!a.empty());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(a.size()));
}

double max_abs_diff(const std::vector<float>& a, const std::vector<float>& b) {
  RERAMDL_CHECK_EQ(a.size(), b.size());
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = std::abs(static_cast<double>(a[i]) - static_cast<double>(b[i]));
    if (d > m) m = d;
  }
  return m;
}

}  // namespace reramdl
