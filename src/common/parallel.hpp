// Host-parallel execution engine: a lazily-initialized shared thread pool
// with deterministic work decomposition.
//
// Determinism contract: the chunk decomposition of a [begin, end) range
// depends only on (begin, end, grain) — never on the thread count — and
// parallel_reduce joins per-chunk partials in a fixed left-to-right tree
// order. A kernel whose chunks write disjoint outputs therefore produces
// bit-identical results for any RERAMDL_THREADS setting, which the tier-1
// tests rely on for reproducibility.
//
// Sizing: RERAMDL_THREADS in the environment sets the worker count
// (default: std::thread::hardware_concurrency). A value of 1 disables the
// pool entirely — every parallel_for runs inline on the calling thread.
// set_thread_count() overrides the environment at runtime (used by the
// scaling bench and the determinism tests to sweep thread counts in one
// process).
//
// Nested parallel_for calls (a chunk body that itself calls parallel_for)
// execute the inner loop serially on the worker thread — no deadlock, no
// oversubscription.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace reramdl::parallel {

// Current target thread count (>= 1). First call reads RERAMDL_THREADS.
std::size_t thread_count();

// Override the thread count; 0 restores the environment/hardware default.
// Resizes the shared pool on the next parallel region.
void set_thread_count(std::size_t n);

// Splits [begin, end) into ceil(range / grain) chunks of at most `grain`
// iterations and invokes body(chunk_begin, chunk_end) for each, in parallel
// when the pool is enabled. Chunk boundaries depend only on the range and
// grain. Safe with empty ranges (no-op) and grain > range (one chunk);
// grain == 0 is treated as 1. Exceptions thrown by the body are rethrown on
// the calling thread (first one wins).
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body);

// Deterministic reduction: maps each chunk to a partial with
// map(chunk_begin, chunk_end), then combines the partials with join() in a
// fixed left-to-right binary-tree order that is identical for every thread
// count. Returns `identity` for an empty range.
double parallel_reduce(std::size_t begin, std::size_t end, std::size_t grain,
                       double identity,
                       const std::function<double(std::size_t, std::size_t)>& map,
                       const std::function<double(double, double)>& join);

// True while the calling thread is executing inside a pool worker (used to
// serialize nested parallel regions).
bool in_parallel_region();

}  // namespace reramdl::parallel
