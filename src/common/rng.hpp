// Deterministic pseudo-random number generation.
//
// Every stochastic component of the simulator (weight init, synthetic
// datasets, device variation, fault injection) draws from an explicitly
// seeded Rng so that runs — and therefore tests and benchmark tables — are
// reproducible bit-for-bit across machines.
#pragma once

#include <cstdint>
#include <vector>

namespace reramdl {

// xoshiro256** seeded via splitmix64. Small, fast, and good enough
// statistical quality for Monte-Carlo device-variation sweeps.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  std::uint64_t next_u64();

  // Uniform in [0, 1).
  double uniform();
  // Uniform in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n);
  // Standard normal via Box-Muller (cached second value).
  double normal();
  double normal(double mean, double stddev);
  // Lognormal with the given sigma of the underlying normal, mean 1 of the
  // underlying normal's exp adjusted so E[value] == 1 (used for conductance
  // variation: multiplicative noise that does not bias the mean).
  double lognormal_unit_mean(double sigma);
  // Bernoulli trial.
  bool bernoulli(double p);

  // Derive an independent stream (for per-module seeding).
  Rng fork();

 private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

// Fisher-Yates shuffle of an index permutation [0, n).
std::vector<std::size_t> shuffled_indices(std::size_t n, Rng& rng);

}  // namespace reramdl
