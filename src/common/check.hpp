// Lightweight precondition / invariant checking used across the simulator.
//
// CHECK(cond) and the comparison forms throw reramdl::CheckError (a
// std::logic_error) with the failing expression and source location. They are
// always on: a PIM simulator silently computing on a mis-shaped tensor or an
// out-of-range conductance produces plausible garbage, which is far more
// expensive than the branch.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace reramdl {

class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_fail(const char* expr, const char* file, int line,
                                    const std::string& extra = {}) {
  std::ostringstream os;
  os << "CHECK failed: " << expr << " at " << file << ":" << line;
  if (!extra.empty()) os << " (" << extra << ")";
  throw CheckError(os.str());
}

template <typename A, typename B>
[[noreturn]] void check_cmp_fail(const char* expr, const char* file, int line,
                                 const A& a, const B& b) {
  std::ostringstream os;
  os << "lhs=" << a << " rhs=" << b;
  check_fail(expr, file, line, os.str());
}

}  // namespace detail
}  // namespace reramdl

#define RERAMDL_CHECK(cond)                                            \
  do {                                                                 \
    if (!(cond)) ::reramdl::detail::check_fail(#cond, __FILE__, __LINE__); \
  } while (false)

// Operands are captured by value: expressions like std::max(x, y) return
// references to temporaries that would dangle past the initializer.
#define RERAMDL_CHECK_CMP(a, b, op)                                         \
  do {                                                                      \
    const auto rerdl_a_ = (a);                                              \
    const auto rerdl_b_ = (b);                                              \
    if (!(rerdl_a_ op rerdl_b_))                                            \
      ::reramdl::detail::check_cmp_fail(#a " " #op " " #b, __FILE__,        \
                                        __LINE__, rerdl_a_, rerdl_b_);      \
  } while (false)

#define RERAMDL_CHECK_EQ(a, b) RERAMDL_CHECK_CMP(a, b, ==)
#define RERAMDL_CHECK_NE(a, b) RERAMDL_CHECK_CMP(a, b, !=)
#define RERAMDL_CHECK_LT(a, b) RERAMDL_CHECK_CMP(a, b, <)
#define RERAMDL_CHECK_LE(a, b) RERAMDL_CHECK_CMP(a, b, <=)
#define RERAMDL_CHECK_GT(a, b) RERAMDL_CHECK_CMP(a, b, >)
#define RERAMDL_CHECK_GE(a, b) RERAMDL_CHECK_CMP(a, b, >=)
