#include "common/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/env.hpp"
#include "obs/obs.hpp"

namespace reramdl::parallel {

namespace {

thread_local bool tls_in_region = false;

// Pool-side observability. All counters live under "pool.*": job/chunk
// totals, a queue-depth gauge (chunks outstanding in the running job), a
// chunk-latency histogram, and per-worker busy-time counters keyed by the
// tracer's thread id. Everything is behind the enabled fast paths, so the
// RERAMDL_TRACE/RERAMDL_METRICS-unset cost is two relaxed loads per chunk.
void obs_record_chunk(std::uint64_t dur_ns) {
  if (obs::metrics_enabled()) {
    auto& reg = obs::Registry::instance();
    static obs::Histogram& chunk_ns = reg.histogram("pool.chunk_ns");
    static obs::Counter& busy_ns = reg.counter("pool.busy_ns");
    chunk_ns.record(static_cast<double>(dur_ns));
    busy_ns.add(dur_ns);
    // Per-worker busy time; the handle is cached per thread because the
    // name depends on the calling thread's id.
    thread_local obs::Counter* worker_busy = &reg.counter(
        "pool.busy_ns.tid" + std::to_string(obs::current_tid()));
    worker_busy->add(dur_ns);
  }
}

// Returns a start timestamp, or kObsOff when nothing is observing.
constexpr std::uint64_t kObsOff = ~std::uint64_t{0};

std::uint64_t obs_chunk_start() {
  return (obs::metrics_enabled() || obs::trace_enabled()) ? obs::monotonic_ns()
                                                          : kObsOff;
}

void obs_chunk_end(std::uint64_t start_ns) {
  if (start_ns == kObsOff) return;
  const std::uint64_t end_ns = obs::monotonic_ns();
  obs_record_chunk(end_ns - start_ns);
  if (obs::trace_enabled())
    obs::emit_complete("pool.chunk", "pool",
                       static_cast<double>(start_ns) * 1e-3,
                       static_cast<double>(end_ns - start_ns) * 1e-3,
                       obs::current_tid());
}

std::size_t env_thread_count() {
  // 0 (the fallback) means unset-or-invalid: fall through to the hardware
  // count. Garbage values warn once via env_int instead of silently running
  // at hardware concurrency.
  const long long v = env::env_int("RERAMDL_THREADS", 0, 1, 1 << 16);
  if (v >= 1) return static_cast<std::size_t>(v);
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<std::size_t>(hc);
}

// One in-flight job: chunks are claimed with an atomic cursor so idle
// workers and the submitting thread drain the same queue.
struct Job {
  std::size_t begin = 0;
  std::size_t grain = 1;
  std::size_t num_chunks = 0;
  std::size_t end = 0;
  const std::function<void(std::size_t, std::size_t)>* body = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex err_mu;
  std::exception_ptr error;

  void run_chunk(std::size_t c) {
    const std::size_t b = begin + c * grain;
    const std::size_t e = std::min(end, b + grain);
    const std::uint64_t t0 = obs_chunk_start();
    try {
      (*body)(b, e);
    } catch (...) {
      std::lock_guard<std::mutex> lock(err_mu);
      if (!error) error = std::current_exception();
    }
    obs_chunk_end(t0);
    done.fetch_add(1, std::memory_order_acq_rel);
  }
};

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t workers) {
    threads_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
      threads_.emplace_back([this] { worker_loop(); });
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  std::size_t workers() const { return threads_.size(); }

  // Runs the job to completion; the calling thread participates.
  void run(const std::shared_ptr<Job>& job) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      job_ = job;
    }
    cv_.notify_all();
    drain(*job);
    // Wait for chunks claimed by workers that are still executing.
    while (job->done.load(std::memory_order_acquire) < job->num_chunks)
      std::this_thread::yield();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (job_ == job) job_.reset();
    }
  }

 private:
  static void drain(Job& job) {
    for (;;) {
      const std::size_t c = job.next.fetch_add(1, std::memory_order_acq_rel);
      if (c >= job.num_chunks) break;
      job.run_chunk(c);
    }
  }

  void worker_loop() {
    tls_in_region = true;
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] {
          return stop_ ||
                 (job_ && job_->next.load(std::memory_order_acquire) <
                              job_->num_chunks);
        });
        if (stop_) return;
        job = job_;
      }
      if (job) drain(*job);
      // Back off until the submitter clears the finished job.
      std::this_thread::yield();
    }
  }

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::shared_ptr<Job> job_;
  bool stop_ = false;
};

struct PoolState {
  std::mutex mu;                    // guards pool (re)creation and submission
  std::unique_ptr<ThreadPool> pool;
  std::atomic<std::size_t> threads{0};  // 0 = not yet resolved
};

PoolState& state() {
  static PoolState* s = new PoolState;  // leaked: workers may outlive main
  return *s;
}

std::size_t resolved_thread_count() {
  auto& s = state();
  std::size_t t = s.threads.load(std::memory_order_acquire);
  if (t == 0) {
    t = env_thread_count();
    s.threads.store(t, std::memory_order_release);
  }
  return t;
}

}  // namespace

std::size_t thread_count() { return resolved_thread_count(); }

void set_thread_count(std::size_t n) {
  auto& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.threads.store(n == 0 ? env_thread_count() : n, std::memory_order_release);
  // Drop the old pool; the next parallel region rebuilds it at the new size.
  s.pool.reset();
}

bool in_parallel_region() { return tls_in_region; }

void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  const std::size_t range = end - begin;
  const std::size_t num_chunks = (range + grain - 1) / grain;
  const std::size_t threads = resolved_thread_count();

  RERAMDL_TRACE_SCOPE("pool.parallel_for", "pool");
  if (obs::metrics_enabled()) {
    auto& reg = obs::Registry::instance();
    static obs::Counter& jobs = reg.counter("pool.jobs");
    static obs::Counter& chunks = reg.counter("pool.chunks");
    jobs.add();
    chunks.add(num_chunks);
  }

  // Serial paths: pool disabled, a single chunk, or a nested call from a
  // worker thread (running inline avoids deadlock and oversubscription).
  if (threads <= 1 || num_chunks == 1 || tls_in_region) {
    const bool was_in_region = tls_in_region;
    tls_in_region = true;
    try {
      for (std::size_t c = 0; c < num_chunks; ++c) {
        const std::size_t b = begin + c * grain;
        body(b, std::min(end, b + grain));
      }
    } catch (...) {
      tls_in_region = was_in_region;
      throw;
    }
    tls_in_region = was_in_region;
    return;
  }

  auto job = std::make_shared<Job>();
  job->begin = begin;
  job->end = end;
  job->grain = grain;
  job->num_chunks = num_chunks;
  job->body = &body;

  auto& s = state();
  std::unique_lock<std::mutex> lock(s.mu);
  if (!s.pool || s.pool->workers() + 1 != threads) {
    s.pool.reset();  // join old workers before spawning the new set
    if (threads > 1) s.pool = std::make_unique<ThreadPool>(threads - 1);
  }
  ThreadPool* pool = s.pool.get();
  if (pool == nullptr) {  // threads changed to 1 under the lock
    lock.unlock();
    for (std::size_t c = 0; c < num_chunks; ++c) {
      const std::size_t b = begin + c * grain;
      body(b, std::min(end, b + grain));
    }
    return;
  }
  // Hold the submission lock for the whole job: one job at a time keeps the
  // worker protocol simple, and concurrent top-level parallel_for callers
  // just serialize.
  obs::Gauge* depth = nullptr;
  if (obs::metrics_enabled()) {
    static obs::Gauge& g = obs::Registry::instance().gauge("pool.queue_depth");
    depth = &g;
    depth->set(static_cast<double>(num_chunks));
  }
  const bool was_in_region = tls_in_region;
  tls_in_region = true;
  pool->run(job);
  tls_in_region = was_in_region;
  if (depth != nullptr) depth->set(0.0);
  lock.unlock();
  if (job->error) std::rethrow_exception(job->error);
}

double parallel_reduce(std::size_t begin, std::size_t end, std::size_t grain,
                       double identity,
                       const std::function<double(std::size_t, std::size_t)>& map,
                       const std::function<double(double, double)>& join) {
  if (end <= begin) return identity;
  if (grain == 0) grain = 1;
  const std::size_t range = end - begin;
  const std::size_t num_chunks = (range + grain - 1) / grain;

  std::vector<double> partials(num_chunks, identity);
  parallel_for(begin, end, grain,
               [&](std::size_t b, std::size_t e) {
                 partials[(b - begin) / grain] = map(b, e);
               });

  // Fixed left-to-right binary tree: identical association for every thread
  // count, so the reduction is bit-reproducible.
  std::vector<double> level = std::move(partials);
  while (level.size() > 1) {
    std::vector<double> up((level.size() + 1) / 2);
    for (std::size_t i = 0; i < up.size(); ++i) {
      const std::size_t l = 2 * i, r = 2 * i + 1;
      up[i] = r < level.size() ? join(level[l], level[r]) : level[l];
    }
    level = std::move(up);
  }
  return level[0];
}

}  // namespace reramdl::parallel
