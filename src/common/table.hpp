// ASCII table printer used by the benchmark harness to emit paper-style
// tables (Table I, per-figure series) in a uniform format.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace reramdl {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  // Convenience: formats doubles with the given precision.
  static std::string fmt(double v, int precision = 2);
  static std::string fmt_times(double v, int precision = 2);  // "42.45x"

  void print(std::ostream& os) const;
  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace reramdl
