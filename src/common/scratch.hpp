// Thread-local scratch buffers: reusable allocation-free temporaries for hot
// kernels (matmul accumulator panels, crossbar partial sums, quantized input
// staging).
//
// Buffer<T> checks a vector out of a per-thread free list on construction
// and returns it on destruction, so a kernel that runs a million times pays
// for at most a handful of allocations per worker thread — after warm-up the
// checkout is a pointer swap. Contents are unspecified on checkout (the
// previous user's data may still be there); callers that need zeros fill
// explicitly, exactly as they would with a fresh allocation they intend to
// reuse.
//
// Concurrency: the pool is thread_local, so checkouts never contend and the
// facility is trivially TSan-clean. Nested checkouts on one thread receive
// distinct vectors (the free list simply runs dry and allocates). Pool
// worker threads keep their cached buffers for the life of the worker; a
// pool resize (parallel::set_thread_count) retires workers and frees their
// caches via normal TLS destruction.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace reramdl::scratch {

// ---- Arena accounting -------------------------------------------------------
//
// Process-wide byte ledger for the training-step workspace arenas
// (tensor/workspace.hpp). Every arena reports capacity growth here, so tests
// and the training bench can assert the zero-steady-state-allocation
// property globally: after the warm-up batch, arena_growth_events() must
// stop moving. Plain relaxed atomics — the ledger is a diagnostic, ordering
// against the allocations themselves doesn't matter.

namespace detail {
inline std::atomic<std::size_t>& arena_bytes() {
  static std::atomic<std::size_t> v{0};
  return v;
}
inline std::atomic<std::uint64_t>& arena_growths() {
  static std::atomic<std::uint64_t> v{0};
  return v;
}
}  // namespace detail

inline void arena_account_grow(std::size_t delta_bytes) {
  if (delta_bytes == 0) return;
  detail::arena_bytes().fetch_add(delta_bytes, std::memory_order_relaxed);
  detail::arena_growths().fetch_add(1, std::memory_order_relaxed);
}

inline void arena_account_release(std::size_t bytes) {
  detail::arena_bytes().fetch_sub(bytes, std::memory_order_relaxed);
}

// Total bytes currently reserved across all live arenas.
inline std::size_t arena_bytes_reserved() {
  return detail::arena_bytes().load(std::memory_order_relaxed);
}

// Number of capacity-growth events since process start (never decreases).
inline std::uint64_t arena_growth_events() {
  return detail::arena_growths().load(std::memory_order_relaxed);
}

// ---- Buffer ledger ----------------------------------------------------------
//
// Monotonic counters mirroring the arena ledger above, but for the
// thread-local Buffer<T> pools: every checkout that has to grow its backing
// vector (a pool miss or an undersized pooled vector) books the added bytes
// and one growth event. Steady-state kernels — including the sparse gather
// path's index/value staging — must stop moving these after warm-up, which
// bench_sparse_mvm and the sparsity tests assert the same way the training
// bench asserts arena_growth_events(). Monotonic on purpose: pool retirement
// (worker TLS destruction) frees memory but never un-counts it, so "stopped
// growing" is a one-sided, race-free check.

namespace detail {
inline std::atomic<std::size_t>& buffer_bytes() {
  static std::atomic<std::size_t> v{0};
  return v;
}
inline std::atomic<std::uint64_t>& buffer_growths() {
  static std::atomic<std::uint64_t> v{0};
  return v;
}
}  // namespace detail

inline void buffer_account_grow(std::size_t delta_bytes) {
  if (delta_bytes == 0) return;
  detail::buffer_bytes().fetch_add(delta_bytes, std::memory_order_relaxed);
  detail::buffer_growths().fetch_add(1, std::memory_order_relaxed);
}

// Total bytes ever allocated into scratch buffers (never decreases).
inline std::size_t buffer_bytes_allocated() {
  return detail::buffer_bytes().load(std::memory_order_relaxed);
}

// Number of backing-store growths since process start (never decreases).
inline std::uint64_t buffer_growth_events() {
  return detail::buffer_growths().load(std::memory_order_relaxed);
}

namespace detail {

template <typename T>
inline std::vector<std::vector<T>>& tls_pool() {
  thread_local std::vector<std::vector<T>> pool;
  return pool;
}

}  // namespace detail

template <typename T>
class Buffer {
 public:
  explicit Buffer(std::size_t n) : size_(n) {
    auto& pool = detail::tls_pool<T>();
    if (!pool.empty()) {
      v_ = std::move(pool.back());
      pool.pop_back();
    }
    if (v_.size() < n) {
      const std::size_t before = v_.capacity();
      v_.resize(n);
      if (v_.capacity() > before)
        buffer_account_grow((v_.capacity() - before) * sizeof(T));
    }
  }

  ~Buffer() {
    auto& pool = detail::tls_pool<T>();
    // Cap the free list so pathological checkout patterns can't hoard
    // memory; steady-state kernels use far fewer simultaneous buffers.
    if (pool.size() < kMaxPooled) pool.push_back(std::move(v_));
  }

  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;

  T* data() { return v_.data(); }
  const T* data() const { return v_.data(); }
  std::size_t size() const { return size_; }

  T& operator[](std::size_t i) { return v_[i]; }
  const T& operator[](std::size_t i) const { return v_[i]; }

  T* begin() { return v_.data(); }
  T* end() { return v_.data() + size_; }

 private:
  static constexpr std::size_t kMaxPooled = 8;

  std::vector<T> v_;
  std::size_t size_ = 0;
};

}  // namespace reramdl::scratch
