// Streaming statistics and small numeric helpers shared by tests and benches.
#pragma once

#include <cstddef>
#include <vector>

namespace reramdl {

// Welford streaming mean / variance plus min / max. The moment accessors
// (mean, variance, min, max) are defined only on a non-empty stat and throw
// CheckError on an empty one — there is no "stale zero" state to misread.
class RunningStat {
 public:
  void add(double x);
  // Fold another stat into this one (Chan's parallel-merge update for the
  // second moment). Either side may be empty; merging per-shard stats in a
  // fixed order matches the obs histograms' mergeable-bucket design.
  void merge(const RunningStat& other);
  std::size_t count() const { return n_; }
  double mean() const;
  double variance() const;  // population variance
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Geometric mean of strictly positive values; used for speedup aggregation
// exactly as accelerator papers report "average" speedups.
double geomean(const std::vector<double>& values);

// Root-mean-square error between two equal-length sequences.
double rmse(const std::vector<float>& a, const std::vector<float>& b);

// Max absolute difference.
double max_abs_diff(const std::vector<float>& a, const std::vector<float>& b);

}  // namespace reramdl
