// Shared environment-variable parsing for the RERAMDL_* knobs.
//
// Every tunable read from the environment goes through these helpers so the
// parsing rules are uniform: unset means "use the default", and a value that
// does not parse (or falls outside the allowed range) is *rejected with a
// one-time warning on stderr* instead of being silently coerced — a mistyped
// RERAMDL_THREADS=8x quietly running single-threaded cost real debugging
// time before this existed.
//
// Header-only on purpose: obs sits at the bottom of the library stack
// (below common) and needs these too; an include-only helper has no link
// direction.
#pragma once

#include <cstdlib>
#include <iostream>
#include <limits>
#include <mutex>
#include <set>
#include <string>
#include <string_view>

namespace reramdl::env {

namespace detail {

// Warns once per variable name for the process lifetime. Returns true the
// first time (i.e., when the warning was actually printed).
inline bool warn_invalid(const char* name, std::string_view value,
                         std::string_view why) {
  static std::mutex mu;
  // Leaked: may be reached from atexit hooks / late static init.
  static auto* warned = new std::set<std::string>();
  std::lock_guard<std::mutex> lock(mu);
  if (!warned->insert(name).second) return false;
  std::cerr << "reramdl: ignoring " << name << "=\"" << value << "\" (" << why
            << "); using default\n";
  return true;
}

}  // namespace detail

// Integer knob: unset -> fallback; a value outside [lo, hi] or with any
// non-numeric garbage (partial parses like "8x" included) warns once and
// returns fallback.
inline long long env_int(const char* name, long long fallback,
                         long long lo = std::numeric_limits<long long>::min(),
                         long long hi = std::numeric_limits<long long>::max()) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(raw, &end, 10);
  if (errno != 0 || end == raw || *end != '\0') {
    detail::warn_invalid(name, raw, "not an integer");
    return fallback;
  }
  if (v < lo || v > hi) {
    detail::warn_invalid(name, raw, "out of range");
    return fallback;
  }
  return v;
}

// Floating-point knob: unset -> fallback; a value outside [lo, hi] or with
// trailing garbage (partial parses like "0.5x" included) warns once and
// returns fallback.
inline double env_double(const char* name, double fallback,
                         double lo = -std::numeric_limits<double>::infinity(),
                         double hi = std::numeric_limits<double>::infinity()) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(raw, &end);
  if (errno != 0 || end == raw || *end != '\0' || v != v) {
    detail::warn_invalid(name, raw, "not a number");
    return fallback;
  }
  if (v < lo || v > hi) {
    detail::warn_invalid(name, raw, "out of range");
    return fallback;
  }
  return v;
}

// Boolean knob: accepts 0/1/true/false/on/off (case-sensitive, matching the
// documented spellings); anything else warns once and returns fallback.
inline bool env_flag(const char* name, bool fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return fallback;
  const std::string_view v(raw);
  if (v == "0" || v == "false" || v == "off") return false;
  if (v == "1" || v == "true" || v == "on") return true;
  detail::warn_invalid(name, raw, "not a boolean (use 0/1/true/false/on/off)");
  return fallback;
}

// Path knob: unset and empty both mean "disabled" and return "". Any other
// string is taken verbatim (paths have no garbage to reject).
inline std::string env_path(const char* name) {
  const char* raw = std::getenv(name);
  return (raw == nullptr) ? std::string() : std::string(raw);
}

}  // namespace reramdl::env
