#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace reramdl {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  RERAMDL_CHECK(!headers_.empty());
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  RERAMDL_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TablePrinter::fmt_times(double v, int precision) {
  return fmt(v, precision) + "x";
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto print_sep = [&] {
    os << '+';
    for (std::size_t c = 0; c < width.size(); ++c)
      os << std::string(width[c] + 2, '-') << '+';
    os << '\n';
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c)
      os << ' ' << std::left << std::setw(static_cast<int>(width[c])) << row[c]
         << " |";
    os << '\n';
  };

  print_sep();
  print_row(headers_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
}

std::string TablePrinter::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace reramdl
