#include "common/csv.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace reramdl {

CsvWriter::CsvWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  RERAMDL_CHECK(!headers_.empty());
}

void CsvWriter::add_row(std::vector<std::string> cells) {
  RERAMDL_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n\r") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write(std::ostream& os) const {
  auto write_row = [&os](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) os << ',';
      os << escape(row[i]);
    }
    os << '\n';
  };
  write_row(headers_);
  for (const auto& row : rows_) write_row(row);
}

std::string CsvWriter::to_string() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

bool CsvWriter::save(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  write(os);
  return static_cast<bool>(os);
}

}  // namespace reramdl
