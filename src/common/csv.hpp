// Minimal CSV writer for exporting bench tables and sweep results to files
// that plotting scripts can consume.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace reramdl {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  std::size_t rows() const { return rows_.size(); }

  // RFC-4180-style escaping: cells containing commas, quotes or newlines are
  // quoted, embedded quotes doubled.
  void write(std::ostream& os) const;
  std::string to_string() const;
  // Returns false (and leaves no file) if the path cannot be opened.
  bool save(const std::string& path) const;

  static std::string escape(const std::string& cell);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace reramdl
