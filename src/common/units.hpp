// Unit conventions used throughout the architectural models.
//
// All latencies are carried in nanoseconds, energies in picojoules, areas in
// square micrometres, and powers in watts unless a name says otherwise. The
// constants below convert between reporting units.
#pragma once

namespace reramdl::units {

inline constexpr double kNsPerUs = 1e3;
inline constexpr double kNsPerMs = 1e6;
inline constexpr double kNsPerS = 1e9;

inline constexpr double kPjPerNj = 1e3;
inline constexpr double kPjPerUj = 1e6;
inline constexpr double kPjPerMj = 1e9;
inline constexpr double kPjPerJ = 1e12;

inline constexpr double kUm2PerMm2 = 1e6;

// power [W] = energy [pJ] / time [ns] * (1e-12 J/pJ) / (1e-9 s/ns)
inline constexpr double watts(double energy_pj, double time_ns) {
  return energy_pj / time_ns * 1e-3;
}

}  // namespace reramdl::units
