#pragma once

// RERAMDL_TARGET_CLONES: GCC function multiversioning for hot numeric
// kernels. The repo builds for baseline x86-64 so binaries stay portable;
// annotated functions additionally get AVX2 / x86-64-v3 / AVX-512
// (x86-64-v4) clones selected once at load time via ifunc. This is bit-exact
// by construction for our kernels: each output element is an independent
// k-ascending double accumulation, so vectorizing across output lanes never
// reorders any sum, and FMA contraction cannot change results because a
// float*float product is exactly representable in double (24+24 mantissa
// bits < 53). The v4 tier widens lanes to 512 bits (and gives the sparse
// gather-compacted kernels masked tails); lane width cannot change
// per-element rounding for the same reason.
//
// Disabled under sanitizers (ifunc dispatch confuses their interceptors) and
// on non-GCC / non-x86-64 toolchains, where it expands to nothing and the
// portable loop is used as-is.
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) && \
    !defined(__SANITIZE_THREAD__) && !defined(__SANITIZE_ADDRESS__)
#define RERAMDL_TARGET_CLONES                                   \
  __attribute__((target_clones("default", "avx2", "arch=x86-64-v3", \
                               "arch=x86-64-v4")))
#else
#define RERAMDL_TARGET_CLONES
#endif
