// Online crossbar maintenance: drift refresh, fault scrubbing and
// wear-leveling arbitrated against live demand traffic (DESIGN.md §16).
//
// Deployed ReRAM arrays degrade on their own clocks — conductances drift
// toward the high-resistance state (device::RetentionModel), soft errors
// flip stored bits (FaultMap transients), and every reprogram consumes
// write endurance. Until now these only degraded inference passively; the
// MaintenanceEngine is the autonomous repair layer that pushes back:
//
//   * drift refresh — tiles whose drift clock exceeds refresh_age_s are
//     reprogrammed from the bound layer weights through the PR-5
//     write-verify path (CrossbarExecutor::refresh_tile), restoring fresh
//     levels and resetting the tile's age;
//   * fault scrub — every scrub_interval_s the engine compares each tile's
//     faults_injected counter against the last scan; tiles hit by new
//     transient flips are repaired the same way (write-verify re-targets
//     the flipped cells, spare-column remap absorbs unrepairable ones);
//   * wear-leveling — each tile program books write cycles in a
//     device::EnduranceTracker; when the per-grid write imbalance since
//     the last rotation exceeds wear_rotate_delta, the logical->physical
//     tile map rotates (CrossbarGrid::set_tile_phys_map) and the grid is
//     migrated (every tile reprogrammed under its new physical slot).
//
// Maintenance costs chip time (program_ns_per_cell / readback_ns_per_cell)
// and therefore contends with inference. Arbitration policies:
//
//   * idle_only  — actions run only inside gaps between the chip becoming
//     free and the next batch launch; demand is never delayed, but urgent
//     work can starve under sustained load;
//   * fixed_slot — the chip reserves a recurring window ([k*slot_period_us,
//     k*slot_period_us + slot_len_us)); launches falling inside a window
//     are pushed to its end and queued actions progress within it;
//   * urgency    — idle gaps are used for free, and actions whose deadline
//     (trigger time + urgency_deadline_us, shrunk by fault pressure for
//     scrubs) has expired run immediately, delaying the demand launch.
//
// Determinism: the engine runs entirely in virtual microseconds on the
// scheduler thread. Aging is quantized into drift_epoch_us steps, triggers
// are evaluated in fixed (unit, grid, tile) order, the action queue is
// sorted by (due_us, unit, grid, tile, kind), and every repair flows
// through the seeded per-tile programming path — so the full action log,
// the resulting weights and the demand-delay accounting are bit-identical
// for any RERAMDL_THREADS.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "circuit/crossbar.hpp"
#include "core/functional.hpp"
#include "device/endurance_tracker.hpp"
#include "device/reliability.hpp"

namespace reramdl::maint {

enum class Policy : unsigned char { kIdleOnly, kFixedSlot, kUrgency };
enum class TaskKind : unsigned char { kDriftRefresh, kScrub, kWearLevel };

const char* policy_name(Policy p);
const char* task_name(TaskKind k);

struct MaintenanceConfig {
  Policy policy = Policy::kIdleOnly;
  // Per-task enables (all on: the full self-managing stack).
  bool drift_refresh = true;
  bool scrub = true;
  bool wear_level = true;

  // Device-time compression: simulated device seconds elapsing per virtual
  // microsecond of scheduler time. 1.0 means one virtual µs ages the
  // arrays one second — campaign benches compress months into a replay.
  double seconds_per_us = 1.0;

  // Aging granularity: drift is applied (and triggers evaluated) once per
  // epoch of this many virtual µs.
  std::uint64_t drift_epoch_us = 50;

  // Drift-refresh trigger and the urgency policy's grace window.
  double refresh_age_s = 600.0;  // refresh tiles older than this (device s)
  std::uint64_t urgency_deadline_us = 500;

  // Fault-scrub cadence (device seconds).
  double scrub_interval_s = 200.0;

  // Wear-leveling trigger: rotate when a grid's write imbalance since the
  // last rotation reaches this many cycles. 0 disables rotation even when
  // wear_level is on (tracking only).
  std::uint64_t wear_rotate_delta = 8;

  // Chip-time cost model for one repair (per cell pulse / readback).
  double program_ns_per_cell = 20.0;
  double readback_ns_per_cell = 2.0;

  // fixed_slot window geometry.
  std::uint64_t slot_period_us = 2000;
  std::uint64_t slot_len_us = 200;

  // RERAMDL_MAINT_* environment overrides on top of the given defaults:
  // POLICY (idle_only/fixed_slot/urgency), SECONDS_PER_US, EPOCH_US,
  // REFRESH_AGE_S, SCRUB_INTERVAL_S, WEAR_DELTA, SLOT_PERIOD_US,
  // SLOT_LEN_US, DEADLINE_US plus the DRIFT/SCRUB/WEAR enable flags.
  static MaintenanceConfig from_env();
  static MaintenanceConfig from_env(const MaintenanceConfig& base);
};

struct MaintenanceStats {
  std::uint64_t refreshes = 0;        // drift-refresh tile reprograms
  std::uint64_t scrub_repairs = 0;    // scrub-triggered tile reprograms
  std::uint64_t scrub_detected = 0;   // new transient hits found by scans
  std::uint64_t rotations = 0;        // wear-leveling map rotations
  std::uint64_t migrated_tiles = 0;   // tiles reprogrammed by rotations
  std::uint64_t cells_programmed = 0; // total repair program pulses
  std::uint64_t busy_us = 0;          // chip time consumed by maintenance
  std::uint64_t demand_delay_us = 0;  // launch delay imposed on demand
  std::uint64_t deadline_misses = 0;  // urgent actions that ran late
  std::uint64_t deferred = 0;         // actions still pending (point-in-time)
};

// One queued repair action.
struct Action {
  TaskKind kind = TaskKind::kDriftRefresh;
  std::size_t unit = 0, grid = 0, tile = 0;
  std::uint64_t due_us = 0;       // trigger time
  std::uint64_t deadline_us = 0;  // urgency policy: must start by this
  std::uint64_t cost_us = 1;      // modeled chip time to execute
};

class MaintenanceEngine {
 public:
  explicit MaintenanceEngine(const MaintenanceConfig& cfg);

  // Registers an executor for autonomous management. `retention` drives
  // the aging model applied to its tiles; `refresh_opts` is the
  // programming path used for every repair (write-verify + spares +
  // fault population — normally the same options the executor was
  // programmed with). The executor must outlive the engine. Returns the
  // unit index.
  std::size_t manage(core::CrossbarExecutor& exec,
                     const device::RetentionParams& retention,
                     const circuit::ProgramOptions& refresh_opts);

  // Advance virtual time: applies epoch-quantized aging/drift to every
  // managed tile, runs trigger scans, and enqueues repair actions. Does
  // not execute actions (that needs an arbitration window). Monotonic;
  // calls with earlier stamps are no-ops.
  void advance_time(std::uint64_t now_us);

  // Demand-arbitration hook, called by the serving scheduler when a batch
  // wants to launch at `launch_us` on a chip free since `chip_free_us`.
  // Advances time to the launch moment, runs whatever maintenance the
  // policy allows, and returns the (possibly delayed) dispatch time
  // (>= launch_us; == launch_us whenever demand is not delayed).
  std::uint64_t on_demand(std::uint64_t chip_free_us, std::uint64_t launch_us);

  // Executes every queued action back-to-back starting at the engine's
  // current virtual time (no demand contention — used at end-of-trace
  // drains and by tests).
  void run_pending();

  // Point-in-time condition of all managed units, mirrored to obs gauges
  // ("maint.health.*") when metrics are enabled.
  circuit::CrossbarHealth publish_health();

  const MaintenanceConfig& config() const { return cfg_; }
  MaintenanceStats stats() const;
  std::size_t pending_actions() const { return queue_.size(); }
  std::uint64_t now_us() const { return now_us_; }
  const device::EnduranceTracker& wear(std::size_t unit,
                                       std::size_t grid) const;

  // FNV-1a digest over the executed action log (kind, unit, grid, tile,
  // start, cost) — the replay-reproducibility witness.
  std::uint64_t digest() const { return digest_; }

  // Attribution subtree for this engine's bookkeeping ("chip/maint" by
  // default; benches label per-policy engines distinctly).
  void set_obs_label(std::string label) { obs_label_ = std::move(label); }

 private:
  struct Unit {
    core::CrossbarExecutor* exec = nullptr;
    device::RetentionModel retention;
    circuit::ProgramOptions refresh_opts;
    std::vector<device::EnduranceTracker> wear;          // per grid
    std::vector<std::vector<std::uint64_t>> faults_seen; // per grid, per tile
    double next_scrub_s = 0.0;
  };

  double device_seconds() const {
    return static_cast<double>(aged_us_) * cfg_.seconds_per_us;
  }
  void step_epoch();
  void scan_unit(std::size_t u);
  bool pending(std::size_t u, std::size_t g, std::size_t t,
               TaskKind k) const;
  void enqueue(Action a);
  std::uint64_t tile_cost_us(const Unit& unit, std::size_t g,
                             std::size_t t) const;
  // Executes `a` with its chip window starting at `start_us`; returns the
  // window end.
  std::uint64_t execute(const Action& a, std::uint64_t start_us);
  // Runs queued actions that fit entirely inside [from_us, until_us);
  // returns the time the last one finished (== from_us if none ran).
  std::uint64_t run_in_gap(std::uint64_t from_us, std::uint64_t until_us);

  MaintenanceConfig cfg_;
  std::vector<Unit> units_;
  std::deque<Action> queue_;  // sorted by (due, unit, grid, tile, kind)
  std::uint64_t now_us_ = 0;
  std::uint64_t aged_us_ = 0;      // epoch-quantized aging progress
  std::uint64_t busy_until_us_ = 0;
  MaintenanceStats stats_;
  std::uint64_t digest_ = 1469598103934665603ull;  // FNV offset basis
  std::string obs_label_ = "chip/maint";
  int trace_pid_ = -1;
};

}  // namespace reramdl::maint
