#include "maint/engine.hpp"

#include <algorithm>
#include <cstdlib>
#include <string_view>

#include "common/check.hpp"
#include "common/env.hpp"
#include "obs/obs.hpp"

namespace reramdl::maint {

namespace {

constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    h ^= (v >> (b * 8)) & 0xffu;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

const char* policy_name(Policy p) {
  switch (p) {
    case Policy::kIdleOnly: return "idle_only";
    case Policy::kFixedSlot: return "fixed_slot";
    case Policy::kUrgency: return "urgency";
  }
  return "?";
}

const char* task_name(TaskKind k) {
  switch (k) {
    case TaskKind::kDriftRefresh: return "drift_refresh";
    case TaskKind::kScrub: return "scrub";
    case TaskKind::kWearLevel: return "wear_level";
  }
  return "?";
}

MaintenanceConfig MaintenanceConfig::from_env() {
  return from_env(MaintenanceConfig{});
}

MaintenanceConfig MaintenanceConfig::from_env(const MaintenanceConfig& base) {
  MaintenanceConfig c = base;
  if (const char* raw = std::getenv("RERAMDL_MAINT_POLICY");
      raw != nullptr && raw[0] != '\0') {
    const std::string_view v(raw);
    if (v == "idle_only") c.policy = Policy::kIdleOnly;
    else if (v == "fixed_slot") c.policy = Policy::kFixedSlot;
    else if (v == "urgency") c.policy = Policy::kUrgency;
    else
      env::detail::warn_invalid("RERAMDL_MAINT_POLICY", raw,
                                "use idle_only/fixed_slot/urgency");
  }
  c.drift_refresh = env::env_flag("RERAMDL_MAINT_DRIFT", c.drift_refresh);
  c.scrub = env::env_flag("RERAMDL_MAINT_SCRUB", c.scrub);
  c.wear_level = env::env_flag("RERAMDL_MAINT_WEAR", c.wear_level);
  c.seconds_per_us = env::env_double("RERAMDL_MAINT_SECONDS_PER_US",
                                     c.seconds_per_us, 1e-12, 1e12);
  c.drift_epoch_us = static_cast<std::uint64_t>(env::env_int(
      "RERAMDL_MAINT_EPOCH_US", static_cast<long long>(c.drift_epoch_us), 1));
  c.refresh_age_s =
      env::env_double("RERAMDL_MAINT_REFRESH_AGE_S", c.refresh_age_s, 1e-9);
  c.scrub_interval_s = env::env_double("RERAMDL_MAINT_SCRUB_INTERVAL_S",
                                       c.scrub_interval_s, 1e-9);
  c.wear_rotate_delta = static_cast<std::uint64_t>(
      env::env_int("RERAMDL_MAINT_WEAR_DELTA",
                   static_cast<long long>(c.wear_rotate_delta), 0));
  c.slot_period_us = static_cast<std::uint64_t>(env::env_int(
      "RERAMDL_MAINT_SLOT_PERIOD_US", static_cast<long long>(c.slot_period_us),
      1));
  c.slot_len_us = static_cast<std::uint64_t>(env::env_int(
      "RERAMDL_MAINT_SLOT_LEN_US", static_cast<long long>(c.slot_len_us), 1));
  c.urgency_deadline_us = static_cast<std::uint64_t>(env::env_int(
      "RERAMDL_MAINT_DEADLINE_US",
      static_cast<long long>(c.urgency_deadline_us), 0));
  return c;
}

MaintenanceEngine::MaintenanceEngine(const MaintenanceConfig& cfg)
    : cfg_(cfg) {
  RERAMDL_CHECK_GT(cfg_.seconds_per_us, 0.0);
  RERAMDL_CHECK_GT(cfg_.drift_epoch_us, 0u);
  RERAMDL_CHECK_GT(cfg_.slot_period_us, 0u);
  RERAMDL_CHECK_LE(cfg_.slot_len_us, cfg_.slot_period_us);
}

std::size_t MaintenanceEngine::manage(core::CrossbarExecutor& exec,
                                      const device::RetentionParams& retention,
                                      const circuit::ProgramOptions& opts) {
  Unit u{&exec, device::RetentionModel(retention), opts, {}, {}, 0.0};
  u.wear.reserve(exec.num_grids());
  u.faults_seen.reserve(exec.num_grids());
  for (std::size_t g = 0; g < exec.num_grids(); ++g) {
    const circuit::CrossbarGrid& grid = exec.grid(g);
    device::EnduranceTracker tracker(grid.num_arrays());
    std::vector<std::uint64_t> seen(grid.num_arrays(), 0);
    for (std::size_t t = 0; t < grid.num_arrays(); ++t) {
      // The initial programming already spent one write cycle per tile;
      // stuck-at hits it counted are not "new" faults for the scrubber.
      tracker.record_program(t);
      seen[t] = grid.array(t).stats().faults_injected;
    }
    u.wear.push_back(std::move(tracker));
    u.faults_seen.push_back(std::move(seen));
  }
  u.next_scrub_s = device_seconds() + cfg_.scrub_interval_s;
  units_.push_back(std::move(u));
  return units_.size() - 1;
}

void MaintenanceEngine::advance_time(std::uint64_t now_us) {
  while (aged_us_ + cfg_.drift_epoch_us <= now_us) step_epoch();
  now_us_ = std::max(now_us_, now_us);
}

void MaintenanceEngine::step_epoch() {
  aged_us_ += cfg_.drift_epoch_us;
  const double dt_s =
      static_cast<double>(cfg_.drift_epoch_us) * cfg_.seconds_per_us;
  for (std::size_t ui = 0; ui < units_.size(); ++ui) {
    Unit& u = units_[ui];
    for (std::size_t g = 0; g < u.exec->num_grids(); ++g) {
      circuit::CrossbarGrid& grid = u.exec->grid_mut(g);
      // Each tile drifts on its own clock (refreshes desynchronize them):
      // the incremental factor over this epoch is drift(age + dt) /
      // drift(age), so a tile's cumulative factor always equals the
      // one-shot factor at its age — path-independent and deterministic.
      for (std::size_t t = 0; t < grid.num_arrays(); ++t) {
        const double age_s =
            grid.array(t).health().seconds_since_program;
        const double f0 = u.retention.drift_factor(age_s);
        const double f1 = u.retention.drift_factor(age_s + dt_s);
        const double f = std::clamp(f1 / f0, 0.0, 1.0);
        if (f < 1.0) grid.apply_drift_tile(t, f);
      }
      grid.advance_age(dt_s);
      if (cfg_.drift_refresh) {
        for (std::size_t t = 0; t < grid.num_arrays(); ++t) {
          if (grid.array(t).health().seconds_since_program <
              cfg_.refresh_age_s)
            continue;
          if (pending(ui, g, t, TaskKind::kDriftRefresh)) continue;
          Action a;
          a.kind = TaskKind::kDriftRefresh;
          a.unit = ui;
          a.grid = g;
          a.tile = t;
          a.due_us = aged_us_;
          a.deadline_us = aged_us_ + cfg_.urgency_deadline_us;
          a.cost_us = tile_cost_us(u, g, t);
          enqueue(a);
        }
      }
    }
    scan_unit(ui);
  }
}

void MaintenanceEngine::scan_unit(std::size_t ui) {
  Unit& u = units_[ui];
  if (cfg_.scrub && device_seconds() >= u.next_scrub_s) {
    while (u.next_scrub_s <= device_seconds())
      u.next_scrub_s += cfg_.scrub_interval_s;
    for (std::size_t g = 0; g < u.exec->num_grids(); ++g) {
      const circuit::CrossbarGrid& grid = u.exec->grid(g);
      for (std::size_t t = 0; t < grid.num_arrays(); ++t) {
        const std::uint64_t now_faults = grid.array(t).stats().faults_injected;
        if (now_faults <= u.faults_seen[g][t]) continue;
        const std::uint64_t fresh = now_faults - u.faults_seen[g][t];
        u.faults_seen[g][t] = now_faults;
        stats_.scrub_detected += fresh;
        if (pending(ui, g, t, TaskKind::kScrub)) continue;
        Action a;
        a.kind = TaskKind::kScrub;
        a.unit = ui;
        a.grid = g;
        a.tile = t;
        a.due_us = aged_us_;
        // Fault pressure shrinks the grace window: a tile with many fresh
        // hits is repaired sooner under the urgency policy.
        a.deadline_us = aged_us_ + cfg_.urgency_deadline_us /
                                       std::max<std::uint64_t>(1, fresh);
        a.cost_us = tile_cost_us(u, g, t);
        enqueue(a);
      }
    }
  }
  if (cfg_.wear_level && cfg_.wear_rotate_delta > 0) {
    for (std::size_t g = 0; g < u.exec->num_grids(); ++g) {
      if (u.wear[g].imbalance_since_rotation() < cfg_.wear_rotate_delta)
        continue;
      if (pending(ui, g, 0, TaskKind::kWearLevel)) continue;
      Action a;
      a.kind = TaskKind::kWearLevel;
      a.unit = ui;
      a.grid = g;
      a.tile = 0;
      a.due_us = aged_us_;
      a.deadline_us = aged_us_ + cfg_.urgency_deadline_us;
      a.cost_us = 0;
      const circuit::CrossbarGrid& grid = u.exec->grid(g);
      for (std::size_t t = 0; t < grid.num_arrays(); ++t)
        a.cost_us += tile_cost_us(u, g, t);
      enqueue(a);
    }
  }
}

bool MaintenanceEngine::pending(std::size_t u, std::size_t g, std::size_t t,
                                TaskKind k) const {
  for (const Action& a : queue_)
    if (a.unit == u && a.grid == g && a.tile == t && a.kind == k) return true;
  return false;
}

void MaintenanceEngine::enqueue(Action a) {
  // Keep (due, unit, grid, tile, kind) order; triggers fire with
  // nondecreasing due stamps so this is almost always a push_back.
  auto after = [](const Action& x, const Action& y) {
    if (x.due_us != y.due_us) return x.due_us > y.due_us;
    if (x.unit != y.unit) return x.unit > y.unit;
    if (x.grid != y.grid) return x.grid > y.grid;
    if (x.tile != y.tile) return x.tile > y.tile;
    return static_cast<int>(x.kind) > static_cast<int>(y.kind);
  };
  auto it = queue_.end();
  while (it != queue_.begin() && after(*(it - 1), a)) --it;
  queue_.insert(it, a);
}

std::uint64_t MaintenanceEngine::tile_cost_us(const Unit& u, std::size_t g,
                                              std::size_t t) const {
  const circuit::Crossbar& xbar = u.exec->grid(g).array(t);
  const double cells =
      static_cast<double>(xbar.active_rows() * xbar.active_cols() *
                          xbar.config().slices() * 2);
  const double ns =
      cells * (cfg_.program_ns_per_cell + cfg_.readback_ns_per_cell);
  return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(ns / 1000.0));
}

std::uint64_t MaintenanceEngine::execute(const Action& a,
                                         std::uint64_t start_us) {
  Unit& u = units_[a.unit];
  std::uint64_t cells = 0;
  switch (a.kind) {
    case TaskKind::kDriftRefresh:
    case TaskKind::kScrub: {
      cells = u.exec->refresh_tile(a.grid, a.tile, u.refresh_opts);
      u.wear[a.grid].record_program(a.tile);
      // Reprogramming re-counts the tile's stuck-at hits into
      // faults_injected; resync so the next scan only sees new flips.
      u.faults_seen[a.grid][a.tile] =
          u.exec->grid(a.grid).array(a.tile).stats().faults_injected;
      if (a.kind == TaskKind::kDriftRefresh) ++stats_.refreshes;
      else ++stats_.scrub_repairs;
      break;
    }
    case TaskKind::kWearLevel: {
      u.wear[a.grid].rotate();
      circuit::CrossbarGrid& grid = u.exec->grid_mut(a.grid);
      grid.set_tile_phys_map(u.wear[a.grid].mapping());
      // Migrate: every tile reprograms under its new physical slot (new
      // fault population, fresh levels).
      for (std::size_t t = 0; t < grid.num_arrays(); ++t) {
        cells += u.exec->refresh_tile(a.grid, t, u.refresh_opts);
        u.wear[a.grid].record_program(t);
        u.faults_seen[a.grid][t] = grid.array(t).stats().faults_injected;
        ++stats_.migrated_tiles;
      }
      ++stats_.rotations;
      break;
    }
  }
  const std::uint64_t end_us = start_us + a.cost_us;
  busy_until_us_ = std::max(busy_until_us_, end_us);
  stats_.busy_us += a.cost_us;
  stats_.cells_programmed += cells;
  if (cfg_.policy == Policy::kUrgency && start_us > a.deadline_us)
    ++stats_.deadline_misses;

  digest_ = fnv_mix(digest_, static_cast<std::uint64_t>(a.kind));
  digest_ = fnv_mix(digest_, a.unit);
  digest_ = fnv_mix(digest_, a.grid);
  digest_ = fnv_mix(digest_, a.tile);
  digest_ = fnv_mix(digest_, start_us);
  digest_ = fnv_mix(digest_, a.cost_us);

  if (obs::metrics_enabled()) {
    auto& reg = obs::Registry::instance();
    static obs::Counter& actions = reg.counter("maint.actions");
    static obs::Counter& busy = reg.counter("maint.busy_us");
    static obs::Counter& programmed = reg.counter("maint.cells_programmed");
    actions.add();
    busy.add(a.cost_us);
    programmed.add(cells);
    auto& attr = obs::Attribution::instance();
    attr.add(obs_label_, std::string(task_name(a.kind)) + "_us",
             static_cast<double>(a.cost_us));
    attr.add(obs_label_, "actions", 1.0);
  }
  if (obs::trace_enabled()) {
    if (trace_pid_ < 0) trace_pid_ = obs::alloc_virtual_pid("maintenance");
    obs::emit_complete(task_name(a.kind), "maint",
                       static_cast<double>(start_us),
                       static_cast<double>(a.cost_us),
                       static_cast<int>(a.unit), trace_pid_);
  }
  return end_us;
}

std::uint64_t MaintenanceEngine::run_in_gap(std::uint64_t from_us,
                                            std::uint64_t until_us) {
  // Strict head-of-queue service keeps the schedule a pure function of the
  // queue contents: if the oldest action does not fit the gap, nothing
  // runs (no out-of-order backfill).
  while (!queue_.empty() && from_us + queue_.front().cost_us <= until_us) {
    const Action a = queue_.front();
    queue_.pop_front();
    from_us = execute(a, from_us);
  }
  return from_us;
}

std::uint64_t MaintenanceEngine::on_demand(std::uint64_t chip_free_us,
                                          std::uint64_t launch_us) {
  advance_time(launch_us);
  const std::uint64_t free_us = std::max(chip_free_us, busy_until_us_);
  std::uint64_t adjusted = std::max(launch_us, free_us);
  switch (cfg_.policy) {
    case Policy::kIdleOnly: {
      // Gap work only; demand is never delayed (actions must fit wholly
      // before the launch moment).
      if (free_us < launch_us) run_in_gap(free_us, launch_us);
      adjusted = std::max(launch_us, busy_until_us_);
      break;
    }
    case Policy::kFixedSlot: {
      // Windows that passed while the chip was idle progress the queue for
      // free; a launch landing inside a reserved window with work pending
      // is pushed to the window's end.
      std::uint64_t cursor = free_us;
      for (std::uint64_t k = free_us / cfg_.slot_period_us;
           k * cfg_.slot_period_us < launch_us && !queue_.empty(); ++k) {
        const std::uint64_t ws = k * cfg_.slot_period_us;
        const std::uint64_t we =
            std::min<std::uint64_t>(ws + cfg_.slot_len_us, launch_us);
        const std::uint64_t from = std::max(cursor, ws);
        if (from >= we) continue;
        cursor = run_in_gap(from, we);
      }
      adjusted = std::max(launch_us, busy_until_us_);
      const std::uint64_t ws =
          (adjusted / cfg_.slot_period_us) * cfg_.slot_period_us;
      const std::uint64_t we = ws + cfg_.slot_len_us;
      if (!queue_.empty() && adjusted >= ws && adjusted < we) {
        run_in_gap(std::max(adjusted, ws), we);
        adjusted = we;  // the window is reserved; demand resumes after it
      }
      break;
    }
    case Policy::kUrgency: {
      // Idle gaps are free, then expired deadlines preempt the launch.
      if (free_us < launch_us) run_in_gap(free_us, launch_us);
      std::uint64_t t = std::max(launch_us, busy_until_us_);
      for (auto it = queue_.begin(); it != queue_.end();) {
        if (it->deadline_us <= launch_us) {
          const Action a = *it;
          it = queue_.erase(it);
          t = execute(a, t);
        } else {
          ++it;
        }
      }
      adjusted = std::max(t, std::max(launch_us, busy_until_us_));
      break;
    }
  }
  stats_.demand_delay_us += adjusted - launch_us;
  return adjusted;
}

void MaintenanceEngine::run_pending() {
  std::uint64_t t = std::max(now_us_, busy_until_us_);
  while (!queue_.empty()) {
    const Action a = queue_.front();
    queue_.pop_front();
    t = execute(a, t);
  }
}

circuit::CrossbarHealth MaintenanceEngine::publish_health() {
  circuit::CrossbarHealth total;
  bool first = true;
  for (const Unit& u : units_) {
    const circuit::CrossbarHealth h = u.exec->health();
    if (first) {
      total = h;
      first = false;
    } else {
      total += h;
    }
  }
  if (obs::metrics_enabled()) {
    auto& reg = obs::Registry::instance();
    reg.gauge("maint.health.stuck_cells")
        .set(static_cast<double>(total.stuck_cells));
    reg.gauge("maint.health.defective_cells")
        .set(static_cast<double>(total.defective_cells));
    reg.gauge("maint.health.spare_cols_used")
        .set(static_cast<double>(total.spare_cols_used));
    reg.gauge("maint.health.spares_remaining")
        .set(static_cast<double>(total.spares_remaining));
    reg.gauge("maint.health.max_age_s").set(total.seconds_since_program);
    reg.gauge("maint.health.min_cumulative_drift").set(total.cumulative_drift);
    reg.gauge("maint.pending_actions")
        .set(static_cast<double>(queue_.size()));
  }
  return total;
}

MaintenanceStats MaintenanceEngine::stats() const {
  MaintenanceStats s = stats_;
  s.deferred = queue_.size();
  return s;
}

const device::EnduranceTracker& MaintenanceEngine::wear(
    std::size_t unit, std::size_t grid) const {
  RERAMDL_CHECK_LT(unit, units_.size());
  RERAMDL_CHECK_LT(grid, units_[unit].wear.size());
  return units_[unit].wear[grid];
}

}  // namespace reramdl::maint
