#include "nn/conv2d.hpp"

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "tensor/ops.hpp"

namespace reramdl::nn {

namespace detail {

Tensor rows_to_nchw(const Tensor& rows, std::size_t n, std::size_t out_c,
                    std::size_t oh, std::size_t ow) {
  RERAMDL_CHECK_EQ(rows.shape()[0], n * oh * ow);
  RERAMDL_CHECK_EQ(rows.shape()[1], out_c);
  Tensor y(Shape{n, out_c, oh, ow});
  const float* pr = rows.data();
  float* py = y.data();
  parallel::parallel_for(0, n, 1, [&](std::size_t s0, std::size_t s1) {
    for (std::size_t s = s0; s < s1; ++s)
      for (std::size_t p = 0; p < oh * ow; ++p)
        for (std::size_t c = 0; c < out_c; ++c)
          py[(s * out_c + c) * oh * ow + p] = pr[(s * oh * ow + p) * out_c + c];
  });
  return y;
}

Tensor nchw_to_rows(const Tensor& x) {
  RERAMDL_CHECK_EQ(x.shape().rank(), 4u);
  const std::size_t n = x.shape()[0], c = x.shape()[1], oh = x.shape()[2],
                    ow = x.shape()[3];
  Tensor rows(Shape{n * oh * ow, c});
  nchw_to_rows_into(x, rows);
  return rows;
}

void nchw_to_rows_into(const Tensor& x, Tensor& rows) {
  RERAMDL_CHECK_EQ(x.shape().rank(), 4u);
  const std::size_t n = x.shape()[0], c = x.shape()[1], oh = x.shape()[2],
                    ow = x.shape()[3];
  RERAMDL_CHECK_EQ(rows.shape()[0], n * oh * ow);
  RERAMDL_CHECK_EQ(rows.shape()[1], c);
  const float* px = x.data();
  float* pr = rows.data();
  parallel::parallel_for(0, n, 1, [&](std::size_t s0, std::size_t s1) {
    for (std::size_t s = s0; s < s1; ++s)
      for (std::size_t ch = 0; ch < c; ++ch)
        for (std::size_t p = 0; p < oh * ow; ++p)
          pr[(s * oh * ow + p) * c + ch] = px[(s * c + ch) * oh * ow + p];
  });
}

}  // namespace detail

Conv2D::Conv2D(std::size_t in_c, std::size_t in_h, std::size_t in_w,
               std::size_t out_c, std::size_t k, std::size_t stride,
               std::size_t pad, Rng& rng)
    : out_c_(out_c),
      b_(Shape{out_c}),
      gb_(Shape{out_c}) {
  geom_ = ConvGeometry{in_c, in_h, in_w, k, k, stride, pad};
  const std::size_t psz = geom_.patch_size();
  w_ = Tensor::he_normal(Shape{psz, out_c}, rng, psz);
  gw_ = Tensor(Shape{psz, out_c});
}

void Conv2D::ensure_plan(std::size_t batch) {
  plan::count_cache(plan_built_ && planned_batch_ == batch);
  if (!plan_built_) {
    im2col_plan_ = Im2ColPlan::build(geom_);
    col2im_plan_ = Col2ImPlan::build(geom_);
    plan_built_ = true;
  }
  planned_batch_ = batch;
}

Tensor Conv2D::forward(const Tensor& x, bool train) {
  RERAMDL_CHECK_EQ(x.shape().rank(), 4u);
  const std::size_t n = x.shape()[0];
  if (plan::enabled()) {
    ensure_plan(n);
    const std::size_t m = n * im2col_plan_.patches();
    Tensor& cols = ws_.tensor(train ? detail::kWsCols : detail::kWsColsEval,
                              Shape{m, geom_.patch_size()});
    im2col_plan_.run(x.data(), n, cols.data());
    Tensor hook_rows;
    Tensor* rows = &hook_rows;
    if (matmul_fn_) {
      hook_rows = matmul_fn_(cols, w_);
    } else {
      rows = &ws_.tensor(detail::kWsRows, Shape{m, out_c_});
      ops::matmul_into(cols, w_, *rows);
    }
    ops::add_row_bias(*rows, b_);
    if (train) {
      cached_batch_ = n;
      used_plan_ = true;
    }
    Tensor y =
        detail::rows_to_nchw(*rows, n, out_c_, geom_.out_h(), geom_.out_w());
    // Inference passes end here; training keeps cols live for backward.
    if (!train) ws_.trim();
    return y;
  }
  Tensor cols = im2col(x, geom_);
  Tensor rows = matmul_fn_ ? matmul_fn_(cols, w_) : ops::matmul(cols, w_);
  ops::add_row_bias(rows, b_);
  if (train) {
    cached_cols_ = std::move(cols);
    cached_batch_ = n;
    used_plan_ = false;
  }
  return detail::rows_to_nchw(rows, n, out_c_, geom_.out_h(), geom_.out_w());
}

Tensor Conv2D::backward(const Tensor& grad_out) {
  RERAMDL_CHECK_GT(cached_batch_, 0u);
  if (used_plan_) {
    const std::size_t n = cached_batch_;
    const std::size_t m = n * im2col_plan_.patches();
    // Same shapes as the caching forward, so these are pure re-fetches.
    Tensor& cols = ws_.tensor(detail::kWsCols, Shape{m, geom_.patch_size()});
    Tensor& grows = ws_.tensor(detail::kWsGrows, Shape{m, out_c_});
    detail::nchw_to_rows_into(grad_out, grows);
    ops::matmul_transposed_a_acc(cols, grows, gw_);
    ops::column_sums_acc(grows, gb_);
    // Transposed-weight panel: lets the input-gradient product run in the
    // vectorizable axpy form, bit-identical to matmul_transposed_b on w_.
    // Rebuilt every step because the optimizer updates w_ in place.
    Tensor& wt = ws_.tensor(detail::kWsWt, Shape{out_c_, geom_.patch_size()});
    ops::transpose_into(w_, wt);
    Tensor& gcols = ws_.tensor(detail::kWsGcols, Shape{m, geom_.patch_size()});
    ops::matmul_transposed_b_packed_into(grows, wt, gcols);
    Tensor gx(Shape{n, geom_.in_c, geom_.in_h, geom_.in_w});
    col2im_plan_.run(gcols.data(), n, gx.data());
    ws_.trim();  // pass boundary: every slot's contents are dead now
    return gx;
  }
  Tensor grows = detail::nchw_to_rows(grad_out);
  gw_ += ops::matmul_transposed_a(cached_cols_, grows);
  gb_ += ops::column_sums(grows);
  Tensor gcols = ops::matmul_transposed_b(grows, w_);
  return col2im(gcols, geom_, cached_batch_);
}

std::vector<ParamRef> Conv2D::params() {
  return {{&w_, &gw_}, {&b_, &gb_}};
}

LayerSpec Conv2D::spec(std::size_t in_c, std::size_t in_h, std::size_t in_w) const {
  RERAMDL_CHECK_EQ(in_c, geom_.in_c);
  RERAMDL_CHECK_EQ(in_h, geom_.in_h);
  RERAMDL_CHECK_EQ(in_w, geom_.in_w);
  LayerSpec l;
  l.kind = LayerKind::kConv;
  l.name = "conv2d";
  l.in_c = geom_.in_c;
  l.in_h = geom_.in_h;
  l.in_w = geom_.in_w;
  l.kh = geom_.kh;
  l.kw = geom_.kw;
  l.stride = geom_.stride;
  l.pad = geom_.pad;
  l.out_c = out_c_;
  l.out_h = geom_.out_h();
  l.out_w = geom_.out_w();
  return l;
}

}  // namespace reramdl::nn
