// 2-D convolution layer (paper's CONV), computed as im2col patches times a
// flattened kernel matrix — the exact matrix the data-mapping engine places
// on crossbar arrays (Fig. 4: rows = Kx*Ky*Cl wordlines, cols = Cl+1
// bitlines).
#pragma once

#include "nn/dense.hpp"
#include "nn/layer.hpp"
#include "tensor/conv_plan.hpp"
#include "tensor/im2col.hpp"
#include "tensor/workspace.hpp"

namespace reramdl::nn {

class Conv2D : public Layer {
 public:
  Conv2D(std::size_t in_c, std::size_t in_h, std::size_t in_w, std::size_t out_c,
         std::size_t k, std::size_t stride, std::size_t pad, Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<ParamRef> params() override;
  std::string name() const override { return "conv2d"; }
  LayerSpec spec(std::size_t in_c, std::size_t in_h, std::size_t in_w) const override;

  // Flattened kernel matrix [Kx*Ky*Cin, Cout].
  Tensor& weights() { return w_; }
  const Tensor& weights() const { return w_; }
  Tensor& bias() { return b_; }

  // Replace the im2col GEMM (e.g. with a crossbar evaluation). The injected
  // fn must be thread-safe (see MatmulFn in dense.hpp); the default is the
  // blocked parallel ops::matmul.
  void set_forward_matmul(MatmulFn fn) { matmul_fn_ = std::move(fn); }

  const ConvGeometry& geometry() const { return geom_; }
  std::size_t out_channels() const { return out_c_; }

 private:
  // Builds the gather/scatter index plans on first use and keys the cached
  // execution plan on the batch size (plan::count_cache hit/miss).
  void ensure_plan(std::size_t batch);

  ConvGeometry geom_;
  std::size_t out_c_;
  Tensor w_, b_, gw_, gb_;
  Tensor cached_cols_;
  std::size_t cached_batch_ = 0;
  MatmulFn matmul_fn_;
  // Training-step fast path (plan::enabled()): precomputed im2col/col2im
  // index plans plus an arena of reusable workspace tensors.
  Im2ColPlan im2col_plan_;
  Col2ImPlan col2im_plan_;
  bool plan_built_ = false;
  std::size_t planned_batch_ = 0;
  bool used_plan_ = false;  // which path the last train-forward took
  Workspace ws_;
};

// Shared helpers between Conv2D and TransposedConv2D.
namespace detail {
// [N*oh*ow, out_c] row-major patch results -> [N, out_c, oh, ow].
Tensor rows_to_nchw(const Tensor& rows, std::size_t n, std::size_t out_c,
                    std::size_t oh, std::size_t ow);
// [N, out_c, oh, ow] -> [N*oh*ow, out_c].
Tensor nchw_to_rows(const Tensor& x);
// As nchw_to_rows, but writes into `rows` (already shaped [N*oh*ow, c]).
void nchw_to_rows_into(const Tensor& x, Tensor& rows);

// Workspace slot layout shared by Conv2D and TransposedConv2D. kCols holds
// the training-forward patch matrix (consumed again by backward); eval-mode
// forwards stage in kColsEval so they never clobber the training cache,
// matching the legacy cached_cols_ semantics.
enum WsSlot : std::size_t {
  kWsCols = 0,
  kWsColsEval,
  kWsRows,
  kWsGrows,
  kWsWt,
  kWsGcols,
};
}  // namespace detail

}  // namespace reramdl::nn
