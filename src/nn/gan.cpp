#include "nn/gan.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace reramdl::nn {
namespace {

double logits_accuracy(const Tensor& logits, float target) {
  std::size_t correct = 0;
  for (std::size_t i = 0; i < logits.numel(); ++i) {
    const bool says_real = logits[i] > 0.0f;  // sigmoid(x) > 0.5
    if (says_real == (target > 0.5f)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(logits.numel());
}

}  // namespace

GanTrainer::GanTrainer(Sequential& generator, Sequential& discriminator,
                       Optimizer& opt_g, Optimizer& opt_d,
                       std::size_t latent_dim, bool computation_sharing,
                       GanObjective objective, float weight_clip)
    : g_(generator),
      d_(discriminator),
      opt_g_(opt_g),
      opt_d_(opt_d),
      latent_dim_(latent_dim),
      cs_(computation_sharing),
      objective_(objective),
      weight_clip_(weight_clip) {
  RERAMDL_CHECK_GT(latent_dim, 0u);
  RERAMDL_CHECK_GT(weight_clip, 0.0f);
}

LossResult GanTrainer::phase_loss(const Tensor& logits, bool real_label) const {
  if (objective_ == GanObjective::kMinimaxBce) {
    const std::vector<float> targets(logits.numel(),
                                     real_label ? 1.0f : 0.0f);
    return bce_with_logits(logits, targets);
  }
  // Wasserstein: minimize -mean(critic) for "real" targets, +mean for fake.
  const float sign = real_label ? -1.0f : 1.0f;
  LossResult r;
  r.grad = Tensor(logits.shape());
  double mean = 0.0;
  const float inv_n = 1.0f / static_cast<float>(logits.numel());
  for (std::size_t i = 0; i < logits.numel(); ++i) {
    mean += logits[i];
    r.grad[i] = sign * inv_n;
  }
  r.loss = sign * static_cast<float>(mean / static_cast<double>(logits.numel()));
  return r;
}

void GanTrainer::clip_critic_weights() {
  for (auto& p : d_.params())
    for (std::size_t i = 0; i < p.value->numel(); ++i)
      (*p.value)[i] = std::clamp((*p.value)[i], -weight_clip_, weight_clip_);
}

Tensor GanTrainer::noise(std::size_t batch, Rng& rng) const {
  return Tensor::uniform(Shape{batch, latent_dim_}, rng, -1.0f, 1.0f);
}

GanStepStats GanTrainer::step(const Tensor& real_batch, Rng& rng) {
  const std::size_t b = real_batch.shape()[0];
  RERAMDL_CHECK_GT(b, 0u);
  GanStepStats stats;

  opt_d_.zero_grad();

  // Phase 1: D on real samples, accurate label '1'.
  {
    Tensor logits = d_.forward(real_batch, /*train=*/true);
    LossResult r = phase_loss(logits, /*real_label=*/true);
    stats.d_loss_real = r.loss;
    stats.d_acc_real = logits_accuracy(logits, 1.0f);
    d_.backward(r.grad);
  }

  // Phase 2: D on generated samples, accurate label '0'. G participates but
  // is not updated.
  Tensor fake_logits;  // kept for CS
  {
    Tensor z = noise(b, rng);
    Tensor fake = g_.forward(z, /*train=*/true);
    fake_logits = d_.forward(fake, /*train=*/true);
    LossResult r = phase_loss(fake_logits, /*real_label=*/false);
    stats.d_loss_fake = r.loss;
    stats.d_acc_fake = logits_accuracy(fake_logits, 0.0f);
    d_.backward(r.grad);
  }

  // T11: derivatives from phases 1 and 2 are summed and applied to D.
  opt_d_.step();
  if (objective_ == GanObjective::kWasserstein) clip_critic_weights();

  // Phase 3: train G with inaccurate label '1' for generated samples.
  opt_g_.zero_grad();
  {
    Tensor logits3;
    if (cs_) {
      // Computation sharing: reuse phase 2's forward activations; only the
      // loss branch differs.
      logits3 = fake_logits;
    } else {
      Tensor z = noise(b, rng);
      Tensor fake = g_.forward(z, /*train=*/true);
      logits3 = d_.forward(fake, /*train=*/true);
    }
    LossResult r = phase_loss(logits3, /*real_label=*/true);
    stats.g_loss = r.loss;
    // Error propagates all the way back through D into G; D's accumulated
    // gradients from this pass are discarded at the next zero_grad.
    Tensor grad_at_g_out = d_.backward(r.grad);
    g_.backward(grad_at_g_out);
    opt_g_.step();
  }

  return stats;
}

Tensor GanTrainer::sample(std::size_t count, Rng& rng) {
  Tensor z = noise(count, rng);
  return g_.forward(z, /*train=*/false);
}

}  // namespace reramdl::nn
