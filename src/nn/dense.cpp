#include "nn/dense.hpp"

#include "common/check.hpp"
#include "tensor/ops.hpp"

namespace reramdl::nn {

Dense::Dense(std::size_t in_features, std::size_t out_features, Rng& rng)
    : in_(in_features),
      out_(out_features),
      w_(Tensor::he_normal(Shape{in_features, out_features}, rng, in_features)),
      b_(Shape{out_features}),
      gw_(Shape{in_features, out_features}),
      gb_(Shape{out_features}) {}

Tensor Dense::forward(const Tensor& x, bool train) {
  RERAMDL_CHECK_EQ(x.shape().rank(), 2u);
  RERAMDL_CHECK_EQ(x.shape()[1], in_);
  if (train) cached_input_ = x;
  Tensor y = matmul_fn_ ? matmul_fn_(x, w_) : ops::matmul(x, w_);
  ops::add_row_bias(y, b_);
  return y;
}

Tensor Dense::backward(const Tensor& grad_out) {
  RERAMDL_CHECK_EQ(grad_out.shape().rank(), 2u);
  RERAMDL_CHECK_EQ(grad_out.shape()[1], out_);
  RERAMDL_CHECK_EQ(cached_input_.shape()[0], grad_out.shape()[0]);
  if (plan::enabled()) {
    // Accumulating products skip the gradient-sized temporaries, and the
    // pre-transposed weight panel lets the input-gradient product run in the
    // vectorizable axpy form — bit-identical to matmul_transposed_b on w_.
    ops::matmul_transposed_a_acc(cached_input_, grad_out, gw_);
    ops::column_sums_acc(grad_out, gb_);
    Tensor& wt = ws_.tensor(0, Shape{out_, in_});
    ops::transpose_into(w_, wt);
    Tensor gx = ops::matmul_transposed_b_packed(grad_out, wt);
    ws_.trim();  // pass boundary: the transposed panel is dead now
    return gx;
  }
  gw_ += ops::matmul_transposed_a(cached_input_, grad_out);
  gb_ += ops::column_sums(grad_out);
  return ops::matmul_transposed_b(grad_out, w_);
}

std::vector<ParamRef> Dense::params() {
  return {{&w_, &gw_}, {&b_, &gb_}};
}

LayerSpec Dense::spec(std::size_t in_c, std::size_t in_h, std::size_t in_w) const {
  RERAMDL_CHECK_EQ(in_c * in_h * in_w, in_);
  LayerSpec l;
  l.kind = LayerKind::kDense;
  l.name = "dense";
  l.in_c = in_;
  l.in_h = l.in_w = 1;
  l.out_c = out_;
  l.out_h = l.out_w = 1;
  return l;
}

}  // namespace reramdl::nn
