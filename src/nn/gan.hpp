// GAN training loop, phase-for-phase the ReGAN schedule (paper Fig. 8):
//   ① train D on real samples (labels '1'),
//   ② train D on generated samples (labels '0'),
//   then one D weight update from the summed derivatives (T11),
//   ③ train G through the concatenated G+D network with inaccurate labels
//     ('1' for generated samples), updating only G (T14).
//
// With computation sharing (Fig. 9) enabled, ② and ③ reuse the same forward
// pass: the two loss branches fork at the loss function, and ③'s backward
// runs against the intermediate values stored during ② — including the
// deliberate staleness of the paper's schedule, where D's weights update at
// T11 while ③'s error is still propagating until T14.
#pragma once

#include <cstddef>

#include "common/rng.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/sequential.hpp"

namespace reramdl::nn {

// Training objective. kMinimaxBce is the DCGAN objective the paper's Fig. 8
// schedule describes (labels '1' / '0' through a sigmoid BCE loss);
// kWasserstein is the improved-WGAN-style critic objective the paper cites
// as a ReGAN-supported variant — D becomes a critic whose weights are
// clipped to [-clip, clip] after each update.
enum class GanObjective { kMinimaxBce, kWasserstein };

struct GanStepStats {
  float d_loss_real = 0.0f;
  float d_loss_fake = 0.0f;
  float g_loss = 0.0f;
  // Fraction of real (resp. fake) samples D classifies correctly.
  double d_acc_real = 0.0;
  double d_acc_fake = 0.0;
};

class GanTrainer {
 public:
  // latent_dim: size of the uniform noise vector z (DCGAN input).
  // computation_sharing: share ②'s forward pass with ③ (ReGAN CS).
  GanTrainer(Sequential& generator, Sequential& discriminator,
             Optimizer& opt_g, Optimizer& opt_d, std::size_t latent_dim,
             bool computation_sharing,
             GanObjective objective = GanObjective::kMinimaxBce,
             float weight_clip = 0.01f);

  // One batch of GAN training; real_batch is [B, C, H, W].
  GanStepStats step(const Tensor& real_batch, Rng& rng);

  // Sample a batch of generator outputs (eval mode).
  Tensor sample(std::size_t count, Rng& rng);

  std::size_t latent_dim() const { return latent_dim_; }
  GanObjective objective() const { return objective_; }

 private:
  Tensor noise(std::size_t batch, Rng& rng) const;
  // Phase losses under the configured objective. `real_label` is the BCE
  // target; for Wasserstein it selects the critic sign.
  LossResult phase_loss(const Tensor& logits, bool real_label) const;
  void clip_critic_weights();

  Sequential& g_;
  Sequential& d_;
  Optimizer& opt_g_;
  Optimizer& opt_d_;
  std::size_t latent_dim_;
  bool cs_;
  GanObjective objective_;
  float weight_clip_;
};

}  // namespace reramdl::nn
