#include "nn/flatten.hpp"

#include "common/check.hpp"

namespace reramdl::nn {

Tensor Flatten::forward(const Tensor& x, bool train) {
  RERAMDL_CHECK_GE(x.shape().rank(), 2u);
  if (train) cached_in_shape_ = x.shape();
  const std::size_t n = x.shape()[0];
  return x.reshaped(Shape{n, x.numel() / n});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  return grad_out.reshaped(cached_in_shape_);
}

LayerSpec Flatten::spec(std::size_t in_c, std::size_t in_h,
                        std::size_t in_w) const {
  LayerSpec l;
  l.kind = LayerKind::kFlatten;
  l.name = "flatten";
  l.in_c = in_c;
  l.in_h = in_h;
  l.in_w = in_w;
  l.out_c = in_c * in_h * in_w;
  l.out_h = l.out_w = 1;
  return l;
}

Tensor Reshape::forward(const Tensor& x, bool train) {
  if (train) cached_in_shape_ = x.shape();
  const std::size_t n = x.shape()[0];
  RERAMDL_CHECK_EQ(x.numel(), n * c_ * h_ * w_);
  return x.reshaped(Shape{n, c_, h_, w_});
}

Tensor Reshape::backward(const Tensor& grad_out) {
  return grad_out.reshaped(cached_in_shape_);
}

LayerSpec Reshape::spec(std::size_t in_c, std::size_t in_h,
                        std::size_t in_w) const {
  RERAMDL_CHECK_EQ(in_c * in_h * in_w, c_ * h_ * w_);
  LayerSpec l;
  l.kind = LayerKind::kFlatten;
  l.name = "reshape";
  l.in_c = in_c;
  l.in_h = in_h;
  l.in_w = in_w;
  l.out_c = c_;
  l.out_h = h_;
  l.out_w = w_;
  return l;
}

}  // namespace reramdl::nn
