#include "nn/activations.hpp"

#include <cmath>

#include "common/check.hpp"

namespace reramdl::nn {
namespace {

LayerSpec passthrough_spec(const char* name, std::size_t c, std::size_t h,
                           std::size_t w) {
  LayerSpec l;
  l.kind = LayerKind::kActivation;
  l.name = name;
  l.in_c = l.out_c = c;
  l.in_h = l.out_h = h;
  l.in_w = l.out_w = w;
  return l;
}

}  // namespace

Tensor ReLU::forward(const Tensor& x, bool train) {
  Tensor y = x;
  if (train) mask_.assign(x.numel(), false);
  for (std::size_t i = 0; i < y.numel(); ++i) {
    if (y[i] > 0.0f) {
      if (train) mask_[i] = true;
    } else {
      y[i] = 0.0f;
    }
  }
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  RERAMDL_CHECK_EQ(grad_out.numel(), mask_.size());
  Tensor gx = grad_out;
  for (std::size_t i = 0; i < gx.numel(); ++i)
    if (!mask_[i]) gx[i] = 0.0f;
  return gx;
}

LayerSpec ReLU::spec(std::size_t in_c, std::size_t in_h, std::size_t in_w) const {
  return passthrough_spec("relu", in_c, in_h, in_w);
}

Tensor LeakyReLU::forward(const Tensor& x, bool train) {
  Tensor y = x;
  if (train) mask_.assign(x.numel(), false);
  for (std::size_t i = 0; i < y.numel(); ++i) {
    if (y[i] > 0.0f) {
      if (train) mask_[i] = true;
    } else {
      y[i] *= slope_;
    }
  }
  return y;
}

Tensor LeakyReLU::backward(const Tensor& grad_out) {
  RERAMDL_CHECK_EQ(grad_out.numel(), mask_.size());
  Tensor gx = grad_out;
  for (std::size_t i = 0; i < gx.numel(); ++i)
    if (!mask_[i]) gx[i] *= slope_;
  return gx;
}

LayerSpec LeakyReLU::spec(std::size_t in_c, std::size_t in_h,
                          std::size_t in_w) const {
  return passthrough_spec("leaky_relu", in_c, in_h, in_w);
}

Tensor Sigmoid::forward(const Tensor& x, bool train) {
  Tensor y = x;
  for (std::size_t i = 0; i < y.numel(); ++i)
    y[i] = 1.0f / (1.0f + std::exp(-y[i]));
  if (train) cached_out_ = y;
  return y;
}

Tensor Sigmoid::backward(const Tensor& grad_out) {
  RERAMDL_CHECK_EQ(grad_out.numel(), cached_out_.numel());
  Tensor gx = grad_out;
  for (std::size_t i = 0; i < gx.numel(); ++i) {
    const float s = cached_out_[i];
    gx[i] *= s * (1.0f - s);
  }
  return gx;
}

LayerSpec Sigmoid::spec(std::size_t in_c, std::size_t in_h,
                        std::size_t in_w) const {
  return passthrough_spec("sigmoid", in_c, in_h, in_w);
}

Tensor Tanh::forward(const Tensor& x, bool train) {
  Tensor y = x;
  for (std::size_t i = 0; i < y.numel(); ++i) y[i] = std::tanh(y[i]);
  if (train) cached_out_ = y;
  return y;
}

Tensor Tanh::backward(const Tensor& grad_out) {
  RERAMDL_CHECK_EQ(grad_out.numel(), cached_out_.numel());
  Tensor gx = grad_out;
  for (std::size_t i = 0; i < gx.numel(); ++i) {
    const float t = cached_out_[i];
    gx[i] *= 1.0f - t * t;
  }
  return gx;
}

LayerSpec Tanh::spec(std::size_t in_c, std::size_t in_h, std::size_t in_w) const {
  return passthrough_spec("tanh", in_c, in_h, in_w);
}

}  // namespace reramdl::nn
