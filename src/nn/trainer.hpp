// Supervised training loop: batch-synchronous SGD exactly as the PipeLayer
// pipeline assumes — all inputs in a batch see the same weights, gradients
// accumulate across the batch, and a single update applies at batch end.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/sequential.hpp"
#include "tensor/workspace.hpp"

namespace reramdl::nn {

// Extract samples [first, first+count) along axis 0.
Tensor slice_batch(const Tensor& data, std::size_t first, std::size_t count);

struct EpochStats {
  double mean_loss = 0.0;  // sample-weighted mean over the epoch
  double accuracy = 0.0;
  std::size_t batches = 0;
  std::size_t samples = 0;  // actual samples seen (includes a partial tail)
};

class Trainer {
 public:
  Trainer(Sequential& net, Optimizer& opt) : net_(net), opt_(opt) {}

  // One pass over the data in shuffled order; labels parallel to axis 0.
  // Every sample is visited: a final partial batch of n % batch_size
  // samples still trains, and per-batch loss/accuracy are weighted by batch
  // size so the epoch means stay exact.
  EpochStats train_epoch(const Tensor& images,
                         const std::vector<std::size_t>& labels,
                         std::size_t batch_size, Rng& rng);

  EpochStats evaluate(const Tensor& images,
                      const std::vector<std::size_t>& labels,
                      std::size_t batch_size);

 private:
  Sequential& net_;
  Optimizer& opt_;
  // Batch staging reused across iterations (grow-only; full batches re-fetch
  // the same shape, so steady state performs no staging allocations).
  Workspace ws_;
  std::vector<std::size_t> yb_;
};

}  // namespace reramdl::nn
