// Supervised training loop: batch-synchronous SGD exactly as the PipeLayer
// pipeline assumes — all inputs in a batch see the same weights, gradients
// accumulate across the batch, and a single update applies at batch end.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/sequential.hpp"

namespace reramdl::nn {

// Extract samples [first, first+count) along axis 0.
Tensor slice_batch(const Tensor& data, std::size_t first, std::size_t count);

struct EpochStats {
  double mean_loss = 0.0;
  double accuracy = 0.0;
  std::size_t batches = 0;
};

class Trainer {
 public:
  Trainer(Sequential& net, Optimizer& opt) : net_(net), opt_(opt) {}

  // One pass over the data in shuffled order; labels parallel to axis 0.
  EpochStats train_epoch(const Tensor& images,
                         const std::vector<std::size_t>& labels,
                         std::size_t batch_size, Rng& rng);

  EpochStats evaluate(const Tensor& images,
                      const std::vector<std::size_t>& labels,
                      std::size_t batch_size);

 private:
  Sequential& net_;
  Optimizer& opt_;
};

}  // namespace reramdl::nn
