#include "nn/trainer.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/scratch.hpp"
#include "obs/obs.hpp"

namespace reramdl::nn {

Tensor slice_batch(const Tensor& data, std::size_t first, std::size_t count) {
  RERAMDL_CHECK_GE(data.shape().rank(), 1u);
  const std::size_t n = data.shape()[0];
  RERAMDL_CHECK_LE(first + count, n);
  std::vector<std::size_t> dims = data.shape().dims();
  dims[0] = count;
  Tensor out{Shape(dims)};
  const std::size_t sample = data.numel() / n;
  for (std::size_t i = 0; i < count * sample; ++i)
    out[i] = data[first * sample + i];
  return out;
}

namespace {

void slice_batch_into(const Tensor& data, std::size_t first, std::size_t count,
                      Tensor& out) {
  RERAMDL_CHECK_GE(data.shape().rank(), 1u);
  const std::size_t n = data.shape()[0];
  RERAMDL_CHECK_LE(first + count, n);
  const std::size_t sample = data.numel() / n;
  for (std::size_t i = 0; i < count * sample; ++i)
    out[i] = data[first * sample + i];
}

void gather_batch_into(const Tensor& data,
                       const std::vector<std::size_t>& order,
                       std::size_t first, std::size_t count, Tensor& out) {
  const std::size_t n = data.shape()[0];
  const std::size_t sample = data.numel() / n;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t src = order[first + i];
    for (std::size_t j = 0; j < sample; ++j)
      out[i * sample + j] = data[src * sample + j];
  }
}

Shape batch_shape(const Tensor& data, std::size_t count) {
  std::vector<std::size_t> dims = data.shape().dims();
  dims[0] = count;
  return Shape(dims);
}

// Staging slots in the trainer's workspace.
enum : std::size_t { kStageTrain = 0, kStageEval = 1 };

}  // namespace

EpochStats Trainer::train_epoch(const Tensor& images,
                                const std::vector<std::size_t>& labels,
                                std::size_t batch_size, Rng& rng) {
  RERAMDL_TRACE_SCOPE("train.epoch", "nn");
  obs::ScopedHistogramTimer obs_timer("train.epoch_ns");
  const std::size_t n = images.shape()[0];
  RERAMDL_CHECK_EQ(labels.size(), n);
  RERAMDL_CHECK_GT(batch_size, 0u);
  RERAMDL_CHECK_GT(n, 0u);
  const auto order = shuffled_indices(n, rng);

  EpochStats stats;
  double loss_sum = 0.0, acc_sum = 0.0;
  for (std::size_t first = 0; first < n; first += batch_size) {
    const std::size_t count = std::min(batch_size, n - first);
    obs::ScopedHistogramTimer step_timer("train.step_ns");
    Tensor& xb = ws_.tensor(kStageTrain, batch_shape(images, count));
    gather_batch_into(images, order, first, count, xb);
    yb_.resize(count);
    for (std::size_t i = 0; i < count; ++i) yb_[i] = labels[order[first + i]];

    opt_.zero_grad();
    Tensor logits = net_.forward(xb, /*train=*/true);
    LossResult r = softmax_cross_entropy(logits, yb_);
    net_.backward(r.grad);
    opt_.step();

    const double w = static_cast<double>(count);
    loss_sum += r.loss * w;
    acc_sum += accuracy(logits, yb_) * w;
    ++stats.batches;
    stats.samples += count;
    // Each optimizer step is one simulated step for the time-series
    // snapshots (no-op when metrics are off; never touches compute state).
    obs::snapshot_tick();
  }
  stats.mean_loss = loss_sum / static_cast<double>(stats.samples);
  stats.accuracy = acc_sum / static_cast<double>(stats.samples);
  if (obs::metrics_enabled()) {
    auto& reg = obs::Registry::instance();
    static obs::Counter& epochs = reg.counter("train.epochs");
    static obs::Counter& batches = reg.counter("train.batches");
    static obs::Counter& samples = reg.counter("train.samples");
    epochs.add();
    batches.add(stats.batches);
    samples.add(stats.samples);
    reg.gauge("train.last_loss").set(stats.mean_loss);
    reg.gauge("train.last_accuracy").set(stats.accuracy);
    reg.gauge("arena.bytes_in_use")
        .set(static_cast<double>(scratch::arena_bytes_reserved()));
  }
  return stats;
}

EpochStats Trainer::evaluate(const Tensor& images,
                             const std::vector<std::size_t>& labels,
                             std::size_t batch_size) {
  RERAMDL_TRACE_SCOPE("train.evaluate", "nn");
  const std::size_t n = images.shape()[0];
  RERAMDL_CHECK_EQ(labels.size(), n);
  RERAMDL_CHECK_GT(batch_size, 0u);
  RERAMDL_CHECK_GT(n, 0u);
  EpochStats stats;
  double loss_sum = 0.0, acc_sum = 0.0;
  for (std::size_t first = 0; first < n; first += batch_size) {
    const std::size_t count = std::min(batch_size, n - first);
    Tensor& xb = ws_.tensor(kStageEval, batch_shape(images, count));
    slice_batch_into(images, first, count, xb);
    yb_.resize(count);
    for (std::size_t i = 0; i < count; ++i) yb_[i] = labels[first + i];
    Tensor logits = net_.forward(xb, /*train=*/false);
    LossResult r = softmax_cross_entropy(logits, yb_);
    const double w = static_cast<double>(count);
    loss_sum += r.loss * w;
    acc_sum += accuracy(logits, yb_) * w;
    ++stats.batches;
    stats.samples += count;
  }
  stats.mean_loss = loss_sum / static_cast<double>(stats.samples);
  stats.accuracy = acc_sum / static_cast<double>(stats.samples);
  return stats;
}

}  // namespace reramdl::nn
