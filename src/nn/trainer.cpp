#include "nn/trainer.hpp"

#include "common/check.hpp"
#include "obs/obs.hpp"

namespace reramdl::nn {

Tensor slice_batch(const Tensor& data, std::size_t first, std::size_t count) {
  RERAMDL_CHECK_GE(data.shape().rank(), 1u);
  const std::size_t n = data.shape()[0];
  RERAMDL_CHECK_LE(first + count, n);
  std::vector<std::size_t> dims = data.shape().dims();
  dims[0] = count;
  Tensor out{Shape(dims)};
  const std::size_t sample = data.numel() / n;
  for (std::size_t i = 0; i < count * sample; ++i)
    out[i] = data[first * sample + i];
  return out;
}

namespace {

Tensor gather_batch(const Tensor& data, const std::vector<std::size_t>& order,
                    std::size_t first, std::size_t count) {
  const std::size_t n = data.shape()[0];
  std::vector<std::size_t> dims = data.shape().dims();
  dims[0] = count;
  Tensor out{Shape(dims)};
  const std::size_t sample = data.numel() / n;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t src = order[first + i];
    for (std::size_t j = 0; j < sample; ++j)
      out[i * sample + j] = data[src * sample + j];
  }
  return out;
}

}  // namespace

EpochStats Trainer::train_epoch(const Tensor& images,
                                const std::vector<std::size_t>& labels,
                                std::size_t batch_size, Rng& rng) {
  RERAMDL_TRACE_SCOPE("train.epoch", "nn");
  obs::ScopedHistogramTimer obs_timer("train.epoch_ns");
  const std::size_t n = images.shape()[0];
  RERAMDL_CHECK_EQ(labels.size(), n);
  RERAMDL_CHECK_GT(batch_size, 0u);
  const auto order = shuffled_indices(n, rng);

  EpochStats stats;
  double loss_sum = 0.0, acc_sum = 0.0;
  for (std::size_t first = 0; first + batch_size <= n; first += batch_size) {
    Tensor xb = gather_batch(images, order, first, batch_size);
    std::vector<std::size_t> yb(batch_size);
    for (std::size_t i = 0; i < batch_size; ++i) yb[i] = labels[order[first + i]];

    opt_.zero_grad();
    Tensor logits = net_.forward(xb, /*train=*/true);
    LossResult r = softmax_cross_entropy(logits, yb);
    net_.backward(r.grad);
    opt_.step();

    loss_sum += r.loss;
    acc_sum += accuracy(logits, yb);
    ++stats.batches;
  }
  RERAMDL_CHECK_GT(stats.batches, 0u);
  stats.mean_loss = loss_sum / static_cast<double>(stats.batches);
  stats.accuracy = acc_sum / static_cast<double>(stats.batches);
  if (obs::metrics_enabled()) {
    auto& reg = obs::Registry::instance();
    static obs::Counter& epochs = reg.counter("train.epochs");
    static obs::Counter& batches = reg.counter("train.batches");
    static obs::Counter& samples = reg.counter("train.samples");
    epochs.add();
    batches.add(stats.batches);
    samples.add(stats.batches * batch_size);
    reg.gauge("train.last_loss").set(stats.mean_loss);
    reg.gauge("train.last_accuracy").set(stats.accuracy);
  }
  return stats;
}

EpochStats Trainer::evaluate(const Tensor& images,
                             const std::vector<std::size_t>& labels,
                             std::size_t batch_size) {
  RERAMDL_TRACE_SCOPE("train.evaluate", "nn");
  const std::size_t n = images.shape()[0];
  RERAMDL_CHECK_EQ(labels.size(), n);
  EpochStats stats;
  double loss_sum = 0.0, acc_sum = 0.0;
  for (std::size_t first = 0; first + batch_size <= n; first += batch_size) {
    Tensor xb = slice_batch(images, first, batch_size);
    std::vector<std::size_t> yb(labels.begin() + static_cast<long>(first),
                                labels.begin() + static_cast<long>(first + batch_size));
    Tensor logits = net_.forward(xb, /*train=*/false);
    LossResult r = softmax_cross_entropy(logits, yb);
    loss_sum += r.loss;
    acc_sum += accuracy(logits, yb);
    ++stats.batches;
  }
  RERAMDL_CHECK_GT(stats.batches, 0u);
  stats.mean_loss = loss_sum / static_cast<double>(stats.batches);
  stats.accuracy = acc_sum / static_cast<double>(stats.batches);
  return stats;
}

}  // namespace reramdl::nn
