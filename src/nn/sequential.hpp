// Sequential network container: the layer chain of Fig. 1 (CONV -> POOL ->
// ... -> IP). Provides the forward / backward passes the pipeline models
// schedule and the spec extraction the mapping engine consumes.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "nn/layer.hpp"

namespace reramdl::nn {

class Sequential {
 public:
  Sequential() = default;
  Sequential(Sequential&&) = default;
  Sequential& operator=(Sequential&&) = default;

  void add(LayerPtr layer);
  template <typename L, typename... Args>
  L& emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    add(std::move(layer));
    return ref;
  }

  Tensor forward(const Tensor& x, bool train);
  // Returns dLoss/dInput — needed by the GAN generator pass, where the error
  // propagates through the whole discriminator into the generator.
  Tensor backward(const Tensor& grad_out);

  std::vector<ParamRef> params();
  std::size_t num_layers() const { return layers_.size(); }
  Layer& layer(std::size_t i);

  // Shape-propagated specs for an input data cube (c, h, w).
  NetworkSpec specs(std::string name, std::size_t in_c, std::size_t in_h,
                    std::size_t in_w) const;

 private:
  std::vector<LayerPtr> layers_;
};

}  // namespace reramdl::nn
