// Dropout (inverted scaling): used by the AlexNet/VGG-class training
// workloads in the PipeLayer benchmark mix. In hardware this is a masked
// read of the morphable subarray outputs — free in the cost model, so it
// only exists on the functional plane.
#pragma once

#include "common/rng.hpp"
#include "nn/layer.hpp"

namespace reramdl::nn {

class Dropout : public Layer {
 public:
  Dropout(float rate, Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "dropout"; }
  LayerSpec spec(std::size_t in_c, std::size_t in_h, std::size_t in_w) const override;

  float rate() const { return rate_; }

 private:
  float rate_;
  Rng* rng_;
  std::vector<bool> keep_;
};

// Softmax as a layer (for pipelines that want explicit probabilities rather
// than the fused softmax-cross-entropy loss).
class Softmax : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "softmax"; }
  LayerSpec spec(std::size_t in_c, std::size_t in_h, std::size_t in_w) const override;

 private:
  Tensor cached_out_;
};

}  // namespace reramdl::nn
