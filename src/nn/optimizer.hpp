// Optimizers. The paper's training pipeline accumulates weight gradients over
// a batch and applies them in a single update cycle; step() is that update
// cycle, and zero_grad() models clearing the update accumulators.
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace reramdl::nn {

class Optimizer {
 public:
  explicit Optimizer(std::vector<ParamRef> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  virtual void step() = 0;
  void zero_grad();
  std::size_t num_params() const { return params_.size(); }

 protected:
  std::vector<ParamRef> params_;
};

class Sgd : public Optimizer {
 public:
  Sgd(std::vector<ParamRef> params, float lr, float momentum = 0.0f);
  void step() override;

 private:
  float lr_, momentum_;
  std::vector<Tensor> velocity_;
};

class Adam : public Optimizer {
 public:
  Adam(std::vector<ParamRef> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);
  void step() override;

 private:
  float lr_, beta1_, beta2_, eps_;
  std::size_t t_ = 0;
  std::vector<Tensor> m_, v_;
};

}  // namespace reramdl::nn
