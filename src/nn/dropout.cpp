#include "nn/dropout.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace reramdl::nn {

Dropout::Dropout(float rate, Rng& rng) : rate_(rate), rng_(&rng) {
  RERAMDL_CHECK_GE(rate, 0.0f);
  RERAMDL_CHECK_LT(rate, 1.0f);
}

Tensor Dropout::forward(const Tensor& x, bool train) {
  if (!train || rate_ == 0.0f) return x;
  keep_.assign(x.numel(), true);
  Tensor y = x;
  const float scale = 1.0f / (1.0f - rate_);
  for (std::size_t i = 0; i < y.numel(); ++i) {
    if (rng_->bernoulli(rate_)) {
      keep_[i] = false;
      y[i] = 0.0f;
    } else {
      y[i] *= scale;
    }
  }
  return y;
}

Tensor Dropout::backward(const Tensor& grad_out) {
  RERAMDL_CHECK_EQ(grad_out.numel(), keep_.size());
  Tensor gx = grad_out;
  const float scale = 1.0f / (1.0f - rate_);
  for (std::size_t i = 0; i < gx.numel(); ++i)
    gx[i] = keep_[i] ? gx[i] * scale : 0.0f;
  return gx;
}

LayerSpec Dropout::spec(std::size_t in_c, std::size_t in_h,
                        std::size_t in_w) const {
  LayerSpec l;
  l.kind = LayerKind::kActivation;
  l.name = "dropout";
  l.in_c = l.out_c = in_c;
  l.in_h = l.out_h = in_h;
  l.in_w = l.out_w = in_w;
  return l;
}

Tensor Softmax::forward(const Tensor& x, bool train) {
  RERAMDL_CHECK_EQ(x.shape().rank(), 2u);
  const std::size_t n = x.shape()[0], k = x.shape()[1];
  Tensor y = x;
  for (std::size_t i = 0; i < n; ++i) {
    float* row = y.data() + i * k;
    const float mx = *std::max_element(row, row + k);
    double z = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      row[j] = std::exp(row[j] - mx);
      z += row[j];
    }
    for (std::size_t j = 0; j < k; ++j)
      row[j] = static_cast<float>(row[j] / z);
  }
  if (train) cached_out_ = y;
  return y;
}

Tensor Softmax::backward(const Tensor& grad_out) {
  RERAMDL_CHECK_EQ(grad_out.numel(), cached_out_.numel());
  const std::size_t n = cached_out_.shape()[0], k = cached_out_.shape()[1];
  Tensor gx(cached_out_.shape());
  for (std::size_t i = 0; i < n; ++i) {
    const float* s = cached_out_.data() + i * k;
    const float* g = grad_out.data() + i * k;
    double dot = 0.0;
    for (std::size_t j = 0; j < k; ++j) dot += static_cast<double>(s[j]) * g[j];
    for (std::size_t j = 0; j < k; ++j)
      gx.data()[i * k + j] = s[j] * (g[j] - static_cast<float>(dot));
  }
  return gx;
}

LayerSpec Softmax::spec(std::size_t in_c, std::size_t in_h,
                        std::size_t in_w) const {
  LayerSpec l;
  l.kind = LayerKind::kActivation;
  l.name = "softmax";
  l.in_c = l.out_c = in_c;
  l.in_h = l.out_h = in_h;
  l.in_w = l.out_w = in_w;
  return l;
}

}  // namespace reramdl::nn
