#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace reramdl::nn {

LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<std::size_t>& labels) {
  RERAMDL_CHECK_EQ(logits.shape().rank(), 2u);
  const std::size_t n = logits.shape()[0], k = logits.shape()[1];
  RERAMDL_CHECK_EQ(labels.size(), n);
  LossResult r;
  r.grad = Tensor(logits.shape());
  double loss = 0.0;
  const float* pl = logits.data();
  float* pg = r.grad.data();
  const float inv_n = 1.0f / static_cast<float>(n);
  for (std::size_t i = 0; i < n; ++i) {
    RERAMDL_CHECK_LT(labels[i], k);
    const float* row = pl + i * k;
    const float mx = *std::max_element(row, row + k);
    double z = 0.0;
    for (std::size_t j = 0; j < k; ++j) z += std::exp(static_cast<double>(row[j] - mx));
    const double log_z = std::log(z);
    loss += log_z - static_cast<double>(row[labels[i]] - mx);
    for (std::size_t j = 0; j < k; ++j) {
      const double p = std::exp(static_cast<double>(row[j] - mx)) / z;
      pg[i * k + j] =
          (static_cast<float>(p) - (j == labels[i] ? 1.0f : 0.0f)) * inv_n;
    }
  }
  r.loss = static_cast<float>(loss / static_cast<double>(n));
  return r;
}

LossResult bce_with_logits(const Tensor& logits, const std::vector<float>& targets) {
  const std::size_t n = targets.size();
  RERAMDL_CHECK_EQ(logits.numel(), n);
  LossResult r;
  r.grad = Tensor(logits.shape());
  double loss = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = logits[i];
    const double t = targets[i];
    // log(1 + exp(-|x|)) formulation: stable for large |x|.
    loss += std::max(x, 0.0) - x * t + std::log1p(std::exp(-std::abs(x)));
    const double s = 1.0 / (1.0 + std::exp(-x));
    r.grad[i] = static_cast<float>(s - t) * inv_n;
  }
  r.loss = static_cast<float>(loss / static_cast<double>(n));
  return r;
}

LossResult mse(const Tensor& pred, const Tensor& target) {
  RERAMDL_CHECK_EQ(pred.numel(), target.numel());
  LossResult r;
  r.grad = Tensor(pred.shape());
  double loss = 0.0;
  const float inv_n = 1.0f / static_cast<float>(pred.numel());
  for (std::size_t i = 0; i < pred.numel(); ++i) {
    const float d = pred[i] - target[i];
    loss += 0.5 * static_cast<double>(d) * d;
    r.grad[i] = d * inv_n;
  }
  r.loss = static_cast<float>(loss / static_cast<double>(pred.numel()));
  return r;
}

double accuracy(const Tensor& logits, const std::vector<std::size_t>& labels) {
  RERAMDL_CHECK_EQ(logits.shape().rank(), 2u);
  const std::size_t n = logits.shape()[0], k = logits.shape()[1];
  RERAMDL_CHECK_EQ(labels.size(), n);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * k;
    const std::size_t arg = static_cast<std::size_t>(
        std::max_element(row, row + k) - row);
    if (arg == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

}  // namespace reramdl::nn
