#include "nn/transposed_conv2d.hpp"

#include "common/check.hpp"
#include "nn/conv2d.hpp"
#include "tensor/ops.hpp"

namespace reramdl::nn {

TransposedConv2D::TransposedConv2D(std::size_t in_c, std::size_t in_h,
                                   std::size_t in_w, std::size_t out_c,
                                   std::size_t k, std::size_t stride,
                                   std::size_t pad, Rng& rng)
    : in_c_(in_c),
      in_h_(in_h),
      in_w_(in_w),
      out_c_(out_c),
      k_(k),
      stride_(stride),
      pad_(pad),
      b_(Shape{out_c}),
      gb_(Shape{out_c}) {
  RERAMDL_CHECK_GE(k, pad + 1);  // equivalent conv needs pad' = k-1-pad >= 0
  const std::size_t dh = (in_h - 1) * stride + 1;
  const std::size_t dw = (in_w - 1) * stride + 1;
  dilated_geom_ = ConvGeometry{in_c, dh, dw, k, k, 1, k - 1 - pad};
  const std::size_t psz = dilated_geom_.patch_size();
  w_ = Tensor::he_normal(Shape{psz, out_c}, rng, psz);
  gw_ = Tensor(Shape{psz, out_c});
}

void TransposedConv2D::ensure_plan(std::size_t batch) {
  plan::count_cache(plan_built_ && planned_batch_ == batch);
  if (!plan_built_) {
    im2col_plan_ =
        Im2ColPlan::build_dilated(dilated_geom_, stride_, in_h_, in_w_);
    col2im_plan_ =
        Col2ImPlan::build_dilated(dilated_geom_, stride_, in_h_, in_w_);
    plan_built_ = true;
  }
  planned_batch_ = batch;
}

Tensor TransposedConv2D::forward(const Tensor& x, bool train) {
  RERAMDL_CHECK_EQ(x.shape().rank(), 4u);
  RERAMDL_CHECK_EQ(x.shape()[1], in_c_);
  RERAMDL_CHECK_EQ(x.shape()[2], in_h_);
  RERAMDL_CHECK_EQ(x.shape()[3], in_w_);
  const std::size_t n = x.shape()[0];
  if (plan::enabled()) {
    ensure_plan(n);
    const std::size_t m = n * im2col_plan_.patches();
    // The dilated gather plan reads straight from x; zero_insert is folded
    // into the index table, so the dilated tensor is never materialized.
    Tensor& cols = ws_.tensor(train ? detail::kWsCols : detail::kWsColsEval,
                              Shape{m, dilated_geom_.patch_size()});
    im2col_plan_.run(x.data(), n, cols.data());
    Tensor hook_rows;
    Tensor* rows = &hook_rows;
    if (matmul_fn_) {
      hook_rows = matmul_fn_(cols, w_);
    } else {
      rows = &ws_.tensor(detail::kWsRows, Shape{m, out_c_});
      ops::matmul_into(cols, w_, *rows);
    }
    ops::add_row_bias(*rows, b_);
    if (train) {
      cached_batch_ = n;
      used_plan_ = true;
    }
    Tensor y = detail::rows_to_nchw(*rows, n, out_c_, dilated_geom_.out_h(),
                                    dilated_geom_.out_w());
    // Inference passes end here; training keeps cols live for backward.
    if (!train) ws_.trim();
    return y;
  }
  Tensor dilated = zero_insert(x, stride_);
  Tensor cols = im2col(dilated, dilated_geom_);
  Tensor rows = matmul_fn_ ? matmul_fn_(cols, w_) : ops::matmul(cols, w_);
  ops::add_row_bias(rows, b_);
  if (train) {
    cached_cols_ = std::move(cols);
    cached_batch_ = n;
    used_plan_ = false;
  }
  return detail::rows_to_nchw(rows, n, out_c_, dilated_geom_.out_h(),
                              dilated_geom_.out_w());
}

Tensor TransposedConv2D::backward(const Tensor& grad_out) {
  RERAMDL_CHECK_GT(cached_batch_, 0u);
  if (used_plan_) {
    const std::size_t n = cached_batch_;
    const std::size_t m = n * im2col_plan_.patches();
    const std::size_t psz = dilated_geom_.patch_size();
    Tensor& cols = ws_.tensor(detail::kWsCols, Shape{m, psz});
    Tensor& grows = ws_.tensor(detail::kWsGrows, Shape{m, out_c_});
    detail::nchw_to_rows_into(grad_out, grows);
    ops::matmul_transposed_a_acc(cols, grows, gw_);
    ops::column_sums_acc(grows, gb_);
    Tensor& wt = ws_.tensor(detail::kWsWt, Shape{out_c_, psz});
    ops::transpose_into(w_, wt);
    Tensor& gcols = ws_.tensor(detail::kWsGcols, Shape{m, psz});
    ops::matmul_transposed_b_packed_into(grows, wt, gcols);
    // The dilated adjoint plan only keeps runs for real grid pixels, so it
    // writes the undilated gradient directly (zero_insert_adjoint composed).
    Tensor gx(Shape{n, in_c_, in_h_, in_w_});
    col2im_plan_.run(gcols.data(), n, gx.data());
    ws_.trim();  // pass boundary: every slot's contents are dead now
    return gx;
  }
  Tensor grows = detail::nchw_to_rows(grad_out);
  gw_ += ops::matmul_transposed_a(cached_cols_, grows);
  gb_ += ops::column_sums(grows);
  Tensor gcols = ops::matmul_transposed_b(grows, w_);
  Tensor gdilated = col2im(gcols, dilated_geom_, cached_batch_);
  return zero_insert_adjoint(gdilated, stride_, in_h_, in_w_);
}

std::vector<ParamRef> TransposedConv2D::params() {
  return {{&w_, &gw_}, {&b_, &gb_}};
}

LayerSpec TransposedConv2D::spec(std::size_t in_c, std::size_t in_h,
                                 std::size_t in_w) const {
  RERAMDL_CHECK_EQ(in_c, in_c_);
  RERAMDL_CHECK_EQ(in_h, in_h_);
  RERAMDL_CHECK_EQ(in_w, in_w_);
  LayerSpec l;
  l.kind = LayerKind::kTransposedConv;
  l.name = "tconv2d";
  l.in_c = in_c_;
  l.in_h = in_h_;
  l.in_w = in_w_;
  l.kh = l.kw = k_;
  l.stride = stride_;
  l.pad = pad_;
  l.out_c = out_c_;
  l.out_h = dilated_geom_.out_h();
  l.out_w = dilated_geom_.out_w();
  return l;
}

}  // namespace reramdl::nn
