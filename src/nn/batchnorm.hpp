// Batch normalization, including the *virtual batch normalization* (VBN)
// variant ReGAN implements in the wordline drivers (Fig. 10-A): each example
// is normalized with statistics collected once on a fixed reference batch,
// so the hardware only needs a subtract and a power-of-two shift per element.
#pragma once

#include "nn/layer.hpp"

namespace reramdl::nn {

class BatchNorm : public Layer {
 public:
  // channels: C for NCHW inputs, or the feature count for [N, F] inputs.
  explicit BatchNorm(std::size_t channels, float eps = 1e-5f,
                     float momentum = 0.1f);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<ParamRef> params() override;
  std::string name() const override { return use_reference_ ? "vbn" : "bn"; }
  LayerSpec spec(std::size_t in_c, std::size_t in_h, std::size_t in_w) const override;

  // Freeze normalization statistics from this reference batch (VBN). After
  // the call, training forwards normalize with the frozen statistics.
  void set_reference_batch(const Tensor& ref);
  bool uses_reference() const { return use_reference_; }

 private:
  // Computes per-channel mean/var of x into mean/var (size C).
  void batch_stats(const Tensor& x, std::vector<double>& mean,
                   std::vector<double>& var) const;
  std::size_t per_channel_count(const Tensor& x) const;

  std::size_t c_;
  float eps_, momentum_;
  Tensor gamma_, beta_, ggamma_, gbeta_;
  std::vector<double> running_mean_, running_var_;
  std::vector<double> ref_mean_, ref_var_;
  bool use_reference_ = false;

  // Backward caches.
  Tensor cached_xhat_;
  std::vector<double> cached_mean_, cached_var_;
  bool cached_batch_stats_ = false;
  Shape cached_shape_;
};

}  // namespace reramdl::nn
