// Flatten: [N, C, H, W] -> [N, C*H*W]. In hardware this is free — the paper
// notes the last conv layer's output is read out as a vector ("does not
// require extra computation").
#pragma once

#include "nn/layer.hpp"

namespace reramdl::nn {

class Flatten : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "flatten"; }
  LayerSpec spec(std::size_t in_c, std::size_t in_h, std::size_t in_w) const override;

 private:
  Shape cached_in_shape_;
};

// Reshape [N, F] -> [N, c, h, w]: the "project and reshape" step at the head
// of the DCGAN generator, where the first FC layer's output vector becomes a
// small spatial extent with many feature maps.
class Reshape : public Layer {
 public:
  Reshape(std::size_t c, std::size_t h, std::size_t w) : c_(c), h_(h), w_(w) {}
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "reshape"; }
  LayerSpec spec(std::size_t in_c, std::size_t in_h, std::size_t in_w) const override;

 private:
  std::size_t c_, h_, w_;
  Shape cached_in_shape_;
};

}  // namespace reramdl::nn
