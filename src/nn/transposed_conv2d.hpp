// Fractional-strided convolution (FCNN) — the generator-side layer of DCGAN.
//
// Implements paper Fig. 7 exactly: the forward pass inserts zeros between
// input pixels (factor = stride) and runs an ordinary stride-1 convolution
// with flipped-equivalent padding k-1-pad; the error back-propagation is the
// adjoint, i.e. a strided convolution. Output size: (H-1)*stride + k - 2*pad.
#pragma once

#include "nn/dense.hpp"
#include "nn/layer.hpp"
#include "tensor/conv_plan.hpp"
#include "tensor/im2col.hpp"
#include "tensor/workspace.hpp"

namespace reramdl::nn {

class TransposedConv2D : public Layer {
 public:
  TransposedConv2D(std::size_t in_c, std::size_t in_h, std::size_t in_w,
                   std::size_t out_c, std::size_t k, std::size_t stride,
                   std::size_t pad, Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<ParamRef> params() override;
  std::string name() const override { return "tconv2d"; }
  LayerSpec spec(std::size_t in_c, std::size_t in_h, std::size_t in_w) const override;

  Tensor& weights() { return w_; }
  Tensor& bias() { return b_; }
  // Injected fn must be thread-safe (see MatmulFn in dense.hpp); the
  // default is the blocked parallel ops::matmul.
  void set_forward_matmul(MatmulFn fn) { matmul_fn_ = std::move(fn); }

  std::size_t out_h() const { return dilated_geom_.out_h(); }
  std::size_t out_w() const { return dilated_geom_.out_w(); }

 private:
  // Builds the dilation-composed gather/scatter plans on first use and keys
  // the cached execution plan on the batch size.
  void ensure_plan(std::size_t batch);

  std::size_t in_c_, in_h_, in_w_, out_c_, k_, stride_, pad_;
  // Geometry of the equivalent stride-1 convolution over the dilated input.
  ConvGeometry dilated_geom_;
  Tensor w_, b_, gw_, gb_;
  Tensor cached_cols_;
  std::size_t cached_batch_ = 0;
  MatmulFn matmul_fn_;
  // Plan-cached fast path: the dilated variants fold zero_insert /
  // zero_insert_adjoint into the index tables, so neither direction ever
  // materializes the zero-inserted tensor.
  Im2ColPlan im2col_plan_;
  Col2ImPlan col2im_plan_;
  bool plan_built_ = false;
  std::size_t planned_batch_ = 0;
  bool used_plan_ = false;
  Workspace ws_;
};

}  // namespace reramdl::nn
