// Fully-connected (inner product, paper's IP) layer: y = x W + b with
// W stored [in_features, out_features] — the same row=wordline /
// col=bitline orientation the crossbar mapping uses.
#pragma once

#include <functional>

#include "nn/layer.hpp"
#include "tensor/conv_plan.hpp"
#include "tensor/workspace.hpp"

namespace reramdl::nn {

// Hook type that computes rows x weights ([m,k] x [k,n] -> [m,n]). The
// accelerator installs a crossbar-backed implementation; the default path is
// the cache-blocked, pool-parallel ops::matmul kernel (tensor/ops.hpp).
// Injected implementations MUST be thread-safe: layers may themselves be
// evaluated from pool workers (e.g. concurrent bank simulation), and the
// default kernels already fan work out to the shared thread pool, so a hook
// that mutates shared state without synchronization races.
using MatmulFn = std::function<Tensor(const Tensor& rows, const Tensor& weights)>;

class Dense : public Layer {
 public:
  Dense(std::size_t in_features, std::size_t out_features, Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<ParamRef> params() override;
  std::string name() const override { return "dense"; }
  LayerSpec spec(std::size_t in_c, std::size_t in_h, std::size_t in_w) const override;

  Tensor& weights() { return w_; }
  const Tensor& weights() const { return w_; }
  Tensor& bias() { return b_; }

  // Replace the forward matrix product (e.g. with a crossbar evaluation).
  // The injected fn must be thread-safe (see MatmulFn); the default is the
  // blocked parallel ops::matmul.
  void set_forward_matmul(MatmulFn fn) { matmul_fn_ = std::move(fn); }

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }

 private:
  std::size_t in_, out_;
  Tensor w_, b_, gw_, gb_;
  Tensor cached_input_;
  MatmulFn matmul_fn_;
  // Fast-path workspace (plan::enabled()): holds the transposed-weight panel
  // for the vectorizable input-gradient product.
  Workspace ws_;
};

}  // namespace reramdl::nn
