// Pooling layers (paper's POOL). MaxPool mirrors the hardware realization in
// PipeLayer — "a register is used to keep the maximum value of a sequence" —
// and AvgPool is the mean variant the paper also describes.
#pragma once

#include "nn/layer.hpp"

namespace reramdl::nn {

class MaxPool2D : public Layer {
 public:
  MaxPool2D(std::size_t k, std::size_t stride = 0);  // stride 0 = k

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "maxpool"; }
  LayerSpec spec(std::size_t in_c, std::size_t in_h, std::size_t in_w) const override;

 private:
  std::size_t k_, stride_;
  Shape cached_in_shape_;
  std::vector<std::size_t> argmax_;  // flat input index per output element
};

class AvgPool2D : public Layer {
 public:
  AvgPool2D(std::size_t k, std::size_t stride = 0);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "avgpool"; }
  LayerSpec spec(std::size_t in_c, std::size_t in_h, std::size_t in_w) const override;

 private:
  std::size_t k_, stride_;
  Shape cached_in_shape_;
};

}  // namespace reramdl::nn
