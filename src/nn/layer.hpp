// Layer interface for the functional NN library.
//
// Every layer implements forward and backward so the simulator can run the
// complete training loop the paper accelerates (forward, error
// back-propagation, weight update), not just inference.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "nn/layer_spec.hpp"
#include "tensor/tensor.hpp"

namespace reramdl::nn {

// Non-owning reference to a learnable parameter and its gradient buffer.
struct ParamRef {
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
};

class Layer {
 public:
  virtual ~Layer() = default;

  // x is a batch; `train` selects training-time behaviour (batch-norm batch
  // statistics, cached activations for backward).
  virtual Tensor forward(const Tensor& x, bool train) = 0;

  // grad_out is dLoss/d(output); returns dLoss/d(input). Parameter gradients
  // are *accumulated* into the grad buffers (the optimizer zeroes them),
  // which is exactly the batch-accumulate-then-update scheme the PipeLayer
  // pipeline relies on.
  virtual Tensor backward(const Tensor& grad_out) = 0;

  virtual std::vector<ParamRef> params() { return {}; }

  virtual std::string name() const = 0;

  // Architecture-level description given the input cube dims; also reports
  // the output dims through the returned spec.
  virtual LayerSpec spec(std::size_t in_c, std::size_t in_h,
                         std::size_t in_w) const = 0;
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace reramdl::nn
