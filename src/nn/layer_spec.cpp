#include "nn/layer_spec.hpp"

#include "common/check.hpp"

namespace reramdl::nn {

const char* to_string(LayerKind kind) {
  switch (kind) {
    case LayerKind::kDense: return "dense";
    case LayerKind::kConv: return "conv";
    case LayerKind::kTransposedConv: return "tconv";
    case LayerKind::kPool: return "pool";
    case LayerKind::kActivation: return "act";
    case LayerKind::kBatchNorm: return "bn";
    case LayerKind::kFlatten: return "flatten";
  }
  return "?";
}

bool LayerSpec::is_weighted() const {
  return kind == LayerKind::kDense || kind == LayerKind::kConv ||
         kind == LayerKind::kTransposedConv;
}

std::size_t LayerSpec::weight_count() const {
  switch (kind) {
    case LayerKind::kDense:
      return in_size() * out_size();
    case LayerKind::kConv:
    case LayerKind::kTransposedConv:
      return kh * kw * in_c * out_c;
    case LayerKind::kBatchNorm:
      return 2 * in_c;  // gamma + beta
    default:
      return 0;
  }
}

std::size_t LayerSpec::matrix_rows() const {
  switch (kind) {
    case LayerKind::kDense:
      return in_size();
    case LayerKind::kConv:
    case LayerKind::kTransposedConv:
      return kh * kw * in_c;
    default:
      return 0;
  }
}

std::size_t LayerSpec::matrix_cols() const {
  return is_weighted() ? out_c : 0;
}

std::size_t LayerSpec::vectors_per_sample() const {
  switch (kind) {
    case LayerKind::kDense:
      return 1;
    case LayerKind::kConv:
    case LayerKind::kTransposedConv:
      return out_h * out_w;
    default:
      return 0;
  }
}

std::size_t LayerSpec::macs_per_sample() const {
  if (!is_weighted()) return 0;
  return matrix_rows() * matrix_cols() * vectors_per_sample();
}

std::size_t LayerSpec::activation_bytes_per_sample() const {
  return 4 * (in_size() + out_size());
}

std::size_t NetworkSpec::weighted_layers() const {
  std::size_t n = 0;
  for (const auto& l : layers)
    if (l.is_weighted()) ++n;
  return n;
}

std::size_t NetworkSpec::total_weights() const {
  std::size_t n = 0;
  for (const auto& l : layers) n += l.weight_count();
  return n;
}

std::size_t NetworkSpec::total_macs_per_sample() const {
  std::size_t n = 0;
  for (const auto& l : layers) n += l.macs_per_sample();
  return n;
}

NetworkSpecBuilder::NetworkSpecBuilder(std::string name, std::size_t c,
                                       std::size_t h, std::size_t w)
    : c_(c), h_(h), w_(w) {
  spec_.name = std::move(name);
  spec_.input_c = c;
  spec_.input_h = h;
  spec_.input_w = w;
}

NetworkSpecBuilder& NetworkSpecBuilder::conv(std::size_t out_c, std::size_t k,
                                             std::size_t stride, std::size_t pad) {
  LayerSpec l;
  l.kind = LayerKind::kConv;
  l.name = "conv" + std::to_string(spec_.layers.size());
  l.in_c = c_;
  l.in_h = h_;
  l.in_w = w_;
  l.kh = l.kw = k;
  l.stride = stride;
  l.pad = pad;
  RERAMDL_CHECK_GE(h_ + 2 * pad + 1, k + 1);
  l.out_c = out_c;
  l.out_h = (h_ + 2 * pad - k) / stride + 1;
  l.out_w = (w_ + 2 * pad - k) / stride + 1;
  c_ = l.out_c;
  h_ = l.out_h;
  w_ = l.out_w;
  spec_.layers.push_back(l);
  return *this;
}

NetworkSpecBuilder& NetworkSpecBuilder::tconv(std::size_t out_c, std::size_t k,
                                              std::size_t stride, std::size_t pad) {
  LayerSpec l;
  l.kind = LayerKind::kTransposedConv;
  l.name = "tconv" + std::to_string(spec_.layers.size());
  l.in_c = c_;
  l.in_h = h_;
  l.in_w = w_;
  l.kh = l.kw = k;
  l.stride = stride;
  l.pad = pad;
  l.out_c = out_c;
  RERAMDL_CHECK_GE((h_ - 1) * stride + k, 2 * pad);
  l.out_h = (h_ - 1) * stride + k - 2 * pad;
  l.out_w = (w_ - 1) * stride + k - 2 * pad;
  c_ = l.out_c;
  h_ = l.out_h;
  w_ = l.out_w;
  spec_.layers.push_back(l);
  return *this;
}

NetworkSpecBuilder& NetworkSpecBuilder::pool(std::size_t k, std::size_t stride) {
  if (stride == 0) stride = k;
  LayerSpec l;
  l.kind = LayerKind::kPool;
  l.name = "pool" + std::to_string(spec_.layers.size());
  l.in_c = c_;
  l.in_h = h_;
  l.in_w = w_;
  l.kh = l.kw = k;
  l.stride = stride;
  l.out_c = c_;
  l.out_h = (h_ - k) / stride + 1;
  l.out_w = (w_ - k) / stride + 1;
  h_ = l.out_h;
  w_ = l.out_w;
  spec_.layers.push_back(l);
  return *this;
}

NetworkSpecBuilder& NetworkSpecBuilder::dense(std::size_t out_features) {
  LayerSpec l;
  l.kind = LayerKind::kDense;
  l.name = "fc" + std::to_string(spec_.layers.size());
  l.in_c = c_ * h_ * w_;
  l.in_h = l.in_w = 1;
  l.out_c = out_features;
  l.out_h = l.out_w = 1;
  c_ = out_features;
  h_ = w_ = 1;
  spec_.layers.push_back(l);
  return *this;
}

NetworkSpecBuilder& NetworkSpecBuilder::activation(std::string act_name) {
  LayerSpec l;
  l.kind = LayerKind::kActivation;
  l.name = std::move(act_name);
  l.in_c = l.out_c = c_;
  l.in_h = l.out_h = h_;
  l.in_w = l.out_w = w_;
  spec_.layers.push_back(l);
  return *this;
}

NetworkSpecBuilder& NetworkSpecBuilder::batchnorm() {
  LayerSpec l;
  l.kind = LayerKind::kBatchNorm;
  l.name = "bn" + std::to_string(spec_.layers.size());
  l.in_c = l.out_c = c_;
  l.in_h = l.out_h = h_;
  l.in_w = l.out_w = w_;
  spec_.layers.push_back(l);
  return *this;
}

NetworkSpecBuilder& NetworkSpecBuilder::flatten() {
  LayerSpec l;
  l.kind = LayerKind::kFlatten;
  l.name = "flatten" + std::to_string(spec_.layers.size());
  l.in_c = c_;
  l.in_h = h_;
  l.in_w = w_;
  l.out_c = c_ * h_ * w_;
  l.out_h = l.out_w = 1;
  c_ = l.out_c;
  h_ = w_ = 1;
  spec_.layers.push_back(l);
  return *this;
}

NetworkSpecBuilder& NetworkSpecBuilder::reshape(std::size_t c, std::size_t h,
                                                std::size_t w) {
  RERAMDL_CHECK_EQ(c_ * h_ * w_, c * h * w);
  LayerSpec l;
  l.kind = LayerKind::kFlatten;
  l.name = "reshape" + std::to_string(spec_.layers.size());
  l.in_c = c_;
  l.in_h = h_;
  l.in_w = w_;
  l.out_c = c;
  l.out_h = h;
  l.out_w = w;
  c_ = c;
  h_ = h;
  w_ = w;
  spec_.layers.push_back(l);
  return *this;
}

NetworkSpec NetworkSpecBuilder::build() && { return std::move(spec_); }

}  // namespace reramdl::nn
