#include "nn/pooling.hpp"

#include <limits>

#include "common/check.hpp"

namespace reramdl::nn {
namespace {

struct PoolDims {
  std::size_t n, c, h, w, oh, ow;
};

PoolDims pool_dims(const Shape& s, std::size_t k, std::size_t stride) {
  RERAMDL_CHECK_EQ(s.rank(), 4u);
  PoolDims d{s[0], s[1], s[2], s[3], 0, 0};
  RERAMDL_CHECK_GE(d.h, k);
  RERAMDL_CHECK_GE(d.w, k);
  d.oh = (d.h - k) / stride + 1;
  d.ow = (d.w - k) / stride + 1;
  return d;
}

}  // namespace

MaxPool2D::MaxPool2D(std::size_t k, std::size_t stride)
    : k_(k), stride_(stride == 0 ? k : stride) {}

Tensor MaxPool2D::forward(const Tensor& x, bool train) {
  const PoolDims d = pool_dims(x.shape(), k_, stride_);
  Tensor y(Shape{d.n, d.c, d.oh, d.ow});
  if (train) {
    cached_in_shape_ = x.shape();
    argmax_.assign(y.numel(), 0);
  }
  const float* px = x.data();
  float* py = y.data();
  std::size_t oi = 0;
  for (std::size_t s = 0; s < d.n; ++s) {
    for (std::size_t c = 0; c < d.c; ++c) {
      const std::size_t base = (s * d.c + c) * d.h * d.w;
      for (std::size_t oy = 0; oy < d.oh; ++oy) {
        for (std::size_t ox = 0; ox < d.ow; ++ox, ++oi) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          for (std::size_t ky = 0; ky < k_; ++ky) {
            for (std::size_t kx = 0; kx < k_; ++kx) {
              const std::size_t idx =
                  base + (oy * stride_ + ky) * d.w + (ox * stride_ + kx);
              if (px[idx] > best) {
                best = px[idx];
                best_idx = idx;
              }
            }
          }
          py[oi] = best;
          if (train) argmax_[oi] = best_idx;
        }
      }
    }
  }
  return y;
}

Tensor MaxPool2D::backward(const Tensor& grad_out) {
  RERAMDL_CHECK_EQ(grad_out.numel(), argmax_.size());
  Tensor gx(cached_in_shape_);
  for (std::size_t i = 0; i < argmax_.size(); ++i)
    gx[argmax_[i]] += grad_out[i];
  return gx;
}

LayerSpec MaxPool2D::spec(std::size_t in_c, std::size_t in_h,
                          std::size_t in_w) const {
  LayerSpec l;
  l.kind = LayerKind::kPool;
  l.name = "maxpool";
  l.in_c = l.out_c = in_c;
  l.in_h = in_h;
  l.in_w = in_w;
  l.kh = l.kw = k_;
  l.stride = stride_;
  l.out_h = (in_h - k_) / stride_ + 1;
  l.out_w = (in_w - k_) / stride_ + 1;
  return l;
}

AvgPool2D::AvgPool2D(std::size_t k, std::size_t stride)
    : k_(k), stride_(stride == 0 ? k : stride) {}

Tensor AvgPool2D::forward(const Tensor& x, bool train) {
  const PoolDims d = pool_dims(x.shape(), k_, stride_);
  if (train) cached_in_shape_ = x.shape();
  Tensor y(Shape{d.n, d.c, d.oh, d.ow});
  const float inv = 1.0f / static_cast<float>(k_ * k_);
  const float* px = x.data();
  float* py = y.data();
  std::size_t oi = 0;
  for (std::size_t s = 0; s < d.n; ++s) {
    for (std::size_t c = 0; c < d.c; ++c) {
      const std::size_t base = (s * d.c + c) * d.h * d.w;
      for (std::size_t oy = 0; oy < d.oh; ++oy) {
        for (std::size_t ox = 0; ox < d.ow; ++ox, ++oi) {
          float acc = 0.0f;
          for (std::size_t ky = 0; ky < k_; ++ky)
            for (std::size_t kx = 0; kx < k_; ++kx)
              acc += px[base + (oy * stride_ + ky) * d.w + (ox * stride_ + kx)];
          py[oi] = acc * inv;
        }
      }
    }
  }
  return y;
}

Tensor AvgPool2D::backward(const Tensor& grad_out) {
  const PoolDims d = pool_dims(cached_in_shape_, k_, stride_);
  RERAMDL_CHECK_EQ(grad_out.numel(), d.n * d.c * d.oh * d.ow);
  Tensor gx(cached_in_shape_);
  const float inv = 1.0f / static_cast<float>(k_ * k_);
  const float* pg = grad_out.data();
  float* px = gx.data();
  std::size_t oi = 0;
  for (std::size_t s = 0; s < d.n; ++s) {
    for (std::size_t c = 0; c < d.c; ++c) {
      const std::size_t base = (s * d.c + c) * d.h * d.w;
      for (std::size_t oy = 0; oy < d.oh; ++oy) {
        for (std::size_t ox = 0; ox < d.ow; ++ox, ++oi) {
          const float g = pg[oi] * inv;
          for (std::size_t ky = 0; ky < k_; ++ky)
            for (std::size_t kx = 0; kx < k_; ++kx)
              px[base + (oy * stride_ + ky) * d.w + (ox * stride_ + kx)] += g;
        }
      }
    }
  }
  return gx;
}

LayerSpec AvgPool2D::spec(std::size_t in_c, std::size_t in_h,
                          std::size_t in_w) const {
  LayerSpec l;
  l.kind = LayerKind::kPool;
  l.name = "avgpool";
  l.in_c = l.out_c = in_c;
  l.in_h = in_h;
  l.in_w = in_w;
  l.kh = l.kw = k_;
  l.stride = stride_;
  l.out_h = (in_h - k_) / stride_ + 1;
  l.out_w = (in_w - k_) / stride_ + 1;
  return l;
}

}  // namespace reramdl::nn
