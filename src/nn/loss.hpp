// Loss functions: softmax cross-entropy for classification (PipeLayer
// benchmarks) and binary cross-entropy on logits for the GAN discriminator /
// generator objectives (ReGAN, labels '1' for real and '0' for fake).
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/tensor.hpp"

namespace reramdl::nn {

struct LossResult {
  float loss = 0.0f;      // mean over the batch
  Tensor grad;            // dLoss/dLogits, already averaged over the batch
};

// logits: [N, K]; labels: class index per sample.
LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<std::size_t>& labels);

// logits: [N, 1] (or [N]); targets: 0/1 per sample. Numerically-stable
// sigmoid BCE.
LossResult bce_with_logits(const Tensor& logits, const std::vector<float>& targets);

// Mean squared error; targets has the same shape as predictions.
LossResult mse(const Tensor& pred, const Tensor& target);

// Classification accuracy of logits against labels.
double accuracy(const Tensor& logits, const std::vector<std::size_t>& labels);

}  // namespace reramdl::nn
