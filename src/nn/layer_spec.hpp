// LayerSpec: an architecture-level description of one network layer.
//
// The mapping engine, the pipeline timing models, and the GPU baseline all
// consume LayerSpecs rather than live nn::Layer objects, so that ImageNet-
// scale networks can be costed without allocating their weights.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace reramdl::nn {

enum class LayerKind {
  kDense,
  kConv,
  kTransposedConv,  // fractional-strided convolution (FCNN, paper Fig. 7)
  kPool,
  kActivation,
  kBatchNorm,
  kFlatten,
};

const char* to_string(LayerKind kind);

struct LayerSpec {
  LayerKind kind = LayerKind::kActivation;
  std::string name;
  // Input / output data-cube dims; dense layers use (c, 1, 1).
  std::size_t in_c = 0, in_h = 1, in_w = 1;
  std::size_t out_c = 0, out_h = 1, out_w = 1;
  // Kernel geometry for conv-like and pool layers.
  std::size_t kh = 0, kw = 0, stride = 1, pad = 0;

  std::size_t in_size() const { return in_c * in_h * in_w; }
  std::size_t out_size() const { return out_c * out_h * out_w; }

  // True for layers whose weights occupy crossbar arrays.
  bool is_weighted() const;
  // Number of weight values (excluding biases).
  std::size_t weight_count() const;
  // Rows/cols of the flattened weight matrix mapped onto crossbars
  // (paper Fig. 4: 3x3x128 kernels x 256 outputs -> 1152 x 256).
  std::size_t matrix_rows() const;
  std::size_t matrix_cols() const;
  // Input vectors pushed through that matrix per sample in the forward pass
  // (= output pixels for conv, 1 for dense).
  std::size_t vectors_per_sample() const;
  // Multiply-accumulate operations per sample, forward pass.
  std::size_t macs_per_sample() const;
  // Bytes of activations read + written per sample (float32), used by the
  // GPU roofline model.
  std::size_t activation_bytes_per_sample() const;
};

// A network described purely by its shape: what the timing/energy models and
// the mapping engine operate on.
struct NetworkSpec {
  std::string name;
  std::size_t input_c = 0, input_h = 0, input_w = 0;
  std::vector<LayerSpec> layers;

  // Number of weighted layers (crossbar-mapped pipeline stages, the paper's L).
  std::size_t weighted_layers() const;
  std::size_t total_weights() const;
  std::size_t total_macs_per_sample() const;
};

// Incremental builder that tracks the current data-cube dims, mirroring how
// the paper chains CONV / POOL / IP stages.
class NetworkSpecBuilder {
 public:
  NetworkSpecBuilder(std::string name, std::size_t c, std::size_t h, std::size_t w);

  NetworkSpecBuilder& conv(std::size_t out_c, std::size_t k, std::size_t stride = 1,
                           std::size_t pad = 0);
  NetworkSpecBuilder& tconv(std::size_t out_c, std::size_t k, std::size_t stride,
                            std::size_t pad);
  NetworkSpecBuilder& pool(std::size_t k, std::size_t stride = 0);  // 0 = k
  NetworkSpecBuilder& dense(std::size_t out_features);
  NetworkSpecBuilder& activation(std::string act_name = "relu");
  NetworkSpecBuilder& batchnorm();
  NetworkSpecBuilder& flatten();
  // Reinterpret the current vector as a (c, h, w) cube ("project and
  // reshape" at the head of the DCGAN generator). Element count must match.
  NetworkSpecBuilder& reshape(std::size_t c, std::size_t h, std::size_t w);

  NetworkSpec build() &&;

  std::size_t cur_c() const { return c_; }
  std::size_t cur_h() const { return h_; }
  std::size_t cur_w() const { return w_; }

 private:
  NetworkSpec spec_;
  std::size_t c_, h_, w_;
};

}  // namespace reramdl::nn
