#include "nn/batchnorm.hpp"

#include <cmath>

#include "common/check.hpp"

namespace reramdl::nn {
namespace {

// Iterate (sample, channel, spatial) for either [N, C] or [N, C, H, W].
struct BnDims {
  std::size_t n, c, spatial;
};

BnDims bn_dims(const Shape& s, std::size_t channels) {
  RERAMDL_CHECK(s.rank() == 2 || s.rank() == 4);
  BnDims d{s[0], s[1], 1};
  if (s.rank() == 4) d.spatial = s[2] * s[3];
  RERAMDL_CHECK_EQ(d.c, channels);
  return d;
}

}  // namespace

BatchNorm::BatchNorm(std::size_t channels, float eps, float momentum)
    : c_(channels),
      eps_(eps),
      momentum_(momentum),
      gamma_(Tensor::full(Shape{channels}, 1.0f)),
      beta_(Shape{channels}),
      ggamma_(Shape{channels}),
      gbeta_(Shape{channels}),
      running_mean_(channels, 0.0),
      running_var_(channels, 1.0) {}

std::size_t BatchNorm::per_channel_count(const Tensor& x) const {
  const BnDims d = bn_dims(x.shape(), c_);
  return d.n * d.spatial;
}

void BatchNorm::batch_stats(const Tensor& x, std::vector<double>& mean,
                            std::vector<double>& var) const {
  const BnDims d = bn_dims(x.shape(), c_);
  mean.assign(c_, 0.0);
  var.assign(c_, 0.0);
  const float* px = x.data();
  for (std::size_t s = 0; s < d.n; ++s)
    for (std::size_t ch = 0; ch < d.c; ++ch)
      for (std::size_t p = 0; p < d.spatial; ++p)
        mean[ch] += px[(s * d.c + ch) * d.spatial + p];
  const double inv = 1.0 / static_cast<double>(d.n * d.spatial);
  for (auto& m : mean) m *= inv;
  for (std::size_t s = 0; s < d.n; ++s)
    for (std::size_t ch = 0; ch < d.c; ++ch)
      for (std::size_t p = 0; p < d.spatial; ++p) {
        const double dlt = px[(s * d.c + ch) * d.spatial + p] - mean[ch];
        var[ch] += dlt * dlt;
      }
  for (auto& v : var) v *= inv;
}

void BatchNorm::set_reference_batch(const Tensor& ref) {
  batch_stats(ref, ref_mean_, ref_var_);
  use_reference_ = true;
}

Tensor BatchNorm::forward(const Tensor& x, bool train) {
  const BnDims d = bn_dims(x.shape(), c_);
  const std::vector<double>* mean = nullptr;
  const std::vector<double>* var = nullptr;
  std::vector<double> bmean, bvar;

  cached_batch_stats_ = false;
  if (train && !use_reference_) {
    batch_stats(x, bmean, bvar);
    for (std::size_t ch = 0; ch < c_; ++ch) {
      running_mean_[ch] =
          (1.0 - momentum_) * running_mean_[ch] + momentum_ * bmean[ch];
      running_var_[ch] =
          (1.0 - momentum_) * running_var_[ch] + momentum_ * bvar[ch];
    }
    mean = &bmean;
    var = &bvar;
    cached_batch_stats_ = true;
  } else if (use_reference_) {
    RERAMDL_CHECK(!ref_mean_.empty());
    mean = &ref_mean_;
    var = &ref_var_;
  } else {
    mean = &running_mean_;
    var = &running_var_;
  }

  Tensor y(x.shape());
  Tensor xhat(x.shape());
  const float* px = x.data();
  float* py = y.data();
  float* ph = xhat.data();
  for (std::size_t s = 0; s < d.n; ++s) {
    for (std::size_t ch = 0; ch < d.c; ++ch) {
      const double inv_std = 1.0 / std::sqrt((*var)[ch] + eps_);
      const double m = (*mean)[ch];
      const float g = gamma_[ch], b = beta_[ch];
      for (std::size_t p = 0; p < d.spatial; ++p) {
        const std::size_t i = (s * d.c + ch) * d.spatial + p;
        const float h = static_cast<float>((px[i] - m) * inv_std);
        ph[i] = h;
        py[i] = g * h + b;
      }
    }
  }
  if (train) {
    cached_xhat_ = std::move(xhat);
    cached_mean_ = *mean;
    cached_var_ = *var;
    cached_shape_ = x.shape();
  }
  return y;
}

Tensor BatchNorm::backward(const Tensor& grad_out) {
  RERAMDL_CHECK_EQ(grad_out.shape().numel(), cached_shape_.numel());
  const BnDims d = bn_dims(cached_shape_, c_);
  const std::size_t m = d.n * d.spatial;

  // Parameter gradients.
  const float* pg = grad_out.data();
  const float* ph = cached_xhat_.data();
  std::vector<double> sum_g(c_, 0.0), sum_gh(c_, 0.0);
  for (std::size_t s = 0; s < d.n; ++s)
    for (std::size_t ch = 0; ch < d.c; ++ch)
      for (std::size_t p = 0; p < d.spatial; ++p) {
        const std::size_t i = (s * d.c + ch) * d.spatial + p;
        sum_g[ch] += pg[i];
        sum_gh[ch] += static_cast<double>(pg[i]) * ph[i];
      }
  for (std::size_t ch = 0; ch < c_; ++ch) {
    ggamma_[ch] += static_cast<float>(sum_gh[ch]);
    gbeta_[ch] += static_cast<float>(sum_g[ch]);
  }

  Tensor gx(cached_shape_);
  float* px = gx.data();
  for (std::size_t s = 0; s < d.n; ++s) {
    for (std::size_t ch = 0; ch < d.c; ++ch) {
      const double inv_std = 1.0 / std::sqrt(cached_var_[ch] + eps_);
      const double g = gamma_[ch];
      for (std::size_t p = 0; p < d.spatial; ++p) {
        const std::size_t i = (s * d.c + ch) * d.spatial + p;
        if (cached_batch_stats_) {
          // Full batch-norm gradient (statistics depend on the batch).
          px[i] = static_cast<float>(
              g * inv_std *
              (pg[i] - sum_g[ch] / static_cast<double>(m) -
               ph[i] * sum_gh[ch] / static_cast<double>(m)));
        } else {
          // VBN / frozen statistics: stats are constants.
          px[i] = static_cast<float>(g * inv_std * pg[i]);
        }
      }
    }
  }
  return gx;
}

std::vector<ParamRef> BatchNorm::params() {
  return {{&gamma_, &ggamma_}, {&beta_, &gbeta_}};
}

LayerSpec BatchNorm::spec(std::size_t in_c, std::size_t in_h,
                          std::size_t in_w) const {
  LayerSpec l;
  l.kind = LayerKind::kBatchNorm;
  l.name = "bn";
  l.in_c = l.out_c = in_c;
  l.in_h = l.out_h = in_h;
  l.in_w = l.out_w = in_w;
  return l;
}

}  // namespace reramdl::nn
