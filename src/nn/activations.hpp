// Element-wise activation layers. In hardware these are the "activation
// function" peripheral of the morphable subarray (PipeLayer) or the
// configurable LUT after the subtractor (ReGAN, Fig. 10-B); here they are the
// exact float functions the LUT approximates (src/circuit/activation_lut
// models the LUT itself).
#pragma once

#include "nn/layer.hpp"

namespace reramdl::nn {

class ReLU : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "relu"; }
  LayerSpec spec(std::size_t in_c, std::size_t in_h, std::size_t in_w) const override;

 private:
  std::vector<bool> mask_;
};

class LeakyReLU : public Layer {
 public:
  explicit LeakyReLU(float slope = 0.2f) : slope_(slope) {}
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "leaky_relu"; }
  LayerSpec spec(std::size_t in_c, std::size_t in_h, std::size_t in_w) const override;

 private:
  float slope_;
  std::vector<bool> mask_;
};

class Sigmoid : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "sigmoid"; }
  LayerSpec spec(std::size_t in_c, std::size_t in_h, std::size_t in_w) const override;

 private:
  Tensor cached_out_;
};

class Tanh : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "tanh"; }
  LayerSpec spec(std::size_t in_c, std::size_t in_h, std::size_t in_w) const override;

 private:
  Tensor cached_out_;
};

}  // namespace reramdl::nn
