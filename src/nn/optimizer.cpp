#include "nn/optimizer.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/parallel.hpp"

namespace reramdl::nn {

void Optimizer::zero_grad() {
  for (auto& p : params_) p.grad->zero();
}

Sgd::Sgd(std::vector<ParamRef> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  velocity_.reserve(params_.size());
  for (const auto& p : params_) velocity_.emplace_back(p.value->shape());
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Tensor& w = *params_[i].value;
    const Tensor& g = *params_[i].grad;
    Tensor& v = velocity_[i];
    RERAMDL_CHECK_EQ(w.numel(), g.numel());
    // Purely elementwise, so any chunking is bit-identical.
    parallel::parallel_for(0, w.numel(), 4096,
                           [&](std::size_t j0, std::size_t j1) {
                             for (std::size_t j = j0; j < j1; ++j) {
                               v[j] = momentum_ * v[j] - lr_ * g[j];
                               w[j] += v[j];
                             }
                           });
  }
}

Adam::Adam(std::vector<ParamRef> params, float lr, float beta1, float beta2,
           float eps)
    : Optimizer(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p.value->shape());
    v_.emplace_back(p.value->shape());
  }
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Tensor& w = *params_[i].value;
    const Tensor& g = *params_[i].grad;
    RERAMDL_CHECK_EQ(w.numel(), g.numel());
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    parallel::parallel_for(
        0, w.numel(), 4096, [&](std::size_t j0, std::size_t j1) {
          for (std::size_t j = j0; j < j1; ++j) {
            m[j] = beta1_ * m[j] + (1.0f - beta1_) * g[j];
            v[j] = beta2_ * v[j] + (1.0f - beta2_) * g[j] * g[j];
            const double mh = m[j] / bc1;
            const double vh = v[j] / bc2;
            w[j] -= static_cast<float>(lr_ * mh / (std::sqrt(vh) + eps_));
          }
        });
  }
}

}  // namespace reramdl::nn
