#include "nn/sequential.hpp"

#include "common/check.hpp"

namespace reramdl::nn {

void Sequential::add(LayerPtr layer) {
  RERAMDL_CHECK(layer != nullptr);
  layers_.push_back(std::move(layer));
}

Tensor Sequential::forward(const Tensor& x, bool train) {
  Tensor cur = x;
  for (auto& l : layers_) cur = l->forward(cur, train);
  return cur;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor cur = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    cur = (*it)->backward(cur);
  return cur;
}

std::vector<ParamRef> Sequential::params() {
  std::vector<ParamRef> out;
  for (auto& l : layers_)
    for (auto& p : l->params()) out.push_back(p);
  return out;
}

Layer& Sequential::layer(std::size_t i) {
  RERAMDL_CHECK_LT(i, layers_.size());
  return *layers_[i];
}

NetworkSpec Sequential::specs(std::string name, std::size_t in_c,
                              std::size_t in_h, std::size_t in_w) const {
  NetworkSpec net;
  net.name = std::move(name);
  net.input_c = in_c;
  net.input_h = in_h;
  net.input_w = in_w;
  std::size_t c = in_c, h = in_h, w = in_w;
  for (const auto& l : layers_) {
    LayerSpec s = l->spec(c, h, w);
    c = s.out_c;
    h = s.out_h;
    w = s.out_w;
    net.layers.push_back(std::move(s));
  }
  return net;
}

}  // namespace reramdl::nn
