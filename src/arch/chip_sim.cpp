#include "arch/chip_sim.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "obs/obs.hpp"

namespace reramdl::arch {

ChipSimulator::ChipSimulator(const ChipConfig& chip,
                             mapping::NetworkMapping mapping,
                             Placement placement)
    : ChipSimulator(chip, std::move(mapping), std::move(placement), chip.noc) {}

ChipSimulator::ChipSimulator(const ChipConfig& chip,
                             mapping::NetworkMapping mapping,
                             Placement placement, NocParams noc_params)
    : chip_(chip),
      mapping_(std::move(mapping)),
      placement_(std::move(placement)),
      noc_(make_mesh_for_banks(chip.banks, noc_params)) {
  RERAMDL_CHECK_EQ(placement_.bank.size(), mapping_.layers.size());
  for (const std::size_t b : placement_.bank)
    RERAMDL_CHECK_LT(b, noc_.num_banks());
  for (const auto& spill : placement_.spill)
    for (const std::size_t b : spill) RERAMDL_CHECK_LT(b, noc_.num_banks());
}

std::vector<std::vector<std::size_t>> ChipSimulator::layers_by_bank() const {
  std::vector<std::vector<std::size_t>> by_bank(noc_.num_banks());
  for (std::size_t i = 0; i < mapping_.layers.size(); ++i)
    by_bank[placement_.bank[i]].push_back(i);
  return by_bank;
}

ChipRunReport ChipSimulator::run(bool training, std::size_t batch) {
  RERAMDL_TRACE_SCOPE("chip.run", "arch");
  ChipRunReport report;
  const auto by_bank = layers_by_bank();

  // Banks are independent machines (own Bank model, own controller, own
  // lowered program), exactly the concurrency the chip exploits in hardware
  // — so simulate them concurrently too. Per-bank reports land in a vector
  // indexed by bank id and merge serially below in ascending bank order,
  // keeping the chip report identical for any RERAMDL_THREADS.
  std::vector<ExecutionReport> bank_reports(by_bank.size());
  std::vector<char> bank_active(by_bank.size(), 0);
  // Per-kSync segment capture feeds the per-layer attribution below; each
  // bank writes only its own slot, and the serial fold order downstream is
  // fixed, so the attribution tree is identical for any RERAMDL_THREADS.
  const bool attributing = obs::metrics_enabled();
  std::vector<std::vector<ExecutionReport>> bank_segments(
      attributing ? by_bank.size() : 0);
  parallel::parallel_for(0, by_bank.size(), 1, [&](std::size_t b0, std::size_t b1) {
    for (std::size_t bank_id = b0; bank_id < b1; ++bank_id) {
      if (by_bank[bank_id].empty()) continue;

      // This bank's share of the network, lowered and executed in place.
      mapping::NetworkMapping local;
      local.config = mapping_.config;
      for (const std::size_t idx : by_bank[bank_id])
        local.layers.push_back(mapping_.layers[idx]);

      // Programs address banks by their controller id; reuse the physical
      // bank id modulo the ISA's 6-bit field.
      const std::size_t isa_bank = bank_id % 64;
      const auto program =
          training ? lower_training_batch(local, chip_, isa_bank, batch)
                   : lower_forward_pass(local, chip_, isa_bank);

      Bank bank(chip_, isa_bank);
      BankController controller(bank);
      bank_reports[bank_id] = controller.run(
          program, attributing ? &bank_segments[bank_id] : nullptr);
      bank_active[bank_id] = 1;
    }
  });

  double critical_raw_ns = 0.0;
  for (std::size_t bank_id = 0; bank_id < by_bank.size(); ++bank_id) {
    if (!bank_active[bank_id]) continue;
    ++report.banks_used;
    const ExecutionReport& r = bank_reports[bank_id];
    report.instructions += r.instructions;
    report.total_bank_ns += r.busy_ns;
    critical_raw_ns = std::max(critical_raw_ns, r.busy_ns);
    // Reserved maintenance slots (set_maintenance_slots) stretch the
    // bank's occupied window; with none configured this is r.busy_ns
    // exactly, preserving the historical report bit-for-bit.
    report.critical_bank_ns =
        std::max(report.critical_bank_ns, stretched_ns(r.busy_ns));
    report.energy.merge(r.energy);
  }
  report.maint_ns = report.critical_bank_ns - critical_raw_ns;

  // Inter-bank activation transfers along the layer chain. Training ships
  // activations forward and errors backward (2x per sample).
  const bool tracing = obs::trace_enabled();
  if (tracing && trace_pid_ < 0) {
    trace_pid_ = obs::alloc_virtual_pid("chip_sim");
    for (std::size_t b = 0; b < by_bank.size(); ++b)
      if (!by_bank[b].empty())
        obs::name_thread(trace_pid_, static_cast<int>(b),
                         "bank" + std::to_string(b));
    obs::name_thread(trace_pid_, static_cast<int>(by_bank.size()), "noc");
  }
  // NoC transfers serialize after the critical bank in the latency model;
  // the trace lays them out the same way.
  double noc_cursor_us = sim_epoch_us_ + report.critical_bank_ns * 1e-3;
  const double passes = training ? 2.0 * static_cast<double>(batch)
                                 : 1.0;
  if (noc_.params().event_model_active()) {
    // Link-level event model: per-pass transfer chains (spill gathers plus
    // inter-layer activations) simulated on the per-direction link
    // timelines, so chains of different passes overlap where their routes
    // are disjoint and serialize where they share links. Training ships
    // batch forward chains and batch reversed error chains. noc_ns is the
    // simulated makespan, not a serialized sum.
    const auto base = sample_transfers(placement_, mapping_, 1);
    const std::size_t chains =
        training ? 2 * batch : 1;
    std::vector<NocTransferRequest> requests;
    requests.reserve(base.size() * chains);
    for (std::size_t c = 0; c < chains; ++c) {
      const std::ptrdiff_t offset =
          static_cast<std::ptrdiff_t>(requests.size());
      const bool backward = training && c % 2 == 1;
      for (NocTransferRequest r : base) {
        if (backward) std::swap(r.from, r.to);
        if (r.dep >= 0) r.dep += offset;
        requests.push_back(r);
      }
    }
    const NocSimReport sim = noc_.simulate(requests);
    report.noc_ns = sim.makespan_ns;
    double noc_pj = 0.0;
    for (const auto& r : requests)
      noc_pj += noc_.transfer_energy_pj(r.from, r.to, r.bytes);
    report.energy.add("noc", noc_pj);
    if (tracing) {
      for (std::size_t t = 0; t < requests.size(); ++t) {
        const auto& timing = sim.transfers[t];
        obs::emit_complete(
            "b" + std::to_string(requests[t].from) + "->b" +
                std::to_string(requests[t].to),
            "noc", noc_cursor_us + timing.start_ns * 1e-3,
            (timing.done_ns - timing.start_ns) * 1e-3,
            static_cast<int>(by_bank.size()), trace_pid_);
      }
      noc_cursor_us += sim.makespan_ns * 1e-3;
    }
    if (attributing) {
      // Per-link occupancy under chip/noc, keyed busy_ns/transfers so the
      // chip-level latency_ns rollup is untouched.
      auto& attr = obs::Attribution::instance();
      for (std::size_t l = 0; l < sim.links.size(); ++l) {
        if (sim.links[l].transfers == 0) continue;
        const std::string path = "chip/noc/" + noc_.link_name(l);
        attr.add(path, "busy_ns", sim.links[l].busy_ns);
        attr.add(path, "transfers",
                 static_cast<double>(sim.links[l].transfers));
      }
      auto& reg = obs::Registry::instance();
      reg.gauge("chip.noc.max_link_utilization")
          .set(sim.max_link_utilization());
      reg.gauge("chip.noc.queue_ns").set(sim.queue_ns);
      static obs::Counter& smart_segments =
          reg.counter("chip.noc.smart_segments");
      smart_segments.add(static_cast<double>(sim.smart_segments));
    }
  } else {
    // Closed-form uncontended path: the pre-event-model cost, preserved
    // bit-exactly for the default NocParams.
    for (std::size_t i = 0; i + 1 < mapping_.layers.size(); ++i) {
      const std::size_t from = placement_.bank[i];
      const std::size_t to = placement_.bank[i + 1];
      const std::size_t bytes = 4 * mapping_.layers[i].spec.out_size();
      const double transfer_ns =
          passes * noc_.transfer_latency_ns(from, to, bytes);
      report.noc_ns += transfer_ns;
      report.energy.add("noc",
                        passes * noc_.transfer_energy_pj(from, to, bytes));
      if (tracing) {
        obs::emit_complete(
            "L" + std::to_string(i) + "->L" + std::to_string(i + 1), "noc",
            noc_cursor_us, transfer_ns * 1e-3,
            static_cast<int>(by_bank.size()), trace_pid_);
        noc_cursor_us += transfer_ns * 1e-3;
      }
    }
  }

  if (tracing) {
    // Per-bank busy windows on the simulated timeline; all banks start the
    // run together, each runs for its own busy time.
    for (std::size_t b = 0; b < by_bank.size(); ++b) {
      if (!bank_active[b]) continue;
      obs::emit_complete(training ? "train_batch" : "forward", "bank",
                         sim_epoch_us_, bank_reports[b].busy_ns * 1e-3,
                         static_cast<int>(b), trace_pid_);
    }
    sim_epoch_us_ += report.latency_ns() * 1e-3;
  }

  if (attributing) {
    // Fold the per-bank segment reports into the chip -> bank -> layer
    // attribution tree. Lowering emits one kSync-terminated segment per
    // layer pass (the forward prologue's CFG instructions ride in the first
    // segment); a training program appends a final updates+SYNC segment,
    // booked under the bank's "update" node. Latency here is per-node work
    // (busy time), so the tree rollup reconciles exactly — the chip-level
    // critical-path latency stays in the chip.latency_ns gauge.
    auto& attr = obs::Attribution::instance();
    for (std::size_t bank_id = 0; bank_id < by_bank.size(); ++bank_id) {
      if (!bank_active[bank_id]) continue;
      const auto& lyr = by_bank[bank_id];
      const std::string bank_path = "chip/bank" + std::to_string(bank_id);
      const auto& segs = bank_segments[bank_id];
      const std::size_t layer_segments =
          training ? 3 * batch * lyr.size() : lyr.size();
      for (std::size_t s = 0; s < segs.size(); ++s) {
        const std::string path =
            s < layer_segments
                ? bank_path + "/layer" + std::to_string(lyr[s % lyr.size()])
                : bank_path + "/update";
        attr.add(path, "latency_ns", segs[s].busy_ns);
        attr.add(path, "energy_pj", segs[s].energy.total_pj());
        attr.add(path, "instructions",
                 static_cast<double>(segs[s].instructions));
      }
    }
    attr.add("chip/noc", "latency_ns", report.noc_ns);
    attr.add("chip/noc", "energy_pj", report.energy.component_pj("noc"));

    auto& reg = obs::Registry::instance();
    static obs::Counter& runs = reg.counter("chip.runs");
    static obs::Counter& instructions = reg.counter("chip.instructions");
    runs.add();
    instructions.add(report.instructions);
    reg.gauge("chip.latency_ns").set(report.latency_ns());
    // Energy-breakdown snapshot: one gauge per component, last run wins.
    for (const auto& [component, pj] : report.energy.breakdown())
      reg.gauge("chip.energy_pj." + component).set(pj);
  }
  // Each chip run is one simulated step — the Snapshotter's primary clock
  // for chip-sim-driven workloads (no-op when metrics are off).
  obs::snapshot_tick();
  return report;
}

void ChipSimulator::set_maintenance_slots(double period_ns, double len_ns) {
  RERAMDL_CHECK_GE(period_ns, 0.0);
  RERAMDL_CHECK_GE(len_ns, 0.0);
  if (period_ns > 0.0) RERAMDL_CHECK_LT(len_ns, period_ns);
  maint_period_ns_ = period_ns;
  maint_len_ns_ = len_ns;
}

double ChipSimulator::stretched_ns(double busy_ns) const {
  if (maint_period_ns_ <= 0.0 || maint_len_ns_ <= 0.0) return busy_ns;
  // Every (period - len) of demand time crossed inserts one len_ns slot:
  // the bank alternates usable stretches and reserved windows.
  const double usable = maint_period_ns_ - maint_len_ns_;
  const double slots = std::floor(busy_ns / usable);
  return busy_ns + slots * maint_len_ns_;
}

ChipRunReport ChipSimulator::run_forward_pass() {
  return run(/*training=*/false, 1);
}

ChipRunReport ChipSimulator::run_training_batch(std::size_t batch) {
  RERAMDL_CHECK_GT(batch, 0u);
  return run(/*training=*/true, batch);
}

}  // namespace reramdl::arch
