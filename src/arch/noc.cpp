#include "arch/noc.hpp"

#include <cmath>

#include "common/check.hpp"

namespace reramdl::arch {

MeshNoc::MeshNoc(std::size_t rows, std::size_t cols, NocParams params)
    : rows_(rows), cols_(cols), params_(params) {
  RERAMDL_CHECK_GT(rows, 0u);
  RERAMDL_CHECK_GT(cols, 0u);
  RERAMDL_CHECK_GT(params.link_bandwidth_bytes_per_ns, 0.0);
}

std::size_t MeshNoc::hops(std::size_t from_bank, std::size_t to_bank) const {
  RERAMDL_CHECK_LT(from_bank, num_banks());
  RERAMDL_CHECK_LT(to_bank, num_banks());
  const std::size_t fr = from_bank / cols_, fc = from_bank % cols_;
  const std::size_t tr = to_bank / cols_, tc = to_bank % cols_;
  const std::size_t dr = fr > tr ? fr - tr : tr - fr;
  const std::size_t dc = fc > tc ? fc - tc : tc - fc;
  return dr + dc;
}

double MeshNoc::transfer_latency_ns(std::size_t from_bank, std::size_t to_bank,
                                    std::size_t bytes) const {
  const std::size_t h = hops(from_bank, to_bank);
  if (h == 0) return 0.0;
  const double serialization =
      static_cast<double>(bytes) / params_.link_bandwidth_bytes_per_ns;
  return static_cast<double>(h) * params_.hop_latency_ns + serialization;
}

double MeshNoc::transfer_energy_pj(std::size_t from_bank, std::size_t to_bank,
                                   std::size_t bytes) const {
  return static_cast<double>(hops(from_bank, to_bank)) *
         params_.hop_energy_pj_per_byte * static_cast<double>(bytes);
}

MeshNoc make_mesh_for_banks(std::size_t banks, NocParams params) {
  RERAMDL_CHECK_GT(banks, 0u);
  std::size_t rows = static_cast<std::size_t>(
      std::floor(std::sqrt(static_cast<double>(banks))));
  while (rows > 1 && banks % rows != 0) --rows;
  const std::size_t cols = (banks + rows - 1) / rows;
  return MeshNoc(rows, cols, params);
}

}  // namespace reramdl::arch
