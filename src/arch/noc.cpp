#include "arch/noc.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <queue>
#include <utility>

#include "common/check.hpp"

namespace reramdl::arch {

MeshNoc::MeshNoc(std::size_t rows, std::size_t cols, NocParams params)
    : rows_(rows), cols_(cols), params_(params) {
  RERAMDL_CHECK_GT(rows, 0u);
  RERAMDL_CHECK_GT(cols, 0u);
  RERAMDL_CHECK_GT(params.link_bandwidth_bytes_per_ns, 0.0);
}

std::size_t MeshNoc::hops(std::size_t from_bank, std::size_t to_bank) const {
  RERAMDL_CHECK_LT(from_bank, num_banks());
  RERAMDL_CHECK_LT(to_bank, num_banks());
  const std::size_t fr = from_bank / cols_, fc = from_bank % cols_;
  const std::size_t tr = to_bank / cols_, tc = to_bank % cols_;
  const std::size_t dr = fr > tr ? fr - tr : tr - fr;
  const std::size_t dc = fc > tc ? fc - tc : tc - fc;
  return dr + dc;
}

double MeshNoc::transfer_latency_ns(std::size_t from_bank, std::size_t to_bank,
                                    std::size_t bytes) const {
  const std::size_t h = hops(from_bank, to_bank);
  if (h == 0) return 0.0;
  const double serialization =
      static_cast<double>(bytes) / params_.link_bandwidth_bytes_per_ns;
  return static_cast<double>(h) * params_.hop_latency_ns + serialization;
}

double MeshNoc::transfer_energy_pj(std::size_t from_bank, std::size_t to_bank,
                                   std::size_t bytes) const {
  return static_cast<double>(hops(from_bank, to_bank)) *
         params_.hop_energy_pj_per_byte * static_cast<double>(bytes);
}

std::size_t MeshNoc::link_index(std::size_t node, LinkDir dir) const {
  RERAMDL_CHECK_LT(node, num_banks());
  return node * 4 + static_cast<std::size_t>(dir);
}

std::string MeshNoc::link_name(std::size_t link) const {
  RERAMDL_CHECK_LT(link, num_links());
  static const char* kDir = "EWSN";
  const std::size_t node = link / 4;
  return "link" + std::to_string(node / cols_) + "_" +
         std::to_string(node % cols_) + "_" + kDir[link % 4];
}

double NocSimReport::max_link_utilization() const {
  if (makespan_ns <= 0.0) return 0.0;
  double busiest = 0.0;
  for (const auto& l : links) busiest = std::max(busiest, l.busy_ns);
  return busiest / makespan_ns;
}

namespace {

// A straight run of an XY route: `len` hops in direction `dir`, the head
// entering at mesh node `node`.
struct RouteRun {
  std::size_t node = 0;
  LinkDir dir = LinkDir::kEast;
  std::size_t len = 0;
};

// Signed node stride of one hop in `dir` for a `cols`-wide mesh.
std::ptrdiff_t dir_stride(LinkDir dir, std::size_t cols) {
  switch (dir) {
    case LinkDir::kEast: return 1;
    case LinkDir::kWest: return -1;
    case LinkDir::kSouth: return static_cast<std::ptrdiff_t>(cols);
    case LinkDir::kNorth: return -static_cast<std::ptrdiff_t>(cols);
  }
  return 0;
}

}  // namespace

NocSimReport MeshNoc::simulate(
    const std::vector<NocTransferRequest>& requests) const {
  NocSimReport report;
  report.transfers.resize(requests.size());
  report.links.assign(num_links(), NocLinkStats{});
  if (requests.empty()) return report;

  // Validate requests and index the dependents of each transfer.
  std::vector<std::vector<std::size_t>> dependents(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const auto& r = requests[i];
    RERAMDL_CHECK_LT(r.from, num_banks());
    RERAMDL_CHECK_LT(r.to, num_banks());
    if (r.dep >= 0) {
      // Deps point backwards, so the dependency graph is trivially acyclic.
      RERAMDL_CHECK_LT(static_cast<std::size_t>(r.dep), i);
      dependents[static_cast<std::size_t>(r.dep)].push_back(i);
    }
  }

  // Virtual-time injection order: earliest-ready first, request index as the
  // deterministic tie-break. A transfer enters the queue once its dep (if
  // any) has completed, with ready = max(own ready, dep completion) — which
  // can never precede an already-processed transfer's ready time, so the
  // greedy link-occupancy walk below is a consistent FCFS discipline.
  using QueueEntry = std::pair<double, std::size_t>;  // (ready, id)
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      ready_queue;
  for (std::size_t i = 0; i < requests.size(); ++i)
    if (requests[i].dep < 0) ready_queue.emplace(requests[i].ready_ns, i);

  std::vector<double> link_free(num_links(), 0.0);
  const double bw = params_.link_bandwidth_bytes_per_ns;
  std::size_t processed = 0;

  while (!ready_queue.empty()) {
    const auto [ready, id] = ready_queue.top();
    ready_queue.pop();
    ++processed;
    const auto& req = requests[id];
    auto& timing = report.transfers[id];
    timing.start_ns = ready;

    const double ser = static_cast<double>(req.bytes) / bw;
    double cursor = ready;

    if (req.from != req.to) {
      // XY route: column run first, then row run.
      const std::size_t fr = req.from / cols_, fc = req.from % cols_;
      const std::size_t tr = req.to / cols_, tc = req.to % cols_;
      RouteRun runs[2];
      std::size_t num_runs = 0;
      if (fc != tc)
        runs[num_runs++] = {req.from,
                            tc > fc ? LinkDir::kEast : LinkDir::kWest,
                            tc > fc ? tc - fc : fc - tc};
      if (fr != tr)
        runs[num_runs++] = {fr * cols_ + tc,
                            tr > fr ? LinkDir::kSouth : LinkDir::kNorth,
                            tr > fr ? tr - fr : fr - tr};

      for (std::size_t ri = 0; ri < num_runs; ++ri) {
        const RouteRun& run = runs[ri];
        const std::ptrdiff_t stride = dir_stride(run.dir, cols_);
        std::size_t node = run.node;
        std::size_t remaining = run.len;
        timing.hops += run.len;
        while (remaining > 0) {
          // SMART bypass: collapse the next chunk of the straight run when
          // it fits the bypass length and every link is free at the head's
          // arrival. A 1-hop chunk has no intermediate router to skip.
          bool bypassed = false;
          if (params_.smart_max_hops > 0) {
            const std::size_t chunk =
                std::min(remaining, params_.smart_max_hops);
            if (chunk >= 2) {
              bool free = true;
              std::size_t probe = node;
              for (std::size_t h = 0; h < chunk && free; ++h) {
                free = link_free[link_index(probe, run.dir)] <= cursor;
                probe = static_cast<std::size_t>(
                    static_cast<std::ptrdiff_t>(probe) + stride);
              }
              if (free) {
                for (std::size_t h = 0; h < chunk; ++h) {
                  const std::size_t l = link_index(node, run.dir);
                  link_free[l] = cursor + ser;
                  report.links[l].busy_ns += ser;
                  ++report.links[l].transfers;
                  node = static_cast<std::size_t>(
                      static_cast<std::ptrdiff_t>(node) + stride);
                }
                cursor += params_.smart_hop_latency_ns;
                timing.smart_hops += chunk;
                ++report.smart_segments;
                remaining -= chunk;
                bypassed = true;
              }
            }
          }
          if (!bypassed) {
            // Per-hop routing with contention queuing: wait for the link,
            // hold it for the packet's serialization time, move the head on
            // after one hop latency.
            const std::size_t l = link_index(node, run.dir);
            const double wait = std::max(cursor, link_free[l]);
            timing.queue_ns += wait - cursor;
            link_free[l] = wait + ser;
            report.links[l].busy_ns += ser;
            ++report.links[l].transfers;
            cursor = wait + params_.hop_latency_ns;
            node = static_cast<std::size_t>(
                static_cast<std::ptrdiff_t>(node) + stride);
            --remaining;
          }
        }
      }
      // The tail streams in behind the head on the final link.
      timing.done_ns = cursor + ser;
    } else {
      timing.done_ns = cursor;  // same-bank transfers are free
    }

    report.makespan_ns = std::max(report.makespan_ns, timing.done_ns);
    report.queue_ns += timing.queue_ns;
    report.hops_total += timing.hops;
    report.smart_hops_total += timing.smart_hops;
    for (const std::size_t dep_id : dependents[id])
      ready_queue.emplace(std::max(requests[dep_id].ready_ns, timing.done_ns),
                          dep_id);
  }
  // Every transfer reachable: dep chains are backward-pointing, so the only
  // way to miss one is a dep whose own dep never completed — impossible.
  RERAMDL_CHECK_EQ(processed, requests.size());
  return report;
}

MeshNoc make_mesh_for_banks(std::size_t banks, NocParams params) {
  RERAMDL_CHECK_GT(banks, 0u);
  std::size_t rows = static_cast<std::size_t>(
      std::floor(std::sqrt(static_cast<double>(banks))));
  while (rows > 1 && banks % rows != 0) --rows;
  const std::size_t cols = (banks + rows - 1) / rows;
  return MeshNoc(rows, cols, params);
}

}  // namespace reramdl::arch
