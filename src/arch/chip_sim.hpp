// Chip-level simulation: the integration layer over the whole arch stack.
//
// Takes a mapped network and a layer-to-bank placement, lowers each bank's
// share into bank-controller programs (arch/lowering), executes them on live
// Bank models, and combines per-bank busy times with the NoC transfer costs
// of inter-bank activations. Banks run concurrently, so the chip-level
// latency is the critical bank's busy time plus the serialized interconnect
// time — giving an executable cross-check of the analytic accelerator
// reports.
#pragma once

#include <cstddef>
#include <vector>

#include "arch/controller.hpp"
#include "arch/lowering.hpp"
#include "arch/noc.hpp"
#include "arch/placement.hpp"

namespace reramdl::arch {

struct ChipRunReport {
  std::size_t banks_used = 0;
  std::size_t instructions = 0;
  double critical_bank_ns = 0.0;  // busiest bank's execution time
  double total_bank_ns = 0.0;     // summed over banks (work, not latency)
  double noc_ns = 0.0;            // inter-bank activation transfers
  double maint_ns = 0.0;          // critical-path time lost to reserved
                                  // maintenance slots (0 unless enabled)
  EnergyMeter energy;             // bank components + "noc"

  double latency_ns() const { return critical_bank_ns + noc_ns; }
};

class ChipSimulator {
 public:
  // The placement's banks must index into a mesh covering chip.banks. The
  // 3-argument form takes the NoC parameters from chip.noc; the 4-argument
  // form overrides them explicitly.
  ChipSimulator(const ChipConfig& chip, mapping::NetworkMapping mapping,
                Placement placement);
  ChipSimulator(const ChipConfig& chip, mapping::NetworkMapping mapping,
                Placement placement, NocParams noc_params);

  // One sample's forward pass across the chip.
  ChipRunReport run_forward_pass();
  // One training batch (3 passes per sample + the update cycle).
  ChipRunReport run_training_batch(std::size_t batch);

  const MeshNoc& noc() const { return noc_; }

  // Reserve a recurring maintenance window on every bank timeline (the
  // fixed_slot arbitration of DESIGN.md §16 seen from the chip model):
  // each period_ns of bank time donates len_ns to background refresh /
  // scrub, so demand work on a bank stretches by one slot per
  // (period - len) of useful time. Zero (the default) disables the
  // reservation and keeps reports bit-identical to the unmaintained chip.
  // maint_ns reports the critical bank's stretch; latency_ns() grows by
  // exactly that amount.
  void set_maintenance_slots(double period_ns, double len_ns);

 private:
  // Demand busy time stretched around the reserved slots.
  double stretched_ns(double busy_ns) const;
  // Layer indices homed in each used bank, in network order.
  std::vector<std::vector<std::size_t>> layers_by_bank() const;
  ChipRunReport run(bool training, std::size_t batch);

  ChipConfig chip_;
  mapping::NetworkMapping mapping_;
  Placement placement_;
  MeshNoc noc_;

  // Observability (active only when RERAMDL_TRACE is set): a virtual trace
  // process for this simulator's simulated timeline, with one track per
  // used bank plus a NoC track. Consecutive run() calls append after the
  // previous run's span window, so a batch loop reads as a Gantt chart.
  int trace_pid_ = -1;
  double sim_epoch_us_ = 0.0;
  double maint_period_ns_ = 0.0;  // 0 = no reserved maintenance slots
  double maint_len_ns_ = 0.0;
};

}  // namespace reramdl::arch
