#include "arch/params.hpp"

namespace reramdl::arch {

ChipConfig pipelayer_chip() {
  ChipConfig c;
  c.banks = 64;
  c.morphable_subarrays_per_bank = 32;
  c.memory_subarrays_per_bank = 24;
  c.buffer_subarrays_per_bank = 8;
  c.arrays_per_subarray = 8;
  return c;  // 16384 compute arrays
}

ChipConfig regan_chip() {
  ChipConfig c;
  c.banks = 32;
  c.morphable_subarrays_per_bank = 32;
  c.memory_subarrays_per_bank = 16;
  c.buffer_subarrays_per_bank = 16;  // ReGAN doubles intermediate storage (CS)
  c.arrays_per_subarray = 8;
  // ReGAN's ASPDAC'18-generation FF subarrays: VBN keeps signal ranges
  // normalized, so the I&F conversion runs at lower resolution and energy
  // than the PipeLayer design point.
  c.costs.array_compute_energy_pj = 18000.0;  // 18 nJ
  // Buffer subarrays are connected to FF subarrays through private data
  // ports (Fig. 10), so inter-layer traffic does not contend with the Mem
  // subarrays: double the effective internal bandwidth.
  c.costs.internal_bandwidth_bytes_per_ns = 96.0;
  return c;  // 8192 compute arrays
}

}  // namespace reramdl::arch
