// Layer-to-bank placement.
//
// A mapped network's layers must be assigned to banks whose morphable
// subarrays can hold their arrays; consecutive layers in different banks pay
// interconnect cost for every sample's activations. The snake placement
// walks the mesh so that consecutive layers land in the same or adjacent
// banks, which is what makes the inter-layer pipeline's cycle time
// insensitive to chip scale.
#pragma once

#include <cstddef>
#include <vector>

#include "arch/noc.hpp"
#include "arch/params.hpp"
#include "mapping/layer_mapping.hpp"

namespace reramdl::arch {

struct Placement {
  // bank[i] = home bank of weighted layer i (the bank holding its first
  // array chunk; large layers spill into subsequent banks).
  std::vector<std::size_t> bank;
  // spans[i] = number of banks layer i occupies (1 when it fits its home).
  std::vector<std::size_t> spans;
  // Arrays allocated per bank.
  std::vector<std::size_t> arrays_per_bank;
};

struct PlacementCost {
  std::size_t total_hops = 0;      // sum over adjacent layer pairs
  double transfer_ns_per_sample = 0.0;
  double transfer_pj_per_sample = 0.0;
  std::size_t banks_used = 0;
};

// Greedy snake placement: fill banks in mesh-snake order; a layer larger
// than the remaining bank capacity spills into the following snake banks.
// Throws if the chip runs out of banks.
Placement place_snake(const mapping::NetworkMapping& mapping,
                      const ChipConfig& chip, const MeshNoc& noc);

// Pathological baseline: round-robin layers across all banks (maximally
// scattered), used by the placement ablation.
Placement place_scattered(const mapping::NetworkMapping& mapping,
                          const ChipConfig& chip, const MeshNoc& noc);

// Interconnect cost of one sample's forward pass under a placement: each
// adjacent weighted-layer pair (i, i+1) ships layer i's output activations
// from bank[i] to bank[i+1].
PlacementCost evaluate_placement(const Placement& placement,
                                 const mapping::NetworkMapping& mapping,
                                 const MeshNoc& noc);

}  // namespace reramdl::arch
