// Layer-to-bank placement.
//
// A mapped network's layers must be assigned to banks whose morphable
// subarrays can hold their arrays; consecutive layers in different banks pay
// interconnect cost for every sample's activations, and a layer spilled
// across several banks additionally pays partial-sum collection traffic from
// its spill banks back to its home bank. The snake placement walks the mesh
// so that consecutive layers land in the same or adjacent banks; the
// optimized placement refines it with a deterministic seeded local search
// (pairwise bank swaps + spill re-homing) against the link-level NoC event
// model (arch/noc simulate()).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "arch/noc.hpp"
#include "arch/params.hpp"
#include "mapping/layer_mapping.hpp"

namespace reramdl::arch {

struct Placement {
  // bank[i] = home bank of weighted layer i (the bank holding its first
  // array chunk and accumulating its partial sums; large layers spill into
  // further banks).
  std::vector<std::size_t> bank;
  // spans[i] = number of banks layer i occupies (1 when it fits its home).
  std::vector<std::size_t> spans;
  // spill[i] = the banks beyond the home holding layer i's overflow arrays,
  // in allocation order (empty when spans[i] == 1).
  std::vector<std::vector<std::size_t>> spill;
  // Arrays allocated per bank.
  std::vector<std::size_t> arrays_per_bank;
};

struct PlacementCost {
  std::size_t total_hops = 0;  // adjacent pairs + spill gathers
  double transfer_ns_per_sample = 0.0;  // includes gather_ns_per_sample
  double transfer_pj_per_sample = 0.0;
  // Intra-layer partial-sum collection share (spilled layers only).
  double gather_ns_per_sample = 0.0;
  std::size_t banks_used = 0;
};

// Greedy snake placement: fill banks in mesh-snake order; a layer larger
// than the remaining bank capacity spills into the following snake banks.
// Throws if the chip runs out of banks.
Placement place_snake(const mapping::NetworkMapping& mapping,
                      const ChipConfig& chip, const MeshNoc& noc);

// Pathological baseline: round-robin layers across all banks (maximally
// scattered), used by the placement ablation.
Placement place_scattered(const mapping::NetworkMapping& mapping,
                          const ChipConfig& chip, const MeshNoc& noc);

struct PlacementSearchOptions {
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;
  std::size_t iterations = 3000;  // neighborhood moves attempted
  // In-flight samples the objective pipelines through the event model, so
  // the search sees link contention between overlapping sample chains.
  std::size_t pipeline_samples = 4;
};

// Cost-driven placement: seeded first-improvement local search from the
// snake seed. Moves: (a) pairwise bank swaps — exchange the full contents of
// two mesh nodes (capacity-safe since banks are uniform); (b) spill
// re-homing — promote one of a spilled layer's spill banks to be its home.
// Objective: simulated makespan of pipeline_samples overlapping forward
// chains under the mesh's event model (contention + SMART per noc.params()).
// Entirely serial and seeded: identical result for any RERAMDL_THREADS.
Placement place_optimized(const mapping::NetworkMapping& mapping,
                          const ChipConfig& chip, const MeshNoc& noc,
                          const PlacementSearchOptions& options = {});

// Interconnect cost of one sample's forward pass under a placement, priced
// with the closed-form (uncontended) per-transfer model: each adjacent
// weighted-layer pair (i, i+1) ships layer i's output activations from
// bank[i] to bank[i+1], and each spilled layer first gathers partial sums
// from its spill banks into its home bank.
PlacementCost evaluate_placement(const Placement& placement,
                                 const mapping::NetworkMapping& mapping,
                                 const MeshNoc& noc);

// Partial-sum bytes one spill bank of layer i ships to the layer's home
// bank: the bank's share of the output elements (replicas / column tiles
// are disjoint slices; row-tiled partials accumulate locally first), at
// double width for row-split layers since partial sums travel at
// accumulator precision.
std::size_t gather_bytes_per_spill_bank(const mapping::LayerMapping& layer,
                                        std::size_t spans);

// The event-model transfer set of `samples` in-flight forward passes: per
// sample, each layer's spill gathers followed by its output-activation
// transfer to the next layer's home, chained by deps within the sample;
// different samples' chains overlap and contend on shared links.
std::vector<NocTransferRequest> sample_transfers(
    const Placement& placement, const mapping::NetworkMapping& mapping,
    std::size_t samples);

}  // namespace reramdl::arch
