#include "arch/energy.hpp"

#include "common/check.hpp"

namespace reramdl::arch {

void EnergyMeter::add(const std::string& component, double energy_pj) {
  RERAMDL_CHECK_GE(energy_pj, 0.0);
  by_component_[component] += energy_pj;
}

void EnergyMeter::merge(const EnergyMeter& other) {
  for (const auto& [component, pj] : other.by_component_)
    by_component_[component] += pj;
}

double EnergyMeter::total_pj() const {
  double t = 0.0;
  for (const auto& [name, e] : by_component_) t += e;
  return t;
}

double EnergyMeter::component_pj(const std::string& component) const {
  const auto it = by_component_.find(component);
  return it == by_component_.end() ? 0.0 : it->second;
}

void EnergyMeter::reset() { by_component_.clear(); }

}  // namespace reramdl::arch
