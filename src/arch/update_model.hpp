// Weight-update timing model.
//
// The pipeline formulas count the batch weight update as a single cycle.
// Physically, the spike drivers act as write drivers (paper component (a))
// and program one wordline's cells in parallel, so an array reprograms in
// rows x per-cell-programming-time; arrays update concurrently. This model
// quantifies the real update latency and how many pipeline cycles it spans,
// making the "+1 cycle" idealization checkable: with delta updates (a few
// pulses per cell instead of a full re-tune) the update fits a handful of
// pipeline cycles and is negligible against the B-cycle batch body.
#pragma once

#include <cstddef>

#include "arch/params.hpp"
#include "mapping/layer_mapping.hpp"

namespace reramdl::arch {

struct UpdateTiming {
  double update_ns = 0.0;         // wall time of the update window
  double pipeline_cycle_ns = 0.0; // cycle it is measured against
  double cycles() const {
    return pipeline_cycle_ns > 0.0 ? update_ns / pipeline_cycle_ns : 0.0;
  }
};

class UpdateModel {
 public:
  UpdateModel(const ChipConfig& chip, const mapping::NetworkMapping& mapping);

  // Rows that must be programmed sequentially in the worst-mapped array.
  std::size_t rows_to_program() const;

  // Full re-tune of every cell (tune_pulses per cell).
  UpdateTiming full_reprogram(double pipeline_cycle_ns) const;

  // Delta update: only `changed_fraction` of rows carry weight changes and
  // each needs `pulses` programming pulses (1-2 for small SGD steps).
  UpdateTiming delta_update(double pipeline_cycle_ns, double changed_fraction,
                            std::size_t pulses) const;

 private:
  const ChipConfig* chip_;
  std::size_t rows_;
};

}  // namespace reramdl::arch
