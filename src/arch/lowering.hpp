// Lowering: turn a mapped network into the instruction stream the bank
// control unit executes (paper Sec. III-A-3e: the control unit "offloads
// the computation from the host CPU and orchestrates the data transfers
// between memory subarrays and morphable subarrays").
//
// The generated program for one forward pass is, per weighted layer:
//   CFG  (morph the layer's subarrays into compute mode — done once up front)
//   repeat steps_per_sample times:
//     MOVE    (stage the input vectors from the memory subarray)
//     COMPUTE (one replicated array step)
//   STORE  (spill the layer's outputs to its memory subarray)
//   SYNC   (stage boundary)
// Training batches append, at batch end, one UPDATE per layer reprogramming
// its cells, followed by a SYNC (the paper's single update cycle).
#pragma once

#include <cstdint>
#include <vector>

#include "arch/isa.hpp"
#include "arch/params.hpp"
#include "mapping/layer_mapping.hpp"

namespace reramdl::arch {

struct LoweringStats {
  std::size_t configs = 0;
  std::size_t moves = 0;
  std::size_t computes = 0;
  std::size_t stores = 0;
  std::size_t updates = 0;
  std::size_t syncs = 0;
  std::size_t total() const {
    return configs + moves + computes + stores + updates + syncs;
  }
};

// Program for one sample's forward pass through every weighted layer.
// Subarrays are assigned round-robin within the bank. All instructions
// target `bank_id`.
std::vector<std::uint32_t> lower_forward_pass(
    const mapping::NetworkMapping& mapping, const ChipConfig& chip,
    std::size_t bank_id);

// Program for one training batch: `batch` forward passes' worth of compute
// per layer (the backward passes run on mirrored arrays with the same
// instruction count, so they are folded in as a 3x compute repetition),
// then the batch's weight-update cycle.
std::vector<std::uint32_t> lower_training_batch(
    const mapping::NetworkMapping& mapping, const ChipConfig& chip,
    std::size_t bank_id, std::size_t batch);

// Static analysis of a program (no execution).
LoweringStats analyze(const std::vector<std::uint32_t>& program);

}  // namespace reramdl::arch
