// Energy accounting. Components book their consumption into named meters so
// benches can report a per-component breakdown next to the totals.
#pragma once

#include <cstddef>
#include <map>
#include <string>

namespace reramdl::arch {

class EnergyMeter {
 public:
  void add(const std::string& component, double energy_pj);
  // Fold another meter's breakdown into this one, component by component.
  // std::map iteration keeps the fold order deterministic, so merging
  // per-bank meters in ascending bank order is reproducible.
  void merge(const EnergyMeter& other);
  double total_pj() const;
  double component_pj(const std::string& component) const;
  const std::map<std::string, double>& breakdown() const { return by_component_; }
  void reset();

 private:
  std::map<std::string, double> by_component_;
};

}  // namespace reramdl::arch
