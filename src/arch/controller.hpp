// Bank control unit: decodes an instruction stream and drives the bank's
// subarrays, accumulating cycle and energy costs. This offloads the
// orchestration from the host CPU (paper component (e)).
#pragma once

#include <cstdint>
#include <vector>

#include "arch/bank.hpp"
#include "arch/isa.hpp"

namespace reramdl::arch {

struct ExecutionReport {
  std::size_t instructions = 0;
  double busy_ns = 0.0;          // summed operation latencies
  std::size_t sync_points = 0;
  EnergyMeter energy;
};

class BankController {
 public:
  explicit BankController(Bank& bank);

  // Execute an encoded program sequentially; throws CheckError on illegal
  // instructions (e.g. COMPUTE on a memory-mode subarray).
  ExecutionReport run(const std::vector<std::uint32_t>& program);

 private:
  double execute(const Instruction& inst, ExecutionReport& report);

  Bank& bank_;
};

}  // namespace reramdl::arch
