// Bank control unit: decodes an instruction stream and drives the bank's
// subarrays, accumulating cycle and energy costs. This offloads the
// orchestration from the host CPU (paper component (e)).
#pragma once

#include <cstdint>
#include <vector>

#include "arch/bank.hpp"
#include "arch/isa.hpp"

namespace reramdl::arch {

struct ExecutionReport {
  std::size_t instructions = 0;
  double busy_ns = 0.0;          // summed operation latencies
  std::size_t sync_points = 0;
  EnergyMeter energy;
};

class BankController {
 public:
  explicit BankController(Bank& bank);

  // Execute an encoded program sequentially; throws CheckError on illegal
  // instructions (e.g. COMPUTE on a memory-mode subarray).
  //
  // When `segments` is non-null the run is additionally split at every
  // kSync into per-segment ExecutionReport deltas (appended in program
  // order, trailing partial segment included). The lowering layer ends each
  // layer pass with a kSync, so segments map 1:1 onto layer passes — the
  // per-layer feed for obs::Attribution. Capture never changes execution or
  // the returned totals; pass nullptr (the default) on hot paths.
  ExecutionReport run(const std::vector<std::uint32_t>& program,
                      std::vector<ExecutionReport>* segments = nullptr);

 private:
  double execute(const Instruction& inst, ExecutionReport& report);

  Bank& bank_;
};

}  // namespace reramdl::arch
