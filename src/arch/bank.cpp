#include "arch/bank.hpp"

#include "common/check.hpp"

namespace reramdl::arch {

Bank::Bank(const ChipConfig& chip, std::size_t bank_id)
    : chip_(&chip), id_(bank_id) {
  morphable_.reserve(chip.morphable_subarrays_per_bank);
  for (std::size_t i = 0; i < chip.morphable_subarrays_per_bank; ++i)
    morphable_.emplace_back(SubarrayKind::kMorphable, chip_);
  memory_.reserve(chip.memory_subarrays_per_bank);
  for (std::size_t i = 0; i < chip.memory_subarrays_per_bank; ++i)
    memory_.emplace_back(SubarrayKind::kMemory, chip_);
  buffer_.reserve(chip.buffer_subarrays_per_bank);
  for (std::size_t i = 0; i < chip.buffer_subarrays_per_bank; ++i)
    buffer_.emplace_back(SubarrayKind::kBuffer, chip_);
}

Subarray& Bank::morphable(std::size_t i) {
  RERAMDL_CHECK_LT(i, morphable_.size());
  return morphable_[i];
}

Subarray& Bank::memory(std::size_t i) {
  RERAMDL_CHECK_LT(i, memory_.size());
  return memory_[i];
}

Subarray& Bank::buffer(std::size_t i) {
  RERAMDL_CHECK_LT(i, buffer_.size());
  return buffer_[i];
}

std::size_t Bank::allocate_compute(std::size_t count, EnergyMeter& meter) {
  RERAMDL_CHECK_LE(count, morphable_.size());
  for (std::size_t i = 0; i < morphable_.size(); ++i)
    morphable_[i].morph(i < count ? SubarrayMode::kCompute : SubarrayMode::kMemory,
                        meter);
  compute_allocated_ = count;
  return count * chip_->arrays_per_subarray;
}

}  // namespace reramdl::arch
