// Inter-bank interconnect model.
//
// PipeLayer/ReGAN organize the chip as many memory banks (Fig. 6 / Fig. 10);
// consecutive pipeline stages placed in different banks exchange their
// activations over the chip interconnect, modeled here as a 2-D mesh with
// per-hop latency/energy and XY routing. The placement optimizer
// (arch/placement) minimizes this traffic.
#pragma once

#include <cstddef>

namespace reramdl::arch {

struct NocParams {
  double hop_latency_ns = 1.5;
  double hop_energy_pj_per_byte = 0.8;
  // Link bandwidth per direction, bytes per ns.
  double link_bandwidth_bytes_per_ns = 32.0;
};

class MeshNoc {
 public:
  // Banks arranged in a rows x cols mesh; bank b sits at
  // (b / cols, b % cols).
  MeshNoc(std::size_t rows, std::size_t cols, NocParams params);

  std::size_t num_banks() const { return rows_ * cols_; }
  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  // Manhattan (XY-routing) hop count between two banks.
  std::size_t hops(std::size_t from_bank, std::size_t to_bank) const;

  // Cost of moving `bytes` from one bank to another: serialization on the
  // narrowest link plus per-hop latency.
  double transfer_latency_ns(std::size_t from_bank, std::size_t to_bank,
                             std::size_t bytes) const;
  double transfer_energy_pj(std::size_t from_bank, std::size_t to_bank,
                            std::size_t bytes) const;

  const NocParams& params() const { return params_; }

 private:
  std::size_t rows_, cols_;
  NocParams params_;
};

// Smallest near-square mesh holding `banks` nodes.
MeshNoc make_mesh_for_banks(std::size_t banks, NocParams params = {});

}  // namespace reramdl::arch
