// Inter-bank interconnect model.
//
// PipeLayer/ReGAN organize the chip as many memory banks (Fig. 6 / Fig. 10);
// consecutive pipeline stages placed in different banks exchange their
// activations over the chip interconnect, modeled here as a 2-D mesh with
// per-hop latency/energy and XY routing. Two views of the same mesh:
//
//  * Closed-form cost queries (hops / transfer_latency_ns /
//    transfer_energy_pj) price one transfer in isolation — the pre-contention
//    model, kept bit-exact as the uncontended baseline.
//  * simulate() is a link-level event model: per-direction link occupancy
//    timelines, XY-routed serialization, contention queuing when concurrent
//    transfers share a link, and optional SMART-style single-cycle multi-hop
//    bypass (straight-line runs collapse to smart_hop_latency_ns when every
//    link in the run is free at the head's arrival; falls back to per-hop
//    routing under contention). The placement optimizer (arch/placement)
//    minimizes simulated per-sample latency against this model.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace reramdl::arch {

struct NocParams {
  double hop_latency_ns = 1.5;
  double hop_energy_pj_per_byte = 0.8;
  // Link bandwidth per direction, bytes per ns.
  double link_bandwidth_bytes_per_ns = 32.0;
  // Model link contention in the chip simulator / placement evaluation.
  // When false (and SMART off) the chip simulator charges the closed-form
  // uncontended sum, matching the pre-event-model costs bit-exactly.
  bool contention = false;
  // SMART bypass: a straight-line run of up to smart_max_hops whose links
  // are all free when the head arrives collapses to smart_hop_latency_ns
  // instead of per-hop routing. 0 disables. Enabling SMART implies the
  // event model (bypass eligibility needs the link timelines).
  std::size_t smart_max_hops = 0;
  double smart_hop_latency_ns = 0.4;

  bool event_model_active() const { return contention || smart_max_hops > 0; }
};

// Directed mesh link leaving a router. kEast increases the column.
enum class LinkDir : unsigned char { kEast = 0, kWest = 1, kSouth = 2, kNorth = 3 };

// One transfer offered to the event model. `dep` (an index into the same
// request vector, < this request's index) must complete before this transfer
// can inject — expressing per-sample activation chains.
struct NocTransferRequest {
  std::size_t from = 0, to = 0;
  std::size_t bytes = 0;
  double ready_ns = 0.0;
  std::ptrdiff_t dep = -1;
};

struct NocTransferTiming {
  double start_ns = 0.0;  // injection time (deps and ready resolved)
  double done_ns = 0.0;   // tail delivered at the destination
  double queue_ns = 0.0;  // waiting on busy links along the route
  std::size_t hops = 0;
  std::size_t smart_hops = 0;  // hops covered by collapsed bypass runs
};

struct NocLinkStats {
  double busy_ns = 0.0;       // serialization occupancy (never overlapping)
  std::size_t transfers = 0;  // packets that crossed this link
};

struct NocSimReport {
  std::vector<NocTransferTiming> transfers;
  double makespan_ns = 0.0;  // last tail delivery over all transfers
  double queue_ns = 0.0;     // summed contention waits
  std::size_t hops_total = 0;
  std::size_t smart_hops_total = 0;
  std::size_t smart_segments = 0;  // straight runs collapsed by SMART
  std::vector<NocLinkStats> links;  // indexed node * 4 + LinkDir

  // Busiest link's occupancy over the makespan; <= 1 by construction.
  double max_link_utilization() const;
};

class MeshNoc {
 public:
  // Banks arranged in a rows x cols mesh; bank b sits at
  // (b / cols, b % cols).
  MeshNoc(std::size_t rows, std::size_t cols, NocParams params);

  std::size_t num_banks() const { return rows_ * cols_; }
  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  // Manhattan (XY-routing) hop count between two banks.
  std::size_t hops(std::size_t from_bank, std::size_t to_bank) const;

  // Cost of moving `bytes` from one bank to another: serialization on the
  // narrowest link plus per-hop latency. Uncontended closed form.
  double transfer_latency_ns(std::size_t from_bank, std::size_t to_bank,
                             std::size_t bytes) const;
  double transfer_energy_pj(std::size_t from_bank, std::size_t to_bank,
                            std::size_t bytes) const;

  // Directed links: 4 per router (indexed node * 4 + LinkDir), a link being
  // the wire leaving `node` in that direction (edge routers own dangling
  // indices that no XY route ever uses).
  std::size_t num_links() const { return num_banks() * 4; }
  std::size_t link_index(std::size_t node, LinkDir dir) const;
  // "link<r>_<c>_<E|W|S|N>" — the obs attribution leaf name.
  std::string link_name(std::size_t link) const;

  // Link-level event model over one batch of transfers. Requests are
  // injected in virtual-time order (ready after deps, id as tie-break), XY
  // routed (columns first), each link holding the packet for its
  // serialization time — so concurrent transfers sharing a link serialize
  // while disjoint routes overlap. SMART bypass per params(). Entirely
  // serial and pure: identical output for any RERAMDL_THREADS.
  NocSimReport simulate(const std::vector<NocTransferRequest>& requests) const;

  const NocParams& params() const { return params_; }

 private:
  std::size_t rows_, cols_;
  NocParams params_;
};

// Smallest near-square mesh holding `banks` nodes.
MeshNoc make_mesh_for_banks(std::size_t banks, NocParams params = {});

}  // namespace reramdl::arch
