#include "arch/placement.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "common/check.hpp"

namespace reramdl::arch {
namespace {

std::size_t bank_capacity_arrays(const ChipConfig& chip) {
  return chip.morphable_subarrays_per_bank * chip.arrays_per_subarray;
}

// Snake order over the mesh: row 0 left-to-right, row 1 right-to-left, ...
// so consecutive banks in the order are always mesh neighbours.
std::vector<std::size_t> snake_order(const MeshNoc& noc) {
  std::vector<std::size_t> order;
  order.reserve(noc.num_banks());
  for (std::size_t r = 0; r < noc.rows(); ++r) {
    if (r % 2 == 0)
      for (std::size_t c = 0; c < noc.cols(); ++c) order.push_back(r * noc.cols() + c);
    else
      for (std::size_t c = noc.cols(); c > 0; --c)
        order.push_back(r * noc.cols() + c - 1);
  }
  return order;
}

}  // namespace

namespace {

// Allocate `need` arrays starting at `cursor` in the given bank order,
// spilling into later banks as required. Returns {home_bank, banks_spanned}
// and leaves `cursor` at the first bank with remaining capacity.
std::pair<std::size_t, std::size_t> allocate_spanning(
    std::size_t need, std::size_t capacity,
    const std::vector<std::size_t>& order, std::size_t& cursor,
    std::vector<std::size_t>& arrays_per_bank) {
  while (arrays_per_bank[order[cursor]] >= capacity) {
    ++cursor;
    RERAMDL_CHECK_LT(cursor, order.size());
  }
  const std::size_t home = order[cursor];
  std::size_t spanned = 0;
  std::size_t pos = cursor;
  while (need > 0) {
    RERAMDL_CHECK_LT(pos, order.size());
    const std::size_t bank = order[pos];
    const std::size_t free = capacity - arrays_per_bank[bank];
    const std::size_t take = std::min(free, need);
    if (take > 0) {
      arrays_per_bank[bank] += take;
      need -= take;
      ++spanned;
    }
    if (need > 0) ++pos;
  }
  cursor = arrays_per_bank[order[pos]] < capacity ? pos : pos + 1;
  if (cursor >= order.size()) cursor = order.size() - 1;
  return {home, spanned};
}

}  // namespace

Placement place_snake(const mapping::NetworkMapping& mapping,
                      const ChipConfig& chip, const MeshNoc& noc) {
  RERAMDL_CHECK(!mapping.layers.empty());
  const std::size_t capacity = bank_capacity_arrays(chip);
  RERAMDL_CHECK_GT(capacity, 0u);
  const auto order = snake_order(noc);

  Placement p;
  p.bank.reserve(mapping.layers.size());
  p.spans.reserve(mapping.layers.size());
  p.arrays_per_bank.assign(noc.num_banks(), 0);

  std::size_t cursor = 0;  // index into snake order
  for (const auto& layer : mapping.layers) {
    const auto [home, spanned] = allocate_spanning(
        layer.arrays(), capacity, order, cursor, p.arrays_per_bank);
    p.bank.push_back(home);
    p.spans.push_back(spanned);
  }
  return p;
}

Placement place_scattered(const mapping::NetworkMapping& mapping,
                          const ChipConfig& chip, const MeshNoc& noc) {
  RERAMDL_CHECK(!mapping.layers.empty());
  const std::size_t capacity = bank_capacity_arrays(chip);
  RERAMDL_CHECK_GT(capacity, 0u);
  Placement p;
  p.arrays_per_bank.assign(noc.num_banks(), 0);
  // Visit banks with a large stride so consecutive layers land far apart,
  // then fall back to a linear scan for the spill allocation.
  const std::size_t stride = std::max<std::size_t>(noc.num_banks() / 2, 1);
  std::vector<std::size_t> linear(noc.num_banks());
  for (std::size_t i = 0; i < linear.size(); ++i) linear[i] = i;

  std::size_t start = 0;
  for (const auto& layer : mapping.layers) {
    // Rotate the linear order so allocation begins at `start`.
    std::vector<std::size_t> order(linear.size());
    for (std::size_t i = 0; i < linear.size(); ++i)
      order[i] = (start + i) % linear.size();
    std::size_t cursor = 0;
    const auto [home, spanned] = allocate_spanning(
        layer.arrays(), capacity, order, cursor, p.arrays_per_bank);
    p.bank.push_back(home);
    p.spans.push_back(spanned);
    start = (start + stride) % noc.num_banks();
  }
  return p;
}

PlacementCost evaluate_placement(const Placement& placement,
                                 const mapping::NetworkMapping& mapping,
                                 const MeshNoc& noc) {
  RERAMDL_CHECK_EQ(placement.bank.size(), mapping.layers.size());
  PlacementCost cost;
  for (std::size_t i = 0; i + 1 < mapping.layers.size(); ++i) {
    const std::size_t from = placement.bank[i];
    const std::size_t to = placement.bank[i + 1];
    const std::size_t bytes = 4 * mapping.layers[i].spec.out_size();
    cost.total_hops += noc.hops(from, to);
    cost.transfer_ns_per_sample += noc.transfer_latency_ns(from, to, bytes);
    cost.transfer_pj_per_sample += noc.transfer_energy_pj(from, to, bytes);
  }
  std::set<std::size_t> used(placement.bank.begin(), placement.bank.end());
  cost.banks_used = used.size();
  return cost;
}

}  // namespace reramdl::arch
