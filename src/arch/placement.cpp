#include "arch/placement.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace reramdl::arch {
namespace {

std::size_t bank_capacity_arrays(const ChipConfig& chip) {
  return chip.morphable_subarrays_per_bank * chip.arrays_per_subarray;
}

// Snake order over the mesh: row 0 left-to-right, row 1 right-to-left, ...
// so consecutive banks in the order are always mesh neighbours.
std::vector<std::size_t> snake_order(const MeshNoc& noc) {
  std::vector<std::size_t> order;
  order.reserve(noc.num_banks());
  for (std::size_t r = 0; r < noc.rows(); ++r) {
    if (r % 2 == 0)
      for (std::size_t c = 0; c < noc.cols(); ++c) order.push_back(r * noc.cols() + c);
    else
      for (std::size_t c = noc.cols(); c > 0; --c)
        order.push_back(r * noc.cols() + c - 1);
  }
  return order;
}

struct SpanAllocation {
  std::size_t home = 0;
  std::vector<std::size_t> spill;  // banks beyond the home, allocation order
};

// Allocate `need` arrays spilling forward through `order`, starting at the
// first bank (at or after `cursor`) that can hold the whole layer — packing
// a layer against another layer's leftover space would spill it across one
// extra bank, and every spill bank pays partial-sum gather traffic per
// sample, a far steeper price than a temporarily stranded bank fraction. A
// layer bigger than a bank prefers the first untouched bank (minimal spill
// count). When no such bank exists (chip nearly full) it falls back to
// packing from `cursor`; leftovers stay reachable because `cursor` only
// advances past completely full banks.
SpanAllocation allocate_spanning(std::size_t need, std::size_t capacity,
                                 const std::vector<std::size_t>& order,
                                 std::size_t& cursor,
                                 std::vector<std::size_t>& arrays_per_bank) {
  while (cursor < order.size() && arrays_per_bank[order[cursor]] >= capacity)
    ++cursor;
  RERAMDL_CHECK_LT(cursor, order.size());

  std::size_t home_pos = cursor;
  {
    std::size_t p = cursor;
    if (need <= capacity) {
      while (p < order.size() && capacity - arrays_per_bank[order[p]] < need)
        ++p;
    } else {
      while (p < order.size() && arrays_per_bank[order[p]] != 0) ++p;
    }
    if (p < order.size()) home_pos = p;
  }

  SpanAllocation alloc;
  alloc.home = order[home_pos];
  std::size_t pos = home_pos;
  bool wrapped = false;  // retried the leftovers skipped before home_pos
  while (need > 0) {
    if (!wrapped && pos >= order.size()) {
      wrapped = true;
      pos = cursor;
    }
    RERAMDL_CHECK(wrapped ? pos < home_pos : pos < order.size());
    const std::size_t bank = order[pos];
    const std::size_t free = capacity - arrays_per_bank[bank];
    const std::size_t take = std::min(free, need);
    if (take > 0) {
      arrays_per_bank[bank] += take;
      need -= take;
      if (bank != alloc.home) alloc.spill.push_back(bank);
    }
    if (need > 0) ++pos;
  }
  return alloc;
}

void push_allocation(Placement& p, SpanAllocation alloc) {
  p.bank.push_back(alloc.home);
  p.spans.push_back(1 + alloc.spill.size());
  p.spill.push_back(std::move(alloc.spill));
}

const std::vector<std::size_t>* spill_of(const Placement& p, std::size_t i) {
  return i < p.spill.size() ? &p.spill[i] : nullptr;
}

}  // namespace

Placement place_snake(const mapping::NetworkMapping& mapping,
                      const ChipConfig& chip, const MeshNoc& noc) {
  RERAMDL_CHECK(!mapping.layers.empty());
  const std::size_t capacity = bank_capacity_arrays(chip);
  RERAMDL_CHECK_GT(capacity, 0u);
  const auto order = snake_order(noc);

  Placement p;
  p.bank.reserve(mapping.layers.size());
  p.spans.reserve(mapping.layers.size());
  p.spill.reserve(mapping.layers.size());
  p.arrays_per_bank.assign(noc.num_banks(), 0);

  std::size_t cursor = 0;  // index into snake order
  for (const auto& layer : mapping.layers)
    push_allocation(p, allocate_spanning(layer.arrays(), capacity, order,
                                         cursor, p.arrays_per_bank));
  return p;
}

Placement place_scattered(const mapping::NetworkMapping& mapping,
                          const ChipConfig& chip, const MeshNoc& noc) {
  RERAMDL_CHECK(!mapping.layers.empty());
  const std::size_t capacity = bank_capacity_arrays(chip);
  RERAMDL_CHECK_GT(capacity, 0u);
  Placement p;
  p.arrays_per_bank.assign(noc.num_banks(), 0);
  // Visit banks with a large stride so consecutive layers land far apart,
  // then fall back to a linear scan for the spill allocation.
  const std::size_t stride = std::max<std::size_t>(noc.num_banks() / 2, 1);
  std::vector<std::size_t> linear(noc.num_banks());
  for (std::size_t i = 0; i < linear.size(); ++i) linear[i] = i;

  std::size_t start = 0;
  for (const auto& layer : mapping.layers) {
    // Rotate the linear order so allocation begins at `start`.
    std::vector<std::size_t> order(linear.size());
    for (std::size_t i = 0; i < linear.size(); ++i)
      order[i] = (start + i) % linear.size();
    std::size_t cursor = 0;
    push_allocation(p, allocate_spanning(layer.arrays(), capacity, order,
                                         cursor, p.arrays_per_bank));
    start = (start + stride) % noc.num_banks();
  }
  return p;
}

std::size_t gather_bytes_per_spill_bank(const mapping::LayerMapping& layer,
                                        std::size_t spans) {
  RERAMDL_CHECK_GT(spans, 0u);
  const std::size_t bytes_out = 4 * layer.spec.out_size();
  const std::size_t share = (bytes_out + spans - 1) / spans;
  // Banks accumulate their local partial sums before shipping, so each
  // spill bank sends roughly its share of the output elements: replicas and
  // column tiles are disjoint output slices, and row-tiled partials reduce
  // to one local partial per touched element. Row-split layers ship at
  // double width — partial sums travel at accumulator precision, not
  // activation width, and only the home bank can finish the reduction.
  return layer.row_tiles > 1 ? 2 * share : share;
}

PlacementCost evaluate_placement(const Placement& placement,
                                 const mapping::NetworkMapping& mapping,
                                 const MeshNoc& noc) {
  RERAMDL_CHECK_EQ(placement.bank.size(), mapping.layers.size());
  PlacementCost cost;
  for (std::size_t i = 0; i < mapping.layers.size(); ++i) {
    const std::size_t home = placement.bank[i];
    // Intra-layer partial-sum collection: each spill bank ships its share
    // back to the layer's home before the output can move on.
    if (const auto* spill = spill_of(placement, i); spill && !spill->empty()) {
      const std::size_t gbytes =
          gather_bytes_per_spill_bank(mapping.layers[i], 1 + spill->size());
      for (const std::size_t from : *spill) {
        cost.total_hops += noc.hops(from, home);
        const double ns = noc.transfer_latency_ns(from, home, gbytes);
        cost.gather_ns_per_sample += ns;
        cost.transfer_ns_per_sample += ns;
        cost.transfer_pj_per_sample += noc.transfer_energy_pj(from, home, gbytes);
      }
    }
    // Inter-layer activation transfer to the next layer's home bank.
    if (i + 1 < mapping.layers.size()) {
      const std::size_t to = placement.bank[i + 1];
      const std::size_t bytes = 4 * mapping.layers[i].spec.out_size();
      cost.total_hops += noc.hops(home, to);
      cost.transfer_ns_per_sample += noc.transfer_latency_ns(home, to, bytes);
      cost.transfer_pj_per_sample += noc.transfer_energy_pj(home, to, bytes);
    }
  }
  std::set<std::size_t> used(placement.bank.begin(), placement.bank.end());
  cost.banks_used = used.size();
  return cost;
}

std::vector<NocTransferRequest> sample_transfers(
    const Placement& placement, const mapping::NetworkMapping& mapping,
    std::size_t samples) {
  RERAMDL_CHECK_EQ(placement.bank.size(), mapping.layers.size());
  std::vector<NocTransferRequest> reqs;
  for (std::size_t s = 0; s < samples; ++s) {
    std::ptrdiff_t prev = -1;
    for (std::size_t i = 0; i < mapping.layers.size(); ++i) {
      const std::size_t home = placement.bank[i];
      if (const auto* spill = spill_of(placement, i);
          spill && !spill->empty()) {
        const std::size_t gbytes =
            gather_bytes_per_spill_bank(mapping.layers[i], 1 + spill->size());
        for (const std::size_t from : *spill) {
          reqs.push_back({from, home, gbytes, 0.0, prev});
          prev = static_cast<std::ptrdiff_t>(reqs.size()) - 1;
        }
      }
      if (i + 1 < mapping.layers.size()) {
        reqs.push_back({home, placement.bank[i + 1],
                        4 * mapping.layers[i].spec.out_size(), 0.0, prev});
        prev = static_cast<std::ptrdiff_t>(reqs.size()) - 1;
      }
    }
  }
  return reqs;
}

namespace {

// Search state over the snake seed: a bank relabeling permutation (pairwise
// swaps exchange two mesh nodes' full contents) plus, per layer, which of
// its occupied banks acts as the home (spill re-homing).
struct SearchState {
  std::vector<std::size_t> relabel;      // relabel[seed_bank] = mesh bank
  std::vector<std::size_t> home_choice;  // index into the occupied-bank list
};

Placement apply_state(const Placement& seed, const SearchState& state) {
  Placement p;
  p.bank.resize(seed.bank.size());
  p.spans = seed.spans;
  p.spill.resize(seed.spill.size());
  p.arrays_per_bank.assign(seed.arrays_per_bank.size(), 0);
  for (std::size_t b = 0; b < seed.arrays_per_bank.size(); ++b)
    p.arrays_per_bank[state.relabel[b]] = seed.arrays_per_bank[b];
  for (std::size_t i = 0; i < seed.bank.size(); ++i) {
    std::vector<std::size_t> occupied;
    occupied.reserve(1 + seed.spill[i].size());
    occupied.push_back(state.relabel[seed.bank[i]]);
    for (const std::size_t b : seed.spill[i])
      occupied.push_back(state.relabel[b]);
    const std::size_t home_idx = state.home_choice[i];
    p.bank[i] = occupied[home_idx];
    p.spill[i].clear();
    for (std::size_t k = 0; k < occupied.size(); ++k)
      if (k != home_idx) p.spill[i].push_back(occupied[k]);
  }
  return p;
}

}  // namespace

Placement place_optimized(const mapping::NetworkMapping& mapping,
                          const ChipConfig& chip, const MeshNoc& noc,
                          const PlacementSearchOptions& options) {
  const Placement seed = place_snake(mapping, chip, noc);
  RERAMDL_CHECK_GT(options.pipeline_samples, 0u);

  SearchState state;
  state.relabel.resize(noc.num_banks());
  for (std::size_t b = 0; b < noc.num_banks(); ++b) state.relabel[b] = b;
  state.home_choice.assign(seed.bank.size(), 0);
  std::vector<std::size_t> spilled;  // layers eligible for re-homing
  for (std::size_t i = 0; i < seed.spill.size(); ++i)
    if (!seed.spill[i].empty()) spilled.push_back(i);

  const auto cost_of = [&](const Placement& p) {
    return noc.simulate(sample_transfers(p, mapping, options.pipeline_samples))
        .makespan_ns;
  };

  Placement best = apply_state(seed, state);
  double best_cost = cost_of(best);

  Rng rng(options.seed);
  for (std::size_t it = 0; it < options.iterations; ++it) {
    SearchState cand = state;
    // 1-in-4 moves re-home a spilled layer (when any exist); the rest swap
    // two mesh nodes' contents.
    const bool rehome = !spilled.empty() && rng.uniform_index(4) == 0;
    if (rehome) {
      const std::size_t layer = spilled[rng.uniform_index(spilled.size())];
      const std::size_t choices = 1 + seed.spill[layer].size();
      const std::size_t pick = rng.uniform_index(choices);
      if (pick == cand.home_choice[layer]) continue;
      cand.home_choice[layer] = pick;
    } else {
      const std::size_t a = rng.uniform_index(noc.num_banks());
      const std::size_t b = rng.uniform_index(noc.num_banks());
      if (a == b) continue;
      std::swap(cand.relabel[a], cand.relabel[b]);
    }
    Placement cand_p = apply_state(seed, cand);
    const double cand_cost = cost_of(cand_p);
    if (cand_cost < best_cost) {
      state = std::move(cand);
      best = std::move(cand_p);
      best_cost = cand_cost;
    }
  }
  return best;
}

}  // namespace reramdl::arch
