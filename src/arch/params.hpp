// Architectural parameters and the per-component cost catalog.
//
// Defaults are derived from the constants the PipeLayer (HPCA'17) and ISAAC
// (ISCA'16) evaluations use for 128x128 crossbars with 4-bit cells: a
// ~50.88 ns array compute cycle, nJ-scale energy per array activation once
// spike drivers, I&F converters, counters, shift-and-add trees and partial-
// sum collection are included, and 10s-of-pJ buffer accesses. Where a paper
// constant is not public, the value is calibrated so that the *ratios* of
// Table I reproduce (see EXPERIMENTS.md, "calibration").
#pragma once

#include <cstddef>

#include "arch/noc.hpp"
#include "device/reram_cell.hpp"

namespace reramdl::arch {

struct ComponentCosts {
  // One crossbar-array MVM activation (all input-bit phases), including the
  // spike drivers, I&F + counters, shift-and-add, and the subtractor share.
  double array_compute_energy_pj = 120000.0;  // 120 nJ
  double array_compute_latency_ns = 50.88;   // PipeLayer cycle time

  // Morphable/FF subarray used as plain memory.
  double memory_access_energy_pj_per_byte = 2.0;
  double memory_access_latency_ns = 29.31;  // ReRAM subarray read

  // Buffer subarray access (private ports, ReGAN Fig. 10).
  double buffer_access_energy_pj_per_byte = 1.0;
  double buffer_access_latency_ns = 10.0;

  // Activation function unit / configurable LUT, per element.
  double activation_energy_pj = 0.6;
  // Max-pool register, per element observed.
  double maxpool_energy_pj = 0.1;
  // Batch-norm sub+shift in the wordline drivers (ReGAN VBN), per element.
  double vbn_energy_pj = 0.4;

  // Weight update: per-cell reprogramming (on top of CellParams pulses).
  double update_driver_energy_pj = 2.0;

  // Static/idle power per allocated array in watts (peripheral leakage).
  double array_static_power_w = 0.0003;

  // Aggregate bandwidth between morphable subarrays and the memory
  // subarrays buffering inter-layer activations, in bytes per ns (= GB/s).
  // Each pipeline stage cycle must move the stage's activations through
  // this path, which bounds the cycle time for activation-heavy layers.
  double internal_bandwidth_bytes_per_ns = 48.0;

  // Areas in mm^2.
  double array_area_mm2 = 0.0025;   // 128x128 array + peripherals
  double bank_control_area_mm2 = 0.01;
  double buffer_area_per_kb_mm2 = 0.001;
};

struct ChipConfig {
  std::size_t banks = 64;
  std::size_t morphable_subarrays_per_bank = 32;
  std::size_t memory_subarrays_per_bank = 24;
  std::size_t buffer_subarrays_per_bank = 8;
  // Crossbar arrays per morphable subarray.
  std::size_t arrays_per_subarray = 8;
  std::size_t array_rows = 128;
  std::size_t array_cols = 128;
  std::size_t subarray_bytes = 64 * 1024;  // as memory

  ComponentCosts costs;
  device::CellParams cell;
  // Inter-bank mesh interconnect (hop costs, link bandwidth, contention /
  // SMART-bypass knobs). Defaults keep the closed-form uncontended model.
  NocParams noc;

  std::size_t total_compute_arrays() const {
    return banks * morphable_subarrays_per_bank * arrays_per_subarray;
  }
};

// Named configurations used by the benches.
ChipConfig pipelayer_chip();  // PipeLayer-scale part (Table I row 1)
ChipConfig regan_chip();      // ReGAN-scale part (Table I row 2)

}  // namespace reramdl::arch
