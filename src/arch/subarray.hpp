// Morphable / memory / buffer subarrays (PipeLayer Fig. 6, ReGAN Fig. 10).
//
// A morphable (ReGAN: "full function") subarray behaves as a regular ReRAM
// memory subarray in memory mode and performs matrix-vector multiplication
// in compute mode. Memory subarrays buffer intermediate results between
// layers; buffer subarrays have private data ports so their traffic does not
// consume memory bandwidth.
#pragma once

#include <cstddef>

#include "arch/energy.hpp"
#include "arch/params.hpp"

namespace reramdl::arch {

enum class SubarrayKind { kMorphable, kMemory, kBuffer };
enum class SubarrayMode { kMemory, kCompute };

const char* to_string(SubarrayKind kind);

class Subarray {
 public:
  Subarray(SubarrayKind kind, const ChipConfig* chip);

  SubarrayKind kind() const { return kind_; }
  SubarrayMode mode() const { return mode_; }

  // Reconfigure a morphable subarray; illegal on memory/buffer subarrays.
  void morph(SubarrayMode mode, EnergyMeter& meter);

  // Memory-mode access of `bytes`; returns latency in ns.
  double access(std::size_t bytes, EnergyMeter& meter);

  // One MVM activation across `arrays` of this subarray's crossbars;
  // requires compute mode. Returns latency in ns.
  double compute(std::size_t arrays, EnergyMeter& meter);

  // Weight update of `cells` ReRAM cells; requires compute mode.
  double update(std::size_t cells, EnergyMeter& meter);

  std::size_t compute_ops() const { return compute_ops_; }
  std::size_t bytes_accessed() const { return bytes_accessed_; }

 private:
  SubarrayKind kind_;
  SubarrayMode mode_;
  const ChipConfig* chip_;
  std::size_t compute_ops_ = 0;
  std::size_t bytes_accessed_ = 0;
};

}  // namespace reramdl::arch
