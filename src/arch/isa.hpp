// Bank instruction set. "Each memory bank contains a bank control unit,
// which decodes the incoming instructions and determines the operation mode
// of morphable subarrays" (paper Sec. III-A-3e). Instructions are 32-bit:
//
//   [31:28] opcode  [27:22] bank  [21:16] subarray  [15:0] immediate
//
// The immediate's meaning is per-opcode: mode for CFG, byte count for
// LOAD/STORE, array count for COMPUTE, cell count (in units of 64) for
// UPDATE.
#pragma once

#include <cstdint>
#include <string>

namespace reramdl::arch {

enum class Opcode : std::uint8_t {
  kNop = 0,
  kCfgMode = 1,   // imm: 0 = memory, 1 = compute
  kLoad = 2,      // memory/buffer subarray -> bank bus
  kStore = 3,     // bank bus -> memory/buffer subarray
  kCompute = 4,   // MVM on a morphable subarray; imm = arrays
  kUpdate = 5,    // weight update; imm = cells / 64
  kMove = 6,      // memory subarray -> morphable subarray input latch
  kSync = 7,      // pipeline barrier (batch boundary)
};

const char* to_string(Opcode op);

struct Instruction {
  Opcode op = Opcode::kNop;
  std::uint8_t bank = 0;      // 6 bits
  std::uint8_t subarray = 0;  // 6 bits
  std::uint16_t imm = 0;

  std::string to_string() const;
};

std::uint32_t encode(const Instruction& inst);
Instruction decode(std::uint32_t word);

}  // namespace reramdl::arch
