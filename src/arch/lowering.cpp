#include "arch/lowering.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace reramdl::arch {
namespace {

Instruction make(Opcode op, std::size_t bank, std::size_t subarray,
                 std::size_t imm) {
  Instruction inst;
  inst.op = op;
  inst.bank = static_cast<std::uint8_t>(bank);
  inst.subarray = static_cast<std::uint8_t>(subarray);
  inst.imm = static_cast<std::uint16_t>(std::min<std::size_t>(imm, 0xFFFF));
  return inst;
}

// Morphable subarray a layer computes on, assigned round-robin.
std::size_t layer_subarray(std::size_t layer_index, const ChipConfig& chip) {
  return layer_index % chip.morphable_subarrays_per_bank;
}

// Memory subarray buffering a layer's activations.
std::size_t layer_buffer(std::size_t layer_index, const ChipConfig& chip) {
  return layer_index % chip.memory_subarrays_per_bank;
}

void emit_layer_pass(const mapping::LayerMapping& layer, std::size_t index,
                     const ChipConfig& chip, std::size_t bank_id,
                     std::vector<std::uint32_t>& out) {
  const std::size_t sub = layer_subarray(index, chip);
  const std::size_t buf = layer_buffer(index, chip);
  const std::size_t arrays_per_step =
      std::min<std::size_t>(layer.arrays(), chip.arrays_per_subarray);
  for (std::size_t step = 0; step < layer.steps_per_sample(); ++step) {
    // Stage the step's input vectors (4 bytes per wordline).
    out.push_back(encode(
        make(Opcode::kMove, bank_id, buf, 4 * layer.spec.matrix_rows())));
    out.push_back(
        encode(make(Opcode::kCompute, bank_id, sub, arrays_per_step)));
  }
  // Spill the layer's outputs to its memory subarray.
  out.push_back(encode(
      make(Opcode::kStore, bank_id, buf, 4 * layer.spec.matrix_cols())));
  out.push_back(encode(make(Opcode::kSync, bank_id, 0, 0)));
}

}  // namespace

std::vector<std::uint32_t> lower_forward_pass(
    const mapping::NetworkMapping& mapping, const ChipConfig& chip,
    std::size_t bank_id) {
  RERAMDL_CHECK(!mapping.layers.empty());
  RERAMDL_CHECK_LT(bank_id, chip.banks);
  std::vector<std::uint32_t> out;
  // Morph each layer's subarray into compute mode once.
  for (std::size_t i = 0; i < mapping.layers.size(); ++i)
    out.push_back(
        encode(make(Opcode::kCfgMode, bank_id, layer_subarray(i, chip), 1)));
  for (std::size_t i = 0; i < mapping.layers.size(); ++i)
    emit_layer_pass(mapping.layers[i], i, chip, bank_id, out);
  return out;
}

std::vector<std::uint32_t> lower_training_batch(
    const mapping::NetworkMapping& mapping, const ChipConfig& chip,
    std::size_t bank_id, std::size_t batch) {
  RERAMDL_CHECK_GT(batch, 0u);
  std::vector<std::uint32_t> out;
  for (std::size_t i = 0; i < mapping.layers.size(); ++i)
    out.push_back(
        encode(make(Opcode::kCfgMode, bank_id, layer_subarray(i, chip), 1)));
  // Forward + error-backward + weight-gradient: 3 passes per input.
  for (std::size_t b = 0; b < batch; ++b)
    for (int pass = 0; pass < 3; ++pass)
      for (std::size_t i = 0; i < mapping.layers.size(); ++i)
        emit_layer_pass(mapping.layers[i], i, chip, bank_id, out);
  // One update cycle at batch end reprograms each layer's cells.
  for (std::size_t i = 0; i < mapping.layers.size(); ++i) {
    const std::size_t cells64 = (mapping.layers[i].weight_cells() + 63) / 64;
    out.push_back(encode(make(Opcode::kUpdate, bank_id,
                              layer_subarray(i, chip), cells64)));
  }
  out.push_back(encode(make(Opcode::kSync, bank_id, 0, 0)));
  return out;
}

LoweringStats analyze(const std::vector<std::uint32_t>& program) {
  LoweringStats s;
  for (const auto word : program) {
    switch (decode(word).op) {
      case Opcode::kCfgMode: ++s.configs; break;
      case Opcode::kMove: ++s.moves; break;
      case Opcode::kCompute: ++s.computes; break;
      case Opcode::kStore: ++s.stores; break;
      case Opcode::kUpdate: ++s.updates; break;
      case Opcode::kSync: ++s.syncs; break;
      default: break;
    }
  }
  return s;
}

}  // namespace reramdl::arch
