// A memory bank: morphable + memory + buffer subarrays under one bank
// control unit (PipeLayer Fig. 6 / ReGAN Fig. 10 region split).
#pragma once

#include <vector>

#include "arch/subarray.hpp"

namespace reramdl::arch {

class Bank {
 public:
  Bank(const ChipConfig& chip, std::size_t bank_id);

  std::size_t id() const { return id_; }
  std::size_t num_morphable() const { return morphable_.size(); }
  std::size_t num_memory() const { return memory_.size(); }
  std::size_t num_buffer() const { return buffer_.size(); }

  Subarray& morphable(std::size_t i);
  Subarray& memory(std::size_t i);
  Subarray& buffer(std::size_t i);

  // Morph the first `count` morphable subarrays into compute mode (layer
  // allocation); the rest stay memory. Returns arrays made available.
  std::size_t allocate_compute(std::size_t count, EnergyMeter& meter);
  std::size_t compute_subarrays() const { return compute_allocated_; }

  const ChipConfig& chip() const { return *chip_; }

 private:
  const ChipConfig* chip_;
  std::size_t id_;
  std::vector<Subarray> morphable_, memory_, buffer_;
  std::size_t compute_allocated_ = 0;
};

}  // namespace reramdl::arch
