#include "arch/controller.hpp"

#include "common/check.hpp"

namespace reramdl::arch {

BankController::BankController(Bank& bank) : bank_(bank) {}

namespace {

// Delta between two accumulation snapshots of the same run; energy diffs
// component-wise (only components that moved are booked).
ExecutionReport report_delta(const ExecutionReport& now,
                             const ExecutionReport& mark) {
  ExecutionReport d;
  d.instructions = now.instructions - mark.instructions;
  d.busy_ns = now.busy_ns - mark.busy_ns;
  d.sync_points = now.sync_points - mark.sync_points;
  for (const auto& [component, pj] : now.energy.breakdown()) {
    const double moved = pj - mark.energy.component_pj(component);
    if (moved != 0.0) d.energy.add(component, moved);
  }
  return d;
}

}  // namespace

ExecutionReport BankController::run(const std::vector<std::uint32_t>& program,
                                    std::vector<ExecutionReport>* segments) {
  ExecutionReport report;
  ExecutionReport mark;  // snapshot at the last segment boundary
  for (const std::uint32_t word : program) {
    const Instruction inst = decode(word);
    report.busy_ns += execute(inst, report);
    ++report.instructions;
    if (segments != nullptr && inst.op == Opcode::kSync) {
      segments->push_back(report_delta(report, mark));
      mark = report;
    }
  }
  if (segments != nullptr && report.instructions > mark.instructions)
    segments->push_back(report_delta(report, mark));
  return report;
}

double BankController::execute(const Instruction& inst, ExecutionReport& report) {
  RERAMDL_CHECK_EQ(static_cast<std::size_t>(inst.bank), bank_.id());
  switch (inst.op) {
    case Opcode::kNop:
      return 0.0;
    case Opcode::kCfgMode: {
      bank_.morphable(inst.subarray)
          .morph(inst.imm != 0 ? SubarrayMode::kCompute : SubarrayMode::kMemory,
                 report.energy);
      return bank_.chip().costs.memory_access_latency_ns;
    }
    case Opcode::kLoad:
    case Opcode::kStore:
      return bank_.memory(inst.subarray).access(inst.imm, report.energy);
    case Opcode::kCompute:
      return bank_.morphable(inst.subarray).compute(inst.imm, report.energy);
    case Opcode::kUpdate:
      return bank_.morphable(inst.subarray)
          .update(static_cast<std::size_t>(inst.imm) * 64, report.energy);
    case Opcode::kMove: {
      // Memory subarray read + morphable-side latch write.
      const double t = bank_.memory(inst.subarray).access(inst.imm, report.energy);
      return t + bank_.chip().costs.buffer_access_latency_ns;
    }
    case Opcode::kSync:
      ++report.sync_points;
      return 0.0;
  }
  return 0.0;
}

}  // namespace reramdl::arch
