#include "arch/subarray.hpp"

#include "common/check.hpp"

namespace reramdl::arch {

const char* to_string(SubarrayKind kind) {
  switch (kind) {
    case SubarrayKind::kMorphable: return "morphable";
    case SubarrayKind::kMemory: return "memory";
    case SubarrayKind::kBuffer: return "buffer";
  }
  return "?";
}

Subarray::Subarray(SubarrayKind kind, const ChipConfig* chip)
    : kind_(kind), mode_(SubarrayMode::kMemory), chip_(chip) {
  RERAMDL_CHECK(chip != nullptr);
}

void Subarray::morph(SubarrayMode mode, EnergyMeter& meter) {
  RERAMDL_CHECK(kind_ == SubarrayKind::kMorphable);
  if (mode == mode_) return;
  mode_ = mode;
  // Reconfiguration drives the peripheral mux tree once.
  meter.add("morph", chip_->costs.activation_energy_pj * 16.0);
}

double Subarray::access(std::size_t bytes, EnergyMeter& meter) {
  RERAMDL_CHECK(kind_ != SubarrayKind::kMorphable ||
                mode_ == SubarrayMode::kMemory);
  bytes_accessed_ += bytes;
  const auto& c = chip_->costs;
  if (kind_ == SubarrayKind::kBuffer) {
    meter.add("buffer", c.buffer_access_energy_pj_per_byte *
                            static_cast<double>(bytes));
    return c.buffer_access_latency_ns;
  }
  meter.add("memory", c.memory_access_energy_pj_per_byte *
                          static_cast<double>(bytes));
  return c.memory_access_latency_ns;
}

double Subarray::compute(std::size_t arrays, EnergyMeter& meter) {
  RERAMDL_CHECK(kind_ == SubarrayKind::kMorphable);
  RERAMDL_CHECK(mode_ == SubarrayMode::kCompute);
  RERAMDL_CHECK_GT(arrays, 0u);
  RERAMDL_CHECK_LE(arrays, chip_->arrays_per_subarray);
  compute_ops_ += arrays;
  meter.add("compute", chip_->costs.array_compute_energy_pj *
                           static_cast<double>(arrays));
  return chip_->costs.array_compute_latency_ns;
}

double Subarray::update(std::size_t cells, EnergyMeter& meter) {
  RERAMDL_CHECK(kind_ == SubarrayKind::kMorphable);
  RERAMDL_CHECK(mode_ == SubarrayMode::kCompute);
  const double per_cell =
      chip_->cell.program_energy_pj() + chip_->costs.update_driver_energy_pj;
  meter.add("update", per_cell * static_cast<double>(cells));
  // Rows program in parallel across bitlines; latency covers one row window.
  return chip_->cell.program_latency_ns();
}

}  // namespace reramdl::arch
