#include "arch/isa.hpp"

#include <sstream>

#include "common/check.hpp"

namespace reramdl::arch {

const char* to_string(Opcode op) {
  switch (op) {
    case Opcode::kNop: return "NOP";
    case Opcode::kCfgMode: return "CFG";
    case Opcode::kLoad: return "LOAD";
    case Opcode::kStore: return "STORE";
    case Opcode::kCompute: return "COMPUTE";
    case Opcode::kUpdate: return "UPDATE";
    case Opcode::kMove: return "MOVE";
    case Opcode::kSync: return "SYNC";
  }
  return "?";
}

std::string Instruction::to_string() const {
  std::ostringstream os;
  os << arch::to_string(op) << " b" << static_cast<int>(bank) << " s"
     << static_cast<int>(subarray) << " #" << imm;
  return os.str();
}

std::uint32_t encode(const Instruction& inst) {
  RERAMDL_CHECK_LT(static_cast<unsigned>(inst.op), 16u);
  RERAMDL_CHECK_LT(inst.bank, 64u);
  RERAMDL_CHECK_LT(inst.subarray, 64u);
  return (static_cast<std::uint32_t>(inst.op) << 28) |
         (static_cast<std::uint32_t>(inst.bank) << 22) |
         (static_cast<std::uint32_t>(inst.subarray) << 16) |
         static_cast<std::uint32_t>(inst.imm);
}

Instruction decode(std::uint32_t word) {
  Instruction inst;
  const auto op = (word >> 28) & 0xF;
  RERAMDL_CHECK_LE(op, static_cast<std::uint32_t>(Opcode::kSync));
  inst.op = static_cast<Opcode>(op);
  inst.bank = static_cast<std::uint8_t>((word >> 22) & 0x3F);
  inst.subarray = static_cast<std::uint8_t>((word >> 16) & 0x3F);
  inst.imm = static_cast<std::uint16_t>(word & 0xFFFF);
  return inst;
}

}  // namespace reramdl::arch
