#include "arch/update_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace reramdl::arch {

UpdateModel::UpdateModel(const ChipConfig& chip,
                         const mapping::NetworkMapping& mapping)
    : chip_(&chip) {
  RERAMDL_CHECK(!mapping.layers.empty());
  rows_ = 0;
  for (const auto& l : mapping.layers)
    rows_ = std::max(rows_, std::min(l.spec.matrix_rows(), chip.array_rows));
  RERAMDL_CHECK_GT(rows_, 0u);
}

std::size_t UpdateModel::rows_to_program() const { return rows_; }

UpdateTiming UpdateModel::full_reprogram(double pipeline_cycle_ns) const {
  RERAMDL_CHECK_GT(pipeline_cycle_ns, 0.0);
  UpdateTiming t;
  t.pipeline_cycle_ns = pipeline_cycle_ns;
  t.update_ns =
      static_cast<double>(rows_) * chip_->cell.program_latency_ns();
  return t;
}

UpdateTiming UpdateModel::delta_update(double pipeline_cycle_ns,
                                       double changed_fraction,
                                       std::size_t pulses) const {
  RERAMDL_CHECK_GT(pipeline_cycle_ns, 0.0);
  RERAMDL_CHECK_GE(changed_fraction, 0.0);
  RERAMDL_CHECK_LE(changed_fraction, 1.0);
  RERAMDL_CHECK_GE(pulses, 1u);
  UpdateTiming t;
  t.pipeline_cycle_ns = pipeline_cycle_ns;
  const double rows = std::ceil(static_cast<double>(rows_) * changed_fraction);
  t.update_ns = rows * chip_->cell.write_pulse_ns * static_cast<double>(pulses);
  return t;
}

}  // namespace reramdl::arch
