// Event-driven pipeline simulator.
//
// The paper's cycle counts (Figs. 5, 8, 9) are closed forms; this simulator
// schedules the actual dependency graphs — per-input stage chains, stage
// resource conflicts, batch barriers, duplicated-D spatial parallelism, and
// the forked backward branches of computation sharing — and the property
// tests assert the simulated totals equal the closed forms cycle-for-cycle.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pipeline/analytic.hpp"

namespace reramdl::pipeline {

struct TraceEntry {
  std::size_t stage = 0;
  std::uint64_t start = 0;  // cycle the stage processes this task
  std::string item;
};

// Greedy list scheduler: each stage processes at most one task per cycle;
// tasks issue in submission order.
class PipelineSim {
 public:
  std::size_t add_stage(std::string name);
  // Schedule a 1-cycle task on `stage`, not before `ready`; returns its
  // completion cycle (start + 1).
  std::uint64_t add_task(std::size_t stage, std::uint64_t ready,
                         const std::string& item = {});

  // Run an in-order chain of stages for one item: each step waits for the
  // previous step's completion. Returns completion of the last step.
  std::uint64_t add_chain(const std::vector<std::size_t>& stages,
                          std::uint64_t ready, const std::string& item = {});

  const std::vector<std::string>& stage_names() const { return stage_names_; }
  const std::vector<TraceEntry>& trace() const { return trace_; }
  void enable_trace(bool on) { trace_enabled_ = on; }

  // Render the trace as a text Gantt chart (stages x cycles), using the
  // first character of each item label.
  std::string gantt() const;

  // Replay the recorded trace into the obs span tracer as a virtual process
  // named `label` (one track per stage, 1 cycle == 1 us), so pipeline Gantt
  // charts open in Perfetto next to the wall-clock spans. No-op unless
  // RERAMDL_TRACE is active and the trace is non-empty; the sim_* drivers
  // call this automatically when tracing is on.
  void emit_obs_spans(const std::string& label) const;

 private:
  std::vector<std::string> stage_names_;
  std::vector<std::uint64_t> next_free_;
  std::vector<TraceEntry> trace_;
  bool trace_enabled_ = false;
};

// ---- PipeLayer schedules ---------------------------------------------------

struct SimResult {
  std::uint64_t cycles = 0;
  std::string gantt;  // filled when trace requested
};

SimResult sim_pipelayer_training(std::uint64_t n, std::uint64_t l,
                                 std::uint64_t b, bool want_trace = false);
SimResult sim_pipelayer_inference(std::uint64_t n, std::uint64_t l,
                                  bool want_trace = false);

// ---- ReGAN schedules -------------------------------------------------------

struct ReGanOptions {
  bool spatial_parallelism = false;  // duplicate D: ① overlaps ②
  bool computation_sharing = false;  // ② and ③ share the forward pass
};

// One training batch (phases ①②③ + updates). Matches the corresponding
// regan_batch_cycles_* closed form.
SimResult sim_regan_batch(const GanShape& shape, const ReGanOptions& opts,
                          bool want_trace = false);

// n/b consecutive batches (next batch waits for both weight updates).
SimResult sim_regan_training(std::uint64_t n, const GanShape& shape,
                             const ReGanOptions& opts);

}  // namespace reramdl::pipeline
