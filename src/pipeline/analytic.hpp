// Closed-form cycle counts from the paper.
//
// PipeLayer (Sec. III-A-2): an L-layer network trains on batches of B. The
// forward pass of one input occupies L pipeline cycles, the backward pass
// L+1 (loss evaluation plus L layers), and the batch's accumulated weight
// update takes one cycle. Pipelined, a new input enters every cycle within a
// batch; batches do not overlap.
//
// ReGAN (Sec. III-B-2/3): D has L_D layers, G has L_G. One batch trains in
// three phases: ① D on real samples, ② D on generated samples (G
// concatenated in front of D, G not updated), ③ G through the full G+D
// stack with inaccurate labels. Spatial parallelism (SP) duplicates D so ①
// and ② overlap; computation sharing (CS) lets ② and ③ share the forward
// pass and fork at the loss.
//
// All functions count pipeline cycles (one cycle = one layer-stage step).
#pragma once

#include <cstdint>

namespace reramdl::pipeline {

// ---- PipeLayer -----------------------------------------------------------

// Pipelined training of n inputs: (n/b) * (2l + b + 1). n must be a
// multiple of b.
std::uint64_t pipelayer_train_cycles_pipelined(std::uint64_t n, std::uint64_t l,
                                               std::uint64_t b);

// Non-pipelined training: (2l + 1) * n + n / b (each input's forward +
// backward serially, plus one update cycle per batch).
std::uint64_t pipelayer_train_cycles_sequential(std::uint64_t n, std::uint64_t l,
                                                std::uint64_t b);

// Pipelined inference of n inputs through l layers: n + l - 1.
std::uint64_t pipelayer_infer_cycles_pipelined(std::uint64_t n, std::uint64_t l);

// Non-pipelined inference: n * l.
std::uint64_t pipelayer_infer_cycles_sequential(std::uint64_t n, std::uint64_t l);

// ---- ReGAN ---------------------------------------------------------------

struct GanShape {
  std::uint64_t l_d = 0;  // discriminator layers
  std::uint64_t l_g = 0;  // generator layers
  std::uint64_t b = 0;    // batch size
};

// Phase ①: 2*l_d + 1 + (b - 1) cycles.
std::uint64_t regan_phase1_cycles(const GanShape& s);
// Phase ②: l_g + 2*l_d + 1 + (b - 1) cycles.
std::uint64_t regan_phase2_cycles(const GanShape& s);
// D training (① + ② + one update cycle).
std::uint64_t regan_train_d_cycles(const GanShape& s);
// G training (③ incl. its update): 2*l_g + 2*l_d + b + 1.
std::uint64_t regan_train_g_cycles(const GanShape& s);

// Full batch, pipelined, no SP/CS: train-D + train-G.
std::uint64_t regan_batch_cycles_pipelined(const GanShape& s);
// Full batch without the training pipeline: (4*l_d + l_g + 2)*b for D plus
// (2*l_d + 2*l_g + 1)*b for G.
std::uint64_t regan_batch_cycles_unpipelined(const GanShape& s);
// SP only: ① hides behind ②; D phase = max(①,②) + 1, then G.
std::uint64_t regan_batch_cycles_sp(const GanShape& s);
// CS only: ① first, then the shared ②/③ pass (D updates at T11 inside it).
std::uint64_t regan_batch_cycles_cs(const GanShape& s);
// SP + CS: ① overlaps the shared pass; total = 2*l_g + 2*l_d + b + 1.
std::uint64_t regan_batch_cycles_sp_cs(const GanShape& s);

// ---- Utilization -----------------------------------------------------------

// Fraction of pipeline-stage slots doing useful work during pipelined
// training: each input occupies 2l+1 stage-cycles of work; the schedule
// spans (n/b)(2l+b+1) cycles across 2l+1 stages (plus the update unit,
// excluded as bookkeeping).
double pipelayer_training_utilization(std::uint64_t n, std::uint64_t l,
                                      std::uint64_t b);

// Utilization of the sequential schedule, for the ablation contrast.
double pipelayer_sequential_utilization(std::uint64_t n, std::uint64_t l,
                                        std::uint64_t b);

}  // namespace reramdl::pipeline
