#include "pipeline/analytic.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace reramdl::pipeline {

std::uint64_t pipelayer_train_cycles_pipelined(std::uint64_t n, std::uint64_t l,
                                               std::uint64_t b) {
  RERAMDL_CHECK_GT(n, 0u);
  RERAMDL_CHECK_GT(l, 0u);
  RERAMDL_CHECK_GT(b, 0u);
  RERAMDL_CHECK_EQ(n % b, 0u);
  return (n / b) * (2 * l + b + 1);
}

std::uint64_t pipelayer_train_cycles_sequential(std::uint64_t n, std::uint64_t l,
                                                std::uint64_t b) {
  RERAMDL_CHECK_GT(n, 0u);
  RERAMDL_CHECK_GT(l, 0u);
  RERAMDL_CHECK_GT(b, 0u);
  RERAMDL_CHECK_EQ(n % b, 0u);
  return (2 * l + 1) * n + n / b;
}

std::uint64_t pipelayer_infer_cycles_pipelined(std::uint64_t n, std::uint64_t l) {
  RERAMDL_CHECK_GT(n, 0u);
  RERAMDL_CHECK_GT(l, 0u);
  return n + l - 1;
}

std::uint64_t pipelayer_infer_cycles_sequential(std::uint64_t n, std::uint64_t l) {
  RERAMDL_CHECK_GT(n, 0u);
  RERAMDL_CHECK_GT(l, 0u);
  return n * l;
}

namespace {
void check_shape(const GanShape& s) {
  RERAMDL_CHECK_GT(s.l_d, 0u);
  RERAMDL_CHECK_GT(s.l_g, 0u);
  RERAMDL_CHECK_GT(s.b, 0u);
}
}  // namespace

std::uint64_t regan_phase1_cycles(const GanShape& s) {
  check_shape(s);
  return 2 * s.l_d + 1 + (s.b - 1);
}

std::uint64_t regan_phase2_cycles(const GanShape& s) {
  check_shape(s);
  return s.l_g + 2 * s.l_d + 1 + (s.b - 1);
}

std::uint64_t regan_train_d_cycles(const GanShape& s) {
  return regan_phase1_cycles(s) + regan_phase2_cycles(s) + 1;
}

std::uint64_t regan_train_g_cycles(const GanShape& s) {
  check_shape(s);
  return 2 * s.l_g + 2 * s.l_d + s.b + 1;
}

std::uint64_t regan_batch_cycles_pipelined(const GanShape& s) {
  return regan_train_d_cycles(s) + regan_train_g_cycles(s);
}

std::uint64_t regan_batch_cycles_unpipelined(const GanShape& s) {
  check_shape(s);
  return (4 * s.l_d + s.l_g + 2) * s.b + (2 * s.l_d + 2 * s.l_g + 1) * s.b;
}

std::uint64_t regan_batch_cycles_sp(const GanShape& s) {
  // ① and ② run on duplicated D; ② is the longer phase, then one D-update
  // cycle, then G.
  const std::uint64_t d_phase =
      std::max(regan_phase1_cycles(s), regan_phase2_cycles(s)) + 1;
  return d_phase + regan_train_g_cycles(s);
}

std::uint64_t regan_batch_cycles_cs(const GanShape& s) {
  // ① drains first; the shared ②/③ pass then serves both losses, updating D
  // at T11 and G at T14 (both inside the G-training window).
  return regan_phase1_cycles(s) + regan_train_g_cycles(s);
}

std::uint64_t regan_batch_cycles_sp_cs(const GanShape& s) {
  // ① (on the duplicated D) fully overlaps the shared pass, which is at
  // least as long because l_g >= 1 implies ② depth > ① depth.
  return regan_train_g_cycles(s);
}

double pipelayer_training_utilization(std::uint64_t n, std::uint64_t l,
                                      std::uint64_t b) {
  const double work = static_cast<double>(n) * static_cast<double>(2 * l + 1);
  const double slots =
      static_cast<double>(pipelayer_train_cycles_pipelined(n, l, b)) *
      static_cast<double>(2 * l + 1);
  return work / slots;
}

double pipelayer_sequential_utilization(std::uint64_t n, std::uint64_t l,
                                        std::uint64_t b) {
  const double work = static_cast<double>(n) * static_cast<double>(2 * l + 1);
  const double slots =
      static_cast<double>(pipelayer_train_cycles_sequential(n, l, b)) *
      static_cast<double>(2 * l + 1);
  return work / slots;
}

}  // namespace reramdl::pipeline
