#include "pipeline/sim.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"
#include "obs/obs.hpp"

namespace reramdl::pipeline {

std::size_t PipelineSim::add_stage(std::string name) {
  stage_names_.push_back(std::move(name));
  next_free_.push_back(0);
  return stage_names_.size() - 1;
}

std::uint64_t PipelineSim::add_task(std::size_t stage, std::uint64_t ready,
                                    const std::string& item) {
  RERAMDL_CHECK_LT(stage, next_free_.size());
  const std::uint64_t start = std::max(ready, next_free_[stage]);
  next_free_[stage] = start + 1;
  if (trace_enabled_) trace_.push_back({stage, start, item});
  return start + 1;
}

std::uint64_t PipelineSim::add_chain(const std::vector<std::size_t>& stages,
                                     std::uint64_t ready,
                                     const std::string& item) {
  std::uint64_t t = ready;
  for (const std::size_t s : stages) t = add_task(s, t, item);
  return t;
}

std::string PipelineSim::gantt() const {
  std::uint64_t horizon = 0;
  for (const auto& e : trace_) horizon = std::max(horizon, e.start + 1);
  std::size_t name_w = 0;
  for (const auto& n : stage_names_) name_w = std::max(name_w, n.size());

  std::ostringstream os;
  for (std::size_t s = 0; s < stage_names_.size(); ++s) {
    std::string row(horizon, '.');
    for (const auto& e : trace_)
      if (e.stage == s)
        row[e.start] = e.item.empty() ? '#' : e.item.front();
    os << stage_names_[s] << std::string(name_w - stage_names_[s].size(), ' ')
       << " |" << row << "|\n";
  }
  return os.str();
}

void PipelineSim::emit_obs_spans(const std::string& label) const {
  if (!obs::trace_enabled() || trace_.empty()) return;
  const int pid = obs::alloc_virtual_pid(label);
  for (std::size_t s = 0; s < stage_names_.size(); ++s)
    obs::name_thread(pid, static_cast<int>(s), stage_names_[s]);
  for (const TraceEntry& e : trace_)
    obs::emit_complete(e.item.empty() ? stage_names_[e.stage] : e.item,
                       "pipeline", static_cast<double>(e.start), 1.0,
                       static_cast<int>(e.stage), pid);
}

// ---- PipeLayer --------------------------------------------------------------

SimResult sim_pipelayer_training(std::uint64_t n, std::uint64_t l,
                                 std::uint64_t b, bool want_trace) {
  RERAMDL_CHECK_GT(l, 0u);
  RERAMDL_CHECK_GT(b, 0u);
  RERAMDL_CHECK_GT(n, 0u);
  RERAMDL_CHECK_EQ(n % b, 0u);

  const bool obs_trace = obs::trace_enabled();
  PipelineSim sim;
  sim.enable_trace(want_trace || obs_trace);
  std::vector<std::size_t> chain;
  // Forward stages F1..FL, then backward stages D0 (loss/output error) .. DL.
  for (std::uint64_t i = 1; i <= l; ++i)
    chain.push_back(sim.add_stage("F" + std::to_string(i)));
  for (std::uint64_t i = 0; i <= l; ++i)
    chain.push_back(sim.add_stage("D" + std::to_string(i)));
  const std::size_t update = sim.add_stage("U");

  std::uint64_t batch_start = 0;
  std::uint64_t total = 0;
  for (std::uint64_t first = 0; first < n; first += b) {
    std::uint64_t last_done = 0;
    for (std::uint64_t i = 0; i < b; ++i) {
      const std::string item(1, static_cast<char>('0' + (i % 10)));
      last_done = std::max(last_done, sim.add_chain(chain, batch_start, item));
    }
    total = sim.add_task(update, last_done, "U");
    batch_start = total;  // next batch enters after the weight update
  }
  if (obs_trace) sim.emit_obs_spans("pipelayer_training");
  SimResult r;
  r.cycles = total;
  if (want_trace) r.gantt = sim.gantt();
  return r;
}

SimResult sim_pipelayer_inference(std::uint64_t n, std::uint64_t l,
                                  bool want_trace) {
  RERAMDL_CHECK_GT(l, 0u);
  RERAMDL_CHECK_GT(n, 0u);
  const bool obs_trace = obs::trace_enabled();
  PipelineSim sim;
  sim.enable_trace(want_trace || obs_trace);
  std::vector<std::size_t> chain;
  for (std::uint64_t i = 1; i <= l; ++i)
    chain.push_back(sim.add_stage("F" + std::to_string(i)));
  std::uint64_t total = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::string item(1, static_cast<char>('0' + (i % 10)));
    total = std::max(total, sim.add_chain(chain, 0, item));
  }
  if (obs_trace) sim.emit_obs_spans("pipelayer_inference");
  SimResult r;
  r.cycles = total;
  if (want_trace) r.gantt = sim.gantt();
  return r;
}

// ---- ReGAN ------------------------------------------------------------------

namespace {

struct ReGanStages {
  std::vector<std::size_t> g_fwd, g_bwd;
  std::vector<std::size_t> d_fwd, d_bwd;      // primary D resources
  std::size_t d_loss = 0;
  std::vector<std::size_t> d_fwd2, d_bwd2;    // duplicated D (SP)
  std::size_t d_loss2 = 0;
  std::vector<std::size_t> d_bwd_cs;          // forked backward branch (CS)
  std::size_t d_loss_cs = 0;
  std::size_t upd_d = 0, upd_g = 0;
};

ReGanStages build_stages(PipelineSim& sim, const GanShape& s,
                         const ReGanOptions& opts) {
  ReGanStages st;
  for (std::uint64_t i = 1; i <= s.l_g; ++i)
    st.g_fwd.push_back(sim.add_stage("GF" + std::to_string(i)));
  for (std::uint64_t i = 1; i <= s.l_d; ++i)
    st.d_fwd.push_back(sim.add_stage("DF" + std::to_string(i)));
  st.d_loss = sim.add_stage("DL");
  for (std::uint64_t i = 1; i <= s.l_d; ++i)
    st.d_bwd.push_back(sim.add_stage("DB" + std::to_string(i)));
  for (std::uint64_t i = 1; i <= s.l_g; ++i)
    st.g_bwd.push_back(sim.add_stage("GB" + std::to_string(i)));
  if (opts.spatial_parallelism) {
    for (std::uint64_t i = 1; i <= s.l_d; ++i)
      st.d_fwd2.push_back(sim.add_stage("df" + std::to_string(i)));
    st.d_loss2 = sim.add_stage("dl");
    for (std::uint64_t i = 1; i <= s.l_d; ++i)
      st.d_bwd2.push_back(sim.add_stage("db" + std::to_string(i)));
  }
  if (opts.computation_sharing) {
    st.d_loss_cs = sim.add_stage("CL");
    for (std::uint64_t i = 1; i <= s.l_d; ++i)
      st.d_bwd_cs.push_back(sim.add_stage("CB" + std::to_string(i)));
  }
  st.upd_d = sim.add_stage("UD");
  st.upd_g = sim.add_stage("UG");
  return st;
}

std::vector<std::size_t> concat(std::initializer_list<std::vector<std::size_t>> parts,
                                std::initializer_list<std::size_t> singles = {}) {
  std::vector<std::size_t> out;
  for (const auto& p : parts) out.insert(out.end(), p.begin(), p.end());
  for (const auto s : singles) out.push_back(s);
  return out;
}

}  // namespace

SimResult sim_regan_batch(const GanShape& s, const ReGanOptions& opts,
                          bool want_trace) {
  RERAMDL_CHECK_GT(s.l_d, 0u);
  RERAMDL_CHECK_GT(s.l_g, 0u);
  RERAMDL_CHECK_GT(s.b, 0u);

  const bool obs_trace = obs::trace_enabled();
  PipelineSim sim;
  sim.enable_trace(want_trace || obs_trace);
  const ReGanStages st = build_stages(sim, s, opts);

  // Phase ①: real samples through D (duplicated D when SP is on).
  std::vector<std::size_t> chain1 =
      opts.spatial_parallelism
          ? concat({st.d_fwd2}, {st.d_loss2})
          : concat({st.d_fwd}, {st.d_loss});
  {
    const auto& bwd = opts.spatial_parallelism ? st.d_bwd2 : st.d_bwd;
    chain1.insert(chain1.end(), bwd.begin(), bwd.end());
  }

  std::uint64_t phase1_done = 0;
  for (std::uint64_t i = 0; i < s.b; ++i)
    phase1_done = std::max(phase1_done, sim.add_chain(chain1, 0, "r"));

  // Phase ② (and, under CS, the shared ③): generated samples through G + D.
  // Without SP, ② must wait for ① to drain from the (shared) D pipeline.
  const std::uint64_t phase2_start =
      opts.spatial_parallelism ? 0 : phase1_done;

  std::uint64_t phase2_done = 0;   // branch feeding the D update
  std::uint64_t phase3_done = 0;   // branch feeding the G update (CS only)
  const std::vector<std::size_t> shared_fwd = concat({st.g_fwd, st.d_fwd});
  for (std::uint64_t i = 0; i < s.b; ++i) {
    const std::uint64_t fwd_done = sim.add_chain(shared_fwd, phase2_start, "f");
    // Loss + backward for the D-update branch (label '0').
    std::uint64_t t = sim.add_task(st.d_loss, fwd_done, "f");
    for (const auto stg : st.d_bwd) t = sim.add_task(stg, t, "f");
    phase2_done = std::max(phase2_done, t);
    if (opts.computation_sharing) {
      // Forked branch with the inaccurate label ('1'), continuing into G.
      std::uint64_t u = sim.add_task(st.d_loss_cs, fwd_done, "g");
      for (const auto stg : st.d_bwd_cs) u = sim.add_task(stg, u, "g");
      for (const auto stg : st.g_bwd) u = sim.add_task(stg, u, "g");
      phase3_done = std::max(phase3_done, u);
    }
  }

  // D update (T11): needs the stored derivatives of ① and ②.
  const std::uint64_t upd_d_done =
      sim.add_task(st.upd_d, std::max(phase1_done, phase2_done), "U");

  // Phase ③ when not shared: a fresh pass through G + D + backward into G.
  if (!opts.computation_sharing) {
    const std::vector<std::size_t> chain3 =
        concat({st.g_fwd, st.d_fwd}, {st.d_loss});
    for (std::uint64_t i = 0; i < s.b; ++i) {
      std::uint64_t t = sim.add_chain(chain3, upd_d_done, "g");
      for (const auto stg : st.d_bwd) t = sim.add_task(stg, t, "g");
      for (const auto stg : st.g_bwd) t = sim.add_task(stg, t, "g");
      phase3_done = std::max(phase3_done, t);
    }
  }

  const std::uint64_t upd_g_done = sim.add_task(st.upd_g, phase3_done, "U");

  if (obs_trace) sim.emit_obs_spans("regan_batch");
  SimResult r;
  r.cycles = std::max(upd_d_done, upd_g_done);
  if (want_trace) r.gantt = sim.gantt();
  return r;
}

SimResult sim_regan_training(std::uint64_t n, const GanShape& shape,
                             const ReGanOptions& opts) {
  RERAMDL_CHECK_GT(shape.b, 0u);
  RERAMDL_CHECK_EQ(n % shape.b, 0u);
  // Batches do not overlap (both weight updates gate the next batch), so the
  // total is additive.
  const std::uint64_t per_batch = sim_regan_batch(shape, opts).cycles;
  SimResult r;
  r.cycles = (n / shape.b) * per_batch;
  return r;
}

}  // namespace reramdl::pipeline
