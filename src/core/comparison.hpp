// Accelerator-vs-GPU comparison: the quantities Table I reports.
#pragma once

#include <string>
#include <vector>

#include "baseline/gpu_model.hpp"
#include "core/accelerator_config.hpp"

namespace reramdl::core {

struct Comparison {
  std::string workload;
  double accel_time_s = 0.0;
  double gpu_time_s = 0.0;
  double accel_energy_j = 0.0;
  double gpu_energy_j = 0.0;

  double speedup() const { return gpu_time_s / accel_time_s; }
  double energy_saving() const { return gpu_energy_j / accel_energy_j; }
};

Comparison compare(std::string workload, const TimingReport& accel,
                   const baseline::GpuCost& gpu);

struct ComparisonSummary {
  double geomean_speedup = 0.0;
  double geomean_energy_saving = 0.0;
};

ComparisonSummary summarize(const std::vector<Comparison>& rows);

}  // namespace reramdl::core
