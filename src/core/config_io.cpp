#include "core/config_io.hpp"

#include <fstream>
#include <functional>
#include <map>
#include <sstream>

#include "common/check.hpp"

namespace reramdl::core {
namespace {

std::string trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t\r");
  if (first == std::string::npos) return "";
  const auto last = s.find_last_not_of(" \t\r");
  return s.substr(first, last - first + 1);
}

using Setter = std::function<void(AcceleratorConfig&, double)>;

const std::map<std::string, Setter>& setters() {
  static const std::map<std::string, Setter> kSetters = {
      {"banks", [](auto& c, double v) { c.chip.banks = static_cast<std::size_t>(v); }},
      {"morphable_subarrays_per_bank",
       [](auto& c, double v) {
         c.chip.morphable_subarrays_per_bank = static_cast<std::size_t>(v);
       }},
      {"memory_subarrays_per_bank",
       [](auto& c, double v) {
         c.chip.memory_subarrays_per_bank = static_cast<std::size_t>(v);
       }},
      {"buffer_subarrays_per_bank",
       [](auto& c, double v) {
         c.chip.buffer_subarrays_per_bank = static_cast<std::size_t>(v);
       }},
      {"arrays_per_subarray",
       [](auto& c, double v) {
         c.chip.arrays_per_subarray = static_cast<std::size_t>(v);
       }},
      {"array_rows",
       [](auto& c, double v) { c.chip.array_rows = static_cast<std::size_t>(v); }},
      {"array_cols",
       [](auto& c, double v) { c.chip.array_cols = static_cast<std::size_t>(v); }},
      {"array_compute_energy_pj",
       [](auto& c, double v) { c.chip.costs.array_compute_energy_pj = v; }},
      {"array_compute_latency_ns",
       [](auto& c, double v) { c.chip.costs.array_compute_latency_ns = v; }},
      {"internal_bandwidth_bytes_per_ns",
       [](auto& c, double v) { c.chip.costs.internal_bandwidth_bytes_per_ns = v; }},
      {"array_static_power_w",
       [](auto& c, double v) { c.chip.costs.array_static_power_w = v; }},
      {"bits_per_cell",
       [](auto& c, double v) {
         c.chip.cell.bits_per_cell = static_cast<std::size_t>(v);
       }},
      {"weight_bits",
       [](auto& c, double v) { c.weight_bits = static_cast<std::size_t>(v); }},
      {"input_bits",
       [](auto& c, double v) { c.input_bits = static_cast<std::size_t>(v); }},
      {"max_arrays",
       [](auto& c, double v) { c.max_arrays = static_cast<std::size_t>(v); }},
      {"noc_hop_latency_ns",
       [](auto& c, double v) { c.chip.noc.hop_latency_ns = v; }},
      {"noc_hop_energy_pj_per_byte",
       [](auto& c, double v) { c.chip.noc.hop_energy_pj_per_byte = v; }},
      {"noc_link_bandwidth_bytes_per_ns",
       [](auto& c, double v) { c.chip.noc.link_bandwidth_bytes_per_ns = v; }},
      {"noc_contention",
       [](auto& c, double v) { c.chip.noc.contention = v != 0.0; }},
      {"noc_smart_max_hops",
       [](auto& c, double v) {
         c.chip.noc.smart_max_hops = static_cast<std::size_t>(v);
       }},
      {"noc_smart_hop_latency_ns",
       [](auto& c, double v) { c.chip.noc.smart_hop_latency_ns = v; }},
  };
  return kSetters;
}

}  // namespace

AcceleratorConfig parse_config(const std::string& text, AcceleratorConfig base) {
  AcceleratorConfig config = std::move(base);
  std::istringstream is(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos)
      detail::check_fail("config line has no '='", __FILE__,
                         static_cast<int>(line_no), line);
    const std::string key = trim(line.substr(0, eq));
    const std::string value_str = trim(line.substr(eq + 1));
    const auto it = setters().find(key);
    if (it == setters().end())
      detail::check_fail("unknown config key", __FILE__,
                         static_cast<int>(line_no), key);
    std::size_t consumed = 0;
    double value = 0.0;
    try {
      value = std::stod(value_str, &consumed);
    } catch (const std::exception&) {
      detail::check_fail("config value is not numeric", __FILE__,
                         static_cast<int>(line_no), value_str);
    }
    RERAMDL_CHECK_EQ(consumed, value_str.size());
    it->second(config, value);
  }
  return config;
}

AcceleratorConfig load_config(const std::string& path, AcceleratorConfig base) {
  std::ifstream is(path);
  RERAMDL_CHECK(static_cast<bool>(is));
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return parse_config(buffer.str(), std::move(base));
}

std::string dump_config(const AcceleratorConfig& c) {
  std::ostringstream os;
  os << "banks = " << c.chip.banks << '\n'
     << "morphable_subarrays_per_bank = " << c.chip.morphable_subarrays_per_bank
     << '\n'
     << "memory_subarrays_per_bank = " << c.chip.memory_subarrays_per_bank
     << '\n'
     << "buffer_subarrays_per_bank = " << c.chip.buffer_subarrays_per_bank
     << '\n'
     << "arrays_per_subarray = " << c.chip.arrays_per_subarray << '\n'
     << "array_rows = " << c.chip.array_rows << '\n'
     << "array_cols = " << c.chip.array_cols << '\n'
     << "array_compute_energy_pj = " << c.chip.costs.array_compute_energy_pj
     << '\n'
     << "array_compute_latency_ns = " << c.chip.costs.array_compute_latency_ns
     << '\n'
     << "internal_bandwidth_bytes_per_ns = "
     << c.chip.costs.internal_bandwidth_bytes_per_ns << '\n'
     << "array_static_power_w = " << c.chip.costs.array_static_power_w << '\n'
     << "bits_per_cell = " << c.chip.cell.bits_per_cell << '\n'
     << "weight_bits = " << c.weight_bits << '\n'
     << "input_bits = " << c.input_bits << '\n'
     << "max_arrays = " << c.max_arrays << '\n'
     << "noc_hop_latency_ns = " << c.chip.noc.hop_latency_ns << '\n'
     << "noc_hop_energy_pj_per_byte = " << c.chip.noc.hop_energy_pj_per_byte
     << '\n'
     << "noc_link_bandwidth_bytes_per_ns = "
     << c.chip.noc.link_bandwidth_bytes_per_ns << '\n'
     << "noc_contention = " << (c.chip.noc.contention ? 1 : 0) << '\n'
     << "noc_smart_max_hops = " << c.chip.noc.smart_max_hops << '\n'
     << "noc_smart_hop_latency_ns = " << c.chip.noc.smart_hop_latency_ns
     << '\n';
  return os.str();
}

}  // namespace reramdl::core
