#include "core/functional.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/transposed_conv2d.hpp"
#include "tensor/sparsity.hpp"

namespace reramdl::core {

// One weighted layer's attachment: the grid it computes on and the layer
// pointer needed for (re)programming and detaching.
struct CrossbarExecutor::Binding {
  nn::Layer* layer = nullptr;
  circuit::CrossbarGrid* grid = nullptr;
  const Tensor* weights = nullptr;

  void install() {
    circuit::CrossbarGrid* g = grid;
    auto hook = [g](const Tensor& rows, const Tensor& weights) -> Tensor {
      RERAMDL_CHECK_EQ(rows.shape().rank(), 2u);
      RERAMDL_CHECK_EQ(rows.shape()[1], g->total_rows());
      RERAMDL_CHECK_EQ(weights.shape()[1], g->total_cols());
      // One fused traversal yields both the per-call dynamic input range
      // (the spike drivers rescale per layer; max is association-insensitive
      // so the parallel scan is exact for any thread count) and the batch's
      // zero fraction for the grid's sparse/dense variant selection —
      // previously a dedicated max-only reduce, i.e. the scan that feeds the
      // sparsity policy is free here.
      const sparsity::ScanStats scan =
          sparsity::scan_rows(rows.data(), rows.shape()[0], rows.shape()[1]);
      // Batched fast path: the whole activation matrix dispatches as one
      // (tile x row-block) grid job — bit-identical to looping compute()
      // per row, without the per-row copies and per-row pool regions.
      return g->compute_batch(rows, scan.max_abs, scan.zero_fraction());
    };
    if (auto* d = dynamic_cast<nn::Dense*>(layer)) d->set_forward_matmul(hook);
    else if (auto* c = dynamic_cast<nn::Conv2D*>(layer)) c->set_forward_matmul(hook);
    else if (auto* t = dynamic_cast<nn::TransposedConv2D*>(layer))
      t->set_forward_matmul(hook);
  }

  void uninstall() {
    if (auto* d = dynamic_cast<nn::Dense*>(layer)) d->set_forward_matmul(nullptr);
    else if (auto* c = dynamic_cast<nn::Conv2D*>(layer)) c->set_forward_matmul(nullptr);
    else if (auto* t = dynamic_cast<nn::TransposedConv2D*>(layer))
      t->set_forward_matmul(nullptr);
  }
};

namespace {

const Tensor* weighted_layer_matrix(nn::Layer& layer) {
  if (auto* d = dynamic_cast<nn::Dense*>(&layer)) return &d->weights();
  if (auto* c = dynamic_cast<nn::Conv2D*>(&layer)) return &c->weights();
  if (auto* t = dynamic_cast<nn::TransposedConv2D*>(&layer)) return &t->weights();
  return nullptr;
}

}  // namespace

CrossbarExecutor::CrossbarExecutor(nn::Sequential& net,
                                   const AcceleratorConfig& config,
                                   device::VariationModel* variation)
    : net_(&net), xbar_config_(config.crossbar_config()) {
  circuit::ProgramOptions opts;
  opts.variation = variation;
  bind_and_program(net, opts);
}

CrossbarExecutor::CrossbarExecutor(nn::Sequential& net,
                                   const AcceleratorConfig& config,
                                   const circuit::ProgramOptions& opts)
    : net_(&net), xbar_config_(config.crossbar_config()) {
  bind_and_program(net, opts);
}

void CrossbarExecutor::bind_and_program(nn::Sequential& net,
                                        const circuit::ProgramOptions& opts) {
  for (std::size_t i = 0; i < net.num_layers(); ++i) {
    nn::Layer& layer = net.layer(i);
    const Tensor* w = weighted_layer_matrix(layer);
    if (w == nullptr) continue;
    auto grid = std::make_unique<circuit::CrossbarGrid>(xbar_config_);
    // Default attribution label: weighted-layer ordinal, matching the order
    // mapping::map_network lists the same layers in (so chip-aligned
    // re-labels line up index-for-index).
    grid->set_obs_label("host/layer" + std::to_string(grids_.size()));
    auto binding = std::make_unique<Binding>();
    binding->layer = &layer;
    binding->grid = grid.get();
    binding->weights = w;
    grids_.push_back(std::move(grid));
    bindings_.push_back(std::move(binding));
  }
  RERAMDL_CHECK(!bindings_.empty());
  reprogram(opts);
  for (auto& b : bindings_) b->install();
  attached_ = true;
}

void CrossbarExecutor::reprogram(device::VariationModel* variation) {
  circuit::ProgramOptions opts;
  opts.variation = variation;
  reprogram(opts);
}

void CrossbarExecutor::reprogram(const circuit::ProgramOptions& opts) {
  for (std::size_t l = 0; l < bindings_.size(); ++l) {
    auto& b = bindings_[l];
    const double w_max =
        std::max(static_cast<double>(b->weights->abs_max()), 1e-12);
    circuit::ProgramOptions layer_opts = opts;
    if (opts.faults.enabled())
      layer_opts.faults.seed =
          device::FaultMap::mix_seed(opts.faults.seed, l + 1);
    b->grid->program(*b->weights, w_max, layer_opts);
  }
}

std::size_t CrossbarExecutor::inject_at(std::uint64_t step) {
  std::size_t applied = 0;
  for (auto& g : grids_) applied += g->inject_at(step);
  return applied;
}

void CrossbarExecutor::apply_drift(double factor) {
  for (auto& g : grids_) g->apply_drift(factor);
}

void CrossbarExecutor::set_attribution_paths(
    const std::vector<std::string>& paths) {
  RERAMDL_CHECK_EQ(paths.size(), grids_.size());
  for (std::size_t l = 0; l < grids_.size(); ++l)
    grids_[l]->set_obs_label(paths[l]);
}

void CrossbarExecutor::detach() {
  if (!attached_) return;
  for (auto& b : bindings_) b->uninstall();
  attached_ = false;
}

const circuit::CrossbarGrid& CrossbarExecutor::grid(std::size_t i) const {
  RERAMDL_CHECK_LT(i, grids_.size());
  return *grids_[i];
}

circuit::CrossbarGrid& CrossbarExecutor::grid_mut(std::size_t i) {
  RERAMDL_CHECK_LT(i, grids_.size());
  return *grids_[i];
}

const Tensor& CrossbarExecutor::layer_weights(std::size_t l) const {
  RERAMDL_CHECK_LT(l, bindings_.size());
  return *bindings_[l]->weights;
}

std::uint64_t CrossbarExecutor::refresh_tile(
    std::size_t l, std::size_t t, const circuit::ProgramOptions& opts) {
  RERAMDL_CHECK_LT(l, bindings_.size());
  circuit::ProgramOptions layer_opts = opts;
  if (opts.faults.enabled())
    layer_opts.faults.seed = device::FaultMap::mix_seed(opts.faults.seed, l + 1);
  return grids_[l]->refresh_tile(t, *bindings_[l]->weights, layer_opts);
}

circuit::CrossbarHealth CrossbarExecutor::health() const {
  circuit::CrossbarHealth total;
  bool first = true;
  for (const auto& g : grids_) {
    if (first) {
      total = g->health();
      first = false;
    } else {
      total += g->health();
    }
  }
  return total;
}

circuit::CrossbarStats CrossbarExecutor::aggregate_stats() const {
  circuit::CrossbarStats total;
  for (const auto& g : grids_) total += g->aggregate_stats();
  return total;
}

CrossbarExecutor::~CrossbarExecutor() { detach(); }

}  // namespace reramdl::core
