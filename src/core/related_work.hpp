// Related-work system comparison.
//
// The paper positions PipeLayer against PRIME / ISAAC: those architectures
// accelerate *inference* with voltage-mode DAC/ADC crossbars but lack
// "support for sophisticated training", so a deployment must train on a GPU
// and ship weights to the ReRAM chip. These models quantify that argument
// for a train-then-serve scenario:
//   * GPU only         — train and infer on the GTX 1080 baseline;
//   * ISAAC-like hybrid — train on the GPU, infer on an inference-only
//     ReRAM part whose readout uses the DAC + SAR-ADC scheme;
//   * PipeLayer        — train and infer on the spike-coded PIM accelerator.
#pragma once

#include "baseline/gpu_model.hpp"
#include "core/pipelayer.hpp"

namespace reramdl::core {

struct SystemCost {
  double train_time_s = 0.0;
  double train_energy_j = 0.0;
  double infer_time_s = 0.0;
  double infer_energy_j = 0.0;

  double total_time_s() const { return train_time_s + infer_time_s; }
  double total_energy_j() const { return train_energy_j + infer_energy_j; }
};

struct Scenario {
  std::size_t n_train = 0;
  std::size_t n_infer = 0;
  std::size_t batch = 64;
};

SystemCost gpu_only_cost(const nn::NetworkSpec& net, const Scenario& scenario,
                         const baseline::GpuModel& gpu);

// GPU training + inference on an ISAAC-like inference-only ReRAM part. The
// part shares PipeLayer's array organization but pays the voltage-mode
// conversion premium per array activation (circuit::adc_scheme_costs vs
// circuit::spike_scheme_costs).
SystemCost isaac_like_cost(const nn::NetworkSpec& net, const Scenario& scenario,
                           const AcceleratorConfig& config,
                           const baseline::GpuModel& gpu);

SystemCost pipelayer_cost(const nn::NetworkSpec& net, const Scenario& scenario,
                          const AcceleratorConfig& config);

}  // namespace reramdl::core
