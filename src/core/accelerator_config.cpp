#include "core/accelerator_config.hpp"

namespace reramdl::core {

circuit::CrossbarConfig AcceleratorConfig::crossbar_config() const {
  circuit::CrossbarConfig c;
  c.rows = chip.array_rows;
  c.cols = chip.array_cols;
  c.weight_bits = weight_bits;
  c.input_bits = input_bits;
  c.spare_cols = spare_cols;
  c.cell = chip.cell;
  return c;
}

}  // namespace reramdl::core
