#include "core/regan.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/units.hpp"
#include "pipeline/analytic.hpp"

namespace reramdl::core {
namespace {

nn::NetworkSpec merge_specs(const nn::NetworkSpec& g, const nn::NetworkSpec& d) {
  nn::NetworkSpec merged;
  merged.name = g.name + "+" + d.name;
  merged.input_c = g.input_c;
  merged.input_h = g.input_h;
  merged.input_w = g.input_w;
  merged.layers = g.layers;
  merged.layers.insert(merged.layers.end(), d.layers.begin(), d.layers.end());
  return merged;
}

}  // namespace

ReGanAccelerator::ReGanAccelerator(nn::NetworkSpec generator,
                                   nn::NetworkSpec discriminator,
                                   AcceleratorConfig config)
    : generator_(std::move(generator)),
      discriminator_(std::move(discriminator)),
      config_(std::move(config)) {
  RERAMDL_CHECK_GT(generator_.weighted_layers(), 0u);
  RERAMDL_CHECK_GT(discriminator_.weighted_layers(), 0u);
  g_weighted_ = generator_.weighted_layers();
  mapping_ = mapping::plan_under_budget(merge_specs(generator_, discriminator_),
                                        config_.mapping_config(),
                                        config_.array_budget());
}

double ReGanAccelerator::activations_per_sample(bool generator) const {
  // Energy-weighted array activations. Fractional-strided convs run over the
  // zero-inserted input (Fig. 7a); the spike drivers emit no spikes for the
  // inserted zeros, so only ~1/stride^2 of each dilated vector draws dynamic
  // energy on the wordlines and bitlines.
  double acts = 0.0;
  for (std::size_t i = 0; i < mapping_.layers.size(); ++i) {
    const bool is_g = i < g_weighted_;
    if (is_g != generator) continue;
    const auto& l = mapping_.layers[i];
    double layer_acts = static_cast<double>(l.row_tiles * l.col_tiles) *
                        static_cast<double>(l.spec.vectors_per_sample());
    if (l.spec.kind == nn::LayerKind::kTransposedConv)
      layer_acts /= static_cast<double>(l.spec.stride * l.spec.stride);
    acts += layer_acts;
  }
  return acts;
}

double ReGanAccelerator::buffer_bytes_per_sample(bool generator) const {
  const auto& net = generator ? generator_ : discriminator_;
  double bytes = 0.0;
  for (const auto& l : net.layers)
    bytes += 2.0 * 4.0 * static_cast<double>(l.out_size());
  return bytes;
}

double ReGanAccelerator::programmed_cells(bool generator) const {
  const std::size_t slices =
      config_.weight_bits / config_.chip.cell.bits_per_cell;
  double cells = 0.0;
  for (std::size_t i = 0; i < mapping_.layers.size(); ++i) {
    const bool is_g = i < g_weighted_;
    if (is_g != generator) continue;
    cells += static_cast<double>(mapping_.layers[i].weight_cells());
  }
  return cells * static_cast<double>(slices) * 2.0;
}

std::size_t ReGanAccelerator::d_arrays() const {
  std::size_t n = 0;
  for (std::size_t i = g_weighted_; i < mapping_.layers.size(); ++i)
    n += mapping_.layers[i].arrays();
  return n;
}

std::size_t ReGanAccelerator::arrays_used(
    const pipeline::ReGanOptions& opts) const {
  std::size_t n = mapping_.total_arrays();
  if (opts.spatial_parallelism) n += d_arrays();  // duplicated D copy
  return n;
}

void ReGanAccelerator::book_training_energy(std::size_t n, std::size_t batch,
                                            const pipeline::ReGanOptions& opts,
                                            double time_s,
                                            arch::EnergyMeter& meter) const {
  const double dn = static_cast<double>(n);
  const auto& costs = config_.chip.costs;
  const double act_g = activations_per_sample(/*generator=*/true);
  const double act_d = activations_per_sample(/*generator=*/false);

  // Crossbar passes per training sample (fwd / err-bwd / weight-grad each
  // re-run a network's contractions):
  //   ① D fwd+bwd+wgrad        : 3 x D
  //   ② G fwd, D fwd+bwd+wgrad : 1 x G + 3 x D
  //   ③ fresh pass (no CS)     : 3 x G + 2 x D (D has no wgrad here)
  //   ③ shared pass (CS)       : 2 x G + 1 x D (forward reused from ②)
  const double g_passes = opts.computation_sharing ? 3.0 : 4.0;
  const double d_passes = opts.computation_sharing ? 7.0 : 8.0;
  meter.add("compute",
            dn * (g_passes * act_g + d_passes * act_d) *
                costs.array_compute_energy_pj);

  // Buffer subarrays hold inter-layer data; CS doubles the stored
  // intermediates (error + partial derivatives for both branches).
  const double buf = buffer_bytes_per_sample(true) + buffer_bytes_per_sample(false);
  const double cs_factor = opts.computation_sharing ? 2.0 : 1.0;
  meter.add("buffer", 2.0 * cs_factor * dn * buf *
                          costs.buffer_access_energy_pj_per_byte);

  // VBN sub+shift in the wordline drivers, per normalized element.
  double bn_elems = 0.0;
  for (const auto& l : generator_.layers)
    if (l.kind == nn::LayerKind::kBatchNorm)
      bn_elems += static_cast<double>(l.out_size());
  for (const auto& l : discriminator_.layers)
    if (l.kind == nn::LayerKind::kBatchNorm)
      bn_elems += static_cast<double>(l.out_size());
  meter.add("vbn", dn * bn_elems * costs.vbn_energy_pj);

  // One update of each network per batch.
  const double batches = dn / static_cast<double>(batch);
  const double per_cell =
      config_.chip.cell.program_energy_pj() + costs.update_driver_energy_pj;
  meter.add("update",
            batches * (programmed_cells(true) + programmed_cells(false)) *
                per_cell);

  meter.add("static", static_cast<double>(arrays_used(opts)) *
                          costs.array_static_power_w * time_s * units::kPjPerJ);
}

TimingReport ReGanAccelerator::training_report(
    std::size_t n, std::size_t batch,
    const pipeline::ReGanOptions& opts) const {
  RERAMDL_CHECK_GT(n, 0u);
  RERAMDL_CHECK_GT(batch, 0u);
  RERAMDL_CHECK_EQ(n % batch, 0u);

  TimingReport r;
  r.stage_steps = mapping_.stage_steps();
  // As in PipeLayer, a pipeline cycle covers the slowest stage's array
  // activations and the buffering of that stage's activations (the buffer
  // subarrays' private ports carry this traffic in ReGAN).
  double max_layer_bytes = 0.0;
  for (const auto* net : {&generator_, &discriminator_})
    for (const auto& l : net->layers)
      max_layer_bytes = std::max(
          max_layer_bytes, 4.0 * static_cast<double>(l.out_size()));
  const double compute_ns = static_cast<double>(r.stage_steps) *
                            config_.chip.costs.array_compute_latency_ns;
  const double transfer_ns =
      max_layer_bytes / config_.chip.costs.internal_bandwidth_bytes_per_ns;
  r.cycle_ns = std::max(compute_ns, transfer_ns);
  r.arrays_used = arrays_used(opts);
  const auto& costs = config_.chip.costs;
  r.area_mm2 = static_cast<double>(r.arrays_used) * costs.array_area_mm2 +
               static_cast<double>(config_.chip.banks) * costs.bank_control_area_mm2;

  const pipeline::GanShape shape{l_d(), l_g(), batch};
  r.pipeline_cycles = pipeline::sim_regan_training(n, shape, opts).cycles;
  r.time_s = static_cast<double>(r.pipeline_cycles) * r.cycle_ns / units::kNsPerS;

  arch::EnergyMeter meter;
  book_training_energy(n, batch, opts, r.time_s, meter);
  r.energy_j = meter.total_pj() / units::kPjPerJ;
  r.power_w = r.energy_j / r.time_s;
  r.throughput_sps = static_cast<double>(n) / r.time_s;
  return r;
}

TimingReport ReGanAccelerator::training_report_unpipelined(
    std::size_t n, std::size_t batch) const {
  const pipeline::ReGanOptions no_opts{false, false};
  TimingReport r = training_report(n, batch, no_opts);
  const pipeline::GanShape shape{l_d(), l_g(), batch};
  r.pipeline_cycles = (n / batch) *
                      pipeline::regan_batch_cycles_unpipelined(shape);
  r.time_s = static_cast<double>(r.pipeline_cycles) * r.cycle_ns / units::kNsPerS;
  // Work is identical; only the schedule stretches, so recompute the
  // time-dependent pieces.
  arch::EnergyMeter meter;
  book_training_energy(n, batch, no_opts, r.time_s, meter);
  r.energy_j = meter.total_pj() / units::kPjPerJ;
  r.power_w = r.energy_j / r.time_s;
  r.throughput_sps = static_cast<double>(n) / r.time_s;
  return r;
}

arch::EnergyMeter ReGanAccelerator::training_energy_breakdown(
    std::size_t n, std::size_t batch,
    const pipeline::ReGanOptions& opts) const {
  const TimingReport r = training_report(n, batch, opts);
  arch::EnergyMeter meter;
  book_training_energy(n, batch, opts, r.time_s, meter);
  return meter;
}

}  // namespace reramdl::core
