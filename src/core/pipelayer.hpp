// PipeLayer: the ReRAM PIM accelerator for general neural networks
// (paper Sec. III-A). Combines the balanced data mapping (Fig. 4b), the
// inter-layer training pipeline (Fig. 5b), and the morphable-subarray bank
// implementation (Fig. 6) into per-run time / energy / area reports.
#pragma once

#include "arch/energy.hpp"
#include "core/accelerator_config.hpp"
#include "mapping/planner.hpp"
#include "nn/layer_spec.hpp"

namespace reramdl::core {

class PipeLayerAccelerator {
 public:
  PipeLayerAccelerator(nn::NetworkSpec net, AcceleratorConfig config);

  const mapping::NetworkMapping& network_mapping() const { return mapping_; }
  const nn::NetworkSpec& network() const { return net_; }
  std::size_t pipeline_depth() const;  // the paper's L (weighted layers)

  TimingReport inference_report(std::size_t n) const;
  TimingReport training_report(std::size_t n, std::size_t batch) const;

  // Reports with the inter-layer pipeline disabled (each input's forward /
  // backward runs to completion before the next enters) — the "no pipeline"
  // baseline the paper's Fig. 5 discussion argues against. Same hardware,
  // same energy model; only the cycle count changes.
  TimingReport inference_report_sequential(std::size_t n) const;
  TimingReport training_report_sequential(std::size_t n,
                                          std::size_t batch) const;

  // Per-component energy of one training run (for breakdown tables).
  arch::EnergyMeter training_energy_breakdown(std::size_t n,
                                              std::size_t batch) const;

  // Per-layer cost rows: how each weighted layer contributes to arrays,
  // stage latency, and per-sample compute energy.
  struct LayerCost {
    std::string name;
    std::size_t arrays = 0;
    std::size_t steps_per_sample = 0;
    double activations_per_sample = 0.0;
    double compute_uj_per_sample = 0.0;
  };
  std::vector<LayerCost> layer_costs() const;

 private:
  // Array activations for one sample's forward pass (tiles x vectors,
  // independent of replication).
  double forward_activations_per_sample() const;
  double forward_buffer_bytes_per_sample() const;
  // Physical cells (both polarities, all slices, all replicas).
  double programmed_cells() const;
  void fill_common(TimingReport& r) const;
  double compute_energy_pj(double activations) const;
  void book_training_energy(std::size_t n, std::size_t batch, double time_s,
                            arch::EnergyMeter& meter) const;

  nn::NetworkSpec net_;
  AcceleratorConfig config_;
  mapping::NetworkMapping mapping_;
};

}  // namespace reramdl::core
