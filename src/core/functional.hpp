// Functional crossbar execution: route a live nn::Sequential's matrix
// products through quantized ReRAM crossbar grids, so inference (and the
// forward passes of training) computes with the precision, bit-slicing and
// device non-idealities of the hardware instead of float matmuls.
//
// Biases, activations, pooling and batch-norm stay digital, matching the
// paper's peripheral-circuit split.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "circuit/crossbar_grid.hpp"
#include "core/accelerator_config.hpp"
#include "device/variation.hpp"
#include "nn/sequential.hpp"

namespace reramdl::core {

class CrossbarExecutor {
 public:
  // Programs one crossbar grid per weighted layer of `net` and installs
  // forward-matmul hooks. `net` must outlive the executor. The optional
  // variation model perturbs every programmed cell.
  CrossbarExecutor(nn::Sequential& net, const AcceleratorConfig& config,
                   device::VariationModel* variation = nullptr);

  // Full programming path per layer: faults, write-verify, spare-column
  // remapping and the degradation policy (circuit::ProgramOptions). Each
  // layer's grid programs with a fault seed mixed per layer
  // (FaultMap::mix_seed(seed, layer_index + 1)), so one campaign seed
  // reproduces the entire network's fault population.
  CrossbarExecutor(nn::Sequential& net, const AcceleratorConfig& config,
                   const circuit::ProgramOptions& opts);

  // Re-program the grids from the layers' current weights (after a weight
  // update, mirroring the paper's update cycle).
  void reprogram(device::VariationModel* variation = nullptr);

  // Re-program with the full options path (per-layer fault-seed mixing as
  // in the ProgramOptions constructor).
  void reprogram(const circuit::ProgramOptions& opts);

  // Fan transient-fault injection event `step` out to every grid; returns
  // total bit-flips applied across the network.
  std::size_t inject_at(std::uint64_t step);

  // Age all grids by the given retention-drift factor (see
  // device::RetentionModel); reprogram() restores fresh levels.
  void apply_drift(double factor);

  // Remove the hooks, restoring exact float execution.
  void detach();

  // Attribution paths, one per weighted-layer grid (obs::Attribution; see
  // CrossbarGrid::set_obs_label). Grids default to "host/layer<l>" where l
  // is the weighted-layer ordinal — the same ordering the chip simulator's
  // mapping uses — so callers that simulated a placement can re-label with
  // chip-aligned paths ("chip/bank<b>/layer<l>") and the host-side tile
  // work folds into the chip-sim tree.
  void set_attribution_paths(const std::vector<std::string>& paths);

  std::size_t num_grids() const { return grids_.size(); }
  const circuit::CrossbarGrid& grid(std::size_t i) const;
  // Mutable grid access for the maintenance engine (wear-leveling maps,
  // per-tile drift/aging).
  circuit::CrossbarGrid& grid_mut(std::size_t i);
  // The weight matrix layer `l`'s grid was programmed from.
  const Tensor& layer_weights(std::size_t l) const;
  circuit::CrossbarStats aggregate_stats() const;

  // Reprogram one tile of one layer's grid in place (the drift-refresh /
  // scrub-repair primitive) with the same per-layer fault-seed mix as
  // reprogram(opts); returns the cell program pulses issued.
  std::uint64_t refresh_tile(std::size_t l, std::size_t t,
                             const circuit::ProgramOptions& opts);

  // Aggregate condition report across all grids (CrossbarGrid::health()).
  circuit::CrossbarHealth health() const;

  ~CrossbarExecutor();
  CrossbarExecutor(const CrossbarExecutor&) = delete;
  CrossbarExecutor& operator=(const CrossbarExecutor&) = delete;

 private:
  struct Binding;
  void bind_and_program(nn::Sequential& net,
                        const circuit::ProgramOptions& opts);
  nn::Sequential* net_;
  circuit::CrossbarConfig xbar_config_;
  std::vector<std::unique_ptr<circuit::CrossbarGrid>> grids_;
  std::vector<std::unique_ptr<Binding>> bindings_;
  bool attached_ = false;
};

}  // namespace reramdl::core
