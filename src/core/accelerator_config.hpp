// Top-level accelerator configuration: chip organization + functional
// crossbar precision + the array budget the replication planner may spend.
#pragma once

#include "arch/params.hpp"
#include "circuit/crossbar.hpp"
#include "mapping/layer_mapping.hpp"

namespace reramdl::core {

struct AcceleratorConfig {
  arch::ChipConfig chip;
  // Functional crossbar precision (bit-slicing, input bits). rows/cols are
  // taken from the chip's array dims.
  std::size_t weight_bits = 16;
  std::size_t input_bits = 8;
  // Array budget for the replication planner; 0 means the chip's full
  // morphable capacity.
  std::size_t max_arrays = 0;
  // Bitlines per array reserved as spare columns for fault remapping
  // (circuit::CrossbarConfig::spare_cols); shrinks the usable data width.
  std::size_t spare_cols = 0;

  std::size_t array_budget() const {
    return max_arrays != 0 ? max_arrays : chip.total_compute_arrays();
  }
  mapping::MappingConfig mapping_config() const {
    return {chip.array_rows, chip.array_cols};
  }
  circuit::CrossbarConfig crossbar_config() const;
};

// Performance / energy / area summary of one simulated execution.
struct TimingReport {
  std::uint64_t pipeline_cycles = 0;  // paper-formula cycles
  std::size_t stage_steps = 1;        // array activations per pipeline cycle
  double cycle_ns = 0.0;              // stage_steps * array latency
  double time_s = 0.0;
  double energy_j = 0.0;
  double power_w = 0.0;
  double throughput_sps = 0.0;        // samples per second
  std::size_t arrays_used = 0;
  double area_mm2 = 0.0;
};

}  // namespace reramdl::core
