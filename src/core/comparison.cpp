#include "core/comparison.hpp"

#include "common/check.hpp"
#include "common/stats.hpp"

namespace reramdl::core {

Comparison compare(std::string workload, const TimingReport& accel,
                   const baseline::GpuCost& gpu) {
  RERAMDL_CHECK_GT(accel.time_s, 0.0);
  RERAMDL_CHECK_GT(accel.energy_j, 0.0);
  Comparison c;
  c.workload = std::move(workload);
  c.accel_time_s = accel.time_s;
  c.gpu_time_s = gpu.time_s;
  c.accel_energy_j = accel.energy_j;
  c.gpu_energy_j = gpu.energy_j;
  return c;
}

ComparisonSummary summarize(const std::vector<Comparison>& rows) {
  RERAMDL_CHECK(!rows.empty());
  std::vector<double> speedups, savings;
  speedups.reserve(rows.size());
  savings.reserve(rows.size());
  for (const auto& r : rows) {
    speedups.push_back(r.speedup());
    savings.push_back(r.energy_saving());
  }
  return {geomean(speedups), geomean(savings)};
}

}  // namespace reramdl::core
