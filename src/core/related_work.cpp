#include "core/related_work.hpp"

#include "circuit/adc.hpp"
#include "common/check.hpp"

namespace reramdl::core {

SystemCost gpu_only_cost(const nn::NetworkSpec& net, const Scenario& scenario,
                         const baseline::GpuModel& gpu) {
  RERAMDL_CHECK_GT(scenario.n_train, 0u);
  RERAMDL_CHECK_GT(scenario.n_infer, 0u);
  SystemCost c;
  const auto train = gpu.training_cost(net, scenario.n_train, scenario.batch);
  const auto infer = gpu.inference_cost(net, scenario.n_infer, scenario.batch);
  c.train_time_s = train.time_s;
  c.train_energy_j = train.energy_j;
  c.infer_time_s = infer.time_s;
  c.infer_energy_j = infer.energy_j;
  return c;
}

SystemCost isaac_like_cost(const nn::NetworkSpec& net, const Scenario& scenario,
                           const AcceleratorConfig& config,
                           const baseline::GpuModel& gpu) {
  SystemCost c;
  const auto train = gpu.training_cost(net, scenario.n_train, scenario.batch);
  c.train_time_s = train.time_s;
  c.train_energy_j = train.energy_j;

  // Inference on the ReRAM part, with the DAC/ADC readout premium applied on
  // top of the spike-scheme costs the base accelerator model assumes.
  const PipeLayerAccelerator accel(net, config);
  TimingReport infer = accel.inference_report(scenario.n_infer);

  const auto spike = circuit::spike_scheme_costs(
      config.chip.array_rows, config.chip.array_cols, config.input_bits,
      config.chip.cell);
  const auto adc = circuit::adc_scheme_costs(
      config.chip.array_rows, config.chip.array_cols, config.input_bits,
      circuit::AdcParams{}, circuit::DacParams{});

  // Energy: every array activation pays the conversion difference.
  double activations = 0.0;
  for (const auto& l : accel.network_mapping().layers)
    activations += static_cast<double>(l.row_tiles * l.col_tiles) *
                   static_cast<double>(l.spec.vectors_per_sample());
  const double extra_pj = (adc.energy_pj - spike.energy_pj) * activations *
                          static_cast<double>(scenario.n_infer);
  c.infer_energy_j = infer.energy_j + extra_pj * 1e-12;

  // Latency: the conversion path stretches each array step.
  const double step_scale =
      (infer.cycle_ns / static_cast<double>(infer.stage_steps) +
       (adc.latency_ns - spike.latency_ns)) /
      (infer.cycle_ns / static_cast<double>(infer.stage_steps));
  c.infer_time_s = infer.time_s * std::max(step_scale, 1.0);
  return c;
}

SystemCost pipelayer_cost(const nn::NetworkSpec& net, const Scenario& scenario,
                          const AcceleratorConfig& config) {
  SystemCost c;
  const PipeLayerAccelerator accel(net, config);
  const TimingReport train =
      accel.training_report(scenario.n_train, scenario.batch);
  const TimingReport infer = accel.inference_report(scenario.n_infer);
  c.train_time_s = train.time_s;
  c.train_energy_j = train.energy_j;
  c.infer_time_s = infer.time_s;
  c.infer_energy_j = infer.energy_j;
  return c;
}

}  // namespace reramdl::core
