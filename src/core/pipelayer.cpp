#include "core/pipelayer.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/units.hpp"
#include "pipeline/analytic.hpp"

namespace reramdl::core {

PipeLayerAccelerator::PipeLayerAccelerator(nn::NetworkSpec net,
                                           AcceleratorConfig config)
    : net_(std::move(net)), config_(std::move(config)) {
  RERAMDL_CHECK_GT(net_.weighted_layers(), 0u);
  mapping_ = mapping::plan_under_budget(net_, config_.mapping_config(),
                                        config_.array_budget());
}

std::size_t PipeLayerAccelerator::pipeline_depth() const {
  return net_.weighted_layers();
}

double PipeLayerAccelerator::forward_activations_per_sample() const {
  double acts = 0.0;
  for (const auto& l : mapping_.layers)
    acts += static_cast<double>(l.row_tiles * l.col_tiles) *
            static_cast<double>(l.spec.vectors_per_sample());
  return acts;
}

double PipeLayerAccelerator::forward_buffer_bytes_per_sample() const {
  // Every layer's activations are staged through a memory subarray once
  // written and once read (paper: "memory subarrays are used as buffers to
  // store intermediate results").
  double bytes = 0.0;
  for (const auto& l : net_.layers)
    bytes += 2.0 * 4.0 * static_cast<double>(l.out_size());
  return bytes;
}

double PipeLayerAccelerator::programmed_cells() const {
  const std::size_t slices =
      config_.weight_bits / config_.chip.cell.bits_per_cell;
  return static_cast<double>(mapping_.total_weight_cells()) *
         static_cast<double>(slices) * 2.0;  // differential pair
}

double PipeLayerAccelerator::compute_energy_pj(double activations) const {
  return activations * config_.chip.costs.array_compute_energy_pj;
}

void PipeLayerAccelerator::fill_common(TimingReport& r) const {
  r.stage_steps = mapping_.stage_steps();
  // A pipeline cycle must both finish the slowest stage's array activations
  // and drain that stage's activations into the memory subarrays (the next
  // stage's read overlaps via double buffering), so the cycle time is the
  // max of the compute term and the data-movement term.
  double max_layer_bytes = 0.0;
  for (const auto& l : net_.layers)
    max_layer_bytes =
        std::max(max_layer_bytes, 4.0 * static_cast<double>(l.out_size()));
  const double compute_ns = static_cast<double>(r.stage_steps) *
                            config_.chip.costs.array_compute_latency_ns;
  const double transfer_ns =
      max_layer_bytes / config_.chip.costs.internal_bandwidth_bytes_per_ns;
  r.cycle_ns = std::max(compute_ns, transfer_ns);
  r.arrays_used = mapping_.total_arrays();
  const auto& c = config_.chip.costs;
  r.area_mm2 = static_cast<double>(r.arrays_used) * c.array_area_mm2 +
               static_cast<double>(config_.chip.banks) * c.bank_control_area_mm2;
}

void PipeLayerAccelerator::book_training_energy(std::size_t n,
                                                std::size_t batch,
                                                double time_s,
                                                arch::EnergyMeter& meter) const {
  const double dn = static_cast<double>(n);
  const auto& costs = config_.chip.costs;
  // Forward + error-backward + weight-gradient passes each re-run the
  // layer contractions on (transposed / replicated) arrays: 3x forward work.
  meter.add("compute", 3.0 * dn * compute_energy_pj(forward_activations_per_sample()));
  // Activations and errors staged through memory subarrays (2 passes keep
  // forward activations for the weight-gradient computation).
  meter.add("memory", 2.0 * dn * forward_buffer_bytes_per_sample() *
                          costs.memory_access_energy_pj_per_byte);
  // Activation function + pooling peripheral work per produced element.
  double act_elems = 0.0;
  for (const auto& l : net_.layers)
    if (l.kind == nn::LayerKind::kActivation || l.kind == nn::LayerKind::kPool)
      act_elems += static_cast<double>(l.out_size());
  meter.add("activation", dn * act_elems * costs.activation_energy_pj);
  // One weight update per batch reprograms every physical cell.
  const double batches = dn / static_cast<double>(batch);
  const double per_cell =
      config_.chip.cell.program_energy_pj() + costs.update_driver_energy_pj;
  meter.add("update", batches * programmed_cells() * per_cell);
  // Peripheral static power over the run for every allocated array.
  meter.add("static", static_cast<double>(mapping_.total_arrays()) *
                          costs.array_static_power_w * time_s * units::kPjPerJ);
}

TimingReport PipeLayerAccelerator::inference_report(std::size_t n) const {
  RERAMDL_CHECK_GT(n, 0u);
  TimingReport r;
  fill_common(r);
  r.pipeline_cycles =
      pipeline::pipelayer_infer_cycles_pipelined(n, pipeline_depth());
  r.time_s = static_cast<double>(r.pipeline_cycles) * r.cycle_ns / units::kNsPerS;
  const double dn = static_cast<double>(n);
  arch::EnergyMeter meter;
  meter.add("compute", dn * compute_energy_pj(forward_activations_per_sample()));
  meter.add("memory", dn * forward_buffer_bytes_per_sample() *
                          config_.chip.costs.memory_access_energy_pj_per_byte);
  meter.add("static", static_cast<double>(mapping_.total_arrays()) *
                          config_.chip.costs.array_static_power_w * r.time_s *
                          units::kPjPerJ);
  r.energy_j = meter.total_pj() / units::kPjPerJ;
  r.power_w = r.energy_j / r.time_s;
  r.throughput_sps = dn / r.time_s;
  return r;
}

TimingReport PipeLayerAccelerator::training_report(std::size_t n,
                                                   std::size_t batch) const {
  RERAMDL_CHECK_GT(n, 0u);
  RERAMDL_CHECK_GT(batch, 0u);
  RERAMDL_CHECK_EQ(n % batch, 0u);
  TimingReport r;
  fill_common(r);
  r.pipeline_cycles =
      pipeline::pipelayer_train_cycles_pipelined(n, pipeline_depth(), batch);
  r.time_s = static_cast<double>(r.pipeline_cycles) * r.cycle_ns / units::kNsPerS;
  arch::EnergyMeter meter;
  book_training_energy(n, batch, r.time_s, meter);
  r.energy_j = meter.total_pj() / units::kPjPerJ;
  r.power_w = r.energy_j / r.time_s;
  r.throughput_sps = static_cast<double>(n) / r.time_s;
  return r;
}

TimingReport PipeLayerAccelerator::inference_report_sequential(
    std::size_t n) const {
  RERAMDL_CHECK_GT(n, 0u);
  TimingReport r = inference_report(n);
  r.pipeline_cycles =
      pipeline::pipelayer_infer_cycles_sequential(n, pipeline_depth());
  r.time_s = static_cast<double>(r.pipeline_cycles) * r.cycle_ns / units::kNsPerS;
  // Energy is work-proportional and unchanged; recompute rates and the
  // static share for the longer run.
  arch::EnergyMeter meter;
  const double dn = static_cast<double>(n);
  meter.add("compute", dn * compute_energy_pj(forward_activations_per_sample()));
  meter.add("memory", dn * forward_buffer_bytes_per_sample() *
                          config_.chip.costs.memory_access_energy_pj_per_byte);
  meter.add("static", static_cast<double>(mapping_.total_arrays()) *
                          config_.chip.costs.array_static_power_w * r.time_s *
                          units::kPjPerJ);
  r.energy_j = meter.total_pj() / units::kPjPerJ;
  r.power_w = r.energy_j / r.time_s;
  r.throughput_sps = dn / r.time_s;
  return r;
}

TimingReport PipeLayerAccelerator::training_report_sequential(
    std::size_t n, std::size_t batch) const {
  RERAMDL_CHECK_GT(n, 0u);
  RERAMDL_CHECK_EQ(n % batch, 0u);
  TimingReport r;
  fill_common(r);
  r.pipeline_cycles =
      pipeline::pipelayer_train_cycles_sequential(n, pipeline_depth(), batch);
  r.time_s = static_cast<double>(r.pipeline_cycles) * r.cycle_ns / units::kNsPerS;
  arch::EnergyMeter meter;
  book_training_energy(n, batch, r.time_s, meter);
  r.energy_j = meter.total_pj() / units::kPjPerJ;
  r.power_w = r.energy_j / r.time_s;
  r.throughput_sps = static_cast<double>(n) / r.time_s;
  return r;
}

std::vector<PipeLayerAccelerator::LayerCost>
PipeLayerAccelerator::layer_costs() const {
  std::vector<LayerCost> rows;
  rows.reserve(mapping_.layers.size());
  for (const auto& l : mapping_.layers) {
    LayerCost row;
    row.name = l.spec.name;
    row.arrays = l.arrays();
    row.steps_per_sample = l.steps_per_sample();
    row.activations_per_sample =
        static_cast<double>(l.row_tiles * l.col_tiles) *
        static_cast<double>(l.spec.vectors_per_sample());
    row.compute_uj_per_sample = row.activations_per_sample *
                                config_.chip.costs.array_compute_energy_pj /
                                units::kPjPerUj;
    rows.push_back(std::move(row));
  }
  return rows;
}

arch::EnergyMeter PipeLayerAccelerator::training_energy_breakdown(
    std::size_t n, std::size_t batch) const {
  const TimingReport r = training_report(n, batch);
  arch::EnergyMeter meter;
  book_training_energy(n, batch, r.time_s, meter);
  return meter;
}

}  // namespace reramdl::core
