// Text configuration loading: lets the examples and benches run against a
// user-edited accelerator description instead of the built-in design points.
//
// Format: one `key = value` pair per line; '#' starts a comment. Unknown
// keys raise CheckError so typos don't silently fall back to defaults.
//
//   # pipelayer-like part
//   banks = 64
//   morphable_subarrays_per_bank = 32
//   array_rows = 128
//   array_compute_energy_pj = 120000
//   weight_bits = 16
//   max_arrays = 8192
#pragma once

#include <string>

#include "core/accelerator_config.hpp"

namespace reramdl::core {

// Parse a configuration from text; starts from the given base (defaults to
// the PipeLayer design point) and overrides the keys present.
AcceleratorConfig parse_config(const std::string& text,
                               AcceleratorConfig base = {});

// Load from a file; throws CheckError if the file cannot be read.
AcceleratorConfig load_config(const std::string& path,
                              AcceleratorConfig base = {});

// Serialize a configuration to the same text format (round-trips through
// parse_config).
std::string dump_config(const AcceleratorConfig& config);

}  // namespace reramdl::core
