// ReGAN: the ReRAM PIM accelerator for GAN training (paper Sec. III-B).
// Maps the generator and discriminator onto FF subarrays, runs the
// three-phase training pipeline of Fig. 8, and applies the spatial-
// parallelism / computation-sharing optimizations of Fig. 9.
#pragma once

#include "arch/energy.hpp"
#include "core/accelerator_config.hpp"
#include "mapping/planner.hpp"
#include "nn/layer_spec.hpp"
#include "pipeline/sim.hpp"

namespace reramdl::core {

class ReGanAccelerator {
 public:
  ReGanAccelerator(nn::NetworkSpec generator, nn::NetworkSpec discriminator,
                   AcceleratorConfig config);

  std::size_t l_g() const { return generator_.weighted_layers(); }
  std::size_t l_d() const { return discriminator_.weighted_layers(); }
  const mapping::NetworkMapping& network_mapping() const { return mapping_; }

  TimingReport training_report(std::size_t n, std::size_t batch,
                               const pipeline::ReGanOptions& opts) const;

  // Same hardware without the training pipeline: every sample's phase
  // completes before the next enters ((4L_D+L_G+2)B + (2L_D+2L_G+1)B cycles
  // per batch) — the "without the training pipeline" baseline of
  // Sec. III-B-2.
  TimingReport training_report_unpipelined(std::size_t n,
                                           std::size_t batch) const;

  arch::EnergyMeter training_energy_breakdown(
      std::size_t n, std::size_t batch,
      const pipeline::ReGanOptions& opts) const;

 private:
  double activations_per_sample(bool generator) const;
  double buffer_bytes_per_sample(bool generator) const;
  double programmed_cells(bool generator) const;
  std::size_t arrays_used(const pipeline::ReGanOptions& opts) const;
  std::size_t d_arrays() const;
  void book_training_energy(std::size_t n, std::size_t batch,
                            const pipeline::ReGanOptions& opts, double time_s,
                            arch::EnergyMeter& meter) const;

  nn::NetworkSpec generator_, discriminator_;
  AcceleratorConfig config_;
  // Combined mapping: generator's weighted layers first, then the
  // discriminator's.
  mapping::NetworkMapping mapping_;
  std::size_t g_weighted_ = 0;
};

}  // namespace reramdl::core
