// Equivalence tests for the batched crossbar MVM fast path:
//   (a) CrossbarGrid::compute_batch is bit-identical to looping the
//       single-vector compute() path, for thread counts 1 / 4 / 8;
//   (b) the collapsed-W_eff fast path matches the slice-walk reference
//       (compute_reference) exactly — without variation, with a variation
//       model attached, and after retention drift;
//   (c) aggregate CrossbarStats are identical between batched and looped
//       execution.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "circuit/crossbar.hpp"
#include "circuit/crossbar_grid.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "device/variation.hpp"
#include "tensor/sparsity.hpp"
#include "tensor/tensor.hpp"

namespace {

using namespace reramdl;

struct ThreadCountGuard {
  ThreadCountGuard() = default;
  ~ThreadCountGuard() { parallel::set_thread_count(0); }
};

circuit::CrossbarConfig small_grid_config() {
  circuit::CrossbarConfig cfg;
  cfg.rows = 32;
  cfg.cols = 32;
  return cfg;
}

Tensor batch_inputs(std::size_t m, std::size_t k, unsigned seed) {
  Rng rng(seed);
  return Tensor::uniform(Shape{m, k}, rng, -1.0f, 1.0f);
}

// Looped baseline: one grid.compute() per batch row.
Tensor looped_compute(circuit::CrossbarGrid& grid, const Tensor& rows,
                      double x_max) {
  const std::size_t m = rows.shape()[0], k = rows.shape()[1];
  Tensor out(Shape{m, grid.total_cols()});
  std::vector<float> x(k);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < k; ++j) x[j] = rows.at(i, j);
    const std::vector<float> y = grid.compute(x, x_max);
    for (std::size_t j = 0; j < y.size(); ++j) out.at(i, j) = y[j];
  }
  return out;
}

void expect_stats_eq(const circuit::CrossbarStats& a,
                     const circuit::CrossbarStats& b) {
  EXPECT_EQ(a.programmed_cells, b.programmed_cells);
  EXPECT_EQ(a.compute_ops, b.compute_ops);
  EXPECT_EQ(a.input_spikes, b.input_spikes);
  EXPECT_EQ(a.saturated_counters, b.saturated_counters);
}

TEST(CrossbarBatch, GridBatchBitIdenticalToLoopedAcrossThreadCounts) {
  ThreadCountGuard guard;
  Rng rng(101);
  // 5x4 tiles with ragged bottom/right edges; batch sizes straddle the
  // 32-row kernel block so both partial and full blocks are exercised.
  const Tensor w = Tensor::uniform(Shape{150, 120}, rng, -1.0f, 1.0f);
  for (const std::size_t m : {std::size_t{1}, std::size_t{5}, std::size_t{33}}) {
    const Tensor rows = batch_inputs(m, 150, 7u + static_cast<unsigned>(m));

    parallel::set_thread_count(1);
    circuit::CrossbarGrid looped_grid(small_grid_config());
    looped_grid.program(w, 1.0);
    const Tensor ref = looped_compute(looped_grid, rows, 1.0);

    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
      parallel::set_thread_count(threads);
      circuit::CrossbarGrid grid(small_grid_config());
      grid.program(w, 1.0);
      const Tensor out = grid.compute_batch(rows, 1.0);
      ASSERT_EQ(out.shape(), ref.shape());
      EXPECT_EQ(std::memcmp(out.data(), ref.data(),
                            ref.numel() * sizeof(float)),
                0)
          << "m=" << m << " threads=" << threads;
    }
  }
}

TEST(CrossbarBatch, CollapsedFastPathMatchesSliceWalkReference) {
  Rng rng(11);
  circuit::CrossbarConfig cfg;
  cfg.rows = 64;
  cfg.cols = 48;
  const Tensor w = Tensor::uniform(Shape{60, 40}, rng, -0.8f, 0.8f);
  circuit::Crossbar xbar(cfg);
  xbar.program(w, 0.8);

  std::vector<float> x(60);
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));

  const std::vector<float> fast = xbar.compute(x, 1.0);
  const std::vector<float> ref = xbar.compute_reference(x, 1.0);
  ASSERT_EQ(fast.size(), ref.size());
  for (std::size_t j = 0; j < fast.size(); ++j)
    EXPECT_EQ(fast[j], ref[j]) << "column " << j;
}

TEST(CrossbarBatch, CollapsedFastPathMatchesReferenceAfterDrift) {
  Rng rng(12);
  circuit::CrossbarConfig cfg;
  cfg.rows = 48;
  cfg.cols = 48;
  const Tensor w = Tensor::uniform(Shape{48, 48}, rng, -1.0f, 1.0f);
  circuit::Crossbar xbar(cfg);
  xbar.program(w, 1.0);
  // Full-mantissa drift factor: with stale W_eff (or a mismatched collapse
  // order) the paths would diverge in the last ulp.
  xbar.apply_drift(0.9137624296374218);

  std::vector<float> x(48);
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));

  const std::vector<float> fast = xbar.compute(x, 1.0);
  const std::vector<float> ref = xbar.compute_reference(x, 1.0);
  for (std::size_t j = 0; j < fast.size(); ++j)
    EXPECT_EQ(fast[j], ref[j]) << "column " << j;
}

TEST(CrossbarBatch, CollapsedFastPathMatchesReferenceWithVariation) {
  Rng rng(13);
  circuit::CrossbarConfig cfg;
  cfg.rows = 32;
  cfg.cols = 32;
  const Tensor w = Tensor::uniform(Shape{32, 32}, rng, -1.0f, 1.0f);
  device::VariationParams vp;
  vp.sigma = 0.08;
  device::VariationModel vm(vp, Rng(99));
  circuit::Crossbar xbar(cfg);
  xbar.program(w, 1.0, &vm);

  std::vector<float> x(32);
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));

  const std::vector<float> fast = xbar.compute(x, 1.0);
  const std::vector<float> ref = xbar.compute_reference(x, 1.0);
  for (std::size_t j = 0; j < fast.size(); ++j)
    EXPECT_EQ(fast[j], ref[j]) << "column " << j;
}

TEST(CrossbarBatch, WEffRebuiltOnReprogram) {
  Rng rng(14);
  circuit::CrossbarConfig cfg;
  cfg.rows = 16;
  cfg.cols = 16;
  circuit::Crossbar xbar(cfg);
  xbar.program(Tensor::uniform(Shape{16, 16}, rng, -1.0f, 1.0f), 1.0);
  xbar.apply_drift(0.7);
  const Tensor w2 = Tensor::uniform(Shape{16, 16}, rng, -1.0f, 1.0f);
  xbar.program(w2, 1.0);  // reprogram restores fresh levels and W_eff

  circuit::Crossbar fresh(cfg);
  fresh.program(w2, 1.0);
  EXPECT_EQ(xbar.effective_weights(), fresh.effective_weights());

  std::vector<float> x(16);
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  const auto ya = xbar.compute(x, 1.0);
  const auto yb = fresh.compute(x, 1.0);
  for (std::size_t j = 0; j < ya.size(); ++j) EXPECT_EQ(ya[j], yb[j]);
}

TEST(CrossbarBatch, CrossbarComputeBatchMatchesPerRow) {
  Rng rng(15);
  circuit::CrossbarConfig cfg;
  cfg.rows = 40;
  cfg.cols = 24;
  const Tensor w = Tensor::uniform(Shape{40, 24}, rng, -1.0f, 1.0f);
  const Tensor rows = batch_inputs(37, 40, 3);  // straddles one kernel block

  circuit::Crossbar batched(cfg);
  batched.program(w, 1.0);
  circuit::Crossbar looped(cfg);
  looped.program(w, 1.0);

  const Tensor out = batched.compute_batch(rows, 1.0);
  for (std::size_t b = 0; b < 37; ++b) {
    std::vector<float> x(40);
    for (std::size_t i = 0; i < 40; ++i) x[i] = rows.at(b, i);
    const std::vector<float> y = looped.compute(x, 1.0);
    for (std::size_t j = 0; j < y.size(); ++j)
      EXPECT_EQ(out.at(b, j), y[j]) << "row " << b << " col " << j;
  }
  expect_stats_eq(batched.stats(), looped.stats());
}

TEST(CrossbarBatch, AggregateStatsIdenticalBatchedVsLooped) {
  ThreadCountGuard guard;
  parallel::set_thread_count(4);
  Rng rng(16);
  const Tensor w = Tensor::uniform(Shape{100, 70}, rng, -1.0f, 1.0f);
  const Tensor rows = batch_inputs(41, 100, 21);

  circuit::CrossbarGrid batched(small_grid_config());
  batched.program(w, 1.0);
  circuit::CrossbarGrid looped(small_grid_config());
  looped.program(w, 1.0);

  const Tensor out_b = batched.compute_batch(rows, 1.0);
  const Tensor out_l = looped_compute(looped, rows, 1.0);
  EXPECT_EQ(std::memcmp(out_b.data(), out_l.data(),
                        out_l.numel() * sizeof(float)),
            0);
  expect_stats_eq(batched.aggregate_stats(), looped.aggregate_stats());
  // The stats themselves carry the expected totals: one MVM activation per
  // (tile, row) and one popcount contribution per quantized input element.
  EXPECT_EQ(batched.aggregate_stats().compute_ops,
            41u * batched.num_arrays());
}

TEST(CrossbarBatch, BitSerialGridBatchFallbackMatchesLooped) {
  ThreadCountGuard guard;
  parallel::set_thread_count(2);
  Rng rng(17);
  circuit::CrossbarConfig cfg = small_grid_config();
  cfg.bit_serial = true;
  const Tensor w = Tensor::uniform(Shape{40, 40}, rng, -1.0f, 1.0f);
  const Tensor rows = batch_inputs(3, 40, 31);

  circuit::CrossbarGrid batched(cfg);
  batched.program(w, 1.0);
  circuit::CrossbarGrid looped(cfg);
  looped.program(w, 1.0);

  const Tensor out_b = batched.compute_batch(rows, 1.0);
  const Tensor out_l = looped_compute(looped, rows, 1.0);
  EXPECT_EQ(std::memcmp(out_b.data(), out_l.data(),
                        out_l.numel() * sizeof(float)),
            0);
  expect_stats_eq(batched.aggregate_stats(), looped.aggregate_stats());
}

TEST(CrossbarBatch, EmptyBatchReturnsEmptyOutput) {
  Rng rng(18);
  circuit::CrossbarGrid grid(small_grid_config());
  grid.program(Tensor::uniform(Shape{40, 40}, rng, -1.0f, 1.0f), 1.0);
  const Tensor out = grid.compute_batch(Tensor(Shape{0, 40}), 1.0);
  EXPECT_EQ(out.shape()[0], 0u);
  EXPECT_EQ(out.shape()[1], 40u);
  EXPECT_EQ(grid.aggregate_stats().compute_ops, 0u);
}

// ---- Zero-skipping variant (DESIGN.md §12) ----------------------------------

struct SparsityPolicyGuard {
  ~SparsityPolicyGuard() { sparsity::set_threshold(-1.0); }
};

Tensor sparse_batch(std::size_t m, std::size_t k, double zero_prob,
                    unsigned seed) {
  Rng rng(seed);
  Tensor t = Tensor::uniform(Shape{m, k}, rng, -1.0f, 1.0f);
  for (std::size_t i = 0; i < t.numel(); ++i)
    if (rng.uniform(0.0, 1.0) < zero_prob) t[i] = 0.0f;
  // A couple of fully-zero batch rows, whose compact strips are empty.
  for (std::size_t j = 0; j < k; ++j) t.at(0, j) = t.at(m / 2, j) = 0.0f;
  return t;
}

TEST(CrossbarBatch, SparseVariantBitIdenticalWithIdenticalStats) {
  ThreadCountGuard guard;
  SparsityPolicyGuard policy;
  Rng rng(19);
  const Tensor w = Tensor::uniform(Shape{150, 120}, rng, -1.0f, 1.0f);
  const Tensor rows = sparse_batch(33, 150, 0.8, 20);

  parallel::set_thread_count(1);
  circuit::CrossbarGrid dense_grid(small_grid_config());
  dense_grid.program(w, 1.0);
  sparsity::set_threshold(0.0);  // force the dense oracle
  const Tensor ref = dense_grid.compute_batch(rows, 1.0);

  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
    parallel::set_thread_count(threads);
    circuit::CrossbarGrid grid(small_grid_config());
    grid.program(w, 1.0);
    sparsity::set_threshold(1e-9);  // force the zero-skipping variant
    const Tensor out = grid.compute_batch(rows, 1.0);
    ASSERT_EQ(out.shape(), ref.shape());
    EXPECT_EQ(
        std::memcmp(out.data(), ref.data(), ref.numel() * sizeof(float)), 0)
        << "threads=" << threads;
    // Skipped rows must not perturb any counter: spikes, ops, and the rest
    // are exactly the dense path's numbers.
    expect_stats_eq(grid.aggregate_stats(), dense_grid.aggregate_stats());
  }
}

TEST(CrossbarBatch, SingleArraySparseVariantBitIdentical) {
  SparsityPolicyGuard policy;
  Rng rng(21);
  circuit::CrossbarConfig cfg;
  cfg.rows = 64;
  cfg.cols = 48;
  const Tensor w = Tensor::uniform(Shape{60, 40}, rng, -1.0f, 1.0f);
  const Tensor rows = sparse_batch(37, 60, 0.75, 22);

  circuit::Crossbar dense_xbar(cfg);
  dense_xbar.program(w, 1.0);
  sparsity::set_threshold(0.0);
  const Tensor ref = dense_xbar.compute_batch(rows, 1.0);

  circuit::Crossbar xbar(cfg);
  xbar.program(w, 1.0);
  sparsity::set_threshold(1e-9);
  const Tensor out = xbar.compute_batch(rows, 1.0);
  EXPECT_EQ(std::memcmp(out.data(), ref.data(), ref.numel() * sizeof(float)),
            0);
  expect_stats_eq(xbar.stats(), dense_xbar.stats());
}

TEST(CrossbarBatch, AllZeroBatchDrivesNoSpikesUnderEitherVariant) {
  SparsityPolicyGuard policy;
  Rng rng(23);
  circuit::CrossbarGrid grid(small_grid_config());
  grid.program(Tensor::uniform(Shape{96, 64}, rng, -1.0f, 1.0f), 1.0);
  const Tensor zeros = Tensor::zeros(Shape{8, 96});

  sparsity::set_threshold(0.0);
  const Tensor dense_out = grid.compute_batch(zeros, 1.0);
  sparsity::set_threshold(1e-9);
  const Tensor sparse_out = grid.compute_batch(zeros, 1.0);

  const circuit::CrossbarStats stats = grid.aggregate_stats();
  EXPECT_EQ(stats.input_spikes, 0u);  // no wordline ever fires
  for (std::size_t i = 0; i < dense_out.numel(); ++i) {
    EXPECT_EQ(dense_out[i], 0.0f);
    EXPECT_EQ(sparse_out[i], 0.0f);
  }
}

}  // namespace
