#include <gtest/gtest.h>

#include "arch/noc.hpp"
#include "arch/placement.hpp"
#include "common/check.hpp"
#include "mapping/planner.hpp"
#include "workload/model_zoo.hpp"

namespace reramdl::arch {
namespace {

TEST(MeshNoc, HopsAreManhattanDistance) {
  MeshNoc noc(4, 4, NocParams{});
  EXPECT_EQ(noc.hops(0, 0), 0u);
  EXPECT_EQ(noc.hops(0, 3), 3u);    // same row
  EXPECT_EQ(noc.hops(0, 12), 3u);   // same column
  EXPECT_EQ(noc.hops(0, 15), 6u);   // opposite corner
  EXPECT_EQ(noc.hops(5, 10), noc.hops(10, 5));  // symmetric
}

TEST(MeshNoc, OutOfRangeBankThrows) {
  MeshNoc noc(2, 2, NocParams{});
  EXPECT_THROW(noc.hops(0, 4), CheckError);
}

TEST(MeshNoc, SameBankTransferIsFree) {
  MeshNoc noc(2, 2, NocParams{});
  EXPECT_DOUBLE_EQ(noc.transfer_latency_ns(1, 1, 4096), 0.0);
  EXPECT_DOUBLE_EQ(noc.transfer_energy_pj(1, 1, 4096), 0.0);
}

TEST(MeshNoc, TransferCostsScale) {
  NocParams p;
  MeshNoc noc(4, 4, p);
  const double lat1 = noc.transfer_latency_ns(0, 1, 1024);
  const double lat3 = noc.transfer_latency_ns(0, 3, 1024);
  EXPECT_GT(lat3, lat1);
  // Energy proportional to hops x bytes.
  EXPECT_DOUBLE_EQ(noc.transfer_energy_pj(0, 3, 1024),
                   3.0 * p.hop_energy_pj_per_byte * 1024.0);
}

TEST(MeshNoc, SerializationBoundedByLinkBandwidth) {
  NocParams p;
  p.link_bandwidth_bytes_per_ns = 8.0;
  MeshNoc noc(2, 2, p);
  // 800 bytes at 8 B/ns = 100 ns serialization + 1 hop latency.
  EXPECT_NEAR(noc.transfer_latency_ns(0, 1, 800), 100.0 + p.hop_latency_ns,
              1e-9);
}

TEST(MeshNoc, FactoryCoversRequestedBanks) {
  for (const std::size_t banks : {1u, 4u, 16u, 64u, 60u, 7u}) {
    const MeshNoc noc = make_mesh_for_banks(banks);
    EXPECT_GE(noc.num_banks(), banks);
  }
  const MeshNoc square = make_mesh_for_banks(64);
  EXPECT_EQ(square.rows(), 8u);
  EXPECT_EQ(square.cols(), 8u);
}

// ---- Placement ---------------------------------------------------------------

struct PlacementFixture {
  mapping::NetworkMapping mapping;
  ChipConfig chip;
  MeshNoc noc;

  PlacementFixture()
      : mapping(mapping::plan_under_budget(workload::spec_vgg_a(), {128, 128},
                                           16384)),
        chip(pipelayer_chip()),
        noc(make_mesh_for_banks(pipelayer_chip().banks)) {}
};

TEST(Placement, SnakeRespectsBankCapacity) {
  PlacementFixture f;
  const Placement p = place_snake(f.mapping, f.chip, f.noc);
  const std::size_t cap =
      f.chip.morphable_subarrays_per_bank * f.chip.arrays_per_subarray;
  ASSERT_EQ(p.bank.size(), f.mapping.layers.size());
  for (const std::size_t arrays : p.arrays_per_bank) EXPECT_LE(arrays, cap);
}

TEST(Placement, ScatteredRespectsBankCapacity) {
  PlacementFixture f;
  const Placement p = place_scattered(f.mapping, f.chip, f.noc);
  const std::size_t cap =
      f.chip.morphable_subarrays_per_bank * f.chip.arrays_per_subarray;
  for (const std::size_t arrays : p.arrays_per_bank) EXPECT_LE(arrays, cap);
}

TEST(Placement, SnakeKeepsAdjacentLayersClose) {
  PlacementFixture f;
  const Placement p = place_snake(f.mapping, f.chip, f.noc);
  // In snake order, consecutive positions are mesh neighbours: the next
  // layer's home bank is at most (banks spanned by this layer) hops away.
  ASSERT_EQ(p.spans.size(), p.bank.size());
  for (std::size_t i = 0; i + 1 < p.bank.size(); ++i)
    EXPECT_LE(f.noc.hops(p.bank[i], p.bank[i + 1]), p.spans[i]);
}

TEST(Placement, SnakeBeatsScatteredOnInterconnectCost) {
  PlacementFixture f;
  const auto snake =
      evaluate_placement(place_snake(f.mapping, f.chip, f.noc), f.mapping, f.noc);
  const auto scattered = evaluate_placement(
      place_scattered(f.mapping, f.chip, f.noc), f.mapping, f.noc);
  EXPECT_LT(snake.total_hops, scattered.total_hops);
  EXPECT_LT(snake.transfer_pj_per_sample, scattered.transfer_pj_per_sample);
  // Closed-form latency is dominated by link serialization (identical for
  // both placements); the per-hop latency advantage is marginal and gather
  // span counts add noise, so allow a sliver of slack on ns.
  EXPECT_LE(snake.transfer_ns_per_sample,
            scattered.transfer_ns_per_sample * 1.01);
}

TEST(Placement, CostCountsBanksUsed) {
  PlacementFixture f;
  const Placement p = place_snake(f.mapping, f.chip, f.noc);
  const PlacementCost c = evaluate_placement(p, f.mapping, f.noc);
  EXPECT_GE(c.banks_used, 1u);
  EXPECT_LE(c.banks_used, f.noc.num_banks());
}

TEST(Placement, SingleBankNetworkHasZeroTraffic) {
  // A tiny MLP fits one bank: no interconnect traffic at all.
  const auto m = mapping::plan_naive(workload::spec_mlp_mnist_a(), {128, 128});
  const ChipConfig chip = pipelayer_chip();
  const MeshNoc noc = make_mesh_for_banks(chip.banks);
  const Placement p = place_snake(m, chip, noc);
  const PlacementCost c = evaluate_placement(p, m, noc);
  EXPECT_EQ(c.banks_used, 1u);
  EXPECT_EQ(c.total_hops, 0u);
  EXPECT_DOUBLE_EQ(c.transfer_pj_per_sample, 0.0);
}

TEST(Placement, ChipOutOfCapacityThrows) {
  // Total demand beyond the whole chip's morphable capacity is rejected.
  ChipConfig tiny = pipelayer_chip();
  tiny.banks = 4;
  tiny.morphable_subarrays_per_bank = 1;
  tiny.arrays_per_subarray = 1;
  const auto m =
      mapping::plan_naive(workload::spec_mlp_mnist_c(), {128, 128});
  const MeshNoc noc = make_mesh_for_banks(tiny.banks);
  EXPECT_THROW(place_snake(m, tiny, noc), CheckError);
}

TEST(Placement, LargeLayerSpansMultipleBanks) {
  PlacementFixture f;
  const Placement p = place_snake(f.mapping, f.chip, f.noc);
  std::size_t max_span = 0;
  for (const auto s : p.spans) max_span = std::max(max_span, s);
  // VGG-A under a 16k-array budget has layers bigger than one bank (256
  // arrays), so at least one layer must span several banks.
  EXPECT_GT(max_span, 1u);
}

TEST(Placement, SpansRecordSpillBanks) {
  PlacementFixture f;
  const Placement p = place_snake(f.mapping, f.chip, f.noc);
  ASSERT_EQ(p.spill.size(), p.bank.size());
  for (std::size_t i = 0; i < p.bank.size(); ++i) {
    EXPECT_EQ(p.spans[i], 1 + p.spill[i].size());
    for (const std::size_t b : p.spill[i]) {
      EXPECT_LT(b, f.noc.num_banks());
      EXPECT_NE(b, p.bank[i]);
    }
  }
}

// Regression for the span-accounting fix: a deliberately oversized layer
// (bigger than one bank) must be charged partial-sum gather traffic from
// each spill bank — previously spilled layers paid zero intra-layer cost.
TEST(Placement, SpilledLayerPaysGatherCost) {
  PlacementFixture f;
  Placement p = place_snake(f.mapping, f.chip, f.noc);
  bool spilled = false;
  for (const auto& s : p.spill) spilled |= !s.empty();
  ASSERT_TRUE(spilled);

  const PlacementCost with_gather = evaluate_placement(p, f.mapping, f.noc);
  EXPECT_GT(with_gather.gather_ns_per_sample, 0.0);

  // Stripping the spill records removes exactly the gather share.
  Placement stripped = p;
  for (auto& s : stripped.spill) s.clear();
  const PlacementCost without = evaluate_placement(stripped, f.mapping, f.noc);
  EXPECT_DOUBLE_EQ(without.gather_ns_per_sample, 0.0);
  EXPECT_NEAR(with_gather.transfer_ns_per_sample,
              without.transfer_ns_per_sample + with_gather.gather_ns_per_sample,
              1e-6);
  EXPECT_GT(with_gather.total_hops, without.total_hops);
}

TEST(Placement, GatherBytesFollowTilingShape) {
  PlacementFixture f;
  for (const auto& layer : f.mapping.layers) {
    const std::size_t share = (4 * layer.spec.out_size() + 3) / 4;
    // Each spill bank ships its share of the output slice; row-split layers
    // pay double width (partial sums at accumulator precision).
    if (layer.row_tiles > 1)
      EXPECT_EQ(gather_bytes_per_spill_bank(layer, 4), 2 * share);
    else
      EXPECT_EQ(gather_bytes_per_spill_bank(layer, 4), share);
  }
}

TEST(Placement, SampleTransfersShape) {
  PlacementFixture f;
  const Placement p = place_snake(f.mapping, f.chip, f.noc);
  std::size_t gathers = 0;
  for (const auto& s : p.spill) gathers += s.size();
  const std::size_t per_sample = gathers + f.mapping.layers.size() - 1;
  for (const std::size_t samples : {1u, 3u}) {
    const auto reqs = sample_transfers(p, f.mapping, samples);
    EXPECT_EQ(reqs.size(), samples * per_sample);
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      EXPECT_LT(reqs[i].from, f.noc.num_banks());
      EXPECT_LT(reqs[i].to, f.noc.num_banks());
      if (reqs[i].dep >= 0) {
        EXPECT_LT(static_cast<std::size_t>(reqs[i].dep), i);
        // Chains never cross sample boundaries.
        EXPECT_EQ(static_cast<std::size_t>(reqs[i].dep) / per_sample,
                  i / per_sample);
      }
    }
  }
}

TEST(Placement, OptimizedRespectsCapacityAndArity) {
  PlacementFixture f;
  PlacementSearchOptions opt;
  opt.iterations = 200;  // keep the test fast
  const Placement p = place_optimized(f.mapping, f.chip, f.noc, opt);
  ASSERT_EQ(p.bank.size(), f.mapping.layers.size());
  ASSERT_EQ(p.spill.size(), p.bank.size());
  const std::size_t cap =
      f.chip.morphable_subarrays_per_bank * f.chip.arrays_per_subarray;
  std::size_t total = 0;
  for (const std::size_t arrays : p.arrays_per_bank) {
    EXPECT_LE(arrays, cap);
    total += arrays;
  }
  EXPECT_EQ(total, f.mapping.total_arrays());
  for (std::size_t i = 0; i < p.bank.size(); ++i)
    EXPECT_EQ(p.spans[i], 1 + p.spill[i].size());
}

TEST(Placement, OptimizedIsDeterministic) {
  PlacementFixture f;
  PlacementSearchOptions opt;
  opt.iterations = 150;
  const Placement a = place_optimized(f.mapping, f.chip, f.noc, opt);
  const Placement b = place_optimized(f.mapping, f.chip, f.noc, opt);
  EXPECT_EQ(a.bank, b.bank);
  EXPECT_EQ(a.spill, b.spill);
  EXPECT_EQ(a.arrays_per_bank, b.arrays_per_bank);
}

TEST(Placement, OptimizedNotWorseThanSnakeUnderEventModel) {
  NocParams params;
  params.contention = true;
  const ChipConfig chip = pipelayer_chip();
  const MeshNoc noc = make_mesh_for_banks(chip.banks, params);
  const auto mapping =
      mapping::plan_under_budget(workload::spec_vgg_a(), {128, 128}, 16384);
  PlacementSearchOptions opt;
  opt.iterations = 400;
  const Placement snake = place_snake(mapping, chip, noc);
  const Placement optimized = place_optimized(mapping, chip, noc, opt);
  const double snake_ns =
      noc.simulate(sample_transfers(snake, mapping, opt.pipeline_samples))
          .makespan_ns;
  const double opt_ns =
      noc.simulate(sample_transfers(optimized, mapping, opt.pipeline_samples))
          .makespan_ns;
  // The search starts from the snake seed and only accepts improvements.
  EXPECT_LE(opt_ns, snake_ns);
}

}  // namespace
}  // namespace reramdl::arch
