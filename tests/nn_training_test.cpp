#include <gtest/gtest.h>

#include <cmath>

#include "nn/gan.hpp"
#include "nn/trainer.hpp"
#include "workload/datasets.hpp"
#include "workload/model_zoo.hpp"

namespace reramdl::nn {
namespace {

TEST(SliceBatch, ExtractsContiguousSamples) {
  Tensor data(Shape{4, 2});
  for (std::size_t i = 0; i < 8; ++i) data[i] = static_cast<float>(i);
  const Tensor b = slice_batch(data, 1, 2);
  EXPECT_EQ(b.shape(), Shape({2, 2}));
  EXPECT_FLOAT_EQ(b[0], 2.0f);
  EXPECT_FLOAT_EQ(b[3], 5.0f);
}

TEST(Trainer, MlpLearnsSyntheticMnist) {
  Rng rng(100);
  auto net = workload::make_mlp_mnist(rng);
  Sgd opt(net.params(), 0.05f, 0.9f);
  Trainer trainer(net, opt);

  Rng data_rng(200);
  const auto train = workload::make_mnist_like(512, data_rng);
  const auto test = workload::make_mnist_like(128, data_rng);

  const EpochStats before = trainer.evaluate(test.images, test.labels, 64);
  EpochStats after{};
  for (int epoch = 0; epoch < 4; ++epoch)
    after = trainer.train_epoch(train.images, train.labels, 32, rng);
  const EpochStats eval = trainer.evaluate(test.images, test.labels, 64);

  EXPECT_GT(eval.accuracy, 0.85) << "synthetic MNIST should be easy";
  EXPECT_GT(eval.accuracy, before.accuracy);
  EXPECT_LT(after.mean_loss, std::log(10.0));
}

TEST(Trainer, LossDecreasesAcrossEpochs) {
  Rng rng(101);
  auto net = workload::make_mlp_mnist(rng);
  Sgd opt(net.params(), 0.05f);
  Trainer trainer(net, opt);
  Rng data_rng(201);
  const auto train = workload::make_mnist_like(256, data_rng);
  const auto e1 = trainer.train_epoch(train.images, train.labels, 32, rng);
  EpochStats e3{};
  for (int i = 0; i < 2; ++i)
    e3 = trainer.train_epoch(train.images, train.labels, 32, rng);
  EXPECT_LT(e3.mean_loss, e1.mean_loss);
}

TEST(Trainer, LenetTrainsOnSyntheticMnist) {
  Rng rng(102);
  auto net = workload::make_lenet_small(rng);
  Sgd opt(net.params(), 0.05f, 0.9f);
  Trainer trainer(net, opt);
  Rng data_rng(202);
  const auto train = workload::make_mnist_like(128, data_rng);
  const auto e1 = trainer.train_epoch(train.images, train.labels, 16, rng);
  EpochStats last{};
  for (int i = 0; i < 2; ++i)
    last = trainer.train_epoch(train.images, train.labels, 16, rng);
  EXPECT_LT(last.mean_loss, e1.mean_loss);
  EXPECT_GT(last.accuracy, 0.5);
}

TEST(Trainer, PartialTailBatchIsTrainedAndCounted) {
  // 70 samples with batch 32 leaves a 6-sample tail that must still train.
  Rng rng(110);
  auto net = workload::make_mlp_mnist(rng);
  Sgd opt(net.params(), 0.05f, 0.9f);
  Trainer trainer(net, opt);
  Rng data_rng(210);
  const auto train = workload::make_mnist_like(70, data_rng);

  const EpochStats e = trainer.train_epoch(train.images, train.labels, 32, rng);
  EXPECT_EQ(e.batches, 3u);  // 32 + 32 + 6
  EXPECT_EQ(e.samples, 70u);
  EXPECT_TRUE(std::isfinite(e.mean_loss));

  const EpochStats ev = trainer.evaluate(train.images, train.labels, 32);
  EXPECT_EQ(ev.batches, 3u);
  EXPECT_EQ(ev.samples, 70u);
}

TEST(Trainer, EvaluateMeanIsSampleWeightedAcrossBatchSizes) {
  // The epoch mean must not depend on how samples split into batches, so a
  // batch size that leaves a partial tail agrees with one full-data batch.
  Rng rng(111);
  auto net = workload::make_mlp_mnist(rng);
  Sgd opt(net.params(), 0.05f);
  Trainer trainer(net, opt);
  Rng data_rng(211);
  const auto test = workload::make_mnist_like(50, data_rng);

  const EpochStats whole = trainer.evaluate(test.images, test.labels, 50);
  const EpochStats split = trainer.evaluate(test.images, test.labels, 16);
  EXPECT_EQ(split.batches, 4u);  // 16 + 16 + 16 + 2
  EXPECT_EQ(split.samples, 50u);
  EXPECT_NEAR(split.mean_loss, whole.mean_loss, 1e-6);
  EXPECT_NEAR(split.accuracy, whole.accuracy, 1e-12);
}

// ---- GAN training ------------------------------------------------------------

class GanTraining : public ::testing::TestWithParam<bool> {};  // CS on/off

TEST_P(GanTraining, StepsProduceFiniteLossesAndUpdates) {
  const bool cs = GetParam();
  Rng rng(103);
  auto g = workload::make_dcgan_g_mnist(rng, 32);
  auto d = workload::make_dcgan_d_mnist(rng);
  Adam opt_g(g.params(), 2e-3f, 0.5f);
  Adam opt_d(d.params(), 2e-3f, 0.5f);
  GanTrainer gan(g, d, opt_g, opt_d, 32, cs);

  Rng data_rng(203);
  Tensor real = workload::make_gan_images(8, 1, 28, data_rng);

  GanStepStats s{};
  for (int i = 0; i < 3; ++i) s = gan.step(real, rng);
  EXPECT_TRUE(std::isfinite(s.d_loss_real));
  EXPECT_TRUE(std::isfinite(s.d_loss_fake));
  EXPECT_TRUE(std::isfinite(s.g_loss));
  EXPECT_GE(s.d_acc_real, 0.0);
  EXPECT_LE(s.d_acc_real, 1.0);
}

TEST_P(GanTraining, DiscriminatorLearnsToSeparateEarly) {
  const bool cs = GetParam();
  Rng rng(104);
  auto g = workload::make_dcgan_g_mnist(rng, 32);
  auto d = workload::make_dcgan_d_mnist(rng);
  Adam opt_g(g.params(), 1e-4f);  // slow G so D gets ahead
  Adam opt_d(d.params(), 5e-3f);
  GanTrainer gan(g, d, opt_g, opt_d, 32, cs);

  Rng data_rng(204);
  Tensor real = workload::make_gan_images(8, 1, 28, data_rng);
  GanStepStats s{};
  for (int i = 0; i < 8; ++i) s = gan.step(real, rng);
  // After a few steps, D should separate real from (still-bad) fake well
  // above chance.
  EXPECT_GT((s.d_acc_real + s.d_acc_fake) / 2.0, 0.6);
}

INSTANTIATE_TEST_SUITE_P(Sharing, GanTraining, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "cs" : "no_cs";
                         });

TEST(GanTrainer, SampleProducesImageBatch) {
  Rng rng(105);
  auto g = workload::make_dcgan_g_mnist(rng, 16);
  auto d = workload::make_dcgan_d_mnist(rng);
  Sgd opt_g(g.params(), 0.01f);
  Sgd opt_d(d.params(), 0.01f);
  GanTrainer gan(g, d, opt_g, opt_d, 16, false);
  const Tensor imgs = gan.sample(4, rng);
  EXPECT_EQ(imgs.shape(), Shape({4, 1, 28, 28}));
}

TEST(GanTrainer, GeneratorWeightsFrozenDuringDPhases) {
  // Construct a trainer whose G optimizer would move weights if stepped;
  // verify only the D update and the explicit G update change parameters.
  Rng rng(106);
  auto g = workload::make_dcgan_g_mnist(rng, 16);
  auto d = workload::make_dcgan_d_mnist(rng);
  Sgd opt_g(g.params(), 0.0f);  // zero LR: G must stay bitwise identical
  Sgd opt_d(d.params(), 0.01f);
  GanTrainer gan(g, d, opt_g, opt_d, 16, false);

  std::vector<float> before;
  for (const auto& p : g.params())
    for (std::size_t i = 0; i < p.value->numel(); ++i)
      before.push_back((*p.value)[i]);

  Rng data_rng(206);
  Tensor real = workload::make_gan_images(4, 1, 28, data_rng);
  gan.step(real, rng);

  std::size_t idx = 0;
  for (const auto& p : g.params())
    for (std::size_t i = 0; i < p.value->numel(); ++i)
      EXPECT_FLOAT_EQ((*p.value)[i], before[idx++]);
}

}  // namespace
}  // namespace reramdl::nn
