// Tests for the host-parallel execution engine (common/parallel.hpp) and the
// determinism contract of the kernels built on it: results must be
// bit-identical for RERAMDL_THREADS=1 vs RERAMDL_THREADS=8.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <vector>

#include "circuit/crossbar_grid.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "tensor/im2col.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace {

using namespace reramdl;

// Restores the ambient thread count when a test finishes.
struct ThreadCountGuard {
  ThreadCountGuard() = default;
  ~ThreadCountGuard() { parallel::set_thread_count(0); }
};

TEST(ParallelFor, EmptyRangeIsNoOp) {
  ThreadCountGuard guard;
  parallel::set_thread_count(4);
  std::atomic<int> calls{0};
  parallel::parallel_for(5, 5, 1, [&](std::size_t, std::size_t) { ++calls; });
  parallel::parallel_for(7, 3, 1, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, GrainLargerThanRangeIsOneChunk) {
  ThreadCountGuard guard;
  parallel::set_thread_count(4);
  std::atomic<int> calls{0};
  std::size_t seen_b = 99, seen_e = 99;
  parallel::parallel_for(2, 9, 100, [&](std::size_t b, std::size_t e) {
    ++calls;
    seen_b = b;
    seen_e = e;
  });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(seen_b, 2u);
  EXPECT_EQ(seen_e, 9u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadCountGuard guard;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    parallel::set_thread_count(threads);
    std::vector<std::atomic<int>> hits(1000);
    parallel::parallel_for(0, 1000, 7, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < hits.size(); ++i)
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
  }
}

TEST(ParallelFor, ZeroGrainTreatedAsOne) {
  ThreadCountGuard guard;
  parallel::set_thread_count(2);
  std::atomic<int> total{0};
  parallel::parallel_for(0, 10, 0, [&](std::size_t b, std::size_t e) {
    total += static_cast<int>(e - b);
  });
  EXPECT_EQ(total.load(), 10);
}

TEST(ParallelFor, NestedCallsRunWithoutDeadlock) {
  ThreadCountGuard guard;
  parallel::set_thread_count(8);
  std::atomic<int> inner_total{0};
  parallel::parallel_for(0, 16, 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      // The nested region must run inline on the worker.
      parallel::parallel_for(0, 8, 1, [&](std::size_t ib, std::size_t ie) {
        EXPECT_TRUE(parallel::in_parallel_region());
        inner_total += static_cast<int>(ie - ib);
      });
    }
  });
  EXPECT_EQ(inner_total.load(), 16 * 8);
}

TEST(ParallelFor, PropagatesBodyException) {
  ThreadCountGuard guard;
  parallel::set_thread_count(4);
  EXPECT_THROW(
      parallel::parallel_for(0, 100, 1,
                             [&](std::size_t b, std::size_t) {
                               if (b == 42) throw std::runtime_error("boom");
                             }),
      std::runtime_error);
  // Pool must remain usable after an exception.
  std::atomic<int> total{0};
  parallel::parallel_for(0, 10, 1, [&](std::size_t b, std::size_t e) {
    total += static_cast<int>(e - b);
  });
  EXPECT_EQ(total.load(), 10);
}

TEST(ParallelReduce, DeterministicAcrossThreadCounts) {
  ThreadCountGuard guard;
  Rng rng(123);
  std::vector<double> v(10007);
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);

  const auto map = [&](std::size_t b, std::size_t e) {
    return std::accumulate(v.begin() + static_cast<long>(b),
                           v.begin() + static_cast<long>(e), 0.0);
  };
  const auto join = [](double a, double b) { return a + b; };

  parallel::set_thread_count(1);
  const double r1 = parallel::parallel_reduce(0, v.size(), 64, 0.0, map, join);
  parallel::set_thread_count(8);
  const double r8 = parallel::parallel_reduce(0, v.size(), 64, 0.0, map, join);
  EXPECT_EQ(std::memcmp(&r1, &r8, sizeof(double)), 0);

  parallel::set_thread_count(3);
  const double r3 = parallel::parallel_reduce(0, v.size(), 64, 0.0, map, join);
  EXPECT_EQ(std::memcmp(&r1, &r3, sizeof(double)), 0);
}

TEST(ParallelReduce, EmptyRangeReturnsIdentity) {
  EXPECT_EQ(parallel::parallel_reduce(
                3, 3, 4, -7.5,
                [](std::size_t, std::size_t) { return 1.0; },
                [](double a, double b) { return a + b; }),
            -7.5);
}

bool bit_identical(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) return false;
  return std::memcmp(a.data(), b.data(), a.numel() * sizeof(float)) == 0;
}

TEST(ParallelDeterminism, MatmulBitIdenticalOneVsEightThreads) {
  ThreadCountGuard guard;
  Rng rng(7);
  const Tensor a = Tensor::uniform(Shape{173, 211}, rng, -1.0f, 1.0f);
  const Tensor b = Tensor::uniform(Shape{211, 157}, rng, -1.0f, 1.0f);
  const Tensor g = Tensor::uniform(Shape{173, 157}, rng, -1.0f, 1.0f);

  parallel::set_thread_count(1);
  const Tensor c1 = ops::matmul(a, b);
  const Tensor tb1 = ops::matmul_transposed_b(g, b);
  const Tensor ta1 = ops::matmul_transposed_a(a, g);

  parallel::set_thread_count(8);
  const Tensor c8 = ops::matmul(a, b);
  const Tensor tb8 = ops::matmul_transposed_b(g, b);
  const Tensor ta8 = ops::matmul_transposed_a(a, g);

  EXPECT_TRUE(bit_identical(c1, c8));
  EXPECT_TRUE(bit_identical(tb1, tb8));
  EXPECT_TRUE(bit_identical(ta1, ta8));
}

// Regression for the historical accumulation inconsistency: matmul used to
// sum partial products in float while the transposed variants summed in
// double. All three now accumulate in double, so on a shared random problem
// the three ways of computing the same product must agree to double-dot
// accuracy (they associate differently, so allow tiny rounding slack).
TEST(ParallelDeterminism, MatmulVariantsAgreeOnSharedProblem) {
  ThreadCountGuard guard;
  parallel::set_thread_count(4);
  Rng rng(99);
  const Tensor a = Tensor::uniform(Shape{96, 301}, rng, -2.0f, 2.0f);
  const Tensor b = Tensor::uniform(Shape{301, 88}, rng, -2.0f, 2.0f);

  // C = A*B three ways: directly, as A * (B^T)^T, and as (A^T)^T * B.
  const Tensor c = ops::matmul(a, b);
  const Tensor c_tb = ops::matmul_transposed_b(a, ops::transpose(b));
  const Tensor c_ta = ops::matmul_transposed_a(ops::transpose(a), b);

  ASSERT_EQ(c.shape(), c_tb.shape());
  ASSERT_EQ(c.shape(), c_ta.shape());
  for (std::size_t i = 0; i < c.numel(); ++i) {
    EXPECT_NEAR(c.data()[i], c_tb.data()[i], 1e-4f) << "at " << i;
    EXPECT_NEAR(c.data()[i], c_ta.data()[i], 1e-4f) << "at " << i;
  }
}

TEST(ParallelDeterminism, CrossbarGridMvmBitIdenticalOneVsEightThreads) {
  ThreadCountGuard guard;
  Rng rng(42);
  circuit::CrossbarConfig cfg;
  cfg.rows = 32;
  cfg.cols = 32;
  // 5x4 = 20 tiles with ragged edges.
  const Tensor w = Tensor::uniform(Shape{150, 120}, rng, -1.0f, 1.0f);
  std::vector<float> x(150);
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));

  const auto run = [&]() {
    circuit::CrossbarGrid grid(cfg);
    grid.program(w, 1.0);
    return grid.compute(x, 1.0);
  };

  parallel::set_thread_count(1);
  const std::vector<float> y1 = run();
  parallel::set_thread_count(8);
  const std::vector<float> y8 = run();

  ASSERT_EQ(y1.size(), y8.size());
  EXPECT_EQ(std::memcmp(y1.data(), y8.data(), y1.size() * sizeof(float)), 0);
}

TEST(ParallelDeterminism, Im2colBitIdenticalOneVsEightThreads) {
  ThreadCountGuard guard;
  Rng rng(5);
  const Tensor x = Tensor::uniform(Shape{4, 3, 17, 17}, rng, -1.0f, 1.0f);
  const ConvGeometry g{3, 17, 17, 3, 3, 2, 1};

  parallel::set_thread_count(1);
  const Tensor cols1 = im2col(x, g);
  const Tensor back1 = col2im(cols1, g, 4);
  parallel::set_thread_count(8);
  const Tensor cols8 = im2col(x, g);
  const Tensor back8 = col2im(cols8, g, 4);

  EXPECT_TRUE(bit_identical(cols1, cols8));
  EXPECT_TRUE(bit_identical(back1, back8));
}

}  // namespace
