#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <set>
#include <sstream>

#include "common/check.hpp"
#include "common/env.hpp"
#include "common/rng.hpp"
#include "common/scratch.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace reramdl {
namespace {

TEST(Check, PassingConditionDoesNotThrow) {
  EXPECT_NO_THROW(RERAMDL_CHECK(1 + 1 == 2));
}

TEST(Check, FailingConditionThrowsCheckError) {
  EXPECT_THROW(RERAMDL_CHECK(false), CheckError);
}

TEST(Check, ComparisonMacroReportsOperands) {
  try {
    RERAMDL_CHECK_EQ(3, 4);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("lhs=3"), std::string::npos);
    EXPECT_NE(what.find("rhs=4"), std::string::npos);
  }
}

TEST(Check, OrderedComparisons) {
  EXPECT_NO_THROW(RERAMDL_CHECK_LT(1, 2));
  EXPECT_NO_THROW(RERAMDL_CHECK_LE(2, 2));
  EXPECT_NO_THROW(RERAMDL_CHECK_GT(3, 2));
  EXPECT_NO_THROW(RERAMDL_CHECK_GE(2, 2));
  EXPECT_THROW(RERAMDL_CHECK_LT(2, 2), CheckError);
  EXPECT_THROW(RERAMDL_CHECK_GT(2, 2), CheckError);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanApproximatesHalf) {
  Rng rng(11);
  RunningStat s;
  for (int i = 0; i < 100000; ++i) s.add(rng.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(13);
  RunningStat s;
  for (int i = 0; i < 100000; ++i) s.add(rng.normal(2.0, 3.0));
  EXPECT_NEAR(s.mean(), 2.0, 0.05);
  EXPECT_NEAR(s.stddev(), 3.0, 0.05);
}

TEST(Rng, LognormalHasUnitMean) {
  Rng rng(17);
  RunningStat s;
  for (int i = 0; i < 200000; ++i) s.add(rng.lognormal_unit_mean(0.3));
  EXPECT_NEAR(s.mean(), 1.0, 0.01);
}

TEST(Rng, LognormalIsPositive) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal_unit_mean(0.5), 0.0);
}

TEST(Rng, BernoulliRateMatches) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(29);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_index(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(31);
  Rng b = a.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, ShuffledIndicesIsPermutation) {
  Rng rng(37);
  const auto idx = shuffled_indices(100, rng);
  std::set<std::size_t> s(idx.begin(), idx.end());
  EXPECT_EQ(s.size(), 100u);
  EXPECT_EQ(*s.begin(), 0u);
  EXPECT_EQ(*s.rbegin(), 99u);
}

TEST(RunningStat, MeanVarianceMinMax) {
  RunningStat s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.variance(), 1.25);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(RunningStat, EmptyThrows) {
  RunningStat s;
  EXPECT_THROW(s.mean(), CheckError);
  EXPECT_THROW(s.min(), CheckError);
}

TEST(Stats, GeomeanOfConstantIsConstant) {
  EXPECT_NEAR(geomean({5.0, 5.0, 5.0}), 5.0, 1e-12);
}

TEST(Stats, GeomeanKnownValue) {
  EXPECT_NEAR(geomean({1.0, 8.0}), std::sqrt(8.0), 1e-12);
}

TEST(Stats, GeomeanRejectsNonPositive) {
  EXPECT_THROW(geomean({1.0, 0.0}), CheckError);
  EXPECT_THROW(geomean({}), CheckError);
}

TEST(Stats, RmseAndMaxAbsDiff) {
  const std::vector<float> a{1.0f, 2.0f, 3.0f};
  const std::vector<float> b{1.0f, 2.0f, 7.0f};
  EXPECT_NEAR(rmse(a, b), std::sqrt(16.0 / 3.0), 1e-6);
  EXPECT_NEAR(max_abs_diff(a, b), 4.0, 1e-6);
  EXPECT_THROW(rmse(a, {1.0f}), CheckError);
}

TEST(Table, AlignsColumnsAndSeparators) {
  TablePrinter t({"name", "value"});
  t.add_row({"speedup", "42.45x"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("42.45x"), std::string::npos);
  EXPECT_NE(s.find("+--"), std::string::npos);
}

TEST(Table, RowArityChecked) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
}

TEST(Table, FormatsNumbers) {
  EXPECT_EQ(TablePrinter::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::fmt_times(42.449, 2), "42.45x");
}

TEST(Units, PowerFromEnergyAndTime) {
  // 1000 pJ over 1000 ns = 1 mW.
  EXPECT_NEAR(units::watts(1000.0, 1000.0), 1e-3, 1e-15);
}

TEST(Scratch, ReusesBufferAfterRelease) {
  const double* p = nullptr;
  {
    scratch::Buffer<double> a(128);
    p = a.data();
  }
  // Same thread, same or smaller size: the freed buffer comes back without
  // a reallocation.
  scratch::Buffer<double> b(64);
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(b.size(), 64u);
}

TEST(Scratch, NestedCheckoutsAreDistinct) {
  scratch::Buffer<int> a(16);
  scratch::Buffer<int> b(16);
  EXPECT_NE(a.data(), b.data());
  for (std::size_t i = 0; i < 16; ++i) {
    a[i] = static_cast<int>(i);
    b[i] = static_cast<int>(100 + i);
  }
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(a[i], static_cast<int>(i));
    EXPECT_EQ(b[i], static_cast<int>(100 + i));
  }
}

TEST(Scratch, GrowsWhenCheckedOutLarger) {
  { scratch::Buffer<float> small(8); }
  scratch::Buffer<float> big(1024);
  EXPECT_EQ(big.size(), 1024u);
  big[1023] = 1.5f;
  EXPECT_EQ(big[1023], 1.5f);
}

// The env helpers are what every RERAMDL_* knob parses through; garbage must
// fall back to the default rather than being silently coerced. setenv is
// safe here: gtest runs tests single-threaded within a binary.
TEST(Env, IntParsesValidRejectsGarbageAndRange) {
  setenv("RERAMDL_TEST_INT", "42", 1);
  EXPECT_EQ(env::env_int("RERAMDL_TEST_INT", 7), 42);
  setenv("RERAMDL_TEST_INT", "8x", 1);  // partial parse -> fallback
  EXPECT_EQ(env::env_int("RERAMDL_TEST_INT", 7), 7);
  setenv("RERAMDL_TEST_INT", "99", 1);  // out of [0, 64] -> fallback
  EXPECT_EQ(env::env_int("RERAMDL_TEST_INT", 7, 0, 64), 7);
  setenv("RERAMDL_TEST_INT", "", 1);  // empty == unset
  EXPECT_EQ(env::env_int("RERAMDL_TEST_INT", 7), 7);
  unsetenv("RERAMDL_TEST_INT");
  EXPECT_EQ(env::env_int("RERAMDL_TEST_INT", 7), 7);
}

TEST(Env, DoubleParsesValidRejectsGarbageAndRange) {
  setenv("RERAMDL_TEST_DOUBLE", "0.75", 1);
  EXPECT_DOUBLE_EQ(env::env_double("RERAMDL_TEST_DOUBLE", 0.1), 0.75);
  setenv("RERAMDL_TEST_DOUBLE", "2.5e-3", 1);  // scientific notation parses
  EXPECT_DOUBLE_EQ(env::env_double("RERAMDL_TEST_DOUBLE", 0.1), 2.5e-3);
  setenv("RERAMDL_TEST_DOUBLE", "0.5x", 1);  // partial parse -> fallback
  EXPECT_DOUBLE_EQ(env::env_double("RERAMDL_TEST_DOUBLE", 0.1), 0.1);
  setenv("RERAMDL_TEST_DOUBLE", "nan", 1);  // NaN is rejected, not coerced
  EXPECT_DOUBLE_EQ(env::env_double("RERAMDL_TEST_DOUBLE", 0.1), 0.1);
  setenv("RERAMDL_TEST_DOUBLE", "1.5", 1);  // out of [0, 1] -> fallback
  EXPECT_DOUBLE_EQ(env::env_double("RERAMDL_TEST_DOUBLE", 0.1, 0.0, 1.0), 0.1);
  setenv("RERAMDL_TEST_DOUBLE", "", 1);  // empty == unset
  EXPECT_DOUBLE_EQ(env::env_double("RERAMDL_TEST_DOUBLE", 0.1), 0.1);
  unsetenv("RERAMDL_TEST_DOUBLE");
  EXPECT_DOUBLE_EQ(env::env_double("RERAMDL_TEST_DOUBLE", 0.1), 0.1);
}

TEST(Env, FlagAcceptsDocumentedSpellingsOnly) {
  for (const char* v : {"1", "true", "on"}) {
    setenv("RERAMDL_TEST_FLAG", v, 1);
    EXPECT_TRUE(env::env_flag("RERAMDL_TEST_FLAG", false)) << v;
  }
  for (const char* v : {"0", "false", "off"}) {
    setenv("RERAMDL_TEST_FLAG", v, 1);
    EXPECT_FALSE(env::env_flag("RERAMDL_TEST_FLAG", true)) << v;
  }
  setenv("RERAMDL_TEST_FLAG", "yes", 1);  // not a documented spelling
  EXPECT_TRUE(env::env_flag("RERAMDL_TEST_FLAG", true));
  EXPECT_FALSE(env::env_flag("RERAMDL_TEST_FLAG", false));
  unsetenv("RERAMDL_TEST_FLAG");
  EXPECT_TRUE(env::env_flag("RERAMDL_TEST_FLAG", true));
}

TEST(Env, PathReturnsVerbatimOrEmpty) {
  unsetenv("RERAMDL_TEST_PATH");
  EXPECT_EQ(env::env_path("RERAMDL_TEST_PATH"), "");
  setenv("RERAMDL_TEST_PATH", "/tmp/trace.json", 1);
  EXPECT_EQ(env::env_path("RERAMDL_TEST_PATH"), "/tmp/trace.json");
  unsetenv("RERAMDL_TEST_PATH");
}

}  // namespace
}  // namespace reramdl
