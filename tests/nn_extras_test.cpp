#include <gtest/gtest.h>

#include <cmath>

#include "nn/dropout.hpp"
#include "nn/gan.hpp"
#include "workload/datasets.hpp"
#include "workload/model_zoo.hpp"

namespace reramdl::nn {
namespace {

// ---- Dropout ----------------------------------------------------------------

TEST(Dropout, EvalModeIsIdentity) {
  Rng rng(1);
  Dropout drop(0.5f, rng);
  const Tensor x = Tensor::normal(Shape{4, 8}, rng, 0.0f, 1.0f);
  const Tensor y = drop.forward(x, /*train=*/false);
  for (std::size_t i = 0; i < x.numel(); ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Dropout, DropRateObserved) {
  Rng rng(2);
  Dropout drop(0.3f, rng);
  const Tensor x = Tensor::full(Shape{100, 100}, 1.0f);
  const Tensor y = drop.forward(x, true);
  std::size_t zeros = 0;
  for (std::size_t i = 0; i < y.numel(); ++i)
    if (y[i] == 0.0f) ++zeros;
  EXPECT_NEAR(static_cast<double>(zeros) / y.numel(), 0.3, 0.02);
}

TEST(Dropout, InvertedScalingPreservesExpectation) {
  Rng rng(3);
  Dropout drop(0.4f, rng);
  const Tensor x = Tensor::full(Shape{200, 200}, 1.0f);
  const Tensor y = drop.forward(x, true);
  double mean = 0.0;
  for (std::size_t i = 0; i < y.numel(); ++i) mean += y[i];
  mean /= static_cast<double>(y.numel());
  EXPECT_NEAR(mean, 1.0, 0.02);
}

TEST(Dropout, BackwardUsesSameMask) {
  Rng rng(4);
  Dropout drop(0.5f, rng);
  const Tensor x = Tensor::full(Shape{10, 10}, 1.0f);
  const Tensor y = drop.forward(x, true);
  const Tensor g = Tensor::full(Shape{10, 10}, 1.0f);
  const Tensor gx = drop.backward(g);
  for (std::size_t i = 0; i < y.numel(); ++i) {
    if (y[i] == 0.0f) EXPECT_FLOAT_EQ(gx[i], 0.0f);
    else EXPECT_FLOAT_EQ(gx[i], 2.0f);  // 1 / (1 - 0.5)
  }
}

TEST(Dropout, ZeroRateIsIdentityInTraining) {
  Rng rng(5);
  Dropout drop(0.0f, rng);
  const Tensor x = Tensor::normal(Shape{3, 3}, rng, 0.0f, 1.0f);
  const Tensor y = drop.forward(x, true);
  for (std::size_t i = 0; i < x.numel(); ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

// ---- Softmax ------------------------------------------------------------------

TEST(Softmax, RowsSumToOne) {
  Rng rng(6);
  Softmax sm;
  const Tensor x = Tensor::normal(Shape{5, 7}, rng, 0.0f, 3.0f);
  const Tensor y = sm.forward(x, false);
  for (std::size_t i = 0; i < 5; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < 7; ++j) {
      EXPECT_GT(y.at(i, j), 0.0f);
      s += y.at(i, j);
    }
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
}

TEST(Softmax, StableForHugeLogits) {
  Softmax sm;
  Tensor x(Shape{1, 3});
  x[0] = 1000.0f;
  x[1] = 999.0f;
  x[2] = -1000.0f;
  const Tensor y = sm.forward(x, false);
  EXPECT_TRUE(std::isfinite(y[0]));
  EXPECT_GT(y[0], y[1]);
  EXPECT_NEAR(y[2], 0.0f, 1e-6);
}

TEST(Softmax, GradientMatchesNumeric) {
  Rng rng(7);
  Softmax sm;
  Tensor x = Tensor::normal(Shape{2, 4}, rng, 0.0f, 1.0f);
  const Tensor y = sm.forward(x, true);
  const Tensor g = Tensor::normal(y.shape(), rng, 0.0f, 1.0f);
  const Tensor gx = sm.backward(g);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < x.numel(); ++i) {
    const float orig = x[i];
    auto objective = [&]() {
      const Tensor yy = sm.forward(x, false);
      double acc = 0.0;
      for (std::size_t j = 0; j < yy.numel(); ++j)
        acc += static_cast<double>(yy[j]) * g[j];
      return acc;
    };
    x[i] = orig + eps;
    const double lp = objective();
    x[i] = orig - eps;
    const double lm = objective();
    x[i] = orig;
    EXPECT_NEAR(gx[i], (lp - lm) / (2.0 * eps), 2e-3);
  }
}

// ---- Wasserstein GAN -----------------------------------------------------------

TEST(Wgan, StepsRunAndLossesFinite) {
  Rng rng(8);
  auto g = workload::make_dcgan_g_mnist(rng, 16);
  auto d = workload::make_dcgan_d_mnist(rng);
  Adam opt_g(g.params(), 1e-3f);
  Adam opt_d(d.params(), 1e-3f);
  GanTrainer gan(g, d, opt_g, opt_d, 16, /*cs=*/true,
                 GanObjective::kWasserstein, 0.05f);
  EXPECT_EQ(gan.objective(), GanObjective::kWasserstein);

  Rng data_rng(9);
  const Tensor real = workload::make_gan_images(4, 1, 28, data_rng);
  for (int i = 0; i < 3; ++i) {
    const auto s = gan.step(real, rng);
    EXPECT_TRUE(std::isfinite(s.d_loss_real));
    EXPECT_TRUE(std::isfinite(s.d_loss_fake));
    EXPECT_TRUE(std::isfinite(s.g_loss));
  }
}

TEST(Wgan, CriticWeightsStayClipped) {
  Rng rng(10);
  auto g = workload::make_dcgan_g_mnist(rng, 16);
  auto d = workload::make_dcgan_d_mnist(rng);
  Adam opt_g(g.params(), 1e-3f);
  Adam opt_d(d.params(), 1e-2f);
  const float clip = 0.02f;
  GanTrainer gan(g, d, opt_g, opt_d, 16, true, GanObjective::kWasserstein,
                 clip);
  Rng data_rng(11);
  const Tensor real = workload::make_gan_images(4, 1, 28, data_rng);
  gan.step(real, rng);
  for (auto& p : d.params())
    for (std::size_t i = 0; i < p.value->numel(); ++i) {
      EXPECT_LE((*p.value)[i], clip);
      EXPECT_GE((*p.value)[i], -clip);
    }
}

TEST(Wgan, GeneratorWeightsUnclipped) {
  Rng rng(12);
  auto g = workload::make_dcgan_g_mnist(rng, 16);
  auto d = workload::make_dcgan_d_mnist(rng);
  Adam opt_g(g.params(), 1e-3f);
  Adam opt_d(d.params(), 1e-3f);
  GanTrainer gan(g, d, opt_g, opt_d, 16, true, GanObjective::kWasserstein,
                 0.001f);
  Rng data_rng(13);
  const Tensor real = workload::make_gan_images(4, 1, 28, data_rng);
  gan.step(real, rng);
  float g_absmax = 0.0f;
  for (auto& p : g.params())
    for (std::size_t i = 0; i < p.value->numel(); ++i)
      g_absmax = std::max(g_absmax, std::abs((*p.value)[i]));
  EXPECT_GT(g_absmax, 0.001f);  // He-init weights exceed the tiny clip bound
}

TEST(Wgan, CriticLossIsNegatedMeanPair) {
  // With a zero-output critic, both phase losses vanish by symmetry.
  Rng rng(14);
  auto g = workload::make_dcgan_g_mnist(rng, 16);
  auto d = workload::make_dcgan_d_mnist(rng);
  for (auto& p : d.params()) p.value->zero();
  Sgd opt_g(g.params(), 0.0f);
  Sgd opt_d(d.params(), 0.0f);
  GanTrainer gan(g, d, opt_g, opt_d, 16, true, GanObjective::kWasserstein,
                 0.01f);
  Rng data_rng(15);
  const Tensor real = workload::make_gan_images(4, 1, 28, data_rng);
  const auto s = gan.step(real, rng);
  EXPECT_NEAR(s.d_loss_real, 0.0f, 1e-6f);
  EXPECT_NEAR(s.d_loss_fake, 0.0f, 1e-6f);
}

}  // namespace
}  // namespace reramdl::nn
