#include <gtest/gtest.h>

#include "common/check.hpp"
#include "mapping/kernel_flatten.hpp"
#include "mapping/planner.hpp"
#include "nn/conv2d.hpp"
#include "tensor/im2col.hpp"
#include "tensor/ops.hpp"
#include "workload/model_zoo.hpp"

namespace reramdl::mapping {
namespace {

TEST(KernelFlatten, RoundTrip) {
  Rng rng(1);
  const Tensor k = Tensor::normal(Shape{5, 3, 2, 2}, rng, 0.0f, 1.0f);
  const Tensor m = flatten_kernel(k);
  EXPECT_EQ(m.shape(), Shape({3 * 2 * 2, 5}));
  const Tensor back = unflatten_kernel(m, 3, 2, 2);
  ASSERT_EQ(back.shape(), k.shape());
  for (std::size_t i = 0; i < k.numel(); ++i) EXPECT_FLOAT_EQ(back[i], k[i]);
}

TEST(KernelFlatten, OrderingMatchesIm2col) {
  // Convolution through flattened kernel x im2col patches must equal a
  // direct convolution — proving the crossbar column layout (Fig. 4) and
  // the patch layout agree.
  Rng rng(2);
  const std::size_t in_c = 2, h = 5, w = 5, out_c = 3, k = 3;
  const Tensor kernel4d = Tensor::normal(Shape{out_c, in_c, k, k}, rng, 0.0f, 1.0f);
  const Tensor x = Tensor::normal(Shape{1, in_c, h, w}, rng, 0.0f, 1.0f);

  const ConvGeometry g{in_c, h, w, k, k, 1, 0};
  const Tensor cols = im2col(x, g);
  const Tensor y_mat = ops::matmul(cols, flatten_kernel(kernel4d));

  // Direct convolution reference.
  for (std::size_t o = 0; o < out_c; ++o) {
    for (std::size_t oy = 0; oy < g.out_h(); ++oy) {
      for (std::size_t ox = 0; ox < g.out_w(); ++ox) {
        double ref = 0.0;
        for (std::size_t c = 0; c < in_c; ++c)
          for (std::size_t ky = 0; ky < k; ++ky)
            for (std::size_t kx = 0; kx < k; ++kx)
              ref += static_cast<double>(kernel4d.at(o, c, ky, kx)) *
                     x.at(0, c, oy + ky, ox + kx);
        EXPECT_NEAR(y_mat.at(oy * g.out_w() + ox, o), ref, 1e-3);
      }
    }
  }
}

nn::LayerSpec fig4_conv() {
  // The paper's running example: 114x114x128 -> 112x112x256 with 3x3
  // kernels.
  nn::NetworkSpecBuilder b("fig4", 128, 114, 114);
  b.conv(256, 3);
  return std::move(b).build().layers[0];
}

TEST(LayerMapping, Fig4NaiveScheme) {
  const MappingConfig cfg{128, 128};
  const LayerMapping m = map_layer(fig4_conv(), cfg, 1);
  EXPECT_EQ(m.spec.matrix_rows(), 1152u);
  EXPECT_EQ(m.spec.matrix_cols(), 256u);
  EXPECT_EQ(m.row_tiles, 9u);
  EXPECT_EQ(m.col_tiles, 2u);
  EXPECT_EQ(m.arrays(), 18u);
  // "the given example will take 12544 cycles to get all outputs"
  EXPECT_EQ(m.steps_per_sample(), 12544u);
}

TEST(LayerMapping, Fig4BalancedSchemeX256) {
  // "Fig. 4 is an example with X = 256."
  const MappingConfig cfg{128, 128};
  const LayerMapping m = map_layer(fig4_conv(), cfg, 256);
  EXPECT_EQ(m.arrays(), 18u * 256u);
  EXPECT_EQ(m.steps_per_sample(), 49u);  // ceil(12544 / 256)
}

TEST(LayerMapping, FullReplicationIsOneCycle) {
  // "If X = 12544, the results of a layer could be generated in just one
  // cycle but the hardware cost is excessive."
  const MappingConfig cfg{128, 128};
  const LayerMapping m = map_layer(fig4_conv(), cfg, 12544);
  EXPECT_EQ(m.steps_per_sample(), 1u);
  EXPECT_EQ(m.arrays(), 18u * 12544u);
}

TEST(LayerMapping, ReplicationBeyondVectorsThrows) {
  const MappingConfig cfg{128, 128};
  EXPECT_THROW(map_layer(fig4_conv(), cfg, 12545), CheckError);
}

TEST(LayerMapping, DenseLayerSingleVector) {
  nn::NetworkSpecBuilder b("fc", 784, 1, 1);
  b.dense(512);
  const auto spec = std::move(b).build().layers[0];
  const LayerMapping m = map_layer(spec, {128, 128}, 1);
  EXPECT_EQ(m.row_tiles, 7u);  // ceil(784/128)
  EXPECT_EQ(m.col_tiles, 4u);
  EXPECT_EQ(m.steps_per_sample(), 1u);
}

TEST(LayerMapping, UnweightedLayerRejected) {
  nn::NetworkSpecBuilder b("pool", 8, 8, 8);
  b.pool(2);
  EXPECT_THROW(map_layer(std::move(b).build().layers[0], {128, 128}, 1),
               CheckError);
}

TEST(Planner, NaivePlanUsesNoReplication) {
  const auto net = workload::spec_lenet5();
  const NetworkMapping m = plan_naive(net, {128, 128});
  EXPECT_EQ(m.layers.size(), net.weighted_layers());
  for (const auto& l : m.layers) EXPECT_EQ(l.replication, 1u);
}

TEST(Planner, BalancedPlanMeetsTargetSteps) {
  const auto net = workload::spec_lenet5();
  for (const std::size_t target : {1u, 7u, 50u, 200u}) {
    const NetworkMapping m = plan_balanced(net, {128, 128}, target);
    EXPECT_LE(m.stage_steps(), target);
  }
}

TEST(Planner, BalancedArraysDecreaseWithTarget) {
  const auto net = workload::spec_lenet5();
  std::size_t prev = plan_balanced(net, {128, 128}, 1).total_arrays();
  for (const std::size_t target : {2u, 8u, 64u, 1024u}) {
    const std::size_t arrays = plan_balanced(net, {128, 128}, target).total_arrays();
    EXPECT_LE(arrays, prev);
    prev = arrays;
  }
}

TEST(Planner, BudgetPlanRespectsBudget) {
  const auto net = workload::spec_lenet5();
  const std::size_t naive_arrays = plan_naive(net, {128, 128}).total_arrays();
  for (const std::size_t budget : {naive_arrays, naive_arrays * 4, naive_arrays * 64}) {
    const NetworkMapping m = plan_under_budget(net, {128, 128}, budget);
    EXPECT_LE(m.total_arrays(), budget);
  }
}

TEST(Planner, BiggerBudgetNeverSlower) {
  const auto net = workload::spec_alexnet();
  std::size_t prev_steps =
      plan_under_budget(net, {128, 128}, 512).stage_steps();
  for (const std::size_t budget : {2048u, 8192u, 32768u}) {
    const std::size_t steps = plan_under_budget(net, {128, 128}, budget).stage_steps();
    EXPECT_LE(steps, prev_steps);
    prev_steps = steps;
  }
}

TEST(Planner, InfeasibleBudgetFallsBackToNaive) {
  const auto net = workload::spec_alexnet();
  const NetworkMapping m = plan_under_budget(net, {128, 128}, 1);
  for (const auto& l : m.layers) EXPECT_EQ(l.replication, 1u);
}

TEST(Planner, FullBudgetReachesSingleStep) {
  const auto net = workload::spec_lenet5();
  // A generous budget should drive every stage to one step per sample.
  const NetworkMapping m = plan_under_budget(net, {128, 128}, 1u << 20);
  EXPECT_EQ(m.stage_steps(), 1u);
}

TEST(NetworkMapping, TotalsAggregate) {
  const auto net = workload::spec_mlp_mnist_a();
  const NetworkMapping m = plan_naive(net, {128, 128});
  std::size_t arrays = 0, cells = 0;
  for (const auto& l : m.layers) {
    arrays += l.arrays();
    cells += l.weight_cells();
  }
  EXPECT_EQ(m.total_arrays(), arrays);
  EXPECT_EQ(m.total_weight_cells(), cells);
  EXPECT_EQ(cells, net.total_weights());  // X = 1: one copy of every weight
}

TEST(NetworkMapping, ArraySizeTradeoff) {
  // Smaller arrays need more tiles for the same network.
  const auto net = workload::spec_mlp_mnist_b();
  const std::size_t big = plan_naive(net, {256, 256}).total_arrays();
  const std::size_t small = plan_naive(net, {64, 64}).total_arrays();
  EXPECT_GT(small, big);
}

TEST(Planner, MaxLayerArraysClampsReplication) {
  const auto net = workload::spec_vgg_a();
  const auto unbounded = plan_under_budget(net, {128, 128}, 16384);
  const std::size_t cap = 256;  // one pipelayer bank
  const auto bounded = plan_under_budget(net, {128, 128}, 16384, cap);
  ASSERT_EQ(bounded.layers.size(), unbounded.layers.size());
  std::size_t unbounded_max = 0;
  for (const auto& l : unbounded.layers)
    unbounded_max = std::max(unbounded_max, l.arrays());
  ASSERT_GT(unbounded_max, cap);  // the knob has something to clamp
  for (const auto& l : bounded.layers) {
    // Clamped to the cap unless a single replica already exceeds it (then
    // the layer keeps X = 1).
    if (l.arrays() > cap) EXPECT_EQ(l.replication, 1u);
  }
  EXPECT_LE(bounded.total_arrays(), unbounded.total_arrays());
}

}  // namespace
}  // namespace reramdl::mapping
