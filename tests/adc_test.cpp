#include <gtest/gtest.h>

#include "circuit/adc.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"

namespace reramdl::circuit {
namespace {

TEST(SarAdc, FullScaleMapsToMaxCode) {
  SarAdc adc(AdcParams{});
  EXPECT_EQ(adc.convert(1.0, 1.0), adc.max_code());
  EXPECT_EQ(adc.convert(0.0, 1.0), 0u);
}

TEST(SarAdc, CodesMonotoneInInput) {
  SarAdc adc(AdcParams{});
  std::uint32_t prev = 0;
  for (int i = 0; i <= 100; ++i) {
    const std::uint32_t code = adc.convert(i / 100.0, 1.0);
    EXPECT_GE(code, prev);
    prev = code;
  }
}

TEST(SarAdc, ReconstructionWithinHalfLsb) {
  AdcParams p;
  p.bits = 8;
  SarAdc adc(p);
  Rng rng(1);
  const double lsb = 1.0 / 255.0;
  for (int i = 0; i < 500; ++i) {
    const double v = rng.uniform();
    const double back = adc.reconstruct(adc.convert(v, 1.0), 1.0);
    EXPECT_NEAR(back, v, lsb / 2 + 1e-12);
  }
}

TEST(SarAdc, OutOfRangeInputsClamp) {
  SarAdc adc(AdcParams{});
  EXPECT_EQ(adc.convert(5.0, 1.0), adc.max_code());
  EXPECT_EQ(adc.convert(-5.0, 1.0), 0u);
}

TEST(SarAdc, EnergyScalesWithConversions) {
  AdcParams p;
  SarAdc adc(p);
  for (int i = 0; i < 10; ++i) adc.convert(0.5, 1.0);
  EXPECT_EQ(adc.conversions(), 10u);
  EXPECT_DOUBLE_EQ(adc.energy_pj(), 10.0 * p.energy_per_conversion_pj);
}

TEST(SarAdc, InvalidConfigThrows) {
  AdcParams p;
  p.bits = 0;
  EXPECT_THROW(SarAdc{p}, CheckError);
}

class SchemeComparison : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SchemeComparison, BothSchemesHavePositiveCosts) {
  const std::size_t bits = GetParam();
  const device::CellParams cell;
  const auto spike = spike_scheme_costs(128, 128, bits, cell);
  const auto adc = adc_scheme_costs(128, 128, bits, AdcParams{}, DacParams{});
  EXPECT_GT(spike.energy_pj, 0.0);
  EXPECT_GT(spike.latency_ns, 0.0);
  EXPECT_GT(spike.area_mm2, 0.0);
  EXPECT_GT(adc.energy_pj, 0.0);
  EXPECT_GT(adc.latency_ns, 0.0);
  EXPECT_GT(adc.area_mm2, 0.0);
}

TEST_P(SchemeComparison, SpikeSchemeSavesAreaAndEnergy) {
  // The paper's rationale for the weighted spike coding: "to further reduce
  // the area and energy overhead" of ADC-based readout.
  const std::size_t bits = GetParam();
  const device::CellParams cell;
  const auto spike = spike_scheme_costs(128, 128, bits, cell);
  const auto adc = adc_scheme_costs(128, 128, bits, AdcParams{}, DacParams{});
  EXPECT_LT(spike.area_mm2, adc.area_mm2);
  EXPECT_LT(spike.energy_pj, adc.energy_pj);
}

INSTANTIATE_TEST_SUITE_P(InputBits, SchemeComparison,
                         ::testing::Values(4, 8, 16));

TEST(SchemeComparison, SpikeLatencyGrowsLinearlyInBits) {
  const device::CellParams cell;
  const auto b4 = spike_scheme_costs(128, 128, 4, cell);
  const auto b16 = spike_scheme_costs(128, 128, 16, cell);
  EXPECT_NEAR(b16.latency_ns / b4.latency_ns, 4.0, 1e-9);
}

TEST(SchemeComparison, AdcSharingReducesArea) {
  const auto shared = adc_scheme_costs(128, 128, 8, AdcParams{}, DacParams{}, 16);
  const auto dedicated = adc_scheme_costs(128, 128, 8, AdcParams{}, DacParams{}, 1);
  EXPECT_LT(shared.area_mm2, dedicated.area_mm2);
  // ...but time-multiplexing raises conversion latency.
  EXPECT_GT(shared.latency_ns, dedicated.latency_ns);
}

}  // namespace
}  // namespace reramdl::circuit
