// End-to-end integration: live networks trained with the NN substrate, then
// mapped, costed, and functionally executed through crossbars — the complete
// flow the paper's accelerators implement.
#include <gtest/gtest.h>

#include <cmath>

#include "arch/controller.hpp"
#include "baseline/gpu_model.hpp"
#include "core/comparison.hpp"
#include "core/functional.hpp"
#include "core/pipelayer.hpp"
#include "core/regan.hpp"
#include "nn/gan.hpp"
#include "nn/trainer.hpp"
#include "workload/datasets.hpp"
#include "workload/model_zoo.hpp"

namespace reramdl {
namespace {

TEST(Integration, TrainThenInferThroughCrossbars) {
  // 1. Train an MLP in float.
  Rng rng(500);
  auto net = workload::make_mlp_mnist(rng);
  nn::Sgd opt(net.params(), 0.05f, 0.9f);
  nn::Trainer trainer(net, opt);
  Rng data_rng(501);
  const auto train = workload::make_mnist_like(384, data_rng);
  const auto test = workload::make_mnist_like(96, data_rng);
  for (int epoch = 0; epoch < 4; ++epoch)
    trainer.train_epoch(train.images, train.labels, 32, rng);
  const double float_acc =
      trainer.evaluate(test.images, test.labels, 32).accuracy;
  ASSERT_GT(float_acc, 0.8);

  // 2. Deploy onto crossbars (PipeLayer testing mode) and re-evaluate.
  core::AcceleratorConfig cfg;
  cfg.chip = arch::pipelayer_chip();
  core::CrossbarExecutor exec(net, cfg);
  const double xbar_acc =
      trainer.evaluate(test.images, test.labels, 32).accuracy;
  // Quantized inference within a few points of float accuracy.
  EXPECT_GT(xbar_acc, float_acc - 0.05);
}

TEST(Integration, TrainedWeightsSurviveUpdateReprogramCycle) {
  // Simulates PipeLayer training: weights update digitally each batch, the
  // arrays are reprogrammed, and inference continues on the crossbars.
  Rng rng(502);
  auto net = workload::make_mlp_mnist(rng);
  nn::Sgd opt(net.params(), 0.05f, 0.9f);
  nn::Trainer trainer(net, opt);
  Rng data_rng(503);
  const auto train = workload::make_mnist_like(256, data_rng);

  core::AcceleratorConfig cfg;
  cfg.chip = arch::pipelayer_chip();
  core::CrossbarExecutor exec(net, cfg);

  // Forward passes run on crossbars during training too; the update cycle at
  // each batch end reprograms the arrays with the new weights.
  const std::size_t batch = 32;
  double first_loss = 0.0, last_loss = 0.0;
  for (int epoch = 0; epoch < 3; ++epoch) {
    for (std::size_t b = 0; b + batch <= 256; b += batch) {
      const Tensor xb = nn::slice_batch(train.images, b, batch);
      const std::vector<std::size_t> yb(
          train.labels.begin() + static_cast<long>(b),
          train.labels.begin() + static_cast<long>(b + batch));
      opt.zero_grad();
      const Tensor logits = net.forward(xb, true);
      const nn::LossResult r = nn::softmax_cross_entropy(logits, yb);
      net.backward(r.grad);
      opt.step();
      exec.reprogram();  // the paper's weight-update cycle
      if (epoch == 0 && b == 0) first_loss = r.loss;
      last_loss = r.loss;
    }
  }
  EXPECT_LT(last_loss, first_loss);
  EXPECT_LT(last_loss, std::log(10.0));
}

TEST(Integration, GanTrainsWithCrossbarForwardPasses) {
  Rng rng(504);
  auto g = workload::make_dcgan_g_mnist(rng, 16);
  auto d = workload::make_dcgan_d_mnist(rng);
  nn::Adam opt_g(g.params(), 2e-3f);
  nn::Adam opt_d(d.params(), 2e-3f);
  nn::GanTrainer gan(g, d, opt_g, opt_d, 16, /*computation_sharing=*/true);

  core::AcceleratorConfig cfg;
  cfg.chip = arch::regan_chip();
  core::CrossbarExecutor exec_g(g, cfg);
  core::CrossbarExecutor exec_d(d, cfg);

  Rng data_rng(505);
  const Tensor real = workload::make_gan_images(4, 1, 28, data_rng);
  for (int i = 0; i < 2; ++i) {
    const auto s = gan.step(real, rng);
    EXPECT_TRUE(std::isfinite(s.g_loss));
    // Stats accumulate until the update cycle reprograms the arrays.
    EXPECT_GT(exec_d.aggregate_stats().compute_ops, 0u);
    exec_g.reprogram();
    exec_d.reprogram();
  }
}

TEST(Integration, TableOneShapeHolds) {
  // The qualitative claims of Table I: both accelerators beat the GPU, and
  // ReGAN's advantage exceeds PipeLayer's.
  const baseline::GpuModel gpu(baseline::gtx1080());

  core::AcceleratorConfig pl_cfg;
  pl_cfg.chip = arch::pipelayer_chip();
  const auto net = workload::spec_alexnet();
  const core::PipeLayerAccelerator pipelayer(net, pl_cfg);
  const auto pl = core::compare("alexnet", pipelayer.training_report(6400, 64),
                                gpu.training_cost(net, 6400, 64));

  core::AcceleratorConfig rg_cfg;
  rg_cfg.chip = arch::regan_chip();
  const auto gspec = workload::spec_dcgan_generator(64);
  const auto dspec = workload::spec_dcgan_discriminator(64);
  const core::ReGanAccelerator regan(gspec, dspec, rg_cfg);
  const auto rg =
      core::compare("dcgan-64", regan.training_report(6400, 64, {true, true}),
                    gpu.gan_training_cost(gspec, dspec, 6400, 64));

  EXPECT_GT(pl.speedup(), 1.0);
  EXPECT_GT(pl.energy_saving(), 1.0);
  EXPECT_GT(rg.speedup(), pl.speedup());
  EXPECT_GT(rg.energy_saving(), pl.energy_saving());
  // Speedups exceed energy savings for both (the paper's pattern).
  EXPECT_GT(pl.speedup(), pl.energy_saving());
  EXPECT_GT(rg.speedup(), rg.energy_saving());
}

TEST(Integration, BankProgramForOneLayerExecutes) {
  // Lower one mapped layer into a bank-controller instruction stream and
  // execute it: CFG -> (MOVE, COMPUTE)*steps -> STORE -> SYNC.
  const auto net = workload::spec_mlp_mnist_a();
  const mapping::NetworkMapping m =
      mapping::plan_naive(net, {128, 128});
  const auto& layer = m.layers[0];

  const arch::ChipConfig chip = arch::pipelayer_chip();
  arch::Bank bank(chip, 0);
  arch::BankController ctrl(bank);

  std::vector<std::uint32_t> program;
  arch::Instruction cfg;
  cfg.op = arch::Opcode::kCfgMode;
  cfg.subarray = 0;
  cfg.imm = 1;
  program.push_back(encode(cfg));
  for (std::size_t step = 0; step < layer.steps_per_sample(); ++step) {
    arch::Instruction mv;
    mv.op = arch::Opcode::kMove;
    mv.subarray = 0;
    mv.imm = static_cast<std::uint16_t>(layer.spec.matrix_rows());
    program.push_back(encode(mv));
    arch::Instruction comp;
    comp.op = arch::Opcode::kCompute;
    comp.subarray = 0;
    comp.imm = static_cast<std::uint16_t>(
        std::min<std::size_t>(layer.arrays(), chip.arrays_per_subarray));
    program.push_back(encode(comp));
  }
  arch::Instruction sync;
  sync.op = arch::Opcode::kSync;
  program.push_back(encode(sync));

  const arch::ExecutionReport r = ctrl.run(program);
  EXPECT_EQ(r.sync_points, 1u);
  EXPECT_GT(r.energy.component_pj("compute"), 0.0);
  EXPECT_GT(r.busy_ns, 0.0);
}

}  // namespace
}  // namespace reramdl
