// MeshNoc edge cases and the link-level event model (simulate()).
#include <gtest/gtest.h>

#include <cstring>
#include <utility>

#include "arch/noc.hpp"
#include "common/check.hpp"

namespace reramdl::arch {
namespace {

double ser_ns(const NocParams& p, std::size_t bytes) {
  return static_cast<double>(bytes) / p.link_bandwidth_bytes_per_ns;
}

TEST(MeshNocShape, FactoryBuildsNonSquareMeshes) {
  const MeshNoc m60 = make_mesh_for_banks(60);
  EXPECT_GE(m60.num_banks(), 60u);
  EXPECT_NE(m60.rows(), m60.cols());

  // A prime bank count degenerates to a single row.
  const MeshNoc m7 = make_mesh_for_banks(7);
  EXPECT_EQ(m7.rows(), 1u);
  EXPECT_EQ(m7.cols(), 7u);

  const MeshNoc m1 = make_mesh_for_banks(1);
  EXPECT_EQ(m1.num_banks(), 1u);
  EXPECT_EQ(m1.hops(0, 0), 0u);
}

TEST(MeshNocShape, SingleRowAndSingleColumnHops) {
  const MeshNoc row(1, 8, NocParams{});
  EXPECT_EQ(row.hops(0, 7), 7u);
  const MeshNoc col(8, 1, NocParams{});
  EXPECT_EQ(col.hops(0, 7), 7u);
  EXPECT_GT(col.transfer_latency_ns(0, 7, 64), 0.0);
}

TEST(MeshNocShape, HopCountIsSymmetric) {
  const MeshNoc noc(3, 5, NocParams{});
  for (std::size_t a = 0; a < noc.num_banks(); ++a)
    for (std::size_t b = 0; b < noc.num_banks(); ++b)
      EXPECT_EQ(noc.hops(a, b), noc.hops(b, a));
}

TEST(MeshNocShape, LinkNamesEncodePositionAndDirection) {
  const MeshNoc noc(2, 3, NocParams{});
  EXPECT_EQ(noc.link_name(noc.link_index(0, LinkDir::kEast)), "link0_0_E");
  EXPECT_EQ(noc.link_name(noc.link_index(4, LinkDir::kNorth)), "link1_1_N");
  EXPECT_EQ(noc.num_links(), 4 * noc.num_banks());
}

// ---- Event model -------------------------------------------------------------

TEST(NocSim, SameBankTransferIsInstant) {
  const MeshNoc noc(2, 2, NocParams{});
  const auto rep = noc.simulate({{1, 1, 4096, 3.0, -1}});
  EXPECT_DOUBLE_EQ(rep.transfers[0].start_ns, 3.0);
  EXPECT_DOUBLE_EQ(rep.transfers[0].done_ns, 3.0);
  EXPECT_EQ(rep.hops_total, 0u);
}

TEST(NocSim, LoneTransferMatchesClosedForm) {
  NocParams p;
  p.contention = true;
  const MeshNoc noc(4, 4, p);
  // One transfer can never contend, so the event model reproduces the
  // closed-form cost exactly — for straight and for L-shaped XY routes.
  const std::pair<std::size_t, std::size_t> cases[] = {
      {0, 3}, {0, 12}, {0, 15}, {15, 0}, {5, 10}};
  for (const auto& [from, to] : cases) {
    const auto rep = noc.simulate({{from, to, 1024, 0.0, -1}});
    EXPECT_DOUBLE_EQ(rep.makespan_ns, noc.transfer_latency_ns(from, to, 1024))
        << from << "->" << to;
    EXPECT_EQ(rep.transfers[0].hops, noc.hops(from, to));
    EXPECT_DOUBLE_EQ(rep.queue_ns, 0.0);
  }
}

TEST(NocSim, SharedLinkSerializesTransfers) {
  NocParams p;
  p.contention = true;
  const MeshNoc noc(2, 2, p);
  const std::size_t bytes = 3200;
  const double ser = ser_ns(p, bytes);
  const auto rep =
      noc.simulate({{0, 1, bytes, 0.0, -1}, {0, 1, bytes, 0.0, -1}});
  // The second transfer queues behind the first on node 0's east link.
  EXPECT_DOUBLE_EQ(rep.transfers[0].done_ns, p.hop_latency_ns + ser);
  EXPECT_DOUBLE_EQ(rep.transfers[1].queue_ns, ser);
  EXPECT_DOUBLE_EQ(rep.transfers[1].done_ns, ser + p.hop_latency_ns + ser);
  EXPECT_DOUBLE_EQ(rep.makespan_ns, rep.transfers[1].done_ns);
}

TEST(NocSim, DisjointRoutesOverlap) {
  NocParams p;
  p.contention = true;
  const MeshNoc noc(2, 2, p);
  const std::size_t bytes = 3200;
  // 0->1 (row 0 east) and 2->3 (row 1 east) share no link: both finish as
  // if alone, so the makespan equals the lone-transfer latency.
  const auto rep =
      noc.simulate({{0, 1, bytes, 0.0, -1}, {2, 3, bytes, 0.0, -1}});
  EXPECT_DOUBLE_EQ(rep.makespan_ns, noc.transfer_latency_ns(0, 1, bytes));
  EXPECT_DOUBLE_EQ(rep.queue_ns, 0.0);
}

TEST(NocSim, DependencyChainsSequence) {
  NocParams p;
  p.contention = true;
  const MeshNoc noc(1, 4, p);
  const auto rep = noc.simulate({{0, 1, 640, 0.0, -1},
                                 {1, 2, 640, 0.0, 0},
                                 {2, 3, 640, 0.0, 1}});
  EXPECT_DOUBLE_EQ(rep.transfers[1].start_ns, rep.transfers[0].done_ns);
  EXPECT_DOUBLE_EQ(rep.transfers[2].start_ns, rep.transfers[1].done_ns);
  EXPECT_DOUBLE_EQ(rep.makespan_ns, rep.transfers[2].done_ns);
}

TEST(NocSim, SmartBypassCollapsesFreeStraightRun) {
  NocParams p;
  p.smart_max_hops = 8;
  const MeshNoc noc(1, 8, p);
  const std::size_t bytes = 320;
  const auto rep = noc.simulate({{0, 7, bytes, 0.0, -1}});
  // All 7 hops collapse into one bypass segment.
  EXPECT_EQ(rep.smart_segments, 1u);
  EXPECT_EQ(rep.smart_hops_total, 7u);
  EXPECT_DOUBLE_EQ(rep.makespan_ns, p.smart_hop_latency_ns + ser_ns(p, bytes));
  EXPECT_LT(rep.makespan_ns, noc.transfer_latency_ns(0, 7, bytes));
}

TEST(NocSim, SmartBypassChunksAtMaxHops) {
  NocParams p;
  p.smart_max_hops = 3;
  const MeshNoc noc(1, 8, p);
  const auto rep = noc.simulate({{0, 7, 320, 0.0, -1}});
  // 7 hops at max 3 per segment: 3 + 3 + 1, the trailing single hop routed
  // normally (no intermediate router to skip).
  EXPECT_EQ(rep.smart_segments, 2u);
  EXPECT_EQ(rep.smart_hops_total, 6u);
  EXPECT_DOUBLE_EQ(
      rep.makespan_ns,
      2.0 * p.smart_hop_latency_ns + p.hop_latency_ns + ser_ns(p, 320));
}

TEST(NocSim, SmartFallsBackUnderContention) {
  NocParams p;
  p.contention = true;
  p.smart_max_hops = 8;
  const MeshNoc noc(1, 8, p);
  const std::size_t bytes = 3200;
  const auto rep =
      noc.simulate({{0, 7, bytes, 0.0, -1}, {0, 7, bytes, 0.0, -1}});
  // The first transfer bypasses; the second finds the links busy and must
  // queue (per-hop) at least on the first link.
  EXPECT_EQ(rep.transfers[0].smart_hops, 7u);
  EXPECT_GT(rep.transfers[1].queue_ns, 0.0);
  EXPECT_GT(rep.transfers[1].done_ns, rep.transfers[0].done_ns);
}

TEST(NocSim, LinkStatsAndUtilizationBounded) {
  NocParams p;
  p.contention = true;
  const MeshNoc noc(2, 2, p);
  const auto rep = noc.simulate({{0, 1, 6400, 0.0, -1},
                                 {0, 1, 6400, 0.0, -1},
                                 {2, 3, 6400, 0.0, -1}});
  const std::size_t east0 = noc.link_index(0, LinkDir::kEast);
  EXPECT_EQ(rep.links[east0].transfers, 2u);
  EXPECT_DOUBLE_EQ(rep.links[east0].busy_ns, 2.0 * ser_ns(p, 6400));
  EXPECT_GT(rep.max_link_utilization(), 0.0);
  EXPECT_LE(rep.max_link_utilization(), 1.0);
}

TEST(NocSim, RepeatRunsAreBitIdentical) {
  NocParams p;
  p.contention = true;
  p.smart_max_hops = 4;
  const MeshNoc noc(3, 3, p);
  std::vector<NocTransferRequest> reqs;
  for (std::size_t i = 0; i < 9; ++i)
    reqs.push_back({i % 9, (i * 5 + 2) % 9, 128 * (i + 1), 0.0,
                    i >= 3 ? static_cast<std::ptrdiff_t>(i - 3) : -1});
  const auto a = noc.simulate(reqs);
  const auto b = noc.simulate(reqs);
  ASSERT_EQ(a.transfers.size(), b.transfers.size());
  EXPECT_EQ(std::memcmp(a.transfers.data(), b.transfers.data(),
                        a.transfers.size() * sizeof(NocTransferTiming)),
            0);
  EXPECT_EQ(a.makespan_ns, b.makespan_ns);
  EXPECT_EQ(a.queue_ns, b.queue_ns);
}

TEST(NocSim, InvalidRequestsThrow) {
  const MeshNoc noc(2, 2, NocParams{});
  EXPECT_THROW(noc.simulate({{0, 9, 64, 0.0, -1}}), CheckError);
  // A dep must point at an earlier request.
  EXPECT_THROW(noc.simulate({{0, 1, 64, 0.0, 0}}), CheckError);
}

}  // namespace
}  // namespace reramdl::arch
