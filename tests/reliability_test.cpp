#include <gtest/gtest.h>

#include "circuit/crossbar.hpp"
#include "common/check.hpp"
#include "device/reliability.hpp"

namespace reramdl {
namespace {

TEST(Endurance, LifetimeInverseInWriteRate) {
  device::EnduranceModel m(device::EnduranceParams{1e9});
  EXPECT_DOUBLE_EQ(m.lifetime_seconds(1.0), 1e9);
  EXPECT_DOUBLE_EQ(m.lifetime_seconds(1000.0), 1e6);
}

TEST(Endurance, LargerBatchExtendsTrainingLifetime) {
  // The update cycle fires once per batch: at a fixed sample rate, a larger
  // batch means fewer reprogram cycles per second — the architectural reason
  // the paper accumulates updates over batches.
  device::EnduranceModel m(device::EnduranceParams{1e9});
  const double samples_per_second = 1e6;
  const double life_b8 = m.training_lifetime_seconds(samples_per_second / 8);
  const double life_b64 = m.training_lifetime_seconds(samples_per_second / 64);
  EXPECT_NEAR(life_b64 / life_b8, 8.0, 1e-9);
}

TEST(Endurance, InvalidRateThrows) {
  device::EnduranceModel m(device::EnduranceParams{});
  EXPECT_THROW(m.lifetime_seconds(0.0), CheckError);
}

TEST(Retention, NoDriftBeforeT0) {
  device::RetentionModel m(device::RetentionParams{0.01, 10.0});
  EXPECT_DOUBLE_EQ(m.drift_factor(0.0), 1.0);
  EXPECT_DOUBLE_EQ(m.drift_factor(10.0), 1.0);
}

TEST(Retention, FactorDecreasesMonotonically) {
  device::RetentionModel m(device::RetentionParams{0.02, 1.0});
  double prev = 1.0;
  for (double t : {2.0, 10.0, 3600.0, 86400.0, 2.6e6}) {
    const double f = m.drift_factor(t);
    EXPECT_LT(f, prev);
    EXPECT_GT(f, 0.0);
    prev = f;
  }
}

TEST(Retention, ZeroNuMeansNoDrift) {
  device::RetentionModel m(device::RetentionParams{0.0, 1.0});
  EXPECT_DOUBLE_EQ(m.drift_factor(1e9), 1.0);
}

TEST(Retention, PowerLawValue) {
  device::RetentionModel m(device::RetentionParams{0.5, 1.0});
  EXPECT_NEAR(m.drift_factor(4.0), 0.5, 1e-12);  // 4^-0.5
}

TEST(CrossbarDrift, ScalesOutputsMultiplicatively) {
  circuit::CrossbarConfig cfg;
  cfg.rows = cfg.cols = 16;
  circuit::Crossbar xbar(cfg);
  Rng rng(3);
  const Tensor w = Tensor::uniform(Shape{16, 16}, rng, 0.1f, 1.0f);
  xbar.program(w, 1.0);
  std::vector<float> x(16, 0.5f);
  const auto fresh = xbar.compute(x, 1.0);
  xbar.apply_drift(0.9);
  const auto aged = xbar.compute(x, 1.0);
  for (std::size_t j = 0; j < fresh.size(); ++j)
    EXPECT_NEAR(aged[j], fresh[j] * 0.9f, 2e-2f);
}

TEST(CrossbarDrift, AccumulatesAcrossApplications) {
  circuit::CrossbarConfig cfg;
  cfg.rows = cfg.cols = 8;
  circuit::Crossbar xbar(cfg);
  Rng rng(4);
  const Tensor w = Tensor::uniform(Shape{8, 8}, rng, 0.1f, 1.0f);
  xbar.program(w, 1.0);
  std::vector<float> x(8, 1.0f);
  const auto fresh = xbar.compute(x, 1.0);
  xbar.apply_drift(0.8);
  xbar.apply_drift(0.5);
  const auto aged = xbar.compute(x, 1.0);
  for (std::size_t j = 0; j < fresh.size(); ++j)
    EXPECT_NEAR(aged[j], fresh[j] * 0.4f, 5e-2f);
}

TEST(CrossbarDrift, ReprogramRestoresFreshLevels) {
  circuit::CrossbarConfig cfg;
  cfg.rows = cfg.cols = 8;
  circuit::Crossbar xbar(cfg);
  Rng rng(5);
  const Tensor w = Tensor::uniform(Shape{8, 8}, rng, 0.1f, 1.0f);
  xbar.program(w, 1.0);
  std::vector<float> x(8, 1.0f);
  const auto fresh = xbar.compute(x, 1.0);
  xbar.apply_drift(0.5);
  xbar.program(w, 1.0);  // refresh
  const auto refreshed = xbar.compute(x, 1.0);
  for (std::size_t j = 0; j < fresh.size(); ++j)
    EXPECT_FLOAT_EQ(refreshed[j], fresh[j]);
}

TEST(CrossbarDrift, InvalidFactorThrows) {
  circuit::CrossbarConfig cfg;
  circuit::Crossbar xbar(cfg);
  EXPECT_THROW(xbar.apply_drift(0.0), CheckError);
  EXPECT_THROW(xbar.apply_drift(1.5), CheckError);
}

}  // namespace
}  // namespace reramdl
