#include <gtest/gtest.h>

#include "circuit/crossbar.hpp"
#include "common/check.hpp"
#include "device/reliability.hpp"

namespace reramdl {
namespace {

TEST(Endurance, LifetimeInverseInWriteRate) {
  device::EnduranceModel m(device::EnduranceParams{1e9});
  EXPECT_DOUBLE_EQ(m.lifetime_seconds(1.0), 1e9);
  EXPECT_DOUBLE_EQ(m.lifetime_seconds(1000.0), 1e6);
}

TEST(Endurance, LargerBatchExtendsTrainingLifetime) {
  // The update cycle fires once per batch: at a fixed sample rate, a larger
  // batch means fewer reprogram cycles per second — the architectural reason
  // the paper accumulates updates over batches.
  device::EnduranceModel m(device::EnduranceParams{1e9});
  const double samples_per_second = 1e6;
  const double life_b8 = m.training_lifetime_seconds(samples_per_second / 8);
  const double life_b64 = m.training_lifetime_seconds(samples_per_second / 64);
  EXPECT_NEAR(life_b64 / life_b8, 8.0, 1e-9);
}

TEST(Endurance, InvalidRateThrows) {
  device::EnduranceModel m(device::EnduranceParams{});
  EXPECT_THROW(m.lifetime_seconds(0.0), CheckError);
}

TEST(Retention, NoDriftBeforeT0) {
  device::RetentionModel m(device::RetentionParams{0.01, 10.0});
  EXPECT_DOUBLE_EQ(m.drift_factor(0.0), 1.0);
  EXPECT_DOUBLE_EQ(m.drift_factor(10.0), 1.0);
}

TEST(Retention, FactorDecreasesMonotonically) {
  device::RetentionModel m(device::RetentionParams{0.02, 1.0});
  double prev = 1.0;
  for (double t : {2.0, 10.0, 3600.0, 86400.0, 2.6e6}) {
    const double f = m.drift_factor(t);
    EXPECT_LT(f, prev);
    EXPECT_GT(f, 0.0);
    prev = f;
  }
}

TEST(Retention, ZeroNuMeansNoDrift) {
  device::RetentionModel m(device::RetentionParams{0.0, 1.0});
  EXPECT_DOUBLE_EQ(m.drift_factor(1e9), 1.0);
}

TEST(Retention, PowerLawValue) {
  device::RetentionModel m(device::RetentionParams{0.5, 1.0});
  EXPECT_NEAR(m.drift_factor(4.0), 0.5, 1e-12);  // 4^-0.5
}

TEST(CrossbarDrift, ScalesOutputsMultiplicatively) {
  circuit::CrossbarConfig cfg;
  cfg.rows = cfg.cols = 16;
  circuit::Crossbar xbar(cfg);
  Rng rng(3);
  const Tensor w = Tensor::uniform(Shape{16, 16}, rng, 0.1f, 1.0f);
  xbar.program(w, 1.0);
  std::vector<float> x(16, 0.5f);
  const auto fresh = xbar.compute(x, 1.0);
  xbar.apply_drift(0.9);
  const auto aged = xbar.compute(x, 1.0);
  for (std::size_t j = 0; j < fresh.size(); ++j)
    EXPECT_NEAR(aged[j], fresh[j] * 0.9f, 2e-2f);
}

TEST(CrossbarDrift, AccumulatesAcrossApplications) {
  circuit::CrossbarConfig cfg;
  cfg.rows = cfg.cols = 8;
  circuit::Crossbar xbar(cfg);
  Rng rng(4);
  const Tensor w = Tensor::uniform(Shape{8, 8}, rng, 0.1f, 1.0f);
  xbar.program(w, 1.0);
  std::vector<float> x(8, 1.0f);
  const auto fresh = xbar.compute(x, 1.0);
  xbar.apply_drift(0.8);
  xbar.apply_drift(0.5);
  const auto aged = xbar.compute(x, 1.0);
  for (std::size_t j = 0; j < fresh.size(); ++j)
    EXPECT_NEAR(aged[j], fresh[j] * 0.4f, 5e-2f);
}

TEST(CrossbarDrift, ReprogramRestoresFreshLevels) {
  circuit::CrossbarConfig cfg;
  cfg.rows = cfg.cols = 8;
  circuit::Crossbar xbar(cfg);
  Rng rng(5);
  const Tensor w = Tensor::uniform(Shape{8, 8}, rng, 0.1f, 1.0f);
  xbar.program(w, 1.0);
  std::vector<float> x(8, 1.0f);
  const auto fresh = xbar.compute(x, 1.0);
  xbar.apply_drift(0.5);
  xbar.program(w, 1.0);  // refresh
  const auto refreshed = xbar.compute(x, 1.0);
  for (std::size_t j = 0; j < fresh.size(); ++j)
    EXPECT_FLOAT_EQ(refreshed[j], fresh[j]);
}

TEST(CrossbarDrift, InvalidFactorThrows) {
  circuit::CrossbarConfig cfg;
  circuit::Crossbar xbar(cfg);
  EXPECT_THROW(xbar.apply_drift(0.0), CheckError);
  EXPECT_THROW(xbar.apply_drift(1.5), CheckError);
}

TEST(Endurance, NegativeRateThrows) {
  device::EnduranceModel m(device::EnduranceParams{});
  EXPECT_THROW(m.lifetime_seconds(-1.0), CheckError);
  EXPECT_THROW(m.lifetime_seconds(-1e-300), CheckError);
}

TEST(Retention, UnityUpToT0ThenStrictlyBelow) {
  device::RetentionModel m(device::RetentionParams{0.01, 10.0});
  // Everywhere at or before t0 the factor is exactly 1 (no partial decay).
  for (double t : {0.0, 1e-9, 5.0, 10.0 - 1e-12, 10.0})
    EXPECT_DOUBLE_EQ(m.drift_factor(t), 1.0);
  // Immediately after t0 it drops below 1 and keeps decreasing.
  const double just_after = m.drift_factor(10.0 + 1e-6);
  EXPECT_LT(just_after, 1.0);
  EXPECT_LT(m.drift_factor(11.0), just_after);
  // Negative times are a caller bug, not "before programming".
  EXPECT_THROW(m.drift_factor(-1.0), CheckError);
}

TEST(Retention, MonotonicOverDenseSweep) {
  device::RetentionModel m(device::RetentionParams{0.005, 1.0});
  double prev = 1.0;
  for (double t = 1.5; t < 1e8; t *= 1.5) {
    const double f = m.drift_factor(t);
    EXPECT_LE(f, prev);
    EXPECT_GT(f, 0.0);
    prev = f;
  }
}

TEST(CrossbarDrift, FastPathMatchesReferenceUnderActiveFaultMap) {
  // apply_drift scales the stored levels and rebuilds W_eff; the collapsed
  // fast path must stay bit-identical to the slice-walk oracle even when
  // the levels carry stuck-at faults (whose cells drift like any other).
  circuit::CrossbarConfig cfg;
  cfg.rows = cfg.cols = 32;
  circuit::Crossbar xbar(cfg);
  Rng rng(6);
  const Tensor w = Tensor::uniform(Shape{32, 32}, rng, -1.0f, 1.0f);
  circuit::ProgramOptions opts;
  opts.faults.stuck_at_off_rate = 0.02;
  opts.faults.stuck_at_on_rate = 0.02;
  opts.faults.seed = 99;
  xbar.program(w, 1.0, opts);
  EXPECT_GT(xbar.stats().stuck_cells, 0u);
  xbar.apply_drift(0.9);
  Rng xrng(7);
  for (int trial = 0; trial < 4; ++trial) {
    std::vector<float> x(32);
    for (auto& v : x) v = xrng.uniform(-1.0, 1.0);
    const auto fast = xbar.compute(x, 1.0);
    const auto ref = xbar.compute_reference(x, 1.0);
    for (std::size_t j = 0; j < fast.size(); ++j) EXPECT_EQ(fast[j], ref[j]);
  }
}

}  // namespace
}  // namespace reramdl
