#include <gtest/gtest.h>

#include <cmath>

#include "baseline/gpu_model.hpp"
#include "common/check.hpp"
#include "core/comparison.hpp"
#include "core/functional.hpp"
#include "core/pipelayer.hpp"
#include "core/regan.hpp"
#include "nn/loss.hpp"
#include "pipeline/analytic.hpp"
#include "workload/datasets.hpp"
#include "workload/model_zoo.hpp"

namespace reramdl::core {
namespace {

AcceleratorConfig small_config() {
  AcceleratorConfig cfg;
  cfg.chip = arch::pipelayer_chip();
  cfg.max_arrays = 2048;
  return cfg;
}

TEST(PipeLayer, PipelineDepthCountsWeightedLayers) {
  const PipeLayerAccelerator accel(workload::spec_mlp_mnist_a(), small_config());
  EXPECT_EQ(accel.pipeline_depth(), 3u);
}

TEST(PipeLayer, TrainingCyclesMatchPaperFormula) {
  const PipeLayerAccelerator accel(workload::spec_mlp_mnist_a(), small_config());
  const TimingReport r = accel.training_report(6400, 64);
  EXPECT_EQ(r.pipeline_cycles,
            pipeline::pipelayer_train_cycles_pipelined(6400, 3, 64));
}

TEST(PipeLayer, InferenceCyclesMatchPaperFormula) {
  const PipeLayerAccelerator accel(workload::spec_lenet5(), small_config());
  const TimingReport r = accel.inference_report(1000);
  EXPECT_EQ(r.pipeline_cycles, 1000u + accel.pipeline_depth() - 1);
}

TEST(PipeLayer, MappingRespectsArrayBudget) {
  AcceleratorConfig cfg = small_config();
  cfg.max_arrays = 256;
  const PipeLayerAccelerator accel(workload::spec_lenet5(), cfg);
  EXPECT_LE(accel.network_mapping().total_arrays(), 256u);
}

TEST(PipeLayer, LargerBudgetReducesStageSteps) {
  AcceleratorConfig small = small_config();
  small.max_arrays = 128;
  AcceleratorConfig big = small_config();
  big.max_arrays = 16384;
  const PipeLayerAccelerator a(workload::spec_lenet5(), small);
  const PipeLayerAccelerator b(workload::spec_lenet5(), big);
  EXPECT_LE(b.training_report(64, 64).stage_steps,
            a.training_report(64, 64).stage_steps);
}

TEST(PipeLayer, ReportFieldsConsistent) {
  const PipeLayerAccelerator accel(workload::spec_mlp_mnist_b(), small_config());
  const TimingReport r = accel.training_report(1280, 64);
  EXPECT_GT(r.time_s, 0.0);
  EXPECT_GT(r.energy_j, 0.0);
  EXPECT_GT(r.area_mm2, 0.0);
  EXPECT_NEAR(r.time_s,
              static_cast<double>(r.pipeline_cycles) * r.cycle_ns * 1e-9, 1e-12);
  EXPECT_NEAR(r.throughput_sps, 1280.0 / r.time_s, 1e-6);
  EXPECT_NEAR(r.power_w, r.energy_j / r.time_s, 1e-9);
}

TEST(PipeLayer, EnergyBreakdownSumsToTotal) {
  const PipeLayerAccelerator accel(workload::spec_mlp_mnist_a(), small_config());
  const TimingReport r = accel.training_report(640, 64);
  const arch::EnergyMeter m = accel.training_energy_breakdown(640, 64);
  EXPECT_NEAR(m.total_pj() * 1e-12, r.energy_j, r.energy_j * 1e-9);
  EXPECT_GT(m.component_pj("compute"), 0.0);
  EXPECT_GT(m.component_pj("update"), 0.0);
  EXPECT_GT(m.component_pj("memory"), 0.0);
}

TEST(PipeLayer, TrainingEnergyScalesWithN) {
  const PipeLayerAccelerator accel(workload::spec_mlp_mnist_a(), small_config());
  const double e1 = accel.training_report(640, 64).energy_j;
  const double e2 = accel.training_report(1280, 64).energy_j;
  EXPECT_NEAR(e2 / e1, 2.0, 1e-6);
}

TEST(PipeLayer, BeatsGpuOnThroughput) {
  const baseline::GpuModel gpu(baseline::gtx1080());
  for (const auto& net : {workload::spec_mlp_mnist_a(), workload::spec_lenet5()}) {
    const PipeLayerAccelerator accel(net, small_config());
    const TimingReport r = accel.training_report(6400, 64);
    const baseline::GpuCost g = gpu.training_cost(net, 6400, 64);
    EXPECT_GT(g.time_s / r.time_s, 1.0) << net.name;
  }
}

// ---- ReGAN ------------------------------------------------------------------

AcceleratorConfig regan_config() {
  AcceleratorConfig cfg;
  cfg.chip = arch::regan_chip();
  cfg.max_arrays = 4096;
  return cfg;
}

TEST(ReGan, LayerCountsFromSpecs) {
  const ReGanAccelerator accel(workload::spec_dcgan_generator(64),
                               workload::spec_dcgan_discriminator(64),
                               regan_config());
  EXPECT_EQ(accel.l_g(), 5u);  // 1 dense + 4 tconv
  EXPECT_EQ(accel.l_d(), 5u);  // 4 conv + 1 dense
}

TEST(ReGan, CyclesMatchClosedFormsPerOptimization) {
  const ReGanAccelerator accel(workload::spec_dcgan_generator(32),
                               workload::spec_dcgan_discriminator(32),
                               regan_config());
  const pipeline::GanShape s{accel.l_d(), accel.l_g(), 64};
  const std::size_t batches = 4;
  const std::size_t n = 64 * batches;
  EXPECT_EQ(accel.training_report(n, 64, {false, false}).pipeline_cycles,
            batches * pipeline::regan_batch_cycles_pipelined(s));
  EXPECT_EQ(accel.training_report(n, 64, {true, false}).pipeline_cycles,
            batches * pipeline::regan_batch_cycles_sp(s));
  EXPECT_EQ(accel.training_report(n, 64, {false, true}).pipeline_cycles,
            batches * pipeline::regan_batch_cycles_cs(s));
  EXPECT_EQ(accel.training_report(n, 64, {true, true}).pipeline_cycles,
            batches * pipeline::regan_batch_cycles_sp_cs(s));
}

TEST(ReGan, SpDuplicatesDiscriminatorArrays) {
  const ReGanAccelerator accel(workload::spec_dcgan_generator(32),
                               workload::spec_dcgan_discriminator(32),
                               regan_config());
  const TimingReport base = accel.training_report(64, 64, {false, false});
  const TimingReport sp = accel.training_report(64, 64, {true, false});
  EXPECT_GT(sp.arrays_used, base.arrays_used);
  EXPECT_GT(sp.area_mm2, base.area_mm2);
}

TEST(ReGan, CsReducesComputeEnergy) {
  const ReGanAccelerator accel(workload::spec_dcgan_generator(32),
                               workload::spec_dcgan_discriminator(32),
                               regan_config());
  const auto base = accel.training_energy_breakdown(64, 64, {false, false});
  const auto cs = accel.training_energy_breakdown(64, 64, {false, true});
  EXPECT_LT(cs.component_pj("compute"), base.component_pj("compute"));
  // ...at the price of doubled buffer traffic.
  EXPECT_GT(cs.component_pj("buffer"), base.component_pj("buffer"));
}

TEST(ReGan, OptimizationsImproveTime) {
  const ReGanAccelerator accel(workload::spec_dcgan_generator(64),
                               workload::spec_dcgan_discriminator(64),
                               regan_config());
  const double base = accel.training_report(640, 64, {false, false}).time_s;
  const double sp = accel.training_report(640, 64, {true, false}).time_s;
  const double cs = accel.training_report(640, 64, {false, true}).time_s;
  const double both = accel.training_report(640, 64, {true, true}).time_s;
  EXPECT_LT(sp, base);
  EXPECT_LT(cs, base);
  EXPECT_LE(both, sp);
  EXPECT_LE(both, cs);
}

TEST(ReGan, VbnEnergyBookedWhenBatchNormPresent) {
  const ReGanAccelerator accel(workload::spec_dcgan_generator(32),
                               workload::spec_dcgan_discriminator(32),
                               regan_config());
  const auto m = accel.training_energy_breakdown(64, 64, {true, true});
  EXPECT_GT(m.component_pj("vbn"), 0.0);
}

// ---- Comparison --------------------------------------------------------------

TEST(Comparison, SpeedupAndSavingRatios) {
  TimingReport accel;
  accel.time_s = 1.0;
  accel.energy_j = 2.0;
  baseline::GpuCost gpu;
  gpu.time_s = 42.0;
  gpu.energy_j = 14.0;
  const Comparison c = compare("w", accel, gpu);
  EXPECT_DOUBLE_EQ(c.speedup(), 42.0);
  EXPECT_DOUBLE_EQ(c.energy_saving(), 7.0);
}

TEST(Comparison, SummaryUsesGeomean) {
  TimingReport a;
  a.time_s = 1.0;
  a.energy_j = 1.0;
  baseline::GpuCost g1{2.0, 2.0}, g2{8.0, 8.0};
  const auto s = summarize({compare("x", a, g1), compare("y", a, g2)});
  EXPECT_NEAR(s.geomean_speedup, 4.0, 1e-9);
  EXPECT_NEAR(s.geomean_energy_saving, 4.0, 1e-9);
}

// ---- Functional crossbar execution -------------------------------------------

TEST(CrossbarExecutor, MlpInferenceCloseToFloat) {
  Rng rng(300);
  auto net = workload::make_mlp_mnist(rng);
  Rng data_rng(301);
  const auto data = workload::make_mnist_like(32, data_rng);

  const Tensor float_logits = net.forward(data.images, false);

  AcceleratorConfig cfg = small_config();
  CrossbarExecutor exec(net, cfg);
  const Tensor xbar_logits = net.forward(data.images, false);

  ASSERT_EQ(xbar_logits.shape(), float_logits.shape());
  // 16-bit weights / 8-bit inputs: predictions must agree on nearly all
  // samples.
  std::size_t agree = 0;
  for (std::size_t i = 0; i < 32; ++i) {
    std::size_t af = 0, ax = 0;
    for (std::size_t k = 1; k < 10; ++k) {
      if (float_logits.at(i, k) > float_logits.at(i, af)) af = k;
      if (xbar_logits.at(i, k) > xbar_logits.at(i, ax)) ax = k;
    }
    if (af == ax) ++agree;
  }
  EXPECT_GE(agree, 30u);
}

TEST(CrossbarExecutor, DetachRestoresExactFloatPath) {
  Rng rng(302);
  auto net = workload::make_mlp_mnist(rng);
  Rng data_rng(303);
  const auto data = workload::make_mnist_like(4, data_rng);
  const Tensor before = net.forward(data.images, false);
  {
    CrossbarExecutor exec(net, small_config());
    net.forward(data.images, false);  // quantized path
  }  // destructor detaches
  const Tensor after = net.forward(data.images, false);
  for (std::size_t i = 0; i < before.numel(); ++i)
    EXPECT_FLOAT_EQ(after[i], before[i]);
}

TEST(CrossbarExecutor, GridsCoverAllWeightedLayers) {
  Rng rng(304);
  auto net = workload::make_lenet_small(rng);
  CrossbarExecutor exec(net, small_config());
  EXPECT_EQ(exec.num_grids(), 4u);  // 2 conv + 2 dense
  EXPECT_GT(exec.aggregate_stats().programmed_cells, 0u);
}

TEST(CrossbarExecutor, VariationDegradesAccuracyGracefully) {
  Rng rng(305);
  auto net = workload::make_mlp_mnist(rng);
  Rng data_rng(306);
  const auto data = workload::make_mnist_like(16, data_rng);
  const Tensor clean = net.forward(data.images, false);

  device::VariationParams vp;
  vp.sigma = 0.1;
  device::VariationModel vm(vp, Rng(307));
  CrossbarExecutor exec(net, small_config(), &vm);
  const Tensor noisy = net.forward(data.images, false);

  // Output changed but stayed finite and same shape.
  ASSERT_EQ(noisy.shape(), clean.shape());
  double diff = 0.0;
  for (std::size_t i = 0; i < noisy.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(noisy[i]));
    diff += std::abs(static_cast<double>(noisy[i]) - clean[i]);
  }
  EXPECT_GT(diff, 0.0);
}

TEST(CrossbarExecutor, ReprogramTracksWeightUpdates) {
  Rng rng(308);
  auto net = workload::make_mlp_mnist(rng);
  Rng data_rng(309);
  const auto data = workload::make_mnist_like(4, data_rng);
  CrossbarExecutor exec(net, small_config());
  const Tensor out1 = net.forward(data.images, false);
  // Change weights drastically; without reprogramming, outputs are stale.
  for (auto p : net.params())
    for (std::size_t i = 0; i < p.value->numel(); ++i) (*p.value)[i] *= -1.0f;
  exec.reprogram();
  const Tensor out2 = net.forward(data.images, false);
  double diff = 0.0;
  for (std::size_t i = 0; i < out1.numel(); ++i)
    diff += std::abs(static_cast<double>(out1[i]) - out2[i]);
  EXPECT_GT(diff, 1e-3);
}

}  // namespace
}  // namespace reramdl::core
