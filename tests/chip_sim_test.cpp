#include <gtest/gtest.h>

#include <cmath>

#include "arch/chip_sim.hpp"
#include "common/check.hpp"
#include "mapping/planner.hpp"
#include "workload/model_zoo.hpp"

namespace reramdl::arch {
namespace {

struct ChipFixture {
  ChipConfig chip = pipelayer_chip();
  mapping::NetworkMapping mapping;
  MeshNoc noc = make_mesh_for_banks(pipelayer_chip().banks);

  explicit ChipFixture(const nn::NetworkSpec& net, std::size_t budget = 16384)
      : mapping(mapping::plan_under_budget(net, {128, 128}, budget)) {}
};

TEST(ChipSim, ForwardPassExecutesAllBanks) {
  ChipFixture f(workload::spec_vgg_a());
  const Placement p = place_snake(f.mapping, f.chip, f.noc);
  ChipSimulator sim(f.chip, f.mapping, p);
  const ChipRunReport r = sim.run_forward_pass();
  EXPECT_GT(r.banks_used, 1u);
  EXPECT_GT(r.instructions, 0u);
  EXPECT_GT(r.critical_bank_ns, 0.0);
  EXPECT_GT(r.energy.component_pj("compute"), 0.0);
  EXPECT_GT(r.energy.component_pj("noc"), 0.0);
}

TEST(ChipSim, CriticalBankBoundedByTotalWork) {
  ChipFixture f(workload::spec_alexnet());
  const Placement p = place_snake(f.mapping, f.chip, f.noc);
  ChipSimulator sim(f.chip, f.mapping, p);
  const ChipRunReport r = sim.run_forward_pass();
  EXPECT_LE(r.critical_bank_ns, r.total_bank_ns);
  EXPECT_GE(r.critical_bank_ns,
            r.total_bank_ns / static_cast<double>(r.banks_used));
  EXPECT_DOUBLE_EQ(r.latency_ns(), r.critical_bank_ns + r.noc_ns);
}

TEST(ChipSim, SingleBankNetworkHasNoNocTime) {
  ChipFixture f(workload::spec_mlp_mnist_a(), 4096);
  const Placement p = place_snake(f.mapping, f.chip, f.noc);
  ChipSimulator sim(f.chip, f.mapping, p);
  const ChipRunReport r = sim.run_forward_pass();
  EXPECT_EQ(r.banks_used, 1u);
  EXPECT_DOUBLE_EQ(r.noc_ns, 0.0);
  EXPECT_DOUBLE_EQ(r.energy.component_pj("noc"), 0.0);
}

TEST(ChipSim, TrainingBatchBooksUpdateEnergy) {
  ChipFixture f(workload::spec_lenet5(), 2048);
  const Placement p = place_snake(f.mapping, f.chip, f.noc);
  ChipSimulator sim(f.chip, f.mapping, p);
  const ChipRunReport r = sim.run_training_batch(4);
  EXPECT_GT(r.energy.component_pj("update"), 0.0);
  // Training runs 3 passes per input: much more work than one forward pass.
  const ChipRunReport fwd = sim.run_forward_pass();
  EXPECT_GT(r.total_bank_ns, 3.0 * fwd.total_bank_ns);
}

TEST(ChipSim, TrainingNocTrafficScalesWithBatch) {
  ChipFixture f(workload::spec_vgg_a());
  const Placement p = place_snake(f.mapping, f.chip, f.noc);
  ChipSimulator sim(f.chip, f.mapping, p);
  const ChipRunReport b4 = sim.run_training_batch(4);
  const ChipRunReport b8 = sim.run_training_batch(8);
  EXPECT_NEAR(b8.noc_ns / b4.noc_ns, 2.0, 1e-9);
}

TEST(ChipSim, ScatteredPlacementPaysMoreNoc) {
  ChipFixture f(workload::spec_vgg_d());
  ChipSimulator snake(f.chip, f.mapping, place_snake(f.mapping, f.chip, f.noc));
  ChipSimulator scattered(f.chip, f.mapping,
                          place_scattered(f.mapping, f.chip, f.noc));
  const auto rs = snake.run_forward_pass();
  const auto rr = scattered.run_forward_pass();
  EXPECT_LT(rs.energy.component_pj("noc"), rr.energy.component_pj("noc"));
  // Bank work is placement-independent.
  EXPECT_NEAR(rs.total_bank_ns, rr.total_bank_ns, 1e-6);
}

TEST(ChipSim, MismatchedPlacementRejected) {
  ChipFixture f(workload::spec_lenet5());
  Placement bad;
  bad.bank = {0};  // wrong arity
  EXPECT_THROW(ChipSimulator(f.chip, f.mapping, bad), CheckError);
}

TEST(ChipSim, DefaultParamsReproduceClosedFormSum) {
  // With default NocParams (contention off, SMART off) the simulator must
  // charge the pre-event-model closed-form sum bit-exactly.
  ChipFixture f(workload::spec_alexnet());
  const Placement p = place_snake(f.mapping, f.chip, f.noc);
  ChipSimulator sim(f.chip, f.mapping, p);
  const ChipRunReport r = sim.run_forward_pass();
  double expected = 0.0;
  for (std::size_t i = 0; i + 1 < f.mapping.layers.size(); ++i)
    expected += f.noc.transfer_latency_ns(
        p.bank[i], p.bank[i + 1], 4 * f.mapping.layers[i].spec.out_size());
  EXPECT_EQ(r.noc_ns, expected);
}

TEST(ChipSim, EventModelNocMatchesSimulatedMakespan) {
  ChipFixture f(workload::spec_alexnet());
  const Placement p = place_snake(f.mapping, f.chip, f.noc);
  NocParams params;
  params.contention = true;
  ChipSimulator sim(f.chip, f.mapping, p, params);
  const ChipRunReport r = sim.run_forward_pass();
  const double expected =
      sim.noc().simulate(sample_transfers(p, f.mapping, 1)).makespan_ns;
  EXPECT_DOUBLE_EQ(r.noc_ns, expected);
  // Gather traffic participates in the energy account.
  EXPECT_GT(r.energy.component_pj("noc"), 0.0);
}

TEST(ChipSim, ChipConfigCarriesNocParams) {
  // The 3-arg constructor picks up chip.noc: configuring SMART + contention
  // there must give the same result as the explicit override.
  ChipFixture f(workload::spec_alexnet());
  const Placement p = place_snake(f.mapping, f.chip, f.noc);
  NocParams params;
  params.contention = true;
  params.smart_max_hops = 4;
  ChipConfig with_noc = f.chip;
  with_noc.noc = params;
  ChipSimulator from_chip(with_noc, f.mapping, p);
  ChipSimulator from_override(f.chip, f.mapping, p, params);
  EXPECT_EQ(from_chip.run_forward_pass().noc_ns,
            from_override.run_forward_pass().noc_ns);
}

TEST(ChipSim, SmartBypassReducesEventModelLatency) {
  ChipFixture f(workload::spec_vgg_a());
  const Placement p = place_snake(f.mapping, f.chip, f.noc);
  NocParams contended;
  contended.contention = true;
  NocParams smart = contended;
  smart.smart_max_hops = 8;
  ChipSimulator base(f.chip, f.mapping, p, contended);
  ChipSimulator bypass(f.chip, f.mapping, p, smart);
  EXPECT_LE(bypass.run_forward_pass().noc_ns,
            base.run_forward_pass().noc_ns);
}

TEST(ChipSim, InstructionCountMatchesLoweringAnalysis) {
  ChipFixture f(workload::spec_mlp_mnist_b(), 4096);
  const Placement p = place_snake(f.mapping, f.chip, f.noc);
  ChipSimulator sim(f.chip, f.mapping, p);
  const ChipRunReport r = sim.run_forward_pass();
  // Everything in one bank: the chip-level instruction count equals the
  // single-bank lowering's.
  ASSERT_EQ(r.banks_used, 1u);
  const auto program = lower_forward_pass(f.mapping, f.chip, p.bank[0]);
  EXPECT_EQ(r.instructions, program.size());
}

TEST(ChipSim, MaintenanceSlotsStretchCriticalPath) {
  ChipFixture f(workload::spec_alexnet());
  const Placement p = place_snake(f.mapping, f.chip, f.noc);
  ChipSimulator sim(f.chip, f.mapping, p);
  const ChipRunReport base = sim.run_forward_pass();
  ASSERT_EQ(base.maint_ns, 0.0);  // slots default off: bit-identical

  // Reserve 50 ns of every 200 ns for maintenance: demand only progresses
  // through the other 150, so the critical bank stretches by one slot per
  // 150 ns of work and maint_ns accounts for exactly the added time.
  sim.set_maintenance_slots(200.0, 50.0);
  const ChipRunReport r = sim.run_forward_pass();
  EXPECT_DOUBLE_EQ(r.critical_bank_ns, base.critical_bank_ns + r.maint_ns);
  const double expected_slots = std::floor(base.critical_bank_ns / 150.0);
  EXPECT_DOUBLE_EQ(r.maint_ns, expected_slots * 50.0);
  EXPECT_GT(r.maint_ns, 0.0);
  EXPECT_DOUBLE_EQ(r.latency_ns(), r.critical_bank_ns + r.noc_ns);

  // Turning the slots back off restores the baseline exactly.
  sim.set_maintenance_slots(0.0, 0.0);
  const ChipRunReport off = sim.run_forward_pass();
  EXPECT_DOUBLE_EQ(off.critical_bank_ns, base.critical_bank_ns);
  EXPECT_DOUBLE_EQ(off.maint_ns, 0.0);
}

}  // namespace
}  // namespace reramdl::arch
