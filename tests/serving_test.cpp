// Serving-layer acceptance tests: bounded admission queues, the dynamic
// batching policy, virtual-time scheduling across tenants and chips, request
// accounting conservation, and bit-reproducible replay across thread counts.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "arch/params.hpp"
#include "common/parallel.hpp"
#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "serving/batcher.hpp"
#include "serving/queue.hpp"
#include "serving/server.hpp"
#include "serving/workload.hpp"

namespace reramdl::serving {
namespace {

class ServingTest : public ::testing::Test {
 protected:
  void TearDown() override { parallel::set_thread_count(0); }
};

Request make_request(std::uint64_t id, std::size_t tenant,
                     std::uint64_t arrival_us, std::size_t in_features,
                     std::uint64_t payload_seed) {
  Request r;
  r.id = id;
  r.tenant = tenant;
  r.arrival_us = arrival_us;
  r.input = Tensor(Shape{in_features});
  Rng rng(payload_seed);
  for (std::size_t i = 0; i < in_features; ++i)
    r.input[i] = static_cast<float>(rng.uniform());
  return r;
}

// A tiny MLP tenant model (12 -> 8 -> 4) the crossbar executor can program.
std::unique_ptr<nn::Sequential> make_tiny_net(std::uint64_t seed) {
  auto net = std::make_unique<nn::Sequential>();
  Rng rng(seed);
  net->emplace<nn::Dense>(12, 8, rng);
  net->emplace<nn::ReLU>();
  net->emplace<nn::Dense>(8, 4, rng);
  return net;
}

core::AcceleratorConfig accel_config() {
  core::AcceleratorConfig cfg;
  cfg.chip = arch::pipelayer_chip();
  return cfg;
}

TEST_F(ServingTest, QueueRejectPolicyRefusesWhenFull) {
  TenantQueue q(2, AdmissionPolicy::kReject);
  EXPECT_TRUE(q.admit(make_request(0, 0, 0, 4, 1)).admitted);
  EXPECT_TRUE(q.admit(make_request(1, 0, 1, 4, 2)).admitted);
  const auto res = q.admit(make_request(2, 0, 2, 4, 3));
  EXPECT_FALSE(res.admitted);
  EXPECT_FALSE(res.shed.has_value());
  EXPECT_EQ(q.submitted(), 3u);
  EXPECT_EQ(q.rejected(), 1u);
  EXPECT_EQ(q.shed(), 0u);
  EXPECT_EQ(q.size(), 2u);
}

TEST_F(ServingTest, QueueShedOldestDropsFrontAndAdmits) {
  TenantQueue q(2, AdmissionPolicy::kShedOldest);
  q.admit(make_request(0, 0, 0, 4, 1));
  q.admit(make_request(1, 0, 1, 4, 2));
  const auto res = q.admit(make_request(2, 0, 2, 4, 3));
  EXPECT_TRUE(res.admitted);
  ASSERT_TRUE(res.shed.has_value());
  EXPECT_EQ(res.shed->id, 0u);  // oldest victim
  EXPECT_EQ(q.shed(), 1u);
  EXPECT_EQ(q.size(), 2u);
  // FIFO order preserved after the shed: 1 then 2.
  const auto batch = q.pop_batch(8);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].id, 1u);
  EXPECT_EQ(batch[1].id, 2u);
}

TEST_F(ServingTest, BatchTriggerFullBatchBeatsWindow) {
  ServingConfig cfg;
  cfg.max_batch = 3;
  cfg.max_wait_us = 1000;
  TenantQueue q(16, AdmissionPolicy::kReject);
  EXPECT_FALSE(batch_trigger_us(q, cfg).has_value());  // empty: no trigger
  q.admit(make_request(0, 0, 100, 4, 1));
  // Partial batch: the window anchored at the oldest arrival.
  EXPECT_EQ(batch_trigger_us(q, cfg), std::optional<std::uint64_t>(1100));
  q.admit(make_request(1, 0, 150, 4, 2));
  EXPECT_EQ(batch_trigger_us(q, cfg), std::optional<std::uint64_t>(1100));
  // Third request fills the batch: trigger snaps to its arrival.
  q.admit(make_request(2, 0, 400, 4, 3));
  EXPECT_EQ(batch_trigger_us(q, cfg), std::optional<std::uint64_t>(400));
  // Launch waits for the chip.
  EXPECT_EQ(launch_us(400, 250), 400u);
  EXPECT_EQ(launch_us(400, 900), 900u);
}

TEST_F(ServingTest, ReplayCompletesEverythingUnderCapacity) {
  ServingConfig cfg;
  cfg.max_batch = 4;
  cfg.max_wait_us = 500;
  auto net = make_tiny_net(7);
  Server server(cfg);
  ASSERT_EQ(server.add_tenant(*net, accel_config()), 0u);

  std::vector<Request> trace;
  for (std::uint64_t i = 0; i < 10; ++i)
    trace.push_back(make_request(i, 0, i * 2000, 12, 100 + i));
  const auto outcomes = server.run_replay(std::move(trace));

  ASSERT_EQ(outcomes.size(), 10u);
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const Outcome& o = outcomes[i];
    EXPECT_EQ(o.id, i);  // sorted by id
    EXPECT_EQ(o.status, RequestStatus::kCompleted);
    EXPECT_EQ(o.output.numel(), 4u);
    EXPECT_GE(o.dispatch_us, o.arrival_us);
    EXPECT_EQ(o.done_us, o.dispatch_us + cfg.service_us(o.batch_size));
    EXPECT_EQ(o.e2e_us(), o.queue_us() + o.service_us());
    EXPECT_GE(o.batch_size, 1u);
    EXPECT_LE(o.batch_size, cfg.max_batch);
  }
  EXPECT_TRUE(server.accounting_conserved());
  const auto c = server.tenant_counters(0);
  EXPECT_EQ(c.submitted, 10u);
  EXPECT_EQ(c.completed, 10u);
  EXPECT_EQ(c.rejected, 0u);
  EXPECT_EQ(c.shed, 0u);
  EXPECT_EQ(c.queued, 0u);
}

TEST_F(ServingTest, DynamicBatcherCoalescesBursts) {
  ServingConfig cfg;
  cfg.max_batch = 8;
  cfg.max_wait_us = 100;
  auto net = make_tiny_net(8);
  Server server(cfg);
  server.add_tenant(*net, accel_config());

  // Ten requests in a 10 us burst: the batch fills at the 8th arrival and
  // launches immediately; the two stragglers ride the next window.
  std::vector<Request> trace;
  for (std::uint64_t i = 0; i < 10; ++i)
    trace.push_back(make_request(i, 0, i, 12, 200 + i));
  const auto outcomes = server.run_replay(std::move(trace));

  ASSERT_EQ(outcomes.size(), 10u);
  EXPECT_EQ(outcomes[0].batch_size, 8u);
  EXPECT_EQ(outcomes[0].dispatch_us, 7u);  // the batch-filling arrival
  EXPECT_EQ(outcomes[9].batch_size, 2u);
  const auto c = server.tenant_counters(0);
  EXPECT_EQ(c.batches, 2u);
  EXPECT_TRUE(server.accounting_conserved());
}

TEST_F(ServingTest, RejectPolicyEmitsRejectedOutcomes) {
  ServingConfig cfg;
  cfg.max_batch = 8;
  cfg.max_wait_us = 100000;  // window never fires before drain
  cfg.queue_depth = 2;
  cfg.admission = AdmissionPolicy::kReject;
  auto net = make_tiny_net(9);
  Server server(cfg);
  server.add_tenant(*net, accel_config());

  std::vector<Request> trace;
  for (std::uint64_t i = 0; i < 5; ++i)
    trace.push_back(make_request(i, 0, i, 12, 300 + i));
  const auto outcomes = server.run_replay(std::move(trace));

  ASSERT_EQ(outcomes.size(), 5u);
  EXPECT_EQ(outcomes[0].status, RequestStatus::kCompleted);
  EXPECT_EQ(outcomes[1].status, RequestStatus::kCompleted);
  for (std::size_t i = 2; i < 5; ++i) {
    EXPECT_EQ(outcomes[i].status, RequestStatus::kRejected);
    EXPECT_EQ(outcomes[i].done_us, outcomes[i].arrival_us);
  }
  const auto c = server.tenant_counters(0);
  EXPECT_EQ(c.submitted, 5u);
  EXPECT_EQ(c.completed, 2u);
  EXPECT_EQ(c.rejected, 3u);
  EXPECT_TRUE(server.accounting_conserved());
}

TEST_F(ServingTest, ShedOldestPolicyDropsStaleRequests) {
  ServingConfig cfg;
  cfg.max_batch = 8;
  cfg.max_wait_us = 100000;
  cfg.queue_depth = 2;
  cfg.admission = AdmissionPolicy::kShedOldest;
  auto net = make_tiny_net(10);
  Server server(cfg);
  server.add_tenant(*net, accel_config());

  std::vector<Request> trace;
  for (std::uint64_t i = 0; i < 5; ++i)
    trace.push_back(make_request(i, 0, i, 12, 400 + i));
  const auto outcomes = server.run_replay(std::move(trace));

  // Requests 0..2 displaced in arrival order; the freshest two complete.
  ASSERT_EQ(outcomes.size(), 5u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(outcomes[i].status, RequestStatus::kShed);
    // Shed stamp is the displacing request's arrival (i victimized by i+2).
    EXPECT_EQ(outcomes[i].done_us, i + 2);
  }
  EXPECT_EQ(outcomes[3].status, RequestStatus::kCompleted);
  EXPECT_EQ(outcomes[4].status, RequestStatus::kCompleted);
  const auto c = server.tenant_counters(0);
  EXPECT_EQ(c.shed, 3u);
  EXPECT_EQ(c.completed, 2u);
  EXPECT_TRUE(server.accounting_conserved());
}

TEST_F(ServingTest, SchedulerBreaksLaunchTiesOnLowestTenant) {
  ServingConfig cfg;
  cfg.max_batch = 8;
  cfg.max_wait_us = 100;
  cfg.num_chips = 1;  // both tenants share the chip
  auto net0 = make_tiny_net(11);
  auto net1 = make_tiny_net(12);
  Server server(cfg);
  server.add_tenant(*net0, accel_config());
  server.add_tenant(*net1, accel_config());
  EXPECT_EQ(server.tenant_chip(0), 0u);
  EXPECT_EQ(server.tenant_chip(1), 0u);

  std::vector<Request> trace;
  trace.push_back(make_request(0, 0, 0, 12, 500));
  trace.push_back(make_request(1, 1, 0, 12, 501));
  const auto outcomes = server.run_replay(std::move(trace));

  ASSERT_EQ(outcomes.size(), 2u);
  // Same trigger (window expiry at 100): tenant 0 wins the tie, tenant 1
  // waits for the chip.
  EXPECT_EQ(outcomes[0].dispatch_us, 100u);
  EXPECT_EQ(outcomes[1].dispatch_us, 100u + cfg.service_us(1));
  EXPECT_EQ(server.chip_free_us(0), outcomes[1].done_us);
}

TEST_F(ServingTest, ShardedChipsServeTenantsIndependently) {
  ServingConfig cfg;
  cfg.max_batch = 8;
  cfg.max_wait_us = 100;
  cfg.num_chips = 2;
  auto net0 = make_tiny_net(13);
  auto net1 = make_tiny_net(14);
  Server server(cfg);
  server.add_tenant(*net0, accel_config());
  server.add_tenant(*net1, accel_config());
  EXPECT_EQ(server.tenant_chip(0), 0u);
  EXPECT_EQ(server.tenant_chip(1), 1u);

  std::vector<Request> trace;
  trace.push_back(make_request(0, 0, 0, 12, 600));
  trace.push_back(make_request(1, 1, 0, 12, 601));
  const auto outcomes = server.run_replay(std::move(trace));

  ASSERT_EQ(outcomes.size(), 2u);
  // No contention: both launch at their window expiry.
  EXPECT_EQ(outcomes[0].dispatch_us, 100u);
  EXPECT_EQ(outcomes[1].dispatch_us, 100u);
}

TEST_F(ServingTest, TraceGenerationIsDeterministicAndSorted) {
  TrafficSpec spec;
  spec.tenants = 2;
  spec.duration_us = 50000;
  spec.rate_rps = 400.0;
  spec.seed = 99;
  const auto a = generate_trace(spec, Shape{12});
  const auto b = generate_trace(spec, Shape{12});
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, i);
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].tenant, b[i].tenant);
    EXPECT_EQ(a[i].arrival_us, b[i].arrival_us);
    if (i > 0) EXPECT_GE(a[i].arrival_us, a[i - 1].arrival_us);
    ASSERT_EQ(a[i].input.numel(), b[i].input.numel());
    EXPECT_EQ(std::memcmp(a[i].input.data(), b[i].input.data(),
                          a[i].input.numel() * sizeof(float)),
              0);
  }
  TrafficSpec other = spec;
  other.seed = 100;
  const auto c = generate_trace(other, Shape{12});
  bool differs = c.size() != a.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i)
    differs = a[i].arrival_us != c[i].arrival_us;
  EXPECT_TRUE(differs) << "different seeds should give different traces";
}

// The tentpole determinism claim: an entire replay — statuses, stamps, batch
// sizes, and output bytes — is identical for any RERAMDL_THREADS.
TEST_F(ServingTest, ReplayBitReproducibleAcrossThreadCounts) {
  TrafficSpec spec;
  spec.tenants = 2;
  spec.duration_us = 60000;
  spec.rate_rps = 300.0;
  spec.seed = 42;

  auto run = [&](std::size_t threads) {
    parallel::set_thread_count(threads);
    ServingConfig cfg;
    cfg.max_batch = 4;
    cfg.max_wait_us = 2000;
    cfg.queue_depth = 8;
    cfg.admission = AdmissionPolicy::kShedOldest;
    auto net0 = make_tiny_net(21);
    auto net1 = make_tiny_net(22);
    Server server(cfg);
    server.add_tenant(*net0, accel_config());
    server.add_tenant(*net1, accel_config());
    auto outcomes = server.run_replay(generate_trace(spec, Shape{12}));
    EXPECT_TRUE(server.accounting_conserved());
    return outcomes;
  };

  const auto ref = run(1);
  ASSERT_FALSE(ref.empty());
  for (std::size_t threads : {2u, 8u}) {
    SCOPED_TRACE(testing::Message() << "threads=" << threads);
    const auto got = run(threads);
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(got[i].id, ref[i].id);
      EXPECT_EQ(got[i].tenant, ref[i].tenant);
      EXPECT_EQ(got[i].status, ref[i].status);
      EXPECT_EQ(got[i].arrival_us, ref[i].arrival_us);
      EXPECT_EQ(got[i].dispatch_us, ref[i].dispatch_us);
      EXPECT_EQ(got[i].done_us, ref[i].done_us);
      EXPECT_EQ(got[i].batch_size, ref[i].batch_size);
      ASSERT_EQ(got[i].output.numel(), ref[i].output.numel());
      if (got[i].output.numel() > 0)
        EXPECT_EQ(std::memcmp(got[i].output.data(), ref[i].output.data(),
                              ref[i].output.numel() * sizeof(float)),
                  0)
            << "output bytes differ for request " << ref[i].id;
    }
  }
}

}  // namespace
}  // namespace reramdl::serving
