#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "common/stats.hpp"
#include "device/quantizer.hpp"
#include "device/reram_cell.hpp"
#include "device/variation.hpp"

namespace reramdl::device {
namespace {

TEST(CellParams, LevelsFromBits) {
  CellParams c;
  c.bits_per_cell = 4;
  EXPECT_EQ(c.levels(), 16u);
  c.bits_per_cell = 1;
  EXPECT_EQ(c.levels(), 2u);
}

TEST(CellParams, ConductanceEndpoints) {
  CellParams c;
  EXPECT_DOUBLE_EQ(c.conductance_us(0), c.g_off_us);
  EXPECT_DOUBLE_EQ(c.conductance_us(c.levels() - 1), c.g_on_us);
}

TEST(CellParams, ConductanceMonotoneInLevel) {
  CellParams c;
  for (std::size_t l = 1; l < c.levels(); ++l)
    EXPECT_GT(c.conductance_us(l), c.conductance_us(l - 1));
}

TEST(CellParams, OutOfRangeLevelThrows) {
  CellParams c;
  EXPECT_THROW(c.conductance_us(c.levels()), CheckError);
}

TEST(CellParams, ProgramCostsScaleWithPulses) {
  CellParams c;
  c.tune_pulses = 5;
  EXPECT_DOUBLE_EQ(c.program_energy_pj(), 5.0 * c.write_energy_pj);
  EXPECT_DOUBLE_EQ(c.program_latency_ns(), 5.0 * c.write_pulse_ns);
}

class QuantizerRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(QuantizerRoundTrip, ErrorBoundedByHalfStep) {
  const std::size_t bits = GetParam();
  const LinearQuantizer q(bits, 2.0);
  Rng rng(bits);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 2.0);
    const double back = q.dequantize(q.quantize(v));
    EXPECT_LE(std::abs(back - v), q.step() * 0.5 + 1e-12);
  }
}

TEST_P(QuantizerRoundTrip, SaturatesAtRangeEdge) {
  const std::size_t bits = GetParam();
  const LinearQuantizer q(bits, 1.0);
  EXPECT_EQ(q.quantize(100.0), q.max_level());
  EXPECT_EQ(q.quantize(-100.0), -q.max_level());
}

INSTANTIATE_TEST_SUITE_P(Bits, QuantizerRoundTrip,
                         ::testing::Values(1, 2, 4, 8, 12, 16));

TEST(Quantizer, ZeroMapsToZero) {
  const LinearQuantizer q(8, 1.0);
  EXPECT_EQ(q.quantize(0.0), 0);
  EXPECT_DOUBLE_EQ(q.dequantize(0), 0.0);
}

TEST(Quantizer, SignSymmetry) {
  const LinearQuantizer q(8, 1.0);
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const double v = rng.uniform(0.0, 1.0);
    EXPECT_EQ(q.quantize(v), -q.quantize(-v));
  }
}

TEST(Quantizer, InvalidConfigThrows) {
  EXPECT_THROW(LinearQuantizer(0, 1.0), CheckError);
  EXPECT_THROW(LinearQuantizer(8, 0.0), CheckError);
  EXPECT_THROW(LinearQuantizer(8, -1.0), CheckError);
}

class BitSliceRoundTrip
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(BitSliceRoundTrip, SliceUnsliceIdentity) {
  const auto [bits_per_slice, num_slices] = GetParam();
  Rng rng(77);
  const std::uint64_t max =
      (bits_per_slice * num_slices >= 64)
          ? ~std::uint64_t{0}
          : (std::uint64_t{1} << (bits_per_slice * num_slices)) - 1;
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t m = rng.next_u64() & max;
    const auto slices = bit_slice(m, bits_per_slice, num_slices);
    EXPECT_EQ(bit_unslice(slices, bits_per_slice), m);
    for (const auto s : slices)
      EXPECT_LT(s, std::uint64_t{1} << bits_per_slice);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, BitSliceRoundTrip,
    ::testing::Values(std::pair<std::size_t, std::size_t>{4, 4},
                      std::pair<std::size_t, std::size_t>{2, 8},
                      std::pair<std::size_t, std::size_t>{1, 16},
                      std::pair<std::size_t, std::size_t>{8, 2},
                      std::pair<std::size_t, std::size_t>{4, 2}));

TEST(BitSlice, OverflowingMagnitudeThrows) {
  EXPECT_THROW(bit_slice(16, 2, 2), CheckError);  // 16 needs 5 bits, have 4
}

TEST(Variation, DisabledIsIdentity) {
  VariationModel vm(VariationParams{}, Rng(1));
  EXPECT_FALSE(vm.params().enabled());
  for (double level : {0.0, 3.0, 15.0})
    EXPECT_DOUBLE_EQ(vm.perturb(level, 15.0), level);
}

TEST(Variation, LognormalPreservesMeanLevel) {
  VariationParams p;
  p.sigma = 0.2;
  VariationModel vm(p, Rng(2));
  RunningStat s;
  for (int i = 0; i < 100000; ++i) s.add(vm.perturb(8.0, 15.0));
  EXPECT_NEAR(s.mean(), 8.0, 0.05);
}

TEST(Variation, PerturbedLevelsStayInRange) {
  VariationParams p;
  p.sigma = 1.0;
  VariationModel vm(p, Rng(3));
  for (int i = 0; i < 10000; ++i) {
    const double l = vm.perturb(14.0, 15.0);
    EXPECT_GE(l, 0.0);
    EXPECT_LE(l, 15.0);
  }
}

TEST(Variation, StuckAtRatesObserved) {
  // The deprecated stuck-at rates now seed a FaultMap instead of drawing
  // inside perturb(): the sampled stuck population must match the rates.
  VariationParams p;
  p.stuck_at_off_rate = 0.1;
  p.stuck_at_on_rate = 0.05;
  VariationModel vm(p, Rng(4));
  EXPECT_TRUE(vm.has_legacy_faults());

  FaultMap map(vm.legacy_fault_params());
  map.bind(4, 4, 128, 128);  // 4 slices x 2 polarities x 128 x 128 cells
  const double n = 4.0 * 2 * 128 * 128;
  double off = 0, on = 0;
  for (const auto& f : map.stuck_faults()) {
    if (f.type == FaultType::kStuckOff) ++off;
    if (f.type == FaultType::kStuckOn) ++on;
  }
  EXPECT_NEAR(off / n, 0.1, 0.01);
  EXPECT_NEAR(on / n, 0.05, 0.01);
  // perturb() itself no longer swallows faults: with sigma == 0 it is the
  // identity even when the legacy rates are set.
  for (double level : {0.0, 7.0, 15.0})
    EXPECT_DOUBLE_EQ(vm.perturb(level, 15.0), level);
}

TEST(Variation, InvalidRatesThrow) {
  VariationParams p;
  p.stuck_at_off_rate = 0.7;
  p.stuck_at_on_rate = 0.7;
  EXPECT_THROW(VariationModel(p, Rng(5)), CheckError);
}

}  // namespace
}  // namespace reramdl::device
