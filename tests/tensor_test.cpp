#include <gtest/gtest.h>

#include "common/check.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace reramdl {
namespace {

TEST(Shape, RankDimsNumel) {
  const Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3u);
  EXPECT_EQ(s[0], 2u);
  EXPECT_EQ(s[1], 3u);
  EXPECT_EQ(s[2], 4u);
  EXPECT_EQ(s.numel(), 24u);
}

TEST(Shape, RowMajorStrides) {
  const Shape s{2, 3, 4};
  EXPECT_EQ(s.stride(0), 12u);
  EXPECT_EQ(s.stride(1), 4u);
  EXPECT_EQ(s.stride(2), 1u);
}

TEST(Shape, EqualityAndToString) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
  EXPECT_EQ(Shape({2, 3}).to_string(), "[2, 3]");
}

TEST(Shape, OutOfRangeDimThrows) {
  const Shape s{2};
  EXPECT_THROW(s.dim(1), CheckError);
}

TEST(Tensor, ConstructionFillsValue) {
  Tensor t(Shape{2, 2}, 3.0f);
  EXPECT_EQ(t.numel(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(t[i], 3.0f);
}

TEST(Tensor, MultiDimAccessorsRowMajor) {
  Tensor t(Shape{2, 3});
  t.at(1, 2) = 7.0f;
  EXPECT_FLOAT_EQ(t[5], 7.0f);
  Tensor u(Shape{2, 2, 2, 2});
  u.at(1, 0, 1, 0) = 9.0f;
  EXPECT_FLOAT_EQ(u[8 + 2], 9.0f);
}

TEST(Tensor, AccessorsBoundsChecked) {
  Tensor t(Shape{2, 3});
  EXPECT_THROW(t.at(2, 0), CheckError);
  EXPECT_THROW(t.at(0, 3), CheckError);
  EXPECT_THROW(t.at(0), CheckError);  // rank mismatch
  EXPECT_THROW(t[6], CheckError);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t(Shape{2, 3});
  for (std::size_t i = 0; i < 6; ++i) t[i] = static_cast<float>(i);
  const Tensor r = t.reshaped(Shape{3, 2});
  for (std::size_t i = 0; i < 6; ++i) EXPECT_FLOAT_EQ(r[i], static_cast<float>(i));
  EXPECT_THROW(t.reshaped(Shape{4, 2}), CheckError);
}

TEST(Tensor, ElementwiseOps) {
  Tensor a(Shape{3}, 1.0f), b(Shape{3}, 2.0f);
  a += b;
  EXPECT_FLOAT_EQ(a[0], 3.0f);
  a -= b;
  EXPECT_FLOAT_EQ(a[1], 1.0f);
  a *= 4.0f;
  EXPECT_FLOAT_EQ(a[2], 4.0f);
}

TEST(Tensor, UniformInitializerInRange) {
  Rng rng(1);
  const Tensor t = Tensor::uniform(Shape{1000}, rng, -2.0f, 2.0f);
  for (std::size_t i = 0; i < t.numel(); ++i) {
    EXPECT_GE(t[i], -2.0f);
    EXPECT_LT(t[i], 2.0f);
  }
}

TEST(Tensor, HeNormalScalesWithFanIn) {
  Rng rng(2);
  const Tensor t = Tensor::he_normal(Shape{200, 50}, rng, 200);
  double var = 0.0;
  for (std::size_t i = 0; i < t.numel(); ++i)
    var += static_cast<double>(t[i]) * t[i];
  var /= static_cast<double>(t.numel());
  EXPECT_NEAR(var, 2.0 / 200.0, 2e-3);
}

TEST(Tensor, SumAndAbsMax) {
  Tensor t(Shape{3});
  t[0] = -5.0f;
  t[1] = 2.0f;
  t[2] = 1.0f;
  EXPECT_FLOAT_EQ(t.sum(), -2.0f);
  EXPECT_FLOAT_EQ(t.abs_max(), 5.0f);
}

// ---- ops ---------------------------------------------------------------

Tensor iota(Shape s) {
  Tensor t(s);
  for (std::size_t i = 0; i < t.numel(); ++i) t[i] = static_cast<float>(i + 1);
  return t;
}

TEST(Ops, MatmulKnownValues) {
  // [[1,2],[3,4]] x [[5,6],[7,8]] = [[19,22],[43,50]]
  const Tensor a = iota(Shape{2, 2});
  Tensor b(Shape{2, 2});
  b[0] = 5;
  b[1] = 6;
  b[2] = 7;
  b[3] = 8;
  const Tensor c = ops::matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 50.0f);
}

TEST(Ops, MatmulShapeMismatchThrows) {
  EXPECT_THROW(ops::matmul(Tensor(Shape{2, 3}), Tensor(Shape{2, 3})), CheckError);
}

struct MatmulDims {
  std::size_t m, k, n;
};

class MatmulVariants : public ::testing::TestWithParam<MatmulDims> {};

TEST_P(MatmulVariants, TransposedFormsAgreeWithPlain) {
  const auto [m, k, n] = GetParam();
  Rng rng(99);
  const Tensor a = Tensor::normal(Shape{m, k}, rng, 0.0f, 1.0f);
  const Tensor b = Tensor::normal(Shape{k, n}, rng, 0.0f, 1.0f);
  const Tensor c = ops::matmul(a, b);

  // matmul_transposed_b(a, b^T) == a b
  const Tensor bt = ops::transpose(b);
  const Tensor c2 = ops::matmul_transposed_b(a, bt);
  // matmul_transposed_a(a^T, b) == a b
  const Tensor at = ops::transpose(a);
  const Tensor c3 = ops::matmul_transposed_a(at, b);

  ASSERT_EQ(c2.shape(), c.shape());
  ASSERT_EQ(c3.shape(), c.shape());
  for (std::size_t i = 0; i < c.numel(); ++i) {
    EXPECT_NEAR(c2[i], c[i], 1e-3f);
    EXPECT_NEAR(c3[i], c[i], 1e-3f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Dims, MatmulVariants,
    ::testing::Values(MatmulDims{1, 1, 1}, MatmulDims{2, 3, 4},
                      MatmulDims{7, 5, 3}, MatmulDims{16, 16, 16},
                      MatmulDims{1, 32, 8}, MatmulDims{33, 17, 5}));

TEST(Ops, AddRowBiasBroadcasts) {
  Tensor x(Shape{2, 3}, 1.0f);
  Tensor b(Shape{3});
  b[0] = 10;
  b[1] = 20;
  b[2] = 30;
  ops::add_row_bias(x, b);
  EXPECT_FLOAT_EQ(x.at(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(x.at(1, 2), 31.0f);
}

TEST(Ops, ColumnSums) {
  const Tensor x = iota(Shape{2, 3});  // rows [1,2,3],[4,5,6]
  const Tensor s = ops::column_sums(x);
  EXPECT_FLOAT_EQ(s[0], 5.0f);
  EXPECT_FLOAT_EQ(s[1], 7.0f);
  EXPECT_FLOAT_EQ(s[2], 9.0f);
}

TEST(Ops, TransposeInvolution) {
  Rng rng(3);
  const Tensor x = Tensor::normal(Shape{4, 7}, rng, 0.0f, 1.0f);
  const Tensor tt = ops::transpose(ops::transpose(x));
  for (std::size_t i = 0; i < x.numel(); ++i) EXPECT_FLOAT_EQ(tt[i], x[i]);
}

}  // namespace
}  // namespace reramdl
