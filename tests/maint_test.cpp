// Online-maintenance acceptance tests (DESIGN.md §16): endurance tracking,
// tile health/refresh, the MaintenanceEngine's triggers, the three
// arbitration policies against a serving workload, and bit-reproducibility
// of the engine-managed replay across thread counts.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <vector>

#include "arch/params.hpp"
#include "circuit/crossbar_grid.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/functional.hpp"
#include "device/endurance_tracker.hpp"
#include "maint/engine.hpp"
#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "nn/sequential.hpp"
#include "serving/server.hpp"
#include "serving/workload.hpp"

namespace reramdl {
namespace {

using circuit::CrossbarConfig;
using circuit::CrossbarGrid;
using circuit::CrossbarHealth;
using circuit::ProgramOptions;
using device::EnduranceTracker;
using maint::MaintenanceConfig;
using maint::MaintenanceEngine;
using maint::Policy;

class MaintTest : public ::testing::Test {
 protected:
  void TearDown() override { parallel::set_thread_count(0); }
};

// ---- EnduranceTracker -------------------------------------------------------

TEST_F(MaintTest, EnduranceTrackerCountsAndRotates) {
  EnduranceTracker t(4, 100.0);
  for (std::size_t i = 0; i < 4; ++i) t.record_program(i);
  EXPECT_EQ(t.total_writes(), 4u);
  EXPECT_EQ(t.imbalance_since_rotation(), 0u);

  // Hammer logical tile 1: wear lands on physical array 1.
  for (int i = 0; i < 5; ++i) t.record_program(1);
  EXPECT_EQ(t.writes(1), 6u);
  EXPECT_EQ(t.imbalance_since_rotation(), 5u);
  EXPECT_DOUBLE_EQ(t.wear_fraction(), 0.06);

  t.rotate();
  EXPECT_EQ(t.rotations(), 1u);
  // Rotation resets the imbalance baseline but not lifetime wear...
  EXPECT_EQ(t.imbalance_since_rotation(), 0u);
  EXPECT_EQ(t.max_writes(), 6u);
  // ...and shifts the logical->physical map by one.
  EXPECT_EQ(t.physical_of(0), 1u);
  EXPECT_EQ(t.physical_of(3), 0u);
  // Logical tile 1 now wears physical array 2.
  t.record_program(1);
  EXPECT_EQ(t.writes(2), 2u);
}

// ---- Crossbar / grid health -------------------------------------------------

TEST_F(MaintTest, HealthTracksAgeDriftAndResetsOnProgram) {
  Rng rng(60);
  const Tensor w = Tensor::uniform(Shape{32, 32}, rng, -1.0f, 1.0f);
  CrossbarConfig cfg;
  cfg.rows = cfg.cols = 32;
  circuit::Crossbar xbar(cfg);
  xbar.program(w, 1.0);

  CrossbarHealth h = xbar.health();
  EXPECT_EQ(h.program_passes, 1u);
  EXPECT_DOUBLE_EQ(h.seconds_since_program, 0.0);
  EXPECT_DOUBLE_EQ(h.cumulative_drift, 1.0);

  xbar.advance_age(50.0);
  xbar.apply_drift(0.98);
  xbar.apply_drift(0.99);
  h = xbar.health();
  EXPECT_DOUBLE_EQ(h.seconds_since_program, 50.0);
  EXPECT_DOUBLE_EQ(h.cumulative_drift, 0.98 * 0.99);

  xbar.program(w, 1.0);  // reprogram restores fresh state
  h = xbar.health();
  EXPECT_EQ(h.program_passes, 2u);
  EXPECT_DOUBLE_EQ(h.seconds_since_program, 0.0);
  EXPECT_DOUBLE_EQ(h.cumulative_drift, 1.0);
}

TEST_F(MaintTest, HealthReportsSpareUsage) {
  Rng rng(61);
  const Tensor w = Tensor::uniform(Shape{32, 30}, rng, -1.0f, 1.0f);
  CrossbarConfig cfg;
  cfg.rows = 32;
  cfg.cols = 34;
  cfg.spare_cols = 4;
  ProgramOptions opts;
  opts.faults.stuck_at_off_rate = 0.002;
  opts.faults.seed = 62;
  opts.write_verify = true;
  circuit::Crossbar xbar(cfg);
  xbar.program(w, 1.0, opts);
  const CrossbarHealth h = xbar.health();
  // Consumed spares (hosting or burned by failed trials) plus the remaining
  // pool never exceed the configured spare count.
  EXPECT_LE(h.spare_cols_used, 4u);
  EXPECT_LE(h.spares_remaining, 4u - h.spare_cols_used);
  EXPECT_EQ(h.stuck_cells, xbar.stats().stuck_cells);
  EXPECT_EQ(h.spare_cols_used, xbar.stats().spare_cols_used);
}

TEST_F(MaintTest, GridRefreshTileRestoresLevelsBitwise) {
  Rng rng(63);
  const Tensor w = Tensor::uniform(Shape{64, 64}, rng, -1.0f, 1.0f);
  CrossbarConfig cfg;
  cfg.rows = cfg.cols = 32;
  CrossbarGrid grid(cfg);
  ProgramOptions opts;
  opts.faults.transient_flip_rate = 2e-3;
  opts.faults.seed = 64;
  grid.program(w, 1.0, opts);
  ASSERT_EQ(grid.num_arrays(), 4u);
  const std::vector<double> pristine2 = grid.array(2).effective_weights();

  // Damage tile 2 (drift + flips), then refresh it in place.
  grid.apply_drift_tile(2, 0.9);
  grid.advance_age(100.0);
  grid.inject_at(5);
  EXPECT_GT(grid.health().seconds_since_program, 0.0);

  const std::uint64_t cells = grid.refresh_tile(2, w, opts);
  EXPECT_GT(cells, 0u);
  const std::vector<double>& after = grid.array(2).effective_weights();
  ASSERT_EQ(after.size(), pristine2.size());
  for (std::size_t i = 0; i < after.size(); ++i)
    EXPECT_EQ(after[i], pristine2[i]);
  // The refreshed tile's clock is reset; others still carry their age.
  EXPECT_DOUBLE_EQ(grid.array(2).health().seconds_since_program, 0.0);
  EXPECT_DOUBLE_EQ(grid.array(0).health().seconds_since_program, 100.0);
}

TEST_F(MaintTest, PhysMapRotationChangesFaultPopulationDeterministically) {
  Rng rng(65);
  const Tensor w = Tensor::uniform(Shape{64, 64}, rng, -1.0f, 1.0f);
  CrossbarConfig cfg;
  cfg.rows = cfg.cols = 32;
  ProgramOptions opts;
  opts.faults.stuck_at_off_rate = 0.01;
  opts.faults.seed = 66;

  CrossbarGrid a(cfg), b(cfg);
  a.program(w, 1.0, opts);
  b.program(w, 1.0, opts);

  // Rotated map: tile t takes physical slot (t + 1) % 4 -> tile 0 must
  // reproduce the fault population tile 1 had under the identity map.
  b.set_tile_phys_map({1, 2, 3, 0});
  b.refresh_tile(0, w, opts);
  const auto& want = a.array(1).fault_map().stuck_faults();
  const auto& got = b.array(0).fault_map().stuck_faults();
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_EQ(got[i].cell, want[i].cell);
}

// ---- Engine: shared fixtures ------------------------------------------------

std::unique_ptr<nn::Sequential> make_tiny_net(std::uint64_t seed) {
  auto net = std::make_unique<nn::Sequential>();
  Rng rng(seed);
  net->emplace<nn::Dense>(12, 8, rng);
  net->emplace<nn::ReLU>();
  net->emplace<nn::Dense>(8, 4, rng);
  return net;
}

core::AcceleratorConfig accel_config() {
  core::AcceleratorConfig cfg;
  cfg.chip = arch::pipelayer_chip();
  return cfg;
}

ProgramOptions maint_opts(std::uint64_t seed) {
  ProgramOptions opts;
  opts.faults.transient_flip_rate = 1e-3;
  opts.faults.seed = seed;
  opts.write_verify = true;
  return opts;
}

MaintenanceConfig engine_cfg(Policy p) {
  MaintenanceConfig cfg;
  cfg.policy = p;
  cfg.seconds_per_us = 1.0;    // 1 virtual µs ages the arrays 1 second
  cfg.drift_epoch_us = 100;
  cfg.refresh_age_s = 500.0;
  cfg.scrub_interval_s = 300.0;
  cfg.wear_rotate_delta = 0;   // rotation off unless a test wants it
  return cfg;
}

// ---- Engine behavior --------------------------------------------------------

TEST_F(MaintTest, DriftRefreshTriggersAndResetsTileClocks) {
  auto net = make_tiny_net(70);
  core::CrossbarExecutor exec(*net, accel_config(), maint_opts(71));
  MaintenanceEngine engine(engine_cfg(Policy::kIdleOnly));
  engine.manage(exec, device::RetentionParams{0.02, 1.0}, maint_opts(71));

  engine.advance_time(600);  // 600 device-seconds: all tiles pass 500 s
  EXPECT_GT(engine.pending_actions(), 0u);
  const double aged = exec.health().seconds_since_program;
  EXPECT_GT(aged, 500.0);
  EXPECT_LT(exec.health().cumulative_drift, 1.0);

  engine.run_pending();
  const auto stats = engine.stats();
  EXPECT_GT(stats.refreshes, 0u);
  EXPECT_EQ(stats.deferred, 0u);
  EXPECT_GT(stats.busy_us, 0u);
  // Every tile refreshed: the oldest age fell back below the trigger.
  EXPECT_LT(exec.health().seconds_since_program, 500.0);
  EXPECT_GT(exec.health().cumulative_drift,
            0.999);  // refreshed tiles carry no drift
}

TEST_F(MaintTest, ScrubDetectsInjectedFaultsAndRepairs) {
  auto net = make_tiny_net(72);
  // The tiny net has few cells; a high flip rate guarantees hits.
  ProgramOptions opts = maint_opts(73);
  opts.faults.transient_flip_rate = 0.02;
  core::CrossbarExecutor exec(*net, accel_config(), opts);
  std::vector<std::vector<double>> pristine;
  for (std::size_t g = 0; g < exec.num_grids(); ++g)
    for (std::size_t t = 0; t < exec.grid(g).num_arrays(); ++t)
      pristine.push_back(exec.grid(g).array(t).effective_weights());

  MaintenanceConfig cfg = engine_cfg(Policy::kIdleOnly);
  cfg.drift_refresh = false;  // isolate the scrubber
  MaintenanceEngine engine(cfg);
  engine.manage(exec, device::RetentionParams{0.0001, 1e12}, opts);

  ASSERT_GT(exec.inject_at(1), 0u);  // mid-run soft errors
  engine.advance_time(400);          // past one scrub interval
  EXPECT_GT(engine.stats().scrub_detected, 0u);
  EXPECT_GT(engine.pending_actions(), 0u);
  engine.run_pending();
  EXPECT_GT(engine.stats().scrub_repairs, 0u);

  // Repaired tiles are bit-identical to their pristine programming.
  std::size_t k = 0;
  for (std::size_t g = 0; g < exec.num_grids(); ++g)
    for (std::size_t t = 0; t < exec.grid(g).num_arrays(); ++t, ++k) {
      const auto& eff = exec.grid(g).array(t).effective_weights();
      for (std::size_t i = 0; i < eff.size(); ++i)
        EXPECT_EQ(eff[i], pristine[k][i]) << "grid " << g << " tile " << t;
    }
  // A second scan with no new faults stays quiet.
  const auto detected = engine.stats().scrub_detected;
  engine.advance_time(800);
  EXPECT_EQ(engine.stats().scrub_detected, detected);
}

TEST_F(MaintTest, WearLevelingRotatesAfterImbalancedRepairs) {
  // A multi-tile grid where scrub repairs land on a strict subset of tiles:
  // the repairs skew the write counts, the wear scan notices and rotates.
  nn::Sequential net;
  Rng rng(74);
  net.emplace<nn::Dense>(200, 144, rng);
  ProgramOptions opts = maint_opts(75);
  opts.faults.transient_flip_rate = 3e-6;
  core::CrossbarExecutor exec(net, accel_config(), opts);
  const std::size_t tiles = exec.grid(0).num_arrays();
  ASSERT_GE(tiles, 4u);

  MaintenanceConfig cfg = engine_cfg(Policy::kIdleOnly);
  cfg.drift_refresh = false;
  cfg.scrub_interval_s = 100.0;
  cfg.wear_rotate_delta = 1;
  MaintenanceEngine engine(cfg);
  engine.manage(exec, device::RetentionParams{0.0001, 1e12}, opts);

  ASSERT_GT(exec.inject_at(3), 0u);  // flips on a subset of tiles
  engine.advance_time(200);          // scrub detects and queues repairs
  engine.run_pending();
  ASSERT_GT(engine.stats().scrub_repairs, 0u);
  ASSERT_LT(engine.stats().scrub_repairs, tiles);  // strict subset
  EXPECT_GE(engine.wear(0, 0).imbalance_since_rotation(), 1u);

  engine.advance_time(400);  // the wear scan sees the imbalance
  engine.run_pending();
  EXPECT_EQ(engine.stats().rotations, 1u);
  EXPECT_EQ(engine.stats().migrated_tiles, tiles);
  // The grid now runs the tracker's rotated logical->physical map, the
  // migration rebalanced writes, and no rotation is pending.
  EXPECT_EQ(exec.grid(0).tile_phys_map(), engine.wear(0, 0).mapping());
  EXPECT_EQ(engine.wear(0, 0).physical_of(0), 1u);
  EXPECT_EQ(engine.wear(0, 0).imbalance_since_rotation(), 0u);
  EXPECT_EQ(engine.pending_actions(), 0u);
}

TEST_F(MaintTest, IdleOnlyNeverDelaysDemand) {
  auto net = make_tiny_net(76);
  core::CrossbarExecutor exec(*net, accel_config(), maint_opts(77));
  MaintenanceEngine engine(engine_cfg(Policy::kIdleOnly));
  engine.manage(exec, device::RetentionParams{0.02, 1.0}, maint_opts(77));

  engine.advance_time(600);
  ASSERT_GT(engine.pending_actions(), 0u);
  // Tight launch right at now: no gap, nothing runs, no delay.
  EXPECT_EQ(engine.on_demand(600, 600), 600u);
  // Wide gap: maintenance progresses inside it, still no delay.
  const std::uint64_t adj = engine.on_demand(600, 5000);
  EXPECT_EQ(adj, 5000u);
  EXPECT_GT(engine.stats().refreshes + engine.stats().scrub_repairs, 0u);
  EXPECT_EQ(engine.stats().demand_delay_us, 0u);
}

TEST_F(MaintTest, FixedSlotPushesLaunchOutOfReservedWindow) {
  auto net = make_tiny_net(78);
  core::CrossbarExecutor exec(*net, accel_config(), maint_opts(79));
  MaintenanceConfig cfg = engine_cfg(Policy::kFixedSlot);
  cfg.slot_period_us = 1000;
  cfg.slot_len_us = 200;
  MaintenanceEngine engine(cfg);
  engine.manage(exec, device::RetentionParams{0.02, 1.0}, maint_opts(79));

  engine.advance_time(2050);  // aged enough to queue refreshes
  ASSERT_GT(engine.pending_actions(), 0u);
  // 2050 lies inside the window [2000, 2200): the launch lands at 2200.
  const std::uint64_t adj = engine.on_demand(2050, 2050);
  EXPECT_EQ(adj, 2200u);
  EXPECT_GT(engine.stats().demand_delay_us, 0u);

  // A launch outside any window (and an empty queue) is untouched.
  engine.run_pending();
  const std::uint64_t before = engine.stats().demand_delay_us;
  EXPECT_EQ(engine.on_demand(2400, 2500), 2500u);
  EXPECT_EQ(engine.stats().demand_delay_us, before);
}

TEST_F(MaintTest, UrgencyPreemptsOnExpiredDeadlines) {
  auto net = make_tiny_net(80);
  core::CrossbarExecutor exec(*net, accel_config(), maint_opts(81));
  MaintenanceConfig cfg = engine_cfg(Policy::kUrgency);
  cfg.urgency_deadline_us = 50;
  MaintenanceEngine engine(cfg);
  engine.manage(exec, device::RetentionParams{0.02, 1.0}, maint_opts(81));

  engine.advance_time(600);
  ASSERT_GT(engine.pending_actions(), 0u);
  // Deadlines (due + 50) are long expired at launch 700: repairs run
  // immediately and the demand launch is delayed past them.
  const std::uint64_t adj = engine.on_demand(700, 700);
  EXPECT_GT(adj, 700u);
  EXPECT_GT(engine.stats().demand_delay_us, 0u);
  EXPECT_EQ(engine.pending_actions(), 0u);
}

// ---- Engine under the serving loop ------------------------------------------

struct ServedRun {
  std::vector<serving::Outcome> outcomes;
  std::uint64_t digest = 0;
  maint::MaintenanceStats stats;
};

ServedRun serve_with_maintenance(Policy policy) {
  auto net = make_tiny_net(90);  // must outlive the server's executor
  serving::ServingConfig scfg;
  scfg.max_batch = 8;
  scfg.max_wait_us = 500;
  scfg.num_chips = 1;
  serving::Server server(scfg);
  server.add_tenant(*net, accel_config());

  MaintenanceConfig mcfg = engine_cfg(policy);
  mcfg.refresh_age_s = 2000.0;
  mcfg.scrub_interval_s = 1500.0;
  MaintenanceEngine engine(mcfg);
  engine.manage(server.tenant_executor(0),
                device::RetentionParams{0.02, 1.0}, maint_opts(91));
  server.attach_maintenance(0, &engine);

  serving::TrafficSpec spec;
  spec.tenants = 1;
  spec.duration_us = 20'000;
  spec.rate_rps = 800.0;
  spec.seed = 92;
  ServedRun run;
  run.outcomes = server.run_replay(serving::generate_trace(spec, Shape{12}));
  run.digest = engine.digest();
  run.stats = engine.stats();
  EXPECT_TRUE(server.accounting_conserved());
  return run;
}

TEST_F(MaintTest, ServingReplayWithMaintenanceIsThreadInvariant) {
  const ServedRun base = serve_with_maintenance(Policy::kUrgency);
  EXPECT_GT(base.stats.refreshes + base.stats.scrub_repairs +
                base.stats.deferred,
            0u);
  for (const std::size_t threads : {1u, 4u, 8u}) {
    parallel::set_thread_count(threads);
    const ServedRun run = serve_with_maintenance(Policy::kUrgency);
    EXPECT_EQ(run.digest, base.digest) << threads << " threads";
    ASSERT_EQ(run.outcomes.size(), base.outcomes.size());
    for (std::size_t i = 0; i < run.outcomes.size(); ++i) {
      EXPECT_EQ(run.outcomes[i].done_us, base.outcomes[i].done_us);
      EXPECT_EQ(run.outcomes[i].dispatch_us, base.outcomes[i].dispatch_us);
      for (std::size_t e = 0; e < run.outcomes[i].output.numel(); ++e)
        EXPECT_EQ(run.outcomes[i].output[e], base.outcomes[i].output[e]);
    }
  }
}

TEST_F(MaintTest, MaintenanceDelaysAreVisibleInOutcomes) {
  // Urgency with tiny deadlines under drift pressure must delay at least
  // one dispatch beyond its undelayed launch time.
  const ServedRun urgent = serve_with_maintenance(Policy::kUrgency);
  if (urgent.stats.demand_delay_us > 0) {
    std::uint64_t max_gap = 0;
    for (const auto& o : urgent.outcomes)
      if (o.status == serving::RequestStatus::kCompleted)
        max_gap = std::max(max_gap, o.dispatch_us - o.arrival_us);
    EXPECT_GT(max_gap, 0u);
  }
  SUCCEED();
}

// ---- Config parsing ---------------------------------------------------------

TEST_F(MaintTest, ConfigFromEnvParsesKnobs) {
  setenv("RERAMDL_MAINT_POLICY", "fixed_slot", 1);
  setenv("RERAMDL_MAINT_SECONDS_PER_US", "2.5", 1);
  setenv("RERAMDL_MAINT_SLOT_PERIOD_US", "4000", 1);
  setenv("RERAMDL_MAINT_SCRUB", "off", 1);
  const MaintenanceConfig cfg = MaintenanceConfig::from_env();
  EXPECT_EQ(cfg.policy, Policy::kFixedSlot);
  EXPECT_DOUBLE_EQ(cfg.seconds_per_us, 2.5);
  EXPECT_EQ(cfg.slot_period_us, 4000u);
  EXPECT_FALSE(cfg.scrub);
  EXPECT_TRUE(cfg.drift_refresh);
  unsetenv("RERAMDL_MAINT_POLICY");
  unsetenv("RERAMDL_MAINT_SECONDS_PER_US");
  unsetenv("RERAMDL_MAINT_SLOT_PERIOD_US");
  unsetenv("RERAMDL_MAINT_SCRUB");
  // An unrecognized policy string is rejected (one-time warning).
  setenv("RERAMDL_MAINT_POLICY", "sometimes", 1);
  EXPECT_EQ(MaintenanceConfig::from_env().policy, Policy::kIdleOnly);
  unsetenv("RERAMDL_MAINT_POLICY");
}

}  // namespace
}  // namespace reramdl
