#include <gtest/gtest.h>

#include "common/check.hpp"
#include "core/related_work.hpp"
#include "workload/model_zoo.hpp"

namespace reramdl::core {
namespace {

struct Fixture {
  baseline::GpuModel gpu{baseline::gtx1080()};
  AcceleratorConfig cfg;
  Scenario scenario{6400, 64000, 64};

  Fixture() { cfg.chip = arch::pipelayer_chip(); }
};

TEST(RelatedWork, AllSystemsHavePositiveCosts) {
  Fixture f;
  const auto net = workload::spec_lenet5();
  for (const SystemCost& c :
       {gpu_only_cost(net, f.scenario, f.gpu),
        isaac_like_cost(net, f.scenario, f.cfg, f.gpu),
        pipelayer_cost(net, f.scenario, f.cfg)}) {
    EXPECT_GT(c.train_time_s, 0.0);
    EXPECT_GT(c.infer_time_s, 0.0);
    EXPECT_GT(c.total_energy_j(), 0.0);
  }
}

TEST(RelatedWork, IsaacLikeSharesGpuTrainingCost) {
  Fixture f;
  const auto net = workload::spec_alexnet();
  const auto gpu_only = gpu_only_cost(net, f.scenario, f.gpu);
  const auto isaac = isaac_like_cost(net, f.scenario, f.cfg, f.gpu);
  EXPECT_DOUBLE_EQ(isaac.train_time_s, gpu_only.train_time_s);
  EXPECT_DOUBLE_EQ(isaac.train_energy_j, gpu_only.train_energy_j);
}

TEST(RelatedWork, PipelayerTrainsFasterThanBothBaselines) {
  Fixture f;
  for (const auto& net : {workload::spec_lenet5(), workload::spec_alexnet()}) {
    const auto gpu_only = gpu_only_cost(net, f.scenario, f.gpu);
    const auto pipelayer = pipelayer_cost(net, f.scenario, f.cfg);
    EXPECT_LT(pipelayer.train_time_s, gpu_only.train_time_s) << net.name;
  }
}

TEST(RelatedWork, TotalOrderingMatchesPaperArgument) {
  // PipeLayer <= ISAAC-like <= GPU-only on total time for a train+serve mix:
  // the inference-only part helps, but training on-chip helps more.
  Fixture f;
  for (const auto& net : {workload::spec_lenet5(), workload::spec_alexnet()}) {
    const auto gpu_only = gpu_only_cost(net, f.scenario, f.gpu);
    const auto isaac = isaac_like_cost(net, f.scenario, f.cfg, f.gpu);
    const auto pipelayer = pipelayer_cost(net, f.scenario, f.cfg);
    EXPECT_LE(isaac.total_time_s(), gpu_only.total_time_s()) << net.name;
    EXPECT_LE(pipelayer.total_time_s(), isaac.total_time_s()) << net.name;
  }
}

TEST(RelatedWork, AdcReadoutCostsMoreInferenceEnergy) {
  Fixture f;
  const auto net = workload::spec_alexnet();
  const auto isaac = isaac_like_cost(net, f.scenario, f.cfg, f.gpu);
  const auto pipelayer = pipelayer_cost(net, f.scenario, f.cfg);
  EXPECT_GT(isaac.infer_energy_j, pipelayer.infer_energy_j);
}

TEST(RelatedWork, InferenceHeavyMixNarrowsTheGap) {
  // With almost no training in the mix, the ISAAC-like system approaches
  // PipeLayer's total time (its remaining deficit is only conversion costs).
  Fixture f;
  const auto net = workload::spec_lenet5();
  const Scenario train_heavy{64000, 640, 64};
  const Scenario infer_heavy{640, 640000, 64};
  const auto ratio = [&](const Scenario& s) {
    return isaac_like_cost(net, s, f.cfg, f.gpu).total_time_s() /
           pipelayer_cost(net, s, f.cfg).total_time_s();
  };
  EXPECT_LT(ratio(infer_heavy), ratio(train_heavy));
}

TEST(RelatedWork, EmptyScenarioThrows) {
  Fixture f;
  const auto net = workload::spec_lenet5();
  EXPECT_THROW(gpu_only_cost(net, Scenario{0, 100, 64}, f.gpu), CheckError);
}

}  // namespace
}  // namespace reramdl::core
