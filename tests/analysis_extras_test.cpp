// Tests for the analysis extensions: utilization metrics, the unpipelined
// ReGAN report, per-layer cost rows, and a whole-network gradient check that
// exercises every layer kind end to end.
#include <gtest/gtest.h>

#include <cmath>

#include "core/pipelayer.hpp"
#include "core/regan.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/flatten.hpp"
#include "nn/loss.hpp"
#include "nn/pooling.hpp"
#include "nn/sequential.hpp"
#include "pipeline/analytic.hpp"
#include "workload/model_zoo.hpp"

namespace reramdl {
namespace {

TEST(Utilization, PipelinedApproachesOneForLargeBatches) {
  EXPECT_GT(pipeline::pipelayer_training_utilization(16384, 4, 4096), 0.99);
}

TEST(Utilization, PipelinedBeatsSequential) {
  for (std::uint64_t l : {2u, 8u, 16u})
    for (std::uint64_t b : {8u, 64u})
      EXPECT_GT(pipeline::pipelayer_training_utilization(b * 8, l, b),
                pipeline::pipelayer_sequential_utilization(b * 8, l, b));
}

TEST(Utilization, SequentialIsRoughlyOneOverDepth) {
  // Sequential execution keeps one stage busy at a time.
  const double u = pipeline::pipelayer_sequential_utilization(6400, 8, 64);
  EXPECT_NEAR(u, 1.0 / (2.0 * 8 + 1), 0.01);
}

TEST(Utilization, BoundedByOne) {
  for (std::uint64_t l : {1u, 5u})
    for (std::uint64_t b : {1u, 16u, 256u}) {
      const double u = pipeline::pipelayer_training_utilization(b * 4, l, b);
      EXPECT_GT(u, 0.0);
      EXPECT_LE(u, 1.0);
    }
}

TEST(ReGanUnpipelined, SlowerThanAnyPipelinedVariant) {
  core::AcceleratorConfig cfg;
  cfg.chip = arch::regan_chip();
  const core::ReGanAccelerator accel(workload::spec_dcgan_generator(32),
                                     workload::spec_dcgan_discriminator(32),
                                     cfg);
  const auto unpiped = accel.training_report_unpipelined(640, 64);
  for (const bool sp : {false, true})
    for (const bool cs : {false, true})
      EXPECT_GT(unpiped.time_s,
                accel.training_report(640, 64, {sp, cs}).time_s);
}

TEST(ReGanUnpipelined, MatchesClosedForm) {
  core::AcceleratorConfig cfg;
  cfg.chip = arch::regan_chip();
  const core::ReGanAccelerator accel(workload::spec_dcgan_generator(32),
                                     workload::spec_dcgan_discriminator(32),
                                     cfg);
  const auto r = accel.training_report_unpipelined(640, 64);
  const pipeline::GanShape s{accel.l_d(), accel.l_g(), 64};
  EXPECT_EQ(r.pipeline_cycles,
            10u * pipeline::regan_batch_cycles_unpipelined(s));
}

TEST(LayerCosts, RowsCoverAllWeightedLayers) {
  core::AcceleratorConfig cfg;
  cfg.chip = arch::pipelayer_chip();
  const core::PipeLayerAccelerator accel(workload::spec_alexnet(), cfg);
  const auto rows = accel.layer_costs();
  EXPECT_EQ(rows.size(), accel.pipeline_depth());
  std::size_t arrays = 0;
  for (const auto& r : rows) {
    EXPECT_GT(r.arrays, 0u);
    EXPECT_GT(r.activations_per_sample, 0.0);
    EXPECT_GT(r.compute_uj_per_sample, 0.0);
    arrays += r.arrays;
  }
  EXPECT_EQ(arrays, accel.network_mapping().total_arrays());
}

TEST(LayerCosts, StageStepsIsMaxOverLayers) {
  core::AcceleratorConfig cfg;
  cfg.chip = arch::pipelayer_chip();
  const core::PipeLayerAccelerator accel(workload::spec_vgg_a(), cfg);
  std::size_t worst = 0;
  for (const auto& r : accel.layer_costs())
    worst = std::max(worst, r.steps_per_sample);
  EXPECT_EQ(worst, accel.training_report(64, 64).stage_steps);
}

// ---- Whole-network gradient check -------------------------------------------

TEST(FullNetworkGradient, ConvPoolBnDenseChain) {
  Rng rng(777);
  nn::Sequential net;
  net.emplace<nn::Conv2D>(1, 8, 8, 3, 3, 1, 1, rng);
  net.emplace<nn::BatchNorm>(3);
  net.emplace<nn::ReLU>();
  net.emplace<nn::MaxPool2D>(2);
  net.emplace<nn::Flatten>();
  net.emplace<nn::Dense>(3 * 4 * 4, 5, rng);

  Tensor x = Tensor::normal(Shape{4, 1, 8, 8}, rng, 0.0f, 1.0f);
  const std::vector<std::size_t> labels{0, 2, 4, 1};

  auto loss_of = [&](const Tensor& input) {
    // Fresh forward in train mode so batch-norm statistics are recomputed
    // consistently for the perturbed input.
    const Tensor logits = net.forward(input, true);
    return static_cast<double>(nn::softmax_cross_entropy(logits, labels).loss);
  };

  for (auto p : net.params()) p.grad->zero();
  const Tensor logits = net.forward(x, true);
  const auto lr = nn::softmax_cross_entropy(logits, labels);
  const Tensor gx = net.backward(lr.grad);

  const float eps = 1e-2f;
  const std::size_t step = std::max<std::size_t>(1, x.numel() / 20);
  for (std::size_t i = 0; i < x.numel(); i += step) {
    if (std::abs(x[i]) < 3e-2f) continue;  // ReLU/pool kink guard
    const float orig = x[i];
    x[i] = orig + eps;
    const double lp = loss_of(x);
    x[i] = orig - eps;
    const double lm = loss_of(x);
    x[i] = orig;
    const double numeric = (lp - lm) / (2.0 * eps);
    EXPECT_NEAR(gx[i], numeric, 5e-2 * std::max(1.0, std::abs(numeric)))
        << "coordinate " << i;
  }
}

}  // namespace
}  // namespace reramdl
