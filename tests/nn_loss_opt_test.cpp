#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "nn/dense.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"

namespace reramdl::nn {
namespace {

TEST(SoftmaxCrossEntropy, UniformLogitsGiveLogK) {
  const Tensor logits = Tensor::zeros(Shape{4, 10});
  const std::vector<std::size_t> labels{0, 3, 5, 9};
  const LossResult r = softmax_cross_entropy(logits, labels);
  EXPECT_NEAR(r.loss, std::log(10.0), 1e-5);
}

TEST(SoftmaxCrossEntropy, GradientSumsToZeroPerRow) {
  Rng rng(1);
  const Tensor logits = Tensor::normal(Shape{3, 5}, rng, 0.0f, 2.0f);
  const LossResult r = softmax_cross_entropy(logits, {1, 2, 4});
  for (std::size_t i = 0; i < 3; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < 5; ++j) s += r.grad.at(i, j);
    EXPECT_NEAR(s, 0.0, 1e-6);
  }
}

TEST(SoftmaxCrossEntropy, GradientMatchesNumeric) {
  Rng rng(2);
  Tensor logits = Tensor::normal(Shape{2, 4}, rng, 0.0f, 1.0f);
  const std::vector<std::size_t> labels{1, 3};
  const LossResult r = softmax_cross_entropy(logits, labels);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < logits.numel(); ++i) {
    const float orig = logits[i];
    logits[i] = orig + eps;
    const float lp = softmax_cross_entropy(logits, labels).loss;
    logits[i] = orig - eps;
    const float lm = softmax_cross_entropy(logits, labels).loss;
    logits[i] = orig;
    EXPECT_NEAR(r.grad[i], (lp - lm) / (2.0f * eps), 2e-3);
  }
}

TEST(SoftmaxCrossEntropy, NumericallyStableForLargeLogits) {
  Tensor logits(Shape{1, 3});
  logits[0] = 1000.0f;
  logits[1] = -1000.0f;
  logits[2] = 0.0f;
  const LossResult r = softmax_cross_entropy(logits, {0});
  EXPECT_TRUE(std::isfinite(r.loss));
  EXPECT_NEAR(r.loss, 0.0, 1e-4);
}

TEST(SoftmaxCrossEntropy, LabelOutOfRangeThrows) {
  const Tensor logits = Tensor::zeros(Shape{1, 3});
  EXPECT_THROW(softmax_cross_entropy(logits, {3}), CheckError);
}

TEST(BceWithLogits, MatchesClosedForm) {
  Tensor logits(Shape{2});
  logits[0] = 0.0f;
  logits[1] = 0.0f;
  const LossResult r = bce_with_logits(logits, {1.0f, 0.0f});
  EXPECT_NEAR(r.loss, std::log(2.0), 1e-6);
  EXPECT_NEAR(r.grad[0], (0.5 - 1.0) / 2.0, 1e-6);
  EXPECT_NEAR(r.grad[1], (0.5 - 0.0) / 2.0, 1e-6);
}

TEST(BceWithLogits, StableAtExtremes) {
  Tensor logits(Shape{2});
  logits[0] = 80.0f;
  logits[1] = -80.0f;
  const LossResult r = bce_with_logits(logits, {1.0f, 0.0f});
  EXPECT_TRUE(std::isfinite(r.loss));
  EXPECT_NEAR(r.loss, 0.0, 1e-6);
}

TEST(BceWithLogits, GradientMatchesNumeric) {
  Rng rng(3);
  Tensor logits = Tensor::normal(Shape{4}, rng, 0.0f, 1.5f);
  const std::vector<float> t{1.0f, 0.0f, 1.0f, 0.0f};
  const LossResult r = bce_with_logits(logits, t);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < 4; ++i) {
    const float orig = logits[i];
    logits[i] = orig + eps;
    const float lp = bce_with_logits(logits, t).loss;
    logits[i] = orig - eps;
    const float lm = bce_with_logits(logits, t).loss;
    logits[i] = orig;
    EXPECT_NEAR(r.grad[i], (lp - lm) / (2.0f * eps), 2e-3);
  }
}

TEST(Mse, ZeroWhenEqual) {
  Rng rng(4);
  const Tensor x = Tensor::normal(Shape{5}, rng, 0.0f, 1.0f);
  const LossResult r = mse(x, x);
  EXPECT_FLOAT_EQ(r.loss, 0.0f);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_FLOAT_EQ(r.grad[i], 0.0f);
}

TEST(Accuracy, CountsArgmaxMatches) {
  Tensor logits(Shape{2, 3});
  logits.at(0, 2) = 5.0f;  // predicts 2
  logits.at(1, 0) = 5.0f;  // predicts 0
  EXPECT_DOUBLE_EQ(accuracy(logits, {2, 1}), 0.5);
}

// ---- Optimizers ----------------------------------------------------------

// Minimize f(w) = 0.5 * ||w||^2 (gradient = w): every optimizer must
// converge toward the origin.
struct QuadraticProblem {
  Tensor w{Shape{4}, 1.0f};
  Tensor g{Shape{4}};

  std::vector<ParamRef> params() { return {{&w, &g}}; }
  void compute_grad() {
    for (std::size_t i = 0; i < 4; ++i) g[i] = w[i];
  }
  double norm() const {
    double n = 0.0;
    for (std::size_t i = 0; i < 4; ++i) n += static_cast<double>(w[i]) * w[i];
    return std::sqrt(n);
  }
};

TEST(Sgd, StepMovesAgainstGradient) {
  QuadraticProblem p;
  Sgd opt(p.params(), 0.1f);
  p.compute_grad();
  opt.step();
  for (std::size_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(p.w[i], 0.9f);
}

TEST(Sgd, ConvergesOnQuadratic) {
  QuadraticProblem p;
  Sgd opt(p.params(), 0.2f);
  for (int i = 0; i < 100; ++i) {
    opt.zero_grad();
    p.compute_grad();
    opt.step();
  }
  EXPECT_LT(p.norm(), 1e-6);
}

TEST(Sgd, MomentumAcceleratesEarlySteps) {
  QuadraticProblem plain, mom;
  Sgd o1(plain.params(), 0.05f, 0.0f);
  Sgd o2(mom.params(), 0.05f, 0.9f);
  for (int i = 0; i < 10; ++i) {
    o1.zero_grad();
    plain.compute_grad();
    o1.step();
    o2.zero_grad();
    mom.compute_grad();
    o2.step();
  }
  EXPECT_LT(mom.norm(), plain.norm());
}

TEST(Adam, ConvergesOnQuadratic) {
  QuadraticProblem p;
  Adam opt(p.params(), 0.05f);
  for (int i = 0; i < 500; ++i) {
    opt.zero_grad();
    p.compute_grad();
    opt.step();
  }
  EXPECT_LT(p.norm(), 1e-2);
}

TEST(Optimizer, ZeroGradClearsAccumulators) {
  QuadraticProblem p;
  Sgd opt(p.params(), 0.1f);
  p.compute_grad();
  opt.zero_grad();
  for (std::size_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(p.g[i], 0.0f);
}

TEST(Optimizer, GradientsAccumulateAcrossBackwardCalls) {
  // The PipeLayer batch semantics: two backward passes without a zero_grad
  // sum their gradients; one update then applies the batch total.
  Rng rng(5);
  Dense d(3, 2, rng);
  const Tensor x = Tensor::normal(Shape{2, 3}, rng, 0.0f, 1.0f);
  const Tensor g = Tensor::normal(Shape{2, 2}, rng, 0.0f, 1.0f);
  d.forward(x, true);
  d.backward(g);
  const Tensor once = *d.params()[0].grad;
  d.forward(x, true);
  d.backward(g);
  const Tensor& twice = *d.params()[0].grad;
  for (std::size_t i = 0; i < once.numel(); ++i)
    EXPECT_NEAR(twice[i], 2.0f * once[i], 1e-4);
}

}  // namespace
}  // namespace reramdl::nn
