#include <gtest/gtest.h>

#include <cstdio>

#include "arch/update_model.hpp"
#include "common/check.hpp"
#include "common/csv.hpp"
#include "core/config_io.hpp"
#include "mapping/planner.hpp"
#include "workload/model_zoo.hpp"

namespace reramdl {
namespace {

// ---- CsvWriter -----------------------------------------------------------

TEST(Csv, WritesHeaderAndRows) {
  CsvWriter csv({"a", "b"});
  csv.add_row({"1", "2"});
  csv.add_row({"3", "4"});
  EXPECT_EQ(csv.to_string(), "a,b\n1,2\n3,4\n");
  EXPECT_EQ(csv.rows(), 2u);
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, RowArityChecked) {
  CsvWriter csv({"a", "b"});
  EXPECT_THROW(csv.add_row({"only"}), CheckError);
}

TEST(Csv, SaveRoundTrip) {
  CsvWriter csv({"x"});
  csv.add_row({"42"});
  const std::string path = "/tmp/reramdl_csv_test.csv";
  ASSERT_TRUE(csv.save(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[64] = {};
  const std::size_t got = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(std::string(buf, got), "x\n42\n");
}

TEST(Csv, SaveToBadPathFails) {
  CsvWriter csv({"x"});
  EXPECT_FALSE(csv.save("/nonexistent-dir/file.csv"));
}

// ---- Config IO -------------------------------------------------------------

TEST(ConfigIo, ParsesKeysAndComments) {
  const auto cfg = core::parse_config(
      "# a comment\n"
      "banks = 16\n"
      "array_rows = 256   # inline comment\n"
      "weight_bits = 8\n"
      "array_compute_energy_pj = 5e4\n");
  EXPECT_EQ(cfg.chip.banks, 16u);
  EXPECT_EQ(cfg.chip.array_rows, 256u);
  EXPECT_EQ(cfg.weight_bits, 8u);
  EXPECT_DOUBLE_EQ(cfg.chip.costs.array_compute_energy_pj, 5e4);
}

TEST(ConfigIo, UntouchedKeysKeepBaseValues) {
  core::AcceleratorConfig base;
  base.chip = arch::regan_chip();
  const auto cfg = core::parse_config("input_bits = 6\n", base);
  EXPECT_EQ(cfg.input_bits, 6u);
  EXPECT_EQ(cfg.chip.banks, base.chip.banks);
  EXPECT_DOUBLE_EQ(cfg.chip.costs.array_compute_energy_pj,
                   base.chip.costs.array_compute_energy_pj);
}

TEST(ConfigIo, UnknownKeyThrows) {
  EXPECT_THROW(core::parse_config("no_such_knob = 1\n"), CheckError);
}

TEST(ConfigIo, MalformedLinesThrow) {
  EXPECT_THROW(core::parse_config("banks 16\n"), CheckError);
  EXPECT_THROW(core::parse_config("banks = many\n"), CheckError);
  EXPECT_THROW(core::parse_config("banks = 16x\n"), CheckError);
}

TEST(ConfigIo, EmptyTextIsBaseConfig) {
  const auto cfg = core::parse_config("\n  \n# only comments\n");
  const core::AcceleratorConfig base;
  EXPECT_EQ(cfg.chip.banks, base.chip.banks);
}

TEST(ConfigIo, DumpParsesBackIdentically) {
  core::AcceleratorConfig cfg;
  cfg.chip = arch::regan_chip();
  cfg.weight_bits = 8;
  cfg.max_arrays = 1234;
  const auto round = core::parse_config(core::dump_config(cfg));
  EXPECT_EQ(round.chip.banks, cfg.chip.banks);
  EXPECT_EQ(round.weight_bits, 8u);
  EXPECT_EQ(round.max_arrays, 1234u);
  EXPECT_DOUBLE_EQ(round.chip.costs.array_compute_energy_pj,
                   cfg.chip.costs.array_compute_energy_pj);
}

TEST(ConfigIo, MissingFileThrows) {
  EXPECT_THROW(core::load_config("/no/such/config.txt"), CheckError);
}

TEST(ConfigIo, NocKeysParse) {
  const auto cfg = core::parse_config(
      "noc_hop_latency_ns = 2.5\n"
      "noc_hop_energy_pj_per_byte = 1.25\n"
      "noc_link_bandwidth_bytes_per_ns = 16\n"
      "noc_contention = 1\n"
      "noc_smart_max_hops = 6\n"
      "noc_smart_hop_latency_ns = 0.25\n");
  EXPECT_DOUBLE_EQ(cfg.chip.noc.hop_latency_ns, 2.5);
  EXPECT_DOUBLE_EQ(cfg.chip.noc.hop_energy_pj_per_byte, 1.25);
  EXPECT_DOUBLE_EQ(cfg.chip.noc.link_bandwidth_bytes_per_ns, 16.0);
  EXPECT_TRUE(cfg.chip.noc.contention);
  EXPECT_EQ(cfg.chip.noc.smart_max_hops, 6u);
  EXPECT_DOUBLE_EQ(cfg.chip.noc.smart_hop_latency_ns, 0.25);
  EXPECT_TRUE(cfg.chip.noc.event_model_active());
}

TEST(ConfigIo, NocKeysRoundTripThroughDump) {
  core::AcceleratorConfig cfg;
  cfg.chip.noc.hop_latency_ns = 3.0;
  cfg.chip.noc.link_bandwidth_bytes_per_ns = 64.0;
  cfg.chip.noc.contention = true;
  cfg.chip.noc.smart_max_hops = 5;
  cfg.chip.noc.smart_hop_latency_ns = 0.5;
  const auto round = core::parse_config(core::dump_config(cfg));
  EXPECT_DOUBLE_EQ(round.chip.noc.hop_latency_ns, 3.0);
  EXPECT_DOUBLE_EQ(round.chip.noc.link_bandwidth_bytes_per_ns, 64.0);
  EXPECT_TRUE(round.chip.noc.contention);
  EXPECT_EQ(round.chip.noc.smart_max_hops, 5u);
  EXPECT_DOUBLE_EQ(round.chip.noc.smart_hop_latency_ns, 0.5);
  // Defaults survive the trip untouched (SMART stays off by default).
  const auto defaults =
      core::parse_config(core::dump_config(core::AcceleratorConfig{}));
  EXPECT_FALSE(defaults.chip.noc.event_model_active());
}

// ---- Update timing model ----------------------------------------------------

TEST(UpdateModel, RowsCappedByArrayHeight) {
  const auto m = mapping::plan_naive(workload::spec_mlp_mnist_a(), {128, 128});
  const arch::ChipConfig chip = arch::pipelayer_chip();
  const arch::UpdateModel model(chip, m);
  EXPECT_EQ(model.rows_to_program(), 128u);  // 784-row layer tiles at 128
}

TEST(UpdateModel, FullReprogramScalesWithTunePulses) {
  const auto m = mapping::plan_naive(workload::spec_mlp_mnist_a(), {128, 128});
  arch::ChipConfig chip = arch::pipelayer_chip();
  const arch::UpdateModel model(chip, m);
  const auto t = model.full_reprogram(1000.0);
  EXPECT_DOUBLE_EQ(t.update_ns, 128.0 * chip.cell.program_latency_ns());
  EXPECT_GT(t.cycles(), 1.0);  // a full re-tune is NOT one pipeline cycle
}

TEST(UpdateModel, DeltaUpdateMuchCheaperThanFullReprogram) {
  const auto m = mapping::plan_naive(workload::spec_lenet5(), {128, 128});
  const arch::ChipConfig chip = arch::pipelayer_chip();
  const arch::UpdateModel model(chip, m);
  const auto full = model.full_reprogram(1000.0);
  const auto delta = model.delta_update(1000.0, 1.0, 1);
  EXPECT_LT(delta.update_ns, full.update_ns / 5.0);
}

TEST(UpdateModel, SparseDeltaApproachesOneCycle) {
  // The paper's "+1 update cycle" idealization holds for sparse, few-pulse
  // delta updates against a realistic pipeline cycle.
  const auto m = mapping::plan_naive(workload::spec_mlp_mnist_a(), {128, 128});
  const arch::ChipConfig chip = arch::pipelayer_chip();
  const arch::UpdateModel model(chip, m);
  const double pipeline_cycle_ns = 6400.0;  // ~126 array steps x 50.88 ns
  const auto t = model.delta_update(pipeline_cycle_ns, 0.5, 1);
  EXPECT_LE(t.cycles(), 1.0);
}

TEST(UpdateModel, InvalidArgumentsThrow) {
  const auto m = mapping::plan_naive(workload::spec_mlp_mnist_a(), {128, 128});
  const arch::ChipConfig chip = arch::pipelayer_chip();
  const arch::UpdateModel model(chip, m);
  EXPECT_THROW(model.full_reprogram(0.0), CheckError);
  EXPECT_THROW(model.delta_update(1.0, 1.5, 1), CheckError);
  EXPECT_THROW(model.delta_update(1.0, 0.5, 0), CheckError);
}

}  // namespace
}  // namespace reramdl
