#include <gtest/gtest.h>

#include "arch/bank.hpp"
#include "arch/controller.hpp"
#include "arch/isa.hpp"
#include "arch/params.hpp"
#include "common/check.hpp"

namespace reramdl::arch {
namespace {

TEST(EnergyMeter, AccumulatesByComponent) {
  EnergyMeter m;
  m.add("compute", 10.0);
  m.add("compute", 5.0);
  m.add("buffer", 1.0);
  EXPECT_DOUBLE_EQ(m.component_pj("compute"), 15.0);
  EXPECT_DOUBLE_EQ(m.component_pj("buffer"), 1.0);
  EXPECT_DOUBLE_EQ(m.component_pj("missing"), 0.0);
  EXPECT_DOUBLE_EQ(m.total_pj(), 16.0);
  m.reset();
  EXPECT_DOUBLE_EQ(m.total_pj(), 0.0);
}

TEST(EnergyMeter, RejectsNegativeEnergy) {
  EnergyMeter m;
  EXPECT_THROW(m.add("x", -1.0), CheckError);
}

TEST(ChipConfig, TotalComputeArrays) {
  ChipConfig c;
  c.banks = 4;
  c.morphable_subarrays_per_bank = 8;
  c.arrays_per_subarray = 2;
  EXPECT_EQ(c.total_compute_arrays(), 64u);
}

TEST(ChipConfig, NamedConfigsAreConsistent) {
  const ChipConfig p = pipelayer_chip();
  EXPECT_EQ(p.total_compute_arrays(), 16384u);
  const ChipConfig r = regan_chip();
  EXPECT_EQ(r.total_compute_arrays(), 8192u);
  // ReGAN doubles the buffer share for computation sharing.
  EXPECT_GT(r.buffer_subarrays_per_bank, p.buffer_subarrays_per_bank);
}

class IsaRoundTrip : public ::testing::TestWithParam<Opcode> {};

TEST_P(IsaRoundTrip, EncodeDecodeIdentity) {
  Instruction inst;
  inst.op = GetParam();
  inst.bank = 37;
  inst.subarray = 21;
  inst.imm = 0xBEEF;
  const Instruction back = decode(encode(inst));
  EXPECT_EQ(back.op, inst.op);
  EXPECT_EQ(back.bank, inst.bank);
  EXPECT_EQ(back.subarray, inst.subarray);
  EXPECT_EQ(back.imm, inst.imm);
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, IsaRoundTrip,
                         ::testing::Values(Opcode::kNop, Opcode::kCfgMode,
                                           Opcode::kLoad, Opcode::kStore,
                                           Opcode::kCompute, Opcode::kUpdate,
                                           Opcode::kMove, Opcode::kSync));

TEST(Isa, FieldRangeChecked) {
  Instruction inst;
  inst.bank = 64;  // 6-bit field
  EXPECT_THROW(encode(inst), CheckError);
}

TEST(Isa, DisassemblyNamesOpcode) {
  Instruction inst;
  inst.op = Opcode::kCompute;
  inst.bank = 1;
  inst.subarray = 2;
  inst.imm = 8;
  EXPECT_EQ(inst.to_string(), "COMPUTE b1 s2 #8");
}

TEST(Subarray, MorphableStartsInMemoryMode) {
  ChipConfig chip;
  Subarray s(SubarrayKind::kMorphable, &chip);
  EXPECT_EQ(s.mode(), SubarrayMode::kMemory);
}

TEST(Subarray, ComputeRequiresComputeMode) {
  ChipConfig chip;
  Subarray s(SubarrayKind::kMorphable, &chip);
  EnergyMeter m;
  EXPECT_THROW(s.compute(1, m), CheckError);
  s.morph(SubarrayMode::kCompute, m);
  EXPECT_GT(s.compute(1, m), 0.0);
  EXPECT_EQ(s.compute_ops(), 1u);
}

TEST(Subarray, MemorySubarrayCannotMorph) {
  ChipConfig chip;
  Subarray s(SubarrayKind::kMemory, &chip);
  EnergyMeter m;
  EXPECT_THROW(s.morph(SubarrayMode::kCompute, m), CheckError);
}

TEST(Subarray, ComputeBookEnergyPerArray) {
  ChipConfig chip;
  Subarray s(SubarrayKind::kMorphable, &chip);
  EnergyMeter m;
  s.morph(SubarrayMode::kCompute, m);
  m.reset();
  s.compute(4, m);
  EXPECT_DOUBLE_EQ(m.component_pj("compute"),
                   4.0 * chip.costs.array_compute_energy_pj);
}

TEST(Subarray, ComputeBeyondSubarrayArraysThrows) {
  ChipConfig chip;
  Subarray s(SubarrayKind::kMorphable, &chip);
  EnergyMeter m;
  s.morph(SubarrayMode::kCompute, m);
  EXPECT_THROW(s.compute(chip.arrays_per_subarray + 1, m), CheckError);
}

TEST(Subarray, BufferAccessIsCheaperPerByteThanMemory) {
  ChipConfig chip;
  Subarray mem(SubarrayKind::kMemory, &chip);
  Subarray buf(SubarrayKind::kBuffer, &chip);
  EnergyMeter m1, m2;
  mem.access(128, m1);
  buf.access(128, m2);
  EXPECT_GT(m1.total_pj(), m2.total_pj());
  EXPECT_EQ(mem.bytes_accessed(), 128u);
}

TEST(Bank, ConstructsRegionSplit) {
  const ChipConfig chip = pipelayer_chip();
  Bank bank(chip, 3);
  EXPECT_EQ(bank.id(), 3u);
  EXPECT_EQ(bank.num_morphable(), chip.morphable_subarrays_per_bank);
  EXPECT_EQ(bank.num_memory(), chip.memory_subarrays_per_bank);
  EXPECT_EQ(bank.num_buffer(), chip.buffer_subarrays_per_bank);
}

TEST(Bank, AllocateComputeMorphsPrefix) {
  const ChipConfig chip = pipelayer_chip();
  Bank bank(chip, 0);
  EnergyMeter m;
  const std::size_t arrays = bank.allocate_compute(4, m);
  EXPECT_EQ(arrays, 4 * chip.arrays_per_subarray);
  EXPECT_EQ(bank.compute_subarrays(), 4u);
  EXPECT_EQ(bank.morphable(0).mode(), SubarrayMode::kCompute);
  EXPECT_EQ(bank.morphable(3).mode(), SubarrayMode::kCompute);
  EXPECT_EQ(bank.morphable(4).mode(), SubarrayMode::kMemory);
}

TEST(Bank, ReallocationShrinksComputeRegion) {
  const ChipConfig chip = pipelayer_chip();
  Bank bank(chip, 0);
  EnergyMeter m;
  bank.allocate_compute(8, m);
  bank.allocate_compute(2, m);
  EXPECT_EQ(bank.morphable(1).mode(), SubarrayMode::kCompute);
  EXPECT_EQ(bank.morphable(2).mode(), SubarrayMode::kMemory);
}

TEST(Controller, ExecutesProgramAndBooksCosts) {
  const ChipConfig chip = pipelayer_chip();
  Bank bank(chip, 0);
  BankController ctrl(bank);

  std::vector<std::uint32_t> program;
  Instruction cfg;
  cfg.op = Opcode::kCfgMode;
  cfg.bank = 0;
  cfg.subarray = 0;
  cfg.imm = 1;  // compute mode
  program.push_back(encode(cfg));
  Instruction load;
  load.op = Opcode::kLoad;
  load.bank = 0;
  load.subarray = 0;
  load.imm = 256;
  program.push_back(encode(load));
  Instruction comp;
  comp.op = Opcode::kCompute;
  comp.bank = 0;
  comp.subarray = 0;
  comp.imm = 2;
  program.push_back(encode(comp));
  Instruction sync;
  sync.op = Opcode::kSync;
  program.push_back(encode(sync));

  const ExecutionReport r = ctrl.run(program);
  EXPECT_EQ(r.instructions, 4u);
  EXPECT_EQ(r.sync_points, 1u);
  EXPECT_GT(r.busy_ns, 0.0);
  EXPECT_GT(r.energy.component_pj("compute"), 0.0);
  EXPECT_GT(r.energy.component_pj("memory"), 0.0);
}

TEST(Controller, ComputeOnMemoryModeSubarrayFaults) {
  const ChipConfig chip = pipelayer_chip();
  Bank bank(chip, 0);
  BankController ctrl(bank);
  Instruction comp;
  comp.op = Opcode::kCompute;
  comp.bank = 0;
  comp.subarray = 0;
  comp.imm = 1;
  EXPECT_THROW(ctrl.run({encode(comp)}), CheckError);
}

TEST(Controller, WrongBankRejected) {
  const ChipConfig chip = pipelayer_chip();
  Bank bank(chip, 0);
  BankController ctrl(bank);
  Instruction nop;
  nop.op = Opcode::kNop;
  nop.bank = 5;
  EXPECT_THROW(ctrl.run({encode(nop)}), CheckError);
}

TEST(Controller, UpdateBooksProgrammingEnergy) {
  const ChipConfig chip = pipelayer_chip();
  Bank bank(chip, 0);
  BankController ctrl(bank);
  Instruction cfg;
  cfg.op = Opcode::kCfgMode;
  cfg.imm = 1;
  Instruction upd;
  upd.op = Opcode::kUpdate;
  upd.imm = 16;  // 16 * 64 cells
  const ExecutionReport r = ctrl.run({encode(cfg), encode(upd)});
  const double expected =
      (chip.cell.program_energy_pj() + chip.costs.update_driver_energy_pj) *
      16.0 * 64.0;
  EXPECT_DOUBLE_EQ(r.energy.component_pj("update"), expected);
}

}  // namespace
}  // namespace reramdl::arch
