// Randomized property suites: invariants that must hold for arbitrary
// (seeded, reproducible) configurations, complementing the targeted
// per-module tests.
#include <gtest/gtest.h>

#include <cmath>

#include "arch/isa.hpp"
#include "circuit/crossbar_grid.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "device/quantizer.hpp"
#include "mapping/planner.hpp"
#include "nn/layer_spec.hpp"
#include "pipeline/analytic.hpp"
#include "pipeline/sim.hpp"
#include "tensor/ops.hpp"

namespace reramdl {
namespace {

class SeededFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeededFuzz, QuantizerIsIdempotent) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    const std::size_t bits = 1 + rng.uniform_index(15);
    const double max_abs = rng.uniform(0.1, 100.0);
    const device::LinearQuantizer q(bits, max_abs);
    const double v = rng.uniform(-2.0 * max_abs, 2.0 * max_abs);
    const auto once = q.quantize(v);
    // Re-quantizing a dequantized value must be a fixed point.
    EXPECT_EQ(q.quantize(q.dequantize(once)), once);
  }
}

TEST_P(SeededFuzz, CrossbarGridBoundedError) {
  Rng rng(GetParam());
  const std::size_t rows = 8 + rng.uniform_index(200);
  const std::size_t cols = 1 + rng.uniform_index(150);
  circuit::CrossbarConfig cfg;
  cfg.rows = cfg.cols = 64;
  const Tensor w = Tensor::uniform(Shape{rows, cols}, rng, -1.0f, 1.0f);
  std::vector<float> x(rows);
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));

  circuit::CrossbarGrid grid(cfg);
  grid.program(w, 1.0);
  const auto y = grid.compute(x, 1.0);

  // Quantization error bound (loose): rows * (w_step/2 + x_step/2) * 4.
  const double w_step = 1.0 / 65535.0, x_step = 1.0 / 255.0;
  const double bound = 4.0 * static_cast<double>(rows) * 0.5 * (w_step + x_step);
  for (std::size_t j = 0; j < cols; ++j) {
    double ref = 0.0;
    for (std::size_t i = 0; i < rows; ++i) ref += x[i] * w.at(i, j);
    EXPECT_NEAR(y[j], ref, bound);
  }
}

TEST_P(SeededFuzz, IsaEncodeDecodeAnyFields) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    arch::Instruction inst;
    inst.op = static_cast<arch::Opcode>(rng.uniform_index(8));
    inst.bank = static_cast<std::uint8_t>(rng.uniform_index(64));
    inst.subarray = static_cast<std::uint8_t>(rng.uniform_index(64));
    inst.imm = static_cast<std::uint16_t>(rng.uniform_index(65536));
    const arch::Instruction back = arch::decode(arch::encode(inst));
    EXPECT_EQ(back.op, inst.op);
    EXPECT_EQ(back.bank, inst.bank);
    EXPECT_EQ(back.subarray, inst.subarray);
    EXPECT_EQ(back.imm, inst.imm);
  }
}

TEST_P(SeededFuzz, SimAlwaysMatchesClosedForms) {
  Rng rng(GetParam());
  for (int i = 0; i < 10; ++i) {
    const std::uint64_t l = 1 + rng.uniform_index(20);
    const std::uint64_t b = 1 + rng.uniform_index(100);
    const std::uint64_t n = b * (1 + rng.uniform_index(8));
    EXPECT_EQ(pipeline::sim_pipelayer_training(n, l, b).cycles,
              pipeline::pipelayer_train_cycles_pipelined(n, l, b));
  }
  for (int i = 0; i < 10; ++i) {
    const pipeline::GanShape s{1 + rng.uniform_index(12),
                               1 + rng.uniform_index(12),
                               1 + rng.uniform_index(64)};
    const pipeline::ReGanOptions opts{rng.bernoulli(0.5), rng.bernoulli(0.5)};
    std::uint64_t expected = 0;
    if (opts.spatial_parallelism && opts.computation_sharing)
      expected = pipeline::regan_batch_cycles_sp_cs(s);
    else if (opts.spatial_parallelism)
      expected = pipeline::regan_batch_cycles_sp(s);
    else if (opts.computation_sharing)
      expected = pipeline::regan_batch_cycles_cs(s);
    else
      expected = pipeline::regan_batch_cycles_pipelined(s);
    EXPECT_EQ(pipeline::sim_regan_batch(s, opts).cycles, expected);
  }
}

TEST_P(SeededFuzz, RandomNetworkSpecsChainConsistently) {
  Rng rng(GetParam());
  nn::NetworkSpecBuilder b("fuzz", 1 + rng.uniform_index(8),
                           16 + rng.uniform_index(48),
                           16 + rng.uniform_index(48));
  for (int i = 0; i < 6; ++i) {
    switch (rng.uniform_index(4)) {
      case 0:
        b.conv(1 + rng.uniform_index(64), 3, 1, 1).activation();
        break;
      case 1:
        if (b.cur_h() >= 2 && b.cur_w() >= 2) b.pool(2);
        break;
      case 2:
        b.batchnorm();
        break;
      default:
        b.activation();
        break;
    }
  }
  b.flatten().dense(10);
  const nn::NetworkSpec net = std::move(b).build();
  // Chaining invariant: each layer's input dims equal the previous output.
  for (std::size_t i = 1; i < net.layers.size(); ++i) {
    EXPECT_EQ(net.layers[i].in_c, net.layers[i - 1].out_c);
    EXPECT_EQ(net.layers[i].in_h, net.layers[i - 1].out_h);
    EXPECT_EQ(net.layers[i].in_w, net.layers[i - 1].out_w);
  }
  // Every weighted layer maps without error at X = 1.
  const auto m = mapping::plan_naive(net, {128, 128});
  EXPECT_EQ(m.layers.size(), net.weighted_layers());
}

TEST_P(SeededFuzz, PlannerInvariantsForRandomBudgets) {
  Rng rng(GetParam());
  nn::NetworkSpecBuilder b("fuzz", 3, 32, 32);
  b.conv(16 + rng.uniform_index(64), 3, 1, 1).activation().pool(2);
  b.conv(16 + rng.uniform_index(128), 3, 1, 1).activation().pool(2);
  b.flatten().dense(10);
  const nn::NetworkSpec net = std::move(b).build();

  const auto naive = mapping::plan_naive(net, {128, 128});
  for (int i = 0; i < 8; ++i) {
    const std::size_t budget =
        naive.total_arrays() + rng.uniform_index(20000);
    const auto plan = mapping::plan_under_budget(net, {128, 128}, budget);
    EXPECT_LE(plan.total_arrays(), budget);
    EXPECT_LE(plan.stage_steps(), naive.stage_steps());
    for (const auto& l : plan.layers) {
      EXPECT_GE(l.replication, 1u);
      EXPECT_LE(l.replication,
                std::max<std::size_t>(l.spec.vectors_per_sample(), 1));
    }
  }
}

TEST_P(SeededFuzz, MatmulAssociatesWithTranspose) {
  Rng rng(GetParam());
  const std::size_t m = 1 + rng.uniform_index(12), k = 1 + rng.uniform_index(12),
                    n = 1 + rng.uniform_index(12);
  const Tensor a = Tensor::normal(Shape{m, k}, rng, 0.0f, 1.0f);
  const Tensor b = Tensor::normal(Shape{k, n}, rng, 0.0f, 1.0f);
  // (A B)^T == B^T A^T
  const Tensor lhs = ops::transpose(ops::matmul(a, b));
  const Tensor rhs = ops::matmul(ops::transpose(b), ops::transpose(a));
  ASSERT_EQ(lhs.shape(), rhs.shape());
  for (std::size_t i = 0; i < lhs.numel(); ++i)
    EXPECT_NEAR(lhs[i], rhs[i], 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace reramdl
