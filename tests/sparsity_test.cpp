// Sparsity-aware execution (DESIGN.md §12): the fused scanner, the runtime
// variant selector (RERAMDL_SPARSE_THRESHOLD policy), and the zero-skipping
// GEMM variants' bit-identity contract against the dense oracle — for every
// matmul flavor, across sparsity levels and thread counts — plus the obs
// counters and the scratch-buffer ledger's steady-state behavior.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>

#include "circuit/crossbar_grid.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/scratch.hpp"
#include "obs/obs.hpp"
#include "tensor/ops.hpp"
#include "tensor/sparsity.hpp"
#include "tensor/tensor.hpp"

namespace {

using namespace reramdl;

// Restores the selector policy and thread count no matter how a test exits.
struct PolicyGuard {
  ~PolicyGuard() {
    sparsity::set_threshold(-1.0);
    unsetenv("RERAMDL_SPARSE_THRESHOLD");
    parallel::set_thread_count(0);
  }
};

Tensor sparse_matrix(std::size_t m, std::size_t k, double zero_prob,
                     unsigned seed) {
  Rng rng(seed);
  Tensor t = Tensor::uniform(Shape{m, k}, rng, -1.0f, 1.0f);
  for (std::size_t i = 0; i < t.numel(); ++i)
    if (rng.uniform(0.0, 1.0) < zero_prob) t[i] = 0.0f;
  return t;
}

TEST(SparsityScan, CountsZerosRowsAndMax) {
  // Row 1 is all-zero; row 2 holds the max.
  Tensor a(Shape{3, 4});
  const float vals[12] = {0.5f, 0.0f, -0.25f, 0.0f,  //
                          0.0f, 0.0f, 0.0f,   0.0f,  //
                          0.0f, 2.5f, -3.0f,  1.0f};
  std::memcpy(a.data(), vals, sizeof(vals));

  std::uint8_t flags[3] = {9, 9, 9};
  const sparsity::ScanStats s = sparsity::scan_rows(a.data(), 3, 4, flags);
  EXPECT_EQ(s.rows, 3u);
  EXPECT_EQ(s.cols, 4u);
  EXPECT_EQ(s.zero_elems, 7u);
  EXPECT_EQ(s.zero_rows, 1u);
  EXPECT_DOUBLE_EQ(s.max_abs, 3.0);
  EXPECT_DOUBLE_EQ(s.zero_fraction(), 7.0 / 12.0);
  EXPECT_EQ(flags[0], 1u);
  EXPECT_EQ(flags[1], 0u);
  EXPECT_EQ(flags[2], 1u);
}

TEST(SparsityScan, AllZeroMatrixFloorsMaxAtDriverEpsilon) {
  Tensor a = Tensor::zeros(Shape{5, 7});
  const sparsity::ScanStats s = sparsity::scan_rows(a.data(), 5, 7);
  EXPECT_EQ(s.zero_elems, 35u);
  EXPECT_EQ(s.zero_rows, 5u);
  EXPECT_DOUBLE_EQ(s.zero_fraction(), 1.0);
  EXPECT_DOUBLE_EQ(s.max_abs, 1e-12);  // still a valid spike-driver range
}

TEST(SparsityScan, EmptyMatrixIsDense) {
  const sparsity::ScanStats s = sparsity::scan_rows(nullptr, 0, 0);
  EXPECT_DOUBLE_EQ(s.zero_fraction(), 0.0);
}

TEST(SparsityScan, ExactAcrossThreadCounts) {
  PolicyGuard guard;
  const Tensor a = sparse_matrix(301, 97, 0.6, 17);
  parallel::set_thread_count(1);
  const sparsity::ScanStats ref = sparsity::scan_rows(a.data(), 301, 97);
  for (const std::size_t threads : {std::size_t{4}, std::size_t{8}}) {
    parallel::set_thread_count(threads);
    const sparsity::ScanStats s = sparsity::scan_rows(a.data(), 301, 97);
    EXPECT_EQ(s.zero_elems, ref.zero_elems) << "threads=" << threads;
    EXPECT_EQ(s.zero_rows, ref.zero_rows) << "threads=" << threads;
    EXPECT_EQ(s.max_abs, ref.max_abs) << "threads=" << threads;
  }
}

TEST(SparsitySelector, ThresholdBoundaries) {
  PolicyGuard guard;
  sparsity::set_threshold(0.6);
  EXPECT_TRUE(sparsity::select_sparse(0.6));  // exactly at threshold: sparse
  EXPECT_TRUE(sparsity::select_sparse(0.75));
  EXPECT_FALSE(sparsity::select_sparse(0.5999));
  sparsity::set_threshold(2.0);  // clamps to 1.0
  EXPECT_TRUE(sparsity::select_sparse(1.0));
  EXPECT_FALSE(sparsity::select_sparse(0.999));
}

TEST(SparsitySelector, ZeroThresholdForcesDense) {
  PolicyGuard guard;
  sparsity::set_threshold(0.0);
  EXPECT_FALSE(sparsity::select_sparse(1.0));  // even a fully zero input
  setenv("RERAMDL_SPARSE_THRESHOLD", "0", 1);
  sparsity::set_threshold(-1.0);  // drop override, re-read environment
  EXPECT_DOUBLE_EQ(sparsity::threshold(), 0.0);
  EXPECT_FALSE(sparsity::select_sparse(1.0));
}

TEST(SparsitySelector, EnvOverridesDefault) {
  PolicyGuard guard;
  unsetenv("RERAMDL_SPARSE_THRESHOLD");
  sparsity::set_threshold(-1.0);
  EXPECT_DOUBLE_EQ(sparsity::threshold(), 0.5);  // compiled-in default
  setenv("RERAMDL_SPARSE_THRESHOLD", "0.25", 1);
  sparsity::set_threshold(-1.0);
  EXPECT_DOUBLE_EQ(sparsity::threshold(), 0.25);
}

TEST(SparsitySelector, InvalidEnvWarnsOnceAndFallsBack) {
  PolicyGuard guard;
  setenv("RERAMDL_SPARSE_THRESHOLD", "banana", 1);
  sparsity::set_threshold(-1.0);
  testing::internal::CaptureStderr();
  EXPECT_DOUBLE_EQ(sparsity::threshold(), 0.5);
  const std::string first = testing::internal::GetCapturedStderr();
  EXPECT_NE(first.find("RERAMDL_SPARSE_THRESHOLD"), std::string::npos);

  // Still invalid (out of [0, 1] this time): same fallback, but the shared
  // env helpers warn once per variable per process — no second line.
  setenv("RERAMDL_SPARSE_THRESHOLD", "1.5", 1);
  sparsity::set_threshold(-1.0);
  testing::internal::CaptureStderr();
  EXPECT_DOUBLE_EQ(sparsity::threshold(), 0.5);
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

// Dense-oracle harness: runs `fn` with the policy forced dense, then forced
// sparse, and expects bitwise-equal outputs.
template <typename Fn>
void expect_sparse_matches_dense(Fn&& fn, const char* what) {
  sparsity::set_threshold(0.0);
  const Tensor dense = fn();
  sparsity::set_threshold(1e-9);  // any nonzero fraction selects sparse
  const Tensor sparse = fn();
  ASSERT_EQ(dense.shape(), sparse.shape()) << what;
  EXPECT_EQ(std::memcmp(dense.data(), sparse.data(),
                        dense.numel() * sizeof(float)),
            0)
      << what;
}

TEST(SparsityGemm, AllVariantsBitIdenticalToDenseOracle) {
  PolicyGuard guard;
  // Awkward shapes straddle the kernels' M/N/K blocking; sparsity levels
  // cover the selector's whole range including fully-zero A.
  const std::size_t m = 70, k = 130, n = 50;
  for (const double zp : {0.5, 0.75, 0.9, 1.0}) {
    const Tensor a =
        sparse_matrix(m, k, zp, 23u + static_cast<unsigned>(zp * 100));
    Rng rng(5);
    // b doubles as the packed form's BT operand (both are [k, n]).
    const Tensor b = Tensor::uniform(Shape{k, n}, rng, -1.0f, 1.0f);
    const Tensor g = Tensor::uniform(Shape{m, n}, rng, -1.0f, 1.0f);
    const Tensor acc0 = Tensor::uniform(Shape{k, n}, rng, -1.0f, 1.0f);

    for (const std::size_t threads :
         {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
      parallel::set_thread_count(threads);
      expect_sparse_matches_dense([&] { return ops::matmul(a, b); },
                                  "matmul");
      expect_sparse_matches_dense(
          [&] { return ops::matmul_transposed_b_packed(a, b); },
          "matmul_transposed_b_packed");
      expect_sparse_matches_dense([&] { return ops::matmul_transposed_a(a, g); },
                                  "matmul_transposed_a");
      expect_sparse_matches_dense(
          [&] {
            Tensor c = acc0;
            ops::matmul_transposed_a_acc(a, g, c);
            return c;
          },
          "matmul_transposed_a_acc");
    }
  }
}

TEST(SparsityGemm, ZeroRowsInAProduceZeroOutputRows) {
  PolicyGuard guard;
  sparsity::set_threshold(0.1);
  Tensor a = sparse_matrix(40, 60, 0.7, 31);
  for (std::size_t j = 0; j < 60; ++j) a.at(3, j) = 0.0f;  // force a zero row
  Rng rng(6);
  const Tensor b = Tensor::uniform(Shape{60, 20}, rng, -1.0f, 1.0f);
  const Tensor c = ops::matmul(a, b);
  for (std::size_t j = 0; j < 20; ++j) EXPECT_EQ(c.at(3, j), 0.0f);
}

TEST(SparsityObs, SelectionAndSkipCountersAdvance) {
  PolicyGuard guard;
  const bool was_enabled = obs::metrics_enabled();
  obs::set_metrics_enabled(true);
  auto& reg = obs::Registry::instance();
  const std::uint64_t skipped0 = reg.counter("sparsity.rows_skipped").value();
  const std::uint64_t sparse0 = reg.counter("sparsity.sparse_calls").value();
  const std::uint64_t dense0 = reg.counter("sparsity.dense_calls").value();
  const std::uint64_t frac0 = reg.histogram("sparsity.fraction").count();

  const Tensor a = sparse_matrix(64, 64, 0.8, 41);
  const sparsity::ScanStats scan = sparsity::scan_rows(a.data(), 64, 64);
  Rng rng(7);
  const Tensor b = Tensor::uniform(Shape{64, 32}, rng, -1.0f, 1.0f);

  sparsity::set_threshold(0.1);  // well below the ~80% measured fraction
  (void)ops::matmul(a, b);
  EXPECT_EQ(reg.counter("sparsity.rows_skipped").value(),
            skipped0 + scan.zero_elems);
  EXPECT_EQ(reg.counter("sparsity.sparse_calls").value(), sparse0 + 1);
  EXPECT_EQ(reg.histogram("sparsity.fraction").count(), frac0 + 1);

  sparsity::set_threshold(0.99);  // above it: dense, no rows skipped
  (void)ops::matmul(a, b);
  EXPECT_EQ(reg.counter("sparsity.rows_skipped").value(),
            skipped0 + scan.zero_elems);
  EXPECT_EQ(reg.counter("sparsity.dense_calls").value(), dense0 + 1);

  obs::set_metrics_enabled(was_enabled);
}

// RERAMDL_SPARSE_THRESHOLD boundary regressions on the grid MVM path
// (CrossbarGrid::compute_batch): the selector counters must match the path
// the call actually took, for each env boundary value. The env warn-once
// behavior for this variable is covered by InvalidEnvWarnsOnceAndFallsBack
// above (one warning per variable per process), so these tests assert the
// fallback *policy*, not fresh stderr lines.
struct GridPathFixture {
  PolicyGuard guard;
  bool was_enabled;
  circuit::CrossbarGrid grid;
  Tensor rows;       // [4, 48] ~60% zeros
  Tensor zero_rows;  // [4, 48] fully zero

  GridPathFixture()
      : was_enabled(obs::metrics_enabled()),
        grid(circuit::CrossbarConfig{}),
        rows(sparse_matrix(4, 48, 0.6, 71)),
        zero_rows(Tensor::zeros(Shape{4, 48})) {
    obs::set_metrics_enabled(true);
    Rng rng(72);
    const Tensor w = Tensor::uniform(Shape{48, 24}, rng, -1.0f, 1.0f);
    grid.program(w, 1.0);
  }
  ~GridPathFixture() { obs::set_metrics_enabled(was_enabled); }

  static std::uint64_t sparse_calls() {
    return obs::Registry::instance().counter("sparsity.sparse_calls").value();
  }
  static std::uint64_t dense_calls() {
    return obs::Registry::instance().counter("sparsity.dense_calls").value();
  }
};

TEST(SparsityGridPath, EnvZeroForcesDenseAndSuppressesScan) {
  GridPathFixture f;
  setenv("RERAMDL_SPARSE_THRESHOLD", "0", 1);
  sparsity::set_threshold(-1.0);  // drop override, re-read env
  ASSERT_DOUBLE_EQ(sparsity::threshold(), 0.0);

  // Unmeasured batch + zero threshold: the policy is dead, so the grid
  // skips the scan entirely and records no selection at all.
  const std::uint64_t sparse0 = f.sparse_calls(), dense0 = f.dense_calls();
  (void)f.grid.compute_batch(f.rows, 1.0);
  EXPECT_EQ(f.sparse_calls(), sparse0);
  EXPECT_EQ(f.dense_calls(), dense0);

  // Caller-measured fraction still records — and even a fully-zero batch
  // must go dense when the threshold is 0.
  (void)f.grid.compute_batch(f.zero_rows, 1.0, /*zero_fraction=*/1.0);
  EXPECT_EQ(f.sparse_calls(), sparse0);
  EXPECT_EQ(f.dense_calls(), dense0 + 1);
}

TEST(SparsityGridPath, EnvOneSelectsSparseOnlyForFullyZeroBatch) {
  GridPathFixture f;
  setenv("RERAMDL_SPARSE_THRESHOLD", "1.0", 1);
  sparsity::set_threshold(-1.0);
  ASSERT_DOUBLE_EQ(sparsity::threshold(), 1.0);

  // ~60% zeros: scanned (threshold is live), fraction < 1 -> dense path.
  const std::uint64_t sparse0 = f.sparse_calls(), dense0 = f.dense_calls();
  (void)f.grid.compute_batch(f.rows, 1.0);
  EXPECT_EQ(f.sparse_calls(), sparse0);
  EXPECT_EQ(f.dense_calls(), dense0 + 1);

  // Fully-zero batch: scan measures exactly 1.0, the >= boundary selects
  // sparse, and the zero-skipping path trivially yields an all-zero output.
  const Tensor out = f.grid.compute_batch(f.zero_rows, 1.0);
  EXPECT_EQ(f.sparse_calls(), sparse0 + 1);
  EXPECT_EQ(f.dense_calls(), dense0 + 1);
  for (std::size_t i = 0; i < out.numel(); ++i) EXPECT_EQ(out[i], 0.0f);
}

TEST(SparsityGridPath, InvalidEnvFallsBackToDefaultBoundary) {
  GridPathFixture f;
  setenv("RERAMDL_SPARSE_THRESHOLD", "not-a-number", 1);
  sparsity::set_threshold(-1.0);
  ASSERT_DOUBLE_EQ(sparsity::threshold(), 0.5);  // compiled-in default

  // Caller-measured fractions pin the boundary exactly: 0.5 is sparse
  // (>= threshold), anything below is dense. The sparse kernel only skips
  // exact zeros, so a conservative claimed fraction stays bit-correct.
  const std::uint64_t sparse0 = f.sparse_calls(), dense0 = f.dense_calls();
  (void)f.grid.compute_batch(f.rows, 1.0, /*zero_fraction=*/0.5);
  EXPECT_EQ(f.sparse_calls(), sparse0 + 1);
  EXPECT_EQ(f.dense_calls(), dense0);
  (void)f.grid.compute_batch(f.rows, 1.0, /*zero_fraction=*/0.4999);
  EXPECT_EQ(f.sparse_calls(), sparse0 + 1);
  EXPECT_EQ(f.dense_calls(), dense0 + 1);

  // Sparse and dense selections must agree bitwise on the same batch.
  sparsity::set_threshold(0.0);
  const Tensor dense_out = f.grid.compute_batch(f.rows, 1.0);
  sparsity::set_threshold(1e-9);
  const Tensor sparse_out = f.grid.compute_batch(f.rows, 1.0);
  ASSERT_EQ(dense_out.shape(), sparse_out.shape());
  EXPECT_EQ(std::memcmp(dense_out.data(), sparse_out.data(),
                        dense_out.numel() * sizeof(float)),
            0);
}

TEST(SparsityGridPath, AttributionBucketsMatchSelectedPath) {
  GridPathFixture f;
  f.grid.set_obs_label("test/gridpath");
  auto& attr = obs::Attribution::instance();
  const double sparse0 = attr.total("test/gridpath", "sparse_calls");
  const double dense0 = attr.total("test/gridpath", "dense_calls");

  sparsity::set_threshold(0.5);
  (void)f.grid.compute_batch(f.rows, 1.0, /*zero_fraction=*/0.9);
  (void)f.grid.compute_batch(f.rows, 1.0, /*zero_fraction=*/0.1);
  EXPECT_DOUBLE_EQ(attr.total("test/gridpath", "sparse_calls"), sparse0 + 1);
  EXPECT_DOUBLE_EQ(attr.total("test/gridpath", "dense_calls"), dense0 + 1);
}

TEST(SparsityScratch, BufferLedgerStopsGrowingAfterWarmup) {
  PolicyGuard guard;
  parallel::set_thread_count(1);
  sparsity::set_threshold(0.1);
  const Tensor a = sparse_matrix(96, 96, 0.75, 53);
  Rng rng(8);
  const Tensor b = Tensor::uniform(Shape{96, 48}, rng, -1.0f, 1.0f);

  for (int i = 0; i < 2; ++i) (void)ops::matmul(a, b);  // warm the pools
  const std::size_t warm_bytes = scratch::buffer_bytes_allocated();
  const std::uint64_t warm_growths = scratch::buffer_growth_events();
  for (int i = 0; i < 8; ++i) (void)ops::matmul(a, b);
  EXPECT_EQ(scratch::buffer_bytes_allocated(), warm_bytes);
  EXPECT_EQ(scratch::buffer_growth_events(), warm_growths);
}

}  // namespace
