#include <gtest/gtest.h>

#include "baseline/gpu_model.hpp"
#include "common/check.hpp"
#include "workload/model_zoo.hpp"

namespace reramdl::baseline {
namespace {

TEST(GpuModel, CostsArePositive) {
  const GpuModel gpu(gtx1080());
  const auto net = workload::spec_mlp_mnist_a();
  const GpuCost c = gpu.inference_cost(net, 64, 64);
  EXPECT_GT(c.time_s, 0.0);
  EXPECT_GT(c.energy_j, 0.0);
}

TEST(GpuModel, TrainingCostsMoreThanInference) {
  const GpuModel gpu(gtx1080());
  const auto net = workload::spec_lenet5();
  EXPECT_GT(gpu.training_cost(net, 64, 64).time_s,
            gpu.inference_cost(net, 64, 64).time_s);
}

TEST(GpuModel, EnergyIsPowerTimesTime) {
  const GpuModel gpu(gtx1080());
  const auto net = workload::spec_alexnet();
  const GpuCost c = gpu.training_cost(net, 128, 64);
  EXPECT_NEAR(c.energy_j, c.time_s * gpu.spec().board_power_w, 1e-9);
}

TEST(GpuModel, BiggerNetworkTakesLonger) {
  const GpuModel gpu(gtx1080());
  const GpuCost a = gpu.training_cost(workload::spec_vgg_a(), 64, 64);
  const GpuCost d = gpu.training_cost(workload::spec_vgg_d(), 64, 64);
  EXPECT_GT(d.time_s, a.time_s);
}

TEST(GpuModel, TimeScalesLinearlyInN) {
  const GpuModel gpu(gtx1080());
  const auto net = workload::spec_lenet5();
  const double t1 = gpu.training_cost(net, 64, 64).time_s;
  const double t4 = gpu.training_cost(net, 256, 64).time_s;
  EXPECT_NEAR(t4 / t1, 4.0, 1e-9);
}

TEST(GpuModel, LargerBatchAmortizesWeightTraffic) {
  const GpuModel gpu(gtx1080());
  // FC-heavy net: weight loads dominate at batch 1.
  const auto net = workload::spec_mlp_mnist_c();
  const double per_sample_b1 = gpu.training_cost(net, 64, 1).time_s / 64.0;
  const double per_sample_b64 = gpu.training_cost(net, 64, 64).time_s / 64.0;
  EXPECT_LT(per_sample_b64, per_sample_b1);
}

TEST(GpuModel, AlexNetTrainingMagnitudeIsPlausible) {
  // GTX-1080-class AlexNet training throughput was some hundreds of
  // images/s; the roofline should land within [100, 5000] img/s.
  const GpuModel gpu(gtx1080());
  const GpuCost c = gpu.training_cost(workload::spec_alexnet(), 640, 64);
  const double ips = 640.0 / c.time_s;
  EXPECT_GT(ips, 100.0);
  EXPECT_LT(ips, 5000.0);
}

TEST(GpuModel, TransposedConvLessEfficientThanConv) {
  const GpuModel gpu(gtx1080());
  // Equal-MAC layers: tconv should cost more time than conv.
  nn::LayerSpec conv;
  conv.kind = nn::LayerKind::kConv;
  conv.in_c = 64;
  conv.in_h = conv.in_w = 16;
  conv.kh = conv.kw = 4;
  conv.out_c = 64;
  conv.out_h = conv.out_w = 16;
  nn::LayerSpec tconv = conv;
  tconv.kind = nn::LayerKind::kTransposedConv;
  EXPECT_GT(gpu.layer_forward_time_s(tconv, 64),
            gpu.layer_forward_time_s(conv, 64));
}

TEST(GpuModel, GanTrainingCostExceedsDiscriminatorTraining) {
  const GpuModel gpu(gtx1080());
  const auto g = workload::spec_dcgan_generator(64);
  const auto d = workload::spec_dcgan_discriminator(64);
  const GpuCost gan = gpu.gan_training_cost(g, d, 64, 64);
  const GpuCost d_only = gpu.training_cost(d, 64, 64);
  EXPECT_GT(gan.time_s, d_only.time_s);
}

TEST(GpuModel, NonMultipleBatchThrows) {
  const GpuModel gpu(gtx1080());
  const auto net = workload::spec_lenet5();
  EXPECT_THROW(gpu.inference_cost(net, 65, 64), CheckError);
}

}  // namespace
}  // namespace reramdl::baseline
