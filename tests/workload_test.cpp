#include <gtest/gtest.h>

#include "workload/datasets.hpp"
#include "workload/model_zoo.hpp"

namespace reramdl::workload {
namespace {

TEST(Datasets, MnistLikeShapeAndLabels) {
  Rng rng(1);
  const Dataset d = make_mnist_like(32, rng);
  EXPECT_EQ(d.images.shape(), Shape({32, 1, 28, 28}));
  EXPECT_EQ(d.labels.size(), 32u);
  EXPECT_EQ(d.num_classes, 10u);
  for (const auto l : d.labels) EXPECT_LT(l, 10u);
}

TEST(Datasets, CifarLikeShape) {
  Rng rng(2);
  const Dataset d = make_cifar_like(8, rng);
  EXPECT_EQ(d.images.shape(), Shape({8, 3, 32, 32}));
}

TEST(Datasets, PixelRangeIsUnitInterval) {
  Rng rng(3);
  const Dataset d = make_mnist_like(16, rng);
  for (std::size_t i = 0; i < d.images.numel(); ++i) {
    EXPECT_GE(d.images[i], 0.0f);
    EXPECT_LE(d.images[i], 1.0f);
  }
}

TEST(Datasets, DeterministicForSameSeed) {
  Rng a(42), b(42);
  const Dataset d1 = make_mnist_like(4, a);
  const Dataset d2 = make_mnist_like(4, b);
  EXPECT_EQ(d1.labels, d2.labels);
  for (std::size_t i = 0; i < d1.images.numel(); ++i)
    EXPECT_FLOAT_EQ(d1.images[i], d2.images[i]);
}

TEST(Datasets, ClassesAreSeparable) {
  // Same-class samples must be closer (on average) than cross-class ones —
  // otherwise the training experiments could not learn anything.
  Rng rng(7);
  const Dataset d = make_mnist_like(200, rng);
  const std::size_t pix = 28 * 28;
  double same = 0.0, cross = 0.0;
  std::size_t n_same = 0, n_cross = 0;
  for (std::size_t i = 0; i < 100; ++i) {
    for (std::size_t j = i + 1; j < 100; ++j) {
      double dist = 0.0;
      for (std::size_t p = 0; p < pix; ++p) {
        const double diff = d.images[i * pix + p] - d.images[j * pix + p];
        dist += diff * diff;
      }
      if (d.labels[i] == d.labels[j]) {
        same += dist;
        ++n_same;
      } else {
        cross += dist;
        ++n_cross;
      }
    }
  }
  ASSERT_GT(n_same, 0u);
  ASSERT_GT(n_cross, 0u);
  EXPECT_LT(same / n_same, cross / n_cross);
}

TEST(Datasets, GanImagesInTanhRange) {
  Rng rng(4);
  const Tensor t = make_celeba_like(4, rng);
  EXPECT_EQ(t.shape(), Shape({4, 3, 64, 64}));
  for (std::size_t i = 0; i < t.numel(); ++i) {
    EXPECT_GE(t[i], -1.0f);
    EXPECT_LE(t[i], 1.0f);
  }
}

TEST(Datasets, GanImagesHaveStructure) {
  Rng rng(5);
  const Tensor t = make_lsun_like(2, rng);
  // Not constant: blobs create dynamic range.
  float lo = 1.0f, hi = -1.0f;
  for (std::size_t i = 0; i < t.numel(); ++i) {
    lo = std::min(lo, t[i]);
    hi = std::max(hi, t[i]);
  }
  EXPECT_LT(lo, -0.5f);
  EXPECT_GT(hi, 0.0f);
}

// ---- Spec zoo ---------------------------------------------------------------

TEST(ModelZoo, MlpSpecsMatchPaperWidths) {
  const auto a = spec_mlp_mnist_a();
  EXPECT_EQ(a.weighted_layers(), 3u);
  EXPECT_EQ(a.layers.back().out_c, 10u);
  // 784*512 + 512*512 + 512*10
  EXPECT_EQ(a.total_weights(), 784u * 512 + 512 * 512 + 512 * 10);
  EXPECT_EQ(spec_mlp_mnist_b().weighted_layers(), 4u);
  EXPECT_EQ(spec_mlp_mnist_c().weighted_layers(), 4u);
}

TEST(ModelZoo, LenetShapePropagation) {
  const auto net = spec_lenet5();
  // conv(6,k5,p2): 28 -> 28; pool2 -> 14; conv(16,k5): -> 10; pool2 -> 5.
  const auto& conv2 = net.layers[3];
  EXPECT_EQ(conv2.kind, nn::LayerKind::kConv);
  EXPECT_EQ(conv2.out_h, 10u);
  const auto& pool2 = net.layers[5];
  EXPECT_EQ(pool2.kind, nn::LayerKind::kPool);
  EXPECT_EQ(pool2.out_h, 5u);
}

TEST(ModelZoo, AlexNetDimsAndMacs) {
  const auto net = spec_alexnet();
  EXPECT_EQ(net.layers[0].out_h, 55u);   // (224+4-11)/4+1
  EXPECT_EQ(net.weighted_layers(), 8u);  // 5 conv + 3 fc
  // ~0.7 GMACs forward and ~61M weights for AlexNet-class nets.
  EXPECT_GT(net.total_macs_per_sample(), 500u * 1000 * 1000);
  EXPECT_LT(net.total_macs_per_sample(), 1500u * 1000 * 1000);
  EXPECT_GT(net.total_weights(), 50u * 1000 * 1000);
}

TEST(ModelZoo, VggDeeperThanVggA) {
  const auto a = spec_vgg_a();
  const auto d = spec_vgg_d();
  EXPECT_EQ(a.weighted_layers(), 11u);
  EXPECT_EQ(d.weighted_layers(), 16u);
  EXPECT_GT(d.total_macs_per_sample(), a.total_macs_per_sample());
}

class DcganSpecs : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DcganSpecs, GeneratorEmitsImageSizedOutput) {
  const std::size_t size = GetParam();
  const auto g = spec_dcgan_generator(size);
  const auto& last = g.layers.back();
  EXPECT_EQ(last.out_h, size);
  EXPECT_EQ(last.out_w, size);
  EXPECT_EQ(last.out_c, size == 28 ? 1u : 3u);
}

TEST_P(DcganSpecs, DiscriminatorEndsInOneLogit) {
  const auto d = spec_dcgan_discriminator(GetParam());
  EXPECT_EQ(d.layers.back().out_size(), 1u);
}

TEST_P(DcganSpecs, GeneratorUsesFractionalStridedConvs) {
  const auto g = spec_dcgan_generator(GetParam());
  std::size_t tconvs = 0;
  for (const auto& l : g.layers)
    if (l.kind == nn::LayerKind::kTransposedConv) ++tconvs;
  EXPECT_GE(tconvs, 2u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DcganSpecs, ::testing::Values(28, 32, 64));

TEST(ModelZoo, DcganTconvDoublesSpatialDims) {
  const auto g = spec_dcgan_generator(64);
  for (const auto& l : g.layers) {
    if (l.kind == nn::LayerKind::kTransposedConv) {
      EXPECT_EQ(l.out_h, 2 * l.in_h);
    }
  }
}

// ---- Functional zoo ----------------------------------------------------------

TEST(FunctionalZoo, MlpForwardShape) {
  Rng rng(6);
  auto net = make_mlp_mnist(rng);
  const Tensor x = Tensor::zeros(Shape{2, 1, 28, 28});
  EXPECT_EQ(net.forward(x, false).shape(), Shape({2, 10}));
}

TEST(FunctionalZoo, LenetForwardShape) {
  Rng rng(7);
  auto net = make_lenet_small(rng);
  const Tensor x = Tensor::zeros(Shape{2, 1, 28, 28});
  EXPECT_EQ(net.forward(x, false).shape(), Shape({2, 10}));
}

TEST(FunctionalZoo, DcganGeneratorOutputsImages) {
  Rng rng(8);
  auto g = make_dcgan_g_mnist(rng, 32);
  const Tensor z = Tensor::uniform(Shape{3, 32}, rng, -1.0f, 1.0f);
  const Tensor img = g.forward(z, false);
  EXPECT_EQ(img.shape(), Shape({3, 1, 28, 28}));
  // tanh output range
  for (std::size_t i = 0; i < img.numel(); ++i) {
    EXPECT_GE(img[i], -1.0f);
    EXPECT_LE(img[i], 1.0f);
  }
}

TEST(FunctionalZoo, DcganDiscriminatorOutputsLogit) {
  Rng rng(9);
  auto d = make_dcgan_d_mnist(rng);
  const Tensor x = Tensor::zeros(Shape{5, 1, 28, 28});
  EXPECT_EQ(d.forward(x, false).shape(), Shape({5, 1}));
}

TEST(FunctionalZoo, SpecsMatchLiveNetworks) {
  Rng rng(10);
  auto net = make_lenet_small(rng);
  const auto spec = net.specs("lenet-small", 1, 28, 28);
  EXPECT_EQ(spec.layers.size(), net.num_layers());
  EXPECT_EQ(spec.layers.back().out_c, 10u);
  // Spec-predicted shape equals actual forward shape layer by layer.
  const Tensor x = Tensor::zeros(Shape{1, 1, 28, 28});
  const Tensor y = net.forward(x, false);
  EXPECT_EQ(y.shape()[1], spec.layers.back().out_size());
}

}  // namespace
}  // namespace reramdl::workload
