#include <gtest/gtest.h>

#include "arch/controller.hpp"
#include "arch/lowering.hpp"
#include "common/check.hpp"
#include "mapping/planner.hpp"
#include "workload/model_zoo.hpp"

namespace reramdl::arch {
namespace {

mapping::NetworkMapping small_mapping() {
  return mapping::plan_naive(workload::spec_mlp_mnist_a(), {128, 128});
}

TEST(Lowering, ForwardPassInstructionCounts) {
  const auto m = small_mapping();
  const ChipConfig chip = pipelayer_chip();
  const auto program = lower_forward_pass(m, chip, 0);
  const LoweringStats s = analyze(program);
  EXPECT_EQ(s.configs, m.layers.size());
  // One MOVE + one COMPUTE per step, one STORE + SYNC per layer.
  std::size_t steps = 0;
  for (const auto& l : m.layers) steps += l.steps_per_sample();
  EXPECT_EQ(s.moves, steps);
  EXPECT_EQ(s.computes, steps);
  EXPECT_EQ(s.stores, m.layers.size());
  EXPECT_EQ(s.syncs, m.layers.size());
  EXPECT_EQ(s.updates, 0u);
  EXPECT_EQ(s.total(), program.size());
}

TEST(Lowering, TrainingBatchHasOneUpdatePerLayer) {
  const auto m = small_mapping();
  const ChipConfig chip = pipelayer_chip();
  const std::size_t batch = 4;
  const auto program = lower_training_batch(m, chip, 0, batch);
  const LoweringStats s = analyze(program);
  EXPECT_EQ(s.updates, m.layers.size());
  // 3 passes (fwd, err-bwd, wgrad) per input per layer.
  std::size_t steps = 0;
  for (const auto& l : m.layers) steps += l.steps_per_sample();
  EXPECT_EQ(s.computes, 3 * batch * steps);
}

TEST(Lowering, ProgramExecutesOnBankController) {
  const auto m = small_mapping();
  const ChipConfig chip = pipelayer_chip();
  Bank bank(chip, 0);
  BankController ctrl(bank);
  const auto program = lower_forward_pass(m, chip, 0);
  const ExecutionReport r = ctrl.run(program);
  EXPECT_EQ(r.instructions, program.size());
  EXPECT_GT(r.busy_ns, 0.0);
  EXPECT_GT(r.energy.component_pj("compute"), 0.0);
  EXPECT_GT(r.energy.component_pj("memory"), 0.0);
}

TEST(Lowering, TrainingProgramBooksUpdateEnergy) {
  const auto m = small_mapping();
  const ChipConfig chip = pipelayer_chip();
  Bank bank(chip, 0);
  BankController ctrl(bank);
  const auto program = lower_training_batch(m, chip, 0, 2);
  const ExecutionReport r = ctrl.run(program);
  EXPECT_GT(r.energy.component_pj("update"), 0.0);
  EXPECT_GE(r.sync_points, 1u);
}

TEST(Lowering, TargetsRequestedBank) {
  const auto m = small_mapping();
  const ChipConfig chip = pipelayer_chip();
  const auto program = lower_forward_pass(m, chip, 5);
  for (const auto word : program) EXPECT_EQ(decode(word).bank, 5);
}

TEST(Lowering, InvalidBankThrows) {
  const auto m = small_mapping();
  const ChipConfig chip = pipelayer_chip();
  EXPECT_THROW(lower_forward_pass(m, chip, chip.banks), CheckError);
}

TEST(Lowering, ConvNetworkLowersAndRuns) {
  // LeNet's conv layers generate many steps per sample under the naive plan;
  // the whole program must still execute cleanly.
  const auto m = mapping::plan_naive(workload::spec_lenet5(), {128, 128});
  const ChipConfig chip = pipelayer_chip();
  Bank bank(chip, 0);
  BankController ctrl(bank);
  const auto program = lower_forward_pass(m, chip, 0);
  const LoweringStats s = analyze(program);
  EXPECT_GT(s.computes, 800u);  // 784 conv1 steps + 100 conv2 steps + fcs
  EXPECT_NO_THROW(ctrl.run(program));
}

TEST(Lowering, BalancedPlanShrinksProgram) {
  // Replication reduces steps per sample, hence instructions per pass.
  const auto net = workload::spec_lenet5();
  const auto naive = mapping::plan_naive(net, {128, 128});
  const auto balanced = mapping::plan_balanced(net, {128, 128}, 8);
  const ChipConfig chip = pipelayer_chip();
  EXPECT_LT(lower_forward_pass(balanced, chip, 0).size(),
            lower_forward_pass(naive, chip, 0).size());
}

}  // namespace
}  // namespace reramdl::arch
