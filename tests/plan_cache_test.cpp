// Training-step plan cache / workspace arena acceptance tests: the
// plan-cached fast path must be bit-identical to the uncached reference path
// for every layer type and thread count, plans must rebuild correctly across
// shape changes, and the arena must stop allocating once warm.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "common/parallel.hpp"
#include "common/scratch.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/trainer.hpp"
#include "nn/transposed_conv2d.hpp"
#include "obs/obs.hpp"
#include "tensor/conv_plan.hpp"
#include "workload/datasets.hpp"
#include "workload/model_zoo.hpp"

namespace reramdl::nn {
namespace {

// Restores the plan switch and the pool size after each test.
class PlanCacheTest : public ::testing::Test {
 protected:
  void TearDown() override {
    plan::set_enabled(true);
    parallel::set_thread_count(0);
  }
};

Tensor random_tensor(const Shape& shape, Rng& rng) {
  Tensor t(shape);
  for (std::size_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  return t;
}

void expect_bitwise_equal(const Tensor& a, const Tensor& b, const char* what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  for (std::size_t i = 0; i < a.numel(); ++i)
    ASSERT_EQ(a[i], b[i]) << what << " differs at flat index " << i;
}

// Runs one forward(train)+backward through `layer` and returns
// {output, input grad}; parameter gradients accumulate in the layer.
std::pair<Tensor, Tensor> run_step(Layer& layer, const Tensor& x,
                                   const Tensor& gout) {
  Tensor y = layer.forward(x, /*train=*/true);
  Tensor gx = layer.backward(gout);
  return {std::move(y), std::move(gx)};
}

// Builds a layer twice from the same seed, runs the reference (uncached)
// path once at 1 thread, then checks the plan path reproduces output, input
// gradient, and parameter gradients bitwise at each thread count.
template <typename MakeLayer>
void check_layer_bit_identity(MakeLayer make, const Shape& in_shape) {
  Rng data_rng(42);
  const Tensor x = random_tensor(in_shape, data_rng);

  plan::set_enabled(false);
  parallel::set_thread_count(1);
  Rng ref_rng(7);
  auto ref = make(ref_rng);
  const Tensor ref_y = ref->forward(x, true);
  const Tensor gout = random_tensor(ref_y.shape(), data_rng);
  const Tensor ref_gx = ref->backward(gout);

  for (std::size_t threads : {1u, 4u, 8u}) {
    SCOPED_TRACE(testing::Message() << "threads=" << threads);
    plan::set_enabled(true);
    parallel::set_thread_count(threads);
    Rng rng(7);
    auto layer = make(rng);
    auto [y, gx] = run_step(*layer, x, gout);
    expect_bitwise_equal(y, ref_y, "forward output");
    expect_bitwise_equal(gx, ref_gx, "input gradient");
    auto rp = ref->params();
    auto pp = layer->params();
    ASSERT_EQ(rp.size(), pp.size());
    for (std::size_t i = 0; i < rp.size(); ++i)
      expect_bitwise_equal(*pp[i].grad, *rp[i].grad, "parameter gradient");
  }
}

TEST_F(PlanCacheTest, Conv2DMatchesUncachedPathBitwise) {
  check_layer_bit_identity(
      [](Rng& rng) {
        return std::make_unique<Conv2D>(3, 12, 12, 8, 3, 1, 1, rng);
      },
      Shape{4, 3, 12, 12});
}

TEST_F(PlanCacheTest, Conv2DStridedNoPadMatchesUncachedPathBitwise) {
  check_layer_bit_identity(
      [](Rng& rng) {
        return std::make_unique<Conv2D>(2, 13, 11, 5, 3, 2, 0, rng);
      },
      Shape{3, 2, 13, 11});
}

TEST_F(PlanCacheTest, TransposedConv2DMatchesUncachedPathBitwise) {
  check_layer_bit_identity(
      [](Rng& rng) {
        return std::make_unique<TransposedConv2D>(4, 7, 7, 3, 4, 2, 1, rng);
      },
      Shape{4, 4, 7, 7});
}

TEST_F(PlanCacheTest, DenseMatchesUncachedPathBitwise) {
  check_layer_bit_identity(
      [](Rng& rng) { return std::make_unique<Dense>(37, 19, rng); },
      Shape{8, 37});
}

// Whole training runs (LeNet on synthetic MNIST) must produce the same loss
// trajectory and final weights with the fast path on and off.
TEST_F(PlanCacheTest, TrainingRunMatchesUncachedPathBitwise) {
  Rng data_rng(200);
  const auto train = workload::make_mnist_like(96, data_rng);

  auto run = [&](bool cached) {
    plan::set_enabled(cached);
    Rng rng(100);
    auto net = workload::make_lenet_small(rng);
    Sgd opt(net.params(), 0.05f, 0.9f);
    Trainer trainer(net, opt);
    std::vector<double> losses;
    for (int epoch = 0; epoch < 2; ++epoch)
      losses.push_back(
          trainer.train_epoch(train.images, train.labels, 16, rng).mean_loss);
    std::vector<float> weights;
    for (const auto& p : net.params())
      for (std::size_t i = 0; i < p.value->numel(); ++i)
        weights.push_back((*p.value)[i]);
    return std::make_pair(losses, weights);
  };

  parallel::set_thread_count(1);
  const auto ref = run(false);
  for (std::size_t threads : {1u, 4u, 8u}) {
    SCOPED_TRACE(testing::Message() << "threads=" << threads);
    parallel::set_thread_count(threads);
    const auto got = run(true);
    ASSERT_EQ(got.first.size(), ref.first.size());
    for (std::size_t i = 0; i < ref.first.size(); ++i)
      ASSERT_EQ(got.first[i], ref.first[i]) << "epoch " << i << " loss";
    ASSERT_EQ(got.second.size(), ref.second.size());
    for (std::size_t i = 0; i < ref.second.size(); ++i)
      ASSERT_EQ(got.second[i], ref.second[i]) << "weight " << i;
  }
}

// Changing the batch size mid-stream must re-key the execution plan and
// still match the reference path exactly.
TEST_F(PlanCacheTest, BatchShapeChangeRekeysPlan) {
  Rng data_rng(55);
  const Tensor x4 = random_tensor(Shape{4, 3, 10, 10}, data_rng);
  const Tensor x2 = random_tensor(Shape{2, 3, 10, 10}, data_rng);

  auto make = [](Rng& rng) {
    return std::make_unique<Conv2D>(3, 10, 10, 6, 3, 1, 1, rng);
  };

  plan::set_enabled(false);
  Rng ref_rng(9);
  auto ref = make(ref_rng);
  const Tensor r4 = ref->forward(x4, true);
  const Tensor r2 = ref->forward(x2, true);

  plan::set_enabled(true);
  Rng rng(9);
  auto layer = make(rng);
  expect_bitwise_equal(layer->forward(x4, true), r4, "batch 4");
  expect_bitwise_equal(layer->forward(x2, true), r2, "batch 2");
  expect_bitwise_equal(layer->forward(x4, true), r4, "batch 4 again");
}

TEST_F(PlanCacheTest, CacheHitMissCountersTrackBatchKey) {
  const bool was_enabled = obs::metrics_enabled();
  obs::set_metrics_enabled(true);
  auto& reg = obs::Registry::instance();
  const auto hits0 = reg.counter("plan.cache_hits").value();
  const auto misses0 = reg.counter("plan.cache_misses").value();

  Rng rng(1);
  Conv2D conv(1, 8, 8, 4, 3, 1, 1, rng);
  Rng data_rng(2);
  const Tensor a = random_tensor(Shape{4, 1, 8, 8}, data_rng);
  const Tensor b = random_tensor(Shape{2, 1, 8, 8}, data_rng);
  conv.forward(a, true);  // miss: first build
  conv.forward(a, true);  // hit
  conv.forward(b, true);  // miss: batch re-key
  conv.forward(b, true);  // hit

  EXPECT_EQ(reg.counter("plan.cache_hits").value() - hits0, 2u);
  EXPECT_EQ(reg.counter("plan.cache_misses").value() - misses0, 2u);
  obs::set_metrics_enabled(was_enabled);
}

// After the warm-up pass has sized every arena slot, further epochs of the
// same shapes must not grow any workspace: steady-state training performs
// zero arena allocations.
TEST_F(PlanCacheTest, ArenaStopsGrowingAfterWarmup) {
  Rng data_rng(300);
  // 40 samples with batch 16 exercises the partial tail batch too.
  const auto train = workload::make_mnist_like(40, data_rng);
  Rng rng(301);
  auto net = workload::make_lenet_small(rng);
  Sgd opt(net.params(), 0.01f, 0.9f);
  Trainer trainer(net, opt);

  trainer.train_epoch(train.images, train.labels, 16, rng);
  trainer.evaluate(train.images, train.labels, 16);
  const auto warm_events = scratch::arena_growth_events();
  const auto warm_bytes = scratch::arena_bytes_reserved();
  EXPECT_GT(warm_events, 0u);
  EXPECT_GT(warm_bytes, 0u);

  for (int epoch = 0; epoch < 3; ++epoch) {
    trainer.train_epoch(train.images, train.labels, 16, rng);
    trainer.evaluate(train.images, train.labels, 16);
  }
  EXPECT_EQ(scratch::arena_growth_events(), warm_events)
      << "steady-state training allocated through the arena";
  EXPECT_EQ(scratch::arena_bytes_reserved(), warm_bytes);
}

TEST_F(PlanCacheTest, WorkspaceLedgerTracksGrowthAndRelease) {
  const auto before = scratch::arena_bytes_reserved();
  {
    Workspace ws;
    Tensor& t = ws.tensor(0, Shape{4, 8});
    EXPECT_GE(ws.bytes_reserved(), 4 * 8 * sizeof(float));
    EXPECT_EQ(scratch::arena_bytes_reserved(), before + ws.bytes_reserved());
    t[0] = 1.0f;
    // Shrinking and re-growing within capacity is free.
    const auto events = scratch::arena_growth_events();
    ws.tensor(0, Shape{2, 2});
    ws.tensor(0, Shape{4, 8});
    EXPECT_EQ(scratch::arena_growth_events(), events);
    // Slot references stay valid when later slots grow the table.
    Tensor& t2 = ws.tensor(7, Shape{16});
    t2[0] = 2.0f;
    EXPECT_EQ(ws.tensor(0, Shape{4, 8}).data(), t.data());
  }
  EXPECT_EQ(scratch::arena_bytes_reserved(), before);
}

// RERAMDL_PLAN_CACHE=0 must fall back to the reference path (observable via
// the plan switch the env var initializes).
TEST_F(PlanCacheTest, DisabledPlanPathStillTrains) {
  plan::set_enabled(false);
  Rng data_rng(400);
  const auto train = workload::make_mnist_like(32, data_rng);
  Rng rng(401);
  auto net = workload::make_lenet_small(rng);
  Sgd opt(net.params(), 0.05f, 0.9f);
  Trainer trainer(net, opt);
  const auto e1 = trainer.train_epoch(train.images, train.labels, 16, rng);
  EXPECT_TRUE(std::isfinite(e1.mean_loss));
  EXPECT_EQ(e1.samples, 32u);
}

}  // namespace
}  // namespace reramdl::nn
