// Training-step plan cache / workspace arena acceptance tests: the
// plan-cached fast path must be bit-identical to the uncached reference path
// for every layer type and thread count, plans must rebuild correctly across
// shape changes, and the arena must stop allocating once warm.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "common/parallel.hpp"
#include "common/scratch.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/trainer.hpp"
#include "nn/transposed_conv2d.hpp"
#include "obs/obs.hpp"
#include "tensor/conv_plan.hpp"
#include "workload/datasets.hpp"
#include "workload/model_zoo.hpp"

namespace reramdl::nn {
namespace {

// Restores the plan switch and the pool size after each test.
class PlanCacheTest : public ::testing::Test {
 protected:
  void TearDown() override {
    plan::set_enabled(true);
    parallel::set_thread_count(0);
  }
};

Tensor random_tensor(const Shape& shape, Rng& rng) {
  Tensor t(shape);
  for (std::size_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  return t;
}

void expect_bitwise_equal(const Tensor& a, const Tensor& b, const char* what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  for (std::size_t i = 0; i < a.numel(); ++i)
    ASSERT_EQ(a[i], b[i]) << what << " differs at flat index " << i;
}

// Runs one forward(train)+backward through `layer` and returns
// {output, input grad}; parameter gradients accumulate in the layer.
std::pair<Tensor, Tensor> run_step(Layer& layer, const Tensor& x,
                                   const Tensor& gout) {
  Tensor y = layer.forward(x, /*train=*/true);
  Tensor gx = layer.backward(gout);
  return {std::move(y), std::move(gx)};
}

// Builds a layer twice from the same seed, runs the reference (uncached)
// path once at 1 thread, then checks the plan path reproduces output, input
// gradient, and parameter gradients bitwise at each thread count.
template <typename MakeLayer>
void check_layer_bit_identity(MakeLayer make, const Shape& in_shape) {
  Rng data_rng(42);
  const Tensor x = random_tensor(in_shape, data_rng);

  plan::set_enabled(false);
  parallel::set_thread_count(1);
  Rng ref_rng(7);
  auto ref = make(ref_rng);
  const Tensor ref_y = ref->forward(x, true);
  const Tensor gout = random_tensor(ref_y.shape(), data_rng);
  const Tensor ref_gx = ref->backward(gout);

  for (std::size_t threads : {1u, 4u, 8u}) {
    SCOPED_TRACE(testing::Message() << "threads=" << threads);
    plan::set_enabled(true);
    parallel::set_thread_count(threads);
    Rng rng(7);
    auto layer = make(rng);
    auto [y, gx] = run_step(*layer, x, gout);
    expect_bitwise_equal(y, ref_y, "forward output");
    expect_bitwise_equal(gx, ref_gx, "input gradient");
    auto rp = ref->params();
    auto pp = layer->params();
    ASSERT_EQ(rp.size(), pp.size());
    for (std::size_t i = 0; i < rp.size(); ++i)
      expect_bitwise_equal(*pp[i].grad, *rp[i].grad, "parameter gradient");
  }
}

TEST_F(PlanCacheTest, Conv2DMatchesUncachedPathBitwise) {
  check_layer_bit_identity(
      [](Rng& rng) {
        return std::make_unique<Conv2D>(3, 12, 12, 8, 3, 1, 1, rng);
      },
      Shape{4, 3, 12, 12});
}

TEST_F(PlanCacheTest, Conv2DStridedNoPadMatchesUncachedPathBitwise) {
  check_layer_bit_identity(
      [](Rng& rng) {
        return std::make_unique<Conv2D>(2, 13, 11, 5, 3, 2, 0, rng);
      },
      Shape{3, 2, 13, 11});
}

TEST_F(PlanCacheTest, TransposedConv2DMatchesUncachedPathBitwise) {
  check_layer_bit_identity(
      [](Rng& rng) {
        return std::make_unique<TransposedConv2D>(4, 7, 7, 3, 4, 2, 1, rng);
      },
      Shape{4, 4, 7, 7});
}

TEST_F(PlanCacheTest, DenseMatchesUncachedPathBitwise) {
  check_layer_bit_identity(
      [](Rng& rng) { return std::make_unique<Dense>(37, 19, rng); },
      Shape{8, 37});
}

// Whole training runs (LeNet on synthetic MNIST) must produce the same loss
// trajectory and final weights with the fast path on and off.
TEST_F(PlanCacheTest, TrainingRunMatchesUncachedPathBitwise) {
  Rng data_rng(200);
  const auto train = workload::make_mnist_like(96, data_rng);

  auto run = [&](bool cached) {
    plan::set_enabled(cached);
    Rng rng(100);
    auto net = workload::make_lenet_small(rng);
    Sgd opt(net.params(), 0.05f, 0.9f);
    Trainer trainer(net, opt);
    std::vector<double> losses;
    for (int epoch = 0; epoch < 2; ++epoch)
      losses.push_back(
          trainer.train_epoch(train.images, train.labels, 16, rng).mean_loss);
    std::vector<float> weights;
    for (const auto& p : net.params())
      for (std::size_t i = 0; i < p.value->numel(); ++i)
        weights.push_back((*p.value)[i]);
    return std::make_pair(losses, weights);
  };

  parallel::set_thread_count(1);
  const auto ref = run(false);
  for (std::size_t threads : {1u, 4u, 8u}) {
    SCOPED_TRACE(testing::Message() << "threads=" << threads);
    parallel::set_thread_count(threads);
    const auto got = run(true);
    ASSERT_EQ(got.first.size(), ref.first.size());
    for (std::size_t i = 0; i < ref.first.size(); ++i)
      ASSERT_EQ(got.first[i], ref.first[i]) << "epoch " << i << " loss";
    ASSERT_EQ(got.second.size(), ref.second.size());
    for (std::size_t i = 0; i < ref.second.size(); ++i)
      ASSERT_EQ(got.second[i], ref.second[i]) << "weight " << i;
  }
}

// Changing the batch size mid-stream must re-key the execution plan and
// still match the reference path exactly.
TEST_F(PlanCacheTest, BatchShapeChangeRekeysPlan) {
  Rng data_rng(55);
  const Tensor x4 = random_tensor(Shape{4, 3, 10, 10}, data_rng);
  const Tensor x2 = random_tensor(Shape{2, 3, 10, 10}, data_rng);

  auto make = [](Rng& rng) {
    return std::make_unique<Conv2D>(3, 10, 10, 6, 3, 1, 1, rng);
  };

  plan::set_enabled(false);
  Rng ref_rng(9);
  auto ref = make(ref_rng);
  const Tensor r4 = ref->forward(x4, true);
  const Tensor r2 = ref->forward(x2, true);

  plan::set_enabled(true);
  Rng rng(9);
  auto layer = make(rng);
  expect_bitwise_equal(layer->forward(x4, true), r4, "batch 4");
  expect_bitwise_equal(layer->forward(x2, true), r2, "batch 2");
  expect_bitwise_equal(layer->forward(x4, true), r4, "batch 4 again");
}

TEST_F(PlanCacheTest, CacheHitMissCountersTrackBatchKey) {
  const bool was_enabled = obs::metrics_enabled();
  obs::set_metrics_enabled(true);
  auto& reg = obs::Registry::instance();
  const auto hits0 = reg.counter("plan.cache_hits").value();
  const auto misses0 = reg.counter("plan.cache_misses").value();

  Rng rng(1);
  Conv2D conv(1, 8, 8, 4, 3, 1, 1, rng);
  Rng data_rng(2);
  const Tensor a = random_tensor(Shape{4, 1, 8, 8}, data_rng);
  const Tensor b = random_tensor(Shape{2, 1, 8, 8}, data_rng);
  conv.forward(a, true);  // miss: first build
  conv.forward(a, true);  // hit
  conv.forward(b, true);  // miss: batch re-key
  conv.forward(b, true);  // hit

  EXPECT_EQ(reg.counter("plan.cache_hits").value() - hits0, 2u);
  EXPECT_EQ(reg.counter("plan.cache_misses").value() - misses0, 2u);
  obs::set_metrics_enabled(was_enabled);
}

// After the warm-up pass has sized every arena slot, further epochs of the
// same shapes must not grow any workspace: steady-state training performs
// zero arena allocations.
TEST_F(PlanCacheTest, ArenaStopsGrowingAfterWarmup) {
  Rng data_rng(300);
  // 40 samples with batch 16 exercises the partial tail batch too.
  const auto train = workload::make_mnist_like(40, data_rng);
  Rng rng(301);
  auto net = workload::make_lenet_small(rng);
  Sgd opt(net.params(), 0.01f, 0.9f);
  Trainer trainer(net, opt);

  trainer.train_epoch(train.images, train.labels, 16, rng);
  trainer.evaluate(train.images, train.labels, 16);
  const auto warm_events = scratch::arena_growth_events();
  const auto warm_bytes = scratch::arena_bytes_reserved();
  EXPECT_GT(warm_events, 0u);
  EXPECT_GT(warm_bytes, 0u);

  for (int epoch = 0; epoch < 3; ++epoch) {
    trainer.train_epoch(train.images, train.labels, 16, rng);
    trainer.evaluate(train.images, train.labels, 16);
  }
  EXPECT_EQ(scratch::arena_growth_events(), warm_events)
      << "steady-state training allocated through the arena";
  EXPECT_EQ(scratch::arena_bytes_reserved(), warm_bytes);
}

TEST_F(PlanCacheTest, WorkspaceLedgerTracksGrowthAndRelease) {
  const auto before = scratch::arena_bytes_reserved();
  {
    Workspace ws;
    Tensor& t = ws.tensor(0, Shape{4, 8});
    EXPECT_GE(ws.bytes_reserved(), 4 * 8 * sizeof(float));
    EXPECT_EQ(scratch::arena_bytes_reserved(), before + ws.bytes_reserved());
    t[0] = 1.0f;
    // Shrinking and re-growing within capacity is free.
    const auto events = scratch::arena_growth_events();
    ws.tensor(0, Shape{2, 2});
    ws.tensor(0, Shape{4, 8});
    EXPECT_EQ(scratch::arena_growth_events(), events);
    // Slot references stay valid when later slots grow the table.
    Tensor& t2 = ws.tensor(7, Shape{16});
    t2[0] = 2.0f;
    EXPECT_EQ(ws.tensor(0, Shape{4, 8}).data(), t.data());
  }
  EXPECT_EQ(scratch::arena_bytes_reserved(), before);
}

// The byte cap must release least-recently-used slots (never the slot being
// checked out), keep the process ledger consistent, and count evictions.
TEST_F(PlanCacheTest, WorkspaceByteCapEvictsLeastRecentlyUsed) {
  const bool was_enabled = obs::metrics_enabled();
  obs::set_metrics_enabled(true);
  const auto evict0 =
      obs::Registry::instance().counter("plan.cache_evictions").value();
  const auto ledger0 = scratch::arena_bytes_reserved();
  {
    Workspace ws;
    constexpr std::size_t kSlotBytes = 1024 * sizeof(float);
    ws.set_byte_cap(3 * kSlotBytes);
    Tensor& a = ws.tensor(0, Shape{1024});
    ws.tensor(1, Shape{1024});
    ws.tensor(2, Shape{1024});
    ws.trim();
    EXPECT_EQ(ws.evictions(), 0u);  // exactly at the cap, nothing evicted
    ws.tensor(0, Shape{1024});      // refresh slot 0: slot 1 is now LRU
    ws.tensor(3, Shape{1024});      // over the cap, but tensor() never evicts
    EXPECT_EQ(ws.evictions(), 0u);
    EXPECT_GT(ws.bytes_reserved(), ws.byte_cap());
    ws.trim();  // pass boundary: slot 1 must go
    EXPECT_EQ(ws.evictions(), 1u);
    EXPECT_LE(ws.bytes_reserved(), ws.byte_cap());
    // Slot 0 survived the eviction pass without reallocation.
    EXPECT_EQ(ws.tensor(0, Shape{1024}).data(), a.data());
    // Re-checking-out the victim re-grows it; the next trim evicts the new
    // LRU (slot 2 — slots 0, 1 and 3 were all touched more recently).
    ws.tensor(1, Shape{1024});
    ws.trim();
    EXPECT_EQ(ws.evictions(), 2u);
    EXPECT_LE(ws.bytes_reserved(), ws.byte_cap());
    // The ledger tracks the workspace through growth and eviction alike.
    EXPECT_EQ(scratch::arena_bytes_reserved(), ledger0 + ws.bytes_reserved());
    // A slot larger than the whole cap: trim evicts everything else but
    // keeps the most-recently-used slot resident (no thrash).
    Tensor& big = ws.tensor(4, Shape{8192});
    EXPECT_EQ(big.numel(), 8192u);
    ws.trim();
    EXPECT_EQ(big.numel(), 8192u);  // survived its own trim
    EXPECT_GT(ws.bytes_reserved(), ws.byte_cap());
    EXPECT_EQ(ws.bytes_reserved(), 8192 * sizeof(float));
    const auto evictions = ws.evictions();
    EXPECT_EQ(evictions, 5u);
    EXPECT_EQ(obs::Registry::instance().counter("plan.cache_evictions").value(),
              evict0 + evictions);
  }
  EXPECT_EQ(scratch::arena_bytes_reserved(), ledger0);
  obs::set_metrics_enabled(was_enabled);
}

// A conv layer driven with varying batch sizes under a tight arena cap must
// evict (bounding the arena) while staying bit-identical to the uncapped run.
TEST_F(PlanCacheTest, BoundedArenaVaryingBatchMatchesUncapped) {
  const bool was_enabled = obs::metrics_enabled();
  obs::set_metrics_enabled(true);
  const auto default_cap = Workspace::default_byte_cap();
  const auto evict0 =
      obs::Registry::instance().counter("plan.cache_evictions").value();

  Rng data_rng(77);
  std::vector<Tensor> xs, gouts;
  for (std::size_t b : {8u, 2u, 6u, 4u, 8u, 1u})
    xs.push_back(random_tensor(Shape{b, 3, 10, 10}, data_rng));

  auto make = [](Rng& rng) {
    return std::make_unique<Conv2D>(3, 10, 10, 6, 3, 1, 1, rng);
  };

  Workspace::set_default_byte_cap(0);  // reference: unlimited
  Rng ref_rng(9);
  auto ref = make(ref_rng);
  std::vector<Tensor> ref_y, ref_gx;
  for (const Tensor& x : xs) {
    ref_y.push_back(ref->forward(x, true));
    gouts.push_back(random_tensor(ref_y.back().shape(), data_rng));
    ref_gx.push_back(ref->backward(gouts.back()));
  }

  // 64 KiB is smaller than one batch-8 im2col panel, so every batch-size
  // change forces evictions.
  Workspace::set_default_byte_cap(64 * 1024);
  Rng rng(9);
  auto capped = make(rng);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    SCOPED_TRACE(testing::Message() << "step " << i);
    expect_bitwise_equal(capped->forward(xs[i], true), ref_y[i], "output");
    expect_bitwise_equal(capped->backward(gouts[i]), ref_gx[i],
                         "input gradient");
  }
  EXPECT_GT(obs::Registry::instance().counter("plan.cache_evictions").value(),
            evict0)
      << "tight cap with varying batches should have evicted";

  Workspace::set_default_byte_cap(default_cap);
  obs::set_metrics_enabled(was_enabled);
}

// RERAMDL_PLAN_CACHE=0 must fall back to the reference path (observable via
// the plan switch the env var initializes).
TEST_F(PlanCacheTest, DisabledPlanPathStillTrains) {
  plan::set_enabled(false);
  Rng data_rng(400);
  const auto train = workload::make_mnist_like(32, data_rng);
  Rng rng(401);
  auto net = workload::make_lenet_small(rng);
  Sgd opt(net.params(), 0.05f, 0.9f);
  Trainer trainer(net, opt);
  const auto e1 = trainer.train_epoch(train.images, train.labels, 16, rng);
  EXPECT_TRUE(std::isfinite(e1.mean_loss));
  EXPECT_EQ(e1.samples, 32u);
}

}  // namespace
}  // namespace reramdl::nn
