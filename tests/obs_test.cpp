// Observability layer: JsonWriter structure/escaping, metrics registry
// semantics and thread-safety (run under TSan in CI), end-to-end trace-file
// schema validation against the Chrome trace-event format, and the
// disabled-path overhead smoke test the acceptance criteria require.
#include <gtest/gtest.h>

#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "arch/chip_sim.hpp"
#include "arch/placement.hpp"
#include "circuit/crossbar_grid.hpp"
#include "common/check.hpp"
#include "common/parallel.hpp"
#include "common/stats.hpp"
#include "common/rng.hpp"
#include "mapping/planner.hpp"
#include "obs/obs.hpp"
#include "pipeline/sim.hpp"
#include "tensor/ops.hpp"
#include "workload/model_zoo.hpp"

namespace reramdl {
namespace {

// ---- Minimal JSON parser ----------------------------------------------------
// Independent of JsonWriter so the schema tests actually validate the emitted
// bytes instead of trusting the writer's own bookkeeping.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JsonValue> arr;
  std::map<std::string, JsonValue> obj;

  bool has(const std::string& k) const { return obj.count(k) > 0; }
  const JsonValue& at(const std::string& k) const { return obj.at(k); }
};

class JsonParser {
 public:
  explicit JsonParser(std::string text) : s_(std::move(text)) {}

  JsonValue parse() {
    const JsonValue v = parse_value();
    skip_ws();
    EXPECT_EQ(pos_, s_.size()) << "trailing bytes after JSON document";
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  char peek() {
    skip_ws();
    EXPECT_LT(pos_, s_.size()) << "unexpected end of JSON";
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }

  void expect(char c) {
    EXPECT_EQ(peek(), c) << "at byte " << pos_;
    ++pos_;
  }

  JsonValue parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.str = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        v.b = s_[pos_] == 't';
        pos_ += v.b ? 4 : 5;
        return v;
      }
      case 'n': {
        pos_ += 4;
        return JsonValue{};
      }
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      const std::string key = parse_string();
      expect(':');
      v.obj[key] = parse_value();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.arr.push_back(parse_value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\' && pos_ < s_.size()) {
        const char e = s_[pos_++];
        switch (e) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'u': {
            // Only \u00xx control escapes are emitted by JsonWriter.
            const std::string hex = s_.substr(pos_, 4);
            pos_ += 4;
            c = static_cast<char>(std::stoi(hex, nullptr, 16));
            break;
          }
          default: c = e;
        }
      }
      out += c;
    }
    expect('"');
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            std::string("+-.eE").find(s_[pos_]) != std::string::npos))
      ++pos_;
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.num = std::stod(s_.substr(start, pos_ - start));
    return v;
  }

  std::string s_;
  std::size_t pos_ = 0;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// RAII guard: every test leaves the global obs switches as it found them
// (off — ctest does not set the env vars).
struct ObsGuard {
  ~ObsGuard() {
    obs::set_trace_path("");
    obs::set_metrics_enabled(false);
    obs::set_metrics_path("");
    obs::reset_trace();
    obs::Registry::instance().reset();
    obs::Attribution::instance().reset();
    obs::Snapshotter::instance().reset();
    parallel::set_thread_count(0);
  }
};

// ---- JsonWriter -------------------------------------------------------------

TEST(JsonWriter, EmitsNestedStructureWithCommas) {
  std::ostringstream os;
  obs::JsonWriter w(os, /*pretty=*/false);
  w.begin_object();
  w.kv("a", 1);
  w.key("list");
  w.begin_array();
  w.value(1.5);
  w.value(true);
  w.null();
  w.begin_object();
  w.kv("x", std::uint64_t{7});
  w.end_object();
  w.end_array();
  w.kv("s", "hi");
  w.end_object();
  w.finish();
  EXPECT_EQ(os.str(),
            "{\"a\": 1, \"list\": [1.5, true, null, {\"x\": 7}], "
            "\"s\": \"hi\"}");
}

TEST(JsonWriter, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(obs::JsonWriter::escape("a\"b\\c\n\t\x01"),
            "a\\\"b\\\\c\\n\\t\\u0001");
}

TEST(JsonWriter, RoundTripsThroughParser) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.kv("name", "he said \"hi\"\n");
  w.kv("pi", 3.14159);
  w.kv("neg", -2);
  w.key("empty");
  w.begin_array();
  w.end_array();
  w.end_object();
  w.finish();

  const std::string text = os.str();
  JsonParser p(text);
  const JsonValue v = p.parse();
  ASSERT_EQ(v.kind, JsonValue::Kind::kObject);
  EXPECT_EQ(v.at("name").str, "he said \"hi\"\n");
  EXPECT_DOUBLE_EQ(v.at("pi").num, 3.14159);
  EXPECT_DOUBLE_EQ(v.at("neg").num, -2.0);
  EXPECT_TRUE(v.at("empty").arr.empty());
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  std::ostringstream os;
  obs::JsonWriter w(os, /*pretty=*/false);
  w.begin_array();
  w.value(std::nan(""));
  w.end_array();
  w.finish();
  EXPECT_EQ(os.str(), "[null]");
}

TEST(JsonWriter, MisuseThrows) {
  std::ostringstream os;
  obs::JsonWriter w(os, false);
  w.begin_object();
  EXPECT_THROW(w.value(1), CheckError);       // value without key
  EXPECT_THROW(w.end_array(), CheckError);    // mismatched close
}

// ---- Metrics registry -------------------------------------------------------

TEST(Metrics, CounterGaugeHistogramBasics) {
  ObsGuard guard;
  auto& reg = obs::Registry::instance();
  reg.reset();

  obs::Counter& c = reg.counter("t.counter");
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);
  EXPECT_EQ(&c, &reg.counter("t.counter"));  // stable handles

  obs::Gauge& g = reg.gauge("t.gauge");
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);

  obs::Histogram& h = reg.histogram("t.hist");
  EXPECT_TRUE(std::isnan(h.min()));  // empty: NaN, never a stale zero
  EXPECT_TRUE(std::isnan(h.max()));
  h.record(0.5);
  h.record(3.0);
  h.record(1000.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 1003.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  // Log2 buckets: 0.5 -> [0,1), 3 -> [2,4), 1000 -> [512,1024).
  EXPECT_EQ(h.bucket_count(obs::Histogram::bucket_index(0.5)), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(10), 1u);
  EXPECT_DOUBLE_EQ(obs::Histogram::bucket_upper_bound(10), 1024.0);

  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
}

TEST(Metrics, RegistryJsonIsValid) {
  ObsGuard guard;
  auto& reg = obs::Registry::instance();
  reg.reset();
  reg.counter("json.counter").add(3);
  reg.gauge("json.gauge").set(1.25);
  reg.histogram("json.hist").record(42.0);

  std::ostringstream os;
  reg.write_json(os);
  JsonParser p(os.str());
  const JsonValue v = p.parse();
  EXPECT_EQ(v.at("kind").str, "reramdl_metrics");
  EXPECT_DOUBLE_EQ(v.at("counters").at("json.counter").num, 3.0);
  EXPECT_DOUBLE_EQ(v.at("gauges").at("json.gauge").num, 1.25);
  const JsonValue& h = v.at("histograms").at("json.hist");
  EXPECT_DOUBLE_EQ(h.at("count").num, 1.0);
  ASSERT_EQ(h.at("buckets").arr.size(), 1u);
  EXPECT_DOUBLE_EQ(h.at("buckets").arr[0].at("le").num, 64.0);
}

// Parallel counter/histogram updates from the thread pool; CI runs this
// binary under TSan to prove the registry is race-free.
TEST(Metrics, ConcurrentUpdatesFromThreadPool) {
  ObsGuard guard;
  auto& reg = obs::Registry::instance();
  reg.reset();
  obs::set_metrics_enabled(true);
  parallel::set_thread_count(8);

  constexpr std::size_t kIters = 20000;
  obs::Counter& hits = reg.counter("conc.hits");
  obs::Histogram& vals = reg.histogram("conc.vals");
  parallel::parallel_for(0, kIters, 64, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      hits.add();
      vals.record(static_cast<double>(i % 1024));
      // Registry lookups race against other threads' lookups too.
      reg.counter("conc.shard" + std::to_string(i % 7)).add();
      reg.gauge("conc.last").set(static_cast<double>(i));
    }
  });

  EXPECT_EQ(hits.value(), kIters);
  EXPECT_EQ(vals.count(), kIters);
  EXPECT_DOUBLE_EQ(vals.min(), 0.0);
  EXPECT_DOUBLE_EQ(vals.max(), 1023.0);
  std::uint64_t shard_total = 0;
  for (int s = 0; s < 7; ++s)
    shard_total += reg.counter("conc.shard" + std::to_string(s)).value();
  EXPECT_EQ(shard_total, kIters);
}

// ---- Histogram quantiles ----------------------------------------------------

TEST(HistogramQuantile, EmptyIsNaN) {
  obs::Histogram h;
  EXPECT_TRUE(std::isnan(h.quantile(0.5)));
}

TEST(HistogramQuantile, SingleValueClampsToObserved) {
  // One occupied bucket: interpolation would report the bucket midpoint, but
  // the clamp to the observed [min, max] recovers the true value.
  obs::Histogram h;
  h.record(5.0);
  h.record(5.0);
  h.record(5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 5.0);
}

TEST(HistogramQuantile, WalksCumulativeBuckets) {
  // 100 values in bucket [0,1) and 100 in bucket [2,4): q=0.25 stays in the
  // first bucket, q=0.75 lands at the midpoint of the second.
  obs::Histogram h;
  for (int i = 0; i < 100; ++i) h.record(0.5);
  for (int i = 0; i < 100; ++i) h.record(3.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 0.5);  // interp 0.5 == true value
  EXPECT_DOUBLE_EQ(h.quantile(0.75), 3.0);  // 2 + 0.5 * (4 - 2)
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 3.0);   // clamps to max
}

TEST(HistogramQuantile, InterpolatesWithinBucket) {
  // Both samples share bucket [512, 1024); the median interpolates halfway
  // through the bucket (mass assumed uniform) inside the observed range.
  obs::Histogram h;
  h.record(600.0);
  h.record(1000.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 768.0);
}

TEST(HistogramQuantile, PercentilesAreOrderedAndBounded) {
  obs::Histogram h;
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) h.record(rng.uniform(0.1, 5000.0));
  const double p50 = h.quantile(0.50);
  const double p90 = h.quantile(0.90);
  const double p99 = h.quantile(0.99);
  EXPECT_LE(h.min(), p50);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, h.max());
}

// ---- SampleSummary ----------------------------------------------------------

TEST(SampleSummaryTest, EmptyIsNaN) {
  obs::SampleSummary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
  EXPECT_TRUE(std::isnan(s.mean()));
  EXPECT_TRUE(std::isnan(s.quantile(0.5)));
}

TEST(SampleSummaryTest, SingleSampleCollapsesEveryStatistic) {
  obs::SampleSummary s;
  s.add(7.25);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.min(), 7.25);
  EXPECT_DOUBLE_EQ(s.max(), 7.25);
  EXPECT_DOUBLE_EQ(s.mean(), 7.25);
  for (double q : {0.0, 0.5, 0.99, 1.0})
    EXPECT_DOUBLE_EQ(s.quantile(q), 7.25) << "q=" << q;
  // Out-of-range q clamps instead of indexing out of bounds.
  EXPECT_DOUBLE_EQ(s.quantile(-0.5), 7.25);
  EXPECT_DOUBLE_EQ(s.quantile(1.5), 7.25);
}

TEST(SampleSummaryTest, ExactNearestRankQuantiles) {
  obs::SampleSummary s;
  for (int v = 10; v >= 1; --v) s.add(v);  // insertion order is irrelevant
  EXPECT_EQ(s.count(), 10u);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.5);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 5.0);   // rank ceil(5) -> 5th sample
  EXPECT_DOUBLE_EQ(s.quantile(0.9), 9.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.99), 10.0);  // rank ceil(9.9) -> 10th
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 10.0);
}

TEST(SampleSummaryTest, JsonCarriesPercentiles) {
  obs::SampleSummary s;
  s.add(2.0);
  s.add(8.0);
  std::ostringstream os;
  obs::JsonWriter w(os);
  s.write_json(w);
  w.finish();
  JsonParser p(os.str());
  const JsonValue v = p.parse();
  EXPECT_DOUBLE_EQ(v.at("count").num, 2.0);
  EXPECT_DOUBLE_EQ(v.at("min").num, 2.0);
  EXPECT_DOUBLE_EQ(v.at("mean").num, 5.0);
  EXPECT_DOUBLE_EQ(v.at("p50").num, 2.0);
  EXPECT_DOUBLE_EQ(v.at("p99").num, 8.0);
}

// ---- Snapshotter ------------------------------------------------------------

TEST(Snapshotter, StrideDoublingCoversWholeRun) {
  ObsGuard guard;
  obs::set_metrics_enabled(true);
  auto& reg = obs::Registry::instance();
  reg.reset();
  auto& snaps = obs::Snapshotter::instance();
  snaps.reset();
  snaps.set_capacity(8);

  constexpr std::uint64_t kTicks = 100;
  obs::Counter& steps = reg.counter("snap.steps");
  for (std::uint64_t t = 0; t < kTicks; ++t) {
    steps.add();
    reg.gauge("snap.level").set(static_cast<double>(t));
    obs::snapshot_tick();
  }

  EXPECT_EQ(snaps.ticks(), kTicks);
  EXPECT_LE(snaps.size(), snaps.capacity());
  EXPECT_GT(snaps.size(), 0u);
  // 100 ticks into 8 slots forces stride doubling: 1 -> 2 -> 4 -> 16...
  EXPECT_GE(snaps.stride(), kTicks / 8);

  const auto samples = snaps.samples();
  std::uint64_t prev_tick = 0;
  double prev_count = -1.0;
  bool first = true;
  for (const obs::Snapshot& s : samples) {
    EXPECT_EQ(s.tick % snaps.stride(), 0u) << "off-stride sample retained";
    if (!first) {
      EXPECT_GT(s.tick, prev_tick);
    }
    prev_tick = s.tick;
    first = false;
    double count = -1.0, level = -1.0;
    for (const auto& [name, v] : s.counters)
      if (name == "snap.steps") count = v;
    for (const auto& [name, v] : s.gauges)
      if (name == "snap.level") level = v;
    // Sampled at tick boundary t: the counter has advanced t+1 times.
    ASSERT_GE(count, 0.0);
    EXPECT_DOUBLE_EQ(count, static_cast<double>(s.tick + 1));
    EXPECT_DOUBLE_EQ(level, static_cast<double>(s.tick));
    EXPECT_GT(count, prev_count);  // counters are monotone across samples
    prev_count = count;
  }
  // End-to-end coverage: the newest retained sample is within one stride of
  // the final tick.
  EXPECT_GE(samples.back().tick + snaps.stride(), kTicks - 1);

  snaps.set_capacity(256);  // restore the default for later tests
}

TEST(Snapshotter, DisabledTickIsANoOp) {
  ObsGuard guard;
  obs::set_metrics_enabled(false);
  auto& snaps = obs::Snapshotter::instance();
  snaps.reset();
  obs::snapshot_tick();
  obs::snapshot_wall_tick();
  EXPECT_EQ(snaps.size(), 0u);
  EXPECT_EQ(snaps.ticks(), 0u);
}

// Wall-clock-only mode: a workload with no step notion still gets sampled —
// and the interval rate limit holds between samples.
TEST(Snapshotter, WallClockOnlyModeSamples) {
  ObsGuard guard;
  obs::set_metrics_enabled(true);
  auto& snaps = obs::Snapshotter::instance();
  snaps.reset();
  const auto saved_ms = snaps.wall_interval_ms();
  snaps.set_wall_interval_ms(1);

  obs::snapshot_wall_tick();  // first tick after reset always fires
  EXPECT_EQ(snaps.size(), 1u);
  obs::snapshot_wall_tick();  // within the interval: suppressed
  EXPECT_EQ(snaps.size(), 1u);
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  obs::snapshot_wall_tick();  // interval elapsed: fires again
  EXPECT_EQ(snaps.size(), 2u);
  EXPECT_EQ(snaps.ticks(), 2u);

  snaps.set_wall_interval_ms(saved_ms);
}

// Step ticks refresh the activity stamp, so an immediately following wall
// tick inside the interval must not double-sample.
TEST(Snapshotter, WallTickSuppressedWhileStepTicksFlow) {
  ObsGuard guard;
  obs::set_metrics_enabled(true);
  auto& snaps = obs::Snapshotter::instance();
  snaps.reset();
  const auto saved_ms = snaps.wall_interval_ms();
  snaps.set_wall_interval_ms(60000);  // nothing wall-fires in this test

  obs::snapshot_tick();
  EXPECT_EQ(snaps.size(), 1u);
  obs::snapshot_wall_tick();
  EXPECT_EQ(snaps.size(), 1u) << "wall tick fired despite fresh step tick";
  EXPECT_EQ(snaps.ticks(), 1u);

  snaps.set_wall_interval_ms(saved_ms);
}

// Shrinking the capacity below the retained count must compact immediately:
// consumers assume size() < capacity() at all times, not just at tick time.
TEST(Snapshotter, CapacityShrinkCompactsImmediately) {
  ObsGuard guard;
  obs::set_metrics_enabled(true);
  auto& snaps = obs::Snapshotter::instance();
  snaps.reset();
  snaps.set_capacity(256);
  for (int t = 0; t < 100; ++t) obs::snapshot_tick();
  EXPECT_EQ(snaps.size(), 100u);
  EXPECT_EQ(snaps.stride(), 1u);

  snaps.set_capacity(8);
  EXPECT_LT(snaps.size(), 8u);
  EXPECT_GE(snaps.stride(), 16u);  // repeated halving, not a single pass
  const auto samples = snaps.samples();
  ASSERT_FALSE(samples.empty());
  EXPECT_EQ(samples.front().tick, 0u);  // run start still covered
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(samples[i].tick % snaps.stride(), 0u);
    if (i > 0) EXPECT_GT(samples[i].tick, samples[i - 1].tick);
  }
  // Ticking onward keeps sampling on the widened stride and keeps the ring
  // bounded.
  for (int t = 0; t < 32; ++t) obs::snapshot_tick();
  EXPECT_GT(snaps.size(), 0u);
  EXPECT_LT(snaps.size(), 8u);

  snaps.set_capacity(256);  // restore the default for later tests
}

// ---- Attribution ------------------------------------------------------------

TEST(Attribution, AddAndRollupTotals) {
  ObsGuard guard;
  auto& attr = obs::Attribution::instance();
  attr.reset();
  EXPECT_TRUE(attr.empty());

  attr.add("chip/bank0/layer1", "latency_ns", 5.0);
  attr.add("chip/bank0", "latency_ns", 2.0);
  attr.add("chip", "energy_pj", 7.0);

  EXPECT_FALSE(attr.empty());
  EXPECT_DOUBLE_EQ(attr.total("", "latency_ns"), 7.0);
  EXPECT_DOUBLE_EQ(attr.total("chip", "latency_ns"), 7.0);
  EXPECT_DOUBLE_EQ(attr.total("chip/bank0", "latency_ns"), 7.0);
  EXPECT_DOUBLE_EQ(attr.total("chip/bank0/layer1", "latency_ns"), 5.0);
  EXPECT_DOUBLE_EQ(attr.total("", "energy_pj"), 7.0);
  EXPECT_DOUBLE_EQ(attr.total("chip/bank0", "energy_pj"), 0.0);
  EXPECT_DOUBLE_EQ(attr.total("nonexistent", "latency_ns"), 0.0);

  attr.reset();
  EXPECT_TRUE(attr.empty());
  EXPECT_DOUBLE_EQ(attr.total("", "latency_ns"), 0.0);
}

TEST(Attribution, JsonRollupsReconcileAndDeriveRatios) {
  ObsGuard guard;
  auto& attr = obs::Attribution::instance();
  attr.reset();
  attr.add("chip/bank0", "latency_ns", 10.0);
  attr.add("chip/bank0/tile0", "latency_ns", 4.0);
  attr.add("chip/bank0/tile0", "flops", 50.0);
  attr.add("chip/bank0/tile0", "roofline_flops", 100.0);
  attr.add("chip/bank0/tile0", "zeros_skipped", 30.0);
  attr.add("chip/bank0/tile0", "zeros_potential", 40.0);

  std::ostringstream os;
  obs::JsonWriter w(os);
  attr.write_json(w);
  w.finish();
  JsonParser p(os.str());
  const JsonValue root = p.parse();

  ASSERT_EQ(root.kind, JsonValue::Kind::kArray);
  ASSERT_EQ(root.arr.size(), 1u);
  const JsonValue& chip = root.arr[0];
  EXPECT_EQ(chip.at("name").str, "chip");
  // Rollups: total = self + children totals at every level.
  EXPECT_DOUBLE_EQ(chip.at("total").at("latency_ns").num, 14.0);
  EXPECT_TRUE(chip.at("self").obj.empty());
  const JsonValue& bank = chip.at("children").arr[0];
  EXPECT_DOUBLE_EQ(bank.at("self").at("latency_ns").num, 10.0);
  EXPECT_DOUBLE_EQ(bank.at("total").at("latency_ns").num, 14.0);
  const JsonValue& tile = bank.at("children").arr[0];
  EXPECT_DOUBLE_EQ(tile.at("total").at("latency_ns").num, 4.0);
  // Derived ratios appear wherever the denominator rolls up positive.
  EXPECT_DOUBLE_EQ(tile.at("utilization").num, 0.5);
  EXPECT_DOUBLE_EQ(tile.at("sparsity_effectiveness").num, 0.75);
  EXPECT_DOUBLE_EQ(chip.at("utilization").num, 0.5);
}

// Acceptance: attribution (values AND JSON bytes) plus the computed outputs
// are identical for any RERAMDL_THREADS. Runs an attributed batched MVM at
// 1, 4, and 8 threads; CI repeats this binary under TSan.
TEST(Attribution, DeterministicAcrossThreadCounts) {
  ObsGuard guard;

  Rng wrng(41);
  const Tensor weights = Tensor::uniform(Shape{200, 96}, wrng, -0.5f, 0.5f);
  Tensor batch = Tensor::uniform(Shape{8, 200}, wrng, -1.0f, 1.0f);
  for (std::size_t i = 0; i < batch.numel(); i += 3)
    batch.data()[i] = 0.0f;  // enough zeros to engage the sparse selector

  std::string ref_json;
  std::vector<float> ref_out;
  for (const std::size_t threads : {1, 4, 8}) {
    parallel::set_thread_count(threads);
    obs::Registry::instance().reset();
    auto& attr = obs::Attribution::instance();
    attr.reset();
    obs::set_metrics_enabled(true);

    circuit::CrossbarConfig cfg;
    circuit::CrossbarGrid grid(cfg);
    grid.set_obs_label("chip/bank0/layer0");
    grid.program(weights, 1.0);
    const Tensor y = grid.compute_batch(batch, 1.0);

    std::ostringstream os;
    obs::JsonWriter w(os);
    attr.write_json(w);
    w.finish();
    obs::set_metrics_enabled(false);

    EXPECT_GT(attr.total("chip/bank0/layer0", "flops"), 0.0);
    if (ref_json.empty()) {
      ref_json = os.str();
      ref_out.assign(y.data(), y.data() + y.numel());
    } else {
      EXPECT_EQ(os.str(), ref_json)
          << "attribution differs at " << threads << " threads";
      ASSERT_EQ(y.numel(), ref_out.size());
      for (std::size_t i = 0; i < ref_out.size(); ++i)
        ASSERT_EQ(y.data()[i], ref_out[i])
            << "output diverged at " << threads << " threads, element " << i;
    }
  }
}

// ---- RunningStat / EnergyMeter satellites ----------------------------------

TEST(RunningStatMerge, MatchesSequentialFeed) {
  RunningStat all, left, right;
  Rng rng(99);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(-10.0, 10.0);
    all.add(x);
    (i < 200 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStatMerge, EmptySidesAreIdentity) {
  RunningStat a, b;
  a.merge(b);  // empty into empty
  EXPECT_EQ(a.count(), 0u);
  EXPECT_THROW(a.min(), CheckError);  // still empty: moments undefined

  b.add(2.0);
  b.add(4.0);
  a.merge(b);  // empty absorbs non-empty
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);

  RunningStat c;
  a.merge(c);  // non-empty unchanged by empty
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 4.0);
}

TEST(EnergyMeterMerge, AddsComponentwise) {
  arch::EnergyMeter a, b;
  a.add("compute", 10.0);
  a.add("adc", 5.0);
  b.add("compute", 2.5);
  b.add("noc", 1.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.component_pj("compute"), 12.5);
  EXPECT_DOUBLE_EQ(a.component_pj("adc"), 5.0);
  EXPECT_DOUBLE_EQ(a.component_pj("noc"), 1.0);
  EXPECT_DOUBLE_EQ(a.total_pj(), 18.5);
}

// ---- End-to-end trace schema ------------------------------------------------

// Runs instrumented hot paths from every layer with tracing live, then
// parses the emitted file and checks the Chrome trace-event schema: a
// top-level traceEvents array whose "X" events carry numeric ts/dur/tid/pid
// and whose spans cover thread-pool, crossbar, chip-sim, and pipeline scopes.
TEST(TraceSchema, EndToEndFileValidates) {
  ObsGuard guard;
  const std::string path = "obs_test_trace.json";
  obs::reset_trace();
  obs::set_trace_path(path);
  parallel::set_thread_count(4);

  {  // tensor + pool scopes
    Rng rng(1);
    const Tensor a = Tensor::uniform(Shape{96, 64}, rng, -1.0f, 1.0f);
    const Tensor b = Tensor::uniform(Shape{64, 80}, rng, -1.0f, 1.0f);
    (void)ops::matmul(a, b);
  }
  {  // circuit scope
    Rng rng(2);
    const Tensor w = Tensor::uniform(Shape{200, 96}, rng, -0.5f, 0.5f);
    circuit::CrossbarConfig cfg;
    circuit::CrossbarGrid grid(cfg);
    grid.program(w, 1.0);
    std::vector<float> x(200, 0.25f);
    (void)grid.compute(x, 1.0);
  }
  {  // arch scope (simulated bank/noc timeline + wall span)
    const arch::ChipConfig chip = arch::pipelayer_chip();
    const auto net = workload::spec_lenet5();
    const auto mapping = mapping::plan_under_budget(
        net, {chip.array_rows, chip.array_cols}, 2048);
    const arch::MeshNoc noc = arch::make_mesh_for_banks(chip.banks);
    arch::ChipSimulator sim(chip, mapping,
                            arch::place_snake(mapping, chip, noc));
    (void)sim.run_forward_pass();
    (void)sim.run_training_batch(2);
  }
  {  // pipeline scope (virtual Gantt emission)
    (void)pipeline::sim_pipelayer_training(8, 3, 4);
  }

  ASSERT_GT(obs::trace_event_count(), 0u);
  obs::write_trace();
  obs::set_trace_path("");

  JsonParser p(read_file(path));
  const JsonValue root = p.parse();
  std::remove(path.c_str());

  ASSERT_TRUE(root.has("traceEvents"));
  const auto& events = root.at("traceEvents").arr;
  ASSERT_GT(events.size(), 0u);

  std::vector<std::string> span_names;
  std::vector<std::string> process_names;
  for (const JsonValue& e : events) {
    ASSERT_EQ(e.kind, JsonValue::Kind::kObject);
    ASSERT_TRUE(e.has("ph"));
    const std::string ph = e.at("ph").str;
    ASSERT_TRUE(e.has("pid"));
    EXPECT_EQ(e.at("pid").kind, JsonValue::Kind::kNumber);
    if (ph == "X") {
      ASSERT_TRUE(e.has("ts"));
      ASSERT_TRUE(e.has("dur"));
      ASSERT_TRUE(e.has("tid"));
      EXPECT_EQ(e.at("ts").kind, JsonValue::Kind::kNumber);
      EXPECT_EQ(e.at("dur").kind, JsonValue::Kind::kNumber);
      EXPECT_EQ(e.at("tid").kind, JsonValue::Kind::kNumber);
      EXPECT_GE(e.at("dur").num, 0.0);
      span_names.push_back(e.at("name").str);
    } else if (ph == "M") {
      ASSERT_TRUE(e.has("args"));
      if (e.at("name").str == "process_name")
        process_names.push_back(e.at("args").at("name").str);
    }
  }

  const auto has_span = [&](const std::string& name) {
    for (const auto& s : span_names)
      if (s == name) return true;
    return false;
  };
  EXPECT_TRUE(has_span("pool.parallel_for")) << "thread-pool spans missing";
  EXPECT_TRUE(has_span("pool.chunk")) << "worker chunk spans missing";
  EXPECT_TRUE(has_span("ops.matmul")) << "tensor spans missing";
  EXPECT_TRUE(has_span("xbar.compute")) << "crossbar spans missing";
  EXPECT_TRUE(has_span("chip.run")) << "chip-sim wall spans missing";
  EXPECT_TRUE(has_span("forward")) << "simulated bank spans missing";
  EXPECT_TRUE(has_span("train_batch")) << "simulated bank spans missing";

  const auto has_process = [&](const std::string& name) {
    for (const auto& s : process_names)
      if (s == name) return true;
    return false;
  };
  EXPECT_TRUE(has_process("chip_sim"));
  EXPECT_TRUE(has_process("pipelayer_training")) << "pipeline spans missing";
}

// ---- Disabled-path overhead -------------------------------------------------

// With both switches off, a traced scope plus a guarded counter must cost a
// couple of relaxed atomic loads. 1M iterations in well under a second — a
// generous ceiling that still catches an accidental always-on slow path
// (e.g. buffering events or taking locks while disabled).
TEST(ObsOverhead, DisabledPathIsCheap) {
  ObsGuard guard;
  obs::set_trace_path("");
  obs::set_metrics_enabled(false);
  ASSERT_FALSE(obs::trace_enabled());
  ASSERT_FALSE(obs::metrics_enabled());

  const std::size_t before = obs::trace_event_count();
  const std::uint64_t t0 = obs::monotonic_ns();
  for (int i = 0; i < 1000000; ++i) {
    RERAMDL_TRACE_SCOPE("overhead.probe", "test");
    if (obs::metrics_enabled())
      obs::Registry::instance().counter("overhead.count").add();
  }
  const std::uint64_t elapsed_ns = obs::monotonic_ns() - t0;
  EXPECT_EQ(obs::trace_event_count(), before);  // nothing buffered
  EXPECT_LT(elapsed_ns, 2'000'000'000ull) << "disabled path is not cheap";
}

}  // namespace
}  // namespace reramdl
