#include <gtest/gtest.h>

#include "common/check.hpp"
#include "pipeline/analytic.hpp"
#include "pipeline/sim.hpp"

namespace reramdl::pipeline {
namespace {

// ---- Closed forms ----------------------------------------------------------

TEST(Analytic, PipelayerTrainFormula) {
  // (N/B)(2L + B + 1)
  EXPECT_EQ(pipelayer_train_cycles_pipelined(64, 3, 64), 2u * 3 + 64 + 1);
  EXPECT_EQ(pipelayer_train_cycles_pipelined(128, 5, 32),
            4u * (2 * 5 + 32 + 1));
}

TEST(Analytic, PipelayerSequentialFormula) {
  // (2L+1)N + N/B
  EXPECT_EQ(pipelayer_train_cycles_sequential(64, 3, 64), 7u * 64 + 1);
}

TEST(Analytic, PipelinedTrainingAlwaysFaster) {
  for (std::uint64_t l : {1u, 3u, 8u, 16u})
    for (std::uint64_t b : {2u, 16u, 64u})
      EXPECT_LT(pipelayer_train_cycles_pipelined(b * 4, l, b),
                pipelayer_train_cycles_sequential(b * 4, l, b));
}

TEST(Analytic, PipelayerTrainSpeedupApproaches2LPlus1OverLargeB) {
  // For B >> L the pipelined cost per input -> 1 cycle; speedup -> 2L+1.
  const std::uint64_t l = 4, b = 4096, n = 8192;
  const double speedup =
      static_cast<double>(pipelayer_train_cycles_sequential(n, l, b)) /
      static_cast<double>(pipelayer_train_cycles_pipelined(n, l, b));
  EXPECT_NEAR(speedup, static_cast<double>(2 * l + 1), 0.05);
}

TEST(Analytic, InferenceFormulas) {
  EXPECT_EQ(pipelayer_infer_cycles_pipelined(100, 5), 104u);
  EXPECT_EQ(pipelayer_infer_cycles_sequential(100, 5), 500u);
}

TEST(Analytic, NonMultipleBatchThrows) {
  EXPECT_THROW(pipelayer_train_cycles_pipelined(65, 3, 64), CheckError);
}

TEST(Analytic, ReGanPhaseFormulas) {
  const GanShape s{4, 3, 16};  // l_d=4, l_g=3, b=16
  EXPECT_EQ(regan_phase1_cycles(s), 2u * 4 + 1 + 15);
  EXPECT_EQ(regan_phase2_cycles(s), 3u + 2 * 4 + 1 + 15);
  EXPECT_EQ(regan_train_d_cycles(s),
            regan_phase1_cycles(s) + regan_phase2_cycles(s) + 1);
  EXPECT_EQ(regan_train_g_cycles(s), 2u * 3 + 2 * 4 + 16 + 1);
}

TEST(Analytic, ReGanUnpipelinedFormula) {
  const GanShape s{4, 3, 16};
  EXPECT_EQ(regan_batch_cycles_unpipelined(s),
            (4u * 4 + 3 + 2) * 16 + (2u * 4 + 2 * 3 + 1) * 16);
}

TEST(Analytic, OptimizationOrdering) {
  // base >= SP >= SP+CS and base >= CS >= SP+CS for any shape.
  for (std::uint64_t ld : {1u, 4u, 9u})
    for (std::uint64_t lg : {1u, 4u, 9u})
      for (std::uint64_t b : {4u, 16u, 64u}) {
        const GanShape s{ld, lg, b};
        const auto base = regan_batch_cycles_pipelined(s);
        const auto sp = regan_batch_cycles_sp(s);
        const auto cs = regan_batch_cycles_cs(s);
        const auto both = regan_batch_cycles_sp_cs(s);
        EXPECT_LE(sp, base);
        EXPECT_LE(cs, base);
        EXPECT_LE(both, sp);
        EXPECT_LE(both, cs);
        EXPECT_LT(base, regan_batch_cycles_unpipelined(s));
      }
}

TEST(Analytic, PipelineNeedsBatchDepthToWin) {
  // With B = 1 the pipeline's fill/drain overhead exceeds the sequential
  // schedule by exactly the two phase-transition cycles.
  const GanShape s{4, 3, 1};
  EXPECT_EQ(regan_batch_cycles_pipelined(s),
            regan_batch_cycles_unpipelined(s) + 2);
}

TEST(Analytic, SpHidesPhase1Latency) {
  const GanShape s{5, 3, 32};
  EXPECT_EQ(regan_batch_cycles_pipelined(s) - regan_batch_cycles_sp(s),
            regan_phase1_cycles(s));
}

// ---- Event simulator == closed forms ---------------------------------------

struct TrainCase {
  std::uint64_t n, l, b;
};

class PipelayerSimMatchesFormula : public ::testing::TestWithParam<TrainCase> {};

TEST_P(PipelayerSimMatchesFormula, TrainingCycles) {
  const auto [n, l, b] = GetParam();
  EXPECT_EQ(sim_pipelayer_training(n, l, b).cycles,
            pipelayer_train_cycles_pipelined(n, l, b));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PipelayerSimMatchesFormula,
    ::testing::Values(TrainCase{1, 1, 1}, TrainCase{4, 1, 2},
                      TrainCase{8, 3, 4}, TrainCase{64, 3, 64},
                      TrainCase{128, 5, 32}, TrainCase{96, 8, 16},
                      TrainCase{256, 19, 64}, TrainCase{30, 2, 5}));

struct InferCase {
  std::uint64_t n, l;
};

class PipelayerInferSim : public ::testing::TestWithParam<InferCase> {};

TEST_P(PipelayerInferSim, MatchesNPlusLMinus1) {
  const auto [n, l] = GetParam();
  EXPECT_EQ(sim_pipelayer_inference(n, l).cycles,
            pipelayer_infer_cycles_pipelined(n, l));
}

INSTANTIATE_TEST_SUITE_P(Shapes, PipelayerInferSim,
                         ::testing::Values(InferCase{1, 1}, InferCase{10, 1},
                                           InferCase{1, 10}, InferCase{100, 7},
                                           InferCase{13, 13}));

struct GanCase {
  std::uint64_t ld, lg, b;
};

class ReGanSimMatchesFormula : public ::testing::TestWithParam<GanCase> {};

TEST_P(ReGanSimMatchesFormula, BaselinePipelined) {
  const auto [ld, lg, b] = GetParam();
  const GanShape s{ld, lg, b};
  EXPECT_EQ(sim_regan_batch(s, {false, false}).cycles,
            regan_batch_cycles_pipelined(s));
}

TEST_P(ReGanSimMatchesFormula, SpatialParallelism) {
  const auto [ld, lg, b] = GetParam();
  const GanShape s{ld, lg, b};
  EXPECT_EQ(sim_regan_batch(s, {true, false}).cycles, regan_batch_cycles_sp(s));
}

TEST_P(ReGanSimMatchesFormula, ComputationSharing) {
  const auto [ld, lg, b] = GetParam();
  const GanShape s{ld, lg, b};
  EXPECT_EQ(sim_regan_batch(s, {false, true}).cycles, regan_batch_cycles_cs(s));
}

TEST_P(ReGanSimMatchesFormula, BothOptimizations) {
  const auto [ld, lg, b] = GetParam();
  const GanShape s{ld, lg, b};
  EXPECT_EQ(sim_regan_batch(s, {true, true}).cycles,
            regan_batch_cycles_sp_cs(s));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ReGanSimMatchesFormula,
    ::testing::Values(GanCase{1, 1, 1}, GanCase{2, 2, 4}, GanCase{4, 3, 16},
                      GanCase{4, 4, 64}, GanCase{5, 3, 32}, GanCase{9, 7, 8},
                      GanCase{3, 8, 2}, GanCase{12, 2, 128}));

TEST(ReGanSim, MultiBatchIsAdditive) {
  const GanShape s{4, 3, 16};
  const ReGanOptions opts{true, true};
  EXPECT_EQ(sim_regan_training(64, s, opts).cycles,
            4 * sim_regan_batch(s, opts).cycles);
}

// ---- Trace / Gantt ---------------------------------------------------------

TEST(Sim, GanttRendersStagesByCycle) {
  const SimResult r = sim_pipelayer_training(4, 2, 4, /*want_trace=*/true);
  EXPECT_FALSE(r.gantt.empty());
  // First forward stage row exists and shows the first item at cycle 0.
  EXPECT_NE(r.gantt.find("F1 |0"), std::string::npos);
  // Update stage fires exactly once.
  EXPECT_NE(r.gantt.find("U"), std::string::npos);
}

TEST(Sim, StagesNeverDoubleBooked) {
  PipelineSim sim;
  const auto s = sim.add_stage("x");
  sim.enable_trace(true);
  const auto t1 = sim.add_task(s, 0);
  const auto t2 = sim.add_task(s, 0);  // same ready time: must serialize
  EXPECT_EQ(t1, 1u);
  EXPECT_EQ(t2, 2u);
}

TEST(Sim, ChainRespectsDependencies) {
  PipelineSim sim;
  const auto a = sim.add_stage("a");
  const auto b = sim.add_stage("b");
  EXPECT_EQ(sim.add_chain({a, b}, 5), 7u);
}

}  // namespace
}  // namespace reramdl::pipeline
