// Tests for the fault-injection subsystem: FaultMap sampling, write-verify
// programming, spare-column remapping, degradation policies, and the
// determinism contracts the campaign engine (bench_fault_campaign) relies on.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <tuple>
#include <vector>

#include "circuit/crossbar.hpp"
#include "circuit/crossbar_grid.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/functional.hpp"
#include "device/fault_map.hpp"
#include "device/variation.hpp"
#include "workload/datasets.hpp"
#include "workload/model_zoo.hpp"

namespace reramdl {
namespace {

using circuit::Crossbar;
using circuit::CrossbarConfig;
using circuit::CrossbarGrid;
using circuit::DegradePolicy;
using circuit::ProgramOptions;
using device::FaultMap;
using device::FaultMapParams;
using device::FaultType;

FaultMapParams rates(double off, double on, double flip, std::uint64_t seed) {
  FaultMapParams p;
  p.stuck_at_off_rate = off;
  p.stuck_at_on_rate = on;
  p.transient_flip_rate = flip;
  p.seed = seed;
  return p;
}

// ---- FaultMap sampling -------------------------------------------------------

TEST(FaultMap, StuckPopulationIsDeterministicInSeedAndGeometry) {
  FaultMap a(rates(0.01, 0.005, 0.0, 42));
  FaultMap b(rates(0.01, 0.005, 0.0, 42));
  a.bind(4, 4, 64, 64);
  b.bind(4, 4, 64, 64);
  ASSERT_GT(a.stuck_count(), 0u);
  ASSERT_EQ(a.stuck_count(), b.stuck_count());
  for (std::size_t i = 0; i < a.stuck_count(); ++i) {
    EXPECT_EQ(a.stuck_faults()[i].cell, b.stuck_faults()[i].cell);
    EXPECT_EQ(a.stuck_faults()[i].type, b.stuck_faults()[i].type);
  }
  // Re-binding the same geometry reproduces the identical set (pure function
  // of seed + geometry, no hidden draw-order state).
  const auto before = a.stuck_faults();
  a.bind(4, 4, 64, 64);
  EXPECT_EQ(a.stuck_faults().size(), before.size());
  for (std::size_t i = 0; i < before.size(); ++i)
    EXPECT_EQ(a.stuck_faults()[i].cell, before[i].cell);

  FaultMap c(rates(0.01, 0.005, 0.0, 43));
  c.bind(4, 4, 64, 64);
  bool differs = c.stuck_count() != a.stuck_count();
  for (std::size_t i = 0; !differs && i < a.stuck_count(); ++i)
    differs = c.stuck_faults()[i].cell != a.stuck_faults()[i].cell;
  EXPECT_TRUE(differs);
}

TEST(FaultMap, LookupAgreesWithPopulationEverywhere) {
  FaultMap map(rates(0.02, 0.02, 0.0, 7));
  const std::size_t slices = 2, rows = 16, cols = 16;
  map.bind(slices, 4, rows, cols);
  std::size_t seen = 0;
  for (std::size_t s = 0; s < slices; ++s)
    for (std::size_t p = 0; p < 2; ++p)
      for (std::size_t i = 0; i < rows; ++i)
        for (std::size_t j = 0; j < cols; ++j)
          if (map.stuck_fault(s, p, i, j) != FaultType::kNone) ++seen;
  EXPECT_EQ(seen, map.stuck_count());
  // decode() inverts the flattened key for every sampled fault.
  for (const auto& f : map.stuck_faults()) {
    std::size_t s, p, i, j;
    map.decode(f.cell, s, p, i, j);
    EXPECT_LT(s, slices);
    EXPECT_LT(p, 2u);
    EXPECT_LT(i, rows);
    EXPECT_LT(j, cols);
    EXPECT_EQ(map.stuck_fault(s, p, i, j), f.type);
  }
}

TEST(FaultMap, ObservedRatesTrackParameters) {
  FaultMap map(rates(0.03, 0.01, 0.0, 11));
  map.bind(4, 4, 128, 128);
  const double n = 4.0 * 2 * 128 * 128;
  double off = 0, on = 0;
  for (const auto& f : map.stuck_faults()) {
    if (f.type == FaultType::kStuckOff) ++off;
    if (f.type == FaultType::kStuckOn) ++on;
  }
  EXPECT_NEAR(off / n, 0.03, 0.005);
  EXPECT_NEAR(on / n, 0.01, 0.005);
}

TEST(FaultMap, ApplyForcesStuckLevels) {
  EXPECT_DOUBLE_EQ(FaultMap::apply(FaultType::kStuckOff, 9.0, 15.0), 0.0);
  EXPECT_DOUBLE_EQ(FaultMap::apply(FaultType::kStuckOn, 2.0, 15.0), 15.0);
  EXPECT_DOUBLE_EQ(FaultMap::apply(FaultType::kNone, 6.0, 15.0), 6.0);
}

TEST(FaultMap, TransientsDeterministicPerStepIndependentAcrossSteps) {
  FaultMap map(rates(0.0, 0.0, 2e-3, 5));
  map.bind(4, 4, 64, 64);
  const auto s1a = map.transients_at(1);
  const auto s1b = map.transients_at(1);
  ASSERT_GT(s1a.size(), 0u);
  ASSERT_EQ(s1a.size(), s1b.size());
  auto key = [](const device::TransientFault& f) {
    return std::make_tuple(f.slice, f.polarity, f.row, f.col, f.bit);
  };
  for (std::size_t i = 0; i < s1a.size(); ++i)
    EXPECT_EQ(key(s1a[i]), key(s1b[i]));
  for (const auto& f : s1a) {
    EXPECT_LT(f.slice, 4u);
    EXPECT_LT(f.polarity, 2u);
    EXPECT_LT(f.row, 64u);
    EXPECT_LT(f.col, 64u);
    EXPECT_LT(f.bit, 4u);  // < bits_per_cell
  }
  const auto s2 = map.transients_at(2);
  bool differs = s2.size() != s1a.size();
  for (std::size_t i = 0; !differs && i < s2.size(); ++i)
    differs = key(s2[i]) != key(s1a[i]);
  EXPECT_TRUE(differs);
}

TEST(FaultMap, DisabledMapIsEmpty) {
  FaultMap map;
  map.bind(4, 4, 32, 32);
  EXPECT_FALSE(map.enabled());
  EXPECT_EQ(map.stuck_count(), 0u);
  EXPECT_TRUE(map.transients_at(1).empty());
}

// ---- Crossbar programming paths ----------------------------------------------

double l1_distance(const std::vector<double>& a, const std::vector<double>& b) {
  EXPECT_EQ(a.size(), b.size());
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) d += std::abs(a[i] - b[i]);
  return d;
}

TEST(CrossbarFaults, FaultFreeOptionsAreBitIdenticalToLegacyProgram) {
  Rng rng(20);
  const Tensor w = Tensor::uniform(Shape{48, 40}, rng, -1.0f, 1.0f);
  std::vector<float> x(48);
  Rng xrng(21);
  for (auto& v : x) v = static_cast<float>(xrng.uniform(-1.0, 1.0));

  CrossbarConfig plain;
  plain.rows = plain.cols = 64;
  Crossbar legacy(plain);
  legacy.program(w, 1.0);
  const auto y_legacy = legacy.compute(x, 1.0);

  Crossbar with_opts(plain);
  with_opts.program(w, 1.0, ProgramOptions{});
  Crossbar with_verify(plain);
  ProgramOptions verify;
  verify.write_verify = true;
  with_verify.program(w, 1.0, verify);

  CrossbarConfig spared = plain;
  spared.spare_cols = 16;  // data_cols 48 still >= 40
  Crossbar with_spares(spared);
  with_spares.program(w, 1.0, verify);

  for (Crossbar* xb : {&with_opts, &with_verify, &with_spares}) {
    ASSERT_EQ(xb->effective_weights().size(), legacy.effective_weights().size());
    for (std::size_t i = 0; i < legacy.effective_weights().size(); ++i)
      EXPECT_EQ(xb->effective_weights()[i], legacy.effective_weights()[i]);
    const auto y = xb->compute(x, 1.0);
    for (std::size_t j = 0; j < y_legacy.size(); ++j)
      EXPECT_EQ(y[j], y_legacy[j]);
    EXPECT_EQ(xb->stats().stuck_cells, 0u);
    EXPECT_EQ(xb->stats().defective_cells, 0u);
    EXPECT_EQ(xb->stats().cells_remapped, 0u);
  }
  // Fault-free write-verify converges on the first pulse: no retries burned.
  EXPECT_EQ(with_verify.stats().verify_retries, 0u);
}

TEST(CrossbarFaults, WriteVerifyTightensProgrammingUnderVariation) {
  Rng rng(22);
  const Tensor w = Tensor::uniform(Shape{64, 64}, rng, -1.0f, 1.0f);
  CrossbarConfig cfg;
  cfg.rows = cfg.cols = 64;

  Crossbar ideal(cfg);
  ideal.program(w, 1.0);

  device::VariationParams vp;
  vp.sigma = 0.3;
  auto run = [&](bool verify) {
    device::VariationModel vm(vp, Rng(23));
    Crossbar xb(cfg);
    ProgramOptions opts;
    opts.variation = &vm;
    opts.write_verify = verify;
    opts.max_program_retries = 5;
    xb.program(w, 1.0, opts);
    return std::make_pair(l1_distance(xb.effective_weights(),
                                      ideal.effective_weights()),
                          xb.stats().verify_retries);
  };
  const auto [err_open, retries_open] = run(false);
  const auto [err_verified, retries_verified] = run(true);
  EXPECT_EQ(retries_open, 0u);
  EXPECT_GT(retries_verified, 0u);
  // The closed loop must beat open-loop programming by a wide margin.
  EXPECT_LT(err_verified, err_open * 0.5);
}

TEST(CrossbarFaults, StuckCellsAreCountedAndMarkedDefective) {
  Rng rng(24);
  const Tensor w = Tensor::uniform(Shape{64, 64}, rng, -1.0f, 1.0f);
  CrossbarConfig cfg;
  cfg.rows = cfg.cols = 64;
  Crossbar xb(cfg);
  ProgramOptions opts;
  opts.faults = rates(0.005, 0.005, 0.0, 30);
  opts.write_verify = true;
  xb.program(w, 1.0, opts);
  EXPECT_GT(xb.stats().stuck_cells, 0u);
  EXPECT_EQ(xb.stats().faults_injected, xb.stats().stuck_cells);
  EXPECT_GT(xb.stats().defective_cells, 0u);
  // Stuck cells never converge, so each burns all retries.
  EXPECT_GE(xb.stats().verify_retries,
            xb.stats().defective_cells * opts.max_program_retries);
  // Without write-verify nothing is detected: faults land silently.
  Crossbar blind(cfg);
  ProgramOptions open = opts;
  open.write_verify = false;
  blind.program(w, 1.0, open);
  EXPECT_EQ(blind.stats().defective_cells, 0u);
  EXPECT_EQ(blind.stats().stuck_cells, xb.stats().stuck_cells);
}

TEST(CrossbarFaults, ClampReducesErrorVersusBestEffort) {
  Rng rng(25);
  const Tensor w = Tensor::uniform(Shape{64, 64}, rng, -1.0f, 1.0f);
  CrossbarConfig cfg;
  cfg.rows = cfg.cols = 64;
  Crossbar ideal(cfg);
  ideal.program(w, 1.0);

  auto run = [&](DegradePolicy policy) {
    Crossbar xb(cfg);
    ProgramOptions opts;
    opts.faults = rates(0.005, 0.005, 0.0, 31);
    opts.write_verify = true;
    opts.degrade = policy;
    xb.program(w, 1.0, opts);
    return l1_distance(xb.effective_weights(), ideal.effective_weights());
  };
  const double err_best = run(DegradePolicy::kBestEffort);
  const double err_clamp = run(DegradePolicy::kClamp);
  EXPECT_GT(err_best, 0.0);
  EXPECT_LT(err_clamp, err_best);
}

TEST(CrossbarFaults, SpareColumnsRemapDefectiveColumns) {
  Rng rng(26);
  const Tensor w = Tensor::uniform(Shape{64, 48}, rng, -1.0f, 1.0f);
  // Same cols on both configs -> identical fault population (the map binds
  // the physical geometry), so the comparison isolates the remapping.
  CrossbarConfig no_spares;
  no_spares.rows = no_spares.cols = 64;
  CrossbarConfig with_spares = no_spares;
  with_spares.spare_cols = 16;  // data_cols 48

  Crossbar ideal(no_spares);
  ideal.program(w, 1.0);

  ProgramOptions opts;
  opts.faults = rates(0.004, 0.004, 0.0, 32);
  opts.write_verify = true;
  opts.degrade = DegradePolicy::kClamp;

  Crossbar raw(no_spares);
  ProgramOptions open;
  open.faults = opts.faults;
  raw.program(w, 1.0, open);

  Crossbar repaired(with_spares);
  repaired.program(w, 1.0, opts);

  const auto& st = repaired.stats();
  ASSERT_GT(st.spare_cols_used, 0u);
  // Every remapped column relocates all r * slices * 2 of its cells.
  EXPECT_EQ(st.cells_remapped,
            st.spare_cols_used * 64 * repaired.config().slices() * 2);
  std::size_t moved = 0;
  for (std::size_t j = 0; j < repaired.active_cols(); ++j) {
    const std::size_t phys = repaired.physical_col(j);
    if (phys != j) {
      ++moved;
      EXPECT_GE(phys, with_spares.data_cols());  // spares live past the data
      EXPECT_LT(phys, with_spares.cols);
    }
  }
  EXPECT_EQ(moved, st.spare_cols_used);
  // Repair must land closer to the ideal array than silent degradation.
  EXPECT_LT(l1_distance(repaired.effective_weights(),
                        ideal.effective_weights()),
            l1_distance(raw.effective_weights(), ideal.effective_weights()));
}

TEST(CrossbarFaults, FailFastThrowsWhenSparesExhausted) {
  Rng rng(27);
  const Tensor w = Tensor::uniform(Shape{32, 32}, rng, -1.0f, 1.0f);
  CrossbarConfig cfg;
  cfg.rows = cfg.cols = 32;
  Crossbar xb(cfg);
  ProgramOptions opts;
  opts.faults = rates(0.02, 0.02, 0.0, 33);
  opts.write_verify = true;
  opts.degrade = DegradePolicy::kFailFast;
  EXPECT_THROW(xb.program(w, 1.0, opts), CheckError);
}

TEST(CrossbarFaults, LegacyVariationStuckRatesSeedTheFaultMap) {
  // Deprecated shim: stuck rates on VariationParams still inject faults,
  // now visible in the stats instead of hidden inside perturb().
  Rng rng(28);
  const Tensor w = Tensor::uniform(Shape{64, 64}, rng, -1.0f, 1.0f);
  device::VariationParams vp;
  vp.stuck_at_off_rate = 0.01;
  vp.stuck_at_on_rate = 0.01;
  device::VariationModel vm(vp, Rng(29));
  CrossbarConfig cfg;
  cfg.rows = cfg.cols = 64;
  Crossbar xb(cfg);
  xb.program(w, 1.0, &vm);  // legacy signature
  EXPECT_TRUE(xb.fault_map().enabled());
  EXPECT_GT(xb.stats().stuck_cells, 0u);
}

TEST(CrossbarFaults, InjectAtIsDeterministicAndPersistent) {
  Rng rng(34);
  const Tensor w = Tensor::uniform(Shape{64, 64}, rng, -1.0f, 1.0f);
  CrossbarConfig cfg;
  cfg.rows = cfg.cols = 64;
  ProgramOptions opts;
  opts.faults = rates(0.0, 0.0, 2e-3, 35);

  Crossbar a(cfg), b(cfg);
  a.program(w, 1.0, opts);
  b.program(w, 1.0, opts);
  const auto pristine = a.effective_weights();

  const std::size_t na = a.inject_at(1);
  const std::size_t nb = b.inject_at(1);
  ASSERT_GT(na, 0u);
  EXPECT_EQ(na, nb);
  EXPECT_EQ(a.stats().faults_injected, na);
  EXPECT_GT(l1_distance(a.effective_weights(), pristine), 0.0);
  for (std::size_t i = 0; i < pristine.size(); ++i)
    EXPECT_EQ(a.effective_weights()[i], b.effective_weights()[i]);

  // The flips persist (stored levels changed) and the fast path still
  // matches the slice-walk oracle over the corrupted levels.
  std::vector<float> x(64);
  Rng xrng(36);
  for (auto& v : x) v = static_cast<float>(xrng.uniform(-1.0, 1.0));
  const auto fast = a.compute(x, 1.0);
  const auto ref = a.compute_reference(x, 1.0);
  for (std::size_t j = 0; j < fast.size(); ++j) EXPECT_EQ(fast[j], ref[j]);

  // A different injection step draws an independent flip set.
  Crossbar c(cfg);
  c.program(w, 1.0, opts);
  c.inject_at(2);
  EXPECT_GT(l1_distance(c.effective_weights(), a.effective_weights()), 0.0);

  // Reprogramming clears the damage completely.
  a.program(w, 1.0, opts);
  for (std::size_t i = 0; i < pristine.size(); ++i)
    EXPECT_EQ(a.effective_weights()[i], pristine[i]);
}

// ---- Drift x transient-fault interaction ------------------------------------
//
// The maintenance engine (DESIGN.md §16) interleaves apply_drift epochs with
// mid-run inject_at flips on the same arrays; the collapsed W_eff must stay
// consistent with the slice-walk oracle through any such sequence.

TEST(CrossbarFaults, DriftAfterInjectRebuildsConsistently) {
  Rng rng(50);
  const Tensor w = Tensor::uniform(Shape{48, 48}, rng, -1.0f, 1.0f);
  CrossbarConfig cfg;
  cfg.rows = cfg.cols = 48;
  ProgramOptions opts;
  opts.faults = rates(0.0, 0.0, 3e-3, 51);

  Crossbar a(cfg);
  a.program(w, 1.0, opts);
  ASSERT_GT(a.inject_at(1), 0u);
  a.apply_drift(0.97);
  a.apply_drift(0.99);  // incremental drift compounds multiplicatively
  ASSERT_GT(a.inject_at(2), 0u);

  std::vector<float> x(48);
  Rng xrng(52);
  for (auto& v : x) v = static_cast<float>(xrng.uniform(-1.0, 1.0));
  const auto fast = a.compute(x, 1.0);
  const auto ref = a.compute_reference(x, 1.0);
  ASSERT_EQ(fast.size(), ref.size());
  for (std::size_t j = 0; j < fast.size(); ++j) EXPECT_EQ(fast[j], ref[j]);
}

TEST(CrossbarFaults, InjectDriftOrderIsDeterministicPerSequence) {
  // The same (program, inject, drift) sequence reproduces W_eff exactly;
  // flipping the order of a drift and an injection changes the stored
  // levels (a flip lands on drifted vs undrifted bits) but each order is
  // itself deterministic and oracle-consistent.
  Rng rng(53);
  const Tensor w = Tensor::uniform(Shape{32, 32}, rng, -1.0f, 1.0f);
  CrossbarConfig cfg;
  cfg.rows = cfg.cols = 32;
  ProgramOptions opts;
  opts.faults = rates(0.0, 0.0, 5e-3, 54);

  auto run = [&](bool drift_first) {
    Crossbar x(cfg);
    x.program(w, 1.0, opts);
    if (drift_first) {
      x.apply_drift(0.9);
      x.inject_at(7);
    } else {
      x.inject_at(7);
      x.apply_drift(0.9);
    }
    return x;
  };
  Crossbar a = run(true), b = run(true), c = run(false);
  for (std::size_t i = 0; i < a.effective_weights().size(); ++i)
    EXPECT_EQ(a.effective_weights()[i], b.effective_weights()[i]);
  EXPECT_GT(l1_distance(a.effective_weights(), c.effective_weights()), 0.0);

  std::vector<float> x(32);
  Rng xrng(55);
  for (auto& v : x) v = static_cast<float>(xrng.uniform(-1.0, 1.0));
  for (Crossbar* xb : {&a, &c}) {
    const auto fast = xb->compute(x, 1.0);
    const auto ref = xb->compute_reference(x, 1.0);
    for (std::size_t j = 0; j < fast.size(); ++j) EXPECT_EQ(fast[j], ref[j]);
  }
}

TEST(GridFaults, DriftAndInjectInterleaveMatchesOracleAcrossTiles) {
  Rng rng(56);
  const Tensor w = Tensor::uniform(Shape{64, 64}, rng, -1.0f, 1.0f);
  CrossbarConfig cfg;
  cfg.rows = cfg.cols = 32;
  CrossbarGrid grid(cfg);
  ProgramOptions opts;
  opts.faults = rates(0.0, 0.0, 2e-3, 57);
  grid.program(w, 1.0, opts);
  ASSERT_EQ(grid.num_arrays(), 4u);

  ASSERT_GT(grid.inject_at(1), 0u);
  grid.apply_drift(0.95);
  grid.apply_drift_tile(2, 0.9);  // one tile drifts further on its own clock
  grid.inject_at(2);

  // Grid compute vs the per-tile oracle with the fixed vertical add order.
  std::vector<float> x(64);
  Rng xrng(58);
  for (auto& v : x) v = static_cast<float>(xrng.uniform(-1.0, 1.0));
  const auto got = grid.compute(x, 1.0);
  std::vector<float> want(64, 0.0f);
  for (std::size_t rt = 0; rt < grid.row_tiles(); ++rt) {
    for (std::size_t ct = 0; ct < grid.col_tiles(); ++ct) {
      const Crossbar& tile = grid.array(rt * grid.col_tiles() + ct);
      std::vector<float> seg(x.begin() + rt * 32,
                             x.begin() + rt * 32 + tile.active_rows());
      const auto part = tile.compute_reference(seg, 1.0);
      for (std::size_t j = 0; j < part.size(); ++j)
        want[ct * 32 + j] += part[j];
    }
  }
  for (std::size_t j = 0; j < 64; ++j) EXPECT_EQ(got[j], want[j]);
}

// ---- Grid-level behavior -----------------------------------------------------

TEST(GridFaults, TilesCarryIndependentFaultPopulations) {
  Rng rng(40);
  const Tensor w = Tensor::uniform(Shape{64, 64}, rng, -1.0f, 1.0f);
  CrossbarConfig cfg;
  cfg.rows = cfg.cols = 32;
  CrossbarGrid grid(cfg);
  ProgramOptions opts;
  opts.faults = rates(0.01, 0.01, 0.0, 41);
  grid.program(w, 1.0, opts);
  ASSERT_EQ(grid.num_arrays(), 4u);
  EXPECT_GT(grid.aggregate_stats().stuck_cells, 0u);
  const auto& f0 = grid.array(0).fault_map().stuck_faults();
  const auto& f1 = grid.array(1).fault_map().stuck_faults();
  ASSERT_GT(f0.size(), 0u);
  bool differs = f0.size() != f1.size();
  for (std::size_t i = 0; !differs && i < f0.size(); ++i)
    differs = f0[i].cell != f1[i].cell;
  EXPECT_TRUE(differs);
}

TEST(GridFaults, SpareReservationKeepsFaultFreeBatchBitIdentical) {
  // Reserving spares changes the column tiling (data_cols shrinks), which
  // must not change fault-free results: per-column accumulation and the
  // row-tile vertical add are independent of how columns are tiled.
  Rng rng(42);
  const Tensor w = Tensor::uniform(Shape{64, 60}, rng, -1.0f, 1.0f);
  Rng xrng(43);
  const Tensor x = Tensor::uniform(Shape{7, 64}, xrng, -1.0f, 1.0f);

  CrossbarConfig plain;
  plain.rows = plain.cols = 32;
  CrossbarGrid base(plain);
  base.program(w, 1.0);
  const Tensor y0 = base.compute_batch(x, 1.0);

  CrossbarConfig spared = plain;
  spared.spare_cols = 8;  // data_cols 24 -> different tiling
  CrossbarGrid grid(spared);
  ProgramOptions verify;
  verify.write_verify = true;
  grid.program(w, 1.0, verify);
  EXPECT_GT(grid.col_tiles(), base.col_tiles());
  const Tensor y1 = grid.compute_batch(x, 1.0);
  ASSERT_EQ(y1.shape(), y0.shape());
  for (std::size_t i = 0; i < y0.numel(); ++i) EXPECT_EQ(y1[i], y0[i]);
}

TEST(GridFaults, InjectAtIsDeterministicAcrossGrids) {
  Rng rng(44);
  const Tensor w = Tensor::uniform(Shape{64, 64}, rng, -1.0f, 1.0f);
  CrossbarConfig cfg;
  cfg.rows = cfg.cols = 32;
  ProgramOptions opts;
  opts.faults = rates(0.0, 0.0, 1e-3, 45);

  CrossbarGrid a(cfg), b(cfg);
  a.program(w, 1.0, opts);
  b.program(w, 1.0, opts);
  const std::size_t na = a.inject_at(3);
  ASSERT_GT(na, 0u);
  EXPECT_EQ(na, b.inject_at(3));

  Rng xrng(46);
  const Tensor x = Tensor::uniform(Shape{5, 64}, xrng, -1.0f, 1.0f);
  const Tensor ya = a.compute_batch(x, 1.0);
  const Tensor yb = b.compute_batch(x, 1.0);
  for (std::size_t i = 0; i < ya.numel(); ++i) EXPECT_EQ(ya[i], yb[i]);
}

// ---- Executor-level behavior -------------------------------------------------

TEST(ExecutorFaults, LayersCarryIndependentSeedsAndInjectPropagates) {
  Rng rng(50);
  auto net = workload::make_mlp_mnist(rng);
  core::AcceleratorConfig cfg;
  cfg.chip = arch::pipelayer_chip();
  cfg.max_arrays = 2048;
  cfg.spare_cols = 8;

  ProgramOptions opts;
  opts.faults = rates(0.002, 0.002, 1e-5, 51);
  opts.write_verify = true;
  opts.degrade = DegradePolicy::kClamp;
  core::CrossbarExecutor exec(net, cfg, opts);
  ASSERT_GE(exec.num_grids(), 2u);
  EXPECT_GT(exec.aggregate_stats().stuck_cells, 0u);

  // Different layers draw from different mixed seeds.
  const auto& l0 = exec.grid(0).array(0).fault_map().stuck_faults();
  const auto& l1 = exec.grid(1).array(0).fault_map().stuck_faults();
  bool differs = l0.size() != l1.size();
  for (std::size_t i = 0; !differs && i < l0.size(); ++i)
    differs = l0[i].cell != l1[i].cell;
  EXPECT_TRUE(differs);

  Rng data_rng(52);
  const auto data = workload::make_mnist_like(8, data_rng);
  const Tensor before = net.forward(data.images, false);
  const std::size_t flips = exec.inject_at(1);
  EXPECT_GT(flips, 0u);
  const Tensor after = net.forward(data.images, false);
  double diff = 0.0;
  for (std::size_t i = 0; i < before.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(after[i]));
    diff += std::abs(static_cast<double>(after[i]) - before[i]);
  }
  EXPECT_GT(diff, 0.0);
}

}  // namespace
}  // namespace reramdl
