#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "tensor/im2col.hpp"

namespace reramdl {
namespace {

TEST(ConvGeometry, OutputDims) {
  const ConvGeometry g{3, 114, 114, 3, 3, 1, 0};
  EXPECT_EQ(g.out_h(), 112u);
  EXPECT_EQ(g.out_w(), 112u);
  EXPECT_EQ(g.patches(), 12544u);  // Fig. 4's cycle count for the naive scheme
}

TEST(ConvGeometry, PaperFig4PatchSize) {
  // 3x3 kernels over 128 channels -> 1152 wordlines.
  const ConvGeometry g{128, 114, 114, 3, 3, 1, 0};
  EXPECT_EQ(g.patch_size(), 1152u);
}

TEST(ConvGeometry, StrideAndPad) {
  const ConvGeometry g{1, 28, 28, 4, 4, 2, 1};
  EXPECT_EQ(g.out_h(), 14u);
  EXPECT_EQ(g.out_w(), 14u);
}

TEST(Im2col, IdentityKernelExtractsPixels) {
  // 1x1 kernel, stride 1: patches are exactly the pixels.
  const ConvGeometry g{1, 3, 3, 1, 1, 1, 0};
  Tensor x(Shape{1, 1, 3, 3});
  for (std::size_t i = 0; i < 9; ++i) x[i] = static_cast<float>(i);
  const Tensor cols = im2col(x, g);
  ASSERT_EQ(cols.shape(), Shape({9, 1}));
  for (std::size_t i = 0; i < 9; ++i) EXPECT_FLOAT_EQ(cols[i], static_cast<float>(i));
}

TEST(Im2col, KnownPatchContents) {
  // 2x2 input, 2x2 kernel, no pad: single patch = whole image in (c,ky,kx)
  // order.
  const ConvGeometry g{2, 2, 2, 2, 2, 1, 0};
  Tensor x(Shape{1, 2, 2, 2});
  for (std::size_t i = 0; i < 8; ++i) x[i] = static_cast<float>(i);
  const Tensor cols = im2col(x, g);
  ASSERT_EQ(cols.shape(), Shape({1, 8}));
  for (std::size_t i = 0; i < 8; ++i) EXPECT_FLOAT_EQ(cols[i], static_cast<float>(i));
}

TEST(Im2col, PaddingYieldsZeros) {
  const ConvGeometry g{1, 2, 2, 3, 3, 1, 1};
  Tensor x(Shape{1, 1, 2, 2}, 1.0f);
  const Tensor cols = im2col(x, g);
  ASSERT_EQ(cols.shape(), Shape({4, 9}));
  // Top-left patch: corner entries padded.
  EXPECT_FLOAT_EQ(cols.at(0, 0), 0.0f);  // (-1,-1)
  EXPECT_FLOAT_EQ(cols.at(0, 4), 1.0f);  // (0,0)
}

struct ConvCase {
  std::size_t c, h, w, k, stride, pad;
};

class Im2colAdjoint : public ::testing::TestWithParam<ConvCase> {};

// col2im is the adjoint of im2col: <im2col(x), y> == <x, col2im(y)>.
TEST_P(Im2colAdjoint, InnerProductIdentity) {
  const auto p = GetParam();
  const ConvGeometry g{p.c, p.h, p.w, p.k, p.k, p.stride, p.pad};
  Rng rng(5);
  const std::size_t batch = 2;
  const Tensor x = Tensor::normal(Shape{batch, p.c, p.h, p.w}, rng, 0.0f, 1.0f);
  const Tensor cols = im2col(x, g);
  const Tensor y = Tensor::normal(cols.shape(), rng, 0.0f, 1.0f);
  const Tensor back = col2im(y, g, batch);

  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < cols.numel(); ++i)
    lhs += static_cast<double>(cols[i]) * y[i];
  for (std::size_t i = 0; i < x.numel(); ++i)
    rhs += static_cast<double>(x[i]) * back[i];
  EXPECT_NEAR(lhs, rhs, 1e-2 * std::max(1.0, std::abs(lhs)));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, Im2colAdjoint,
    ::testing::Values(ConvCase{1, 5, 5, 3, 1, 0}, ConvCase{2, 6, 6, 3, 1, 1},
                      ConvCase{3, 8, 8, 4, 2, 1}, ConvCase{1, 7, 9, 3, 2, 0},
                      ConvCase{4, 4, 4, 2, 2, 0}, ConvCase{2, 9, 9, 5, 1, 2}));

TEST(ZeroInsert, FactorOneIsIdentity) {
  Rng rng(9);
  const Tensor x = Tensor::normal(Shape{1, 2, 3, 3}, rng, 0.0f, 1.0f);
  const Tensor y = zero_insert(x, 1);
  ASSERT_EQ(y.shape(), x.shape());
  for (std::size_t i = 0; i < x.numel(); ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(ZeroInsert, Factor2PlacesPixelsOnEvenGrid) {
  Tensor x(Shape{1, 1, 2, 2});
  x.at(0, 0, 0, 0) = 1.0f;
  x.at(0, 0, 0, 1) = 2.0f;
  x.at(0, 0, 1, 0) = 3.0f;
  x.at(0, 0, 1, 1) = 4.0f;
  const Tensor y = zero_insert(x, 2);
  ASSERT_EQ(y.shape(), Shape({1, 1, 3, 3}));
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 2), 2.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 2, 0), 3.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 2, 2), 4.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 1, 1), 0.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 1), 0.0f);
}

TEST(ZeroInsert, AdjointRecoversOriginalPositions) {
  Rng rng(21);
  const Tensor x = Tensor::normal(Shape{2, 3, 4, 5}, rng, 0.0f, 1.0f);
  const Tensor d = zero_insert(x, 3);
  const Tensor back = zero_insert_adjoint(d, 3, 4, 5);
  ASSERT_EQ(back.shape(), x.shape());
  for (std::size_t i = 0; i < x.numel(); ++i) EXPECT_FLOAT_EQ(back[i], x[i]);
}

TEST(ZeroInsert, AdjointInnerProductIdentity) {
  Rng rng(22);
  const std::size_t f = 2, h = 3, w = 4;
  const Tensor x = Tensor::normal(Shape{1, 2, h, w}, rng, 0.0f, 1.0f);
  const Tensor dx = zero_insert(x, f);
  const Tensor y = Tensor::normal(dx.shape(), rng, 0.0f, 1.0f);
  const Tensor ya = zero_insert_adjoint(y, f, h, w);
  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < dx.numel(); ++i)
    lhs += static_cast<double>(dx[i]) * y[i];
  for (std::size_t i = 0; i < x.numel(); ++i)
    rhs += static_cast<double>(x[i]) * ya[i];
  EXPECT_NEAR(lhs, rhs, 1e-4);
}

}  // namespace
}  // namespace reramdl
