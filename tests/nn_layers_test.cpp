#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>

#include "common/rng.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/flatten.hpp"
#include "nn/pooling.hpp"
#include "nn/transposed_conv2d.hpp"

namespace reramdl::nn {
namespace {

// Scalar objective: L(x) = <forward(x), g> for a fixed random g. The layer's
// backward(g) must then equal dL/dx, and the accumulated parameter gradients
// must equal dL/dtheta — both checked against central differences.
double objective(Layer& layer, const Tensor& x, const Tensor& g) {
  const Tensor y = layer.forward(x, /*train=*/true);
  EXPECT_EQ(y.numel(), g.numel());
  double acc = 0.0;
  for (std::size_t i = 0; i < y.numel(); ++i)
    acc += static_cast<double>(y[i]) * g[i];
  return acc;
}

void check_input_gradient(Layer& layer, Tensor x, const Tensor& g,
                          double tol = 2e-2) {
  for (auto& p : layer.params()) p.grad->zero();
  objective(layer, x, g);
  const Tensor gx = layer.backward(g);
  ASSERT_EQ(gx.numel(), x.numel());

  const float eps = 1e-2f;
  // Sample a subset of coordinates to keep runtime bounded.
  const std::size_t step = std::max<std::size_t>(1, x.numel() / 24);
  for (std::size_t i = 0; i < x.numel(); i += step) {
    // Central differences are invalid within eps of a non-smooth kink
    // (ReLU-family at 0); skip those coordinates.
    if (std::abs(x[i]) < 3e-2f) continue;
    const float orig = x[i];
    x[i] = orig + eps;
    const double lp = objective(layer, x, g);
    x[i] = orig - eps;
    const double lm = objective(layer, x, g);
    x[i] = orig;
    const double numeric = (lp - lm) / (2.0 * eps);
    const double scale = std::max(1.0, std::abs(numeric));
    EXPECT_NEAR(gx[i], numeric, tol * scale) << "input coordinate " << i;
  }
}

void check_param_gradients(Layer& layer, const Tensor& x, const Tensor& g,
                           double tol = 2e-2) {
  for (auto& p : layer.params()) p.grad->zero();
  objective(layer, x, g);
  layer.backward(g);

  const float eps = 1e-2f;
  for (auto& p : layer.params()) {
    Tensor& w = *p.value;
    const Tensor& gw = *p.grad;
    const std::size_t step = std::max<std::size_t>(1, w.numel() / 16);
    for (std::size_t i = 0; i < w.numel(); i += step) {
      const float orig = w[i];
      w[i] = orig + eps;
      const double lp = objective(layer, x, g);
      w[i] = orig - eps;
      const double lm = objective(layer, x, g);
      w[i] = orig;
      const double numeric = (lp - lm) / (2.0 * eps);
      const double scale = std::max(1.0, std::abs(numeric));
      EXPECT_NEAR(gw[i], numeric, tol * scale) << "param coordinate " << i;
    }
  }
}

// ---- Parameterized gradient sweep over layer factories --------------------

struct LayerCase {
  std::string name;
  std::function<LayerPtr(Rng&)> make;
  Shape in_shape;
  bool check_params;
};

class LayerGradient : public ::testing::TestWithParam<LayerCase> {};

TEST_P(LayerGradient, InputGradientMatchesNumeric) {
  const auto& c = GetParam();
  Rng rng(1234);
  auto layer = c.make(rng);
  const Tensor x = Tensor::normal(c.in_shape, rng, 0.0f, 1.0f);
  const Tensor y = layer->forward(x, true);
  const Tensor g = Tensor::normal(y.shape(), rng, 0.0f, 1.0f);
  check_input_gradient(*layer, x, g);
}

TEST_P(LayerGradient, ParamGradientsMatchNumeric) {
  const auto& c = GetParam();
  if (!c.check_params) GTEST_SKIP() << "layer has no parameters";
  Rng rng(4321);
  auto layer = c.make(rng);
  const Tensor x = Tensor::normal(c.in_shape, rng, 0.0f, 1.0f);
  const Tensor y = layer->forward(x, true);
  const Tensor g = Tensor::normal(y.shape(), rng, 0.0f, 1.0f);
  check_param_gradients(*layer, x, g);
}

INSTANTIATE_TEST_SUITE_P(
    AllLayers, LayerGradient,
    ::testing::Values(
        LayerCase{"dense",
                  [](Rng& r) { return std::make_unique<Dense>(6, 4, r); },
                  Shape{3, 6}, true},
        LayerCase{"conv",
                  [](Rng& r) {
                    return std::make_unique<Conv2D>(2, 6, 6, 3, 3, 1, 1, r);
                  },
                  Shape{2, 2, 6, 6}, true},
        LayerCase{"conv_stride2",
                  [](Rng& r) {
                    return std::make_unique<Conv2D>(1, 8, 8, 2, 4, 2, 1, r);
                  },
                  Shape{2, 1, 8, 8}, true},
        LayerCase{"tconv",
                  [](Rng& r) {
                    return std::make_unique<TransposedConv2D>(2, 4, 4, 3, 4, 2,
                                                              1, r);
                  },
                  Shape{2, 2, 4, 4}, true},
        LayerCase{"tconv_stride3",
                  [](Rng& r) {
                    return std::make_unique<TransposedConv2D>(1, 3, 3, 2, 3, 3,
                                                              0, r);
                  },
                  Shape{1, 1, 3, 3}, true},
        LayerCase{"relu", [](Rng&) { return std::make_unique<ReLU>(); },
                  Shape{3, 10}, false},
        LayerCase{"leaky_relu",
                  [](Rng&) { return std::make_unique<LeakyReLU>(0.2f); },
                  Shape{3, 10}, false},
        LayerCase{"sigmoid", [](Rng&) { return std::make_unique<Sigmoid>(); },
                  Shape{3, 10}, false},
        LayerCase{"tanh", [](Rng&) { return std::make_unique<Tanh>(); },
                  Shape{3, 10}, false},
        LayerCase{"avgpool", [](Rng&) { return std::make_unique<AvgPool2D>(2); },
                  Shape{2, 2, 6, 6}, false},
        LayerCase{"flatten", [](Rng&) { return std::make_unique<Flatten>(); },
                  Shape{2, 2, 3, 3}, false},
        LayerCase{"reshape",
                  [](Rng&) { return std::make_unique<Reshape>(2, 3, 3); },
                  Shape{2, 18}, false},
        LayerCase{"batchnorm_conv",
                  [](Rng&) { return std::make_unique<BatchNorm>(3); },
                  Shape{4, 3, 4, 4}, true},
        LayerCase{"batchnorm_dense",
                  [](Rng&) { return std::make_unique<BatchNorm>(6); },
                  Shape{8, 6}, true}),
    [](const ::testing::TestParamInfo<LayerCase>& info) {
      return info.param.name;
    });

// ---- Targeted behavior tests ----------------------------------------------

TEST(Dense, ForwardMatchesManualComputation) {
  Rng rng(7);
  Dense d(2, 2, rng);
  d.weights().at(0, 0) = 1.0f;
  d.weights().at(0, 1) = 2.0f;
  d.weights().at(1, 0) = 3.0f;
  d.weights().at(1, 1) = 4.0f;
  d.bias()[0] = 0.5f;
  d.bias()[1] = -0.5f;
  Tensor x(Shape{1, 2});
  x[0] = 1.0f;
  x[1] = 1.0f;
  const Tensor y = d.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 4.5f);   // 1+3+0.5
  EXPECT_FLOAT_EQ(y[1], 5.5f);   // 2+4-0.5
}

TEST(Conv2D, OutputShape) {
  Rng rng(8);
  Conv2D c(3, 114, 114, 256, 3, 1, 0, rng);
  const Tensor x = Tensor::zeros(Shape{1, 3, 114, 114});
  const Tensor y = c.forward(x, false);
  EXPECT_EQ(y.shape(), Shape({1, 256, 112, 112}));
}

TEST(TransposedConv2D, UpsamplesByStride) {
  Rng rng(9);
  TransposedConv2D t(4, 7, 7, 2, 4, 2, 1, rng);
  const Tensor x = Tensor::zeros(Shape{3, 4, 7, 7});
  const Tensor y = t.forward(x, false);
  EXPECT_EQ(y.shape(), Shape({3, 2, 14, 14}));
}

TEST(MaxPool, SelectsWindowMaximaAndRoutesGradient) {
  MaxPool2D pool(2);
  Tensor x(Shape{1, 1, 2, 2});
  x[0] = 1.0f;
  x[1] = 5.0f;
  x[2] = 3.0f;
  x[3] = 2.0f;
  const Tensor y = pool.forward(x, true);
  ASSERT_EQ(y.numel(), 1u);
  EXPECT_FLOAT_EQ(y[0], 5.0f);
  Tensor g(Shape{1, 1, 1, 1}, 2.0f);
  const Tensor gx = pool.backward(g);
  EXPECT_FLOAT_EQ(gx[0], 0.0f);
  EXPECT_FLOAT_EQ(gx[1], 2.0f);  // gradient flows to the argmax only
  EXPECT_FLOAT_EQ(gx[2], 0.0f);
}

TEST(AvgPool, ComputesWindowMean) {
  AvgPool2D pool(2);
  Tensor x(Shape{1, 1, 2, 2});
  x[0] = 1.0f;
  x[1] = 2.0f;
  x[2] = 3.0f;
  x[3] = 6.0f;
  const Tensor y = pool.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 3.0f);
}

TEST(ReLU, ZeroesNegatives) {
  ReLU relu;
  Tensor x(Shape{1, 3});
  x[0] = -1.0f;
  x[1] = 0.0f;
  x[2] = 2.0f;
  const Tensor y = relu.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 2.0f);
}

TEST(BatchNorm, NormalizesBatchStatistics) {
  Rng rng(10);
  BatchNorm bn(4);
  const Tensor x = Tensor::normal(Shape{64, 4, 3, 3}, rng, 5.0f, 2.0f);
  const Tensor y = bn.forward(x, /*train=*/true);
  // Per-channel mean ~0, var ~1 after normalization (gamma=1, beta=0).
  for (std::size_t c = 0; c < 4; ++c) {
    double mean = 0.0, var = 0.0;
    std::size_t count = 0;
    for (std::size_t n = 0; n < 64; ++n)
      for (std::size_t p = 0; p < 9; ++p) {
        mean += y.at(n, c, p / 3, p % 3);
        ++count;
      }
    mean /= static_cast<double>(count);
    for (std::size_t n = 0; n < 64; ++n)
      for (std::size_t p = 0; p < 9; ++p) {
        const double d = y.at(n, c, p / 3, p % 3) - mean;
        var += d * d;
      }
    var /= static_cast<double>(count);
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNorm, VirtualBnUsesFrozenReferenceStats) {
  Rng rng(11);
  BatchNorm bn(2);
  const Tensor ref = Tensor::normal(Shape{32, 2, 2, 2}, rng, 3.0f, 1.0f);
  bn.set_reference_batch(ref);
  EXPECT_TRUE(bn.uses_reference());
  EXPECT_EQ(bn.name(), "vbn");
  // A wildly different batch is normalized with the *reference* statistics:
  // outputs shift rather than re-normalize.
  const Tensor x = Tensor::full(Shape{4, 2, 2, 2}, 3.0f);
  const Tensor y = bn.forward(x, /*train=*/true);
  for (std::size_t i = 0; i < y.numel(); ++i)
    EXPECT_NEAR(y[i], 0.0f, 0.3f);  // (3 - ref_mean~3) / ref_std~1
  const Tensor x2 = Tensor::full(Shape{4, 2, 2, 2}, 4.0f);
  const Tensor y2 = bn.forward(x2, /*train=*/true);
  // One reference-std above the mean.
  for (std::size_t i = 0; i < y2.numel(); ++i) EXPECT_GT(y2[i], 0.5f);
}

TEST(BatchNorm, EvalUsesRunningStats) {
  Rng rng(12);
  BatchNorm bn(1);
  // Train on many batches so running stats converge.
  for (int i = 0; i < 200; ++i) {
    const Tensor x = Tensor::normal(Shape{16, 1, 2, 2}, rng, 10.0f, 2.0f);
    bn.forward(x, true);
  }
  const Tensor probe = Tensor::full(Shape{1, 1, 2, 2}, 10.0f);
  const Tensor y = bn.forward(probe, /*train=*/false);
  for (std::size_t i = 0; i < y.numel(); ++i) EXPECT_NEAR(y[i], 0.0f, 0.2f);
}

TEST(LayerSpecs, DenseAndConvReportShapes) {
  Rng rng(13);
  Dense d(100, 10, rng);
  const LayerSpec ds = d.spec(100, 1, 1);
  EXPECT_EQ(ds.kind, LayerKind::kDense);
  EXPECT_EQ(ds.matrix_rows(), 100u);
  EXPECT_EQ(ds.matrix_cols(), 10u);
  EXPECT_EQ(ds.vectors_per_sample(), 1u);

  Conv2D c(128, 114, 114, 256, 3, 1, 0, rng);
  const LayerSpec cs = c.spec(128, 114, 114);
  EXPECT_EQ(cs.matrix_rows(), 1152u);   // Fig. 4
  EXPECT_EQ(cs.matrix_cols(), 256u);
  EXPECT_EQ(cs.vectors_per_sample(), 12544u);
}

}  // namespace
}  // namespace reramdl::nn
