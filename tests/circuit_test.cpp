#include <gtest/gtest.h>

#include <cmath>

#include "circuit/activation_lut.hpp"
#include "circuit/crossbar.hpp"
#include "circuit/crossbar_grid.hpp"
#include "circuit/integrate_fire.hpp"
#include "circuit/maxpool_register.hpp"
#include "circuit/spike_driver.hpp"
#include "common/check.hpp"
#include "common/stats.hpp"

namespace reramdl::circuit {
namespace {

std::vector<float> reference_mvm(const Tensor& w, const std::vector<float>& x) {
  const std::size_t r = w.shape()[0], c = w.shape()[1];
  std::vector<float> y(c, 0.0f);
  for (std::size_t i = 0; i < r; ++i)
    for (std::size_t j = 0; j < c; ++j) y[j] += x[i] * w.at(i, j);
  return y;
}

struct XbarCase {
  std::size_t rows, cols;
  std::size_t bits_per_cell, weight_bits, input_bits;
};

class CrossbarAccuracy : public ::testing::TestWithParam<XbarCase> {};

TEST_P(CrossbarAccuracy, MatchesFloatMvmWithinQuantizationError) {
  const auto p = GetParam();
  CrossbarConfig cfg;
  cfg.rows = p.rows;
  cfg.cols = p.cols;
  cfg.cell.bits_per_cell = p.bits_per_cell;
  cfg.weight_bits = p.weight_bits;
  cfg.input_bits = p.input_bits;

  Rng rng(p.rows * 31 + p.weight_bits);
  const Tensor w = Tensor::uniform(Shape{p.rows, p.cols}, rng, -1.0f, 1.0f);
  std::vector<float> x(p.rows);
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));

  Crossbar xbar(cfg);
  xbar.program(w, 1.0);
  const std::vector<float> y = xbar.compute(x, 1.0);
  const std::vector<float> ref = reference_mvm(w, x);

  // Error budget: weight + input quantization each contribute at most half a
  // step per term; accumulate over rows (loose bound with headroom 4x).
  const double w_step = 1.0 / static_cast<double>((1u << p.weight_bits) - 1);
  const double x_step = 1.0 / static_cast<double>((1u << p.input_bits) - 1);
  const double bound =
      4.0 * static_cast<double>(p.rows) * (0.5 * w_step + 0.5 * x_step + w_step * x_step);
  for (std::size_t j = 0; j < y.size(); ++j)
    EXPECT_NEAR(y[j], ref[j], bound) << "column " << j;
}

INSTANTIATE_TEST_SUITE_P(
    Configs, CrossbarAccuracy,
    ::testing::Values(XbarCase{8, 8, 4, 16, 8}, XbarCase{32, 16, 4, 16, 8},
                      XbarCase{128, 128, 4, 16, 8}, XbarCase{64, 64, 2, 16, 8},
                      XbarCase{64, 64, 1, 16, 8}, XbarCase{16, 16, 4, 8, 4},
                      XbarCase{100, 40, 4, 12, 6}, XbarCase{128, 1, 4, 16, 8}));

class CrossbarBitSerial : public ::testing::TestWithParam<XbarCase> {};

TEST_P(CrossbarBitSerial, FastPathEqualsBitSerialWithoutSaturation) {
  const auto p = GetParam();
  CrossbarConfig fast_cfg;
  fast_cfg.rows = p.rows;
  fast_cfg.cols = p.cols;
  fast_cfg.cell.bits_per_cell = p.bits_per_cell;
  fast_cfg.weight_bits = p.weight_bits;
  fast_cfg.input_bits = p.input_bits;
  fast_cfg.counter_bits = 30;  // wide enough: no clamping
  CrossbarConfig serial_cfg = fast_cfg;
  serial_cfg.bit_serial = true;

  Rng rng(p.rows * 7 + p.input_bits);
  const Tensor w = Tensor::uniform(Shape{p.rows, p.cols}, rng, -1.0f, 1.0f);
  std::vector<float> x(p.rows);
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));

  Crossbar fast(fast_cfg), serial(serial_cfg);
  fast.program(w, 1.0);
  serial.program(w, 1.0);
  const auto yf = fast.compute(x, 1.0);
  const auto ys = serial.compute(x, 1.0);
  ASSERT_EQ(yf.size(), ys.size());
  for (std::size_t j = 0; j < yf.size(); ++j)
    EXPECT_NEAR(yf[j], ys[j], 1e-4f) << "column " << j;
  EXPECT_EQ(serial.stats().saturated_counters, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, CrossbarBitSerial,
    ::testing::Values(XbarCase{8, 8, 4, 16, 8}, XbarCase{32, 8, 2, 8, 4},
                      XbarCase{16, 16, 1, 4, 3}, XbarCase{64, 32, 4, 16, 8}));

TEST(Crossbar, SaturationClampsAndIsCounted) {
  CrossbarConfig cfg;
  cfg.rows = 64;
  cfg.cols = 4;
  cfg.counter_bits = 4;  // counters clamp at 15 although sums reach 64*15
  cfg.bit_serial = true;
  Rng rng(9);
  const Tensor w = Tensor::full(Shape{64, 4}, 1.0f);
  std::vector<float> x(64, 1.0f);
  Crossbar xbar(cfg);
  xbar.program(w, 1.0);
  const auto y = xbar.compute(x, 1.0);
  EXPECT_GT(xbar.stats().saturated_counters, 0u);
  // Clamped output is strictly below the ideal 64.0 per column.
  for (const float v : y) EXPECT_LT(v, 64.0f);
}

TEST(Crossbar, ZeroInputGivesZeroOutput) {
  CrossbarConfig cfg;
  cfg.rows = 16;
  cfg.cols = 16;
  Rng rng(10);
  const Tensor w = Tensor::uniform(Shape{16, 16}, rng, -1.0f, 1.0f);
  Crossbar xbar(cfg);
  xbar.program(w, 1.0);
  const auto y = xbar.compute(std::vector<float>(16, 0.0f), 1.0);
  for (const float v : y) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(Crossbar, StatsTrackProgramsAndComputes) {
  CrossbarConfig cfg;
  cfg.rows = 8;
  cfg.cols = 8;
  Rng rng(11);
  const Tensor w = Tensor::uniform(Shape{8, 8}, rng, -1.0f, 1.0f);
  Crossbar xbar(cfg);
  xbar.program(w, 1.0);
  // 8x8 entries x 4 slices x 2 polarities.
  EXPECT_EQ(xbar.stats().programmed_cells, 8u * 8u * 4u * 2u);
  xbar.compute(std::vector<float>(8, 0.5f), 1.0);
  xbar.compute(std::vector<float>(8, 0.5f), 1.0);
  EXPECT_EQ(xbar.stats().compute_ops, 2u);
  EXPECT_GT(xbar.stats().input_spikes, 0u);
}

TEST(Crossbar, OversizeWeightMatrixThrows) {
  CrossbarConfig cfg;
  cfg.rows = 4;
  cfg.cols = 4;
  Crossbar xbar(cfg);
  EXPECT_THROW(xbar.program(Tensor(Shape{5, 4}), 1.0), CheckError);
}

TEST(Crossbar, IndivisibleWeightBitsThrow) {
  CrossbarConfig cfg;
  cfg.weight_bits = 10;  // not a multiple of 4 bits/cell
  EXPECT_THROW(Crossbar{cfg}, CheckError);
}

TEST(Crossbar, VariationShiftsResults) {
  CrossbarConfig cfg;
  cfg.rows = 32;
  cfg.cols = 32;
  Rng rng(12);
  const Tensor w = Tensor::uniform(Shape{32, 32}, rng, -1.0f, 1.0f);
  std::vector<float> x(32);
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));

  Crossbar ideal(cfg), noisy(cfg);
  ideal.program(w, 1.0);
  device::VariationParams vp;
  vp.sigma = 0.3;
  device::VariationModel vm(vp, Rng(13));
  noisy.program(w, 1.0, &vm);
  const auto yi = ideal.compute(x, 1.0);
  const auto yn = noisy.compute(x, 1.0);
  EXPECT_GT(max_abs_diff(yi, yn), 0.0);
}

// ---- CrossbarGrid -----------------------------------------------------------

struct GridCase {
  std::size_t big_rows, big_cols, array;
};

class GridComposition : public ::testing::TestWithParam<GridCase> {};

TEST_P(GridComposition, TiledResultMatchesMonolithicCrossbar) {
  const auto p = GetParam();
  CrossbarConfig small;
  small.rows = small.cols = p.array;
  CrossbarConfig big;
  big.rows = p.big_rows;
  big.cols = p.big_cols;

  Rng rng(p.big_rows + p.array);
  const Tensor w = Tensor::uniform(Shape{p.big_rows, p.big_cols}, rng, -1.0f, 1.0f);
  std::vector<float> x(p.big_rows);
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));

  CrossbarGrid grid(small);
  grid.program(w, 1.0);
  Crossbar mono(big);
  mono.program(w, 1.0);

  const auto yg = grid.compute(x, 1.0);
  const auto ym = mono.compute(x, 1.0);
  ASSERT_EQ(yg.size(), ym.size());
  // Identical quantization; partial-sum collection is exact.
  for (std::size_t j = 0; j < yg.size(); ++j) EXPECT_NEAR(yg[j], ym[j], 1e-4f);
}

TEST_P(GridComposition, TileCountsAreCeilDivided) {
  const auto p = GetParam();
  CrossbarConfig small;
  small.rows = small.cols = p.array;
  CrossbarGrid grid(small);
  grid.program(Tensor(Shape{p.big_rows, p.big_cols}), 1.0);
  const auto ceil_div = [](std::size_t a, std::size_t b) { return (a + b - 1) / b; };
  EXPECT_EQ(grid.row_tiles(), ceil_div(p.big_rows, p.array));
  EXPECT_EQ(grid.col_tiles(), ceil_div(p.big_cols, p.array));
  EXPECT_EQ(grid.num_arrays(), grid.row_tiles() * grid.col_tiles());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GridComposition,
    ::testing::Values(GridCase{100, 60, 32}, GridCase{64, 64, 64},
                      GridCase{65, 64, 64}, GridCase{130, 70, 128},
                      GridCase{20, 200, 64}, GridCase{33, 33, 16}));

TEST(Grid, Fig3PartitionExample) {
  // Paper Fig. 4(b): the 1152x256 kernel matrix splits into 9x2 = 18 arrays
  // of 128x128.
  CrossbarConfig cfg;
  cfg.rows = cfg.cols = 128;
  CrossbarGrid grid(cfg);
  grid.program(Tensor(Shape{1152, 256}), 1.0);
  EXPECT_EQ(grid.row_tiles(), 9u);
  EXPECT_EQ(grid.col_tiles(), 2u);
  EXPECT_EQ(grid.num_arrays(), 18u);
}

// ---- Peripheral components --------------------------------------------------

TEST(SpikeDriver, EncodeDecodeRoundTrip) {
  SpikeDriver drv(8, 2.0);
  Rng rng(14);
  for (int i = 0; i < 500; ++i) {
    const double v = rng.uniform(-2.0, 2.0);
    const SpikeTrain t = drv.encode(v);
    EXPECT_NEAR(drv.decode(t), v, drv.quantizer().step() * 0.5 + 1e-12);
  }
}

TEST(SpikeDriver, WeightedCodingUsesAtMostNBits) {
  SpikeDriver drv(8, 1.0);
  const SpikeTrain t = drv.encode(0.999);
  EXPECT_EQ(t.bits.size(), 8u);
  EXPECT_EQ(t.spike_count(), 8u);  // max magnitude = all ones
  const SpikeTrain z = drv.encode(0.0);
  EXPECT_EQ(z.spike_count(), 0u);
}

TEST(SpikeDriver, SignCarriedByPhase) {
  SpikeDriver drv(8, 1.0);
  EXPECT_FALSE(drv.encode(0.5).negative);
  EXPECT_TRUE(drv.encode(-0.5).negative);
}

TEST(SpikeDriver, ZeroInputDrivesNoSpikesAndNoEnergy) {
  // The property the zero-skipping execution path banks on (DESIGN.md §12):
  // a zero activation encodes to an empty train, so its wordline costs
  // exactly nothing — no spikes, no modeled drive energy.
  SpikeDriver drv(8, 1.0);
  const SpikeTrain z = drv.encode(0.0);
  EXPECT_EQ(z.spike_count(), 0u);
  EXPECT_EQ(drv.drive_energy_pj(z), 0.0);
  // Sub-LSB values quantize to zero and are equally free.
  const SpikeTrain tiny = drv.encode(drv.quantizer().step() * 0.49);
  EXPECT_EQ(tiny.spike_count(), 0u);
  EXPECT_EQ(drv.drive_energy_pj(tiny), 0.0);
}

TEST(SpikeDriver, DriveEnergyScalesWithSpikeCount) {
  SpikeDriver drv(8, 1.0);
  const SpikeTrain full = drv.encode(0.999);  // all 8 phases spike
  EXPECT_DOUBLE_EQ(drv.drive_energy_pj(full),
                   8.0 * SpikeDriver::kDefaultSpikePj);
  EXPECT_DOUBLE_EQ(drv.drive_energy_pj(full, 0.5), 4.0);
  const SpikeTrain neg = drv.encode(-0.999);  // polarity doesn't change cost
  EXPECT_DOUBLE_EQ(drv.drive_energy_pj(neg), drv.drive_energy_pj(full));
}

TEST(IntegrateFire, CountsThresholdCrossings) {
  IntegrateFire inf(2.0, 8);
  EXPECT_EQ(inf.convert(0.0), 0u);
  EXPECT_EQ(inf.convert(1.9), 0u);
  EXPECT_EQ(inf.convert(2.0), 1u);
  EXPECT_EQ(inf.convert(7.5), 3u);
}

TEST(IntegrateFire, SaturatesAtCounterWidth) {
  IntegrateFire inf(1.0, 4);
  EXPECT_EQ(inf.max_count(), 15u);
  EXPECT_EQ(inf.convert(100.0), 15u);
  EXPECT_EQ(inf.saturation_events(), 1u);
}

TEST(IntegrateFire, NegativeChargeThrows) {
  IntegrateFire inf(1.0, 4);
  EXPECT_THROW(inf.convert(-1.0), CheckError);
}

TEST(ActivationLut, ApproximatesRelu) {
  ActivationLut lut([](double x) { return x > 0 ? x : 0.0; }, -4.0, 4.0, 10);
  EXPECT_NEAR(lut.apply(2.0), 2.0, 8.0 / 1024.0 + 1e-9);
  EXPECT_NEAR(lut.apply(-2.0), 0.0, 1e-9);
  EXPECT_LT(lut.max_error([](double x) { return x > 0 ? x : 0.0; }), 8.0 / 1023.0);
}

TEST(ActivationLut, ClampsOutOfRangeInputs) {
  ActivationLut lut([](double x) { return x; }, -1.0, 1.0, 8);
  EXPECT_NEAR(lut.apply(100.0), 1.0, 1e-9);
  EXPECT_NEAR(lut.apply(-100.0), -1.0, 1e-9);
}

TEST(ActivationLut, MoreBitsReduceError) {
  const auto sigmoid = [](double x) { return 1.0 / (1.0 + std::exp(-x)); };
  ActivationLut coarse(sigmoid, -8.0, 8.0, 4);
  ActivationLut fine(sigmoid, -8.0, 8.0, 12);
  EXPECT_LT(fine.max_error(sigmoid), coarse.max_error(sigmoid));
}

TEST(MaxPoolRegister, TracksRunningMaximum) {
  MaxPoolRegister reg;
  reg.observe(1.0);
  reg.observe(5.0);
  reg.observe(3.0);
  EXPECT_DOUBLE_EQ(reg.value(), 5.0);
  EXPECT_EQ(reg.seen(), 3u);
  reg.reset();
  reg.observe(-2.0);
  EXPECT_DOUBLE_EQ(reg.value(), -2.0);
}

}  // namespace
}  // namespace reramdl::circuit
