// ReGAN end-to-end scenario: train a DCGAN on synthetic image data with the
// three-phase schedule of Fig. 8 (D on real, D on fake, G through D) with
// computation sharing enabled, then report the accelerator's pipeline cycles
// per batch for each optimization level and the Table-I-style comparison.
//
//   ./build/examples/dcgan_regan_training
#include <cstdio>

#include "baseline/gpu_model.hpp"
#include "core/comparison.hpp"
#include "core/regan.hpp"
#include "nn/gan.hpp"
#include "workload/datasets.hpp"
#include "workload/model_zoo.hpp"

int main() {
  using namespace reramdl;

  // Functional GAN training (small DCGAN, synthetic 28x28 images).
  Rng rng(11);
  auto g = workload::make_dcgan_g_mnist(rng, 32);
  auto d = workload::make_dcgan_d_mnist(rng);
  nn::Adam opt_g(g.params(), 2e-3f, 0.5f);
  nn::Adam opt_d(d.params(), 2e-3f, 0.5f);
  nn::GanTrainer gan(g, d, opt_g, opt_d, /*latent=*/32,
                     /*computation_sharing=*/true);

  Rng data_rng(12);
  const Tensor real = workload::make_gan_images(16, 1, 28, data_rng);
  std::printf("training DCGAN with computation sharing (phases (1)(2) share "
              "their forward pass with (3)):\n");
  for (int step = 0; step < 6; ++step) {
    const nn::GanStepStats s = gan.step(real, rng);
    std::printf(
        "  step %d: D loss %.3f/%.3f (real/fake), G loss %.3f, "
        "D accuracy %.2f/%.2f\n",
        step, s.d_loss_real, s.d_loss_fake, s.g_loss, s.d_acc_real,
        s.d_acc_fake);
  }
  const Tensor samples = gan.sample(4, rng);
  std::printf("generated %zu images of shape %s\n",
              static_cast<std::size_t>(samples.shape()[0]),
              samples.shape().to_string().c_str());

  // Architectural cost of DCGAN-CelebA training per optimization level.
  core::AcceleratorConfig cfg;
  cfg.chip = arch::regan_chip();
  const core::ReGanAccelerator accel(workload::spec_dcgan_generator(64),
                                     workload::spec_dcgan_discriminator(64),
                                     cfg);
  const std::size_t n = 6400, batch = 64;
  std::printf("\nDCGAN-64 (CelebA shape) on ReGAN, L_D=%zu L_G=%zu B=%zu:\n",
              accel.l_d(), accel.l_g(), batch);
  const struct {
    const char* name;
    pipeline::ReGanOptions opts;
  } variants[] = {{"no pipeline opts", {false, false}},
                  {"spatial parallelism", {true, false}},
                  {"computation sharing", {false, true}},
                  {"SP + CS", {true, true}}};
  for (const auto& v : variants) {
    const core::TimingReport r = accel.training_report(n, batch, v.opts);
    std::printf("  %-20s %5llu cycles/batch, %7.2f us/img, %zu arrays\n",
                v.name,
                static_cast<unsigned long long>(r.pipeline_cycles / (n / batch)),
                r.time_s / n * 1e6, r.arrays_used);
  }

  const baseline::GpuModel gpu(baseline::gtx1080());
  const auto c = core::compare(
      "dcgan-64", accel.training_report(n, batch, {true, true}),
      gpu.gan_training_cost(workload::spec_dcgan_generator(64),
                            workload::spec_dcgan_discriminator(64), n, batch));
  std::printf("vs GTX 1080: %.0fx speedup, %.0fx energy saving\n", c.speedup(),
              c.energy_saving());
  return 0;
}
